// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark reports the headline measurement of its
// experiment as custom metrics (medians in seconds, control shares as
// fractions), so `go test -bench=. -benchmem` doubles as a compact
// reproduction run.
//
// The per-iteration sizes are reduced relative to cmd/cdnsim defaults to
// keep iterations in the seconds range; the shapes are the same.
package bestofboth_test

import (
	"fmt"
	"testing"
	"time"

	"bestofboth/internal/bgp"
	"bestofboth/internal/collector"
	"bestofboth/internal/core"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/experiment"
	"bestofboth/internal/netsim"
	"bestofboth/internal/obs"
	"bestofboth/internal/scenario"
	"bestofboth/internal/topology"
)

// benchConfig is the reduced world used by the experiment benchmarks.
func benchConfig(seed int64) experiment.WorldConfig {
	return experiment.WorldConfig{
		Seed: seed,
		Topology: topology.GenConfig{
			NumStub:       160,
			NumEyeball:    80,
			NumUniversity: 16,
			NumRegional:   24,
		},
		CollectorPeers: 30,
	}
}

func benchFailover() experiment.FailoverConfig {
	return experiment.FailoverConfig{
		ProbeInterval: 1.5, ProbeDuration: 300, ConvergeTime: 3600, MaxTargets: 15,
	}
}

var benchSites = []string{"atl", "msn", "slc"}

// selection is computed once and shared by the benchmarks that need it.
var sharedSel *experiment.Selection

func getSelection(b *testing.B) *experiment.Selection {
	b.Helper()
	if sharedSel == nil {
		sel, err := experiment.SelectTargets(benchConfig(1), 40)
		if err != nil {
			b.Fatal(err)
		}
		sharedSel = sel
	}
	return sharedSel
}

// BenchmarkFigure2 regenerates the §5.4.1 reconnection/failover CDFs for
// the four techniques of Figure 2 and reports their failover medians.
func BenchmarkFigure2(b *testing.B) {
	sel := getSelection(b)
	var last []experiment.CDFPair
	for i := 0; i < b.N; i++ {
		pairs, err := experiment.Figure2(benchConfig(1), sel, []core.Technique{
			core.ProactiveSuperprefix{},
			core.ReactiveAnycast{},
			core.ProactivePrepending{Prepends: 3},
			core.Anycast{},
		}, benchSites, benchFailover())
		if err != nil {
			b.Fatal(err)
		}
		last = pairs
	}
	for _, p := range last {
		b.ReportMetric(p.Failover.Median(), p.Technique+"-failover-p50-s")
		b.ReportMetric(p.Reconnection.Median(), p.Technique+"-recon-p50-s")
	}
}

var benchFig2Techs = []core.Technique{
	core.ProactiveSuperprefix{},
	core.ReactiveAnycast{},
	core.ProactivePrepending{Prepends: 3},
	core.Anycast{},
}

// BenchmarkFigure2Sequential pins the historical execution mode — one run
// at a time, every run deploying and converging its own world from scratch —
// as the baseline for the runner's speedup.
func BenchmarkFigure2Sequential(b *testing.B) {
	sel := getSelection(b)
	r := &experiment.Runner{Workers: 1, DisableReuse: true}
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure2(benchConfig(1), sel, benchFig2Techs, benchSites, benchFailover()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Parallel is the runner's default mode: GOMAXPROCS workers
// with converged-world reuse. Results are bit-identical to Sequential (see
// TestRunnerDeterminismAcrossWorkers); only the wall clock differs.
func BenchmarkFigure2Parallel(b *testing.B) {
	sel := getSelection(b)
	r := &experiment.Runner{}
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure2(benchConfig(1), sel, benchFig2Techs, benchSites, benchFailover()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Metrics is BenchmarkFigure2Parallel with a live metrics
// registry on every layer; comparing the two bounds the instrumentation
// overhead (the acceptance budget is ≤2% with the registry disabled, and
// the enabled path should stay within a few percent).
func BenchmarkFigure2Metrics(b *testing.B) {
	sel := getSelection(b)
	reg := obs.NewRegistry()
	r := &experiment.Runner{Obs: reg}
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure2(benchConfig(1), sel, benchFig2Techs, benchSites, benchFailover()); err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range reg.Snapshot() {
		if m.Name == "netsim_events_executed_total" {
			b.ReportMetric(float64(m.Value)/float64(b.N), "kernel-events/op")
		}
	}
}

// BenchmarkTable1 regenerates the §5.4.2 traffic-control table and reports
// the mean steerable share at both prepend depths.
func BenchmarkTable1(b *testing.B) {
	sel := getSelection(b)
	var rows []experiment.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.Table1(benchConfig(1), sel)
		if err != nil {
			b.Fatal(err)
		}
	}
	var p3, p5 float64
	for _, r := range rows {
		p3 += r.Prepend3
		p5 += r.Prepend5
	}
	b.ReportMetric(p3/float64(len(rows)), "mean-prepend3-share")
	b.ReportMetric(p5/float64(len(rows)), "mean-prepend5-share")
}

// BenchmarkTable2 assembles the tradeoff matrix from fresh Figure 2 and
// Table 1 measurements.
func BenchmarkTable2(b *testing.B) {
	sel := getSelection(b)
	for i := 0; i < b.N; i++ {
		pairs, err := experiment.Figure2(benchConfig(1), sel,
			[]core.Technique{core.ReactiveAnycast{}, core.Anycast{}},
			benchSites[:1], benchFailover())
		if err != nil {
			b.Fatal(err)
		}
		t1, err := experiment.Table1(benchConfig(1), sel)
		if err != nil {
			b.Fatal(err)
		}
		rows := experiment.Table2(pairs, t1)
		if len(rows) == 0 {
			b.Fatal("empty table 2")
		}
	}
}

// BenchmarkFigure3 regenerates the Appendix A withdrawal-convergence CDFs.
func BenchmarkFigure3(b *testing.B) {
	var res *experiment.Figure3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Figure3(benchConfig(2), 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Hypergiant.Median(), "hypergiant-conv-p50-s")
	b.ReportMetric(res.Testbed.Median(), "testbed-conv-p50-s")
	b.ReportMetric(res.Testbed.Percentile(90), "testbed-conv-p90-s")
}

// BenchmarkFigure4 regenerates the Appendix B announcement-propagation
// CDFs.
func BenchmarkFigure4(b *testing.B) {
	var res *experiment.Figure4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.Figure4(benchConfig(3), 3, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AnycastCensus.Median(), "census-prop-p50-s")
	b.ReportMetric(res.Testbed.Median(), "testbed-prop-p50-s")
}

// BenchmarkFigure5 regenerates the Appendix C.2 prepend-depth comparison.
func BenchmarkFigure5(b *testing.B) {
	sel := getSelection(b)
	var pairs []experiment.CDFPair
	for i := 0; i < b.N; i++ {
		var err error
		pairs, err = experiment.Figure5(benchConfig(1), sel, benchSites[:2], benchFailover())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pairs[0].Failover.Median(), "prepend3-failover-p50-s")
	b.ReportMetric(pairs[1].Failover.Median(), "prepend5-failover-p50-s")
}

// BenchmarkAppendixC1 regenerates the diverging-AS analysis for sea1.
func BenchmarkAppendixC1(b *testing.B) {
	sel := getSelection(b)
	var intended, byRel float64
	for i := 0; i < b.N; i++ {
		res, err := experiment.AppendixC1(benchConfig(1), sel, "sea1")
		if err != nil {
			b.Fatal(err)
		}
		if res.Compared > 0 {
			intended = float64(res.ToIntended) / float64(res.Compared)
		}
		if res.RelationshipComparable > 0 {
			byRel = float64(res.ByRelationship) / float64(res.RelationshipComparable)
		}
	}
	b.ReportMetric(intended, "to-intended-share")
	b.ReportMetric(byRel, "explained-by-relationship-share")
}

// BenchmarkCombined is the §4 ablation: reactive-anycast with and without
// the covering superprefix.
func BenchmarkCombined(b *testing.B) {
	sel := getSelection(b)
	var pairs []experiment.CDFPair
	for i := 0; i < b.N; i++ {
		var err error
		pairs, err = experiment.Figure2(benchConfig(1), sel,
			[]core.Technique{core.ReactiveAnycast{}, core.Combined{}},
			benchSites[:2], benchFailover())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pairs[0].Failover.Percentile(20), "reactive-failover-p20-s")
	b.ReportMetric(pairs[1].Failover.Percentile(20), "combined-failover-p20-s")
	b.ReportMetric(pairs[0].Failover.Percentile(95), "reactive-failover-p95-s")
	b.ReportMetric(pairs[1].Failover.Percentile(95), "combined-failover-p95-s")
}

// BenchmarkUnicastDNS quantifies the unicast baseline's DNS-gated failover.
func BenchmarkUnicastDNS(b *testing.B) {
	var med, p99 float64
	for i := 0; i < b.N; i++ {
		ucfg := experiment.DefaultUnicastDNSConfig()
		ucfg.Clients = 800
		cdf, err := experiment.UnicastDNSFailover(benchConfig(4), ucfg)
		if err != nil {
			b.Fatal(err)
		}
		med, p99 = cdf.Median(), cdf.Percentile(99)
	}
	b.ReportMetric(med, "unicast-dns-failover-p50-s")
	b.ReportMetric(p99, "unicast-dns-failover-p99-s")
}

// BenchmarkAblationMRAI sweeps the MRAI timer and reports withdrawal
// convergence — the knob behind Figure 3's regime (DESIGN.md §6).
func BenchmarkAblationMRAI(b *testing.B) {
	for _, mrai := range []float64{15, 30, 45, 60} {
		b.Run(benchName("mrai", mrai), func(b *testing.B) {
			var med float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(5)
				bcfg := bgp.DefaultConfig()
				bcfg.MRAI = mrai
				cfg.BGP = bcfg
				res, err := experiment.Figure3(cfg, 1)
				if err != nil {
					b.Fatal(err)
				}
				med = res.Testbed.Median()
			}
			b.ReportMetric(med, "withdrawal-conv-p50-s")
		})
	}
}

// BenchmarkAblationPaceWithdrawals contrasts RFC-pure unpaced withdrawals
// with the deployed-router pacing the model defaults to (DESIGN.md §6).
func BenchmarkAblationPaceWithdrawals(b *testing.B) {
	for _, pace := range []bool{false, true} {
		name := "unpaced"
		if pace {
			name = "paced"
		}
		b.Run(name, func(b *testing.B) {
			var med float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(6)
				bcfg := bgp.DefaultConfig()
				bcfg.PaceWithdrawals = pace
				cfg.BGP = bcfg
				res, err := experiment.Figure3(cfg, 1)
				if err != nil {
					b.Fatal(err)
				}
				med = res.Testbed.Median()
			}
			b.ReportMetric(med, "withdrawal-conv-p50-s")
		})
	}
}

// BenchmarkAblationScopedPrepending compares prepend-everywhere (as the
// paper's evaluation must, §5.2) with the paper's recommended
// scoped-to-shared-neighbors announcements (§4).
func BenchmarkAblationScopedPrepending(b *testing.B) {
	sel := getSelection(b)
	for _, scoped := range []bool{false, true} {
		name := "everywhere"
		if scoped {
			name = "scoped"
		}
		b.Run(name, func(b *testing.B) {
			var share float64
			for i := 0; i < b.N; i++ {
				w, err := experiment.NewWorld(benchConfig(1))
				if err != nil {
					b.Fatal(err)
				}
				if err := w.CDN.Deploy(core.ProactivePrepending{Prepends: 3, Scoped: scoped}); err != nil {
					b.Fatal(err)
				}
				w.Converge(3600)
				ok, n := 0, 0
				for _, st := range sel.Sites {
					s := w.CDN.Site(st.Code)
					for _, id := range st.NotAnycast {
						n++
						if w.CDN.CanSteer(id, s) {
							ok++
						}
					}
				}
				if n > 0 {
					share = float64(ok) / float64(n)
				}
			}
			b.ReportMetric(share, "steerable-share")
		})
	}
}

// BenchmarkAblationDamping measures route-flap damping's effect on
// reactive-anycast failover: reactive announcements arriving amid the
// withdrawal churn can be penalized at routers that saw the prefix flap
// (DESIGN.md §6, one candidate explanation for the combined technique's
// tail in §4).
func BenchmarkAblationDamping(b *testing.B) {
	sel := getSelection(b)
	for _, damp := range []bool{false, true} {
		name := "off"
		if damp {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var p50, p95 float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(1)
				bcfg := bgp.DefaultConfig()
				if damp {
					bcfg.Damping = bgp.DefaultDamping()
				}
				cfg.BGP = bcfg
				pairs, err := experiment.Figure2(cfg, sel,
					[]core.Technique{core.ReactiveAnycast{}}, benchSites[:2], benchFailover())
				if err != nil {
					b.Fatal(err)
				}
				p50 = pairs[0].Failover.Median()
				p95 = pairs[0].Failover.Percentile(95)
			}
			b.ReportMetric(p50, "reactive-failover-p50-s")
			b.ReportMetric(p95, "reactive-failover-p95-s")
		})
	}
}

// BenchmarkAblationMEDvsPrepending compares the §4 MED variant against
// prepending on both axes: control share and failover time. It runs on a
// real-CDN-style deployment where all sites share two tier-1 providers
// (§4: scoped announcements need shared neighbors; PEERING's disjoint
// providers would leave the scoped variants without backup coverage).
func BenchmarkAblationMEDvsPrepending(b *testing.B) {
	sharedCfg := benchConfig(1)
	sharedCfg.Topology.CDNSharedProviders = 2
	sel, err := experiment.SelectTargets(sharedCfg, 40)
	if err != nil {
		b.Fatal(err)
	}
	for _, tech := range []core.Technique{
		core.ProactivePrepending{Prepends: 3},
		core.ProactivePrepending{Prepends: 3, Scoped: true},
		core.ProactiveMED{},
	} {
		tech := tech
		b.Run(tech.Name(), func(b *testing.B) {
			var share, p50 float64
			for i := 0; i < b.N; i++ {
				w, err := experiment.NewWorld(sharedCfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.CDN.Deploy(tech); err != nil {
					b.Fatal(err)
				}
				w.Converge(3600)
				ok, n := 0, 0
				for _, st := range sel.Sites {
					s := w.CDN.Site(st.Code)
					for _, id := range st.NotAnycast {
						n++
						if w.CDN.CanSteer(id, s) {
							ok++
						}
					}
				}
				if n > 0 {
					share = float64(ok) / float64(n)
				}
				pairs, err := experiment.Figure2(sharedCfg, sel,
					[]core.Technique{tech}, benchSites[:1], benchFailover())
				if err != nil {
					b.Fatal(err)
				}
				p50 = pairs[0].Failover.Median()
			}
			b.ReportMetric(share, "steerable-share")
			b.ReportMetric(p50, "failover-p50-s")
		})
	}
}

// BenchmarkAblationCollectorPeers varies the number of collector peers and
// reports the Appendix A estimator error (DESIGN.md §6).
func BenchmarkAblationCollectorPeers(b *testing.B) {
	for _, peers := range []int{10, 30, 60} {
		b.Run(benchName("peers", float64(peers)), func(b *testing.B) {
			var estErr float64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(7)
				cfg.CollectorPeers = peers
				res, err := experiment.Figure3(cfg, 1)
				if err != nil {
					b.Fatal(err)
				}
				estErr = res.EstimatorError.Median()
			}
			b.ReportMetric(estErr, "estimator-error-p50-s")
		})
	}
}

// BenchmarkBGPConvergence measures the raw simulator: one full origination
// wave over the default ~900-AS topology.
func BenchmarkBGPConvergence(b *testing.B) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	prefix := core.SitePrefix(0)
	site := topo.NodeByName("cdn-ams")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := netsim.New(int64(i))
		net := bgp.New(sim, topo, bgp.DefaultConfig())
		net.Originate(site.ID, prefix, nil)
		sim.Run()
	}
}

// BenchmarkDataplaneForward measures FIB-walk forwarding over a converged
// network.
func BenchmarkDataplaneForward(b *testing.B) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	sim := netsim.New(1)
	net := bgp.New(sim, topo, bgp.DefaultConfig())
	plane := dataplane.New(net)
	site := topo.NodeByName("cdn-atl")
	prefix := core.SitePrefix(3)
	net.Originate(site.ID, prefix, nil)
	sim.Run()
	addr := core.ServiceAddr(prefix)
	targets := topo.NodesOfClass(topology.ClassStub)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plane.Forward(targets[i%len(targets)].ID, addr)
	}
}

// BenchmarkCollectorEstimator measures the Appendix A/B estimators over a
// recorded archive.
func BenchmarkCollectorEstimator(b *testing.B) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 10})
	if err != nil {
		b.Fatal(err)
	}
	sim := netsim.New(1)
	net := bgp.New(sim, topo, bgp.DefaultConfig())
	col := collector.New("rrc00")
	if err := col.Attach(net, collector.SelectPeers(topo, 40, 1)...); err != nil {
		b.Fatal(err)
	}
	site := topo.NodeByName("cdn-msn")
	prefix := core.SitePrefix(7)
	net.Originate(site.ID, prefix, nil)
	sim.Run()
	net.Withdraw(site.ID, prefix)
	sim.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := col.EstimateEventTime(prefix, bgp.Withdraw, 5, 20); !ok {
			b.Fatal("no burst")
		}
		col.ConvergenceTimes(prefix, 0, 1000)
	}
}

func benchName(prefix string, v float64) string {
	return prefix + "-" + itoa(int(v))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// shardBenchTopo generates the paper-scale topology (~3,500 ASes) shared by
// the sharded-convergence benchmarks.
func shardBenchTopo(b *testing.B) *topology.Topology {
	b.Helper()
	cfg := experiment.DefaultWorldConfig(experiment.WithPaperScale())
	cfg.Topology.Seed = cfg.Seed
	topo, err := topology.Cached(cfg.Topology)
	if err != nil {
		b.Fatal(err)
	}
	return topo
}

// shardedConverge builds one BGP network over topo at the given shard count,
// originates a deploy-like wave (every site announces its prefix at t=0),
// and drains the simulation to convergence. The network is returned so the
// caller can read post-convergence shard statistics.
func shardedConverge(b *testing.B, topo *topology.Topology, shards int, seed int64) *bgp.Network {
	b.Helper()
	sim := netsim.New(seed)
	var net *bgp.Network
	if shards > 1 {
		var err error
		net, err = bgp.NewSharded(sim, topo, bgp.DefaultConfig(), shards, seed)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		net = bgp.New(sim, topo, bgp.DefaultConfig())
	}
	for i, code := range topology.DefaultSiteCodes {
		site := topo.NodeByName("cdn-" + code)
		net.Originate(site.ID, core.SitePrefix(i), nil)
	}
	sim.Run()
	return net
}

// BenchmarkConvergenceSharded measures single-simulation BGP convergence at
// paper scale across shard counts. The shards=8 sub-benchmark also times one
// untimed shards=1 reference run and reports the wall-clock ratio as
// speedup-x — a machine-independent metric cmd/benchjson gates on (≥3x).
func BenchmarkConvergenceSharded(b *testing.B) {
	topo := shardBenchTopo(b)
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var single float64
			if shards == 8 {
				t0 := time.Now()
				shardedConverge(b, topo, 1, 977)
				single = time.Since(t0).Seconds()
			}
			b.ResetTimer()
			t0 := time.Now()
			var last *bgp.Network
			for i := 0; i < b.N; i++ {
				last = shardedConverge(b, topo, shards, int64(i))
			}
			if shards == 8 {
				perOp := time.Since(t0).Seconds() / float64(b.N)
				b.ReportMetric(single/perOp, "speedup-x")
				// Event imbalance across the static cost-model partition:
				// max/mean of per-shard executed events (the pre-partitioner
				// BFS chunk cut sat at ~1.41). BenchmarkConvergencePartition
				// reports the same metric for both partition modes and
				// carries the ceiling gate.
				counts := last.ShardEventCounts()
				var sum, max uint64
				for _, c := range counts {
					sum += c
					if c > max {
						max = c
					}
				}
				if sum > 0 {
					mean := float64(sum) / float64(len(counts))
					b.ReportMetric(float64(max)/mean, "event-imbalance-max-mean")
				}
			}
		})
	}
}

// shardedConvergeWeighted is shardedConverge with an explicit per-speaker
// weight profile for the partitioner (nil means the static cost model).
func shardedConvergeWeighted(b *testing.B, topo *topology.Topology, shards int, seed int64, weights []float64) *bgp.Network {
	b.Helper()
	sim := netsim.New(seed)
	net, err := bgp.NewShardedWeighted(sim, topo, bgp.DefaultConfig(), shards, seed, weights)
	if err != nil {
		b.Fatal(err)
	}
	for i, code := range topology.DefaultSiteCodes {
		site := topo.NodeByName("cdn-" + code)
		net.Originate(site.ID, core.SitePrefix(i), nil)
	}
	sim.Run()
	return net
}

// benchProfileWeights measures per-speaker calendar-event counts with one
// unsharded converge of the same deploy wave — the bgp-layer analogue of the
// experiment layer's profiled partition mode (experiment/profile.go).
func benchProfileWeights(b *testing.B, topo *topology.Topology, seed int64) []float64 {
	b.Helper()
	net := shardedConverge(b, topo, 1, seed)
	counts := net.SpeakerEventCounts()
	w := make([]float64, len(counts))
	for i, c := range counts {
		w[i] = 1 + float64(c)
	}
	return w
}

// BenchmarkPlanShards measures the partitioner itself — BFS order, weighted
// span cut, and bounded refinement — at paper scale and the gate's shard
// count. Planning is a one-time world-construction cost; this keeps it
// visible so refinement budgets cannot silently grow into converge
// territory.
func BenchmarkPlanShards(b *testing.B) {
	topo := shardBenchTopo(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bgp.PlanShards(topo, 8, int64(i))
	}
}

// BenchmarkConvergencePartition measures the 8-shard deploy-wave converge
// under both partition modes and reports each mode's event imbalance
// (max/mean of per-shard executed events) — the machine-deterministic
// balance metric behind the tentpole gate: cmd/benchjson fails
// `make bench-json` when mode=profiled exceeds 1.15 (the pre-partitioner
// BFS chunk cut sat at ~1.41). Profile warm-ups run off-clock and are
// memoized per seed, so ns/op stays comparable across modes.
func BenchmarkConvergencePartition(b *testing.B) {
	topo := shardBenchTopo(b)
	const shards = 8
	for _, mode := range []string{"static", "profiled"} {
		mode := mode
		b.Run("mode="+mode, func(b *testing.B) {
			profiles := map[int64][]float64{}
			var last *bgp.Network
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				var weights []float64
				if mode == "profiled" {
					b.StopTimer()
					w, ok := profiles[seed]
					if !ok {
						w = benchProfileWeights(b, topo, seed)
						profiles[seed] = w
					}
					weights = w
					b.StartTimer()
				}
				last = shardedConvergeWeighted(b, topo, shards, seed, weights)
			}
			b.StopTimer()
			counts := last.ShardEventCounts()
			var sum, max uint64
			for _, c := range counts {
				sum += c
				if c > max {
					max = c
				}
			}
			if sum > 0 {
				mean := float64(sum) / float64(len(counts))
				b.ReportMetric(float64(max)/mean, "event-imbalance-max-mean")
			}
		})
	}
}

// BenchmarkFigure2Sharded runs the Figure 2 matrix on sharded worlds,
// composing the experiment runner's worker pool with per-world shard
// goroutines. The reduced bench topology is too small for sharding to pay
// off; this pins the composition's overhead, while BenchmarkConvergenceSharded
// carries the paper-scale speedup gate.
func BenchmarkFigure2Sharded(b *testing.B) {
	sel := getSelection(b)
	for _, shards := range []int{2, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := benchConfig(1)
			cfg.Shards = shards
			r := &experiment.Runner{}
			for i := 0; i < b.N; i++ {
				if _, err := r.Figure2(cfg, sel, benchFig2Techs, benchSites, benchFailover()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioRegionalOutage measures a full scenario-engine run: the
// bundled correlated regional outage (slc, sea1, and sea2 fail together)
// against reactive-anycast, including probing and per-event analysis.
func BenchmarkScenarioRegionalOutage(b *testing.B) {
	sel := getSelection(b)
	sc := scenario.ByName("regional-outage")
	r := &experiment.Runner{}
	sco := experiment.DefaultScenarioConfig()
	sco.MaxTargetsPerSite = 8
	var last *scenario.Result
	for i := 0; i < b.N; i++ {
		res, err := r.RunScenario(benchConfig(1), sel, core.ReactiveAnycast{}, sc, sco)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Availability, "availability")
	b.ReportMetric(last.Events[0].Reconnection.P50, "regional-recon-p50-s")
}

// BenchmarkLoadAccounting measures one demand fold: the load accountant
// re-attributing every target's request rate to its live catchment on a
// converged demand-carrying world. Accountant.Record is the per-probe hot
// path (//cdnlint:allocfree); the fold must stay allocation-free after
// warm-up — allocs/op is committed in bench/pr9_baseline.json and gated by
// make bench-json.
func BenchmarkLoadAccounting(b *testing.B) {
	cfg := benchConfig(1)
	experiment.WithDefaultDemand()(&cfg)
	w, err := experiment.NewConvergedWorld(cfg, core.Anycast{}, 3600)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.CDN.RefreshLoad()
	}
	b.ReportMetric(float64(w.CDN.Demand().NumTargets()), "targets-per-fold")
}
