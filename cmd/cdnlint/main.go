// Command cdnlint runs the repo's invariant analyzers (internal/analysis)
// over Go packages. It supports two modes:
//
// Standalone, loading packages through `go list -export`:
//
//	cdnlint ./...
//	cdnlint -checks detrand,maporder ./internal/bgp
//
// and as a go vet tool, speaking vet's unpublished driver protocol
// (-flags discovery plus per-package .cfg files):
//
//	go vet -vettool=$(which cdnlint) ./...
//
// Exit status: 0 clean, 1 diagnostics reported (2 in vet mode, matching
// unitchecker), 3 operational failure.
//
// Check selection: -checks runs a named subset; subset runs disable the
// stale-//lint:ignore report, since an ignore for a check that is not
// running would look spuriously unused. Both modes analyze non-test Go
// files only: test files may use wall clocks and allocate freely.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"bestofboth/internal/analysis"
	"bestofboth/pkg/bestofboth/api"
)

func main() {
	flagV := flag.String("V", "", "print version and exit (vet tool protocol)")
	flagFlags := flag.Bool("flags", false, "print flag descriptions in JSON and exit (vet tool protocol)")
	flagChecks := flag.String("checks", "", "comma-separated checks to run (default: all)")
	flagList := flag.Bool("list", false, "list available checks and exit")
	flagJSON := flag.Bool("json", false, "emit an api.LintReport on stdout instead of plain text (standalone mode only)")
	flag.Parse()

	switch {
	case *flagV != "":
		printVersion()
		return
	case *flagFlags:
		printFlagsJSON()
		return
	case *flagList:
		for _, a := range analysis.All() {
			fmt.Printf("cdnlint/%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := analysis.Select(*flagChecks)
	if err != nil {
		fatalf("%v", err)
	}
	opts := analysis.Options{StaleCheck: *flagChecks == ""}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// go vet owns the output format in vet mode; -json applies to the
		// standalone driver only.
		os.Exit(runVet(args[0], analyzers, opts))
	}
	os.Exit(runStandalone(args, analyzers, opts, *flagJSON))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cdnlint: "+format+"\n", args...)
	os.Exit(3)
}

// printVersion answers `cdnlint -V=full`. The build ID must change when
// the binary does, because go vet folds it into its action cache key.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("cdnlint version devel buildID=%x\n", h.Sum(nil)[:12])
}

// printFlagsJSON answers `cdnlint -flags`: go vet queries it to learn
// which flags it may forward to the tool.
func printFlagsJSON() {
	type flagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	descs := []flagDesc{
		{Name: "checks", Bool: false, Usage: "comma-separated checks to run (default: all)"},
	}
	out, err := json.Marshal(descs)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s\n", out)
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// runStandalone loads the packages matching the patterns (default ./...)
// with `go list -export -json -deps`, type-checks each target against
// the export data of its dependencies, and reports diagnostics — as
// plain text lines, or as one api.LintReport document when jsonOut is
// set. Either way the exit code is 1 exactly when unsuppressed findings
// exist.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer, opts analysis.Options, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"list", "-export", "-json", "-deps"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fatalf("go list -export: %v", err)
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			fatalf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			fatalf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			tp := p
			targets = append(targets, &tp)
		}
	}

	var checks []string
	for _, a := range analyzers {
		checks = append(checks, a.Name)
	}
	report := api.NewLintReport(checks)

	fset := token.NewFileSet()
	imp := exportDataImporter(fset, exports)
	exit := 0
	for _, p := range targets {
		if len(p.CgoFiles) > 0 {
			fmt.Fprintf(os.Stderr, "cdnlint: skipping %s: cgo packages are not supported\n", p.ImportPath)
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		res, err := analyze(fset, imp, p.ImportPath, files, analyzers, opts)
		if err != nil {
			fatalf("%s: %v", p.ImportPath, err)
		}
		for _, d := range res.Diagnostics {
			if jsonOut {
				report.Findings = append(report.Findings, toFinding(relativized(d), false, ""))
			} else {
				fmt.Println(relativized(d).String())
			}
			exit = 1
		}
		if jsonOut {
			for _, s := range res.Suppressed {
				report.Findings = append(report.Findings, toFinding(relativized(s.Diagnostic), true, s.Reason))
			}
		}
	}
	if jsonOut {
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatalf("encoding report: %v", err)
		}
		fmt.Printf("%s\n", out)
	}
	return exit
}

// toFinding converts one diagnostic into its wire form.
func toFinding(d analysis.Diagnostic, suppressed bool, reason string) api.LintFinding {
	return api.LintFinding{
		File:       d.Pos.Filename,
		Line:       d.Pos.Line,
		Col:        d.Pos.Column,
		Check:      d.Check,
		Message:    d.Message,
		Suppressed: suppressed,
		Reason:     reason,
	}
}

// relativized rewrites the diagnostic's path relative to the working
// directory when that is shorter, matching go vet's presentation.
func relativized(d analysis.Diagnostic) analysis.Diagnostic {
	wd, err := os.Getwd()
	if err != nil {
		return d
	}
	rel, err := filepath.Rel(wd, d.Pos.Filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return d
	}
	d.Pos.Filename = rel
	return d
}

// vetConfig mirrors the JSON config file go vet hands to -vettool
// binaries (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID          string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runVet handles one `go vet -vettool=cdnlint` package invocation.
func runVet(cfgPath string, analyzers []*analysis.Analyzer, opts analysis.Options) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgPath, err)
	}
	// An empty vetx file keeps go vet's caching happy; cdnlint exports no
	// cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("%v", err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test augmentations (ID "pkg [pkg.test]") and test files are out of
	// scope: the invariants bind simulation code, not its tests.
	if strings.Contains(cfg.ID, " [") {
		return 0
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	res, err := analyze(fset, imp, cfg.ImportPath, files, analyzers, opts)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatalf("%s: %v", cfg.ImportPath, err)
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(res.Diagnostics) > 0 {
		return 2 // the exit code go vet expects for findings
	}
	return 0
}

// exportDataImporter resolves imports against the Export files collected
// from go list, special-casing unsafe (which has no export data).
func exportDataImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// analyze parses and type-checks one package's files and runs the
// analyzers over it.
func analyze(fset *token.FileSet, imp types.Importer, path string, filenames []string,
	analyzers []*analysis.Analyzer, opts analysis.Options) (analysis.Result, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return analysis.Result{}, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return analysis.Result{}, err
	}
	return analysis.RunDetailed(&analysis.Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, analyzers, opts), nil
}
