package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"bestofboth/pkg/bestofboth/api"
)

// The driver tests re-exec the test binary as cdnlint itself, so the
// handshake (-V=full, -flags), the vet.cfg protocol, and the exit codes
// are exercised exactly as go vet sees them.
func TestMain(m *testing.M) {
	if os.Getenv("CDNLINT_BE_TOOL") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runTool execs the test binary in tool mode and returns its streams and
// exit code.
func runTool(t *testing.T, dir string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CDNLINT_BE_TOOL=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running tool: %v", err)
	}
	return out.String(), errb.String(), code
}

func TestVersionHandshake(t *testing.T) {
	out, _, code := runTool(t, "", "-V=full")
	if code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	// go vet folds the reported build ID into its action cache key, so the
	// line must be well-formed and stable for an unchanged binary.
	re := regexp.MustCompile(`^cdnlint version devel buildID=[0-9a-f]{24}\n$`)
	if !re.MatchString(out) {
		t.Fatalf("malformed -V=full output: %q", out)
	}
	again, _, _ := runTool(t, "", "-V=full")
	if again != out {
		t.Fatalf("build ID not stable across runs of the same binary: %q vs %q", out, again)
	}
}

func TestFlagsHandshake(t *testing.T) {
	out, _, code := runTool(t, "", "-flags")
	if code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
	var descs []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal([]byte(out), &descs); err != nil {
		t.Fatalf("-flags output is not the JSON go vet expects: %v\n%s", err, out)
	}
	if len(descs) != 1 || descs[0].Name != "checks" || descs[0].Bool {
		t.Fatalf("want exactly the forwardable string flag 'checks', got %+v", descs)
	}
}

// sentinelSrc trips errcmp (direct == against a package-level sentinel)
// without importing anything, so the vet.cfg needs no export data.
const sentinelSrc = `package demo

type failure struct{}

func (failure) Error() string { return "failure" }

var ErrStop error = failure{}

func Stopped(err error) bool { return err == ErrStop }
`

const cleanSrc = `package demo

func Add(a, b int) int { return a + b }
`

// writeVetConfig writes a minimal vet.cfg for a one-file dependency-free
// package and returns the cfg path plus the VetxOutput path it names.
func writeVetConfig(t *testing.T, dir, id string, goFiles []string, vetxOnly bool) (cfgPath, vetxPath string) {
	t.Helper()
	vetxPath = filepath.Join(dir, "demo.vetx")
	cfg := vetConfig{
		ID:          id,
		ImportPath:  "demo",
		GoFiles:     goFiles,
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
		VetxOnly:    vetxOnly,
		VetxOutput:  vetxPath,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

func TestVetConfigFindings(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "demo.go")
	if err := os.WriteFile(src, []byte(sentinelSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, vetxPath := writeVetConfig(t, dir, "demo", []string{src}, false)

	out, errOut, code := runTool(t, "", cfgPath)
	if code != 2 {
		t.Fatalf("findings must exit 2 (go vet's convention), got %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(errOut, "[cdnlint/errcmp]") {
		t.Fatalf("diagnostics must go to stderr, got: %q", errOut)
	}
	if out != "" {
		t.Fatalf("vet mode must keep stdout clean for the driver, got: %q", out)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Fatalf("vetx facts file not written: %v", err)
	}
}

func TestVetConfigVetxOnly(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "demo.go")
	if err := os.WriteFile(src, []byte(sentinelSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, vetxPath := writeVetConfig(t, dir, "demo", []string{src}, true)

	out, errOut, code := runTool(t, "", cfgPath)
	if code != 0 || out != "" || errOut != "" {
		t.Fatalf("VetxOnly runs must be silent and clean: code=%d stdout=%q stderr=%q", code, out, errOut)
	}
	if _, err := os.Stat(vetxPath); err != nil {
		t.Fatalf("VetxOnly must still write the facts file: %v", err)
	}
}

func TestVetConfigSkipsTestAugmentation(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "demo.go")
	if err := os.WriteFile(src, []byte(sentinelSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, _ := writeVetConfig(t, dir, "demo [demo.test]", []string{src}, false)

	_, errOut, code := runTool(t, "", cfgPath)
	if code != 0 || errOut != "" {
		t.Fatalf("test-augmented package variants are out of scope: code=%d stderr=%q", code, errOut)
	}
}

func TestVetConfigFiltersTestFiles(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "demo.go")
	bad := filepath.Join(dir, "demo_test.go")
	if err := os.WriteFile(clean, []byte(cleanSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(sentinelSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, _ := writeVetConfig(t, dir, "demo", []string{clean, bad}, false)

	_, errOut, code := runTool(t, "", cfgPath)
	if code != 0 || errOut != "" {
		t.Fatalf("_test.go files must not be analyzed: code=%d stderr=%q", code, errOut)
	}
}

func TestVetConfigMalformed(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	_, errOut, code := runTool(t, "", cfgPath)
	if code != 3 {
		t.Fatalf("operational failures must exit 3, got %d (stderr %q)", code, errOut)
	}
}

func TestVetConfigTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "demo.go")
	if err := os.WriteFile(src, []byte("package demo\n\nvar x undefinedType\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	cfgPath, _ := writeVetConfig(t, dir, "demo", []string{src}, false)

	_, _, code := runTool(t, "", cfgPath)
	if code != 3 {
		t.Fatalf("type errors without SucceedOnTypecheckFailure must exit 3, got %d", code)
	}

	var cfg vetConfig
	data, _ := os.ReadFile(cfgPath)
	if err := json.Unmarshal(data, &cfg); err != nil {
		t.Fatal(err)
	}
	cfg.SucceedOnTypecheckFailure = true
	data, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	_, errOut, code := runTool(t, "", cfgPath)
	if code != 0 {
		t.Fatalf("SucceedOnTypecheckFailure must swallow type errors, got %d (stderr %q)", code, errOut)
	}
}

// writeDemoModule lays out a dependency-free module with one active
// finding and one suppressed one for standalone-driver tests.
func writeDemoModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module demo\n\ngo 1.22\n",
		"demo.go": `package demo

type failure struct{}

func (failure) Error() string { return "failure" }

var ErrStop error = failure{}

func Stopped(err error) bool { return err == ErrStop }

func Halted(err error) bool {
	//lint:ignore cdnlint/errcmp exercising suppression in the driver test
	return err == ErrStop
}
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestStandaloneText(t *testing.T) {
	dir := writeDemoModule(t)
	out, errOut, code := runTool(t, dir, "./...")
	if code != 1 {
		t.Fatalf("standalone findings must exit 1, got %d\nstderr: %s", code, errOut)
	}
	if !strings.Contains(out, "demo.go:9:") || !strings.Contains(out, "[cdnlint/errcmp]") {
		t.Fatalf("want a relativized file:line:col errcmp finding on stdout, got: %q", out)
	}
	if strings.Count(strings.TrimSpace(out), "\n") != 0 {
		t.Fatalf("the suppressed finding must not print in text mode, got: %q", out)
	}
}

func TestStandaloneJSONReport(t *testing.T) {
	dir := writeDemoModule(t)
	out, errOut, code := runTool(t, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("-json must keep the findings exit code, got %d\nstderr: %s", code, errOut)
	}
	var report api.LintReport
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("stdout is not a LintReport: %v\n%s", err, out)
	}
	if report.APIVersion != api.Version {
		t.Fatalf("report apiVersion = %q, want %q", report.APIVersion, api.Version)
	}
	if len(report.Checks) != 10 {
		t.Fatalf("want all 10 checks listed, got %v", report.Checks)
	}
	var active, suppressed int
	for _, f := range report.Findings {
		if f.Check != "errcmp" || f.File != "demo.go" || f.Line == 0 {
			t.Fatalf("unexpected finding %+v", f)
		}
		if f.Suppressed {
			suppressed++
			if f.Reason != "exercising suppression in the driver test" {
				t.Fatalf("suppressed finding lost its reason: %+v", f)
			}
		} else {
			active++
		}
	}
	if active != 1 || suppressed != 1 {
		t.Fatalf("want 1 active + 1 suppressed finding, got %d + %d:\n%s", active, suppressed, out)
	}
}

func TestStandaloneCleanExitsZero(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module demo\n\ngo 1.22\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(cleanSrc), 0o666); err != nil {
		t.Fatal(err)
	}
	out, errOut, code := runTool(t, dir, "./...")
	if code != 0 || out != "" {
		t.Fatalf("clean tree must exit 0 silently: code=%d stdout=%q stderr=%q", code, out, errOut)
	}
}
