// Command bgpdump inspects MRT archives written by the simulator's route
// collectors, printing records in the familiar one-line-per-update format
// of the classic bgpdump tool (`bgpdump -m`).
//
// Usage:
//
//	bgpdump -in archive.mrt                  print an update archive
//	bgpdump -in rib.mrt -rib                 print a TABLE_DUMP_V2 RIB dump
//	bgpdump -generate archive.mrt [-seed N]  run a quick simulation (announce,
//	                                         converge, withdraw) and write its
//	                                         collector archive as MRT
//	bgpdump -generate rib.mrt -rib           write a RIB snapshot instead
//	bgpdump -generate a.mrt -in a.mrt        both: generate then print
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bestofboth/internal/bgp"
	"bestofboth/internal/collector"
	"bestofboth/internal/core"
	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

func main() {
	var (
		in       = flag.String("in", "", "MRT file to print")
		generate = flag.String("generate", "", "write a sample archive to this file")
		seed     = flag.Int64("seed", 42, "simulation seed for -generate")
		peers    = flag.Int("peers", 20, "collector peers for -generate")
		rib      = flag.Bool("rib", false, "use TABLE_DUMP_V2 RIB snapshots instead of update archives")
	)
	flag.Parse()
	if *in == "" && *generate == "" {
		fmt.Fprintln(os.Stderr, "usage: bgpdump [-in file.mrt] [-generate file.mrt]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *generate != "" {
		if err := generateArchive(*generate, *seed, *peers, *rib); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *generate)
	}
	if *in != "" {
		var err error
		if *rib {
			err = printRIB(*in)
		} else {
			err = printArchive(*in)
		}
		if err != nil {
			fatal(err)
		}
	}
}

// generateArchive runs an announce → converge → withdraw cycle of a site
// prefix and dumps the collector's view.
func generateArchive(path string, seed int64, peers int, rib bool) error {
	topo, err := topology.Generate(topology.GenConfig{Seed: seed})
	if err != nil {
		return err
	}
	sim := netsim.New(seed)
	net := bgp.New(sim, topo, bgp.DefaultConfig())
	col := collector.New("rrc00")
	if err := col.Attach(net, collector.SelectPeers(topo, peers, seed)...); err != nil {
		return err
	}
	site := topo.NodesOfClass(topology.ClassCDN)[0]
	prefix := core.SitePrefix(0)
	if err := net.Originate(site.ID, prefix, nil); err != nil {
		return err
	}
	sim.RunUntil(1200)
	var writeErr error
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if rib {
		// Snapshot while the prefix is announced.
		writeErr = col.WriteRIBDump(f, topo, sim.Now())
	} else {
		net.Withdraw(site.ID, prefix)
		sim.Run()
		writeErr = col.WriteMRT(f, topo, prefix)
	}
	if writeErr != nil {
		return writeErr
	}
	return f.Close()
}

// printRIB renders a TABLE_DUMP_V2 dump in `bgpdump -m` style:
//
//	TABLE_DUMP2|<time>|B|<peer ip>|<peer as>|<prefix>|<as path>|IGP
func printRIB(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := collector.ReadRIBDump(f)
	if err != nil {
		return err
	}
	for _, e := range entries {
		parts := make([]string, len(e.Path))
		for i, a := range e.Path {
			parts[i] = fmt.Sprintf("%d", a)
		}
		fmt.Printf("TABLE_DUMP2|B|%s|%d|%s|%s|IGP\n",
			collector.PeerAddr(e.Peer), e.PeerAS, e.Prefix, strings.Join(parts, " "))
	}
	fmt.Fprintf(os.Stderr, "%d RIB entries\n", len(entries))
	return nil
}

// printArchive renders a dump in `bgpdump -m` style:
//
//	BGP4MP_ET|<time>|A|<peer ip>|<peer as>|<prefix>|<as path>|IGP
//	BGP4MP_ET|<time>|W|<peer ip>|<peer as>|<prefix>
func printArchive(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	entries, err := collector.ReadMRT(f)
	if err != nil {
		return err
	}
	for _, e := range entries {
		for _, p := range e.Update.Withdrawn {
			fmt.Printf("BGP4MP_ET|%.6f|W|%s|%d|%s\n", e.Time, e.PeerIP, e.PeerAS, p)
		}
		if len(e.Update.NLRI) > 0 {
			path := make([]string, len(e.Update.ASPath))
			for i, a := range e.Update.ASPath {
				path[i] = fmt.Sprintf("%d", a)
			}
			for _, p := range e.Update.NLRI {
				fmt.Printf("BGP4MP_ET|%.6f|A|%s|%d|%s|%s|IGP\n",
					e.Time, e.PeerIP, e.PeerAS, p, strings.Join(path, " "))
			}
		}
	}
	fmt.Fprintf(os.Stderr, "%d MRT entries\n", len(entries))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bgpdump: %v\n", err)
	os.Exit(1)
}
