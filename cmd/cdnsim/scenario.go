package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"bestofboth/internal/core"
	"bestofboth/internal/experiment"
	"bestofboth/internal/scenario"
	"bestofboth/internal/stats"
)

// runScenarioCmd implements the `scenario` subcommand: run a declarative
// fault-injection timeline (bundled by name or loaded from a YAML/JSON
// file) against one or more techniques, reporting per-event metrics.
//
// The subcommand has its own flag set, parsed after the command word:
//
//	cdnsim scenario -name regional-outage -tech all -workers 8
//	cdnsim scenario -f outage.yaml -json out.json
//
// Output is deterministic: identical invocations are bit-identical on
// stdout at any -workers value (progress goes to stderr).
func runScenarioCmd(args []string, o options) error {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	file := fs.String("f", "", "YAML or JSON scenario file to run")
	name := fs.String("name", "", "bundled scenario to run (see -list)")
	list := fs.Bool("list", false, "list the bundled scenarios and exit")
	techs := fs.String("tech", "reactive-anycast", "comma-separated techniques, or \"all\"")
	monitor := fs.Bool("monitor", false, "run the probing health monitor (detects silent crashes)")
	seed := fs.Int64("seed", o.seed, "simulation seed")
	workers := fs.Int("workers", o.workers, "concurrent runs (results are identical at any worker count)")
	targets := fs.Int("targets", o.targets, "max targets selected per site")
	perSite := fs.Int("probe-targets", 12, "max targets probed per site group")
	jsonOut := fs.String("json", o.jsonOut, "also write results as JSON to this file")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cdnsim scenario [-f file | -name scenario | -list] [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		printScenarioList()
		return nil
	}
	sc, err := loadScenario(*file, *name)
	if err != nil {
		return err
	}
	techniques, err := parseTechniques(*techs)
	if err != nil {
		return err
	}

	sopts := o
	sopts.seed, sopts.workers, sopts.jsonOut = *seed, *workers, *jsonOut
	cfg := sopts.worldConfig()
	fmt.Fprintf(os.Stderr, "selecting targets (seed=%d, cap=%d/site)...\n", *seed, *targets)
	sel, err := experiment.SelectTargets(cfg, *targets)
	if err != nil {
		return err
	}

	runner := sopts.runner()
	sco := experiment.DefaultScenarioConfig()
	sco.MaxTargetsPerSite = *perSite
	sco.UseMonitor = *monitor

	report := experiment.NewReport(*seed)
	results, err := runner.RunScenarioMatrix(cfg, sel, techniques, []*scenario.Scenario{sc}, sco)
	if err != nil {
		return err
	}
	for ti, tech := range techniques {
		res := results[ti][0]
		printScenarioResult(res, sc)
		report.Add("scenario:"+sc.Name+":"+tech.Name(), res)
	}
	if *jsonOut != "" {
		if err := report.WriteFile(*jsonOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	return sopts.finish("scenario:"+sc.Name, cfg)
}

func printScenarioList() {
	t := &stats.Table{Header: []string{"name", "damping", "events", "description"}}
	for _, sc := range scenario.Library() {
		damp := ""
		if sc.Damping {
			damp = "yes"
		}
		t.AddRow(sc.Name, damp, fmt.Sprintf("%d", len(sc.Events)), sc.Description)
	}
	fmt.Println(t.Render())
}

func loadScenario(file, name string) (*scenario.Scenario, error) {
	switch {
	case file != "" && name != "":
		return nil, fmt.Errorf("scenario: -f and -name are mutually exclusive")
	case file != "":
		return scenario.LoadFile(file)
	case name != "":
		sc := scenario.ByName(name)
		if sc == nil {
			return nil, fmt.Errorf("scenario: no bundled scenario %q (try -list)", name)
		}
		return sc, nil
	}
	return nil, fmt.Errorf("scenario: need -f <file> or -name <scenario> (or -list)")
}

func parseTechniques(spec string) ([]core.Technique, error) {
	out, err := resolveTechniques(spec)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return out, nil
}

// resolveTechniques parses a comma-separated technique spec; the name
// vocabulary (including "all", "seven", and "load-shift+<base>") lives in
// core.TechniquesBySpec, shared with scenario events and control-plane
// mutations.
func resolveTechniques(spec string) ([]core.Technique, error) {
	return core.TechniquesBySpec(spec)
}

func printScenarioResult(res *scenario.Result, sc *scenario.Scenario) {
	fmt.Printf("\n=== scenario %s / %s ===\n", res.Scenario, res.Technique)
	if sc.Description != "" {
		fmt.Println(sc.Description)
	}
	fmt.Printf("horizon %gs, %d groups, %d targets, damping %v\n",
		res.Horizon, res.Groups, res.Targets, sc.Damping)
	fmt.Printf("probes sent %d, answered %d, availability %s, BGP updates %d\n",
		res.Sent, res.Answered, stats.Pct(res.Availability), res.BGPUpdates)
	for _, d := range res.Detections {
		fmt.Printf("monitor detected %s down at t=%.1fs\n", d.Site, d.At)
	}

	if l := res.Load; l != nil {
		fmt.Printf("load: %d samples, served %.0f rps·s, shed %.0f rps·s\n",
			l.Samples, l.ServedIntegral, l.ShedIntegral)
		lt := &stats.Table{Header: []string{"site", "capacity rps", "peak offered", "peak util", "final offered"}}
		for _, s := range l.Sites {
			lt.AddRow(s.Site,
				fmt.Sprintf("%.0f", s.CapacityRPS),
				fmt.Sprintf("%.0f", s.PeakOfferedRPS),
				fmt.Sprintf("%.2f", s.PeakUtilization),
				fmt.Sprintf("%.0f", s.FinalOfferedRPS))
		}
		fmt.Println(lt.Render())
	}

	t := &stats.Table{Header: []string{
		"t", "event", "down", "avail", "affected", "lost", "recon p50", "recon p90", "failover",
	}}
	for i := range res.Events {
		ev := &res.Events[i]
		recon50, recon90 := "-", "-"
		if ev.Reconnection.N > 0 {
			recon50 = fmt.Sprintf("%.1fs", ev.Reconnection.P50)
			recon90 = fmt.Sprintf("%.1fs", ev.Reconnection.P90)
		}
		t.AddRow(
			fmt.Sprintf("%g", ev.At),
			ev.Label,
			fmt.Sprintf("%d", ev.SitesDown),
			stats.Pct(ev.Availability),
			fmt.Sprintf("%d", ev.AffectedTargets),
			fmt.Sprintf("%d", ev.Lost),
			recon50, recon90,
			renderFailover(ev.FailoverSites),
		)
	}
	fmt.Println(t.Render())
}

// renderFailover formats the failover-site counts deterministically:
// descending count, then site code.
func renderFailover(m map[string]int) string {
	if len(m) == 0 {
		return "-"
	}
	type kv struct {
		site string
		n    int
	}
	out := make([]kv, 0, len(m))
	for s, n := range m {
		out = append(out, kv{s, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n > out[j].n
		}
		return out[i].site < out[j].site
	})
	parts := make([]string, len(out))
	for i, e := range out {
		parts[i] = fmt.Sprintf("%s:%d", e.site, e.n)
	}
	return strings.Join(parts, " ")
}
