package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"

	"bestofboth/pkg/bestofboth/api"
)

// errReceiptFailed marks a diverged verification receipt; runCtlCmd's
// caller turns it into a distinct exit code so scripts can tell "the
// change verified as wrong" from "the request failed".
var errReceiptFailed = fmt.Errorf("verification receipt failed")

const ctlUsage = `usage: cdnsim ctl [-addr URL] [-x] [-sabotage] [-drain-for S] <command> [args]

Query and mutate a running cdnsimd control-plane daemon (v1 API).
The exact JSON response body is printed to stdout.

Query commands:
  world | state | digests | dns | load | catchments | changesets
  get <changeset-id>

Mutation commands (dry-run by default; -x executes and verifies):
  drain <site>            drain a site for -drain-for virtual seconds
  fail <site>             hard-fail a site
  recover <site>          recover a failed site
  switch <technique>      switch the deployed technique
  scale <fraction>        multiply every target's demand rate
  prepend <site> <n>      re-originate the site /24 with n prepends (0 clears)
  apply <file|->          post mutations from a JSON file ({"mutations":[...]})

Exit status: 0 on success (and pass receipts), 3 when an executed
changeset's verification receipt fails, 1 on errors.
`

// runCtlCmd implements the `cdnsim ctl` client for cdnsimd's v1 API.
func runCtlCmd(args []string) error {
	fs := flag.NewFlagSet("ctl", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprint(os.Stderr, ctlUsage)
		fs.PrintDefaults()
	}
	addr := fs.String("addr", "http://127.0.0.1:8316", "daemon base URL")
	execute := fs.Bool("x", false, "execute the changeset on the live world (default: dry-run only)")
	sabotage := fs.Bool("sabotage", false, "ask a -test-sabotage daemon to diverge the execution (the receipt must then fail)")
	drainFor := fs.Float64("drain-for", 600, "drain duration in virtual seconds for the drain command")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("ctl: missing command")
	}
	base := strings.TrimSuffix(*addr, "/")
	cmd, operands := rest[0], rest[1:]

	switch cmd {
	case "world", "state", "digests", "dns", "load", "catchments", "changesets":
		if len(operands) != 0 {
			return fmt.Errorf("ctl %s: takes no arguments", cmd)
		}
		return ctlGet(base + "/v1/" + cmd)
	case "get":
		if len(operands) != 1 {
			return fmt.Errorf("ctl get: want <changeset-id>")
		}
		return ctlGet(base + "/v1/changesets/" + operands[0])
	}

	muts, err := ctlMutations(cmd, operands, *drainFor)
	if err != nil {
		return err
	}
	return ctlPost(base, muts, *execute, *sabotage)
}

// ctlMutations builds the one-mutation ChangeSet each mutation command
// stands for, or loads a full batch for apply.
func ctlMutations(cmd string, operands []string, drainFor float64) ([]api.Mutation, error) {
	one := func(m api.Mutation) ([]api.Mutation, error) { return []api.Mutation{m}, nil }
	switch cmd {
	case "drain":
		if len(operands) != 1 {
			return nil, fmt.Errorf("ctl drain: want <site>")
		}
		return one(api.Mutation{Kind: "drain", Site: operands[0], DrainFor: drainFor})
	case "fail":
		if len(operands) != 1 {
			return nil, fmt.Errorf("ctl fail: want <site>")
		}
		return one(api.Mutation{Kind: "fail", Site: operands[0]})
	case "recover":
		if len(operands) != 1 {
			return nil, fmt.Errorf("ctl recover: want <site>")
		}
		return one(api.Mutation{Kind: "recover", Site: operands[0]})
	case "switch":
		if len(operands) != 1 {
			return nil, fmt.Errorf("ctl switch: want <technique>")
		}
		return one(api.Mutation{Kind: "switch-technique", Technique: operands[0]})
	case "scale":
		if len(operands) != 1 {
			return nil, fmt.Errorf("ctl scale: want <fraction>")
		}
		f, err := strconv.ParseFloat(operands[0], 64)
		if err != nil {
			return nil, fmt.Errorf("ctl scale: bad fraction %q", operands[0])
		}
		return one(api.Mutation{Kind: "demand-scale", Fraction: f})
	case "prepend":
		if len(operands) != 2 {
			return nil, fmt.Errorf("ctl prepend: want <site> <prepends>")
		}
		n, err := strconv.Atoi(operands[1])
		if err != nil {
			return nil, fmt.Errorf("ctl prepend: bad count %q", operands[1])
		}
		return one(api.Mutation{Kind: "announce-policy", Site: operands[0], Count: n})
	case "apply":
		if len(operands) != 1 {
			return nil, fmt.Errorf("ctl apply: want <file|->")
		}
		return ctlLoadMutations(operands[0])
	default:
		return nil, fmt.Errorf("ctl: unknown command %q (run `cdnsim ctl -h`)", cmd)
	}
}

// ctlLoadMutations reads a mutation batch from a JSON file ("-" = stdin),
// accepting either {"mutations": [...]} or a bare mutation array.
func ctlLoadMutations(path string) ([]api.Mutation, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var wrapped struct {
		Mutations []api.Mutation `json:"mutations"`
	}
	if err := json.Unmarshal(data, &wrapped); err == nil && len(wrapped.Mutations) > 0 {
		return wrapped.Mutations, nil
	}
	var bare []api.Mutation
	if err := json.Unmarshal(data, &bare); err != nil {
		return nil, fmt.Errorf("ctl apply: %s is neither {\"mutations\":[...]} nor a mutation array: %v", path, err)
	}
	return bare, nil
}

func ctlGet(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	os.Stdout.Write(body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ctl: %s: %s", url, resp.Status)
	}
	return nil
}

func ctlPost(base string, muts []api.Mutation, execute, sabotage bool) error {
	reqBody, err := json.Marshal(struct {
		Mutations []api.Mutation `json:"mutations"`
	}{muts})
	if err != nil {
		return err
	}
	url := base + "/v1/changesets"
	var params []string
	if execute {
		params = append(params, "execute=true")
	}
	if sabotage {
		params = append(params, "sabotage=true")
	}
	if len(params) > 0 {
		url += "?" + strings.Join(params, "&")
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	os.Stdout.Write(body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ctl: POST %s: %s", url, resp.Status)
	}
	var cs api.ChangeSet
	if err := json.Unmarshal(body, &cs); err != nil {
		return fmt.Errorf("ctl: decoding changeset response: %v", err)
	}
	switch {
	case cs.Receipt == nil:
		fmt.Fprintf(os.Stderr, "ctl: %s dry-run recorded (re-run with -x to execute)\n", cs.ID)
	case cs.Receipt.Pass:
		fmt.Fprintf(os.Stderr, "ctl: %s executed, receipt PASS (0 diverging fields)\n", cs.ID)
	default:
		fmt.Fprintf(os.Stderr, "ctl: %s executed, receipt FAIL (%d diverging fields)\n", cs.ID, len(cs.Receipt.Diffs))
		return errReceiptFailed
	}
	return nil
}
