// Command cdnsim reproduces the paper's evaluation on the simulated
// Internet: each subcommand regenerates one figure or table.
//
// Usage:
//
//	cdnsim [flags] <command>
//
// Commands:
//
//	fig2         reconnection & failover CDFs per technique (§5.4.1, Figure 2)
//	table1       per-site traffic control under prepending (§5.4.2, Table 1)
//	table2       qualitative tradeoff matrix with measured medians (Table 2)
//	fig3         unicast withdrawal convergence, hypergiant vs testbed (Appendix A, Figure 3)
//	fig4         anycast announcement propagation (Appendix B, Figure 4)
//	fig5         prepend-3 vs prepend-5 failover (Appendix C.2, Figure 5)
//	c1           diverging-AS analysis for the pathological site (Appendix C.1)
//	unicast-dns  unicast failover gated by DNS TTL and violations (§2 context)
//	combined     reactive-anycast + superprefix ablation (§4)
//	scenario     declarative fault-injection timelines (flaps, link failures,
//	             partial and regional outages, drains, flash crowds); has its
//	             own flags — see cdnsim scenario -h
//	ctl          client for a running cdnsimd control-plane daemon: query
//	             state and post verified ChangeSets; see cdnsim ctl -h
//	load         demand, capacity, and per-site load under a technique:
//	             offered/served/shed tables and the load-shifting fixed point
//	             (default when -tech is given without a command)
//	fig2-sites   per-failed-site breakdown of Figure 2 for one technique
//	prepend-sweep control-vs-failover tradeoff across prepend depths 1-7 (§4)
//	validate     §5.1 criterion robustness and repeatability checks
//	all          everything above in paper order
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bestofboth/internal/core"
	"bestofboth/internal/experiment"
	"bestofboth/internal/obs"
	"bestofboth/internal/stats"
	"bestofboth/internal/topology"
	"bestofboth/internal/traffic"
)

type options struct {
	seed       int64
	targets    int
	maxTargets int
	duration   float64
	sites      string
	scale      string
	scaleF     float64
	paper      bool
	shards     int
	partition  string
	tech       string
	demand     bool
	c1Site     string
	ttl        uint
	clients    int
	trials     int
	workers    int
	jsonOut    string
	metricsOut string
	pprofAddr  string
	progress   bool

	report *experiment.Report
	reg    *obs.Registry
}

func main() {
	opts := options{}
	flag.Int64Var(&opts.seed, "seed", 42, "simulation seed (identical seeds reproduce runs bit-for-bit)")
	flag.IntVar(&opts.targets, "targets", 200, "max targets selected per site (§5.1; paper uses 50K)")
	flag.IntVar(&opts.maxTargets, "probe-targets", 60, "max controllable targets probed per failover run")
	flag.Float64Var(&opts.duration, "probe-duration", 600, "seconds of probing after a failure (§5.2)")
	flag.StringVar(&opts.sites, "sites", strings.Join(topology.DefaultSiteCodes, ","), "comma-separated sites to fail")
	flag.StringVar(&opts.scale, "scale", "1", `topology scale factor (1 ≈ 900 ASes), "paper" (~4x topology, 50K-target selection), or "internet" (~81x topology, ≈72K ASes; budget ~4 GiB and pair with -shards)`)
	flag.IntVar(&opts.shards, "shards", 1,
		"BGP shard simulators per world (1 = classic single kernel; converged route/FIB state is bit-identical at any shard count, transient timings follow shard-local jitter)")
	flag.StringVar(&opts.partition, "partition", experiment.PartitionStatic,
		`shard partition mode: "static" (topology cost model) or "profiled" (measured per-speaker event counts from a seeded warm-up converge; best balance, one extra unsharded converge per world config). Digests are identical across modes`)
	flag.StringVar(&opts.tech, "tech", "",
		`comma-separated techniques for the load and fig2 commands: the paper's five, "load-shift", "load-shed", "load-shift+<base>", "combined", or "all"/"seven"; with no command, implies the load command`)
	flag.BoolVar(&opts.demand, "demand", false,
		"attach the default demand model (Pareto rates, 1.25x capacity headroom) to every world; adds user-weighted CDFs to fig2")
	flag.StringVar(&opts.c1Site, "c1-site", "sea1", "site analyzed by the c1 command")
	flag.UintVar(&opts.ttl, "ttl", 600, "DNS record TTL for unicast-dns (seconds)")
	flag.IntVar(&opts.clients, "clients", 2000, "client population for unicast-dns")
	flag.IntVar(&opts.trials, "trials", 3, "withdrawal/announcement trials per origin (fig3/fig4)")
	flag.IntVar(&opts.workers, "workers", runtime.NumCPU(),
		"concurrent failover runs (1 = sequential; results are identical at any worker count)")
	flag.StringVar(&opts.jsonOut, "json", "", "also write results as JSON to this file")
	flag.StringVar(&opts.metricsOut, "metrics", "",
		"write the final metric snapshot here (.json = JSON, otherwise Prometheus text)")
	flag.StringVar(&opts.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.BoolVar(&opts.progress, "progress", false, "print live run progress to stderr")
	flag.Parse()

	switch opts.scale {
	case "paper":
		// The paper-scale preset: ~4x topology and the paper's 50K-target
		// selection cap (§5.1), unless -targets was given explicitly.
		opts.paper = true
		opts.scaleF = experiment.PaperScale
		opts.applyPresetTargets()
	case "internet":
		// The internet-scale preset: ≈72K ASes, the order of today's
		// announced AS count. Target selection keeps the paper's cap; see
		// experiment.InternetScale for the memory budget.
		opts.scaleF = experiment.InternetScale
		opts.applyPresetTargets()
	default:
		f, err := strconv.ParseFloat(opts.scale, 64)
		if err != nil || f <= 0 {
			fmt.Fprintf(os.Stderr, "cdnsim: -scale must be a positive number, \"paper\", or \"internet\", got %q\n", opts.scale)
			os.Exit(2)
		}
		opts.scaleF = f
	}
	if opts.shards < 1 {
		fmt.Fprintf(os.Stderr, "cdnsim: -shards must be >= 1, got %d\n", opts.shards)
		os.Exit(2)
	}
	if opts.partition != experiment.PartitionStatic && opts.partition != experiment.PartitionProfiled {
		fmt.Fprintf(os.Stderr, "cdnsim: -partition must be %q or %q, got %q\n",
			experiment.PartitionStatic, experiment.PartitionProfiled, opts.partition)
		os.Exit(2)
	}

	// The registry is always live: instrumentation is pure counting, never
	// perturbs the simulation, and costs a few percent at most. -metrics
	// only controls whether the snapshot is written out.
	opts.reg = obs.NewRegistry()
	if opts.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(opts.pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "cdnsim: pprof: %v\n", err)
			}
		}()
	}

	if flag.NArg() >= 1 && flag.Arg(0) == "ctl" {
		// The ctl subcommand is a pure HTTP client for a running cdnsimd
		// daemon and owns its trailing flags — see cdnsim ctl -h.
		if err := runCtlCmd(flag.Args()[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
			if errors.Is(err, errReceiptFailed) {
				os.Exit(3)
			}
			os.Exit(1)
		}
		return
	}
	if flag.NArg() >= 1 && flag.Arg(0) == "scenario" {
		// The scenario subcommand owns its trailing flags and keeps stdout
		// deterministic (no wall-clock epilogue).
		if err := runScenarioCmd(flag.Args()[1:], opts); err != nil {
			fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() == 0 && opts.tech != "" {
		// `cdnsim -tech load-shift` with no command word inspects the
		// converged load state of the named techniques.
		if err := run("load", opts); err != nil {
			fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cdnsim [flags] <fig2|table1|table2|fig3|fig4|fig5|c1|unicast-dns|combined|load|validate|scenario|ctl|all>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	if err := run(cmd, opts); err != nil {
		fmt.Fprintf(os.Stderr, "cdnsim: %v\n", err)
		os.Exit(1)
	}
}

// applyPresetTargets raises the selection cap to the paper's 50K targets
// per site for the named scale presets, unless -targets was given
// explicitly.
func (o *options) applyPresetTargets() {
	targetsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "targets" {
			targetsSet = true
		}
	})
	if !targetsSet {
		o.targets = experiment.PaperTargetsPerSite
	}
}

func (o options) worldConfig() experiment.WorldConfig {
	wopts := []experiment.Option{
		experiment.WithSeed(o.seed),
		experiment.WithScale(o.scaleF),
		experiment.WithShards(o.shards),
		experiment.WithPartition(o.partition),
		experiment.WithWorkers(o.workers),
		experiment.WithObs(o.reg),
	}
	if o.demand {
		wopts = append(wopts, experiment.WithDefaultDemand())
	}
	return experiment.DefaultWorldConfig(wopts...)
}

// runner builds the experiment runner honoring -workers, sharing the
// process-wide registry, and reporting progress when -progress is set.
func (o options) runner() *experiment.Runner {
	r := o.worldConfig().Runner()
	if o.progress {
		r.Progress = progressPrinter()
	}
	return r
}

// progressPrinter returns a stderr progress callback, throttled by wall
// clock so tight matrices do not flood the terminal; the final update
// always prints. Runner serializes calls, so no locking is needed.
func progressPrinter() func(done, total int) {
	var last time.Time
	return func(done, total int) {
		now := time.Now()
		if done != total && now.Sub(last) < 100*time.Millisecond {
			return
		}
		last = now
		fmt.Fprintf(os.Stderr, "\rruns %d/%d", done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

// finish writes the optional metric snapshot and, when JSON output was
// requested, the per-run manifest describing the invocation.
func (o options) finish(command string, cfg experiment.WorldConfig) error {
	if o.jsonOut != "" {
		mp := experiment.ManifestPath(o.jsonOut)
		man := experiment.NewManifest(command, cfg, o.workers, o.reg)
		if o.metricsOut != "" {
			// Paper-scale runs record their memory footprint alongside the
			// metric snapshot: peak RSS and cumulative heap allocation.
			man.Mem = experiment.ReadMemFootprint()
		}
		if err := man.WriteFile(mp); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", mp)
	}
	if o.metricsOut != "" {
		if err := o.reg.WriteFile(o.metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", o.metricsOut)
	}
	return nil
}

func (o options) failoverConfig() experiment.FailoverConfig {
	fc := experiment.DefaultFailoverConfig()
	fc.ProbeDuration = o.duration
	fc.MaxTargets = o.maxTargets
	return fc
}

func (o options) siteList() []string {
	var out []string
	for _, s := range strings.Split(o.sites, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func run(cmd string, o options) error {
	start := time.Now()
	if cmd == "load" {
		// The load command is meaningless without a demand model; force it
		// here (not inside runLoad) so the manifest's config digest and
		// DemandSummary describe the world actually run.
		o.demand = true
	}
	cfg := o.worldConfig()
	o.report = experiment.NewReport(o.seed)

	needSelection := map[string]bool{
		"fig2": true, "table1": true, "table2": true, "fig5": true,
		"c1": true, "combined": true, "all": true, "validate": true,
		"fig2-sites": true, "prepend-sweep": true,
	}
	var sel *experiment.Selection
	if needSelection[cmd] {
		fmt.Printf("selecting targets (§5.1, seed=%d, cap=%d/site)...\n", o.seed, o.targets)
		var err error
		sel, err = experiment.SelectTargets(cfg, o.targets)
		if err != nil {
			return err
		}
		for _, st := range sel.Sites {
			fmt.Printf("  %-5s proximate=%4d not-routed-by-anycast=%4d\n",
				st.Code, len(st.Proximate), len(st.NotAnycast))
		}
	}

	var cmdErr error
	switch cmd {
	case "fig2":
		_, cmdErr = runFig2(cfg, sel, o, nil)
	case "table1":
		_, cmdErr = runTable1(cfg, sel, o)
	case "table2":
		fig2, err := runFig2(cfg, sel, o, nil)
		if err != nil {
			return err
		}
		t1, err := runTable1(cfg, sel, o)
		if err != nil {
			return err
		}
		fmt.Println("\n=== Table 2: technique tradeoffs ===")
		fmt.Println(experiment.RenderTable2(experiment.Table2(fig2, t1)))
	case "fig3":
		cmdErr = runFig3(cfg, o)
	case "fig4":
		cmdErr = runFig4(cfg, o)
	case "fig5":
		cmdErr = runFig5(cfg, sel, o)
	case "c1":
		cmdErr = runC1(cfg, sel, o)
	case "unicast-dns":
		cmdErr = runUnicastDNS(cfg, o)
	case "load":
		cmdErr = runLoad(cfg, o)
	case "validate":
		cmdErr = runValidate(cfg, sel, o)
	case "fig2-sites":
		cmdErr = runFig2Sites(cfg, sel, o)
	case "prepend-sweep":
		cmdErr = runPrependSweep(cfg, sel, o)
	case "combined":
		_, cmdErr = runFig2(cfg, sel, o, []core.Technique{
			core.ReactiveAnycast{}, core.Combined{},
		})
	case "all":
		fig2, err := runFig2(cfg, sel, o, nil)
		if err != nil {
			return err
		}
		t1, err := runTable1(cfg, sel, o)
		if err != nil {
			return err
		}
		fmt.Println("\n=== Table 2: technique tradeoffs ===")
		fmt.Println(experiment.RenderTable2(experiment.Table2(fig2, t1)))
		if err := runFig3(cfg, o); err != nil {
			return err
		}
		if err := runFig4(cfg, o); err != nil {
			return err
		}
		if err := runFig5(cfg, sel, o); err != nil {
			return err
		}
		if err := runC1(cfg, sel, o); err != nil {
			return err
		}
		if err := runUnicastDNS(cfg, o); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
	if cmdErr != nil {
		return cmdErr
	}
	if o.jsonOut != "" {
		if err := o.report.WriteFile(o.jsonOut); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", o.jsonOut)
	}
	if err := o.finish(cmd, cfg); err != nil {
		return err
	}
	fmt.Printf("\ndone in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runFig2(cfg experiment.WorldConfig, sel *experiment.Selection, o options, techs []core.Technique) ([]experiment.CDFPair, error) {
	if techs == nil && o.tech != "" {
		var err error
		if techs, err = resolveTechniques(o.tech); err != nil {
			return nil, err
		}
	}
	if techs == nil {
		techs = []core.Technique{
			core.ProactiveSuperprefix{},
			core.ReactiveAnycast{},
			core.ProactivePrepending{Prepends: 3},
			core.Anycast{},
		}
	}
	fmt.Println("\n=== Figure 2: reconnection and failover time per technique ===")
	pairs, err := o.runner().Figure2(cfg, sel, techs, o.siteList(), o.failoverConfig())
	if err != nil {
		return nil, err
	}
	printPairs(pairs, o.duration)
	if o.report != nil {
		o.report.Add("figure2", experiment.ExportPairs(pairs, 120))
	}
	return pairs, nil
}

func printPairs(pairs []experiment.CDFPair, xmax float64) {
	t := &stats.Table{Header: []string{
		"technique", "n", "recon p50", "recon p90", "failover p50", "failover p90", "failover p99",
	}}
	for _, p := range pairs {
		t.AddRow(p.Technique,
			fmt.Sprintf("%d", p.Failover.N()),
			fmt.Sprintf("%.1fs", p.Reconnection.Median()),
			fmt.Sprintf("%.1fs", p.Reconnection.Percentile(90)),
			fmt.Sprintf("%.1fs", p.Failover.Median()),
			fmt.Sprintf("%.1fs", p.Failover.Percentile(90)),
			fmt.Sprintf("%.1fs", p.Failover.Percentile(99)))
	}
	fmt.Println(t.Render())
	for _, p := range pairs {
		fmt.Print(p.Failover.Render(p.Technique+" failover", 1, xmax, 48))
	}
	fmt.Println("stability between reconnection and failover (§5.4.1):")
	for _, p := range pairs {
		st := p.Stability
		fmt.Printf("  %-25s median bounces %.0f, ≤2 bounces %s, no unreachability %s (n=%d)\n",
			p.Technique, st.MedianBounces, stats.Pct(st.BounceLE2Share), stats.Pct(st.NoGapShare), st.Reconnected)
	}
	anyUser := false
	for _, p := range pairs {
		if p.UserFailover != nil {
			anyUser = true
			break
		}
	}
	if anyUser {
		fmt.Println("user-weighted failover (each target counted by its demand, rps):")
		ut := &stats.Table{Header: []string{"technique", "demand rps", "user p50", "user p90", "user p99"}}
		for _, p := range pairs {
			if p.UserFailover == nil {
				continue
			}
			ut.AddRow(p.Technique,
				fmt.Sprintf("%.0f", p.UserFailover.TotalWeight()),
				fmt.Sprintf("%.1fs", p.UserFailover.Median()),
				fmt.Sprintf("%.1fs", p.UserFailover.Percentile(90)),
				fmt.Sprintf("%.1fs", p.UserFailover.Percentile(99)))
		}
		fmt.Println(ut.Render())
	}
}

// runLoad inspects the converged load state of each technique on a
// demand-carrying world: the per-site offered/served/shed table, the
// aggregate totals, and — for load shifting — whether the rebalance loop
// reached the Sinha et al. stable fixed point.
func runLoad(cfg experiment.WorldConfig, o options) error {
	spec := o.tech
	if spec == "" {
		spec = "load-shift"
	}
	techs, err := resolveTechniques(spec)
	if err != nil {
		return err
	}
	if !cfg.Demand.Enabled {
		experiment.WithDefaultDemand()(&cfg)
	}
	fmt.Println("\n=== Load management: demand, capacity, and per-site load ===")
	for _, tech := range techs {
		w, err := experiment.NewConvergedWorld(cfg, tech, 3600)
		if err != nil {
			return err
		}
		m, acct := w.CDN.Demand(), w.CDN.Load()
		sum := m.Summary()
		fmt.Printf("\n--- %s ---\n", tech.Name())
		fmt.Printf("demand: %d targets, %.0f rps total (%s, Gini %.2f, top decile %s of demand), capacity %.0f rps\n",
			sum.Targets, sum.TotalRPS, sum.Distribution, sum.Gini, stats.Pct(sum.TopDecileShare), sum.CapacityRPS)
		t := &stats.Table{Header: []string{"site", "capacity rps", "offered rps", "served rps", "shed rps", "util"}}
		for i := 0; i < acct.NumSites(); i++ {
			t.AddRow(acct.SiteCode(i),
				fmt.Sprintf("%.0f", float64(acct.Capacity(i))/traffic.Micro),
				fmt.Sprintf("%.0f", float64(acct.Offered(i))/traffic.Micro),
				fmt.Sprintf("%.0f", float64(acct.Served(i))/traffic.Micro),
				fmt.Sprintf("%.0f", float64(acct.Shed(i))/traffic.Micro),
				fmt.Sprintf("%.2f", acct.Utilization(i)))
		}
		fmt.Println(t.Render())
		offered, served, shed := acct.Totals()
		fmt.Printf("totals: offered %.0f, served %.0f, shed %.0f, unserved %.0f rps\n",
			float64(offered)/traffic.Micro, float64(served)/traffic.Micro,
			float64(shed)/traffic.Micro, float64(acct.Unserved())/traffic.Micro)
		if reb, ok := tech.(core.Rebalancer); ok {
			// At the fixed point one more Rebalance is a no-op (returns
			// changed=false without touching announcements), so this is a
			// pure stability check.
			changed, err := reb.Rebalance(w.CDN)
			if err != nil {
				return err
			}
			switch {
			case changed:
				fmt.Println("fixed point: NOT stable — a further rebalance move exists")
			case acct.Overloaded():
				fmt.Println("fixed point: stable, but overload remains (no movable prefix can relieve it)")
			default:
				fmt.Println("fixed point: stable — no site above capacity, no further moves")
			}
		} else if acct.Overloaded() {
			fmt.Println("overload: at least one site above capacity")
		}
		if o.report != nil {
			type siteRow struct {
				Site     string  `json:"site"`
				Capacity float64 `json:"capacityRPS"`
				Offered  float64 `json:"offeredRPS"`
				Served   float64 `json:"servedRPS"`
				Shed     float64 `json:"shedRPS"`
				Util     float64 `json:"utilization"`
			}
			rows := make([]siteRow, 0, acct.NumSites())
			for i := 0; i < acct.NumSites(); i++ {
				rows = append(rows, siteRow{
					Site:     acct.SiteCode(i),
					Capacity: float64(acct.Capacity(i)) / traffic.Micro,
					Offered:  float64(acct.Offered(i)) / traffic.Micro,
					Served:   float64(acct.Served(i)) / traffic.Micro,
					Shed:     float64(acct.Shed(i)) / traffic.Micro,
					Util:     acct.Utilization(i),
				})
			}
			o.report.Add("load:"+tech.Name(), map[string]any{
				"demand":     sum,
				"sites":      rows,
				"overloaded": acct.Overloaded(),
			})
		}
	}
	return nil
}

func runTable1(cfg experiment.WorldConfig, sel *experiment.Selection, o options) ([]experiment.Table1Row, error) {
	fmt.Println("\n=== Table 1: traffic control under proactive-prepending ===")
	rows, err := experiment.Table1(cfg, sel)
	if err != nil {
		return nil, err
	}
	fmt.Println(experiment.RenderTable1(rows))
	if o.report != nil {
		o.report.Add("table1", rows)
	}
	return rows, nil
}

func runFig3(cfg experiment.WorldConfig, o options) error {
	fmt.Println("\n=== Figure 3: unicast withdrawal convergence (Appendix A) ===")
	res, err := experiment.Figure3(cfg, o.trials)
	if err != nil {
		return err
	}
	if o.report != nil {
		o.report.Add("figure3", map[string]any{
			"hypergiant":     experiment.SummarizeCDF(res.Hypergiant, 120),
			"testbed":        experiment.SummarizeCDF(res.Testbed, 120),
			"estimatorError": experiment.SummarizeCDF(res.EstimatorError, 0),
		})
	}
	fmt.Print(res.Hypergiant.Render("hypergiant withdrawals", 1, 1000, 48))
	fmt.Print(res.Testbed.Render("testbed withdrawals", 1, 1000, 48))
	fmt.Printf("withdrawal-time estimator error: median %.1fs (paper validates ~10s)\n",
		res.EstimatorError.Median())
	return nil
}

func runFig4(cfg experiment.WorldConfig, o options) error {
	fmt.Println("\n=== Figure 4: anycast announcement propagation (Appendix B) ===")
	res, err := experiment.Figure4(cfg, 2*o.trials, o.trials)
	if err != nil {
		return err
	}
	if o.report != nil {
		o.report.Add("figure4", map[string]any{
			"census":  experiment.SummarizeCDF(res.AnycastCensus, 120),
			"testbed": experiment.SummarizeCDF(res.Testbed, 120),
		})
	}
	fmt.Print(res.AnycastCensus.Render("anycast networks (census analogue)", 0.5, 100, 48))
	fmt.Print(res.Testbed.Render("testbed anycast", 0.5, 100, 48))
	return nil
}

func runFig5(cfg experiment.WorldConfig, sel *experiment.Selection, o options) error {
	fmt.Println("\n=== Figure 5: prepend depth vs failover (Appendix C.2) ===")
	pairs, err := o.runner().Figure5(cfg, sel, o.siteList(), o.failoverConfig())
	if err != nil {
		return err
	}
	printPairs(pairs, o.duration)
	if o.report != nil {
		o.report.Add("figure5", experiment.ExportPairs(pairs, 120))
	}
	return nil
}

func runC1(cfg experiment.WorldConfig, sel *experiment.Selection, o options) error {
	fmt.Printf("\n=== Appendix C.1: why control is poor at %s ===\n", o.c1Site)
	res, err := experiment.AppendixC1(cfg, sel, o.c1Site)
	if err != nil {
		return err
	}
	fmt.Println(experiment.RenderC1(o.c1Site, res))
	if w, werr := experiment.NewWorld(cfg); werr == nil {
		fmt.Println("example divergences:")
		fmt.Print(experiment.RenderC1Examples(w.Topo, res, 3))
	}
	if o.report != nil {
		o.report.Add("appendixC1", map[string]any{
			"site":                   o.c1Site,
			"compared":               res.Compared,
			"toIntended":             res.ToIntended,
			"diverged":               len(res.Diverged),
			"viaRE":                  res.ViaRE,
			"byRelationship":         res.ByRelationship,
			"relationshipComparable": res.RelationshipComparable,
		})
	}
	return nil
}

// runFig2Sites breaks Figure 2 down per failed site for reactive-anycast,
// exposing per-site heterogeneity the pooled CDFs hide.
func runFig2Sites(cfg experiment.WorldConfig, sel *experiment.Selection, o options) error {
	fmt.Println("\n=== Figure 2 per-site breakdown (reactive-anycast) ===")
	fc := o.failoverConfig()
	t := &stats.Table{Header: []string{"failed site", "targets", "recon p50", "failover p50", "failover p90", "no-gap share"}}
	type siteOut struct {
		Site     string                    `json:"site"`
		Failover experiment.CDFSummary     `json:"failover"`
		Stats    experiment.StabilityStats `json:"stability"`
	}
	var exported []siteOut
	sites := o.siteList()
	matrix, err := o.runner().RunMatrix(cfg, sel, []core.Technique{core.ReactiveAnycast{}}, sites, fc)
	if err != nil {
		return err
	}
	for si, site := range sites {
		r := matrix[0][si]
		pair := experiment.Figure2Single(r, fc)
		st := pair.Stability
		t.AddRow(site,
			fmt.Sprintf("%d", r.Controllable),
			fmt.Sprintf("%.1fs", pair.Reconnection.Median()),
			fmt.Sprintf("%.1fs", pair.Failover.Median()),
			fmt.Sprintf("%.1fs", pair.Failover.Percentile(90)),
			stats.Pct(st.NoGapShare))
		exported = append(exported, siteOut{Site: site, Failover: experiment.SummarizeCDF(pair.Failover, 60), Stats: st})
	}
	fmt.Println(t.Render())
	if o.report != nil {
		o.report.Add("figure2PerSite", exported)
	}
	return nil
}

func runPrependSweep(cfg experiment.WorldConfig, sel *experiment.Selection, o options) error {
	fmt.Println("\n=== Prepend-depth sweep: control vs failover (§4 tradeoff) ===")
	points, err := o.runner().PrependSweep(cfg, sel, []int{1, 2, 3, 4, 5, 7}, o.siteList(), o.failoverConfig())
	if err != nil {
		return err
	}
	fmt.Println(experiment.RenderSweep(points))
	if o.report != nil {
		o.report.Add("prependSweep", points)
	}
	return nil
}

func runValidate(cfg experiment.WorldConfig, sel *experiment.Selection, o options) error {
	fmt.Println("\n=== Validation: §5.1 criterion robustness & repeatability ===")
	fc := o.failoverConfig()
	v, err := experiment.ValidateTargetCriterion(cfg, sel, core.ReactiveAnycast{}, o.siteList()[0], fc)
	if err != nil {
		return err
	}
	fmt.Printf("failover with §5.1 filter:    median %.1fs (n=%d)\n", v.Filtered.Median(), v.Filtered.N())
	fmt.Printf("failover without the filter:  median %.1fs (n=%d)\n", v.Unfiltered.Median(), v.Unfiltered.N())
	a, b, err := experiment.RepeatabilityCheck(cfg, core.ReactiveAnycast{}, o.siteList()[0], fc, o.targets)
	if err != nil {
		return err
	}
	fmt.Printf("repeat with different target set: median %.1fs vs %.1fs\n", a.Median(), b.Median())
	return nil
}

func runUnicastDNS(cfg experiment.WorldConfig, o options) error {
	fmt.Println("\n=== Unicast baseline: DNS-gated failover (§2 context) ===")
	ucfg := experiment.DefaultUnicastDNSConfig()
	ucfg.TTL = uint32(o.ttl)
	ucfg.Clients = o.clients
	cdf, err := experiment.UnicastDNSFailover(cfg, ucfg)
	if err != nil {
		return err
	}
	fmt.Print(cdf.Render(fmt.Sprintf("unicast failover (TTL=%ds, violations per Allman'20)", o.ttl), 1, ucfg.Horizon, 48))
	if o.report != nil {
		o.report.Add("unicastDNS", experiment.SummarizeCDF(cdf, 120))
	}
	return nil
}
