// Command benchjson converts `go test -bench` output into a stable JSON
// document so the performance trajectory of the simulator can be tracked
// file-by-file in CI artifacts.
//
// Usage:
//
//	go test -bench ... -benchmem | benchjson [-baseline base.json] [-out file.json]
//
// Every benchmark line becomes one record carrying ns/op, B/op, allocs/op,
// all custom metrics (the per-technique headline p50s the Figure 2
// benchmark reports), the GOMAXPROCS it ran under, and the shard count for
// /shards=N sub-benchmarks. With -baseline, the benchmarks of a previous
// benchjson file are embedded verbatim and per-benchmark percentage
// reductions are computed for ns/op and allocs/op across every shared name
// (Figure2, BGPConvergence, the sharded convergence benches, ...), which is
// how BENCH_PR4.json records the zero-copy kernel's gains against the
// pre-change tree.
//
// Two CI gates ride on the parsed numbers, both evaluated after the JSON is
// written so failing runs still leave their evidence on disk:
//
//   - -max-regression-pct P fails the run when any benchmark shared with the
//     baseline regressed more than P% in ns/op;
//   - -min-metric Name:metric:floor (repeatable) fails the run when a custom
//     metric falls below its floor — e.g. the ≥3x sharded-convergence
//     speedup. Parallel-speedup floors are unprovable on one processor, so
//     single-proc runs downgrade the gate to a warning;
//   - -max-metric Name:metric:ceiling (repeatable) fails the run when a
//     custom metric exceeds its ceiling — e.g. the ≤1.15 profiled-partition
//     event imbalance. Event counts are machine-deterministic, so unlike
//     the other gates this one holds on single-proc runs too.
//
// The first two gates downgrade to warnings on single-proc runs: one processor
// cannot exhibit a parallel speedup, and its ns/op timings are dominated
// by scheduler interference between the benchmark's goroutines (the
// goroutine-per-shard benches especially), far outside the regression
// allowance run to run. The numbers are still recorded for trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bestofboth/pkg/bestofboth/api"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "", "benchjson file whose benchmarks are embedded as the baseline")
	outPath := flag.String("out", "", "output file (default stdout)")
	maxRegression := flag.Float64("max-regression-pct", 0,
		"with -baseline, exit nonzero if any shared benchmark's ns/op regressed by more than this percentage (0 disables)")
	var minMetrics multiFlag
	flag.Var(&minMetrics, "min-metric",
		"Name:metric:floor — exit nonzero if the named benchmark's custom metric is below floor; repeatable. "+
			"Skipped with a warning on single-proc runs, which cannot demonstrate parallel speedups.")
	var maxMetrics multiFlag
	flag.Var(&maxMetrics, "max-metric",
		"Name:metric:ceiling — exit nonzero if the named benchmark's custom metric exceeds ceiling; repeatable. "+
			"Enforced on single-proc runs too: the gated metrics are machine-deterministic counts, not timings.")
	flag.Parse()

	out, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(out.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if *baselinePath != "" {
		base, err := readFile(*baselinePath)
		if err != nil {
			fatal(err)
		}
		out.Baseline = base.Benchmarks
		out.ReductionsVsBaselinePct = reductions(base.Benchmarks, out.Benchmarks)
	}
	out.APIVersion = api.Version
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *outPath == "" {
		os.Stdout.Write(b)
	} else {
		if err := os.WriteFile(*outPath, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}

	// Gates run after the document is written so a failing run still leaves
	// its numbers on disk for forensics.
	failed := false
	if *maxRegression > 0 && *baselinePath != "" {
		failed = checkRegressions(out, *maxRegression) || failed
	}
	for _, spec := range minMetrics {
		failed = checkMinMetric(out.Benchmarks, spec) || failed
	}
	for _, spec := range maxMetrics {
		failed = checkMaxMetric(out.Benchmarks, spec) || failed
	}
	if failed {
		os.Exit(1)
	}
}

// checkRegressions reports (and returns true on) any shared benchmark whose
// ns/op regressed past the allowance. A negative reduction is a regression.
// On single-proc runs regressions warn instead of failing: with the
// benchmark's goroutines time-sliced onto one processor, ns/op swings far
// past any useful allowance between back-to-back runs of an unchanged tree.
func checkRegressions(out *api.BenchFile, allowPct float64) bool {
	singleProc := true
	for _, b := range out.Benchmarks {
		if b.Procs >= 2 {
			singleProc = false
			break
		}
	}
	failed := false
	for name, r := range out.ReductionsVsBaselinePct {
		if r.NsPerOpPct < -allowPct {
			if singleProc {
				fmt.Fprintf(os.Stderr, "benchjson: warning: %s regressed %.2f%% in ns/op (allowance %.0f%%, not gated on single-proc run)\n",
					name, -r.NsPerOpPct, allowPct)
				continue
			}
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s regressed %.2f%% in ns/op (allowance %.0f%%)\n",
				name, -r.NsPerOpPct, allowPct)
			failed = true
		}
	}
	return failed
}

// checkMinMetric enforces one Name:metric:floor spec against the parsed
// benchmarks. Gates on single-proc runs are skipped with a warning: they
// exist to hold parallel speedups, which one processor cannot exhibit.
func checkMinMetric(benchmarks []api.Benchmark, spec string) bool {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		fatal(fmt.Errorf("bad -min-metric %q, want Name:metric:floor", spec))
	}
	name, metric := parts[0], parts[1]
	floor, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		fatal(fmt.Errorf("bad -min-metric floor in %q: %w", spec, err))
	}
	for _, b := range benchmarks {
		if b.Name != name {
			continue
		}
		v, ok := b.Metrics[metric]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s did not report metric %q\n", name, metric)
			return true
		}
		if b.Procs < 2 {
			fmt.Fprintf(os.Stderr, "benchjson: skipping min-metric %s on single-proc run (%s=%.3f not gated)\n",
				spec, metric, v)
			return false
		}
		if v < floor {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s %s=%.3f below floor %.3f\n", name, metric, v, floor)
			return true
		}
		return false
	}
	fmt.Fprintf(os.Stderr, "benchjson: FAIL min-metric %s: benchmark not found in output\n", spec)
	return true
}

// checkMaxMetric enforces one Name:metric:ceiling spec against the parsed
// benchmarks. Unlike checkMinMetric it holds on single-proc runs: ceilings
// gate deterministic event counts (e.g. partition imbalance), which do not
// depend on the processors available.
func checkMaxMetric(benchmarks []api.Benchmark, spec string) bool {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		fatal(fmt.Errorf("bad -max-metric %q, want Name:metric:ceiling", spec))
	}
	name, metric := parts[0], parts[1]
	ceiling, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		fatal(fmt.Errorf("bad -max-metric ceiling in %q: %w", spec, err))
	}
	for _, b := range benchmarks {
		if b.Name != name {
			continue
		}
		v, ok := b.Metrics[metric]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s did not report metric %q\n", name, metric)
			return true
		}
		if v > ceiling {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s %s=%.3f above ceiling %.3f\n", name, metric, v, ceiling)
			return true
		}
		return false
	}
	fmt.Fprintf(os.Stderr, "benchjson: FAIL max-metric %s: benchmark not found in output\n", spec)
	return true
}

// shardsOf extracts the shard count from a /shards=N path segment, 0 when
// absent.
func shardsOf(name string) int {
	i := strings.Index(name, "shards=")
	if i < 0 {
		return 0
	}
	rest := name[i+len("shards="):]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		rest = rest[:j]
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0
	}
	return n
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

func readFile(path string) (*api.BenchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f api.BenchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func parse(r *os.File) (*api.BenchFile, error) {
	out := &api.BenchFile{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	return out, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkName[-P]  N  v1 unit1  v2 unit2  ...
//
// Units ending in /op map to the well-known fields; anything else is a
// custom metric keyed by its unit string.
func parseLine(line string) (api.Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return api.Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	// Strip the -GOMAXPROCS suffix if present.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
			procs = p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return api.Benchmark{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b := api.Benchmark{Name: name, Iterations: iters, Procs: procs, Shards: shardsOf(name)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return api.Benchmark{}, fmt.Errorf("bad value %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

func reductions(base, cur []api.Benchmark) map[string]api.Reduction {
	byName := make(map[string]api.Benchmark, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	out := map[string]api.Reduction{}
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		out[c.Name] = api.Reduction{
			NsPerOpPct:     pctDrop(b.NsPerOp, c.NsPerOp),
			AllocsPerOpPct: pctDrop(b.AllocsPerOp, c.AllocsPerOp),
		}
	}
	return out
}

func pctDrop(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return round2((base - cur) / base * 100)
}

func round2(v float64) float64 {
	return float64(int64(v*100+sign(v)*0.5)) / 100
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
