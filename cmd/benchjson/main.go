// Command benchjson converts `go test -bench` output into a stable JSON
// document so the performance trajectory of the simulator can be tracked
// file-by-file in CI artifacts.
//
// Usage:
//
//	go test -bench ... -benchmem | benchjson [-baseline base.json] [-out file.json]
//
// Every benchmark line becomes one record carrying ns/op, B/op, allocs/op,
// and all custom metrics (the per-technique headline p50s the Figure 2
// benchmark reports). With -baseline, the benchmarks of a previous benchjson
// file are embedded verbatim and per-benchmark percentage reductions are
// computed for ns/op and allocs/op, which is how BENCH_PR4.json records the
// zero-copy kernel's gains against the pre-change tree.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  float64            `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64            `json:"allocsPerOp,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Reduction is the improvement of a benchmark relative to the baseline, in
// percent (positive = better/lower).
type Reduction struct {
	NsPerOpPct     float64 `json:"nsPerOpPct"`
	AllocsPerOpPct float64 `json:"allocsPerOpPct"`
}

// File is the document benchjson writes (and reads back as a baseline).
type File struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Baseline   []Benchmark `json:"baseline,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// ReductionsVsBaselinePct maps benchmark name to its improvement over
	// the embedded baseline.
	ReductionsVsBaselinePct map[string]Reduction `json:"reductionsVsBaselinePct,omitempty"`
}

func main() {
	baselinePath := flag.String("baseline", "", "benchjson file whose benchmarks are embedded as the baseline")
	outPath := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	out, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(out.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if *baselinePath != "" {
		base, err := readFile(*baselinePath)
		if err != nil {
			fatal(err)
		}
		out.Baseline = base.Benchmarks
		out.ReductionsVsBaselinePct = reductions(base.Benchmarks, out.Benchmarks)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *outPath == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*outPath, b, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

func readFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func parse(r *os.File) (*File, error) {
	out := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	return out, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkName[-P]  N  v1 unit1  v2 unit2  ...
//
// Units ending in /op map to the well-known fields; anything else is a
// custom metric keyed by its unit string.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line: %q", line)
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix if present.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

func reductions(base, cur []Benchmark) map[string]Reduction {
	byName := make(map[string]Benchmark, len(base))
	for _, b := range base {
		byName[b.Name] = b
	}
	out := map[string]Reduction{}
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		out[c.Name] = Reduction{
			NsPerOpPct:     pctDrop(b.NsPerOp, c.NsPerOp),
			AllocsPerOpPct: pctDrop(b.AllocsPerOp, c.AllocsPerOp),
		}
	}
	return out
}

func pctDrop(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return round2((base - cur) / base * 100)
}

func round2(v float64) float64 {
	return float64(int64(v*100+sign(v)*0.5)) / 100
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
