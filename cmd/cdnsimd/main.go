// Command cdnsimd is the simulator's long-running control-plane daemon:
// it builds one deployed world, converges it, and serves the versioned
// HTTP/JSON API (pkg/bestofboth/api) over it until killed.
//
// State is read through GET endpoints (/v1/state, /v1/digests, /v1/dns,
// /v1/load, /v1/catchments) and mutated exclusively through ChangeSets
// (POST /v1/changesets): dry-run by default against a copy-on-write
// snapshot of the live world, executed only with ?execute=true, and every
// execution carries a verification receipt re-diffing the predicted
// post-state against the actual one.
//
// The daemon prints its listen URL to stdout as the first output line, so
// scripts can start it on port 0 and scrape the address:
//
//	cdnsimd -tech load-shift -demand -addr 127.0.0.1:0
//	listening on http://127.0.0.1:40123
//
// Interact with it via `cdnsim ctl -addr <url> ...` or plain curl.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"

	"bestofboth/internal/core"
	"bestofboth/internal/ctlplane"
	"bestofboth/internal/experiment"
	"bestofboth/internal/obs"
)

func main() {
	var (
		tech          = flag.String("tech", "reactive-anycast", `technique to deploy ("reactive-anycast", "load-shift", "load-shift+<base>", "proactive-prepending", ...)`)
		seed          = flag.Int64("seed", 42, "simulation seed (identical seeds reproduce the world bit-for-bit)")
		scale         = flag.String("scale", "1", `topology scale factor (1 ≈ 900 ASes), "paper", or "internet"`)
		shards        = flag.Int("shards", 1, "BGP shard simulators for the world (converged state is shard-count independent)")
		partition     = flag.String("partition", experiment.PartitionStatic, `shard partition mode: "static" or "profiled" (see cdnsim -partition)`)
		demand        = flag.Bool("demand", false, "attach the default demand model so /v1/load and ChangeSet load deltas carry traffic")
		addr          = flag.String("addr", "127.0.0.1:8316", "listen address (use port 0 for an ephemeral port)")
		convergeBound = flag.Float64("converge-bound", ctlplane.DefaultConvergeBound, "virtual-seconds convergence deadline after each mutation batch")
		metrics       = flag.Bool("metrics", true, "instrument the world and serve Prometheus text on /metrics")
		testSabotage  = flag.Bool("test-sabotage", false, "enable ?sabotage=true on execution: silently fail a healthy site's forwarding after executing, so the verification receipt must fail (testing the verifier, not the network)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "cdnsimd: unexpected argument %q (the daemon takes flags only)\n", flag.Arg(0))
		os.Exit(2)
	}
	if err := run(*tech, *seed, *scale, *shards, *partition, *demand, *addr, *convergeBound, *metrics, *testSabotage); err != nil {
		fmt.Fprintf(os.Stderr, "cdnsimd: %v\n", err)
		os.Exit(1)
	}
}

func run(tech string, seed int64, scale string, shards int, partition string, demand bool, addr string, convergeBound float64, metrics, testSabotage bool) error {
	technique, err := core.TechniqueByName(tech)
	if err != nil {
		return err
	}
	var scaleF float64
	switch scale {
	case "paper":
		scaleF = experiment.PaperScale
	case "internet":
		scaleF = experiment.InternetScale
	default:
		f, err := strconv.ParseFloat(scale, 64)
		if err != nil || f <= 0 {
			return fmt.Errorf(`-scale must be a positive number, "paper", or "internet", got %q`, scale)
		}
		scaleF = f
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if partition != experiment.PartitionStatic && partition != experiment.PartitionProfiled {
		return fmt.Errorf("-partition must be %q or %q, got %q",
			experiment.PartitionStatic, experiment.PartitionProfiled, partition)
	}

	wopts := []experiment.Option{
		experiment.WithSeed(seed),
		experiment.WithScale(scaleF),
		experiment.WithShards(shards),
		experiment.WithPartition(partition),
	}
	if demand {
		wopts = append(wopts, experiment.WithDefaultDemand())
	}
	cfg := ctlplane.Config{
		World:         experiment.DefaultWorldConfig(wopts...),
		Technique:     technique,
		ConvergeBound: convergeBound,
	}
	if metrics {
		cfg.Obs = obs.NewRegistry()
	}
	if testSabotage {
		cfg.Sabotage = sabotageHook
	}

	fmt.Fprintf(os.Stderr, "cdnsimd: building world (tech=%s seed=%d scale=%s shards=%d partition=%s demand=%v)...\n",
		technique.Name(), seed, scale, shards, partition, demand)
	srv, err := ctlplane.NewServer(cfg)
	if err != nil {
		return err
	}
	w := srv.World()
	fmt.Fprintf(os.Stderr, "cdnsimd: world converged: %d sites, %d targets, config %s\n",
		len(w.CDN.Sites()), len(w.Targets()), w.Cfg.Digest())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The listen URL is the daemon's only stdout output and always the
	// first line, so `cdnsimd -addr 127.0.0.1:0 | head -1` is scriptable.
	fmt.Printf("listening on http://%s\n", ln.Addr())
	return http.Serve(ln, srv.Handler())
}

// sabotageHook is the standard -test-sabotage divergence: silently stop
// the first healthy site's forwarding plane after execution. Routing and
// DNS stay put, so exactly the catchment-derived fields (availability,
// per-site load) diverge from the prediction — the verification receipt
// must fail and must name them.
func sabotageHook(w *experiment.World) {
	for _, site := range w.CDN.Sites() {
		if !w.CDN.Failed(site.Code) {
			w.Plane.SetDown(site.Node, true)
			w.CDN.RefreshLoad()
			fmt.Fprintf(os.Stderr, "cdnsimd: SABOTAGE: silently downed %s's forwarding\n", site.Code)
			return
		}
	}
}
