// Command topogen generates, inspects, and serializes the synthetic
// Internet topologies used by the simulator.
//
// Usage:
//
//	topogen [flags]            print summary statistics
//	topogen -out topo.txt      also write the topology in the CAIDA-style format
//	topogen -in topo.txt       load and summarize an existing file
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bestofboth/internal/topology"
)

func main() {
	var (
		seed    = flag.Int64("seed", 42, "generator seed")
		out     = flag.String("out", "", "write the topology to this file")
		in      = flag.String("in", "", "read a topology from this file instead of generating")
		stubs   = flag.Int("stubs", 0, "stub AS count (0 = default)")
		eyeball = flag.Int("eyeballs", 0, "eyeball AS count (0 = default)")
		sites   = flag.Bool("sites", false, "print per-site attachment details")
	)
	flag.Parse()

	var (
		topo *topology.Topology
		err  error
	)
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			fatal(err2)
		}
		topo, err = topology.Read(f)
		f.Close()
	} else {
		topo, err = topology.Generate(topology.GenConfig{
			Seed: *seed, NumStub: *stubs, NumEyeball: *eyeball,
		})
	}
	if err != nil {
		fatal(err)
	}

	st := topo.ComputeStats()
	fmt.Printf("nodes: %d  links: %d  avg degree: %.1f\n", st.Nodes, st.Links, st.AvgDegree)
	fmt.Printf("customer links: %d  peer links: %d  prefix-bearing: %d\n",
		st.CustomerLinks, st.PeerLinks, st.TargetBearingPrefix)
	var classes []topology.Class
	for c := range st.ByClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		fmt.Printf("  %-12s %d\n", c, st.ByClass[c])
	}

	if *sites {
		fmt.Println("\nCDN sites:")
		for _, n := range topo.NodesOfClass(topology.ClassCDN) {
			fmt.Printf("  %-5s (node %d) neighbors:\n", n.Site, n.ID)
			for _, adj := range n.Adj {
				peer := topo.Node(adj.To)
				fmt.Printf("    %-9s %-20s (%s, %.1fms)\n",
					adj.Rel, peer.Name, peer.Class, adj.Delay*1000)
			}
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := topology.Write(f, topo); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
	os.Exit(1)
}
