package bestofboth

import (
	"net/netip"

	"bestofboth/internal/bgp"
	"bestofboth/internal/core"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/dns"
	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// Plane simulates packet forwarding over the FIBs the BGP layer produces.
type Plane = dataplane.Plane

// Prober reproduces the paper's Verfploeter-style probing (§5.2).
type Prober = dataplane.Prober

// ForwardResult reports one packet's fate.
type ForwardResult = dataplane.ForwardResult

// NewProber builds a prober emitting from a node with replies addressed to
// replyTo.
func NewProber(plane *Plane, from NodeID, replyTo netip.Addr) *Prober {
	return dataplane.NewProber(plane, from, replyTo)
}

// AnycastAddr returns the service address inside the shared anycast prefix.
func AnycastAddr() netip.Addr { return core.AnycastServiceAddr }

// AnycastServiceAddr is the service address inside the shared anycast
// prefix.
//
// Deprecated: a mutable package variable leaking the internal value; use
// the AnycastAddr function.
var AnycastServiceAddr = core.AnycastServiceAddr

// ServiceAddr returns the conventional service address inside a prefix.
func ServiceAddr(p netip.Prefix) netip.Addr { return core.ServiceAddr(p) }

// SitePrefix returns the dedicated /24 of the i-th site.
func SitePrefix(i int) netip.Prefix { return core.SitePrefix(i) }

// Authoritative is the CDN zone's authoritative DNS server.
type Authoritative = dns.Authoritative

// Resolver is a caching recursive resolver.
type Resolver = dns.Resolver

// Client is an end host with an empirical TTL-violation model.
type DNSClient = dns.Client

// ViolationModel models clients using DNS records past expiry.
type ViolationModel = dns.ViolationModel

// DNSRecord is one record set of an authoritative zone dump.
type DNSRecord = dns.Record

// NewAuthoritative builds an authoritative server for the origin zone.
func NewAuthoritative(origin string) *Authoritative { return dns.NewAuthoritative(origin) }

// NewResolver builds a caching resolver backed by an authoritative server.
func NewResolver(auth *Authoritative) *Resolver { return dns.NewResolver(auth) }

// NewDNSClient builds a client resolving name through resolver.
func NewDNSClient(resolver *Resolver, name string, seed int64, v ViolationModel) *DNSClient {
	return dns.NewClient(resolver, name, seed, v)
}

// DefaultViolationModel returns the literature-derived TTL-violation model.
func DefaultViolationModel() ViolationModel { return dns.DefaultViolationModel() }

// NodeID identifies one node (AS) in the topology.
type NodeID = topology.NodeID

// Node is one autonomous system in the generated topology.
type Node = topology.Node

// Seconds is virtual time.
type Seconds = netsim.Seconds

// OriginPolicy customizes one origination (prepending, MED, communities).
type OriginPolicy = bgp.OriginPolicy
