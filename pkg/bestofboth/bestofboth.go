// Package bestofboth is the public facade over the simulator: one import
// exposing everything a typical program needs — building worlds, deploying
// the paper's routing techniques, injecting failures, probing the data
// plane, and reading metrics — without reaching into internal packages.
//
//	w, err := bestofboth.NewWorld(bestofboth.DefaultWorldConfig(
//		bestofboth.WithSeed(7),
//	))
//	...
//	w.CDN.Deploy(bestofboth.ReactiveAnycast{})
//	w.Converge(3600)
//	tr, err := w.CDN.FailSite("atl")
//
// Every name is a type alias or thin wrapper: values are interchangeable
// with the underlying internal types, and the facade adds no behavior.
package bestofboth

import (
	"bestofboth/internal/bgp"
	"bestofboth/internal/core"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/dns"
	"bestofboth/internal/experiment"
	"bestofboth/internal/netsim"
	"bestofboth/internal/obs"
	"bestofboth/internal/stats"
	"bestofboth/internal/topology"
)

// --- Worlds ---------------------------------------------------------------

// World bundles one fully wired simulation: topology, BGP speakers,
// FIB-driven data plane, CDN controller, and a route collector.
type World = experiment.World

// WorldConfig parameterizes one simulated Internet + CDN instance.
type WorldConfig = experiment.WorldConfig

// Option mutates a WorldConfig under construction; see DefaultWorldConfig.
type Option = experiment.Option

// Runner executes experiment matrices across a worker pool with
// converged-world snapshot reuse.
type Runner = experiment.Runner

// NewWorld builds a world from cfg. No technique is deployed yet.
func NewWorld(cfg WorldConfig) (*World, error) { return experiment.NewWorld(cfg) }

// DefaultWorldConfig builds the evaluation's baseline configuration (seed
// 42, ~900-AS topology) with options applied on top.
func DefaultWorldConfig(opts ...Option) WorldConfig { return experiment.DefaultWorldConfig(opts...) }

// WithSeed sets the simulation seed.
func WithSeed(seed int64) Option { return experiment.WithSeed(seed) }

// WithWorkers bounds concurrent runs in Runner instances built from the
// config; results are identical at any worker count.
func WithWorkers(n int) Option { return experiment.WithWorkers(n) }

// WithDamping enables RFC 2439 route-flap damping with default parameters.
func WithDamping() Option { return experiment.WithDamping() }

// WithObs attaches a metrics registry to every world built from the config.
func WithObs(r *Registry) Option { return experiment.WithObs(r) }

// WithScale scales the default topology's AS counts (1.0 ≈ 900 ASes).
func WithScale(f float64) Option { return experiment.WithScale(f) }

// WithShards splits each world's BGP speakers across n shard simulators run
// in deterministic phase-barrier rounds; results are bit-identical at any
// shard count, only wall-clock time changes.
func WithShards(n int) Option { return experiment.WithShards(n) }

// WithInternetScale applies the internet-scale preset topology (≈72K ASes;
// see experiment.InternetScale for the memory budget).
func WithInternetScale() Option { return experiment.WithInternetScale() }

// --- CDN controller and techniques ---------------------------------------

// CDN is the controller orchestrating announcements, DNS, failure
// detection, and reactive reconfiguration across the sites.
type CDN = core.CDN

// Site is one CDN deployment location.
type Site = core.Site

// Monitor is the probing health-monitoring subsystem.
type Monitor = core.Monitor

// LoadBalancer assigns clients to sites under per-site capacities.
type LoadBalancer = core.LoadBalancer

// SiteTransition describes one applied lifecycle change (crash, fail,
// drain, or recover) of a site.
type SiteTransition = core.SiteTransition

// TransitionKind enumerates the site lifecycle transitions.
type TransitionKind = core.TransitionKind

// Lifecycle transition kinds.
const (
	TransitionCrash   = core.TransitionCrash
	TransitionFail    = core.TransitionFail
	TransitionDrain   = core.TransitionDrain
	TransitionRecover = core.TransitionRecover
)

// Technique is a client-to-site routing technique (§3, Figure 1).
type Technique = core.Technique

// The paper's techniques (§2-§4).
type (
	Unicast              = core.Unicast
	Anycast              = core.Anycast
	ProactiveSuperprefix = core.ProactiveSuperprefix
	ReactiveAnycast      = core.ReactiveAnycast
	ProactivePrepending  = core.ProactivePrepending
	Combined             = core.Combined
)

// AllTechniques returns the paper's six techniques in presentation order.
func AllTechniques() []Technique { return core.AllTechniques() }

// AnycastServiceAddr is the service address inside the shared anycast
// prefix.
var AnycastServiceAddr = core.AnycastServiceAddr

// ServiceAddr returns the conventional service address inside a prefix.
var ServiceAddr = core.ServiceAddr

// SitePrefix returns the dedicated /24 of the i-th site.
var SitePrefix = core.SitePrefix

// --- Errors ---------------------------------------------------------------

// Sentinel errors; test with errors.Is.
var (
	ErrUnknownSite   = core.ErrUnknownSite
	ErrNotDeployed   = core.ErrNotDeployed
	ErrSiteFailed    = core.ErrSiteFailed
	ErrSiteNotFailed = core.ErrSiteNotFailed
	ErrNoTargets     = experiment.ErrNoTargets
)

// --- Observability --------------------------------------------------------

// Registry collects metrics across every instrumented layer. A nil
// *Registry disables collection at near-zero cost.
type Registry = obs.Registry

// MetricSnapshot is one metric's state in a snapshot.
type MetricSnapshot = obs.MetricSnapshot

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// --- Data plane, DNS, topology, BGP policy --------------------------------

// Plane simulates packet forwarding over the FIBs the BGP layer produces.
type Plane = dataplane.Plane

// Prober reproduces the paper's Verfploeter-style probing (§5.2).
type Prober = dataplane.Prober

// ForwardResult reports one packet's fate.
type ForwardResult = dataplane.ForwardResult

// NewProber builds a prober emitting from a node with replies addressed to
// replyTo.
var NewProber = dataplane.NewProber

// Authoritative is the CDN zone's authoritative DNS server.
type Authoritative = dns.Authoritative

// Resolver is a caching recursive resolver.
type Resolver = dns.Resolver

// Client is an end host with an empirical TTL-violation model.
type DNSClient = dns.Client

// ViolationModel models clients using DNS records past expiry.
type ViolationModel = dns.ViolationModel

// NewAuthoritative builds an authoritative server for the origin zone.
func NewAuthoritative(origin string) *Authoritative { return dns.NewAuthoritative(origin) }

// NewResolver builds a caching resolver backed by an authoritative server.
func NewResolver(auth *Authoritative) *Resolver { return dns.NewResolver(auth) }

// NewDNSClient builds a client resolving name through resolver.
func NewDNSClient(resolver *Resolver, name string, seed int64, v ViolationModel) *DNSClient {
	return dns.NewClient(resolver, name, seed, v)
}

// DefaultViolationModel returns the literature-derived TTL-violation model.
func DefaultViolationModel() ViolationModel { return dns.DefaultViolationModel() }

// NodeID identifies one node (AS) in the topology.
type NodeID = topology.NodeID

// Node is one autonomous system in the generated topology.
type Node = topology.Node

// Seconds is virtual time.
type Seconds = netsim.Seconds

// OriginPolicy customizes one origination (prepending, MED, communities).
type OriginPolicy = bgp.OriginPolicy

// --- Statistics -----------------------------------------------------------

// CDF is an empirical distribution with percentile accessors.
type CDF = stats.CDF

// Table renders fixed-width text tables.
type Table = stats.Table

// NewCDF builds an empirical CDF from samples.
func NewCDF(samples []float64) *CDF { return stats.NewCDF(samples) }

// Pct formats a share in [0,1] as a percentage.
func Pct(f float64) string { return stats.Pct(f) }
