package bestofboth

import (
	"bestofboth/internal/core"
	"bestofboth/internal/experiment"
)

// CDN is the controller orchestrating announcements, DNS, failure
// detection, and reactive reconfiguration across the sites.
type CDN = core.CDN

// Site is one CDN deployment location.
type Site = core.Site

// Monitor is the probing health-monitoring subsystem.
type Monitor = core.Monitor

// LoadBalancer assigns clients to sites under per-site capacities.
type LoadBalancer = core.LoadBalancer

// SiteTransition describes one applied lifecycle change (crash, fail,
// drain, or recover) of a site.
type SiteTransition = core.SiteTransition

// TransitionKind enumerates the site lifecycle transitions.
type TransitionKind = core.TransitionKind

// Lifecycle transition kinds.
const (
	TransitionCrash   = core.TransitionCrash
	TransitionFail    = core.TransitionFail
	TransitionDrain   = core.TransitionDrain
	TransitionRecover = core.TransitionRecover
)

// Technique is a client-to-site routing technique (§3, Figure 1).
type Technique = core.Technique

// The paper's techniques (§2-§4).
type (
	Unicast              = core.Unicast
	Anycast              = core.Anycast
	ProactiveSuperprefix = core.ProactiveSuperprefix
	ReactiveAnycast      = core.ReactiveAnycast
	ProactivePrepending  = core.ProactivePrepending
	Combined             = core.Combined
)

// AllTechniques returns the paper's six techniques in presentation order.
func AllTechniques() []Technique { return core.AllTechniques() }

// TechniqueByName resolves a technique from its canonical name — the same
// vocabulary cdnsim's -tech flag and the control plane's switch-technique
// mutation use ("reactive-anycast", "load-shift", "load-shift+<base>", ...).
func TechniqueByName(name string) (Technique, error) { return core.TechniqueByName(name) }

// Sentinel errors; test with errors.Is.
var (
	ErrUnknownSite   = core.ErrUnknownSite
	ErrNotDeployed   = core.ErrNotDeployed
	ErrSiteFailed    = core.ErrSiteFailed
	ErrSiteNotFailed = core.ErrSiteNotFailed
	ErrBadTechnique  = core.ErrBadTechnique
	ErrNoTargets     = experiment.ErrNoTargets
)
