package bestofboth

import (
	"bestofboth/internal/experiment"
)

// World bundles one fully wired simulation: topology, BGP speakers,
// FIB-driven data plane, CDN controller, and a route collector.
type World = experiment.World

// WorldConfig parameterizes one simulated Internet + CDN instance.
type WorldConfig = experiment.WorldConfig

// Option mutates a WorldConfig under construction; see DefaultWorldConfig.
type Option = experiment.Option

// Runner executes experiment matrices across a worker pool with
// converged-world snapshot reuse.
type Runner = experiment.Runner

// NewWorld builds a world from cfg. No technique is deployed yet.
func NewWorld(cfg WorldConfig) (*World, error) { return experiment.NewWorld(cfg) }

// NewConvergedWorld builds a world, deploys tech, and converges it within
// bound virtual seconds — the usual starting point for interactive use and
// the state the control-plane daemon serves.
func NewConvergedWorld(cfg WorldConfig, tech Technique, bound float64) (*World, error) {
	return experiment.NewConvergedWorld(cfg, tech, bound)
}

// DefaultWorldConfig builds the evaluation's baseline configuration (seed
// 42, ~900-AS topology) with options applied on top.
func DefaultWorldConfig(opts ...Option) WorldConfig { return experiment.DefaultWorldConfig(opts...) }

// WithSeed sets the simulation seed.
func WithSeed(seed int64) Option { return experiment.WithSeed(seed) }

// WithWorkers bounds concurrent runs in Runner instances built from the
// config; results are identical at any worker count.
func WithWorkers(n int) Option { return experiment.WithWorkers(n) }

// WithDamping enables RFC 2439 route-flap damping with default parameters.
func WithDamping() Option { return experiment.WithDamping() }

// WithObs attaches a metrics registry to every world built from the config.
func WithObs(r *Registry) Option { return experiment.WithObs(r) }

// WithScale scales the default topology's AS counts (1.0 ≈ 900 ASes).
func WithScale(f float64) Option { return experiment.WithScale(f) }

// WithShards splits each world's BGP speakers across n shard simulators run
// in deterministic phase-barrier rounds; results are bit-identical at any
// shard count, only wall-clock time changes.
func WithShards(n int) Option { return experiment.WithShards(n) }

// WithDefaultDemand attaches the default demand model (Pareto rates, 1.25x
// capacity headroom), enabling load accounting on every world built from
// the config.
func WithDefaultDemand() Option { return experiment.WithDefaultDemand() }

// WithInternetScale applies the internet-scale preset topology (≈72K ASes;
// see experiment.InternetScale for the memory budget).
func WithInternetScale() Option { return experiment.WithInternetScale() }
