package bestofboth

import (
	"bestofboth/internal/stats"
)

// CDF is an empirical distribution with percentile accessors.
type CDF = stats.CDF

// Table renders fixed-width text tables.
type Table = stats.Table

// NewCDF builds an empirical CDF from samples.
func NewCDF(samples []float64) *CDF { return stats.NewCDF(samples) }

// Pct formats a share in [0,1] as a percentage.
func Pct(f float64) string { return stats.Pct(f) }
