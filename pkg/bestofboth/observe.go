package bestofboth

import (
	"bestofboth/internal/obs"
)

// Registry collects metrics across every instrumented layer. A nil
// *Registry disables collection at near-zero cost.
type Registry = obs.Registry

// MetricSnapshot is one metric's state in a snapshot.
//
// Deprecated: this aliases the internal registry's snapshot type, whose
// shape is not versioned. Programs serializing metrics should use the wire
// twin api.MetricSample (pkg/bestofboth/api), which round-trips and carries
// the apiVersion stamp; MetricSnapshot remains only so Registry.Snapshot
// results stay nameable.
type MetricSnapshot = obs.MetricSnapshot

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }
