package bestofboth_test

import (
	"net/netip"
	"testing"

	"bestofboth/pkg/bestofboth"
)

// TestFacadeCompat pins the pre-split public surface: every name programs
// could reference before the facade was split into themed files (and before
// the function-alias vars became real functions) must still compile and
// still mean the same thing. This test is API insurance — if it stops
// compiling, the facade broke somebody.
func TestFacadeCompat(t *testing.T) {
	// Types survive as aliases (compile-time assertions).
	var (
		_ *bestofboth.World
		_ bestofboth.WorldConfig
		_ bestofboth.Option
		_ *bestofboth.Runner
		_ *bestofboth.CDN
		_ *bestofboth.Site
		_ *bestofboth.Monitor
		_ *bestofboth.LoadBalancer
		_ bestofboth.SiteTransition
		_ bestofboth.TransitionKind
		_ bestofboth.Technique
		_ bestofboth.Unicast
		_ bestofboth.Anycast
		_ bestofboth.ProactiveSuperprefix
		_ bestofboth.ReactiveAnycast
		_ bestofboth.ProactivePrepending
		_ bestofboth.Combined
		_ *bestofboth.Registry
		_ bestofboth.MetricSnapshot
		_ *bestofboth.Plane
		_ *bestofboth.Prober
		_ bestofboth.ForwardResult
		_ *bestofboth.Authoritative
		_ *bestofboth.Resolver
		_ *bestofboth.DNSClient
		_ bestofboth.ViolationModel
		_ bestofboth.NodeID
		_ bestofboth.Node
		_ bestofboth.Seconds
		_ bestofboth.OriginPolicy
		_ *bestofboth.CDF
		_ *bestofboth.Table
	)

	// Constants and sentinel errors keep their identities.
	if bestofboth.TransitionCrash == bestofboth.TransitionFail ||
		bestofboth.TransitionDrain == bestofboth.TransitionRecover {
		t.Fatal("transition kinds collapsed")
	}
	for _, err := range []error{
		bestofboth.ErrUnknownSite, bestofboth.ErrNotDeployed,
		bestofboth.ErrSiteFailed, bestofboth.ErrSiteNotFailed,
		bestofboth.ErrNoTargets,
	} {
		if err == nil {
			t.Fatal("sentinel error lost")
		}
	}

	// Function names that used to be `var X = internal.X` aliases are now
	// plain functions: call sites compile unchanged.
	if !bestofboth.ServiceAddr(bestofboth.SitePrefix(0)).IsValid() {
		t.Fatal("ServiceAddr/SitePrefix broken")
	}
	var _ func(*bestofboth.Plane, bestofboth.NodeID, netip.Addr) *bestofboth.Prober = bestofboth.NewProber

	// The deprecated var and its replacement function agree.
	if bestofboth.AnycastServiceAddr != bestofboth.AnycastAddr() {
		t.Fatal("AnycastServiceAddr diverged from AnycastAddr()")
	}

	// Constructor wrappers survive.
	if bestofboth.NewRegistry() == nil || bestofboth.NewCDF([]float64{1}) == nil {
		t.Fatal("constructors broken")
	}
	if bestofboth.NewAuthoritative("cdn.example.") == nil {
		t.Fatal("NewAuthoritative broken")
	}
	if len(bestofboth.AllTechniques()) != 6 {
		t.Fatal("AllTechniques changed arity")
	}
	if bestofboth.Pct(0.25) == "" {
		t.Fatal("Pct broken")
	}
}
