// Package bestofboth is the public facade over the simulator: one import
// exposing everything a typical program needs — building worlds, deploying
// the paper's routing techniques, injecting failures, probing the data
// plane, and reading metrics — without reaching into internal packages.
//
//	w, err := bestofboth.NewWorld(bestofboth.DefaultWorldConfig(
//		bestofboth.WithSeed(7),
//	))
//	...
//	w.CDN.Deploy(bestofboth.ReactiveAnycast{})
//	w.Converge(3600)
//	tr, err := w.CDN.FailSite("atl")
//
// Every name is a type alias or thin wrapper: values are interchangeable
// with the underlying internal types, and the facade adds no behavior.
//
// The package is split by concern:
//
//   - world.go: building and configuring simulated Internets
//   - lifecycle.go: the CDN controller, techniques, and site lifecycle
//   - netstack.go: data plane, DNS, topology, and BGP policy
//   - observe.go: metrics
//   - statistics.go: distributions and tables
//
// Serialized output lives in the subpackage api ([Version]ed wire types):
// experiment manifests, -json reports, benchmark documents, and the
// control-plane daemon's request/response schema (WorldState, ChangeSet,
// Receipt). Programs that persist or exchange simulator state should use
// api types, never the in-memory types this package aliases.
package bestofboth
