package bestofboth_test

import (
	"errors"
	"fmt"

	"bestofboth/pkg/bestofboth"
)

// Example builds a small world, deploys the paper's headline technique, and
// walks one site through a failure and recovery — the facade's core loop.
func Example() {
	w, err := bestofboth.NewWorld(bestofboth.DefaultWorldConfig(
		bestofboth.WithSeed(9),
		bestofboth.WithScale(0.1),
	))
	if err != nil {
		panic(err)
	}
	if err := w.CDN.Deploy(bestofboth.ReactiveAnycast{}); err != nil {
		panic(err)
	}
	w.Converge(3600)

	tr, err := w.CDN.FailSite("atl")
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.Site, tr.Kind == bestofboth.TransitionFail)
	w.Sim.RunFor(120)

	if _, err := w.CDN.FailSite("nowhere"); errors.Is(err, bestofboth.ErrUnknownSite) {
		fmt.Println("unknown site rejected")
	}
	_, err = w.CDN.RecoverSite("atl")
	fmt.Println("recovered:", err == nil)
	// Output:
	// atl true
	// unknown site rejected
	// recovered: true
}

// ExampleTechniqueByName resolves techniques from the shared name
// vocabulary used by cdnsim -tech and the control plane's switch-technique
// mutation.
func ExampleTechniqueByName() {
	for _, name := range []string{"reactive-anycast", "load-shift", "load-shift+proactive-prepending"} {
		t, err := bestofboth.TechniqueByName(name)
		if err != nil {
			panic(err)
		}
		fmt.Println(t.Name())
	}
	if _, err := bestofboth.TechniqueByName("carrier-pigeon"); errors.Is(err, bestofboth.ErrBadTechnique) {
		fmt.Println("unknown technique rejected")
	}
	// Output:
	// reactive-anycast
	// load-shift
	// load-shift+proactive-prepending
	// unknown technique rejected
}

// ExampleServiceAddr shows the deterministic site addressing plan.
func ExampleServiceAddr() {
	p := bestofboth.SitePrefix(0)
	fmt.Println(p, bestofboth.ServiceAddr(p))
	// Output:
	// 184.164.240.0/24 184.164.240.10
}
