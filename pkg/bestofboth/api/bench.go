package api

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"nsPerOp"`
	BytesPerOp  float64            `json:"bytesPerOp,omitempty"`
	AllocsPerOp float64            `json:"allocsPerOp,omitempty"`
	Metrics     SortedMap[float64] `json:"metrics,omitempty"`
	// Procs is the GOMAXPROCS the benchmark ran under (the -P name
	// suffix; 1 when absent). Wall-clock parallelism gates consult it:
	// a single-proc run cannot demonstrate a parallel speedup.
	Procs int `json:"procs,omitempty"`
	// Shards is the shard count parsed from a /shards=N sub-benchmark
	// path segment; 0 for unsharded benchmarks.
	Shards int `json:"shards,omitempty"`
}

// Reduction is the improvement of a benchmark relative to the baseline, in
// percent (positive = better/lower).
type Reduction struct {
	NsPerOpPct     float64 `json:"nsPerOpPct"`
	AllocsPerOpPct float64 `json:"allocsPerOpPct"`
}

// BenchFile is the document benchjson writes (and reads back as a
// baseline). Baselines from before the schema was versioned unmarshal
// fine: APIVersion is simply empty.
type BenchFile struct {
	// APIVersion is the wire-schema version (Version).
	APIVersion string      `json:"apiVersion,omitempty"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Baseline   []Benchmark `json:"baseline,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// ReductionsVsBaselinePct maps benchmark name to its improvement over
	// the embedded baseline.
	ReductionsVsBaselinePct SortedMap[Reduction] `json:"reductionsVsBaselinePct,omitempty"`
}
