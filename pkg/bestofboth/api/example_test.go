package api_test

import (
	"encoding/json"
	"fmt"
	"math"

	"bestofboth/pkg/bestofboth/api"
)

// ExampleChangeSet shows the wire shape of a dry-run ChangeSet the
// control-plane daemon returns: the intended mutations plus the predicted
// per-site effect.
func ExampleChangeSet() {
	cs := api.ChangeSet{
		APIVersion: api.Version,
		ID:         "cs-000001",
		Status:     api.StatusDryRun,
		Mutations:  []api.Mutation{{Kind: "drain", Site: "atl", DrainFor: 600}},
		Delta: api.Delta{
			ReachableShare: 0,
			Sites: []api.SiteDelta{
				{Site: "atl", Transition: "failed", OfferedMicroRPS: -15000000},
				{Site: "bos", OfferedMicroRPS: 15000000},
			},
		},
	}
	b, _ := json.Marshal(cs.Delta.Sites[0])
	fmt.Println(cs.ID, cs.Status)
	fmt.Println(string(b))
	// Output:
	// cs-000001 dry-run
	// {"site":"atl","transition":"failed","offeredMicroRPS":-15000000}
}

// ExampleHistBucket shows why histogram buckets carry a custom codec: the
// +Inf overflow bound survives JSON, which rejects infinite float64s.
func ExampleHistBucket() {
	buckets := []api.HistBucket{{LE: 60, Count: 6}, {LE: math.Inf(1), Count: 7}}
	b, _ := json.Marshal(buckets)
	fmt.Println(string(b))
	var back []api.HistBucket
	json.Unmarshal(b, &back)
	fmt.Println(back[1].Count, math.IsInf(back[1].LE, 1))
	// Output:
	// [{"le":"60","count":6},{"le":"+Inf","count":7}]
	// 7 true
}
