package api

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// roundTrip marshals v, unmarshals into a fresh value of the same type, and
// requires deep equality — the property that makes the api package a real
// wire schema rather than a write-only export format. It also requires the
// document to carry the apiVersion stamp.
func roundTrip[T any](t *testing.T, v T) {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(b), `"apiVersion": "`+Version+`"`) {
		t.Fatalf("document does not carry apiVersion %q:\n%s", Version, b)
	}
	var back T
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, b)
	}
	if !reflect.DeepEqual(v, back) {
		b2, _ := json.MarshalIndent(back, "", "  ")
		t.Fatalf("round trip not identity:\nin:  %s\nout: %s", b, b2)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	roundTrip(t, Manifest{
		APIVersion:   Version,
		Command:      "fig2",
		Seed:         42,
		ConfigDigest: "deadbeef",
		Workers:      8,
		Metrics: []MetricSample{
			{Name: "bgp_updates_total", Kind: "counter", Value: 12345},
			{Name: "sim_virtual_seconds", Kind: "gauge", Value: 3600.5, Volatile: true},
			{Name: "convergence_seconds", Kind: "histogram", Count: 7, Sum: 123.5,
				// The overflow bucket's +Inf bound is the round-trip hazard
				// the custom HistBucket codec exists for.
				Buckets: []HistBucket{{LE: 1, Count: 2}, {LE: 60, Count: 6}, {LE: math.Inf(1), Count: 7}}},
		},
		Mem:    &MemFootprint{PeakRSSBytes: 1 << 30, TotalAllocBytes: 1 << 33, Mallocs: 1e6},
		Demand: &DemandSummary{Targets: 200, TotalRPS: 9000, CapacityRPS: 11250, Gini: 0.62, TopDecileShare: 0.55, Distribution: "pareto"},
	})
}

func TestReportRoundTrip(t *testing.T) {
	r := NewReport(7)
	// Sections hold arbitrary JSON; round-trip identity holds for values
	// already in encoding/json's canonical Go shape.
	r.Add("figure2", map[string]any{"p50": 2.5, "technique": "reactive-anycast"})
	r.Add("table1", []any{map[string]any{"site": "atl", "moved": true}})
	roundTrip(t, *r)
}

func TestBenchFileRoundTrip(t *testing.T) {
	roundTrip(t, BenchFile{
		APIVersion: Version,
		GOOS:       "linux",
		GOARCH:     "amd64",
		CPU:        "test",
		Baseline:   []Benchmark{{Name: "Figure2", Iterations: 3, NsPerOp: 1e9, Procs: 8}},
		Benchmarks: []Benchmark{
			{Name: "Figure2", Iterations: 4, NsPerOp: 8e8, BytesPerOp: 1024, AllocsPerOp: 10,
				Metrics: map[string]float64{"p50-reactive-anycast-s": 2.5}, Procs: 8},
			{Name: "BGPConvergence/shards=4", Iterations: 10, NsPerOp: 1e7, Procs: 8, Shards: 4},
		},
		ReductionsVsBaselinePct: map[string]Reduction{"Figure2": {NsPerOpPct: 20, AllocsPerOpPct: 0}},
	})
}

func TestChangeSetRoundTrip(t *testing.T) {
	st := WorldState{
		VirtualTime: 1800,
		Technique:   "load-shift",
		Sites: []SiteState{{
			Code: "atl", Node: "cdn-atl", Prefix: "184.164.240.0/24", Addr: "184.164.240.10",
			Announcements: 5,
			Load:          &SiteLoad{CapacityMicroRPS: 100, OfferedMicroRPS: 80, ServedMicroRPS: 80},
		}},
		Availability: Availability{Targets: 200, Reachable: 199, ReachableShare: 0.995,
			DemandTotalMicroRPS: 1000, DemandServedMicroRPS: 990, DemandUnservedMicroRPS: 10},
		Digests: Digests{RouteStateSHA256: "aa", FIBSHA256: "bb", DNSZoneSHA256: "cc"},
	}
	post := st
	post.Availability.Reachable = 180
	roundTrip(t, ChangeSet{
		APIVersion: Version,
		ID:         "cs-000001",
		Status:     StatusExecuted,
		CreatedAt:  "2026-01-02T03:04:05Z",
		ExecutedAt: "2026-01-02T03:04:06Z",
		Mutations:  []Mutation{{Kind: "drain", Site: "atl", DrainFor: 600}},
		Pre:        st,
		Predicted:  post,
		Delta: Delta{ReachableShare: -0.095, Sites: []SiteDelta{
			{Site: "atl", Transition: "failed", OfferedMicroRPS: -80, ServedMicroRPS: -80}}},
		Actual:  &post,
		Receipt: &Receipt{Pass: false, Diffs: []FieldDiff{{Field: "availability.reachable", Predicted: "199", Actual: "180"}}},
	})
}

func TestLintReportRoundTrip(t *testing.T) {
	r := NewLintReport([]string{"detrand", "errcmp"})
	r.Findings = append(r.Findings,
		LintFinding{File: "internal/bgp/bgp.go", Line: 12, Col: 9, Check: "errcmp",
			Message: "error compared with == against sentinel io.EOF; use errors.Is"},
		LintFinding{File: "internal/ctlplane/server.go", Line: 341, Col: 14, Check: "detrand",
			Message:    "wall-clock time flows into a wire literal",
			Suppressed: true, Reason: "documented operational timestamp"},
	)
	roundTrip(t, *r)
}

func TestWorldInfoRoundTrip(t *testing.T) {
	roundTrip(t, WorldInfo{
		APIVersion:    Version,
		Seed:          42,
		ConfigDigest:  "cafe",
		Shards:        4,
		Partition:     "static",
		DemandEnabled: true,
		State: WorldState{Technique: "anycast", Availability: Availability{ReachableShare: 1},
			Digests: Digests{RouteStateSHA256: "aa", FIBSHA256: "bb", DNSZoneSHA256: "cc"}},
	})
}
