package api

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
)

// Manifest records how one experiment invocation ran: enough to reproduce
// it (seed, config digest, command) and enough to sanity-check it (the
// final metric snapshot). It is written next to JSON experiment output as
// <output>.manifest.json.
type Manifest struct {
	// APIVersion is the wire-schema version (Version).
	APIVersion string `json:"apiVersion"`
	// Command is the cdnsim subcommand (or other caller-chosen label).
	Command string `json:"command"`
	// Seed is the simulation seed shared by every run of the invocation.
	Seed int64 `json:"seed"`
	// ConfigDigest fingerprints the world configuration; equal digests +
	// equal seeds ⇒ bit-identical simulations.
	ConfigDigest string `json:"configDigest"`
	// Workers is the concurrency bound the invocation ran under. It never
	// affects results; recorded for performance forensics only.
	Workers int `json:"workers"`
	// Metrics is the registry snapshot at write time (volatile metrics
	// included — the manifest describes this invocation, not the abstract
	// simulation).
	Metrics []MetricSample `json:"metrics,omitempty"`
	// Mem records the process memory footprint at write time; nil unless
	// the caller asked for it (cdnsim fills it when -metrics is set).
	Mem *MemFootprint `json:"mem,omitempty"`
	// Demand summarizes the demand model (aggregate demand and capacity,
	// Gini coefficient, top-decile share) when the configuration enables
	// it; nil otherwise.
	Demand *DemandSummary `json:"demand,omitempty"`
}

// WriteFile writes the manifest as indented JSON, stamping APIVersion.
func (m Manifest) WriteFile(path string) error {
	m.APIVersion = Version
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("api: encoding manifest: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// MetricSample is the point-in-time state of one metric, the wire twin of
// the internal registry's snapshot entry.
type MetricSample struct {
	Name     string       `json:"name"`
	Kind     string       `json:"kind"` // "counter", "gauge", or "histogram"
	Value    float64      `json:"value,omitempty"`
	Count    uint64       `json:"count,omitempty"`
	Sum      float64      `json:"sum,omitempty"`
	Buckets  []HistBucket `json:"buckets,omitempty"`
	Volatile bool         `json:"volatile,omitempty"`
}

// HistBucket is one cumulative histogram bucket.
type HistBucket struct {
	// LE is the inclusive upper bound; +Inf for the overflow bucket.
	LE float64 `json:"le"`
	// Count is the cumulative observation count at or below LE.
	Count uint64 `json:"count"`
}

// MarshalJSON renders the bound as a string so the +Inf overflow bucket
// survives encoding (encoding/json rejects infinite float64s).
func (b HistBucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}{LE: le, Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *HistBucket) UnmarshalJSON(data []byte) error {
	var aux struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	if aux.LE == "+Inf" {
		b.LE = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(aux.LE, 64)
		if err != nil {
			return err
		}
		b.LE = v
	}
	b.Count = aux.Count
	return nil
}

// MemFootprint captures the memory cost of one invocation — the numbers
// paper-scale runs need on record to argue the kernel scales.
type MemFootprint struct {
	// PeakRSSBytes is the process's high-water resident set (VmHWM),
	// 0 where the OS does not expose it.
	PeakRSSBytes uint64 `json:"peakRSSBytes"`
	// TotalAllocBytes is the cumulative heap bytes allocated over the
	// process lifetime (runtime.MemStats.TotalAlloc).
	TotalAllocBytes uint64 `json:"totalAllocBytes"`
	// Mallocs is the cumulative count of heap objects allocated.
	Mallocs uint64 `json:"mallocs"`
}

// DemandSummary condenses a demand model: aggregate rates, capacity, and
// the concentration statistics of the heavy-tailed distribution.
type DemandSummary struct {
	Targets        int     `json:"targets"`
	TotalRPS       float64 `json:"totalRPS"`
	CapacityRPS    float64 `json:"capacityRPS"`
	Gini           float64 `json:"gini"`
	TopDecileShare float64 `json:"topDecileShare"`
	Distribution   string  `json:"distribution"`
}

// Report accumulates experiment results for machine-readable -json output:
// one named section per figure or table.
type Report struct {
	// APIVersion is the wire-schema version (Version).
	APIVersion string         `json:"apiVersion"`
	Seed       int64          `json:"seed"`
	Sections   SortedMap[any] `json:"sections"`
}

// NewReport creates an empty report for a seed.
func NewReport(seed int64) *Report {
	return &Report{APIVersion: Version, Seed: seed, Sections: SortedMap[any]{}}
}

// Add stores a section by name (e.g. "figure2", "table1").
func (r *Report) Add(name string, v any) { r.Sections[name] = v }

// WriteFile serializes the report as indented JSON, stamping APIVersion.
func (r *Report) WriteFile(path string) error {
	r.APIVersion = Version
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("api: marshaling report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("api: writing report: %w", err)
	}
	return nil
}
