package api

// WorldInfo is the daemon's top-level description of the world it owns:
// identity (seed, config digest, shard count) plus the current state.
type WorldInfo struct {
	// APIVersion is the wire-schema version (Version).
	APIVersion string `json:"apiVersion"`
	// Seed is the simulation seed; together with ConfigDigest it pins the
	// world bit-for-bit.
	Seed int64 `json:"seed"`
	// ConfigDigest fingerprints the world configuration.
	ConfigDigest string `json:"configDigest"`
	// Shards is the BGP shard count the world runs under.
	Shards int `json:"shards"`
	// Partition is the shard partition mode ("static" or "profiled");
	// empty for unsharded worlds.
	Partition string `json:"partition,omitempty"`
	// DemandEnabled reports whether a demand model (and so load
	// accounting) is attached.
	DemandEnabled bool `json:"demandEnabled"`
	// State is the world's current observable state.
	State WorldState `json:"state"`
}

// WorldState is the deterministic observable state of a deployed world at
// one instant of virtual time: the quantity ChangeSet predictions and
// verification receipts are computed over. Two bit-identical worlds yield
// byte-identical WorldStates.
type WorldState struct {
	// VirtualTime is the kernel clock in virtual seconds.
	VirtualTime float64 `json:"virtualTime"`
	// Technique is the deployed technique's name.
	Technique string `json:"technique"`
	// Sites lists every site in stable (prefix-plan) order.
	Sites []SiteState `json:"sites"`
	// Availability summarizes client reachability of the service.
	Availability Availability `json:"availability"`
	// Digests fingerprint the full routing, forwarding, and DNS state.
	Digests Digests `json:"digests"`
}

// SiteState is one site's observable state.
type SiteState struct {
	// Code is the site code (e.g. "atl").
	Code string `json:"code"`
	// Node is the topology node name hosting the site.
	Node string `json:"node"`
	// Prefix is the site's dedicated unicast /24; Addr its service address.
	Prefix string `json:"prefix"`
	Addr   string `json:"addr"`
	// Failed reports whether the site is currently failed (or drained).
	Failed bool `json:"failed"`
	// Announcements is the number of live originations the controller
	// holds at the site.
	Announcements int `json:"announcements"`
	// Load is the site's load-accountant row; nil without a demand model.
	Load *SiteLoad `json:"load,omitempty"`
}

// SiteLoad is one site's load state in fixed-point micro-rps (int64, so
// equality across worlds is exact, never float-rounded).
type SiteLoad struct {
	CapacityMicroRPS int64 `json:"capacityMicroRPS"`
	OfferedMicroRPS  int64 `json:"offeredMicroRPS"`
	ServedMicroRPS   int64 `json:"servedMicroRPS"`
	ShedMicroRPS     int64 `json:"shedMicroRPS"`
}

// Availability summarizes service reachability: which client targets can
// reach a live site at all, and — with a demand model — how much demand is
// actually served.
type Availability struct {
	// Targets is the client-target population size; Reachable counts the
	// targets whose demand address currently lands at a live site.
	Targets   int `json:"targets"`
	Reachable int `json:"reachable"`
	// ReachableShare is Reachable/Targets (1 when Targets is 0).
	ReachableShare float64 `json:"reachableShare"`
	// Demand fields are micro-rps totals; zero without a demand model.
	DemandTotalMicroRPS    int64 `json:"demandTotalMicroRPS,omitempty"`
	DemandServedMicroRPS   int64 `json:"demandServedMicroRPS,omitempty"`
	DemandShedMicroRPS     int64 `json:"demandShedMicroRPS,omitempty"`
	DemandUnservedMicroRPS int64 `json:"demandUnservedMicroRPS,omitempty"`
}

// Digests fingerprint the world's converged state. Equal digests ⇒ the two
// worlds make identical forwarding, export, and resolution decisions.
type Digests struct {
	// RouteStateSHA256 hashes the canonical text of every speaker's RIBs.
	RouteStateSHA256 string `json:"routeStateSHA256"`
	// FIBSHA256 hashes every node's forwarding table.
	FIBSHA256 string `json:"fibSHA256"`
	// DNSZoneSHA256 hashes the authoritative zone's record sets.
	DNSZoneSHA256 string `json:"dnsZoneSHA256"`
}

// DNSRecord is one record set of the authoritative zone.
type DNSRecord struct {
	Name  string   `json:"name"`
	Type  string   `json:"type"` // "A" or "AAAA"
	TTL   uint32   `json:"ttl"`
	Addrs []string `json:"addrs"`
}

// ZoneDump is the authoritative zone's full contents, sorted by name then
// type.
type ZoneDump struct {
	APIVersion string      `json:"apiVersion"`
	Origin     string      `json:"origin"`
	Serial     uint32      `json:"serial"`
	Records    []DNSRecord `json:"records"`
}

// LoadReport is the per-site load breakdown (GET /v1/load).
type LoadReport struct {
	APIVersion string `json:"apiVersion"`
	// Shedding reports the accountant's overload policy (load-shed sheds
	// excess; other techniques serve degraded).
	Shedding     bool         `json:"shedding"`
	Sites        []SiteState  `json:"sites"`
	Availability Availability `json:"availability"`
}

// SiteCatchment is the demand-address catchment of one site: how many
// client targets (and how much of their demand) currently land there.
type SiteCatchment struct {
	Site           string `json:"site"`
	Targets        int    `json:"targets"`
	DemandMicroRPS int64  `json:"demandMicroRPS,omitempty"`
}

// Catchments is the per-site breakdown of where client demand lands.
type Catchments struct {
	APIVersion string `json:"apiVersion"`
	// Addr is the probed address family: "demand" means each target's own
	// demand address (technique-dependent), otherwise the literal address.
	Addr string `json:"addr"`
	// Sites lists live catchments in stable site order; Unreachable counts
	// targets whose packets reach no live site.
	Sites          []SiteCatchment `json:"sites"`
	Unreachable    int             `json:"unreachable"`
	UnreachableRPS int64           `json:"unreachableMicroRPS,omitempty"`
}
