package api

// ChangeSet statuses. A ChangeSet is born "dry-run"; executing it moves it
// to "executed" (receipt pass) or "diverged" (receipt fail); a mutation
// list the world rejects outright is "rejected".
const (
	StatusDryRun   = "dry-run"
	StatusExecuted = "executed"
	StatusDiverged = "diverged"
	StatusRejected = "rejected"
)

// Mutation is one intended change to the world. Kind names and field
// semantics are exactly the scenario-event vocabulary (crash, fail, drain,
// recover, link-down, link-up, switch-technique, demand-scale,
// announce-policy, ...), so a scenario file's events and a ChangeSet's
// mutations are the same language.
type Mutation struct {
	// Kind selects the mutation; required.
	Kind string `json:"kind"`
	// Site is the target site code for site-scoped kinds.
	Site string `json:"site,omitempty"`
	// A and B name the link endpoints for link-scoped kinds.
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// Fraction is the kind-specific ratio: the demand multiplier for
	// demand-scale and flash-crowd, the affected share for partial kinds.
	Fraction float64 `json:"fraction,omitempty"`
	// Radius is the regional-failure metro radius in one-way milliseconds.
	Radius float64 `json:"radius,omitempty"`
	// Period is the flap cycle length / flash-crowd duration in seconds.
	Period float64 `json:"period,omitempty"`
	// Count is the kind-specific integer: flap cycles, or AS-path prepends
	// for announce-policy.
	Count int `json:"count,omitempty"`
	// DrainFor is the drain grace period in seconds.
	DrainFor float64 `json:"drainFor,omitempty"`
	// Technique is the target technique name for switch-technique.
	Technique string `json:"technique,omitempty"`
}

// ChangeSet is the record of one intended batch of mutations: what was
// asked, what the dry run predicted, and — if executed — what actually
// happened and whether it matched.
type ChangeSet struct {
	// APIVersion is the wire-schema version (Version).
	APIVersion string `json:"apiVersion"`
	// ID is the daemon-assigned identifier ("cs-000001", monotonic).
	ID string `json:"id"`
	// Status is one of the Status* constants.
	Status string `json:"status"`
	// CreatedAt/ExecutedAt are RFC 3339 wall-clock timestamps — the only
	// nondeterministic fields in the schema. Receipt comparison and golden
	// tests must ignore them.
	CreatedAt  string `json:"createdAt,omitempty"`
	ExecutedAt string `json:"executedAt,omitempty"`
	// Mutations is the ordered intended change list.
	Mutations []Mutation `json:"mutations"`
	// Pre is the world state the ChangeSet was evaluated against.
	Pre WorldState `json:"pre"`
	// Predicted is the dry-run post-state: the mutations applied to a
	// copy-on-write snapshot of Pre and converged.
	Predicted WorldState `json:"predicted"`
	// Delta summarizes Predicted − Pre.
	Delta Delta `json:"delta"`
	// Actual is the live world's post-state after execution; nil while the
	// ChangeSet is only a dry run.
	Actual *WorldState `json:"actual,omitempty"`
	// Receipt is the verification verdict from re-diffing Predicted
	// against Actual; nil while the ChangeSet is only a dry run.
	Receipt *Receipt `json:"receipt,omitempty"`
}

// Delta is the predicted effect of a ChangeSet: availability movement plus
// per-site load movement.
type Delta struct {
	// ReachableShare is predicted minus pre reachable share.
	ReachableShare float64 `json:"reachableShare"`
	// ServedMicroRPS is the predicted change in total served demand.
	ServedMicroRPS int64 `json:"servedMicroRPS,omitempty"`
	// ShedMicroRPS is the predicted change in total shed demand.
	ShedMicroRPS int64 `json:"shedMicroRPS,omitempty"`
	// Sites lists per-site changes in stable site order, omitting sites
	// with no change.
	Sites []SiteDelta `json:"sites,omitempty"`
}

// SiteDelta is one site's predicted change.
type SiteDelta struct {
	Site string `json:"site"`
	// Transition is "" (no lifecycle change), "failed", or "recovered".
	Transition string `json:"transition,omitempty"`
	// Load deltas are predicted minus pre, micro-rps.
	OfferedMicroRPS int64 `json:"offeredMicroRPS,omitempty"`
	ServedMicroRPS  int64 `json:"servedMicroRPS,omitempty"`
	ShedMicroRPS    int64 `json:"shedMicroRPS,omitempty"`
}

// Receipt is the verification verdict attached after execution: the
// predicted post-state re-diffed against the actual one, field by field.
// Determinism makes pass the only honest outcome — any diff means the
// prediction and execution paths diverged and the ChangeSet must not be
// trusted.
type Receipt struct {
	// Pass is true iff Predicted and Actual are identical.
	Pass bool `json:"pass"`
	// Diffs names every diverging field; empty when Pass.
	Diffs []FieldDiff `json:"diffs,omitempty"`
}

// FieldDiff is one diverging field, addressed by its JSON path within
// WorldState (e.g. "sites[atl].load.shedMicroRPS").
type FieldDiff struct {
	Field     string `json:"field"`
	Predicted string `json:"predicted"`
	Actual    string `json:"actual"`
}
