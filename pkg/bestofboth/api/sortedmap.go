package api

import (
	"bytes"
	"encoding/json"
	"sort"
)

// SortedMap is a string-keyed map that marshals with its keys in sorted
// order, so every encoder — not just encoding/json, which happens to sort
// map keys itself — observes one canonical byte sequence. Wire structs
// use it for every map-valued field, keeping the package's determinism
// contract independent of the consumer's JSON library, and it is what the
// cdnlint/wirestable check points raw map fields at.
//
// A nil SortedMap marshals as null, like a plain nil map. Unmarshaling
// needs no custom code: the underlying type is an ordinary map.
type SortedMap[V any] map[string]V

func (m SortedMap[V]) MarshalJSON() ([]byte, error) {
	if m == nil {
		return []byte("null"), nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		vb, err := json.Marshal(m[k])
		if err != nil {
			return nil, err
		}
		buf.Write(vb)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}
