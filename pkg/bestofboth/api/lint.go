package api

// LintReport is the machine-readable document `cdnlint -json` emits: one
// run of the analyzer suite over a set of packages, listing both the
// active findings (which gate the exit code) and the findings silenced by
// //lint:ignore directives (which let a reviewer audit every live
// suppression, with its reason, from the CI artifact alone).
type LintReport struct {
	// APIVersion is the wire-schema version (Version).
	APIVersion string `json:"apiVersion"`
	// Checks names every analyzer that ran, in execution order.
	Checks []string `json:"checks"`
	// Findings holds active diagnostics and suppressed ones alike,
	// sorted by file, line, column; entries with Suppressed set did not
	// contribute to the exit code.
	Findings []LintFinding `json:"findings"`
}

// LintFinding is one diagnostic in a LintReport.
type LintFinding struct {
	// File is the path as printed, relative to the working directory
	// when it lies beneath it.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Check is the short analyzer name ("detrand", ...), without the
	// "cdnlint/" prefix; "ignore" marks diagnostics from the suppression
	// machinery itself.
	Check   string `json:"check"`
	Message string `json:"message"`
	// Suppressed is set when a //lint:ignore directive silenced the
	// finding; Reason carries the directive's justification.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// NewLintReport returns an empty report stamped with the current schema
// version.
func NewLintReport(checks []string) *LintReport {
	return &LintReport{APIVersion: Version, Checks: checks, Findings: []LintFinding{}}
}
