// Package api defines the simulator's versioned public wire schema: the
// JSON types exchanged by the cdnsimd control-plane daemon, written into
// per-run manifests and -json experiment output, and emitted by benchjson.
//
// Every top-level document carries an "apiVersion" field (Version). The
// package depends only on the standard library — no internal simulator
// types leak into the wire — so external tooling can unmarshal any
// document with this package alone.
//
// Determinism contract: every document marshals to canonical bytes.
// Struct fields encode in declaration order, map-valued fields are
// avoided in favor of sorted slices, and no wall-clock values appear
// outside explicitly named timestamp fields (ChangeSet.CreatedAt,
// ChangeSet.ExecutedAt). Two equal worlds therefore produce bit-identical
// response bodies, which is what makes dry-run receipts testable with
// golden files.
package api

// Version is the current public API version. It appears as the
// "apiVersion" field of every top-level document.
const Version = "v1"
