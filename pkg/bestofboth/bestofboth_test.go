package bestofboth_test

import (
	"errors"
	"testing"

	"bestofboth/pkg/bestofboth"
)

// TestFacadeEndToEnd drives the public surface the way examples do: build a
// world through options, deploy a technique, instrument it, fail and
// recover a site through the typed lifecycle API, and read metrics — all
// without importing internal packages.
func TestFacadeEndToEnd(t *testing.T) {
	reg := bestofboth.NewRegistry()
	w, err := bestofboth.NewWorld(bestofboth.DefaultWorldConfig(
		bestofboth.WithSeed(9),
		bestofboth.WithScale(0.1),
		bestofboth.WithObs(reg),
	))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CDN.Deploy(bestofboth.ReactiveAnycast{}); err != nil {
		t.Fatal(err)
	}
	w.Converge(3600)

	if got := len(bestofboth.AllTechniques()); got != 6 {
		t.Fatalf("AllTechniques() = %d techniques, want 6", got)
	}

	atl := w.CDN.Site("atl")
	if atl == nil {
		t.Fatal("no atl site")
	}
	prober := bestofboth.NewProber(w.Plane, w.CDN.Site("ams").Node, atl.Addr)
	client := w.Targets()[3]
	prober.PingEvery(client.ID, 1.5, 30)

	tr, err := w.CDN.FailSite("atl")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != bestofboth.TransitionFail || tr.Site != "atl" {
		t.Fatalf("transition = %+v", tr)
	}
	w.Sim.RunFor(120)

	if _, err := w.CDN.FailSite("zzz"); !errors.Is(err, bestofboth.ErrUnknownSite) {
		t.Fatalf("got %v, want ErrUnknownSite through the facade", err)
	}
	if _, err := w.CDN.FailSite("atl"); !errors.Is(err, bestofboth.ErrSiteFailed) {
		t.Fatalf("got %v, want ErrSiteFailed through the facade", err)
	}
	if _, err := w.CDN.RecoverSite("atl"); err != nil {
		t.Fatal(err)
	}

	snap := reg.DeterministicSnapshot()
	if len(snap) == 0 {
		t.Fatal("facade-built world produced no metrics")
	}
	found := false
	for _, m := range snap {
		if m.Name == "netsim_events_executed_total" && m.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("kernel metrics missing from the facade registry")
	}

	cdf := bestofboth.NewCDF([]float64{1, 2, 3, 4})
	if cdf.Median() != 3 && cdf.Median() != 2.5 && cdf.Median() != 2 {
		t.Fatalf("CDF median = %v", cdf.Median())
	}
	if bestofboth.Pct(0.5) == "" {
		t.Fatal("Pct broken")
	}
}
