package bestofboth_test

// End-to-end integration tests: the full pipeline from topology generation
// through BGP convergence, failure, probing, and metric computation, with
// the paper's headline claims asserted across module boundaries. These are
// the "does the whole system tell the paper's story" checks; unit and
// property tests live next to each package.

import (
	"testing"

	"bestofboth/internal/bgp"
	"bestofboth/internal/core"
	"bestofboth/internal/experiment"
	"bestofboth/internal/topology"
)

func integrationConfig(seed int64) experiment.WorldConfig {
	return experiment.WorldConfig{
		Seed: seed,
		Topology: topology.GenConfig{
			NumStub:       160,
			NumEyeball:    80,
			NumUniversity: 16,
			NumRegional:   24,
		},
		CollectorPeers: 30,
	}
}

// TestPaperHeadlineClaims runs a reduced version of the paper's full
// evaluation and asserts its central comparisons.
func TestPaperHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := integrationConfig(42)
	sel, err := experiment.SelectTargets(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	fc := experiment.FailoverConfig{ProbeInterval: 1.5, ProbeDuration: 300, ConvergeTime: 3600, MaxTargets: 15}
	sites := []string{"atl", "msn", "slc"}

	pairs, err := experiment.Figure2(cfg, sel, []core.Technique{
		core.ProactiveSuperprefix{},
		core.ReactiveAnycast{},
		core.ProactivePrepending{Prepends: 3},
		core.Anycast{},
	}, sites, fc)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]experiment.CDFPair{}
	for _, p := range pairs {
		byName[p.Technique] = p
	}
	anycast := byName["anycast"].Failover.Median()
	reactive := byName["reactive-anycast"].Failover.Median()
	prepend := byName["proactive-prepending"].Failover.Median()
	super := byName["proactive-superprefix"].Failover.Median()

	// §1: reactive-anycast ≈ anycast (paper: ~2 s apart).
	if d := reactive - anycast; d < -5 || d > 10 {
		t.Errorf("reactive (%.1fs) not within a few seconds of anycast (%.1fs)", reactive, anycast)
	}
	// §4/§5: prepending between anycast and superprefix.
	if prepend < anycast-3 || prepend > super {
		t.Errorf("prepending (%.1fs) not between anycast (%.1fs) and superprefix (%.1fs)",
			prepend, anycast, super)
	}
	// §3: superprefix much slower than anycast.
	if super < 4*anycast {
		t.Errorf("superprefix (%.1fs) not ≫ anycast (%.1fs)", super, anycast)
	}
	// §5.4.1: the fast techniques reconnect in seconds, not minutes.
	for _, name := range []string{"anycast", "reactive-anycast", "proactive-prepending"} {
		if m := byName[name].Reconnection.Median(); m > 30 {
			t.Errorf("%s reconnection median %.1fs too slow", name, m)
		}
	}

	// §5.4.2: prepending steers a meaningful share of the anycast-misrouted
	// targets, with exactly the pathological-site structure of Table 1.
	rows, err := experiment.Table1(cfg, sel)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	worst := 1.0
	for _, r := range rows {
		mean += r.Prepend3
		if r.Prepend3 < worst {
			worst = r.Prepend3
		}
	}
	mean /= float64(len(rows))
	if mean < 0.4 {
		t.Errorf("mean prepend-3 control %.0f%% below the paper's ~60%% regime", mean*100)
	}
	if worst > 0.5 {
		t.Errorf("no pathological site: worst control %.0f%%", worst*100)
	}

	// Appendices A/B: withdrawal convergence ≫ announcement propagation.
	f3, err := experiment.Figure3(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := experiment.Figure4(cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Testbed.Median() < 3*f4.Testbed.Median() {
		t.Errorf("withdrawal convergence (%.1fs) not ≫ propagation (%.1fs)",
			f3.Testbed.Median(), f4.Testbed.Median())
	}

	// §2 motivation: DNS-gated unicast failover is far slower than any
	// BGP-based technique.
	ucfg := experiment.DefaultUnicastDNSConfig()
	ucfg.Clients = 400
	dnsCDF, err := experiment.UnicastDNSFailover(cfg, ucfg)
	if err != nil {
		t.Fatal(err)
	}
	if dnsCDF.Median() < 10*reactive {
		t.Errorf("unicast DNS failover (%.0fs) not ≫ reactive-anycast (%.1fs)",
			dnsCDF.Median(), reactive)
	}
}

// TestDeterministicEndToEnd verifies the whole pipeline is reproducible:
// two identically-seeded Figure 2 runs must agree exactly.
func TestDeterministicEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	run := func() []float64 {
		cfg := integrationConfig(7)
		sel, err := experiment.SelectTargets(cfg, 20)
		if err != nil {
			t.Fatal(err)
		}
		fc := experiment.FailoverConfig{ProbeInterval: 1.5, ProbeDuration: 120, ConvergeTime: 3600, MaxTargets: 10}
		r, err := experiment.RunFailover(cfg, sel, core.ReactiveAnycast{}, "atl", fc)
		if err != nil {
			t.Fatal(err)
		}
		return r.FailoverSamples(120)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestSharedProviderDeploymentEndToEnd asserts the §4 deployment argument:
// with common providers across sites, the scoped variants achieve full
// control AND fast failover simultaneously — the "best of both worlds" the
// title promises, without even the prepending control loss.
func TestSharedProviderDeploymentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := integrationConfig(13)
	cfg.Topology.CDNSharedProviders = 2
	sel, err := experiment.SelectTargets(cfg, 25)
	if err != nil {
		t.Fatal(err)
	}
	fc := experiment.FailoverConfig{ProbeInterval: 1.5, ProbeDuration: 300, ConvergeTime: 3600, MaxTargets: 10}

	for _, tech := range []core.Technique{
		core.ProactivePrepending{Prepends: 3, Scoped: true},
		core.ProactiveMED{},
	} {
		// Control: full.
		w, err := experiment.NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.CDN.Deploy(tech); err != nil {
			t.Fatal(err)
		}
		w.Converge(3600)
		for _, st := range sel.Sites {
			s := w.CDN.Site(st.Code)
			for _, id := range st.NotAnycast[:min(5, len(st.NotAnycast))] {
				if !w.CDN.CanSteer(id, s) {
					t.Errorf("%s: cannot steer client %d to %s under shared providers",
						tech.Name(), id, st.Code)
				}
			}
		}
		// Availability: failover within the anycast regime.
		r, err := experiment.RunFailover(cfg, sel, tech, "msn", fc)
		if err != nil {
			t.Fatal(err)
		}
		if r.Controllable == 0 {
			t.Fatalf("%s: no controllable targets", tech.Name())
		}
		cdf := experiment.Figure2Single(r, fc)
		if m := cdf.Failover.Median(); m > 60 {
			t.Errorf("%s: failover median %.1fs not in the fast regime", tech.Name(), m)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestDampingWorsensReactiveTail is the ablation claim pinned as a test:
// route-flap damping penalizes reactive announcements arriving amid
// withdrawal churn, lengthening the tail.
func TestDampingWorsensReactiveTail(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	run := func(damp bool) float64 {
		cfg := integrationConfig(21)
		bcfg := bgp.DefaultConfig()
		if damp {
			bcfg.Damping = bgp.DefaultDamping()
		}
		cfg.BGP = bcfg
		sel, err := experiment.SelectTargets(cfg, 25)
		if err != nil {
			t.Fatal(err)
		}
		fc := experiment.FailoverConfig{ProbeInterval: 1.5, ProbeDuration: 300, ConvergeTime: 3600, MaxTargets: 12}
		pairs, err := experiment.Figure2(cfg, sel,
			[]core.Technique{core.ReactiveAnycast{}}, []string{"atl", "msn"}, fc)
		if err != nil {
			t.Fatal(err)
		}
		return pairs[0].Failover.Percentile(95)
	}
	off, on := run(false), run(true)
	if on < off {
		t.Errorf("damping improved the reactive tail (%.1fs -> %.1fs); expected penalty", off, on)
	}
}
