// Failuredrill: two operational exercises from the paper.
//
// First, the §4 debugging drill for reactive-anycast: before relying on
// reactive announcements in a real failure, a CDN rotates a test prefix
// through its sites — withdrawing it at one site at a time — and verifies
// clients are re-routed as expected.
//
// Second, the DNS side of the story: why unicast failover is slow. A
// client population with cached records (some violating TTL, per Allman
// 2020) keeps hitting a dead address long after the CDN updated DNS.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"bestofboth/pkg/bestofboth"
)

func main() {
	w, err := bestofboth.NewWorld(bestofboth.DefaultWorldConfig(
		bestofboth.WithSeed(33),
	))
	if err != nil {
		log.Fatal(err)
	}
	if err := w.CDN.Deploy(bestofboth.ReactiveAnycast{}); err != nil {
		log.Fatal(err)
	}
	w.Converge(3600)

	// --- Drill 1: rotate a test prefix through the sites -----------------
	testPrefix := netip.MustParsePrefix("184.164.251.0/24")
	testAddr := bestofboth.ServiceAddr(testPrefix)
	probe := w.Targets()[42]

	fmt.Println("rotating test prefix through sites (§4 debugging drill):")
	sites := w.CDN.Sites()
	for i, s := range sites {
		// Announce the test prefix at this site and at the next site as
		// backup, then withdraw from the primary and verify traffic moves.
		backup := sites[(i+1)%len(sites)]
		w.Net.Originate(s.Node, testPrefix, nil)
		w.Net.Originate(backup.Node, testPrefix, &bestofboth.OriginPolicy{Prepend: 3})
		w.Converge(1200)

		before, _ := w.Plane.Catchment(probe.ID, testAddr)
		t0 := w.Sim.Now()
		w.Net.Withdraw(s.Node, testPrefix)
		w.Converge(1200)
		after, _ := w.Plane.Catchment(probe.ID, testAddr)

		status := "OK"
		if w.Topo.Node(after).Site != backup.Code {
			status = "UNEXPECTED"
		}
		fmt.Printf("  %-5s -> %-5s: probe moved %-5s -> %-5s in %4.1fs virtual  [%s]\n",
			s.Code, backup.Code,
			w.Topo.Node(before).Site, w.Topo.Node(after).Site, w.Sim.Now()-t0, status)

		w.Net.Withdraw(backup.Node, testPrefix)
		w.Converge(1200)
	}

	// --- Drill 2: the DNS failover tail ----------------------------------
	fmt.Println("\nDNS failover for comparison (why unicast alone is not enough):")
	auth := bestofboth.NewAuthoritative("cdn.example.")
	failedAddr := netip.MustParseAddr("184.164.240.10")
	healthyAddr := netip.MustParseAddr("184.164.241.10")
	const ttl = 600
	if err := auth.SetA("www", ttl, failedAddr); err != nil {
		log.Fatal(err)
	}

	const clients = 3000
	var recoveries []float64
	for i := 0; i < clients; i++ {
		resolver := bestofboth.NewResolver(auth)
		c := bestofboth.NewDNSClient(resolver, "www.cdn.example", int64(i), bestofboth.DefaultViolationModel())
		fetchedAt := float64(i%ttl) + float64(i)/clients
		if _, err := c.Addr(fetchedAt); err != nil {
			log.Fatal(err)
		}
		// Site dies at t0 = 600; the CDN repoints DNS 2 s later.
		_, usageExpiry, _ := c.Expiry()
		recover := usageExpiry
		if recover < 602 {
			recover = 602
		}
		recoveries = append(recoveries, recover-600)
	}
	auth.SetA("www", ttl, healthyAddr)

	cdf := bestofboth.NewCDF(recoveries)
	fmt.Printf("  %d clients cached the dead record (TTL %ds)\n", clients, ttl)
	fmt.Printf("  time until clients stop hitting the dead address:\n")
	fmt.Printf("    median %.0fs   p90 %.0fs   p99 %.0fs (TTL violations)\n",
		cdf.Median(), cdf.Percentile(90), cdf.Percentile(99))
	fmt.Println("\nreactive-anycast restored the test prefix in seconds above; the")
	fmt.Println("DNS path leaves the median client dark for minutes and the tail")
	fmt.Println("for much longer — the paper's core motivation (§1, §2).")
}
