// Quickstart: build a simulated Internet, run a CDN with the paper's
// reactive-anycast technique, fail a site, and watch clients fail over in
// seconds instead of waiting out DNS caches.
package main

import (
	"fmt"
	"log"

	"bestofboth/pkg/bestofboth"
)

func main() {
	// A World bundles the event-driven simulation: topology (~900 ASes),
	// BGP speakers, FIB-driven data plane, CDN controller, and a route
	// collector.
	w, err := bestofboth.NewWorld(bestofboth.DefaultWorldConfig(
		bestofboth.WithSeed(7),
	))
	if err != nil {
		log.Fatal(err)
	}

	// Deploy reactive-anycast: per-site unicast prefixes in normal
	// operation (full DNS steering control); on failure every other site
	// announces the failed site's prefix.
	if err := w.CDN.Deploy(bestofboth.ReactiveAnycast{}); err != nil {
		log.Fatal(err)
	}
	w.Converge(3600) // "wait one hour to ensure convergence" (§5.2)

	atl := w.CDN.Site("atl")
	fmt.Printf("deployed %s across %d sites; atl serves %s\n",
		w.CDN.Technique().Name(), len(w.CDN.Sites()), atl.Addr)

	// Pick a client and confirm DNS-based steering routes it to atl.
	var client = w.Targets()[10]
	if got := w.CDN.CatchmentOf(client.ID, atl.Addr); got != nil {
		fmt.Printf("client %s currently reaches site %s\n", client.Name, got.Code)
	}

	// Probe the client the way the paper does (§5.2): pings every 1.5 s
	// with replies addressed to the atl prefix, captured at whichever site
	// attracts them.
	prober := bestofboth.NewProber(w.Plane, w.CDN.Site("ams").Node, atl.Addr)

	fmt.Println("\nfailing site atl...")
	t0 := w.Sim.Now()
	if _, err := w.CDN.FailSite("atl"); err != nil {
		log.Fatal(err)
	}
	prober.PingEvery(client.ID, 1.5, 120)
	w.Sim.RunUntil(t0 + 150)

	var lastSite string
	reconnected := false
	for _, e := range prober.Capture.Entries() {
		site := w.Topo.Node(e.Site).Site
		if !reconnected {
			fmt.Printf("t=%5.1fs first reply after failure, served by %s (reconnection time)\n",
				e.Time-t0, site)
			reconnected = true
		} else if site != lastSite {
			fmt.Printf("t=%5.1fs client switched to site %s\n", e.Time-t0, site)
		}
		lastSite = site
	}
	if !reconnected {
		fmt.Println("client never reconnected (unexpected for reactive-anycast)")
		return
	}
	fmt.Printf("\nclient ends on site %s — no DNS record update was needed for\n", lastSite)
	fmt.Println("reachability: the other sites' reactive announcements of the atl")
	fmt.Println("prefix restored the path at BGP speed (~seconds, §4), while the")
	fmt.Println("stale DNS answer would have pointed at the dead address for up to")
	fmt.Println("TTL seconds (and often far longer, per the TTL-violation studies).")
}
