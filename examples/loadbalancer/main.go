// Loadbalancer: capacity-aware client steering over DNS — the "load
// distribution" control goal that motivates per-site prefixes (§3-4).
// Clients are assigned to the nearest site until it fills, then spill to
// the next; DNS (with EDNS Client Subnet) serves the assignments; a site
// failure triggers detection by the health monitor and a rebalance.
package main

import (
	"fmt"
	"log"

	"bestofboth/pkg/bestofboth"
)

func main() {
	w, err := bestofboth.NewWorld(bestofboth.DefaultWorldConfig(
		bestofboth.WithSeed(55),
	))
	if err != nil {
		log.Fatal(err)
	}
	if err := w.CDN.Deploy(bestofboth.ReactiveAnycast{}); err != nil {
		log.Fatal(err)
	}
	w.Converge(3600)

	// Capacity plan: Seattle-1 is tiny, everything else takes 120.
	capacity := map[string]int{}
	for _, s := range w.CDN.Sites() {
		capacity[s.Code] = 120
	}
	capacity["sea1"] = 10

	lb, err := w.CDN.NewLoadBalancer(capacity)
	if err != nil {
		log.Fatal(err)
	}
	var clients []bestofboth.NodeID
	for _, n := range w.Targets() {
		clients = append(clients, n.ID)
	}
	lb.Assign(clients)
	lb.InstallMapper()

	printLoads(w, lb)

	// A client resolves through a recursive resolver carrying its subnet
	// (RFC 7871) and receives its assigned site.
	resolver := bestofboth.NewResolver(w.CDN.Authoritative())
	probe := clients[17]
	caddr := w.Topo.Node(probe).Prefix.Addr().Next()
	addrs, _, err := resolver.ResolveFor(w.Sim.Now(), "www.cdn.example", caddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclient %s resolves www.cdn.example -> %v (assigned %s)\n",
		w.Topo.Node(probe).Name, addrs, lb.Assignment(probe).Code)

	// Fail the busiest site; the health monitor detects it and the
	// balancer moves its clients.
	var busiest *bestofboth.Site
	for _, s := range w.CDN.Sites() {
		if busiest == nil || lb.Load(s.Code) > lb.Load(busiest.Code) {
			busiest = s
		}
	}
	mon, err := w.CDN.StartMonitor(0.5, 3)
	if err != nil {
		log.Fatal(err)
	}
	mon.OnDetect = func(code string, at float64) {
		fmt.Printf("\nmonitor detected %s down at t=%.1fs; rebalancing\n", code, at)
		lb.Rebalance()
	}
	fmt.Printf("\ncrashing busiest site %s (%d clients)...\n", busiest.Code, lb.Load(busiest.Code))
	if _, err := w.CDN.CrashSite(busiest.Code); err != nil {
		log.Fatal(err)
	}
	w.Sim.RunFor(30)
	mon.Stop()
	w.Sim.RunFor(300)

	printLoads(w, lb)
	fmt.Printf("\nshed clients: %d; the failed site's clients moved to their\n", lb.Shed)
	fmt.Println("next-nearest sites, DNS answers follow the new assignment, and")
	fmt.Println("reactive-anycast keeps even stale-DNS clients reachable meanwhile.")
}

func printLoads(w *bestofboth.World, lb *bestofboth.LoadBalancer) {
	t := &bestofboth.Table{Header: []string{"site", "load", "capacity", "state"}}
	for _, s := range w.CDN.Sites() {
		capStr := "∞"
		if c, ok := lb.Capacity[s.Code]; ok {
			capStr = fmt.Sprintf("%d", c)
		}
		state := "healthy"
		if w.CDN.Failed(s.Code) {
			state = "FAILED"
		}
		t.AddRow(s.Code, fmt.Sprintf("%d", lb.Load(s.Code)), capStr, state)
	}
	fmt.Println(t.Render())
}
