// Trafficsteering: compare the client-to-site control of anycast against
// proactive-prepending (§5.4.2). Anycast lets BGP pick the site; with
// per-site prefixes and prepended backups, DNS can steer most clients to
// the site the CDN wants while retaining anycast-grade failover.
package main

import (
	"fmt"
	"log"
	"sort"

	"bestofboth/pkg/bestofboth"
)

func main() {
	const seed = 21
	cfg := bestofboth.DefaultWorldConfig(bestofboth.WithSeed(seed))

	// World A: pure anycast. Catchments are whatever BGP policy produces.
	wa, err := bestofboth.NewWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := wa.CDN.Deploy(bestofboth.Anycast{}); err != nil {
		log.Fatal(err)
	}
	wa.Converge(3600)

	catchments := map[string]int{}
	targets := wa.Targets()
	for _, tgt := range targets {
		if s := wa.CDN.CatchmentOf(tgt.ID, bestofboth.AnycastServiceAddr); s != nil {
			catchments[s.Code]++
		}
	}
	fmt.Printf("anycast catchments across %d client networks:\n", len(targets))
	printDist(catchments, len(targets))

	// World B: proactive-prepending(3). The CDN decides per client.
	wb, err := bestofboth.NewWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := wb.CDN.Deploy(bestofboth.ProactivePrepending{Prepends: 3}); err != nil {
		log.Fatal(err)
	}
	wb.Converge(3600)

	fmt.Println("\nsteering success per intended site (all client networks):")
	t := &bestofboth.Table{Header: []string{"site", "steerable", "of", "share"}}
	for _, s := range wb.CDN.Sites() {
		ok := 0
		for _, tgt := range targets {
			if wb.CDN.CanSteer(tgt.ID, s) {
				ok++
			}
		}
		t.AddRow(s.Code, fmt.Sprintf("%d", ok), fmt.Sprintf("%d", len(targets)),
			bestofboth.Pct(float64(ok)/float64(len(targets))))
	}
	fmt.Println(t.Render())

	// Load balancing demo: split one metro's clients 50/50 between two
	// sites — impossible under anycast, a DNS knob under prepending.
	sea1, sea2 := wb.CDN.Site("sea1"), wb.CDN.Site("sea2")
	moved, kept := 0, 0
	for i, tgt := range targets {
		want := sea1
		if i%2 == 0 {
			want = sea2
		}
		if !wb.CDN.CanSteer(tgt.ID, want) {
			continue
		}
		if want == sea2 {
			moved++
		} else {
			kept++
		}
	}
	fmt.Printf("Seattle load split: %d clients steerable to sea2, %d to sea1.\n", moved, kept)
	fmt.Println("\nUnder anycast none of this is controllable: BGP fixed the mapping")
	fmt.Println("above. Under proactive-prepending the CDN flips DNS answers per")
	fmt.Println("client while prepended backups keep failover at anycast speed (§4).")
}

func printDist(m map[string]int, total int) {
	var codes []string
	for c := range m {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return m[codes[i]] > m[codes[j]] })
	for _, c := range codes {
		fmt.Printf("  %-5s %5d clients (%s)\n", c, m[c], bestofboth.Pct(float64(m[c])/float64(total)))
	}
}
