module bestofboth

go 1.22
