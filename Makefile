GO ?= go

.PHONY: tier1 vet race race-full bench bench-baseline bench-smoke bench-json ci

# Tier-1 gate: must stay green (see ROADMAP.md).
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# Race tier: vet + race detector on the short-mode matrix.
race: vet
	$(GO) test -race -short ./...

# Full race run (slow; includes the paper-headline integration test).
race-full: vet
	$(GO) test -race ./...

# One iteration of Figure 2 bare and with a live metrics registry: catches
# benchmark rot and instrumentation regressions without a full bench run.
bench-smoke:
	$(GO) test -bench 'BenchmarkFigure2(Metrics)?$$' -benchtime 1x -run '^$$' .

# Everything CI runs (see .github/workflows/ci.yml).
ci: tier1 vet race bench-smoke

# Figure-2 + convergence benchmarks with allocation stats.
bench:
	$(GO) test -bench 'Figure2|BGPConvergence' -benchmem -run '^$$'

# Capture a before/after baseline for perf work.
bench-baseline:
	$(GO) test -bench 'Figure2|BGPConvergence' -benchmem -run '^$$' | tee bench-baseline.txt

# Machine-readable benchmark record: re-runs the headline benchmarks and
# writes BENCH_PR4.json with ns/op, allocs/op, and the headline custom
# metrics per benchmark, plus percentage reductions against the committed
# pre-zero-copy baseline (bench/pr4_baseline.json). CI uploads the file as
# an artifact so the perf trajectory is tracked from PR 4 onward.
# The bench output is staged in a file so the converter's compilation never
# competes with the benchmark for CPU.
bench-json:
	$(GO) test -bench 'Figure2$$|BGPConvergence$$' -benchtime 3x -benchmem -run '^$$' . > bench-out.tmp
	$(GO) run ./cmd/benchjson -baseline bench/pr4_baseline.json -out BENCH_PR4.json < bench-out.tmp
	@rm -f bench-out.tmp
