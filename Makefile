GO ?= go

.PHONY: tier1 vet race race-full bench bench-baseline bench-smoke ci

# Tier-1 gate: must stay green (see ROADMAP.md).
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# Race tier: vet + race detector on the short-mode matrix.
race: vet
	$(GO) test -race -short ./...

# Full race run (slow; includes the paper-headline integration test).
race-full: vet
	$(GO) test -race ./...

# One iteration of Figure 2 bare and with a live metrics registry: catches
# benchmark rot and instrumentation regressions without a full bench run.
bench-smoke:
	$(GO) test -bench 'BenchmarkFigure2(Metrics)?$$' -benchtime 1x -run '^$$' .

# Everything CI runs (see .github/workflows/ci.yml).
ci: tier1 vet race bench-smoke

# Figure-2 + convergence benchmarks with allocation stats.
bench:
	$(GO) test -bench 'Figure2|BGPConvergence' -benchmem -run '^$$'

# Capture a before/after baseline for perf work.
bench-baseline:
	$(GO) test -bench 'Figure2|BGPConvergence' -benchmem -run '^$$' | tee bench-baseline.txt
