GO ?= go

.PHONY: tier1 vet lint lint-vet lint-json lint-fixtures govulncheck race race-full bench bench-baseline bench-smoke bench-json shard-equivalence ctlplane-smoke ci

# Tier-1 gate: must stay green (see ROADMAP.md).
tier1:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...

# Invariant lint: the cdnlint analyzer suite (internal/analysis) over the
# whole tree. Exits non-zero on any unsuppressed diagnostic; see
# DESIGN.md "Invariants" for the checks and the suppression syntax.
lint:
	$(GO) run ./cmd/cdnlint ./...

# Same suite driven through go vet's -vettool protocol: exercises the
# driver's second mode and vet's per-package caching.
lint-vet:
	$(GO) build -o bin/cdnlint ./cmd/cdnlint
	$(GO) vet -vettool=bin/cdnlint ./...

# Machine-readable lint run: LINT.json is a versioned api.LintReport that
# also inventories every //lint:ignore-suppressed finding with its reason.
# CI uploads it as an artifact (even when findings fail the step, so the
# report that explains the failure is always available).
lint-json:
	$(GO) run ./cmd/cdnlint -json ./... > LINT.json

# The analyzers' own test suites: the // want fixture corpus under
# internal/analysis/testdata plus the standalone/vet driver handshake
# tests (exec'd as subprocesses).
lint-fixtures:
	$(GO) test -count=1 ./internal/analysis/ ./cmd/cdnlint/

# Vulnerability scan, tolerant of offline environments: skips with a
# warning when govulncheck is not installed or the vulnerability database
# is unreachable, but fails hard when vulnerabilities are actually found
# (govulncheck exit code 3).
govulncheck:
	@if ! command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck: not installed; skipping vulnerability scan" >&2; \
		exit 0; \
	fi; \
	govulncheck ./...; code=$$?; \
	if [ $$code -eq 0 ]; then \
		exit 0; \
	elif [ $$code -eq 3 ]; then \
		echo "govulncheck: vulnerabilities found" >&2; exit 3; \
	else \
		echo "govulncheck: scan failed (exit $$code), likely unreachable vulnerability database; skipping" >&2; \
		exit 0; \
	fi

# Race tier: vet + race detector on the short-mode matrix.
race: vet
	$(GO) test -race -short ./...

# Full race run (slow; includes the paper-headline integration test).
race-full: vet
	$(GO) test -race ./...

# One iteration of Figure 2 bare and with a live metrics registry: catches
# benchmark rot and instrumentation regressions without a full bench run.
bench-smoke:
	$(GO) test -bench 'BenchmarkFigure2(Metrics)?$$' -benchtime 1x -run '^$$' .

# Control-plane gate: the snapshotfields analyzer over the packages that
# carry ChangeSet / snapshot state, then the end-to-end smoke test — build
# cdnsimd and cdnsim, start the daemon on an ephemeral port, and drive a
# drain ChangeSet dry-run → execute → verify (pass receipt, bit-identical
# digests) plus a sabotaged execution (fail receipt naming the diverging
# fields).
ctlplane-smoke:
	$(GO) run ./cmd/cdnlint -checks snapshotfields ./internal/ctlplane/... ./pkg/bestofboth/... ./internal/experiment/...
	$(GO) test -run 'TestCtlplaneSmoke|TestDiffStatesCoversEverySchemaField' -count=1 -v . ./internal/ctlplane/

# Everything CI runs (see .github/workflows/ci.yml).
ci: tier1 vet lint race bench-smoke ctlplane-smoke

# Figure-2 + convergence benchmarks with allocation stats.
bench:
	$(GO) test -bench 'Figure2|BGPConvergence' -benchmem -run '^$$'

# Capture a before/after baseline for perf work.
bench-baseline:
	$(GO) test -bench 'Figure2|BGPConvergence' -benchmem -run '^$$' | tee bench-baseline.txt

# Machine-readable benchmark record: re-runs the headline benchmarks
# (Figure2, BGPConvergence, the sharded-convergence suite, the partitioner
# suite, and the demand fold) and writes BENCH_PR9.json with ns/op,
# allocs/op, procs, shard counts, and the headline custom metrics per
# benchmark, plus percentage reductions against the committed baseline
# (bench/pr9_baseline.json). CI uploads the file as an artifact so the
# perf trajectory is tracked from PR 4 onward, and fails on >10% ns/op
# regression of any shared benchmark or on a sub-3x sharded convergence
# speedup (both downgrade to warnings on single-proc machines, which
# cannot exhibit parallel speedup and whose goroutine-heavy timings are
# scheduler-noise-bound). The partitioner's balance gate has no such
# escape hatch: event counts are machine-deterministic, so the run fails
# anywhere if ConvergencePartition/mode=profiled's
# event-imbalance-max-mean exceeds 1.15 (the pre-partitioner BFS chunk
# cut sat at ~1.41).
# The bench output is staged in a file so the converter's compilation never
# competes with the benchmark for CPU; the trap removes it on every exit,
# and set -e makes a failure of either step fail the target loudly.
bench-json:
	@set -e; tmp=$$(mktemp bench-out.XXXXXX.tmp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -bench 'Figure2$$|BGPConvergence$$|ConvergenceSharded$$|Figure2Sharded$$|LoadAccounting$$|ConvergencePartition$$|PlanShards$$' -benchtime 3x -benchmem -run '^$$' . > "$$tmp"; \
	$(GO) run ./cmd/benchjson -baseline bench/pr9_baseline.json -out BENCH_PR9.json \
		-max-regression-pct 10 \
		-min-metric 'ConvergenceSharded/shards=8:speedup-x:3' \
		-max-metric 'ConvergencePartition/mode=profiled:event-imbalance-max-mean:1.15' < "$$tmp"

# Shard-equivalence gate: the digest tests proving shards=1 and shards=N
# produce bit-identical route and FIB state — under both partition modes
# (static and profiled; the tests iterate them) — run under the race
# detector (the sharded runner's worker handoffs are exactly what -race
# scrutinizes).
shard-equivalence:
	$(GO) test -race -run 'TestSharded.*Equivalence|TestShardRunner' ./internal/experiment/ ./internal/netsim/
