package bestofboth_test

// Control-plane smoke test: the `make ctlplane-smoke` gate. It builds the
// real cdnsimd and cdnsim binaries, starts the daemon on an ephemeral
// port, and drives a drain ChangeSet through the full lifecycle with the
// ctl client: dry-run → execute → verify. The acceptance bar is the
// tentpole's promise — the dry run's predicted per-site load deltas are
// exactly what execution produces (pass receipt, bit-identical digests),
// and a sabotaged execution yields a fail receipt naming the diverging
// fields.

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"bestofboth/pkg/bestofboth/api"
)

func TestCtlplaneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and a daemon world; skipped in -short")
	}
	dir := t.TempDir()
	cdnsimd := filepath.Join(dir, "cdnsimd")
	cdnsim := filepath.Join(dir, "cdnsim")
	for bin, pkg := range map[string]string{cdnsimd: "./cmd/cdnsimd", cdnsim: "./cmd/cdnsim"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// Start the daemon on an ephemeral port; its first stdout line carries
	// the listen URL.
	daemon := exec.Command(cdnsimd,
		"-tech", "load-shift", "-demand", "-scale", "0.3",
		"-addr", "127.0.0.1:0", "-test-sabotage")
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	daemon.Stderr = nil
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()

	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading daemon listen line: %v", err)
	}
	base := strings.TrimSpace(strings.TrimPrefix(line, "listening on "))
	if !strings.HasPrefix(base, "http://") {
		t.Fatalf("unexpected daemon banner %q", line)
	}
	waitHealthy(t, base)

	ctl := func(wantExit int, args ...string) []byte {
		t.Helper()
		cmd := exec.Command(cdnsim, append([]string{"ctl", "-addr", base}, args...)...)
		out, err := cmd.Output()
		exit := 0
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			exit = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("cdnsim ctl %v: %v", args, err)
		}
		if exit != wantExit {
			t.Fatalf("cdnsim ctl %v exited %d, want %d\n%s", args, exit, wantExit, out)
		}
		return out
	}

	// The daemon's Prometheus scrape endpoint: text exposition 0.0.4 with
	// at least the kernel step counter present. The daemon runs with
	// -metrics default-on, so this closes the registry → scrape loop.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metricsBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d\n%s", resp.StatusCode, metricsBody)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics: content type %q, want Prometheus text 0.0.4", ct)
	}
	if !strings.Contains(string(metricsBody), "netsim_events_executed_total") {
		t.Fatalf("/metrics exposition lacks netsim_events_executed_total:\n%.2000s", metricsBody)
	}

	var st api.WorldState
	mustJSON(t, ctl(0, "state"), &st)
	if len(st.Sites) < 3 {
		t.Fatalf("world has %d sites, want >= 3", len(st.Sites))
	}
	drainSite, sabotageDrain := st.Sites[1].Code, st.Sites[2].Code

	// Dry-run the drain, then execute it: same Pre-state, so the dry run's
	// predicted per-site load deltas must be exactly what execution
	// produces, and the receipt must pass with bit-identical digests.
	var dry, exe api.ChangeSet
	mustJSON(t, ctl(0, "drain", drainSite), &dry)
	if dry.Status != api.StatusDryRun || dry.Receipt != nil {
		t.Fatalf("dry run: status %q receipt %v", dry.Status, dry.Receipt)
	}
	if !hasTransition(dry.Delta, drainSite, "failed") {
		t.Fatalf("dry run predicts no %s drain: %+v", drainSite, dry.Delta)
	}
	mustJSON(t, ctl(0, "-x", "drain", drainSite), &exe)
	if exe.Status != api.StatusExecuted || exe.Receipt == nil || !exe.Receipt.Pass {
		t.Fatalf("execute: status %q receipt %+v", exe.Status, exe.Receipt)
	}
	if !reflect.DeepEqual(dry.Delta, exe.Delta) {
		t.Fatalf("executed delta differs from dry-run prediction:\ndry: %+v\nexe: %+v", dry.Delta, exe.Delta)
	}
	if exe.Actual == nil || exe.Predicted.Digests != exe.Actual.Digests {
		t.Fatalf("digests not bit-identical after verified execution:\npredicted %+v\nactual    %+v",
			exe.Predicted.Digests, exe.Actual.Digests)
	}

	// A sabotaged execution must fail verification and name the diverging
	// fields — none of which may be routing/DNS digests (the sabotage is a
	// silent data-plane failure; the receipt must be precise, not noisy).
	var sab api.ChangeSet
	mustJSON(t, ctl(3, "-x", "-sabotage", "drain", sabotageDrain), &sab)
	if sab.Status != api.StatusDiverged || sab.Receipt == nil || sab.Receipt.Pass {
		t.Fatalf("sabotaged execute: status %q receipt %+v", sab.Status, sab.Receipt)
	}
	if len(sab.Receipt.Diffs) == 0 {
		t.Fatal("sabotaged execution's fail receipt names no fields")
	}
	for _, d := range sab.Receipt.Diffs {
		if d.Field == "digests.routeStateSHA256" || d.Field == "digests.dnsZoneSHA256" {
			t.Fatalf("fail receipt names un-diverged field %q", d.Field)
		}
		if d.Predicted == d.Actual {
			t.Fatalf("diff %q reports equal values %q", d.Field, d.Predicted)
		}
	}

	// The record survives: the three ChangeSets are listed in order with
	// their final statuses.
	var list struct {
		ChangeSets []api.ChangeSet `json:"changesets"`
	}
	mustJSON(t, ctl(0, "changesets"), &list)
	var statuses []string
	for _, cs := range list.ChangeSets {
		statuses = append(statuses, cs.Status)
	}
	want := []string{api.StatusDryRun, api.StatusExecuted, api.StatusDiverged}
	if !reflect.DeepEqual(statuses, want) {
		t.Fatalf("changeset statuses %v, want %v", statuses, want)
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", base)
}

func mustJSON(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decoding ctl output: %v\n%s", err, data)
	}
}

func hasTransition(d api.Delta, site, transition string) bool {
	for _, sd := range d.Sites {
		if sd.Site == site && sd.Transition == transition {
			return true
		}
	}
	return false
}
