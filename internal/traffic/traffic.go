// Package traffic models user demand and site capacity for the load-
// management evaluation: a seeded heavy-tailed request-rate model over the
// experiment's client targets, per-site serving capacity, and an accountant
// that folds live dataplane catchments into per-site offered/served/shed
// load. It supplies the substrate for the two Sinha et al. distributed
// load-management algorithms (prefix-granularity anycast load shifting and
// overload-triggered shedding) implemented as techniques in internal/core.
//
// All rates are fixed-point int64 micro-requests-per-second (Micro units
// per rps), so folds, totals, and the rebalancing fixed point are
// bit-identical across worker and shard counts: no float accumulation
// order can perturb them.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bestofboth/internal/topology"
)

// Micro is the fixed-point scale: rates are stored in micro-rps
// (1 rps == 1e6 micro-rps).
const Micro = 1_000_000

// MaxBuckets caps the anycast load-shift bucket count: the /24 anycast
// prefix splits into at most eight /27 buckets (see core.LoadBucketPrefix).
const MaxBuckets = 8

// Config parameterizes the demand model. It is a flat comparable struct so
// it can participate verbatim in experiment cache keys and the manifest's
// sha-256 config digest via %+v formatting.
type Config struct {
	// Enabled turns demand modeling on; the zero value leaves every world
	// demand-free (the paper's original target-weighted evaluation).
	Enabled bool
	// Distribution selects the per-target rate law: "pareto" (default) or
	// "lognormal". Both are heavy-tailed, matching CDN demand skew.
	Distribution string
	// Alpha is the Pareto tail index (default 1.2; lower is heavier).
	Alpha float64
	// Sigma is the lognormal shape (default 1.5), used when Distribution
	// is "lognormal".
	Sigma float64
	// TotalRPS is the aggregate demand across all targets in requests per
	// second (default 120000).
	TotalRPS float64
	// Headroom is aggregate capacity over aggregate demand (default 1.25):
	// the per-site capacity is the aggregate capacity split evenly.
	Headroom float64
	// Buckets is the number of anycast load-shift buckets demand hashes
	// into (default and maximum MaxBuckets).
	Buckets int
}

// withDefaults fills zero fields with the documented defaults and clamps
// Buckets to the /27 plan.
func (c Config) withDefaults() Config {
	if c.Distribution == "" {
		c.Distribution = "pareto"
	}
	if c.Alpha <= 0 {
		c.Alpha = 1.2
	}
	if c.Sigma <= 0 {
		c.Sigma = 1.5
	}
	if c.TotalRPS <= 0 {
		c.TotalRPS = 120000
	}
	if c.Headroom <= 0 {
		c.Headroom = 1.25
	}
	if c.Buckets <= 0 || c.Buckets > MaxBuckets {
		c.Buckets = MaxBuckets
	}
	return c
}

// Normalized returns the config with the documented defaults filled in —
// the canonical form the experiment layer keys caches and digests on, so
// an explicit default and an elided one identify the same simulation.
func (c Config) Normalized() Config { return c.withDefaults() }

// Validate rejects unusable configurations early.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Distribution != "pareto" && c.Distribution != "lognormal" {
		return fmt.Errorf("traffic: unknown distribution %q (want pareto or lognormal)", c.Distribution)
	}
	return nil
}

// Model is the materialized demand model: a rate per target, a capacity
// per site, and a stable hash of each target into an anycast load-shift
// bucket. It is immutable except through SetRate/ScaleRate (scenario
// events such as flash crowds), and is rebuilt deterministically from
// (Config, seed, topology) — worlds restored from snapshots regenerate it
// rather than serializing it.
type Model struct {
	cfg   Config
	ids   []topology.NodeID // ascending
	rates []int64           // micro-rps, aligned with ids
	index map[topology.NodeID]int
	bkt   []uint8 // bucket per target, aligned with ids

	sites    []string
	capacity []int64 // micro-rps, aligned with sites
	total    int64   // Σ rates, maintained by SetRate
}

// NewModel draws a demand model: one rate per target from the configured
// heavy-tailed law, normalized so the rates sum to exactly
// round(TotalRPS·Micro); capacity = TotalRPS·Headroom·Micro split evenly
// over the sites (remainder to the earliest sites). Targets are processed
// in ascending node-ID order from the model's own seeded generator, so
// equal (cfg, seed, topology) inputs reproduce the model bit-for-bit.
func NewModel(cfg Config, seed int64, targets []*topology.Node, sites []string) (*Model, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("traffic: no targets to assign demand to")
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("traffic: no sites to assign capacity to")
	}
	m := &Model{
		cfg:   cfg,
		ids:   make([]topology.NodeID, 0, len(targets)),
		rates: make([]int64, len(targets)),
		index: make(map[topology.NodeID]int, len(targets)),
		bkt:   make([]uint8, len(targets)),
		sites: append([]string(nil), sites...),
	}
	for _, n := range targets {
		m.ids = append(m.ids, n.ID)
	}
	sort.Slice(m.ids, func(i, j int) bool { return m.ids[i] < m.ids[j] })
	rng := rand.New(rand.NewSource(seed ^ 0x7472616666696331)) // "traffic1"
	weights := make([]float64, len(m.ids))
	var sum float64
	for i, id := range m.ids {
		var w float64
		switch cfg.Distribution {
		case "lognormal":
			w = math.Exp(cfg.Sigma * rng.NormFloat64())
		default: // pareto, x_m = 1
			// 1-Float64() is in (0, 1], keeping the draw finite.
			w = math.Pow(1-rng.Float64(), -1/cfg.Alpha)
		}
		weights[i] = w
		sum += w
		m.index[id] = i
		m.bkt[i] = uint8((uint64(id) * 0x9E3779B97F4A7C15 >> 32) % uint64(cfg.Buckets))
	}
	totalMicro := int64(math.Round(cfg.TotalRPS * Micro))
	var assigned int64
	maxIdx := 0
	for i, w := range weights {
		r := int64(w / sum * float64(totalMicro))
		m.rates[i] = r
		assigned += r
		if r > m.rates[maxIdx] {
			maxIdx = i
		}
	}
	// Rounding remainder goes to the heaviest target so Σ rates is exact.
	m.rates[maxIdx] += totalMicro - assigned
	m.total = totalMicro

	capMicro := int64(math.Round(cfg.TotalRPS * cfg.Headroom * Micro))
	m.capacity = make([]int64, len(sites))
	per := capMicro / int64(len(sites))
	rem := capMicro % int64(len(sites))
	for i := range m.capacity {
		m.capacity[i] = per
		if int64(i) < rem {
			m.capacity[i]++
		}
	}
	return m, nil
}

// Config returns the (default-filled) configuration the model was built
// from.
func (m *Model) Config() Config { return m.cfg }

// NumTargets returns the number of demand-bearing targets.
func (m *Model) NumTargets() int { return len(m.ids) }

// NumBuckets returns the anycast load-shift bucket count.
func (m *Model) NumBuckets() int { return m.cfg.Buckets }

// Rate returns the target's demand in micro-rps (0 for unknown targets).
func (m *Model) Rate(id topology.NodeID) int64 {
	if i, ok := m.index[id]; ok {
		return m.rates[i]
	}
	return 0
}

// SetRate replaces a target's demand, maintaining the aggregate. It
// reports whether the target exists.
func (m *Model) SetRate(id topology.NodeID, micro int64) bool {
	i, ok := m.index[id]
	if !ok {
		return false
	}
	if micro < 0 {
		micro = 0
	}
	m.total += micro - m.rates[i]
	m.rates[i] = micro
	return true
}

// ScaleRate multiplies a target's demand by num/den in integer arithmetic
// (deterministic across platforms) and reports whether the target exists.
// Scenario flash crowds use it to spike and later restore demand.
func (m *Model) ScaleRate(id topology.NodeID, num, den int64) bool {
	i, ok := m.index[id]
	if !ok || den <= 0 {
		return false
	}
	return m.SetRate(id, m.rates[i]/den*num+m.rates[i]%den*num/den)
}

// Bucket returns the target's anycast load-shift bucket (stable hash of
// the node ID; -1 for unknown targets).
func (m *Model) Bucket(id topology.NodeID) int {
	if i, ok := m.index[id]; ok {
		return int(m.bkt[i])
	}
	return -1
}

// Each visits every target in ascending node-ID order with its current
// rate and bucket — the iteration order every fold and rebalance step
// uses, so results are independent of map order.
func (m *Model) Each(f func(id topology.NodeID, micro int64, bucket int)) {
	for i, id := range m.ids {
		f(id, m.rates[i], int(m.bkt[i]))
	}
}

// Sites returns the site codes in capacity order (the CDN's stable site
// order).
func (m *Model) Sites() []string { return m.sites }

// NumSites returns the number of capacity-bearing sites.
func (m *Model) NumSites() int { return len(m.sites) }

// Capacity returns site i's serving capacity in micro-rps.
func (m *Model) Capacity(i int) int64 { return m.capacity[i] }

// TotalRate returns the aggregate demand in micro-rps.
func (m *Model) TotalRate() int64 { return m.total }

// TotalCapacity returns the aggregate capacity in micro-rps.
func (m *Model) TotalCapacity() int64 {
	var t int64
	for _, c := range m.capacity {
		t += c
	}
	return t
}

// Summary condenses the demand model for the per-run manifest: aggregate
// demand and capacity, the Gini coefficient of the rate distribution, and
// the share of demand carried by the top decile of targets.
type Summary struct {
	Targets        int     `json:"targets"`
	TotalRPS       float64 `json:"totalRPS"`
	CapacityRPS    float64 `json:"capacityRPS"`
	Gini           float64 `json:"gini"`
	TopDecileShare float64 `json:"topDecileShare"`
	Distribution   string  `json:"distribution"`
}

// Summary computes the manifest block from the current rates.
func (m *Model) Summary() Summary {
	sorted := append([]int64(nil), m.rates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	var total float64
	var weighted float64 // Σ (i+1)·x_i over ascending x
	for i, r := range sorted {
		total += float64(r)
		weighted += float64(i+1) * float64(r)
	}
	s := Summary{
		Targets:      n,
		TotalRPS:     total / Micro,
		CapacityRPS:  float64(m.TotalCapacity()) / Micro,
		Distribution: m.cfg.Distribution,
	}
	if total > 0 && n > 0 {
		s.Gini = 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
		top := (n + 9) / 10
		var topSum float64
		for i := n - top; i < n; i++ {
			topSum += float64(sorted[i])
		}
		s.TopDecileShare = topSum / total
	}
	return s
}
