package traffic

import (
	"math"
	"testing"

	"bestofboth/internal/topology"
)

func testTargets(n int) []*topology.Node {
	out := make([]*topology.Node, 0, n)
	for i := 0; i < n; i++ {
		// Non-contiguous IDs exercise the bucket hash and index map.
		out = append(out, &topology.Node{ID: topology.NodeID(3*i + 7)})
	}
	return out
}

var testSites = []string{"ams", "ath", "bos", "atl"}

// TestModelReproducibility is the seeded-distribution gate: equal
// (config, seed, targets, sites) inputs must reproduce the model
// bit-for-bit, and a different seed must actually change the draw.
func TestModelReproducibility(t *testing.T) {
	for _, dist := range []string{"pareto", "lognormal"} {
		cfg := Config{Enabled: true, Distribution: dist}
		a, err := NewModel(cfg, 42, testTargets(300), testSites)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		b, err := NewModel(cfg, 42, testTargets(300), testSites)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range a.ids {
			if a.Rate(id) != b.Rate(id) {
				t.Fatalf("%s: seed 42 rates differ at node %d: %d vs %d", dist, id, a.Rate(id), b.Rate(id))
			}
			if a.Bucket(id) != b.Bucket(id) {
				t.Fatalf("%s: buckets differ at node %d", dist, id)
			}
		}
		c, err := NewModel(cfg, 43, testTargets(300), testSites)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for _, id := range a.ids {
			if a.Rate(id) != c.Rate(id) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seeds 42 and 43 drew identical models", dist)
		}
	}
}

// TestModelExactTotals checks the fixed-point bookkeeping: rates sum to
// exactly round(TotalRPS·Micro) and capacities to exactly
// round(TotalRPS·Headroom·Micro), with no float residue.
func TestModelExactTotals(t *testing.T) {
	cfg := Config{Enabled: true, TotalRPS: 120000, Headroom: 1.25}
	m, err := NewModel(cfg, 7, testTargets(501), testSites)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	m.Each(func(_ topology.NodeID, micro int64, _ int) { sum += micro })
	want := int64(math.Round(120000 * Micro))
	if sum != want || m.TotalRate() != want {
		t.Fatalf("rate sum %d, TotalRate %d, want exactly %d", sum, m.TotalRate(), want)
	}
	wantCap := int64(math.Round(120000 * 1.25 * Micro))
	if m.TotalCapacity() != wantCap {
		t.Fatalf("TotalCapacity %d, want exactly %d", m.TotalCapacity(), wantCap)
	}
	// Even split with remainder to the earliest sites: max-min ≤ 1.
	lo, hi := m.Capacity(0), m.Capacity(0)
	for i := 0; i < m.NumSites(); i++ {
		if c := m.Capacity(i); c < lo {
			lo = c
		} else if c > hi {
			hi = c
		}
	}
	if hi-lo > 1 {
		t.Fatalf("capacity split uneven: min %d max %d", lo, hi)
	}
}

func TestModelMutation(t *testing.T) {
	m, err := NewModel(Config{Enabled: true}, 1, testTargets(50), testSites)
	if err != nil {
		t.Fatal(err)
	}
	id := m.ids[10]
	before := m.TotalRate()
	old := m.Rate(id)
	if !m.SetRate(id, old+5*Micro) {
		t.Fatal("SetRate rejected a known target")
	}
	if got := m.TotalRate(); got != before+5*Micro {
		t.Fatalf("TotalRate %d after SetRate, want %d", got, before+5*Micro)
	}
	if !m.ScaleRate(id, 3, 2) {
		t.Fatal("ScaleRate rejected a known target")
	}
	want := (old+5*Micro)/2*3 + (old+5*Micro)%2*3/2
	if got := m.Rate(id); got != want {
		t.Fatalf("ScaleRate(3/2) gave %d, want %d", got, want)
	}
	if m.SetRate(topology.NodeID(1<<30), 1) {
		t.Fatal("SetRate accepted an unknown target")
	}
}

func TestModelSummary(t *testing.T) {
	m, err := NewModel(Config{Enabled: true}, 42, testTargets(400), testSites)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Summary()
	if s.Targets != 400 || s.Distribution != "pareto" {
		t.Fatalf("summary identity wrong: %+v", s)
	}
	if math.Abs(s.TotalRPS-120000) > 1e-6 {
		t.Fatalf("summary total %.3f, want 120000", s.TotalRPS)
	}
	if s.Gini <= 0 || s.Gini >= 1 {
		t.Fatalf("Gini %.3f outside (0,1)", s.Gini)
	}
	// A Pareto(α=1.2) top decile must carry far more than its even share.
	if s.TopDecileShare < 0.2 {
		t.Fatalf("top decile share %.3f implausibly flat for a heavy tail", s.TopDecileShare)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Distribution: "zipf"}).Validate(); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	n := Config{}.Normalized()
	if n.Distribution != "pareto" || n.Buckets != MaxBuckets || n.TotalRPS != 120000 {
		t.Fatalf("Normalized defaults wrong: %+v", n)
	}
}

// TestAccountantFold exercises the fold lifecycle with and without the
// shedding policy, including the unserved path and Begin's full zeroing.
func TestAccountantFold(t *testing.T) {
	m, err := NewModel(Config{Enabled: true, TotalRPS: 100}, 9, testTargets(40), testSites)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAccountant(m)

	// Everything to site 0: offered = total, no shedding → served = offered.
	a.Fold(m, func(topology.NodeID) int { return 0 })
	if a.Offered(0) != m.TotalRate() || a.Shed(0) != 0 || a.Served(0) != m.TotalRate() {
		t.Fatalf("non-shedding fold wrong: offered %d served %d shed %d", a.Offered(0), a.Served(0), a.Shed(0))
	}
	if !a.Overloaded() {
		t.Fatal("site 0 holds all demand but Overloaded() is false")
	}

	// Same fold with shedding: serve capacity, shed the rest.
	a.SetShedding(true)
	a.Fold(m, func(topology.NodeID) int { return 0 })
	if a.Served(0) != a.Capacity(0) || a.Shed(0) != m.TotalRate()-a.Capacity(0) {
		t.Fatalf("shedding fold wrong: served %d shed %d cap %d", a.Served(0), a.Shed(0), a.Capacity(0))
	}

	// No healthy site: everything unserved, per-site slices fully zeroed.
	a.Fold(m, func(topology.NodeID) int { return -1 })
	if a.Unserved() != m.TotalRate() {
		t.Fatalf("unserved %d, want %d", a.Unserved(), m.TotalRate())
	}
	for i := 0; i < a.NumSites(); i++ {
		if a.Offered(i) != 0 || a.Served(i) != 0 || a.Shed(i) != 0 {
			t.Fatalf("site %d retains load after an empty fold", i)
		}
	}
	if a.Folds() != 3 {
		t.Fatalf("folds %d, want 3", a.Folds())
	}
	served, shed := a.Cumulative()
	wantServed := int64(m.TotalRate()) + a.Capacity(0)
	wantShed := m.TotalRate() - a.Capacity(0)
	if served != wantServed || shed != wantShed {
		t.Fatalf("cumulative served %d shed %d, want %d %d", served, shed, wantServed, wantShed)
	}
}
