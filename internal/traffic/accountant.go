package traffic

import (
	"bestofboth/internal/obs"
	"bestofboth/internal/topology"
)

// Accountant folds live catchments into per-site offered/served/shed load.
// One fold is a full pass over the demand model at an instant of virtual
// time: Begin zeroes the per-site aggregates (all sites, including failed
// ones — a site that lost its catchment must also lose its counters, see
// the drain-during-overload regression in internal/experiment), Record
// attributes each target's rate to the site currently catching it, and
// Finish applies the shedding policy and streams the fold into obs.
//
// Offered/served/shed are instantaneous micro-rps for the latest fold;
// CumServed/CumShed integrate per-fold totals monotonically. All
// arithmetic is int64, so totals are bit-identical across worker and shard
// counts.
type Accountant struct {
	sites    []string
	capacity []int64
	offered  []int64
	served   []int64
	shed     []int64
	unserved int64 // demand whose catchment is no healthy site
	shedding bool
	folds    uint64
	cumServe int64
	cumShed  int64

	// Metrics are nil until Instrument attaches a registry (nil-safe).
	// Shared-registry writes use only commutative operations (Counter.Add,
	// Gauge.SetMax), so concurrent worlds stay deterministic.
	m struct {
		folds    *obs.Counter
		offered  *obs.Counter
		served   *obs.Counter
		shed     *obs.Counter
		unserved *obs.Counter
		utilMax  []*obs.Gauge
	}
}

// NewAccountant builds an accountant over the model's sites and
// capacities.
func NewAccountant(m *Model) *Accountant {
	n := m.NumSites()
	return &Accountant{
		sites:    m.Sites(),
		capacity: append([]int64(nil), m.capacity...),
		offered:  make([]int64, n),
		served:   make([]int64, n),
		shed:     make([]int64, n),
	}
}

// Instrument attaches fold metrics to r; a nil registry detaches.
func (a *Accountant) Instrument(r *obs.Registry) {
	a.m.folds = r.Counter("traffic_folds_total")
	a.m.offered = r.Counter("traffic_offered_microrps_total")
	a.m.served = r.Counter("traffic_served_microrps_total")
	a.m.shed = r.Counter("traffic_shed_microrps_total")
	a.m.unserved = r.Counter("traffic_unserved_microrps_total")
	if r == nil {
		a.m.utilMax = nil
		return
	}
	a.m.utilMax = make([]*obs.Gauge, len(a.sites))
	for i, code := range a.sites {
		//lint:ignore cdnlint/obsnames per-site family bounded by the topology's site list, fixed at construction
		a.m.utilMax[i] = r.Gauge("traffic_site_utilization_max_" + code)
	}
}

// SetShedding switches the overload policy: when true (the load-shed
// technique), a site serves at most its capacity and sheds the excess;
// when false, overload is served (degraded) and only utilization records
// it.
func (a *Accountant) SetShedding(on bool) { a.shedding = on }

// Shedding reports the active overload policy.
func (a *Accountant) Shedding() bool { return a.shedding }

// Begin starts a fold: every per-site aggregate is zeroed, including sites
// that will receive no Record this fold.
func (a *Accountant) Begin() {
	for i := range a.offered {
		a.offered[i] = 0
		a.served[i] = 0
		a.shed[i] = 0
	}
	a.unserved = 0
}

// Record attributes micro rps of demand to site (an index into the CDN's
// stable site order); a negative site means the demand reached no healthy
// site and is counted unserved. This is the per-probe hot path.
//
//cdnlint:allocfree
func (a *Accountant) Record(site int, micro int64) {
	if site < 0 || site >= len(a.offered) {
		a.unserved += micro
		return
	}
	a.offered[site] += micro
}

// Finish closes a fold: the shedding policy splits offered into
// served/shed, cumulative integrals advance, and the fold streams into
// obs.
func (a *Accountant) Finish() {
	var served, shed int64
	for i, off := range a.offered {
		if a.shedding && off > a.capacity[i] {
			a.served[i] = a.capacity[i]
			a.shed[i] = off - a.capacity[i]
		} else {
			a.served[i] = off
			a.shed[i] = 0
		}
		served += a.served[i]
		shed += a.shed[i]
	}
	a.cumServe += served
	a.cumShed += shed
	a.folds++
	a.m.folds.Inc()
	a.m.served.Add(uint64(served))
	a.m.shed.Add(uint64(shed))
	a.m.offered.Add(uint64(served + shed))
	a.m.unserved.Add(uint64(a.unserved))
	for i, g := range a.m.utilMax {
		g.SetMax(a.Utilization(i))
	}
}

// Fold runs one complete fold: catch maps a target to its current site
// index (negative for none).
func (a *Accountant) Fold(m *Model, catch func(id topology.NodeID) int) {
	a.Begin()
	for i, id := range m.ids {
		a.Record(catch(id), m.rates[i])
	}
	a.Finish()
}

// NumSites returns the number of accounted sites.
func (a *Accountant) NumSites() int { return len(a.sites) }

// SiteCode returns site i's code.
func (a *Accountant) SiteCode(i int) string { return a.sites[i] }

// Capacity returns site i's capacity in micro-rps.
func (a *Accountant) Capacity(i int) int64 { return a.capacity[i] }

// Offered returns site i's offered load from the latest fold (micro-rps).
func (a *Accountant) Offered(i int) int64 { return a.offered[i] }

// Served returns site i's served load from the latest fold (micro-rps).
func (a *Accountant) Served(i int) int64 { return a.served[i] }

// Shed returns site i's shed load from the latest fold (micro-rps).
func (a *Accountant) Shed(i int) int64 { return a.shed[i] }

// Unserved returns the latest fold's demand that reached no site.
func (a *Accountant) Unserved() int64 { return a.unserved }

// Utilization returns offered/capacity for site i.
func (a *Accountant) Utilization(i int) float64 {
	if a.capacity[i] == 0 {
		return 0
	}
	return float64(a.offered[i]) / float64(a.capacity[i])
}

// Totals returns the latest fold's aggregate offered/served/shed
// (micro-rps).
func (a *Accountant) Totals() (offered, served, shed int64) {
	for i := range a.offered {
		offered += a.offered[i]
		served += a.served[i]
		shed += a.shed[i]
	}
	return
}

// Cumulative returns the monotone served/shed integrals (micro-rps summed
// over folds).
func (a *Accountant) Cumulative() (served, shed int64) { return a.cumServe, a.cumShed }

// Folds returns how many folds have completed.
func (a *Accountant) Folds() uint64 { return a.folds }

// Overloaded reports whether any site's latest-fold offered load exceeds
// its capacity.
func (a *Accountant) Overloaded() bool {
	for i, off := range a.offered {
		if off > a.capacity[i] {
			return true
		}
	}
	return false
}
