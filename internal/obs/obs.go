// Package obs is the simulator's dependency-free observability substrate:
// a metrics registry of counters, gauges, and histograms with deterministic
// snapshot order, Prometheus text-format and JSON exposition, and cheap
// scoped timers.
//
// Two properties shape the design:
//
//  1. Zero cost when disabled. Every constructor is nil-receiver safe: a nil
//     *Registry hands out nil metrics, and every metric method no-ops on a
//     nil receiver without allocating. Hot paths keep pre-resolved metric
//     pointers in struct fields and call them unconditionally.
//
//  2. Determinism under concurrency. Experiment matrices update shared
//     metrics from many worker goroutines, yet equal seeds must produce
//     equal snapshots at any worker count. All mutating operations are
//     therefore commutative: counter adds, max-tracking gauges, and
//     histograms whose sums accumulate in fixed-point micro-units (float
//     addition is not associative; int64 addition is). Metrics that are
//     inherently run-order or wall-clock dependent (timings, cache hits)
//     are registered as volatile and excluded from DeterministicSnapshot.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// microScale is the fixed-point resolution for gauge values and histogram
// sums: one micro-unit. Deterministic accumulation needs integer adds.
const microScale = 1e6

func toMicros(v float64) int64   { return int64(math.Round(v * microScale)) }
func fromMicros(v int64) float64 { return float64(v) / microScale }

// Counter is a monotonically increasing counter. The zero value is ready to
// use; a nil Counter silently discards updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value in fixed-point micro-units. A nil Gauge
// silently discards updates. Concurrent writers should only use the
// commutative operations (Add, SetMax); Set is last-writer-wins and belongs
// in single-writer contexts.
type Gauge struct {
	v atomic.Int64
}

// Set stores v, replacing the previous value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(toMicros(v))
}

// Add adds d (which may be negative) to the gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v.Add(toMicros(d))
}

// SetMax raises the gauge to v if v exceeds the current value. Max is
// commutative, so concurrent SetMax calls from any interleaving converge to
// the same result.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	m := toMicros(v)
	for {
		cur := g.v.Load()
		if m <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, m) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return fromMicros(g.v.Load())
}

// Histogram counts observations into fixed upper-bound buckets (Prometheus
// cumulative-le convention at exposition time; stored per-bucket) and tracks
// the observation sum in fixed-point micro-units. A nil Histogram silently
// discards observations.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; implicit +Inf bucket after
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // micro-units
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(toMicros(v))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return fromMicros(h.sum.Load())
}

// DefaultDurationBuckets suit wall-clock timings from sub-millisecond
// snapshot restores to multi-second experiment runs.
var DefaultDurationBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60}

// Registry owns a flat namespace of metrics. Metrics are created on first
// use and shared by name afterwards. The zero value is not usable; a nil
// *Registry is the disabled registry: every accessor returns a nil metric
// whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	volatile map[string]bool
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		volatile: map[string]bool{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given upper
// bounds if needed. Bounds are fixed at first creation; later calls with
// different bounds return the existing histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		if len(bounds) == 0 {
			bounds = DefaultDurationBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// markVolatile flags name as excluded from DeterministicSnapshot.
func (r *Registry) markVolatile(name string) {
	r.volatile[name] = true
}

// VolatileCounter is Counter for metrics whose value depends on wall time or
// process history (cache hits, retries): excluded from DeterministicSnapshot.
func (r *Registry) VolatileCounter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.Counter(name)
	r.mu.Lock()
	r.markVolatile(name)
	r.mu.Unlock()
	return c
}

// VolatileGauge is Gauge with the volatile marking (see VolatileCounter).
func (r *Registry) VolatileGauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.Gauge(name)
	r.mu.Lock()
	r.markVolatile(name)
	r.mu.Unlock()
	return g
}

// VolatileHistogram is Histogram with the volatile marking (see
// VolatileCounter). Wall-clock timing histograms belong here.
func (r *Registry) VolatileHistogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	h := r.Histogram(name, bounds...)
	r.mu.Lock()
	r.markVolatile(name)
	r.mu.Unlock()
	return h
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// LE is the inclusive upper bound; +Inf for the overflow bucket.
	LE float64 `json:"le"`
	// Count is the cumulative observation count at or below LE.
	Count uint64 `json:"count"`
}

// MarshalJSON renders the bound as a string so the +Inf overflow bucket
// survives encoding (encoding/json rejects infinite float64s).
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}{LE: formatValue(b.LE), Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var aux struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	if aux.LE == "+Inf" {
		b.LE = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(aux.LE, 64)
		if err != nil {
			return err
		}
		b.LE = v
	}
	b.Count = aux.Count
	return nil
}

// MetricSnapshot is the point-in-time state of one metric.
type MetricSnapshot struct {
	Name     string   `json:"name"`
	Kind     string   `json:"kind"` // "counter", "gauge", or "histogram"
	Value    float64  `json:"value,omitempty"`
	Count    uint64   `json:"count,omitempty"`
	Sum      float64  `json:"sum,omitempty"`
	Buckets  []Bucket `json:"buckets,omitempty"`
	Volatile bool     `json:"volatile,omitempty"`
}

// Snapshot returns the state of every metric, sorted by name — the order is
// deterministic regardless of registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, MetricSnapshot{
			Name: name, Kind: "counter",
			Value: float64(c.Value()), Volatile: r.volatile[name],
		})
	}
	for name, g := range r.gauges {
		out = append(out, MetricSnapshot{
			Name: name, Kind: "gauge",
			Value: g.Value(), Volatile: r.volatile[name],
		})
	}
	for name, h := range r.hists {
		ms := MetricSnapshot{
			Name: name, Kind: "histogram",
			Count: h.Count(), Sum: h.Sum(), Volatile: r.volatile[name],
		}
		var cum uint64
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := math.Inf(1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			ms.Buckets = append(ms.Buckets, Bucket{LE: le, Count: cum})
		}
		out = append(out, ms)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DeterministicSnapshot is Snapshot restricted to non-volatile metrics: the
// set whose values equal seeds are guaranteed to reproduce at any worker
// count.
func (r *Registry) DeterministicSnapshot() []MetricSnapshot {
	all := r.Snapshot()
	out := all[:0]
	for _, m := range all {
		if !m.Volatile {
			out = append(out, m)
		}
	}
	return out
}

// formatValue renders floats the way Prometheus expects (no exponent for
// typical values, +Inf spelled out).
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4), sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.Snapshot() {
		var err error
		switch m.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", m.Name, m.Name, formatValue(m.Value))
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m.Name, m.Name, formatValue(m.Value))
		case "histogram":
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", m.Name); err != nil {
				return err
			}
			for _, b := range m.Buckets {
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.Name, formatValue(b.LE), b.Count); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", m.Name, formatValue(m.Sum), m.Name, m.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the full snapshot as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	if snap == nil {
		snap = []MetricSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WriteFile writes the exposition to path, choosing the format by extension:
// ".json" gets JSON, anything else the Prometheus text format.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if filepath.Ext(path) == ".json" {
		err = r.WriteJSON(f)
	} else {
		err = r.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
