package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("events_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("events_total") != c {
		t.Fatal("same name did not return the same counter")
	}

	g := r.Gauge("depth")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", got)
	}
	g.SetMax(10)
	g.SetMax(4) // lower: must not regress
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge after SetMax = %v, want 10", got)
	}

	h := r.Histogram("lat_seconds", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-102.65) > 1e-6 {
		t.Fatalf("histogram sum = %v, want 102.65", h.Sum())
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 2)
	h.Observe(0.5) // le=1
	h.Observe(1)   // le=1 (bounds are inclusive)
	h.Observe(1.5) // le=2
	h.Observe(99)  // +Inf

	var snap MetricSnapshot
	for _, m := range r.Snapshot() {
		if m.Name == "h" {
			snap = m
		}
	}
	want := []Bucket{{LE: 1, Count: 2}, {LE: 2, Count: 3}, {LE: math.Inf(1), Count: 4}}
	if !reflect.DeepEqual(snap.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", snap.Buckets, want)
	}
}

func TestNilRegistryAndMetricsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	// All of these must be safe no-ops.
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	h.Observe(1)
	StartTimer(h).Stop()
	if r.Snapshot() != nil || r.DeterministicSnapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.SetMax(2)
		h.Observe(3)
	})
	if allocs != 0 {
		t.Fatalf("disabled metric ops allocated %v times per run", allocs)
	}
}

func TestSnapshotSortedAndDeterministicExcludesVolatile(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz").Inc()
	r.VolatileCounter("cache_hits").Inc()
	r.Gauge("mmm").Set(1)
	r.VolatileHistogram("run_seconds").Observe(0.2)
	r.Histogram("aaa", 1).Observe(0.5)
	r.VolatileGauge("busy").Set(3)

	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, m := range snap {
		names[i] = m.Name
	}
	want := []string{"aaa", "busy", "cache_hits", "mmm", "run_seconds", "zzz"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot order = %v, want %v", names, want)
	}

	det := r.DeterministicSnapshot()
	for _, m := range det {
		if m.Volatile {
			t.Fatalf("volatile metric %q leaked into DeterministicSnapshot", m.Name)
		}
	}
	detNames := make([]string, len(det))
	for i, m := range det {
		detNames[i] = m.Name
	}
	if !reflect.DeepEqual(detNames, []string{"aaa", "mmm", "zzz"}) {
		t.Fatalf("deterministic snapshot = %v", detNames)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(3)
	r.Gauge("depth").Set(2.5)
	h := r.Histogram("lat_seconds", 1)
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE depth gauge\ndepth 2.5\n",
		"# TYPE events_total counter\nevents_total 3\n",
		"# TYPE lat_seconds histogram\n",
		"lat_seconds_bucket{le=\"1\"} 1\n",
		"lat_seconds_bucket{le=\"+Inf\"} 2\n",
		"lat_seconds_sum 3.5\n",
		"lat_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Histogram("b", 1).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []MetricSnapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("exposition is not valid JSON: %v", err)
	}
	if len(got) != 2 || got[0].Name != "a_total" || got[0].Value != 2 {
		t.Fatalf("unexpected decoded snapshot: %+v", got)
	}
}

func TestConcurrentUpdatesConverge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("max")
	h := r.Histogram("obs", 50)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.SetMax(float64(w*1000 + i))
				h.Observe(float64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 7999 {
		t.Fatalf("max gauge = %v, want 7999", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
