package obs

import "time"

// Timer measures one wall-clock span into a histogram. The zero value (and
// any Timer over a nil histogram) is inert, so scoped timing composes with
// the disabled registry:
//
//	defer obs.StartTimer(h).Stop()
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing into h. A nil h yields an inert timer that costs
// nothing beyond the call itself.
func StartTimer(h *Histogram) Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed seconds since StartTimer. Safe on inert timers.
func (t Timer) Stop() {
	if t.h == nil {
		return
	}
	t.h.Observe(time.Since(t.start).Seconds())
}
