package dataplane

import (
	"net/netip"
	"sort"

	"bestofboth/internal/topology"
)

// CaptureEntry records one echo reply arriving at a capture point, like a
// line in the per-site tcpdump the paper runs during failover experiments.
type CaptureEntry struct {
	Time   float64 // virtual arrival time
	Seq    uint64
	Target topology.NodeID // the target that sent the reply
	Site   topology.NodeID // the node where the reply arrived
}

// Capture accumulates echo replies across all sites for one experiment.
type Capture struct {
	entries []CaptureEntry
}

// Add appends an entry. Entries arrive in event order, which is time order.
func (c *Capture) Add(e CaptureEntry) { c.entries = append(c.entries, e) }

// Entries returns all recorded entries in arrival order.
func (c *Capture) Entries() []CaptureEntry { return c.entries }

// ByTarget groups entries per target, each group sorted by time. A counting
// pass presizes the map and every group so the grouping allocates exactly
// once per target instead of growing incrementally.
func (c *Capture) ByTarget() map[topology.NodeID][]CaptureEntry {
	counts := make(map[topology.NodeID]int)
	for _, e := range c.entries {
		counts[e.Target]++
	}
	out := make(map[topology.NodeID][]CaptureEntry, len(counts))
	for _, e := range c.entries {
		g, ok := out[e.Target]
		if !ok {
			g = make([]CaptureEntry, 0, counts[e.Target])
		}
		out[e.Target] = append(g, e)
	}
	for _, es := range out {
		if !sort.SliceIsSorted(es, func(i, j int) bool { return es[i].Time < es[j].Time }) {
			sort.Slice(es, func(i, j int) bool { return es[i].Time < es[j].Time })
		}
	}
	return out
}

// Len returns the number of captured replies.
func (c *Capture) Len() int { return len(c.entries) }

// Prober issues Verfploeter-style echo requests: probes are sent from a
// prober node with a spoofed source address inside the prefix under study,
// so replies reveal which site that prefix currently routes to from each
// target (§5.2).
type Prober struct {
	plane *Plane
	// From is the node probes are emitted from (a healthy CDN site).
	From topology.NodeID
	// ReplyTo is the source address carried in requests; targets address
	// replies to it.
	ReplyTo netip.Addr
	// Capture receives delivered replies.
	Capture *Capture
	// Sent logs every request in emission order; comparing it against
	// Capture reveals lost replies (the "missing sequence numbers" of
	// §5.2).
	Sent []SentRecord
	// LossRate drops each request or reply independently with this
	// probability, modeling random loss and ICMP rate limiting (the §5.3
	// concern); draws come from the simulation RNG so runs stay
	// deterministic.
	LossRate float64
	seq      uint64
}

// SentRecord logs one emitted echo request.
type SentRecord struct {
	Seq    uint64
	Target topology.NodeID
	Time   float64
}

// NewProber builds a prober bound to a plane.
func NewProber(plane *Plane, from topology.NodeID, replyTo netip.Addr) *Prober {
	return &Prober{plane: plane, From: from, ReplyTo: replyTo, Capture: &Capture{}}
}

// Ping sends one echo request to target now. The request travels the stable
// forward path (static latency); the reply is routed by the live FIBs at
// reply time. Lost replies produce no capture entry, mirroring a missing
// sequence number in the paper's traces. It returns the sequence number
// used.
func (p *Prober) Ping(target topology.NodeID) uint64 {
	p.seq++
	seq := p.seq
	fwd := p.plane.StaticDelay(p.From, target)
	sim := p.plane.sim
	p.Sent = append(p.Sent, SentRecord{Seq: seq, Target: target, Time: sim.Now()})
	if p.LossRate > 0 && sim.Rand().Float64() < p.LossRate {
		return seq // request lost in flight
	}
	sim.After(fwd, func() {
		// The target emits the reply; route it through the FIBs as they
		// stand at this moment.
		if p.LossRate > 0 && sim.Rand().Float64() < p.LossRate {
			return // reply lost (or rate-limited at the target)
		}
		res := p.plane.Forward(target, p.ReplyTo)
		if !res.Delivered {
			return
		}
		sim.After(res.Delay, func() {
			p.Capture.Add(CaptureEntry{
				Time:   sim.Now(),
				Seq:    seq,
				Target: target,
				Site:   res.Dest,
			})
		})
	})
	return seq
}

// PingEvery schedules pings to target at the given interval until deadline
// (inclusive start, exclusive deadline), matching the paper's ~1.5 s probing
// cadence for ~600 s after a failure.
func (p *Prober) PingEvery(target topology.NodeID, interval, duration float64) {
	sim := p.plane.sim
	deadline := sim.Now() + duration
	var tick func()
	tick = func() {
		if sim.Now() >= deadline {
			return
		}
		p.Ping(target)
		sim.After(interval, tick)
	}
	tick()
}

// RTT measures the current round-trip time from the prober's site to the
// target and back to ReplyTo, returning ok=false if the reply path is
// broken. It inspects FIBs instantaneously (no events), which is how the
// harness computes the ≤50 ms site-proximity filter of §5.1.
func (p *Prober) RTT(target topology.NodeID) (float64, bool) {
	res := p.plane.Forward(target, p.ReplyTo)
	if !res.Delivered {
		return 0, false
	}
	return p.plane.StaticDelay(p.From, target) + res.Delay, true
}
