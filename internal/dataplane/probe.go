package dataplane

import (
	"net/netip"
	"sort"

	"bestofboth/internal/topology"
)

// CaptureEntry records one echo reply arriving at a capture point, like a
// line in the per-site tcpdump the paper runs during failover experiments.
type CaptureEntry struct {
	Time   float64 // virtual arrival time
	Seq    uint64
	Target topology.NodeID // the target that sent the reply
	Site   topology.NodeID // the node where the reply arrived
}

// Capture accumulates echo replies across all sites for one experiment.
type Capture struct {
	entries []CaptureEntry
}

// Add appends an entry. Entries arrive in event order, which is time order.
func (c *Capture) Add(e CaptureEntry) { c.entries = append(c.entries, e) }

// Entries returns all recorded entries in arrival order.
func (c *Capture) Entries() []CaptureEntry { return c.entries }

// ByTarget groups entries per target, each group sorted by time. A counting
// pass presizes the map and every group so the grouping allocates exactly
// once per target instead of growing incrementally.
func (c *Capture) ByTarget() map[topology.NodeID][]CaptureEntry {
	counts := make(map[topology.NodeID]int)
	for _, e := range c.entries {
		counts[e.Target]++
	}
	out := make(map[topology.NodeID][]CaptureEntry, len(counts))
	for _, e := range c.entries {
		g, ok := out[e.Target]
		if !ok {
			g = make([]CaptureEntry, 0, counts[e.Target])
		}
		out[e.Target] = append(g, e)
	}
	for _, es := range out {
		if !sort.SliceIsSorted(es, func(i, j int) bool { return es[i].Time < es[j].Time }) {
			sort.Slice(es, func(i, j int) bool { return es[i].Time < es[j].Time })
		}
	}
	return out
}

// Len returns the number of captured replies.
func (c *Capture) Len() int { return len(c.entries) }

// Reserve grows the capture so at least n more entries can be added without
// reallocating. Experiments that know their probe count up front use this to
// avoid repeated log growth.
func (c *Capture) Reserve(n int) {
	if cap(c.entries)-len(c.entries) >= n {
		return
	}
	grown := make([]CaptureEntry, len(c.entries), len(c.entries)+n)
	copy(grown, c.entries)
	c.entries = grown
}

// Prober issues Verfploeter-style echo requests: probes are sent from a
// prober node with a spoofed source address inside the prefix under study,
// so replies reveal which site that prefix currently routes to from each
// target (§5.2).
type Prober struct {
	plane *Plane
	// From is the node probes are emitted from (a healthy CDN site).
	From topology.NodeID
	// ReplyTo is the source address carried in requests; targets address
	// replies to it.
	ReplyTo netip.Addr
	// Capture receives delivered replies.
	Capture *Capture
	// Sent logs every request in emission order; comparing it against
	// Capture reveals lost replies (the "missing sequence numbers" of
	// §5.2).
	Sent []SentRecord
	// LossRate drops each request or reply independently with this
	// probability, modeling random loss and ICMP rate limiting (the §5.3
	// concern); draws come from the simulation RNG so runs stay
	// deterministic.
	LossRate float64
	seq      uint64

	// freeFlights recycles in-flight echo payloads: the paper-scale runs
	// emit hundreds of thousands of probes, and pooling them (together
	// with netsim.AtCall) makes the request→reply→capture chain schedule
	// without per-probe closure allocations.
	freeFlights []*flight
}

// flight is the recycled payload of one echo exchange: it rides the
// request-arrival event (runEcho) and, if the reply survives, the
// reply-arrival event (runCapture).
type flight struct {
	p      *Prober
	seq    uint64
	target topology.NodeID
	dest   topology.NodeID
}

func (p *Prober) newFlight() *flight {
	if k := len(p.freeFlights); k > 0 {
		f := p.freeFlights[k-1]
		p.freeFlights = p.freeFlights[:k-1]
		return f
	}
	return &flight{}
}

func (p *Prober) freeFlight(f *flight) {
	*f = flight{}
	p.freeFlights = append(p.freeFlights, f)
}

// runEcho fires when the request reaches the target: the target emits the
// reply, which is routed by the FIBs as they stand at this moment.
func runEcho(a any) {
	f := a.(*flight)
	p := f.p
	sim := p.plane.sim
	if p.LossRate > 0 && sim.Rand().Float64() < p.LossRate {
		p.freeFlight(f)
		return // reply lost (or rate-limited at the target)
	}
	res := p.plane.Forward(f.target, p.ReplyTo)
	if !res.Delivered {
		p.freeFlight(f)
		return
	}
	f.dest = res.Dest
	sim.AtCall(sim.Now()+res.Delay, runCapture, f)
}

// runCapture fires when the reply arrives at a capture point.
func runCapture(a any) {
	f := a.(*flight)
	p := f.p
	p.Capture.Add(CaptureEntry{
		Time:   p.plane.sim.Now(),
		Seq:    f.seq,
		Target: f.target,
		Site:   f.dest,
	})
	p.freeFlight(f)
}

// SentRecord logs one emitted echo request.
type SentRecord struct {
	Seq    uint64
	Target topology.NodeID
	Time   float64
}

// NewProber builds a prober bound to a plane.
func NewProber(plane *Plane, from topology.NodeID, replyTo netip.Addr) *Prober {
	return &Prober{plane: plane, From: from, ReplyTo: replyTo, Capture: &Capture{}}
}

// Reserve presizes the sent log and the capture for n further echo
// requests, so a paper-scale probing campaign (hundreds of thousands of
// pings) fills preallocated logs instead of growing them.
func (p *Prober) Reserve(n int) {
	if cap(p.Sent)-len(p.Sent) < n {
		grown := make([]SentRecord, len(p.Sent), len(p.Sent)+n)
		copy(grown, p.Sent)
		p.Sent = grown
	}
	p.Capture.Reserve(n)
}

// Ping sends one echo request to target now. The request travels the stable
// forward path (static latency); the reply is routed by the live FIBs at
// reply time. Lost replies produce no capture entry, mirroring a missing
// sequence number in the paper's traces. It returns the sequence number
// used.
func (p *Prober) Ping(target topology.NodeID) uint64 {
	p.seq++
	seq := p.seq
	fwd := p.plane.StaticDelay(p.From, target)
	sim := p.plane.sim
	p.Sent = append(p.Sent, SentRecord{Seq: seq, Target: target, Time: sim.Now()})
	if p.LossRate > 0 && sim.Rand().Float64() < p.LossRate {
		return seq // request lost in flight
	}
	f := p.newFlight()
	f.p, f.seq, f.target = p, seq, target
	sim.AtCall(sim.Now()+fwd, runEcho, f)
	return seq
}

// PingEvery schedules pings to target at the given interval until deadline
// (inclusive start, exclusive deadline), matching the paper's ~1.5 s probing
// cadence for ~600 s after a failure.
func (p *Prober) PingEvery(target topology.NodeID, interval, duration float64) {
	sim := p.plane.sim
	deadline := sim.Now() + duration
	var tick func()
	tick = func() {
		if sim.Now() >= deadline {
			return
		}
		p.Ping(target)
		sim.After(interval, tick)
	}
	tick()
}

// RTT measures the current round-trip time from the prober's site to the
// target and back to ReplyTo, returning ok=false if the reply path is
// broken. It inspects FIBs instantaneously (no events), which is how the
// harness computes the ≤50 ms site-proximity filter of §5.1.
func (p *Prober) RTT(target topology.NodeID) (float64, bool) {
	res := p.plane.Forward(target, p.ReplyTo)
	if !res.Delivered {
		return 0, false
	}
	return p.plane.StaticDelay(p.From, target) + res.Delay, true
}
