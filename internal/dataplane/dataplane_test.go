package dataplane

import (
	"net/netip"
	"testing"

	"bestofboth/internal/bgp"
	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

var (
	prefixA = netip.MustParsePrefix("184.164.244.0/24")
	superP  = netip.MustParsePrefix("184.164.244.0/23")
	addrA   = netip.MustParseAddr("184.164.244.10")
	addrSup = netip.MustParseAddr("184.164.245.10")
)

func cfg() bgp.Config {
	return bgp.Config{MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.01, ProcMax: 0.05}
}

// twoSite builds:
//
//	T1 ---- T2        (tier-1 peers)
//	 |        \
//	S1 (site)  S2 (site)      S1, S2 customers of T1, T2 respectively
//	 |
//	 C  (client stub, customer of T1)
func twoSite(t *testing.T) (*topology.Topology, map[string]topology.NodeID) {
	t.Helper()
	b := topology.NewBuilder()
	ids := map[string]topology.NodeID{}
	ids["t1"] = b.AddNode(10, "t1", topology.ClassTier1, topology.Point{})
	ids["t2"] = b.AddNode(11, "t2", topology.ClassTier1, topology.Point{X: 5})
	ids["s1"] = b.AddNode(47065, "s1", topology.ClassCDN, topology.Point{Y: 2})
	ids["s2"] = b.AddNode(47065, "s2", topology.ClassCDN, topology.Point{X: 5, Y: 2})
	ids["c"] = b.AddNode(30, "c", topology.ClassStub, topology.Point{Y: 4})
	b.Link(ids["t1"], ids["t2"], topology.RelPeer, 0.005)
	b.Link(ids["s1"], ids["t1"], topology.RelProvider, 0.002)
	b.Link(ids["s2"], ids["t2"], topology.RelProvider, 0.002)
	b.Link(ids["c"], ids["t1"], topology.RelProvider, 0.002)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo, ids
}

func TestForwardDeliversToOrigin(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	net.Originate(ids["s1"], prefixA, nil)
	sim.Run()

	res := plane.ForwardTrace(ids["c"], addrA)
	if !res.Delivered || res.Dest != ids["s1"] {
		t.Fatalf("Forward = %+v, want delivery at s1", res)
	}
	if len(res.Path) != 3 { // c -> t1 -> s1
		t.Fatalf("path = %v, want 3 hops", res.Path)
	}
	if res.Delay <= 0 || res.Delay > 0.1 {
		t.Fatalf("delay = %v out of range", res.Delay)
	}
}

func TestForwardNoRoute(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	sim.Run()
	res := plane.Forward(ids["c"], addrA)
	if res.Delivered || res.Reason != DropNoRoute {
		t.Fatalf("Forward = %+v, want no-route", res)
	}
}

func TestDownNodeDropsPackets(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	net.Originate(ids["s1"], prefixA, nil)
	sim.Run()

	plane.SetDown(ids["s1"], true)
	res := plane.Forward(ids["c"], addrA)
	if res.Delivered || res.Reason != DropNodeDown {
		t.Fatalf("Forward = %+v, want node-down drop", res)
	}
	plane.SetDown(ids["s1"], false)
	if !plane.Forward(ids["c"], addrA).Delivered {
		t.Fatal("recovery did not restore delivery")
	}
	if plane.IsDown(ids["s1"]) {
		t.Fatal("IsDown stale")
	}
}

func TestSuperprefixFallback(t *testing.T) {
	// s1 announces the /24, s2 the covering /23. While the /24 exists,
	// traffic goes to s1; after it is withdrawn and converges, the /23
	// carries traffic to s2 — the proactive-superprefix mechanism.
	topo, ids := twoSite(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	net.Originate(ids["s1"], prefixA, nil)
	net.Originate(ids["s2"], superP, nil)
	sim.Run()

	if res := plane.Forward(ids["c"], addrA); !res.Delivered || res.Dest != ids["s1"] {
		t.Fatalf("specific prefix should win: %+v", res)
	}
	// An address only covered by the superprefix goes to s2 already.
	if res := plane.Forward(ids["c"], addrSup); !res.Delivered || res.Dest != ids["s2"] {
		t.Fatalf("superprefix address should reach s2: %+v", res)
	}

	net.Withdraw(ids["s1"], prefixA)
	sim.Run()
	if res := plane.Forward(ids["c"], addrA); !res.Delivered || res.Dest != ids["s2"] {
		t.Fatalf("after withdrawal traffic should fall back to s2: %+v", res)
	}
}

func TestCatchmentAnycast(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	net.Originate(ids["s1"], prefixA, nil)
	net.Originate(ids["s2"], prefixA, nil)
	sim.Run()

	// c is customer of t1; t1 hears [47065] from customer s1 (1 hop) and
	// [t2 47065] via peer; customer route wins, so c lands on s1.
	site, ok := plane.Catchment(ids["c"], addrA)
	if !ok || site != ids["s1"] {
		t.Fatalf("catchment = %d, %v; want s1", site, ok)
	}
}

func TestStaticDelaySymmetricAndPositive(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	d1 := plane.StaticDelay(ids["c"], ids["s2"])
	d2 := plane.StaticDelay(ids["s2"], ids["c"])
	if d1 <= 0 || d1 != d2 {
		t.Fatalf("static delay asymmetric: %v vs %v", d1, d2)
	}
	// c -> t1 -> t2 -> s2 = 0.002+0.005+0.002
	want := 0.009
	if diff := d1 - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("static delay = %v, want %v", d1, want)
	}
	if d := plane.StaticDelay(ids["c"], ids["c"]); d != 0 {
		t.Fatalf("self delay = %v", d)
	}
}

func TestProberCapturesReplies(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	net.Originate(ids["s1"], prefixA, nil)
	sim.Run()

	pr := NewProber(plane, ids["s2"], addrA)
	pr.Ping(ids["c"])
	sim.Run()

	if pr.Capture.Len() != 1 {
		t.Fatalf("capture has %d entries, want 1", pr.Capture.Len())
	}
	e := pr.Capture.Entries()[0]
	if e.Site != ids["s1"] || e.Target != ids["c"] || e.Seq != 1 {
		t.Fatalf("entry = %+v", e)
	}
	if e.Time <= 0 {
		t.Fatal("entry time not positive")
	}
}

func TestProberLostReplyNotCaptured(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	// No announcement: replies have no route.
	pr := NewProber(plane, ids["s2"], addrA)
	pr.Ping(ids["c"])
	sim.Run()
	if pr.Capture.Len() != 0 {
		t.Fatalf("capture has %d entries, want 0", pr.Capture.Len())
	}
}

func TestPingEveryCadence(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	net.Originate(ids["s1"], prefixA, nil)
	sim.Run()

	pr := NewProber(plane, ids["s2"], addrA)
	pr.PingEvery(ids["c"], 1.5, 15)
	sim.Run()
	// 15/1.5 = 10 pings (t=0..13.5).
	if got := pr.Capture.Len(); got != 10 {
		t.Fatalf("captured %d replies, want 10", got)
	}
	es := pr.Capture.Entries()
	for i := 1; i < len(es); i++ {
		if es[i].Time <= es[i-1].Time {
			t.Fatal("capture not time ordered")
		}
		if es[i].Seq != es[i-1].Seq+1 {
			t.Fatal("sequence numbers not consecutive")
		}
	}
}

func TestRTTMatchesPaths(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(1)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	net.Originate(ids["s1"], prefixA, nil)
	sim.Run()

	pr := NewProber(plane, ids["s1"], addrA)
	rtt, ok := pr.RTT(ids["c"])
	if !ok {
		t.Fatal("RTT not measurable")
	}
	// forward c<-s1: 0.004 static; reverse c->t1->s1: 0.004.
	want := 0.008
	if diff := rtt - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("rtt = %v, want %v", rtt, want)
	}
}

func TestCaptureByTarget(t *testing.T) {
	c := &Capture{}
	c.Add(CaptureEntry{Time: 2, Target: 1, Seq: 2})
	c.Add(CaptureEntry{Time: 1, Target: 1, Seq: 1})
	c.Add(CaptureEntry{Time: 3, Target: 2, Seq: 3})
	by := c.ByTarget()
	if len(by) != 2 || len(by[1]) != 2 || len(by[2]) != 1 {
		t.Fatalf("ByTarget = %v", by)
	}
	if by[1][0].Time != 1 {
		t.Fatal("ByTarget not sorted by time")
	}
}

func TestDropReasonStrings(t *testing.T) {
	for d, want := range map[DropReason]string{
		DropNone: "delivered", DropNoRoute: "no-route", DropLoop: "loop", DropNodeDown: "node-down",
	} {
		if d.String() != want {
			t.Fatalf("%d.String() = %q", d, d.String())
		}
	}
}

// TestTransientBlackholeDuringWithdrawalConvergence exercises the §3
// mechanism: during unicast withdrawal convergence with a superprefix
// backup, some replies are lost or misrouted before converging onto the
// covering prefix.
func TestTransientBlackholeDuringWithdrawalConvergence(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(7)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	net.Originate(ids["s1"], prefixA, nil)
	net.Originate(ids["s2"], superP, nil)
	sim.Run()

	pr := NewProber(plane, ids["s2"], addrA)
	plane.SetDown(ids["s1"], true)
	net.Withdraw(ids["s1"], prefixA)
	pr.PingEvery(ids["c"], 1.5, 60)
	sim.Run()

	// All captured replies must have landed at s2 (s1 is down), and the
	// first capture must come after the withdrawal reached t1.
	for _, e := range pr.Capture.Entries() {
		if e.Site != ids["s2"] {
			t.Fatalf("reply captured at %d while s1 down", e.Site)
		}
	}
	if pr.Capture.Len() == 0 {
		t.Fatal("no replies ever reached s2; superprefix fallback broken")
	}
}

func TestProberLossRate(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(9)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	net.Originate(ids["s1"], prefixA, nil)
	sim.Run()

	pr := NewProber(plane, ids["s2"], addrA)
	pr.LossRate = 0.3
	const n = 2000
	for i := 0; i < n; i++ {
		pr.Ping(ids["c"])
	}
	sim.Run()
	got := pr.Capture.Len()
	// Request and reply each dropped at 30%: delivery ≈ 0.49.
	if got < n*40/100 || got > n*58/100 {
		t.Fatalf("captured %d/%d with 30%% bidirectional loss, want ≈49%%", got, n)
	}
	if len(pr.Sent) != n {
		t.Fatalf("sent log has %d entries, want %d", len(pr.Sent), n)
	}
}

func TestProberZeroLossCapturesAll(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(10)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	net.Originate(ids["s1"], prefixA, nil)
	sim.Run()
	pr := NewProber(plane, ids["s2"], addrA)
	for i := 0; i < 100; i++ {
		pr.Ping(ids["c"])
	}
	sim.Run()
	if pr.Capture.Len() != 100 {
		t.Fatalf("lost replies with zero loss rate: %d/100", pr.Capture.Len())
	}
}

func TestTraceroutePerHopRTT(t *testing.T) {
	topo, ids := twoSite(t)
	sim := netsim.New(11)
	net := bgp.New(sim, topo, cfg())
	plane := New(net)
	net.Originate(ids["s1"], prefixA, nil)
	sim.Run()

	hops, res := plane.Traceroute(ids["c"], addrA)
	if !res.Delivered {
		t.Fatalf("traceroute failed: %+v", res)
	}
	// c -> t1 -> s1: RTTs 0, 2*0.002, 2*0.004.
	if len(hops) != 3 {
		t.Fatalf("got %d hops", len(hops))
	}
	if hops[0].RTT != 0 {
		t.Fatalf("first hop RTT = %v", hops[0].RTT)
	}
	want := []float64{0, 0.004, 0.008}
	for i, h := range hops {
		if diff := h.RTT - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("hop %d RTT = %v, want %v", i, h.RTT, want[i])
		}
	}
	for i := 1; i < len(hops); i++ {
		if hops[i].RTT < hops[i-1].RTT {
			t.Fatal("RTTs not monotone")
		}
	}
}
