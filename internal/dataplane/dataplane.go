// Package dataplane simulates packet forwarding over the FIBs produced by
// the BGP layer.
//
// Every node keeps a longest-prefix-match FIB that tracks its BGP loc-RIB
// in real time. Packets are forwarded hop by hop through these FIBs, so a
// packet in flight during route convergence experiences exactly the
// pathologies the paper measures: blackholes at routers whose best route was
// withdrawn, transient forwarding loops during path exploration, and
// deliveries to different CDN sites as catchments shift.
//
// The prober reproduces the paper's Verfploeter-style methodology (§5.2):
// echo requests are sent from a healthy site with a source address inside
// the prefix under study, and the replies are routed by the live FIBs to
// whichever site currently attracts that prefix, where a capture log
// records them.
package dataplane

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"bestofboth/internal/bgp"
	"bestofboth/internal/iptrie"
	"bestofboth/internal/netsim"
	"bestofboth/internal/obs"
	"bestofboth/internal/topology"
)

// MaxHops bounds forwarding walks, standing in for the IP TTL.
const MaxHops = 64

// fibEntry is one FIB slot: either local delivery or a next hop.
type fibEntry struct {
	local bool
	next  topology.NodeID
	delay float64 // one-way link delay to next, seconds
}

// DropReason explains why a packet was not delivered.
type DropReason int8

const (
	// DropNone means the packet was delivered.
	DropNone DropReason = iota
	// DropNoRoute means some router had no FIB entry for the destination.
	DropNoRoute
	// DropLoop means the packet exceeded MaxHops (forwarding loop).
	DropLoop
	// DropNodeDown means the packet reached a failed node.
	DropNodeDown
)

// String names the drop reason.
func (d DropReason) String() string {
	switch d {
	case DropNone:
		return "delivered"
	case DropNoRoute:
		return "no-route"
	case DropLoop:
		return "loop"
	case DropNodeDown:
		return "node-down"
	default:
		return fmt.Sprintf("DropReason(%d)", int8(d))
	}
}

// ForwardResult describes one forwarding walk.
type ForwardResult struct {
	Delivered bool
	Reason    DropReason
	// Dest is the node that locally delivered the packet (valid when
	// Delivered).
	Dest topology.NodeID
	// Delay is the accumulated one-way latency in seconds over the hops
	// actually traversed.
	Delay float64
	// Path lists the nodes traversed, starting at the source. Populated
	// only by ForwardTrace; Forward leaves it nil so the hot probing paths
	// stay allocation-free.
	Path []topology.NodeID
}

// Plane is the data plane bound to a BGP network. Create it before any
// routes are originated so no FIB updates are missed.
type Plane struct {
	net  *bgp.Network
	topo *topology.Topology
	sim  *netsim.Sim
	fibs []*iptrie.Trie[fibEntry]
	down []bool

	// static shortest-path delay cache per source node (seconds).
	staticDelay map[topology.NodeID][]float64

	// Metrics are nil until Instrument attaches a registry (nil-safe).
	m struct {
		lookups   *obs.Counter
		updates   *obs.Counter
		forwards  *obs.Counter
		delivered *obs.Counter
		dropped   *obs.Counter
	}
}

// New builds the data plane and subscribes to FIB updates.
func New(net *bgp.Network) *Plane {
	topo := net.Topology()
	p := &Plane{
		net:         net,
		topo:        topo,
		sim:         net.Sim(),
		fibs:        make([]*iptrie.Trie[fibEntry], topo.Len()),
		down:        make([]bool, topo.Len()),
		staticDelay: make(map[topology.NodeID][]float64),
	}
	for i := range p.fibs {
		p.fibs[i] = iptrie.New[fibEntry]()
	}
	net.OnBestChange(p.onBestChange)
	return p
}

// Instrument attaches forwarding metrics to r: FIB rebuild operations
// (best-route changes applied), per-hop FIB lookups, and forwarding walks
// split by outcome. Pure counting; never perturbs forwarding. A nil
// registry detaches.
func (p *Plane) Instrument(r *obs.Registry) {
	p.m.lookups = r.Counter("dataplane_fib_lookups_total")
	p.m.updates = r.Counter("dataplane_fib_updates_total")
	p.m.forwards = r.Counter("dataplane_forwards_total")
	p.m.delivered = r.Counter("dataplane_forwards_delivered_total")
	p.m.dropped = r.Counter("dataplane_forwards_dropped_total")
}

func (p *Plane) onBestChange(node topology.NodeID, prefix netip.Prefix, route *bgp.Route) {
	p.m.updates.Inc()
	fib := p.fibs[node]
	if route == nil {
		fib.Delete(prefix)
		return
	}
	sess := route.LearnedFrom()
	if sess < 0 {
		fib.Insert(prefix, fibEntry{local: true})
		return
	}
	adj := p.topo.Node(node).Adj[sess]
	fib.Insert(prefix, fibEntry{next: adj.To, delay: adj.Delay})
}

// SetDown marks a node as failed (true) or healthy (false). Packets
// reaching a failed node are dropped; its FIB remains intact so the control
// plane model (explicit withdrawals) stays in charge of route removal,
// matching how the paper emulates failures by withdrawing announcements.
func (p *Plane) SetDown(node topology.NodeID, down bool) {
	p.down[node] = down
}

// IsDown reports the failure flag of a node.
func (p *Plane) IsDown(node topology.NodeID) bool { return p.down[node] }

// Forward walks a packet from src toward dst through the current FIBs.
// The walk does not record the traversed path (and therefore does not
// allocate); use ForwardTrace when the hop list matters.
func (p *Plane) Forward(src topology.NodeID, dst netip.Addr) ForwardResult {
	return p.forward(src, dst, nil)
}

// ForwardTrace is Forward with the traversed path recorded in the result.
func (p *Plane) ForwardTrace(src topology.NodeID, dst netip.Addr) ForwardResult {
	return p.forward(src, dst, make([]topology.NodeID, 0, 8))
}

func (p *Plane) forward(src topology.NodeID, dst netip.Addr, path []topology.NodeID) ForwardResult {
	p.m.forwards.Inc()
	record := path != nil
	res := ForwardResult{Path: path}
	cur := src
	for hops := 0; hops <= MaxHops; hops++ {
		if record {
			res.Path = append(res.Path, cur)
		}
		if p.down[cur] {
			res.Reason = DropNodeDown
			p.m.dropped.Inc()
			return res
		}
		p.m.lookups.Inc()
		_, entry, ok := p.fibs[cur].Lookup(dst)
		if !ok {
			res.Reason = DropNoRoute
			p.m.dropped.Inc()
			return res
		}
		if entry.local {
			res.Delivered = true
			res.Dest = cur
			p.m.delivered.Inc()
			return res
		}
		res.Delay += entry.delay
		cur = entry.next
	}
	res.Reason = DropLoop
	p.m.dropped.Inc()
	return res
}

// Catchment returns the site/origin node that currently attracts traffic
// from src toward addr, or ok=false if src cannot reach it.
func (p *Plane) Catchment(src topology.NodeID, addr netip.Addr) (topology.NodeID, bool) {
	res := p.Forward(src, addr)
	if !res.Delivered {
		return 0, false
	}
	return res.Dest, true
}

// StaticDelay returns the one-way shortest-path latency between two nodes
// over link delays, ignoring routing policy. It models the stable forward
// direction (CDN site → probe target), which the paper's failure
// experiments do not perturb.
func (p *Plane) StaticDelay(from, to topology.NodeID) float64 {
	d, ok := p.staticDelay[from]
	if !ok {
		d = p.dijkstra(from)
		p.staticDelay[from] = d
	}
	return d[to]
}

func (p *Plane) dijkstra(src topology.NodeID) []float64 {
	const inf = 1e18
	dist := make([]float64, p.topo.Len())
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	// Simple binary-heap Dijkstra over the undirected latency graph.
	h := &delayHeap{items: []delayItem{{node: src, d: 0}}}
	for h.Len() > 0 {
		it := h.pop()
		if it.d > dist[it.node] {
			continue
		}
		for _, adj := range p.topo.Node(it.node).Adj {
			nd := it.d + adj.Delay
			if nd < dist[adj.To] {
				dist[adj.To] = nd
				h.push(delayItem{node: adj.To, d: nd})
			}
		}
	}
	return dist
}

type delayItem struct {
	node topology.NodeID
	d    float64
}

type delayHeap struct{ items []delayItem }

func (h *delayHeap) Len() int { return len(h.items) }
func (h *delayHeap) push(it delayItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].d <= h.items[i].d {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}
func (h *delayHeap) pop() delayItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].d < h.items[small].d {
			small = l
		}
		if r < len(h.items) && h.items[r].d < h.items[small].d {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// Hop is one step of a Traceroute: the node reached and the cumulative
// round-trip latency to it (assuming symmetric per-hop delays, as
// traceroute does).
type Hop struct {
	Node topology.NodeID
	RTT  float64
}

// Traceroute walks a packet like Forward but reports per-hop cumulative
// RTTs, the analogue of the measured paths Appendix C.1 reasons over.
func (p *Plane) Traceroute(src topology.NodeID, dst netip.Addr) ([]Hop, ForwardResult) {
	res := p.ForwardTrace(src, dst)
	hops := make([]Hop, 0, len(res.Path))
	var acc float64
	for i, node := range res.Path {
		if i > 0 {
			prev := p.topo.Node(res.Path[i-1])
			for _, adj := range prev.Adj {
				if adj.To == node {
					acc += adj.Delay
					break
				}
			}
		}
		hops = append(hops, Hop{Node: node, RTT: 2 * acc})
	}
	return hops, res
}

// FIBRecord is one forwarding entry as reported by DumpFIB.
type FIBRecord struct {
	Prefix netip.Prefix
	Local  bool
	Next   topology.NodeID // meaningful when !Local
}

// DumpFIB returns node's forwarding table sorted by prefix — a stable,
// comparable view of data-plane state.
func (p *Plane) DumpFIB(node topology.NodeID) []FIBRecord {
	var out []FIBRecord
	p.fibs[node].Walk(func(pfx netip.Prefix, e fibEntry) bool {
		out = append(out, FIBRecord{Prefix: pfx, Local: e.local, Next: e.next})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Prefix, out[j].Prefix
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c < 0
		}
		return a.Bits() < b.Bits()
	})
	return out
}

// FIBDigest renders every node's forwarding table as canonical text.
// Equal digests mean the two planes forward every packet identically;
// regression tests compare them across fail→recover round trips.
func (p *Plane) FIBDigest() string {
	var b strings.Builder
	for id := range p.fibs {
		recs := p.DumpFIB(topology.NodeID(id))
		if len(recs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "node %d\n", id)
		for _, r := range recs {
			if r.Local {
				fmt.Fprintf(&b, "  %s local\n", r.Prefix)
			} else {
				fmt.Fprintf(&b, "  %s via %d\n", r.Prefix, r.Next)
			}
		}
	}
	return b.String()
}
