package ctlplane

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bestofboth/internal/core"
	"bestofboth/internal/experiment"
	"bestofboth/internal/topology"
	"bestofboth/internal/traffic"
	"bestofboth/pkg/bestofboth/api"
)

// fixedClock pins the wall clock so responses are byte-identical across
// runs (CreatedAt/ExecutedAt are the only nondeterministic fields).
func fixedClock() time.Time { return time.Unix(1700000000, 0).UTC() }

func testConfig(seed int64, demand bool) experiment.WorldConfig {
	cfg := experiment.WorldConfig{
		Seed: seed,
		Topology: topology.GenConfig{
			NumStub:       120,
			NumEyeball:    60,
			NumUniversity: 16,
			NumRegional:   24,
		},
		CollectorPeers: 25,
	}
	if demand {
		cfg.Demand = traffic.Config{Enabled: true}
	}
	return cfg
}

func newTestServer(t *testing.T, tech core.Technique, demand bool) *Server {
	t.Helper()
	s, err := NewServer(Config{
		World:     testConfig(41, demand),
		Technique: tech,
		Now:       fixedClock,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get performs a request against the server's handler and decodes into out.
func do(t *testing.T, s *Server, method, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

func postChangeSet(t *testing.T, s *Server, path string, muts []api.Mutation) (*api.ChangeSet, *httptest.ResponseRecorder) {
	t.Helper()
	var cs api.ChangeSet
	rec := do(t, s, "POST", path, map[string]any{"mutations": muts}, &cs)
	return &cs, rec
}

// TestQueryEndpoints exercises every read endpoint against a demand world.
func TestQueryEndpoints(t *testing.T) {
	s := newTestServer(t, core.LoadShed{}, true)

	var info api.WorldInfo
	if rec := do(t, s, "GET", "/v1/world", nil, &info); rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/world: %d %s", rec.Code, rec.Body.String())
	}
	if info.APIVersion != api.Version || info.Seed != 41 || !info.DemandEnabled {
		t.Fatalf("world info: %+v", info)
	}
	if info.State.Technique != "load-shed" || len(info.State.Sites) == 0 {
		t.Fatalf("world state: %+v", info.State)
	}
	if info.State.Availability.Reachable == 0 || info.State.Availability.ReachableShare <= 0 {
		t.Fatalf("no reachable targets in a healthy world: %+v", info.State.Availability)
	}

	var digests api.Digests
	do(t, s, "GET", "/v1/digests", nil, &digests)
	if len(digests.RouteStateSHA256) != 64 || len(digests.FIBSHA256) != 64 || len(digests.DNSZoneSHA256) != 64 {
		t.Fatalf("digests not sha256 hex: %+v", digests)
	}
	if digests != info.State.Digests {
		t.Fatal("digests endpoint disagrees with world state")
	}

	var zone api.ZoneDump
	do(t, s, "GET", "/v1/dns", nil, &zone)
	if zone.Origin == "" || len(zone.Records) == 0 {
		t.Fatalf("zone dump: %+v", zone)
	}
	for i := 1; i < len(zone.Records); i++ {
		if zone.Records[i-1].Name > zone.Records[i].Name {
			t.Fatal("zone records not sorted by name")
		}
	}

	var load api.LoadReport
	do(t, s, "GET", "/v1/load", nil, &load)
	if !load.Shedding {
		t.Fatal("load-shed world reports shedding off")
	}
	var offered int64
	for _, site := range load.Sites {
		if site.Load == nil {
			t.Fatalf("site %s has no load row in a demand world", site.Code)
		}
		offered += site.Load.OfferedMicroRPS
	}
	if offered == 0 {
		t.Fatal("no offered load in a demand world")
	}

	var cm api.Catchments
	do(t, s, "GET", "/v1/catchments", nil, &cm)
	total := cm.Unreachable
	for _, sc := range cm.Sites {
		total += sc.Targets
	}
	if total != info.State.Availability.Targets {
		t.Fatalf("catchments cover %d targets, availability says %d", total, info.State.Availability.Targets)
	}

	if rec := do(t, s, "GET", "/v1/changesets/cs-000001", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown changeset: %d", rec.Code)
	}
}

// TestChangeSetDrainLifecycle is the tentpole's core contract: a drain
// ChangeSet dry-run leaves the live world untouched and predicts exactly
// the post-state the execute path then produces — pass receipt, no diffs,
// bit-identical digests.
func TestChangeSetDrainLifecycle(t *testing.T) {
	s := newTestServer(t, core.LoadShed{}, true)
	pre := StateOf(s.world)
	site := pre.Sites[0].Code

	muts := []api.Mutation{{Kind: "drain", Site: site, DrainFor: 30}}

	// Dry run: prediction without side effects.
	cs, rec := postChangeSet(t, s, "/v1/changesets", muts)
	if rec.Code != http.StatusOK {
		t.Fatalf("dry-run: %d %s", rec.Code, rec.Body.String())
	}
	if cs.Status != api.StatusDryRun || cs.Receipt != nil || cs.Actual != nil {
		t.Fatalf("dry-run record: status %q receipt %v", cs.Status, cs.Receipt)
	}
	if got := StateOf(s.world); !statesEqual(got, pre) {
		t.Fatal("dry run mutated the live world")
	}
	var predictedFailed bool
	for _, ss := range cs.Predicted.Sites {
		if ss.Code == site {
			predictedFailed = ss.Failed
		}
	}
	if !predictedFailed {
		t.Fatalf("prediction does not fail the drained site %s", site)
	}
	var sawDelta bool
	for _, sd := range cs.Delta.Sites {
		if sd.Site == site && sd.Transition == "failed" && sd.OfferedMicroRPS < 0 {
			sawDelta = true
		}
	}
	if !sawDelta {
		t.Fatalf("delta does not show %s losing its offered load: %+v", site, cs.Delta.Sites)
	}

	// Execute: actual must re-derive the prediction exactly.
	cs2, rec2 := postChangeSet(t, s, "/v1/changesets?execute=true", muts)
	if rec2.Code != http.StatusOK {
		t.Fatalf("execute: %d %s", rec2.Code, rec2.Body.String())
	}
	if cs2.Status != api.StatusExecuted || cs2.Receipt == nil || !cs2.Receipt.Pass {
		t.Fatalf("execute: status %q receipt %+v", cs2.Status, cs2.Receipt)
	}
	if len(cs2.Receipt.Diffs) != 0 {
		t.Fatalf("pass receipt carries diffs: %+v", cs2.Receipt.Diffs)
	}
	if cs2.Actual == nil || cs2.Actual.Digests != cs2.Predicted.Digests {
		t.Fatal("executed digests are not bit-identical to the prediction")
	}
	if !statesEqual(*cs2.Actual, cs2.Predicted) {
		t.Fatal("actual post-state differs from prediction")
	}

	// Recover and verify again; the records accumulate in order.
	cs3, rec3 := postChangeSet(t, s, "/v1/changesets?execute=true",
		[]api.Mutation{{Kind: "recover", Site: site}})
	if rec3.Code != http.StatusOK || cs3.Status != api.StatusExecuted || !cs3.Receipt.Pass {
		t.Fatalf("recover: %d status %q", rec3.Code, cs3.Status)
	}
	var list struct {
		APIVersion string           `json:"apiVersion"`
		ChangeSets []*api.ChangeSet `json:"changesets"`
	}
	do(t, s, "GET", "/v1/changesets", nil, &list)
	if len(list.ChangeSets) != 3 {
		t.Fatalf("%d recorded changesets, want 3", len(list.ChangeSets))
	}
	if list.ChangeSets[0].ID != "cs-000001" || list.ChangeSets[2].ID != "cs-000003" {
		t.Fatalf("changeset IDs out of order: %s, %s", list.ChangeSets[0].ID, list.ChangeSets[2].ID)
	}
	var one api.ChangeSet
	if rec := do(t, s, "GET", "/v1/changesets/cs-000002", nil, &one); rec.Code != http.StatusOK || one.ID != "cs-000002" {
		t.Fatalf("GET by id: %d %s", rec.Code, one.ID)
	}
}

// statesEqual compares WorldStates through the receipt differ, so tests
// and verification agree on what "equal" means.
func statesEqual(a, b api.WorldState) bool {
	return len(diffStates(a, b)) == 0
}

// TestChangeSetCompound executes a multi-mutation ChangeSet — technique
// switch, announcement policy, demand scale, link fault — and requires a
// pass receipt for each, plus prediction fidelity across the accumulated
// demand-scale history (the replay path).
func TestChangeSetCompound(t *testing.T) {
	s := newTestServer(t, core.Anycast{}, true)

	// Demand scale first: this exercises the dry-run replay history on
	// every subsequent ChangeSet.
	cs, rec := postChangeSet(t, s, "/v1/changesets?execute=true",
		[]api.Mutation{{Kind: "demand-scale", Fraction: 1.5}})
	if rec.Code != http.StatusOK || !cs.Receipt.Pass {
		t.Fatalf("demand-scale: %d receipt %+v", rec.Code, cs.Receipt)
	}

	// Switch to a per-site-prefix technique, then repolicy a site and drop
	// a link, all in one ordered batch.
	site := StateOf(s.world).Sites[1].Code
	cs2, rec2 := postChangeSet(t, s, "/v1/changesets?execute=true", []api.Mutation{
		{Kind: "switch-technique", Technique: "reactive-anycast"},
		{Kind: "announce-policy", Site: site, Count: 3},
	})
	if rec2.Code != http.StatusOK {
		t.Fatalf("compound: %d %s", rec2.Code, rec2.Body.String())
	}
	if cs2.Status != api.StatusExecuted || !cs2.Receipt.Pass {
		t.Fatalf("compound: status %q diffs %+v", cs2.Status, cs2.Receipt.Diffs)
	}
	if cs2.Actual.Technique != "reactive-anycast" {
		t.Fatalf("technique after switch: %q", cs2.Actual.Technique)
	}

	// A third ChangeSet after both a demand scale and a switch still
	// predicts exactly (fail + detection-delay reaction path).
	cs3, rec3 := postChangeSet(t, s, "/v1/changesets?execute=true",
		[]api.Mutation{{Kind: "fail", Site: site}})
	if rec3.Code != http.StatusOK || !cs3.Receipt.Pass {
		t.Fatalf("fail after history: %d diffs %+v", rec3.Code, cs3.Receipt.Diffs)
	}
}

// TestChangeSetRejected covers the validation path: bad mutations are
// rejected with 422, recorded as rejected, and leave the live world
// untouched.
func TestChangeSetRejected(t *testing.T) {
	s := newTestServer(t, core.Anycast{}, false)
	pre := StateOf(s.world)

	cases := [][]api.Mutation{
		{{Kind: "drain"}},                              // missing site
		{{Kind: "warp-core-breach", Site: "atl"}},      // unknown kind
		{{Kind: "switch-technique", Technique: "nah"}}, // unknown technique
		{{Kind: "recover", Site: "atl"}},               // site not failed
		{{Kind: "demand-scale", Fraction: 2}},          // no demand model
	}
	for i, muts := range cases {
		cs, rec := postChangeSet(t, s, "/v1/changesets?execute=true", muts)
		if rec.Code != http.StatusUnprocessableEntity {
			t.Fatalf("case %d: code %d, want 422 (%s)", i, rec.Code, rec.Body.String())
		}
		_ = cs
	}
	if got := StateOf(s.world); !statesEqual(got, pre) {
		t.Fatal("rejected changesets mutated the live world")
	}
	var list struct {
		ChangeSets []*api.ChangeSet `json:"changesets"`
	}
	do(t, s, "GET", "/v1/changesets", nil, &list)
	if len(list.ChangeSets) != len(cases) {
		t.Fatalf("%d records, want %d", len(list.ChangeSets), len(cases))
	}
	for _, cs := range list.ChangeSets {
		if cs.Status != api.StatusRejected {
			t.Fatalf("changeset %s status %q, want rejected", cs.ID, cs.Status)
		}
	}

	if _, rec := postChangeSet(t, s, "/v1/changesets", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty mutation list: %d, want 400", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/changesets?sabotage=true", map[string]any{
		"mutations": []api.Mutation{{Kind: "crash", Site: "atl"}},
	}, nil); rec.Code != http.StatusForbidden {
		t.Fatalf("sabotage without hook: %d, want 403", rec.Code)
	}
}

// TestDryRunDeterminism: the same dry-run against two independently built
// servers produces byte-identical response bodies (the golden-file
// property the API's determinism contract promises).
func TestDryRunDeterminism(t *testing.T) {
	muts := []api.Mutation{
		{Kind: "drain", Site: "atl", DrainFor: 30},
		{Kind: "demand-scale", Fraction: 1.25},
	}
	var bodies []string
	for i := 0; i < 2; i++ {
		s := newTestServer(t, core.LoadShed{}, true)
		_, rec := postChangeSet(t, s, "/v1/changesets", muts)
		if rec.Code != http.StatusOK {
			t.Fatalf("dry-run %d: %d %s", i, rec.Code, rec.Body.String())
		}
		bodies = append(bodies, rec.Body.String())
	}
	if bodies[0] != bodies[1] {
		t.Fatal("dry-run response bodies differ between identical servers")
	}
	if !strings.Contains(bodies[0], `"apiVersion": "v1"`) {
		t.Fatal("response carries no apiVersion")
	}
}
