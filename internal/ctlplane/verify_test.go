package ctlplane

import (
	"net/http"
	"testing"

	"bestofboth/internal/core"
	"bestofboth/internal/experiment"
	"bestofboth/pkg/bestofboth/api"
)

// TestSabotagedExecutionFailsReceipt is the verify-by-rediff satellite: an
// execution whose effect diverges from the dry-run prediction (injected
// via the sabotage hook — here a silent data-plane failure of a healthy
// site the controller is never told about) must yield a fail receipt that
// names the exact diverging fields.
func TestSabotagedExecutionFailsReceipt(t *testing.T) {
	var sabotagedSite string
	s, err := NewServer(Config{
		World:     testConfig(41, true),
		Technique: core.LoadShed{},
		Now:       fixedClock,
		Sabotage: func(w *experiment.World) {
			// Silently stop the first healthy non-target site's forwarding:
			// routing and DNS stay put, so only catchment-derived fields
			// (availability, per-site load) diverge.
			for _, site := range w.CDN.Sites() {
				if !w.CDN.Failed(site.Code) {
					sabotagedSite = site.Code
					w.Plane.SetDown(site.Node, true)
					w.CDN.RefreshLoad()
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	site := StateOf(s.World()).Sites[1].Code
	muts := []api.Mutation{{Kind: "drain", Site: site, DrainFor: 30}}

	// Un-sabotaged execute on a twin server passes — the control.
	twin, err := NewServer(Config{World: testConfig(41, true), Technique: core.LoadShed{}, Now: fixedClock})
	if err != nil {
		t.Fatal(err)
	}
	csOK, recOK := postChangeSet(t, twin, "/v1/changesets?execute=true", muts)
	if recOK.Code != http.StatusOK || !csOK.Receipt.Pass {
		t.Fatalf("control execute should pass: %d %+v", recOK.Code, csOK.Receipt)
	}

	cs, rec := postChangeSet(t, s, "/v1/changesets?execute=true&sabotage=true", muts)
	if rec.Code != http.StatusOK {
		t.Fatalf("sabotaged execute: %d %s", rec.Code, rec.Body.String())
	}
	if cs.Status != api.StatusDiverged {
		t.Fatalf("status %q, want %q", cs.Status, api.StatusDiverged)
	}
	if cs.Receipt == nil || cs.Receipt.Pass {
		t.Fatalf("sabotaged execution produced a pass receipt: %+v", cs.Receipt)
	}
	if len(cs.Receipt.Diffs) == 0 {
		t.Fatal("fail receipt names no diverging fields")
	}
	if sabotagedSite == "" {
		t.Fatal("sabotage hook never ran")
	}

	// The diffs must name the fields the sabotage actually moved: the
	// sabotaged site's load row and the availability rollup — and every
	// named field must genuinely differ between prediction and actual.
	fields := map[string]bool{}
	for _, d := range cs.Receipt.Diffs {
		if d.Predicted == d.Actual {
			t.Fatalf("diff %q reports equal values %q", d.Field, d.Predicted)
		}
		fields[d.Field] = true
	}
	wantPrefixes := []string{
		"sites[" + sabotagedSite + "].load.offeredMicroRPS",
		"availability.reachable",
	}
	for _, want := range wantPrefixes {
		if !fields[want] {
			t.Fatalf("fail receipt missing field %q; got %v", want, keys(fields))
		}
	}
	// Routing was untouched by the sabotage: control-plane digests must
	// NOT appear among the diffs (the receipt is precise, not noisy).
	for f := range fields {
		if f == "digests.routeStateSHA256" || f == "digests.dnsZoneSHA256" {
			t.Fatalf("receipt names un-diverged field %q", f)
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
