package ctlplane

import (
	"reflect"
	"testing"

	"bestofboth/pkg/bestofboth/api"
)

// leafCount counts the comparable leaf fields of t, descending structs,
// pointers, and slice elements (counted once — diffStates walks sites
// pairwise).
func leafCount(t *testing.T, typ reflect.Type, owner string) int {
	t.Helper()
	switch typ.Kind() {
	case reflect.Pointer, reflect.Slice:
		return leafCount(t, typ.Elem(), owner)
	case reflect.Struct:
		n := 0
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if _, skip := diffExempt[typ.Name()+"."+f.Name]; skip {
				continue
			}
			n += leafCount(t, f.Type, typ.Name()+"."+f.Name)
		}
		return n
	case reflect.String, reflect.Bool, reflect.Int, reflect.Int64, reflect.Float64:
		return 1
	default:
		t.Fatalf("unhandled kind %s at %s — extend leafCount and diffStates", typ.Kind(), owner)
		return 0
	}
}

// TestDiffStatesCoversEverySchemaField is the compile-time-adjacent twin of
// the snapshotfields lint for the verification path: when two WorldStates
// differ in every non-exempt leaf, diffStates must report exactly one diff
// per leaf. Adding a field to the api schema without extending diffStates
// (or exempting it here, with a reason) fails this test.
func TestDiffStatesCoversEverySchemaField(t *testing.T) {
	pred := api.WorldState{
		VirtualTime: 1,
		Technique:   "anycast",
		Sites: []api.SiteState{{
			Code: "atl", Node: "n1", Prefix: "p1", Addr: "a1",
			Failed: false, Announcements: 1,
			Load: &api.SiteLoad{CapacityMicroRPS: 1, OfferedMicroRPS: 2, ServedMicroRPS: 3, ShedMicroRPS: 4},
		}},
		Availability: api.Availability{
			Targets: 1, Reachable: 1, ReachableShare: 1,
			DemandTotalMicroRPS: 1, DemandServedMicroRPS: 1, DemandShedMicroRPS: 1, DemandUnservedMicroRPS: 1,
		},
		Digests: api.Digests{RouteStateSHA256: "r1", FIBSHA256: "f1", DNSZoneSHA256: "z1"},
	}
	act := api.WorldState{
		VirtualTime: 2,
		Technique:   "unicast",
		Sites: []api.SiteState{{
			Code: "bos", Node: "n2", Prefix: "p2", Addr: "a2",
			Failed: true, Announcements: 2,
			Load: &api.SiteLoad{CapacityMicroRPS: 5, OfferedMicroRPS: 6, ServedMicroRPS: 7, ShedMicroRPS: 8},
		}},
		Availability: api.Availability{
			Targets: 2, Reachable: 0, ReachableShare: 0,
			DemandTotalMicroRPS: 2, DemandServedMicroRPS: 2, DemandShedMicroRPS: 2, DemandUnservedMicroRPS: 2,
		},
		Digests: api.Digests{RouteStateSHA256: "r2", FIBSHA256: "f2", DNSZoneSHA256: "z2"},
	}

	want := leafCount(t, reflect.TypeOf(api.WorldState{}), "WorldState")
	diffs := diffStates(pred, act)
	if len(diffs) != want {
		seen := map[string]bool{}
		for _, d := range diffs {
			seen[d.Field] = true
		}
		t.Fatalf("diffStates reported %d diffs for fully-divergent states; schema has %d comparable leaves.\n"+
			"Reported: %v\nEither diffStates misses a schema field or leafCount/diffExempt is stale.",
			len(diffs), want, seen)
	}

	// Identical states must produce the empty diff — the pass receipt.
	if extra := diffStates(pred, pred); len(extra) != 0 {
		t.Fatalf("identical states diffed: %v", extra)
	}
}
