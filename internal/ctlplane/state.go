// Package ctlplane implements the simulator's long-running control plane:
// an HTTP/JSON server that owns one live deployed world and exposes the
// versioned public API (pkg/bestofboth/api) to query its state and to
// mutate it exclusively through verified ChangeSets.
//
// A ChangeSet is an ordered list of intended mutations in the scenario
// event vocabulary. It is dry-run by default: the mutations are applied to
// a copy-on-write restore of the live world's snapshot and converged
// there, and the response carries the predicted post-state and deltas
// while the live world is untouched. Executing (?execute=true) applies the
// same mutations to the live world, re-derives the actual post-state, and
// attaches a verification receipt diffing predicted against actual field
// by field. Because the simulator is deterministic and the dry-run world
// is bit-identical to the live one, the receipt passes unless the
// execution path diverged from the prediction path — which is exactly the
// condition an operator must not trust.
package ctlplane

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"bestofboth/internal/dns"
	"bestofboth/internal/experiment"
	"bestofboth/pkg/bestofboth/api"
)

// sha256hex fingerprints a canonical-text digest for the wire.
func sha256hex(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// StateOf derives the deterministic observable state of a deployed world:
// per-site lifecycle/announcement/load state, availability, and the
// routing/forwarding/DNS digests. Two bit-identical worlds yield equal
// WorldStates — the property ChangeSet verification rests on.
func StateOf(w *experiment.World) api.WorldState {
	cdn := w.CDN
	st := api.WorldState{
		VirtualTime: w.Sim.Now(),
		Technique:   cdn.Technique().Name(),
	}
	acct := cdn.Load()
	acctIndex := map[string]int{}
	if acct != nil {
		for i := 0; i < acct.NumSites(); i++ {
			acctIndex[acct.SiteCode(i)] = i
		}
	}
	for _, s := range cdn.Sites() {
		ss := api.SiteState{
			Code:          s.Code,
			Node:          w.Topo.Node(s.Node).Name,
			Prefix:        s.Prefix.String(),
			Addr:          s.Addr.String(),
			Failed:        cdn.Failed(s.Code),
			Announcements: cdn.AnnouncementsAt(s.Code),
		}
		if i, ok := acctIndex[s.Code]; ok {
			ss.Load = &api.SiteLoad{
				CapacityMicroRPS: acct.Capacity(i),
				OfferedMicroRPS:  acct.Offered(i),
				ServedMicroRPS:   acct.Served(i),
				ShedMicroRPS:     acct.Shed(i),
			}
		}
		st.Sites = append(st.Sites, ss)
	}
	st.Availability = availabilityOf(w)
	st.Digests = api.Digests{
		RouteStateSHA256: sha256hex(w.Net.RouteStateDigest()),
		FIBSHA256:        sha256hex(w.Plane.FIBDigest()),
		DNSZoneSHA256:    zoneHash(w.CDN.Authoritative()),
	}
	return st
}

// availabilityOf measures reachability over the full client-target
// population: a target is reachable iff its demand address currently lands
// at a live site. With a demand model attached, demand-weighted totals
// ride along.
func availabilityOf(w *experiment.World) api.Availability {
	targets := w.Targets()
	av := api.Availability{Targets: len(targets)}
	for _, n := range targets {
		if w.CDN.DemandSiteOf(n.ID) != nil {
			av.Reachable++
		}
	}
	if av.Targets == 0 {
		av.ReachableShare = 1
	} else {
		av.ReachableShare = float64(av.Reachable) / float64(av.Targets)
	}
	if acct := w.CDN.Load(); acct != nil {
		_, srv, shd := acct.Totals()
		av.DemandTotalMicroRPS = w.CDN.Demand().TotalRate()
		av.DemandServedMicroRPS = srv
		av.DemandShedMicroRPS = shd
		av.DemandUnservedMicroRPS = acct.Unserved()
	}
	return av
}

// zoneHash fingerprints the authoritative zone: serial plus every record
// set in DumpZone's canonical order.
func zoneHash(auth *dns.Authoritative) string {
	h := sha256.New()
	fmt.Fprintf(h, "origin %s serial %d\n", auth.Origin(), auth.Serial())
	for _, r := range auth.DumpZone() {
		fmt.Fprintf(h, "%s %s %d", r.Name, r.Type, r.TTL)
		for _, a := range r.Addrs {
			fmt.Fprintf(h, " %s", a)
		}
		fmt.Fprintln(h)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// zoneDumpOf converts the zone into its wire form.
func zoneDumpOf(auth *dns.Authoritative) api.ZoneDump {
	out := api.ZoneDump{
		APIVersion: api.Version,
		Origin:     auth.Origin(),
		Serial:     auth.Serial(),
	}
	for _, r := range auth.DumpZone() {
		rec := api.DNSRecord{Name: r.Name, Type: r.Type, TTL: r.TTL}
		for _, a := range r.Addrs {
			rec.Addrs = append(rec.Addrs, a.String())
		}
		out.Records = append(out.Records, rec)
	}
	return out
}

// catchmentsOf breaks the client-target population down by the site whose
// catchment currently holds each target's demand address.
func catchmentsOf(w *experiment.World) api.Catchments {
	out := api.Catchments{APIVersion: api.Version, Addr: "demand"}
	m := w.CDN.Demand()
	perSite := map[string]*api.SiteCatchment{}
	for _, s := range w.CDN.Sites() {
		sc := &api.SiteCatchment{Site: s.Code}
		perSite[s.Code] = sc
	}
	for _, n := range w.Targets() {
		var rate int64
		if m != nil {
			rate = m.Rate(n.ID)
		}
		site := w.CDN.DemandSiteOf(n.ID)
		if site == nil {
			out.Unreachable++
			out.UnreachableRPS += rate
			continue
		}
		sc := perSite[site.Code]
		sc.Targets++
		sc.DemandMicroRPS += rate
	}
	for _, s := range w.CDN.Sites() {
		out.Sites = append(out.Sites, *perSite[s.Code])
	}
	return out
}

// diffExempt lists the api.WorldState leaves diffStates deliberately does
// not compare, with the reason. Everything else must be diffed: a field
// added to the schema but not to diffStates silently weakens every
// verification receipt. TestDiffStatesCoversEverySchemaField enforces the
// contract at test time; cdnlint/wirestable enforces it at lint time.
var diffExempt = map[string]string{
	"SiteState.Node":   "immutable wiring, pinned by Code",
	"SiteState.Prefix": "immutable addressing plan, pinned by Code",
	"SiteState.Addr":   "immutable addressing plan, pinned by Code",
}

// diffStates re-diffs a predicted post-state against the actual one,
// producing the per-field divergence list of a verification receipt. Field
// paths address the WorldState JSON schema ("sites[atl].load.shedMicroRPS").
func diffStates(pred, act api.WorldState) []api.FieldDiff {
	var diffs []api.FieldDiff
	add := func(field string, p, a any) {
		ps, as := fmt.Sprintf("%v", p), fmt.Sprintf("%v", a)
		if ps != as {
			diffs = append(diffs, api.FieldDiff{Field: field, Predicted: ps, Actual: as})
		}
	}
	add("virtualTime", pred.VirtualTime, act.VirtualTime)
	add("technique", pred.Technique, act.Technique)
	add("availability.targets", pred.Availability.Targets, act.Availability.Targets)
	add("availability.reachable", pred.Availability.Reachable, act.Availability.Reachable)
	add("availability.reachableShare", pred.Availability.ReachableShare, act.Availability.ReachableShare)
	add("availability.demandTotalMicroRPS", pred.Availability.DemandTotalMicroRPS, act.Availability.DemandTotalMicroRPS)
	add("availability.demandServedMicroRPS", pred.Availability.DemandServedMicroRPS, act.Availability.DemandServedMicroRPS)
	add("availability.demandShedMicroRPS", pred.Availability.DemandShedMicroRPS, act.Availability.DemandShedMicroRPS)
	add("availability.demandUnservedMicroRPS", pred.Availability.DemandUnservedMicroRPS, act.Availability.DemandUnservedMicroRPS)
	add("digests.routeStateSHA256", pred.Digests.RouteStateSHA256, act.Digests.RouteStateSHA256)
	add("digests.fibSHA256", pred.Digests.FIBSHA256, act.Digests.FIBSHA256)
	add("digests.dnsZoneSHA256", pred.Digests.DNSZoneSHA256, act.Digests.DNSZoneSHA256)
	if len(pred.Sites) != len(act.Sites) {
		add("sites.length", len(pred.Sites), len(act.Sites))
		return diffs
	}
	for i := range pred.Sites {
		p, a := pred.Sites[i], act.Sites[i]
		prefix := fmt.Sprintf("sites[%s].", p.Code)
		add(prefix+"code", p.Code, a.Code)
		add(prefix+"failed", p.Failed, a.Failed)
		add(prefix+"announcements", p.Announcements, a.Announcements)
		switch {
		case p.Load == nil && a.Load == nil:
		case p.Load == nil || a.Load == nil:
			add(prefix+"load", p.Load != nil, a.Load != nil)
		default:
			add(prefix+"load.capacityMicroRPS", p.Load.CapacityMicroRPS, a.Load.CapacityMicroRPS)
			add(prefix+"load.offeredMicroRPS", p.Load.OfferedMicroRPS, a.Load.OfferedMicroRPS)
			add(prefix+"load.servedMicroRPS", p.Load.ServedMicroRPS, a.Load.ServedMicroRPS)
			add(prefix+"load.shedMicroRPS", p.Load.ShedMicroRPS, a.Load.ShedMicroRPS)
		}
	}
	return diffs
}

// deltaOf summarizes post − pre: the availability movement and per-site
// load/lifecycle changes a dry run reports as the predicted effect.
func deltaOf(pre, post api.WorldState) api.Delta {
	d := api.Delta{
		ReachableShare: post.Availability.ReachableShare - pre.Availability.ReachableShare,
		ServedMicroRPS: post.Availability.DemandServedMicroRPS - pre.Availability.DemandServedMicroRPS,
		ShedMicroRPS:   post.Availability.DemandShedMicroRPS - pre.Availability.DemandShedMicroRPS,
	}
	if len(pre.Sites) != len(post.Sites) {
		return d
	}
	for i := range pre.Sites {
		p, a := pre.Sites[i], post.Sites[i]
		sd := api.SiteDelta{Site: p.Code}
		switch {
		case !p.Failed && a.Failed:
			sd.Transition = "failed"
		case p.Failed && !a.Failed:
			sd.Transition = "recovered"
		}
		if p.Load != nil && a.Load != nil {
			sd.OfferedMicroRPS = a.Load.OfferedMicroRPS - p.Load.OfferedMicroRPS
			sd.ServedMicroRPS = a.Load.ServedMicroRPS - p.Load.ServedMicroRPS
			sd.ShedMicroRPS = a.Load.ShedMicroRPS - p.Load.ShedMicroRPS
		}
		if sd.Transition != "" || sd.OfferedMicroRPS != 0 || sd.ServedMicroRPS != 0 || sd.ShedMicroRPS != 0 {
			d.Sites = append(d.Sites, sd)
		}
	}
	return d
}
