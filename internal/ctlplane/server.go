package ctlplane

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"bestofboth/internal/core"
	"bestofboth/internal/experiment"
	"bestofboth/internal/obs"
	"bestofboth/internal/scenario"
	"bestofboth/internal/topology"
	"bestofboth/pkg/bestofboth/api"
)

// DefaultConvergeBound is the virtual-seconds convergence deadline applied
// after every mutation batch — the harness analogue of the paper's "wait
// one hour to ensure convergence".
const DefaultConvergeBound = 3600

// Config parameterizes a Server.
type Config struct {
	// World is the world configuration the daemon owns.
	World experiment.WorldConfig
	// Technique is deployed at startup.
	Technique core.Technique
	// ConvergeBound overrides DefaultConvergeBound (virtual seconds).
	ConvergeBound float64
	// Obs, when non-nil, instruments the world and backs GET /metrics.
	Obs *obs.Registry
	// Now overrides the wall clock stamped into ChangeSet.CreatedAt /
	// ExecutedAt. Nil means time.Now; tests pin it for byte-identical
	// responses.
	Now func() time.Time
	// Sabotage, when non-nil, enables the ?sabotage=true query parameter
	// on execution: the hook runs against the live world after the
	// mutations applied but before the actual post-state is derived,
	// injecting the prediction/execution divergence the verification
	// receipt exists to catch. Test-only; never set in production daemons
	// without an explicit opt-in flag.
	Sabotage func(w *experiment.World)
}

// Server owns one live deployed world and serves the versioned control
// plane over it. All handlers serialize on one mutex: the simulator is
// single-threaded state, and the control plane's semantics are a strict
// sequence of observations and ChangeSets.
type Server struct {
	mu    sync.Mutex
	world *experiment.World
	cfg   Config
	bound float64
	now   func() time.Time

	nextID int
	sets   []*api.ChangeSet
	byID   map[string]*api.ChangeSet

	// demandScaleNums is the replay history of executed demand-scale
	// mutations, in thousandths. RestoreWorld rebuilds the demand model
	// from config, so every dry-run scratch world must re-apply these (in
	// order, in the same integer arithmetic) to match the live world.
	demandScaleNums []int64
}

// NewServer builds the world, deploys the technique, converges, and
// returns a serving control plane.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Technique == nil {
		return nil, fmt.Errorf("ctlplane: no technique configured")
	}
	bound := cfg.ConvergeBound
	if bound <= 0 {
		bound = DefaultConvergeBound
	}
	wc := cfg.World
	wc.Obs = cfg.Obs
	w, err := experiment.NewConvergedWorld(wc, cfg.Technique, bound)
	if err != nil {
		return nil, fmt.Errorf("ctlplane: building world: %w", err)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Server{
		world: w,
		cfg:   cfg,
		bound: bound,
		now:   now,
		byID:  map[string]*api.ChangeSet{},
	}, nil
}

// World exposes the live world (for tests that inspect or sabotage it).
func (s *Server) World() *experiment.World { return s.world }

// Handler returns the HTTP handler serving the v1 API:
//
//	GET  /v1/world            world identity + full state
//	GET  /v1/state            world state alone
//	GET  /v1/digests          routing/forwarding/DNS fingerprints
//	GET  /v1/dns              authoritative zone dump
//	GET  /v1/load             per-site load + availability
//	GET  /v1/catchments       per-site client/demand catchments
//	GET  /v1/changesets       all recorded ChangeSets
//	POST /v1/changesets       dry-run (default) or ?execute=true
//	GET  /v1/changesets/{id}  one ChangeSet record
//	GET  /metrics             Prometheus exposition
//	GET  /healthz             liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/world", s.locked(s.handleWorld))
	mux.HandleFunc("GET /v1/state", s.locked(s.handleState))
	mux.HandleFunc("GET /v1/digests", s.locked(s.handleDigests))
	mux.HandleFunc("GET /v1/dns", s.locked(s.handleDNS))
	mux.HandleFunc("GET /v1/load", s.locked(s.handleLoad))
	mux.HandleFunc("GET /v1/catchments", s.locked(s.handleCatchments))
	mux.HandleFunc("GET /v1/changesets", s.locked(s.handleChangeSets))
	mux.HandleFunc("GET /v1/changesets/{id}", s.locked(s.handleChangeSet))
	mux.HandleFunc("POST /v1/changesets", s.locked(s.handlePostChangeSet))
	mux.HandleFunc("GET /metrics", s.locked(s.handleMetrics))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// locked serializes a handler on the server mutex.
func (s *Server) locked(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		h(w, r)
	}
}

// writeJSON emits a response document as indented JSON. Every document is
// deterministic given the world state (struct order, sorted slices).
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, fmt.Sprintf("encoding response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// errorBody is the uniform error document.
type errorBody struct {
	APIVersion string `json:"apiVersion"`
	Error      string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{APIVersion: api.Version, Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleWorld(w http.ResponseWriter, _ *http.Request) {
	cfg := s.world.Cfg
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	writeJSON(w, http.StatusOK, api.WorldInfo{
		APIVersion:    api.Version,
		Seed:          cfg.Seed,
		ConfigDigest:  cfg.Digest(),
		Shards:        shards,
		Partition:     cfg.Partition,
		DemandEnabled: cfg.Demand.Enabled,
		State:         StateOf(s.world),
	})
}

func (s *Server) handleState(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StateOf(s.world))
}

func (s *Server) handleDigests(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StateOf(s.world).Digests)
}

func (s *Server) handleDNS(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, zoneDumpOf(s.world.CDN.Authoritative()))
}

func (s *Server) handleLoad(w http.ResponseWriter, _ *http.Request) {
	st := StateOf(s.world)
	rep := api.LoadReport{
		APIVersion:   api.Version,
		Sites:        st.Sites,
		Availability: st.Availability,
	}
	if acct := s.world.CDN.Load(); acct != nil {
		rep.Shedding = acct.Shedding()
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleCatchments(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, catchmentsOf(s.world))
}

func (s *Server) handleChangeSets(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		APIVersion string           `json:"apiVersion"`
		ChangeSets []*api.ChangeSet `json:"changesets"`
	}{APIVersion: api.Version, ChangeSets: s.sets}
	if out.ChangeSets == nil {
		out.ChangeSets = []*api.ChangeSet{}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleChangeSet(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.byID[r.PathValue("id")]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown changeset %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, cs)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Obs == nil {
		writeError(w, http.StatusNotFound, "metrics not enabled (no registry attached)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Obs.WritePrometheus(w)
}

// changeSetRequest is the POST /v1/changesets body.
type changeSetRequest struct {
	Mutations []api.Mutation `json:"mutations"`
}

// eventsOf converts wire mutations into scenario events, the shared
// mutation vocabulary (At is forced to zero: ChangeSets act now).
func eventsOf(muts []api.Mutation) []scenario.Event {
	out := make([]scenario.Event, len(muts))
	for i, m := range muts {
		out[i] = scenario.Event{
			Kind:      scenario.Kind(m.Kind),
			Site:      m.Site,
			A:         m.A,
			B:         m.B,
			Fraction:  m.Fraction,
			Radius:    m.Radius,
			Period:    m.Period,
			Count:     m.Count,
			DrainFor:  m.DrainFor,
			Technique: m.Technique,
		}
	}
	return out
}

// envOf adapts a world to the scenario engine's environment.
func envOf(w *experiment.World) *scenario.Env {
	return &scenario.Env{Sim: w.Sim, Topo: w.Topo, Net: w.Net, Plane: w.Plane, CDN: w.CDN}
}

// settle converges the world after a mutation batch and runs the active
// technique's rebalance loop to its fixed point, then re-folds load — the
// same post-mutation trajectory on the dry-run scratch world and the live
// one, which is what makes predictions bind.
func (s *Server) settle(w *experiment.World) error {
	w.Converge(s.bound)
	if w.CDN.Demand() != nil {
		if reb, ok := w.CDN.Technique().(core.Rebalancer); ok {
			for i := 0; i < core.MaxRebalanceRounds; i++ {
				changed, err := reb.Rebalance(w.CDN)
				if err != nil {
					return fmt.Errorf("rebalancing: %w", err)
				}
				if !changed {
					break
				}
				w.Converge(s.bound)
			}
		}
		w.CDN.RefreshLoad()
	}
	return nil
}

// replayDemandScales re-applies the executed demand-scale history onto a
// freshly restored scratch world, whose demand model NewWorld rebuilt from
// config. Same integer arithmetic, same order, same target iteration as
// the scenario engine — the replay is exact, not approximate.
func (s *Server) replayDemandScales(w *experiment.World) {
	m := w.CDN.Demand()
	if m == nil || len(s.demandScaleNums) == 0 {
		return
	}
	var ids []topology.NodeID
	m.Each(func(id topology.NodeID, _ int64, _ int) { ids = append(ids, id) })
	for _, num := range s.demandScaleNums {
		for _, id := range ids {
			m.ScaleRate(id, num, 1000)
		}
	}
	w.CDN.RefreshLoad()
}

// handlePostChangeSet is the mutation entry point: dry-run by default,
// execute-and-verify with ?execute=true.
func (s *Server) handlePostChangeSet(w http.ResponseWriter, r *http.Request) {
	var req changeSetRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Mutations) == 0 {
		writeError(w, http.StatusBadRequest, "changeset has no mutations")
		return
	}
	execute := r.URL.Query().Get("execute") == "true"
	sabotage := r.URL.Query().Get("sabotage") == "true"
	if sabotage && s.cfg.Sabotage == nil {
		writeError(w, http.StatusForbidden, "sabotage requested but the daemon has no sabotage hook (start with -test-sabotage)")
		return
	}

	s.nextID++
	cs := &api.ChangeSet{
		APIVersion: api.Version,
		ID:         fmt.Sprintf("cs-%06d", s.nextID),
		Status:     api.StatusDryRun,
		//lint:ignore cdnlint/detflow CreatedAt is a documented operational timestamp, excluded from digests and diffs
		CreatedAt: s.now().UTC().Format(time.RFC3339),
		Mutations: req.Mutations,
		Pre:       StateOf(s.world),
	}
	events := eventsOf(req.Mutations)

	// Dry run: apply to a copy-on-write restore of the live world.
	predicted, err := s.dryRun(events)
	if err != nil {
		cs.Status = api.StatusRejected
		s.record(cs)
		writeError(w, http.StatusUnprocessableEntity, "changeset %s rejected: %v", cs.ID, err)
		return
	}
	cs.Predicted = predicted
	cs.Delta = deltaOf(cs.Pre, cs.Predicted)
	if !execute {
		s.record(cs)
		writeJSON(w, http.StatusOK, cs)
		return
	}

	// Execute: the same mutations against the live world, then verify by
	// re-diffing the actual post-state against the prediction.
	if err := scenario.ApplyEvents(envOf(s.world), events); err != nil {
		// The dry run accepted this batch, so a live failure means the two
		// worlds were not equivalent — surface loudly, keep the record.
		cs.Status = api.StatusRejected
		s.record(cs)
		writeError(w, http.StatusInternalServerError, "changeset %s: live execution diverged from accepted dry-run: %v", cs.ID, err)
		return
	}
	if err := s.settle(s.world); err != nil {
		cs.Status = api.StatusRejected
		s.record(cs)
		writeError(w, http.StatusInternalServerError, "changeset %s: settling live world: %v", cs.ID, err)
		return
	}
	for _, e := range events {
		if e.Kind == scenario.KindDemandScale {
			s.demandScaleNums = append(s.demandScaleNums, scaleNum(e.Fraction))
		}
	}
	if sabotage {
		s.cfg.Sabotage(s.world)
	}
	actual := StateOf(s.world)
	cs.Actual = &actual
	//lint:ignore cdnlint/detflow ExecutedAt is a documented operational timestamp, excluded from digests and diffs
	cs.ExecutedAt = s.now().UTC().Format(time.RFC3339)
	diffs := diffStates(cs.Predicted, actual)
	cs.Receipt = &api.Receipt{Pass: len(diffs) == 0, Diffs: diffs}
	if cs.Receipt.Pass {
		cs.Status = api.StatusExecuted
	} else {
		cs.Status = api.StatusDiverged
	}
	s.record(cs)
	writeJSON(w, http.StatusOK, cs)
}

// dryRun applies events to a scratch restore of the live world and returns
// the predicted post-state. The live world is never touched.
func (s *Server) dryRun(events []scenario.Event) (api.WorldState, error) {
	snap, err := s.world.Snapshot()
	if err != nil {
		return api.WorldState{}, fmt.Errorf("snapshotting live world: %w", err)
	}
	scratch, err := experiment.RestoreWorld(snap)
	if err != nil {
		return api.WorldState{}, fmt.Errorf("restoring scratch world: %w", err)
	}
	s.replayDemandScales(scratch)
	if err := scenario.ApplyEvents(envOf(scratch), events); err != nil {
		return api.WorldState{}, err
	}
	if err := s.settle(scratch); err != nil {
		return api.WorldState{}, err
	}
	return StateOf(scratch), nil
}

// scaleNum is the thousandths factor of a demand-scale fraction, matching
// the scenario engine's arithmetic exactly.
func scaleNum(fraction float64) int64 {
	return int64(math.Round(fraction * 1000))
}

func (s *Server) record(cs *api.ChangeSet) {
	s.sets = append(s.sets, cs)
	s.byID[cs.ID] = cs
}
