package topology

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// The serialization format extends CAIDA's AS-relationship format
// (<a>|<b>|<rel> with rel -1 for a-provider-of-b and 0 for peers) with node
// records, so a topology round-trips losslessly:
//
//	# bestofboth topology v1
//	N|<id>|<asn>|<name>|<class>|<x>|<y>|<prefix-or-dash>|<site-or-dash>
//	L|<idA>|<idB>|<rel>|<delay-seconds>
//
// Relationship codes follow CAIDA in the L records: -1 when idA is a
// provider of idB (idB is idA's customer), 0 for a peer link.

// Write serializes t.
func Write(w io.Writer, t *Topology) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# bestofboth topology v1")
	for _, n := range t.Nodes {
		prefix := "-"
		if n.Prefix.IsValid() {
			prefix = n.Prefix.String()
		}
		site := n.Site
		if site == "" {
			site = "-"
		}
		fmt.Fprintf(bw, "N|%d|%d|%s|%d|%g|%g|%s|%s\n",
			n.ID, n.ASN, n.Name, n.Class, n.Loc.X, n.Loc.Y, prefix, site)
	}
	type edge struct {
		a, b  NodeID
		rel   int
		delay float64
	}
	var edges []edge
	for _, n := range t.Nodes {
		for _, adj := range n.Adj {
			if adj.To < n.ID {
				continue // one record per link
			}
			var rel int
			switch adj.Rel {
			case RelCustomer:
				rel = -1 // n provides transit to adj.To
			case RelPeer:
				rel = 0
			case RelProvider:
				// store from the provider side for CAIDA compatibility
				edges = append(edges, edge{adj.To, n.ID, -1, adj.Delay})
				continue
			}
			edges = append(edges, edge{n.ID, adj.To, rel, adj.Delay})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		fmt.Fprintf(bw, "L|%d|%d|%d|%g\n", e.a, e.b, e.rel, e.delay)
	}
	return bw.Flush()
}

// Read parses a topology written by Write.
func Read(r io.Reader) (*Topology, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		switch fields[0] {
		case "N":
			if len(fields) != 9 {
				return nil, fmt.Errorf("line %d: N record needs 9 fields, got %d", lineno, len(fields))
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad id: %v", lineno, err)
			}
			asn, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad asn: %v", lineno, err)
			}
			class, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad class: %v", lineno, err)
			}
			x, err := strconv.ParseFloat(fields[5], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad x: %v", lineno, err)
			}
			y, err := strconv.ParseFloat(fields[6], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad y: %v", lineno, err)
			}
			got := b.AddNode(ASN(asn), fields[3], Class(class), Point{x, y})
			if int(got) != id {
				return nil, fmt.Errorf("line %d: node id %d out of order (expected %d)", lineno, id, got)
			}
			if fields[7] != "-" {
				p, err := netip.ParsePrefix(fields[7])
				if err != nil {
					return nil, fmt.Errorf("line %d: bad prefix: %v", lineno, err)
				}
				b.SetPrefix(got, p)
			}
			if fields[8] != "-" {
				b.SetSite(got, fields[8])
			}
		case "L":
			if len(fields) != 5 {
				return nil, fmt.Errorf("line %d: L record needs 5 fields, got %d", lineno, len(fields))
			}
			a, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad endpoint: %v", lineno, err)
			}
			bid, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad endpoint: %v", lineno, err)
			}
			relCode, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad rel: %v", lineno, err)
			}
			delay, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad delay: %v", lineno, err)
			}
			var rel Rel
			switch relCode {
			case -1:
				rel = RelCustomer // a is provider of b: from a's view, b is customer
			case 0:
				rel = RelPeer
			default:
				return nil, fmt.Errorf("line %d: unknown relationship code %d", lineno, relCode)
			}
			b.Link(NodeID(a), NodeID(bid), rel, delay)
		default:
			return nil, fmt.Errorf("line %d: unknown record type %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}
