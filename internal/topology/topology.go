// Package topology models an AS-level Internet graph: autonomous systems,
// business relationships between them (customer/provider/peer, after Gao &
// Rexford), link latencies derived from geography, and a synthetic generator
// that produces Internet-like graphs with a multi-site CDN attached — the
// simulator's stand-in for the PEERING testbed and the real Internet used in
// the paper's evaluation.
package topology

import (
	"fmt"
	"net/netip"
)

// ASN is an autonomous system number.
type ASN uint32

// NodeID identifies a BGP speaker in the simulation. Most ASes have exactly
// one node; the CDN AS has one node per site, mirroring how PEERING sites
// hold independent BGP sessions while sharing an origin AS.
type NodeID int32

// Rel is the business relationship of a link from one endpoint's
// perspective.
type Rel int8

const (
	// RelCustomer means the neighbor is my customer (I provide transit).
	RelCustomer Rel = iota
	// RelPeer means the neighbor is a settlement-free peer.
	RelPeer
	// RelProvider means the neighbor is my provider (I buy transit).
	RelProvider
)

// String returns the relationship name.
func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	default:
		return fmt.Sprintf("Rel(%d)", int8(r))
	}
}

// Invert returns the relationship as seen from the other endpoint.
func (r Rel) Invert() Rel {
	switch r {
	case RelCustomer:
		return RelProvider
	case RelProvider:
		return RelCustomer
	default:
		return RelPeer
	}
}

// Class categorizes an AS by its role in the Internet ecosystem. The
// generator uses classes to wire a realistic hierarchy, and the Appendix C.1
// analysis uses them to classify diverging paths (R&E vs. commercial).
type Class int8

const (
	// ClassTier1 is a transit-free backbone AS (peers with all other tier-1s).
	ClassTier1 Class = iota
	// ClassTransit is a regional or national commercial transit provider.
	ClassTransit
	// ClassREN is a research-and-education network (e.g. a gigapop or NREN).
	ClassREN
	// ClassEyeball is an access network hosting end users.
	ClassEyeball
	// ClassStub is a small content or enterprise edge AS.
	ClassStub
	// ClassHypergiant is a large content provider with dense peering.
	ClassHypergiant
	// ClassCDN is the emulated CDN under study (one node per site).
	ClassCDN
	// ClassCollector is a route collector (receive-only BGP sessions).
	ClassCollector
	// ClassUniversity is a campus network, customer of a REN.
	ClassUniversity
	// ClassIXRS is an IXP route-server-like AS used for dense local peering.
	ClassIXRS
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassTier1:
		return "tier1"
	case ClassTransit:
		return "transit"
	case ClassREN:
		return "ren"
	case ClassEyeball:
		return "eyeball"
	case ClassStub:
		return "stub"
	case ClassHypergiant:
		return "hypergiant"
	case ClassCDN:
		return "cdn"
	case ClassCollector:
		return "collector"
	case ClassUniversity:
		return "university"
	case ClassIXRS:
		return "ixrs"
	default:
		return fmt.Sprintf("Class(%d)", int8(c))
	}
}

// IsRE reports whether the class is part of the research-and-education
// ecosystem, used by the Appendix C.1 divergence analysis.
func (c Class) IsRE() bool { return c == ClassREN || c == ClassUniversity }

// Point is a position on the latency plane. Coordinates are scaled so that
// Euclidean distance approximates one-way propagation delay in milliseconds.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points (≈ one-way ms).
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return sqrt(dx*dx + dy*dy)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty for latency math and avoid importing math
	// in the hot path... but clarity wins: use the stdlib.
	return mathSqrt(x)
}

// Adjacency is one directed half of a BGP session.
type Adjacency struct {
	To    NodeID
	Rel   Rel     // relationship from the owning node's perspective
	Delay float64 // one-way message/packet delay in seconds
}

// Node is a BGP speaker.
type Node struct {
	ID     NodeID
	ASN    ASN
	Name   string
	Class  Class
	Loc    Point
	Adj    []Adjacency
	Prefix netip.Prefix // host prefix originated by this node (may be zero)
	Site   string       // CDN site code for ClassCDN nodes (e.g. "sea1")
}

// Topology is an immutable AS-level graph. Build one with a Builder or the
// Generate function.
type Topology struct {
	Nodes  []*Node
	byASN  map[ASN][]NodeID
	byName map[string]NodeID
}

// Node returns the node with the given id, or nil if out of range.
func (t *Topology) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(t.Nodes) {
		return nil
	}
	return t.Nodes[id]
}

// NodesByASN returns all node ids sharing the ASN (several for the CDN AS).
func (t *Topology) NodesByASN(a ASN) []NodeID { return t.byASN[a] }

// NodeByName returns the node with the given unique name.
func (t *Topology) NodeByName(name string) *Node {
	id, ok := t.byName[name]
	if !ok {
		return nil
	}
	return t.Nodes[id]
}

// NodesOfClass returns all nodes of a class in id order.
func (t *Topology) NodesOfClass(c Class) []*Node {
	var out []*Node
	for _, n := range t.Nodes {
		if n.Class == c {
			out = append(out, n)
		}
	}
	return out
}

// Len returns the number of nodes.
func (t *Topology) Len() int { return len(t.Nodes) }

// Adjacent reports whether a has a session to b and returns the relationship
// from a's perspective.
func (t *Topology) Adjacent(a, b NodeID) (Rel, bool) {
	na := t.Node(a)
	if na == nil {
		return 0, false
	}
	for _, adj := range na.Adj {
		if adj.To == b {
			return adj.Rel, true
		}
	}
	return 0, false
}

// Validate checks structural invariants: in-range endpoints, no self-links,
// symmetric adjacencies with inverted relationships, matching delays, unique
// names, and full reachability over the undirected graph.
func (t *Topology) Validate() error {
	names := make(map[string]bool, len(t.Nodes))
	for _, n := range t.Nodes {
		if n == nil {
			return fmt.Errorf("nil node present")
		}
		if names[n.Name] {
			return fmt.Errorf("duplicate node name %q", n.Name)
		}
		names[n.Name] = true
		seen := make(map[NodeID]bool, len(n.Adj))
		for _, adj := range n.Adj {
			if t.Node(adj.To) == nil {
				return fmt.Errorf("node %s: adjacency to unknown node %d", n.Name, adj.To)
			}
			if adj.To == n.ID {
				return fmt.Errorf("node %s: self link", n.Name)
			}
			if seen[adj.To] {
				return fmt.Errorf("node %s: duplicate adjacency to %d", n.Name, adj.To)
			}
			seen[adj.To] = true
			if adj.Delay <= 0 {
				return fmt.Errorf("link %s->%d: non-positive delay %v", n.Name, adj.To, adj.Delay)
			}
			back, ok := t.Adjacent(adj.To, n.ID)
			if !ok {
				return fmt.Errorf("link %s->%d has no reverse half", n.Name, adj.To)
			}
			if back != adj.Rel.Invert() {
				return fmt.Errorf("link %s<->%s: relationship mismatch %v vs %v",
					n.Name, t.Node(adj.To).Name, adj.Rel, back)
			}
		}
	}
	// Reachability.
	if len(t.Nodes) > 0 {
		visited := make([]bool, len(t.Nodes))
		queue := []NodeID{0}
		visited[0] = true
		count := 1
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			for _, adj := range t.Nodes[id].Adj {
				if !visited[adj.To] {
					visited[adj.To] = true
					count++
					queue = append(queue, adj.To)
				}
			}
		}
		if count != len(t.Nodes) {
			return fmt.Errorf("graph is disconnected: reached %d of %d nodes", count, len(t.Nodes))
		}
	}
	return nil
}

// Stats summarizes a topology for logs and the topogen tool.
type Stats struct {
	Nodes, Links        int
	ByClass             map[Class]int
	CustomerLinks       int
	PeerLinks           int
	AvgDegree           float64
	TargetBearingPrefix int
}

// ComputeStats derives summary statistics.
func (t *Topology) ComputeStats() Stats {
	s := Stats{ByClass: map[Class]int{}}
	s.Nodes = len(t.Nodes)
	halves := 0
	for _, n := range t.Nodes {
		s.ByClass[n.Class]++
		halves += len(n.Adj)
		for _, adj := range n.Adj {
			switch adj.Rel {
			case RelCustomer:
				s.CustomerLinks++
			case RelPeer:
				s.PeerLinks++ // counted twice; halved below
			}
		}
		if n.Prefix.IsValid() {
			s.TargetBearingPrefix++
		}
	}
	s.Links = halves / 2
	s.PeerLinks /= 2
	if s.Nodes > 0 {
		s.AvgDegree = float64(halves) / float64(s.Nodes)
	}
	return s
}

// Builder incrementally constructs a topology.
type Builder struct {
	t    *Topology
	errs []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{t: &Topology{
		byASN:  map[ASN][]NodeID{},
		byName: map[string]NodeID{},
	}}
}

// AddNode creates a node and returns its id.
func (b *Builder) AddNode(asn ASN, name string, class Class, loc Point) NodeID {
	id := NodeID(len(b.t.Nodes))
	if _, dup := b.t.byName[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate node name %q", name))
	}
	n := &Node{ID: id, ASN: asn, Name: name, Class: class, Loc: loc}
	b.t.Nodes = append(b.t.Nodes, n)
	b.t.byASN[asn] = append(b.t.byASN[asn], id)
	b.t.byName[name] = id
	return id
}

// Link connects a and b with relationship rel as seen from a, and a one-way
// delay in seconds. Duplicate links are rejected at Build time via Validate.
func (b *Builder) Link(a, bID NodeID, rel Rel, delay float64) {
	if a == bID {
		b.errs = append(b.errs, fmt.Errorf("self link on node %d", a))
		return
	}
	na, nb := b.t.Node(a), b.t.Node(bID)
	if na == nil || nb == nil {
		b.errs = append(b.errs, fmt.Errorf("link with unknown endpoint %d-%d", a, bID))
		return
	}
	na.Adj = append(na.Adj, Adjacency{To: bID, Rel: rel, Delay: delay})
	nb.Adj = append(nb.Adj, Adjacency{To: a, Rel: rel.Invert(), Delay: delay})
}

// Linked reports whether a session between a and b already exists.
func (b *Builder) Linked(a, bID NodeID) bool {
	_, ok := b.t.Adjacent(a, bID)
	return ok
}

// SetPrefix assigns the host prefix originated by node id.
func (b *Builder) SetPrefix(id NodeID, p netip.Prefix) {
	if n := b.t.Node(id); n != nil {
		n.Prefix = p
	}
}

// SetSite labels a CDN node with its site code.
func (b *Builder) SetSite(id NodeID, site string) {
	if n := b.t.Node(id); n != nil {
		n.Site = site
	}
}

// Build validates and returns the topology.
func (b *Builder) Build() (*Topology, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if err := b.t.Validate(); err != nil {
		return nil, err
	}
	return b.t, nil
}
