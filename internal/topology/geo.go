package topology

import "math"

func mathSqrt(x float64) float64 { return math.Sqrt(x) }

// Metro is a named position on the latency plane. Coordinates are tuned so
// that Euclidean distance approximates one-way propagation delay in
// milliseconds between metros (e.g. Boston–Amsterdam ≈ 40 ms one-way,
// ≈ 80 ms RTT).
type Metro struct {
	Code string
	Loc  Point
}

// Metros lists the metropolitan areas used by the generator. The first
// eight host the CDN sites evaluated in the paper (Table 1 column order):
// Amsterdam, Athens, Boston, Atlanta, Seattle (two sites), Salt Lake City,
// and Madison.
var Metros = []Metro{
	// North America extends west (negative X) from Boston; Europe lies
	// across the Atlantic (positive X); Brazil to the south.
	{"ams", Point{42, 14}},   // Amsterdam (~44 ms one-way from Boston)
	{"ath", Point{53, 3}},    // Athens
	{"bos", Point{0, 0}},     // Boston
	{"atl", Point{-12, -10}}, // Atlanta
	{"sea", Point{-34, 8}},   // Seattle (~35 ms one-way from Boston)
	{"slc", Point{-28, 1}},   // Salt Lake City
	{"msn", Point{-14, 4}},   // Madison
	{"nyc", Point{-3, -2}},   // New York
	{"chi", Point{-12, 2}},   // Chicago
	{"dal", Point{-22, -8}},  // Dallas
	{"den", Point{-24, 0}},   // Denver
	{"lax", Point{-34, -6}},  // Los Angeles
	{"lon", Point{39, 12}},   // London
	{"fra", Point{44, 12}},   // Frankfurt
	{"par", Point{41, 10}},   // Paris
	{"mad", Point{37, 4}},    // Madrid
	{"waw", Point{50, 14}},   // Warsaw
	{"gru", Point{12, -58}},  // São Paulo
	{"bhz", Point{14, -54}},  // Belo Horizonte
	{"mia", Point{-18, -15}}, // Miami
}

// MetroByCode returns the metro with the given code, or the zero Metro.
func MetroByCode(code string) (Metro, bool) {
	for _, m := range Metros {
		if m.Code == code {
			return m, true
		}
	}
	return Metro{}, false
}

// LinkDelay converts a distance between two points into a one-way link
// delay in seconds, adding a fixed per-hop equipment latency. The 0.5 ms
// floor models serialization and forwarding overhead on short links.
func LinkDelay(a, b Point) float64 {
	ms := a.Dist(b) + 0.5
	return ms / 1000.0
}
