package topology

import (
	"bytes"
	"net/netip"
	"testing"
)

func small(t *testing.T) *Topology {
	t.Helper()
	b := NewBuilder()
	t1 := b.AddNode(1, "t1", ClassTier1, Point{0, 0})
	t2 := b.AddNode(2, "t2", ClassTier1, Point{10, 0})
	c1 := b.AddNode(3, "c1", ClassStub, Point{1, 1})
	b.Link(t1, t2, RelPeer, 0.010)
	b.Link(c1, t1, RelProvider, 0.002)
	b.SetPrefix(c1, netip.MustParsePrefix("20.0.0.0/24"))
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestBuilderSymmetry(t *testing.T) {
	topo := small(t)
	rel, ok := topo.Adjacent(0, 1)
	if !ok || rel != RelPeer {
		t.Fatalf("t1->t2 = %v, %v", rel, ok)
	}
	rel, ok = topo.Adjacent(2, 0)
	if !ok || rel != RelProvider {
		t.Fatalf("c1->t1 = %v, %v", rel, ok)
	}
	rel, ok = topo.Adjacent(0, 2)
	if !ok || rel != RelCustomer {
		t.Fatalf("t1->c1 = %v, %v", rel, ok)
	}
}

func TestRelInvert(t *testing.T) {
	if RelCustomer.Invert() != RelProvider || RelProvider.Invert() != RelCustomer || RelPeer.Invert() != RelPeer {
		t.Fatal("Invert is wrong")
	}
}

func TestValidateCatchesDisconnected(t *testing.T) {
	b := NewBuilder()
	b.AddNode(1, "a", ClassStub, Point{})
	b.AddNode(2, "b", ClassStub, Point{})
	if _, err := b.Build(); err == nil {
		t.Fatal("disconnected graph passed validation")
	}
}

func TestValidateCatchesDuplicateName(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(1, "dup", ClassStub, Point{})
	c := b.AddNode(2, "dup", ClassStub, Point{})
	b.Link(a, c, RelPeer, 0.001)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate names passed validation")
	}
}

func TestValidateCatchesSelfLink(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(1, "a", ClassStub, Point{})
	b.Link(a, a, RelPeer, 0.001)
	if _, err := b.Build(); err == nil {
		t.Fatal("self link passed validation")
	}
}

func TestNodeLookups(t *testing.T) {
	topo := small(t)
	if topo.NodeByName("c1") == nil || topo.NodeByName("zzz") != nil {
		t.Fatal("NodeByName broken")
	}
	if got := topo.NodesByASN(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("NodesByASN(1) = %v", got)
	}
	if topo.Node(-1) != nil || topo.Node(99) != nil {
		t.Fatal("out-of-range Node should be nil")
	}
	if got := topo.NodesOfClass(ClassTier1); len(got) != 2 {
		t.Fatalf("NodesOfClass(tier1) = %d nodes", len(got))
	}
}

func TestGenerateDefaults(t *testing.T) {
	topo, err := Generate(GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := topo.ComputeStats()
	if st.Nodes < 500 {
		t.Fatalf("suspiciously small topology: %d nodes", st.Nodes)
	}
	// All eight sites exist with distinct node ids but one ASN.
	cdn := topo.NodesOfClass(ClassCDN)
	if len(cdn) != 8 {
		t.Fatalf("got %d CDN sites, want 8", len(cdn))
	}
	sites := map[string]bool{}
	for _, n := range cdn {
		if n.ASN != 47065 {
			t.Fatalf("site %s has ASN %d, want 47065", n.Site, n.ASN)
		}
		sites[n.Site] = true
	}
	for _, code := range DefaultSiteCodes {
		if !sites[code] {
			t.Fatalf("missing site %s", code)
		}
	}
	// Targets exist: eyeballs and stubs have prefixes.
	withPrefix := 0
	for _, n := range topo.Nodes {
		if n.Prefix.IsValid() {
			withPrefix++
		}
	}
	if withPrefix < 700 {
		t.Fatalf("only %d prefix-bearing nodes", withPrefix)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("node counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Nodes {
		na, nb := a.Nodes[i], b.Nodes[i]
		if na.Name != nb.Name || na.ASN != nb.ASN || len(na.Adj) != len(nb.Adj) {
			t.Fatalf("node %d differs between runs", i)
		}
		for j := range na.Adj {
			if na.Adj[j] != nb.Adj[j] {
				t.Fatalf("adjacency %d of node %d differs", j, i)
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, _ := Generate(GenConfig{Seed: 1})
	b, _ := Generate(GenConfig{Seed: 2})
	same := true
	for i := range a.Nodes {
		if i >= len(b.Nodes) || len(a.Nodes[i].Adj) != len(b.Nodes[i].Adj) {
			same = false
			break
		}
	}
	if same {
		// Degree sequences matching exactly across seeds would be a red flag.
		diff := false
		for i := range a.Nodes {
			for j := range a.Nodes[i].Adj {
				if a.Nodes[i].Adj[j].To != b.Nodes[i].Adj[j].To {
					diff = true
					break
				}
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGenerateSubsetOfSites(t *testing.T) {
	topo, err := Generate(GenConfig{Seed: 1, SiteCodes: []string{"ams", "sea1"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.NodesOfClass(ClassCDN)); got != 2 {
		t.Fatalf("got %d sites, want 2", got)
	}
}

func TestGenerateUnknownSite(t *testing.T) {
	if _, err := Generate(GenConfig{Seed: 1, SiteCodes: []string{"xxx"}}); err == nil {
		t.Fatal("unknown site code accepted")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	orig, err := Generate(GenConfig{Seed: 7, NumStub: 50, NumEyeball: 30, NumUniversity: 16})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("round trip node count %d != %d", got.Len(), orig.Len())
	}
	for i := range orig.Nodes {
		a, b := orig.Nodes[i], got.Nodes[i]
		if a.Name != b.Name || a.ASN != b.ASN || a.Class != b.Class || a.Prefix != b.Prefix || a.Site != b.Site {
			t.Fatalf("node %d differs after round trip: %+v vs %+v", i, a, b)
		}
		if len(a.Adj) != len(b.Adj) {
			t.Fatalf("node %d degree differs: %d vs %d", i, len(a.Adj), len(b.Adj))
		}
		// Adjacency order may differ; compare as sets.
		want := map[NodeID]Adjacency{}
		for _, adj := range a.Adj {
			want[adj.To] = adj
		}
		for _, adj := range b.Adj {
			w, ok := want[adj.To]
			if !ok || w.Rel != adj.Rel || !close(w.Delay, adj.Delay) {
				t.Fatalf("node %d adjacency to %d differs: %+v vs %+v", i, adj.To, w, adj)
			}
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"X|1|2",
		"N|0|1|a|0|0|0", // too few fields
		"L|0|1|5|0.1",   // bad rel code after valid nodes
	}
	for _, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Errorf("Read(%q) accepted garbage", c)
		}
	}
}

func TestMetroDistancesPlausible(t *testing.T) {
	get := func(code string) Point {
		m, ok := MetroByCode(code)
		if !ok {
			t.Fatalf("missing metro %s", code)
		}
		return m.Loc
	}
	// Transatlantic one-way ≥ 35 ms.
	if d := get("bos").Dist(get("ams")); d < 35 {
		t.Fatalf("bos-ams distance %v too small", d)
	}
	// Same-region metros within 15 ms.
	if d := get("sea").Dist(get("slc")); d > 15 {
		t.Fatalf("sea-slc distance %v too large", d)
	}
	if _, ok := MetroByCode("nowhere"); ok {
		t.Fatal("MetroByCode invented a metro")
	}
}

func TestComputeStats(t *testing.T) {
	topo := small(t)
	st := topo.ComputeStats()
	if st.Nodes != 3 || st.Links != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PeerLinks != 1 || st.CustomerLinks != 1 {
		t.Fatalf("link classes = peers %d customers %d", st.PeerLinks, st.CustomerLinks)
	}
	if st.TargetBearingPrefix != 1 {
		t.Fatalf("prefix count = %d", st.TargetBearingPrefix)
	}
}
