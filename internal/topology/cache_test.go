package topology

import (
	"sync"
	"testing"
)

func smallGen(seed int64) GenConfig {
	return GenConfig{
		Seed: seed, NumTransit: 12, NumRegional: 6, NumEyeball: 15,
		NumStub: 30, NumUniversity: 6,
	}
}

func TestCachedReturnsIsolatedCopies(t *testing.T) {
	a, err := Cached(smallGen(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached(smallGen(1))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("cache returned the same instance twice")
	}
	if a.Len() != b.Len() {
		t.Fatalf("cached copies differ in size: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Nodes {
		na, nb := a.Nodes[i], b.Nodes[i]
		if na == nb {
			t.Fatalf("node %d shared between copies", i)
		}
		if na.Name != nb.Name || na.ASN != nb.ASN || len(na.Adj) != len(nb.Adj) {
			t.Fatalf("node %d differs between copies", i)
		}
	}

	// Mutations to one copy must not leak into a sibling copy.
	a.Nodes[0].Name = "mutated"
	a.Nodes[0].Adj[0].Delay = 1e9
	a.Nodes[0].Site = "zzz"
	c, err := Cached(smallGen(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes[0].Name == "mutated" || c.Nodes[0].Adj[0].Delay == 1e9 || c.Nodes[0].Site == "zzz" {
		t.Fatal("mutation of one cached copy leaked into a later copy")
	}
	if b.Nodes[0].Name == "mutated" {
		t.Fatal("mutation of one cached copy leaked into a sibling copy")
	}
}

func TestCachedMissesOnChangedConfig(t *testing.T) {
	a, err := Cached(smallGen(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallGen(2)
	cfg.NumStub += 5
	b, err := Cached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() == b.Len() {
		t.Fatalf("changed GenConfig produced identically sized topology (%d nodes): cache key too coarse?", a.Len())
	}
	cfg2 := smallGen(2)
	cfg2.SiteCodes = []string{"ams", "atl"}
	c, err := Cached(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.NodesOfClass(ClassCDN)) != 2 {
		t.Fatalf("SiteCodes ignored: got %d CDN nodes", len(c.NodesOfClass(ClassCDN)))
	}
}

func TestCachedMatchesGenerate(t *testing.T) {
	cfg := smallGen(3)
	gen, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Cached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Len() != cached.Len() {
		t.Fatalf("Cached (%d nodes) != Generate (%d nodes)", cached.Len(), gen.Len())
	}
	for i := range gen.Nodes {
		ga, ca := gen.Nodes[i], cached.Nodes[i]
		if ga.Name != ca.Name || ga.ASN != ca.ASN || ga.Class != ca.Class ||
			ga.Prefix != ca.Prefix || len(ga.Adj) != len(ca.Adj) {
			t.Fatalf("node %d differs between Generate and Cached", i)
		}
		for j := range ga.Adj {
			if ga.Adj[j] != ca.Adj[j] {
				t.Fatalf("adjacency %d/%d differs between Generate and Cached", i, j)
			}
		}
	}
}

func TestCachedConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	tops := make([]*Topology, 8)
	for i := range tops {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			topo, err := Cached(smallGen(4))
			if err != nil {
				t.Error(err)
				return
			}
			tops[i] = topo
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(tops); i++ {
		if tops[i] == nil || tops[i] == tops[0] {
			t.Fatal("concurrent Cached calls returned nil or shared instances")
		}
	}
}
