package topology

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// GenConfig parameterizes the synthetic Internet generator.
//
// The defaults produce a graph of roughly 900 ASes shaped like the real
// Internet's hierarchy: a tier-1 clique, regional commercial transits,
// research-and-education networks (RENs) with their own backbone, eyeball
// access networks with dense IXP-style peering, and stub edge ASes. A
// multi-site CDN modeled on the PEERING testbed deployment used in the
// paper (sites in Amsterdam, Athens, Boston, Atlanta, Seattle ×2, Salt Lake
// City, and Madison) attaches with deliberately heterogeneous connectivity:
// some sites sit behind commercial transit, some behind university/REN
// chains, and one (sea1) behind a weakly connected IX-only provider —
// heterogeneity that drives the per-site traffic-control differences in
// Table 1 and the Appendix C.1 divergences.
type GenConfig struct {
	Seed          int64
	NumTier1      int // transit-free clique (default 6)
	NumTransit    int // commercial transit providers (default 60)
	NumRegional   int // regional transit providers, customers of transits (default 40)
	NumREN        int // research-and-education networks (default 8)
	NumUniversity int // campus networks, customers of RENs (default 36)
	NumEyeball    int // access networks (default 150)
	NumStub       int // edge ASes (default 600)
	NumHypergiant int // densely peered content giants (default 3)

	// SiteCodes selects which CDN sites to instantiate; defaults to the
	// paper's eight Table 1 sites.
	SiteCodes []string

	// CDNASN is the origin AS of the emulated CDN (default 47065, the
	// PEERING testbed ASN).
	CDNASN ASN

	// CDNSharedProviders gives every CDN site sessions to this many common
	// tier-1 providers. PEERING sites have disjoint providers (the default,
	// 0), which is why the paper's evaluation prepends from all sites; real
	// CDNs "often connect to the same tier-1 or large regional providers
	// across many sites" (§4), which is what makes the scoped-prepending
	// and MED variants viable. Set to 2 to model that deployment.
	CDNSharedProviders int
}

// DefaultSiteCodes is the Table 1 site list.
var DefaultSiteCodes = []string{"ams", "ath", "bos", "atl", "sea1", "slc", "sea2", "msn"}

func (c *GenConfig) fillDefaults() {
	if c.NumTier1 == 0 {
		c.NumTier1 = 6
	}
	if c.NumTransit == 0 {
		c.NumTransit = 60
	}
	if c.NumRegional == 0 {
		c.NumRegional = 40
	}
	if c.NumREN == 0 {
		c.NumREN = 8
	}
	if c.NumUniversity == 0 {
		c.NumUniversity = 36
	}
	if c.NumEyeball == 0 {
		c.NumEyeball = 150
	}
	if c.NumStub == 0 {
		c.NumStub = 600
	}
	if c.NumHypergiant == 0 {
		c.NumHypergiant = 3
	}
	if len(c.SiteCodes) == 0 {
		c.SiteCodes = DefaultSiteCodes
	}
	if c.CDNASN == 0 {
		c.CDNASN = 47065
	}
}

// Continent groups used when wiring region-local links.
var (
	usMetros = []string{"bos", "nyc", "chi", "atl", "dal", "den", "slc", "sea", "lax", "msn", "mia"}
	euMetros = []string{"ams", "lon", "fra", "par", "mad", "ath", "waw"}
	saMetros = []string{"gru", "bhz"}
)

func continentOf(code string) []string {
	for _, m := range euMetros {
		if m == code {
			return euMetros
		}
	}
	for _, m := range saMetros {
		if m == code {
			return saMetros
		}
	}
	return usMetros
}

// tier1 hub metros: global backbones anchored at major interconnection
// cities.
var tier1Hubs = []string{"nyc", "chi", "lax", "lon", "fra", "dal", "ams", "mia"}

// renSpec describes one research-and-education network.
type renSpec struct {
	name  string
	metro string
	// transitMetros: the REN buys commodity transit from the first transit
	// of each listed metro *in addition* to its tier-1. RENs with
	// commercial transit become customers of regional transits, making
	// routes through them customer routes there — the Appendix C.1
	// mechanism. Only ren-pnw (hosting sea2) and ren-grnet (hosting ath)
	// have such shortcuts, reproducing the paper's standout sites: ren-pnw
	// shadows the whole west coast, which is what defeats steering toward
	// sea1.
	transitMetros []string
}

var renSpecs = []renSpec{
	{"ren-internet2", "chi", nil},                            // national R&E backbone
	{"ren-pnw", "sea", []string{"sea", "lax", "slc", "den"}}, // hosts sea2
	{"ren-utah", "slc", nil},
	{"ren-wisc", "msn", nil},
	{"ren-nox", "bos", nil}, // Northern Crossroads
	{"ren-geant", "fra", nil},
	{"ren-grnet", "ath", []string{"ath", "fra"}}, // hosts the ath site
	{"ren-rnp", "gru", []string{"gru"}},
}

// siteSpec describes how one CDN site attaches to the graph, mirroring the
// heterogeneous hosting arrangements of PEERING sites.
type siteSpec struct {
	code  string
	metro string
	// attachment style
	viaREN      string // site provider is this REN (via a university hop if uni != "")
	uni         bool   // insert a university AS between site and REN
	commercial  int    // number of commercial transit providers at the metro
	weakUpllnk  bool   // provider is a deliberately weakly connected transit
	ixPeers     int    // eyeball peers at the local IX
	peersHyper  bool   // peers with hypergiants
	extraRemote int    // additional remote commercial providers
}

var siteSpecs = []siteSpec{
	{code: "ams", metro: "ams", commercial: 2, ixPeers: 6, peersHyper: true},
	{code: "ath", metro: "ath", viaREN: "ren-grnet", ixPeers: 1},
	{code: "bos", metro: "bos", viaREN: "ren-nox", ixPeers: 1},
	{code: "atl", metro: "atl", commercial: 1, ixPeers: 3},
	{code: "sea1", metro: "sea", weakUpllnk: true, ixPeers: 4},
	{code: "slc", metro: "slc", viaREN: "ren-utah", uni: true, ixPeers: 1},
	{code: "sea2", metro: "sea", viaREN: "ren-pnw", uni: true, ixPeers: 1},
	{code: "msn", metro: "msn", viaREN: "ren-wisc", uni: true, ixPeers: 1},
}

// Generate builds a synthetic Internet-like topology per cfg. The result is
// validated before being returned and is fully reproducible from cfg.Seed.
func Generate(cfg GenConfig) (*Topology, error) {
	cfg.fillDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()

	scatter := func(m Metro) Point {
		return Point{m.Loc.X + r.Float64()*2 - 1, m.Loc.Y + r.Float64()*2 - 1}
	}
	metroByCode := func(code string) Metro {
		m, ok := MetroByCode(code)
		if !ok {
			panic("unknown metro " + code)
		}
		return m
	}
	link := func(a, bID NodeID, rel Rel) {
		if a == bID || b.Linked(a, bID) {
			return
		}
		na, nb := b.t.Node(a), b.t.Node(bID)
		b.Link(a, bID, rel, LinkDelay(na.Loc, nb.Loc))
	}

	nextASN := ASN(100)
	asn := func() ASN { nextASN++; return nextASN }

	// nearest returns up to n of the given nodes closest to p, with the
	// candidate pool limited to the 2n nearest to keep some diversity.
	nearest := func(p Point, nodes []NodeID, n int) []NodeID {
		type cand struct {
			id NodeID
			d  float64
		}
		cands := make([]cand, 0, len(nodes))
		for _, id := range nodes {
			cands = append(cands, cand{id, p.Dist(b.t.Node(id).Loc)})
		}
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if cands[j].d < cands[i].d {
					cands[i], cands[j] = cands[j], cands[i]
				}
			}
		}
		pool := 2 * n
		if pool > len(cands) {
			pool = len(cands)
		}
		perm := r.Perm(pool)
		out := make([]NodeID, 0, n)
		for _, i := range perm {
			out = append(out, cands[i].id)
			if len(out) == n {
				break
			}
		}
		return out
	}

	// --- Tier-1 clique ---------------------------------------------------
	var tier1s []NodeID
	for i := 0; i < cfg.NumTier1; i++ {
		hub := metroByCode(tier1Hubs[i%len(tier1Hubs)])
		id := b.AddNode(asn(), fmt.Sprintf("tier1-%d", i), ClassTier1, scatter(hub))
		tier1s = append(tier1s, id)
	}
	for i := 0; i < len(tier1s); i++ {
		for j := i + 1; j < len(tier1s); j++ {
			link(tier1s[i], tier1s[j], RelPeer)
		}
	}

	// --- Commercial transits ----------------------------------------------
	// Spread across all metros so every region has local transit. The
	// first transit of each metro is "big" (customer of 3 tier-1s; CDN
	// sites with commercial hosting attach here), the rest buy from 2.
	// Dense multihoming and peering creates the alternative-route inventory
	// that makes BGP path exploration — and hence slow withdrawal
	// convergence — realistic.
	var transits []NodeID
	transitsByMetro := map[string][]NodeID{}
	for i := 0; i < cfg.NumTransit; i++ {
		m := Metros[i%len(Metros)]
		id := b.AddNode(asn(), fmt.Sprintf("transit-%s-%d", m.Code, i), ClassTransit, scatter(m))
		transits = append(transits, id)
		transitsByMetro[m.Code] = append(transitsByMetro[m.Code], id)
		nProv := 2
		if len(transitsByMetro[m.Code]) == 1 {
			nProv = 3 // the metro's big transit
		}
		for _, p := range nearest(b.t.Node(id).Loc, tier1s, nProv) {
			link(id, p, RelProvider)
		}
	}
	// Same-continent transit peering.
	for _, id := range transits {
		code := metroCodeOf(b.t.Node(id).Name)
		cont := continentOf(code)
		var candidates []NodeID
		for _, mc := range cont {
			candidates = append(candidates, transitsByMetro[mc]...)
		}
		for _, p := range pick(r, candidates, 7) {
			if p != id {
				link(id, p, RelPeer)
			}
		}
	}

	// --- Regional transits --------------------------------------------------
	// A second transit tier: customers of metro transits, peering among
	// themselves. The extra hierarchy level deepens provider chains
	// (tier-1 → transit → regional → eyeball → stub), which multiplies the
	// stale alternatives available during path exploration and produces
	// realistic, slow withdrawal convergence (Appendix A).
	var regionals []NodeID
	regionalsByMetro := map[string][]NodeID{}
	for i := 0; i < cfg.NumRegional; i++ {
		m := Metros[i%len(Metros)]
		id := b.AddNode(asn(), fmt.Sprintf("regional-%s-%d", m.Code, i), ClassTransit, scatter(m))
		regionals = append(regionals, id)
		regionalsByMetro[m.Code] = append(regionalsByMetro[m.Code], id)
		cont := continentOf(m.Code)
		var cands []NodeID
		for _, mc := range cont {
			cands = append(cands, transitsByMetro[mc]...)
		}
		for _, p := range pick(r, cands, 2+r.Intn(2)) {
			link(id, p, RelProvider)
		}
	}
	for _, id := range regionals {
		code := metroCodeOf(b.t.Node(id).Name)
		cont := continentOf(code)
		var cands []NodeID
		for _, mc := range cont {
			cands = append(cands, regionalsByMetro[mc]...)
		}
		for _, p := range pick(r, cands, 3) {
			if p != id {
				link(id, p, RelPeer)
			}
		}
	}

	// --- RENs --------------------------------------------------------------
	// Every REN buys from one tier-1 (spread across the clique) so its
	// customer cone stays globally reachable while its announcements
	// compete on path length at the tier-1s. RENs with commercialTransit
	// > 0 additionally buy from regional transits, making routes through
	// them customer routes at those transits (the C.1 shortcut).
	renByName := map[string]NodeID{}
	var rens []NodeID
	for i := 0; i < cfg.NumREN && i < len(renSpecs); i++ {
		spec := renSpecs[i]
		m := metroByCode(spec.metro)
		id := b.AddNode(asn(), spec.name, ClassREN, scatter(m))
		renByName[spec.name] = id
		rens = append(rens, id)
		for _, p := range nearest(b.t.Node(id).Loc, tier1s, 1) {
			link(id, p, RelProvider)
		}
		for _, metro := range spec.transitMetros {
			if cands := transitsByMetro[metro]; len(cands) > 0 {
				link(id, cands[0], RelProvider)
			}
		}
		// Settlement-free peering with commercial transits at the home
		// exchange point (gigapops and NRENs peer widely): spreads the
		// REN's routes at peer preference so REN-hosted CDN sites remain
		// steerable beyond the tier-1 path.
		for _, p := range transitsByMetro[spec.metro] {
			link(id, p, RelPeer)
		}
	}
	// R&E backbone: RENs all peer with the internet2-like backbone and
	// GRNET additionally reaches the world through GÉANT.
	if backbone, ok := renByName["ren-internet2"]; ok {
		for _, id := range rens {
			if id != backbone {
				link(id, backbone, RelPeer)
			}
		}
	}
	if geant, ok := renByName["ren-geant"]; ok {
		if grnet, ok2 := renByName["ren-grnet"]; ok2 {
			link(grnet, geant, RelProvider)
		}
	}

	// --- Universities -------------------------------------------------------
	var universities []NodeID
	uniByMetro := map[string][]NodeID{}
	for i := 0; i < cfg.NumUniversity; i++ {
		// Universities cluster at REN metros.
		spec := renSpecs[i%len(renSpecs)]
		m := metroByCode(spec.metro)
		id := b.AddNode(asn(), fmt.Sprintf("uni-%s-%d", spec.metro, i), ClassUniversity, scatter(m))
		universities = append(universities, id)
		uniByMetro[spec.metro] = append(uniByMetro[spec.metro], id)
		link(id, renByName[spec.name], RelProvider)
		// A few universities keep a commercial backup provider.
		if r.Float64() < 0.3 {
			if cands := transitsByMetro[spec.metro]; len(cands) > 0 {
				link(id, cands[r.Intn(len(cands))], RelProvider)
			}
		}
	}

	// --- Hypergiants ---------------------------------------------------------
	var hypergiants []NodeID
	for i := 0; i < cfg.NumHypergiant; i++ {
		hub := metroByCode(tier1Hubs[(i*2)%len(tier1Hubs)])
		id := b.AddNode(asn(), fmt.Sprintf("hypergiant-%d", i), ClassHypergiant, scatter(hub))
		hypergiants = append(hypergiants, id)
		for _, p := range pick(r, tier1s, 2) {
			link(id, p, RelProvider)
		}
		// Dense peering: with roughly half of all transits.
		for _, p := range pick(r, transits, len(transits)/2) {
			link(id, p, RelPeer)
		}
	}

	// --- Eyeballs ---------------------------------------------------------
	var eyeballs []NodeID
	eyeballsByMetro := map[string][]NodeID{}
	for i := 0; i < cfg.NumEyeball; i++ {
		m := Metros[i%len(Metros)]
		id := b.AddNode(asn(), fmt.Sprintf("eyeball-%s-%d", m.Code, i), ClassEyeball, scatter(m))
		eyeballs = append(eyeballs, id)
		eyeballsByMetro[m.Code] = append(eyeballsByMetro[m.Code], id)
		// 3-4 providers drawn from regional and metro transits: heavy
		// multihoming gives routers the alternative-route inventory that
		// drives path exploration on withdrawal.
		cont := continentOf(m.Code)
		var cands []NodeID
		for _, mc := range cont {
			cands = append(cands, transitsByMetro[mc]...)
			cands = append(cands, regionalsByMetro[mc]...)
		}
		for _, p := range pick(r, cands, 3+r.Intn(2)) {
			link(id, p, RelProvider)
		}
		// IXP peering with other eyeballs in the same metro.
		for _, p := range pick(r, eyeballsByMetro[m.Code], 3) {
			if p != id {
				link(id, p, RelPeer)
			}
		}
		// Many eyeballs peer with hypergiants.
		if r.Float64() < 0.5 && len(hypergiants) > 0 {
			link(id, hypergiants[r.Intn(len(hypergiants))], RelPeer)
		}
	}

	// --- Stubs --------------------------------------------------------------
	var stubs []NodeID
	for i := 0; i < cfg.NumStub; i++ {
		m := Metros[i%len(Metros)]
		id := b.AddNode(asn(), fmt.Sprintf("stub-%s-%d", m.Code, i), ClassStub, scatter(m))
		stubs = append(stubs, id)
		// Customer of 2-3 upstreams: local transit or local eyeball.
		ups := 2 + r.Intn(2)
		var cands []NodeID
		cands = append(cands, transitsByMetro[m.Code]...)
		cands = append(cands, regionalsByMetro[m.Code]...)
		cands = append(cands, eyeballsByMetro[m.Code]...)
		if len(cands) == 0 {
			cands = transits
		}
		for _, p := range pick(r, cands, ups) {
			link(id, p, RelProvider)
		}
	}

	// --- The weak uplink for sea1 -------------------------------------------
	// A small Seattle IX transit: one west-coast tier-1 upstream plus peer
	// sessions at the Seattle IX (local transits and eyeballs). Routes
	// through it are peer or provider routes for everyone of consequence,
	// so prepended alternatives reached as *customer* routes via ren-pnw
	// win at the regional transits — reproducing the paper's sea1 row and
	// the Appendix C.1 divergences.
	weakT1 := tier1s[0]
	if len(tier1s) > 2 {
		weakT1 = tier1s[2] // the lax-hub tier-1: keeps local latency sane
	}
	weakSea := b.AddNode(asn(), "transit-sea-weak", ClassTransit, scatter(metroByCode("sea")))
	link(weakSea, weakT1, RelProvider)
	for _, p := range pick(r, eyeballsByMetro["sea"], 5) {
		link(weakSea, p, RelPeer)
	}

	// --- CDN sites ------------------------------------------------------------
	for _, code := range cfg.SiteCodes {
		spec, ok := siteSpecByCode(code)
		if !ok {
			return nil, fmt.Errorf("topology: unknown CDN site code %q", code)
		}
		m := metroByCode(spec.metro)
		id := b.AddNode(cfg.CDNASN, "cdn-"+code, ClassCDN, scatter(m))
		b.SetSite(id, code)
		if spec.viaREN != "" {
			ren, ok := renByName[spec.viaREN]
			if !ok {
				return nil, fmt.Errorf("topology: site %s references missing REN %s", code, spec.viaREN)
			}
			if spec.uni {
				unis := uniByMetro[spec.metro]
				if len(unis) == 0 {
					return nil, fmt.Errorf("topology: site %s has no university at %s", code, spec.metro)
				}
				link(id, unis[0], RelProvider)
			} else {
				link(id, ren, RelProvider)
			}
		}
		if spec.weakUpllnk {
			link(id, weakSea, RelProvider)
		}
		for j := 0; j < spec.commercial; j++ {
			cands := transitsByMetro[spec.metro]
			if len(cands) > j {
				link(id, cands[j], RelProvider)
			} else if len(transits) > 0 {
				link(id, transits[r.Intn(len(transits))], RelProvider)
			}
		}
		for _, p := range pick(r, eyeballsByMetro[spec.metro], spec.ixPeers) {
			link(id, p, RelPeer)
		}
		if spec.peersHyper {
			for _, h := range hypergiants {
				link(id, h, RelPeer)
			}
		}
		for j := 0; j < cfg.CDNSharedProviders && j < len(tier1s); j++ {
			link(id, tier1s[j], RelProvider)
		}
	}

	// --- Prefix allocation -------------------------------------------------
	// Eyeballs, stubs, and universities originate a /24 each and host the
	// measurement targets; hypergiants originate a /24 used by the Appendix
	// A/B experiments.
	idx := 0
	alloc := func() netip.Prefix {
		p := netip.PrefixFrom(netip.AddrFrom4([4]byte{
			20, byte(idx >> 8), byte(idx), 0,
		}), 24)
		idx++
		return p
	}
	for _, set := range [][]NodeID{eyeballs, stubs, universities, hypergiants} {
		for _, id := range set {
			b.SetPrefix(id, alloc())
		}
	}

	return b.Build()
}

func siteSpecByCode(code string) (siteSpec, bool) {
	for _, s := range siteSpecs {
		if s.code == code {
			return s, true
		}
	}
	return siteSpec{}, false
}

// metroCodeOf extracts the metro code from generated names like
// "transit-sea-12".
func metroCodeOf(name string) string {
	start := -1
	for i := 0; i < len(name); i++ {
		if name[i] == '-' {
			start = i + 1
			break
		}
	}
	if start < 0 {
		return ""
	}
	end := start
	for end < len(name) && name[end] != '-' {
		end++
	}
	return name[start:end]
}

// pick returns up to n distinct random elements of xs.
func pick(r *rand.Rand, xs []NodeID, n int) []NodeID {
	if n >= len(xs) {
		out := make([]NodeID, len(xs))
		copy(out, xs)
		return out
	}
	idx := r.Perm(len(xs))[:n]
	out := make([]NodeID, 0, n)
	for _, i := range idx {
		out = append(out, xs[i])
	}
	return out
}
