package topology

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"slices"
	"strconv"
	"strings"
)

// ReadCAIDA parses the CAIDA AS-relationship serial-1 format
// (`<provider-as>|<customer-as>|-1` and `<peer-as>|<peer-as>|0`, '#'
// comments) and builds a topology over it, so experiments can run on real
// Internet snapshots instead of the synthetic generator.
//
// CAIDA files carry no geography or prefixes, so ReadCAIDA synthesizes
// both: ASes are scattered across the metro map deterministically from
// seed, link delays derive from the scatter, and every AS that appears
// only as a customer (a stub) is given a /24 so it can host measurement
// targets. CDN sites are NOT created — attach them afterwards with
// AttachCDN.
func ReadCAIDA(r io.Reader, seed int64) (*Topology, error) {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	ids := map[ASN]NodeID{}
	hasCustomer := map[ASN]bool{}

	node := func(a ASN) NodeID {
		if id, ok := ids[a]; ok {
			return id
		}
		m := Metros[rng.Intn(len(Metros))]
		loc := Point{m.Loc.X + rng.Float64()*2 - 1, m.Loc.Y + rng.Float64()*2 - 1}
		id := b.AddNode(a, fmt.Sprintf("as%d", a), ClassStub, loc)
		ids[a] = id
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "|")
		if len(fields) < 3 {
			return nil, fmt.Errorf("topology: caida line %d: need 3 fields, got %d", lineno, len(fields))
		}
		a64, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("topology: caida line %d: %v", lineno, err)
		}
		b64, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("topology: caida line %d: %v", lineno, err)
		}
		rel, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("topology: caida line %d: %v", lineno, err)
		}
		na, nb := node(ASN(a64)), node(ASN(b64))
		la, lb := b.t.Node(na).Loc, b.t.Node(nb).Loc
		switch rel {
		case -1: // a provides transit to b
			b.Link(na, nb, RelCustomer, LinkDelay(la, lb))
			hasCustomer[ASN(a64)] = true
		case 0:
			b.Link(na, nb, RelPeer, LinkDelay(la, lb))
		default:
			return nil, fmt.Errorf("topology: caida line %d: unknown relationship %d", lineno, rel)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Classify: ASes with customers are transits; pure leaves are stubs
	// and get target prefixes. Iterate in sorted ASN order so prefix
	// assignment does not depend on map iteration order.
	asns := make([]ASN, 0, len(ids))
	for asn := range ids {
		asns = append(asns, asn)
	}
	slices.Sort(asns)
	idx := 0
	for _, asn := range asns {
		n := b.t.Node(ids[asn])
		if hasCustomer[asn] {
			n.Class = ClassTransit
			continue
		}
		n.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{
			21, byte(idx >> 8), byte(idx), 0,
		}), 24)
		idx++
	}
	return b.Build()
}

// AttachCDN adds CDN site nodes to an imported topology: each site becomes
// a customer of the named provider AS (and a peer of the optional peer
// ASes). Use after ReadCAIDA to place an emulated deployment onto a real
// AS graph.
func AttachCDN(t *Topology, cdnASN ASN, sites map[string]ASN) (*Topology, error) {
	// Rebuild through a Builder to preserve validation.
	b := NewBuilder()
	for _, n := range t.Nodes {
		id := b.AddNode(n.ASN, n.Name, n.Class, n.Loc)
		if n.Prefix.IsValid() {
			b.SetPrefix(id, n.Prefix)
		}
		if n.Site != "" {
			b.SetSite(id, n.Site)
		}
	}
	for _, n := range t.Nodes {
		for _, adj := range n.Adj {
			if adj.To > n.ID {
				b.Link(n.ID, adj.To, adj.Rel, adj.Delay)
			}
		}
	}
	if cdnASN == 0 {
		cdnASN = 47065
	}
	// Sorted site order: node IDs (and with them BGP state layout) must
	// not depend on map iteration order.
	codes := make([]string, 0, len(sites))
	for code := range sites {
		codes = append(codes, code)
	}
	slices.Sort(codes)
	for _, code := range codes {
		providerASN := sites[code]
		provIDs := t.NodesByASN(providerASN)
		if len(provIDs) == 0 {
			return nil, fmt.Errorf("topology: site %s references unknown provider AS %d", code, providerASN)
		}
		prov := t.Node(provIDs[0])
		id := b.AddNode(cdnASN, "cdn-"+code, ClassCDN, prov.Loc)
		b.SetSite(id, code)
		b.Link(id, prov.ID, RelProvider, 0.002)
	}
	return b.Build()
}
