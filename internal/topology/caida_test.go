package topology

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCAIDA = `# CAIDA AS-relationships sample
# provider|customer|-1, peer|peer|0
174|1000|-1
3356|1000|-1
174|3356|0
174|2000|-1
3356|2000|-1
1000|4000|-1
2000|4000|-1
`

func TestReadCAIDA(t *testing.T) {
	topo, err := ReadCAIDA(strings.NewReader(sampleCAIDA), 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Len() != 5 {
		t.Fatalf("got %d nodes", topo.Len())
	}
	// 174 and 3356 peer; 174 provides to 1000.
	n174 := topo.NodesByASN(174)
	n3356 := topo.NodesByASN(3356)
	n1000 := topo.NodesByASN(1000)
	n4000 := topo.NodesByASN(4000)
	if len(n174) != 1 || len(n4000) != 1 {
		t.Fatal("AS lookup broken")
	}
	if rel, ok := topo.Adjacent(n174[0], n3356[0]); !ok || rel != RelPeer {
		t.Fatalf("174-3356 = %v, %v", rel, ok)
	}
	if rel, ok := topo.Adjacent(n174[0], n1000[0]); !ok || rel != RelCustomer {
		t.Fatalf("174->1000 = %v, %v", rel, ok)
	}
	// Classification: transit ASes have customers, 4000 is a stub with a
	// prefix.
	if topo.Node(n174[0]).Class != ClassTransit {
		t.Fatal("174 not classified as transit")
	}
	if topo.Node(n4000[0]).Class != ClassStub || !topo.Node(n4000[0]).Prefix.IsValid() {
		t.Fatalf("4000 = %+v, want stub with prefix", topo.Node(n4000[0]))
	}
	// 1000 has customer 4000: transit, no prefix.
	if topo.Node(n1000[0]).Class != ClassTransit || topo.Node(n1000[0]).Prefix.IsValid() {
		t.Fatalf("1000 = %+v, want transit without prefix", topo.Node(n1000[0]))
	}
}

func TestReadCAIDADeterministic(t *testing.T) {
	a, err := ReadCAIDA(strings.NewReader(sampleCAIDA), 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadCAIDA(strings.NewReader(sampleCAIDA), 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Nodes {
		if a.Nodes[i].Loc != b.Nodes[i].Loc {
			t.Fatal("CAIDA import not deterministic")
		}
	}
}

func TestReadCAIDARejectsGarbage(t *testing.T) {
	cases := []string{
		"174|1000",   // too few fields
		"x|1000|-1",  // bad ASN
		"174|1000|7", // unknown relationship
		"174|y|0",    // bad ASN
	}
	for _, c := range cases {
		if _, err := ReadCAIDA(strings.NewReader(c), 1); err == nil {
			t.Errorf("ReadCAIDA(%q) accepted garbage", c)
		}
	}
}

func TestAttachCDN(t *testing.T) {
	topo, err := ReadCAIDA(strings.NewReader(sampleCAIDA), 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AttachCDN(topo, 0, map[string]ASN{
		"east": 1000,
		"west": 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sites := got.NodesOfClass(ClassCDN)
	if len(sites) != 2 {
		t.Fatalf("got %d sites", len(sites))
	}
	for _, s := range sites {
		if s.ASN != 47065 {
			t.Fatalf("site ASN = %d", s.ASN)
		}
		if len(s.Adj) != 1 || s.Adj[0].Rel != RelProvider {
			t.Fatalf("site attachment = %+v", s.Adj)
		}
	}
	// Original structure preserved.
	if got.Len() != topo.Len()+2 {
		t.Fatalf("node count %d, want %d", got.Len(), topo.Len()+2)
	}
	if _, err := AttachCDN(topo, 0, map[string]ASN{"bad": 99999}); err == nil {
		t.Fatal("unknown provider AS accepted")
	}
}

func TestCAIDAImportRunsBGP(t *testing.T) {
	// End-to-end: an imported graph must converge under the BGP layer.
	// (Direct use here would import-cycle; the bgp package has its own
	// integration tests. Round-trip through the serializer instead.)
	topo, err := ReadCAIDA(strings.NewReader(sampleCAIDA), 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, topo); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != topo.Len() {
		t.Fatal("CAIDA import does not round-trip through the serializer")
	}
}
