package topology

import (
	"fmt"
	"slices"
	"sync"
)

// Clone returns a deep copy of the topology: nodes, adjacency lists, and
// lookup indices are all freshly allocated, so mutating the clone (or the
// original) never leaks into the other. Prefixes and locations are value
// types and copy naturally.
func (t *Topology) Clone() *Topology {
	c := &Topology{
		Nodes:  make([]*Node, len(t.Nodes)),
		byASN:  make(map[ASN][]NodeID, len(t.byASN)),
		byName: make(map[string]NodeID, len(t.byName)),
	}
	for i, n := range t.Nodes {
		cn := *n
		cn.Adj = slices.Clone(n.Adj)
		c.Nodes[i] = &cn
	}
	for asn, ids := range t.byASN {
		c.byASN[asn] = slices.Clone(ids)
	}
	for name, id := range t.byName {
		c.byName[name] = id
	}
	return c
}

// genCache memoizes Generate results. Generation is deterministic in
// GenConfig, and one experiment matrix regenerates the identical topology
// for every ⟨technique, failed site⟩ run, so paying the generator (random
// graph wiring, geo embedding, validation) once per distinct configuration
// is a large win. Entries hold the pristine generated topology; Cached hands
// out isolated clones.
var genCache = struct {
	sync.Mutex
	m map[string]*genEntry
}{m: map[string]*genEntry{}}

// genCacheCap bounds the number of retained topologies. Experiment suites
// use a handful of configurations; the cap only guards pathological callers
// sweeping hundreds of configs.
const genCacheCap = 32

type genEntry struct {
	once sync.Once
	topo *Topology
	err  error
}

// genKey canonicalizes a GenConfig into a cache key. GenConfig contains only
// value fields and a string slice, so the formatted representation is a
// faithful identity.
func genKey(cfg GenConfig) string {
	return fmt.Sprintf("%d|%d|%d|%d|%d|%d|%d|%d|%d|%q|%d|%d",
		cfg.Seed, cfg.NumTier1, cfg.NumTransit, cfg.NumRegional, cfg.NumREN,
		cfg.NumUniversity, cfg.NumEyeball, cfg.NumStub, cfg.NumHypergiant,
		cfg.SiteCodes, cfg.CDNASN, cfg.CDNSharedProviders)
}

// Cached returns the topology for cfg, generating it at most once per
// distinct configuration and returning an isolated deep copy on every call.
// It is safe for concurrent use; concurrent callers with the same cfg share
// one generation.
func Cached(cfg GenConfig) (*Topology, error) {
	key := genKey(cfg)
	genCache.Lock()
	e, ok := genCache.m[key]
	if !ok {
		if len(genCache.m) >= genCacheCap {
			// Cache full: generate without memoizing rather than evicting a
			// possibly hot entry.
			genCache.Unlock()
			return Generate(cfg)
		}
		e = &genEntry{}
		genCache.m[key] = e
	}
	genCache.Unlock()
	e.once.Do(func() {
		e.topo, e.err = Generate(cfg)
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.topo.Clone(), nil
}
