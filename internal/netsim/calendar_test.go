package netsim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestCalendarOrderingMatchesReference drives the calendar queue with a
// randomized schedule — near-bucket events, far-horizon events, exact ties,
// and re-scheduling from inside callbacks — and checks the execution order
// against a straightforward stable sort by (at, seq).
func TestCalendarOrderingMatchesReference(t *testing.T) {
	type rec struct {
		at Seconds
		id int
	}
	s := New(7)
	rng := rand.New(rand.NewSource(99))

	var want []rec
	var got []rec
	nextID := 0

	schedule := func(at Seconds) {
		id := nextID
		nextID++
		want = append(want, rec{at, id})
		s.At(at, func() {
			got = append(got, rec{at, id})
			// From inside a callback, occasionally schedule follow-ups both
			// within the calendar window and far beyond it.
			if id%5 == 0 && nextID < 3000 {
				d := rng.Float64() * 10
				fid := nextID
				nextID++
				fat := s.Now() + d
				want = append(want, rec{fat, fid})
				s.At(fat, func() { got = append(got, rec{fat, fid}) })
			}
		})
	}

	// Initial schedule: a mix of sub-bucket times, bucket-boundary times,
	// exact duplicates (ties broken by seq), and far-future events well past
	// the 64 s calendar horizon.
	for i := 0; i < 1500; i++ {
		switch i % 4 {
		case 0:
			schedule(rng.Float64() * 2) // dense near-future
		case 1:
			schedule(Seconds(i%32) * calWidth) // exact bucket boundaries, many ties
		case 2:
			schedule(rng.Float64() * 500) // spans several rebases
		case 3:
			schedule(100 + rng.Float64()*1000) // far heap
		}
	}
	s.Run()

	if len(got) != nextID {
		t.Fatalf("executed %d events, scheduled %d", len(got), nextID)
	}
	// Reference order: stable sort by time; equal times keep scheduling
	// order, which is exactly the (at, seq) tie-break.
	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got {at=%v id=%d}, want {at=%v id=%d}",
				i, got[i].at, got[i].id, want[i].at, want[i].id)
		}
	}
}

// TestCalendarRunUntilBoundary checks that RunUntil with a deadline between
// events leaves later events queued, including events in the far heap.
func TestCalendarRunUntilBoundary(t *testing.T) {
	s := New(1)
	fired := map[string]bool{}
	s.At(0.5, func() { fired["a"] = true })
	s.At(63.99, func() { fired["b"] = true }) // last near bucket
	s.At(64.01, func() { fired["c"] = true }) // just past the horizon: far heap
	s.At(500, func() { fired["d"] = true })

	s.RunUntil(63.99)
	if !fired["a"] || !fired["b"] || fired["c"] || fired["d"] {
		t.Fatalf("after RunUntil(63.99): %v", fired)
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	s.Run()
	if !fired["c"] || !fired["d"] {
		t.Fatalf("after Run: %v", fired)
	}
	if s.Now() != 500 {
		t.Fatalf("now = %v, want 500", s.Now())
	}
}

// TestCalendarScheduleBeforeBase exercises the clamp path: after a rebase
// triggered by a far-future event, the clock may still trail the calendar
// base, and a callback-free At from model code at now must still order
// correctly against the rebased window.
func TestCalendarScheduleBeforeBase(t *testing.T) {
	s := New(1)
	var order []string
	s.At(200, func() {
		order = append(order, "far")
		// now == 200 == queue base after the rebase; schedule slightly
		// ahead and exactly at now.
		s.At(200, func() { order = append(order, "tie") })
		s.At(200.5, func() { order = append(order, "next") })
	})
	s.Run()
	want := []string{"far", "tie", "next"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestAtCallOrdering checks that AtCall events interleave with At events in
// strict (at, seq) order and deliver their argument.
func TestAtCallOrdering(t *testing.T) {
	s := New(1)
	var order []int
	push := func(arg any) { order = append(order, arg.(int)) }
	s.AtCall(1, push, 1)
	s.At(1, func() { order = append(order, 2) })
	s.AtCall(1, push, 3)
	s.AtCall(0.5, push, 0)
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

// TestTimerStopReleasesCallback pins the Timer.Stop fix: stopping a timer
// must drop the callback reference immediately instead of holding it until
// the original deadline.
func TestTimerStopReleasesCallback(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.AfterTimer(1000, func() { fired = true })
	s.RunUntil(1)
	tm.Stop()
	if tm.fn != nil {
		t.Fatal("Stop did not release the callback reference")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if s.Now() != 1000 {
		t.Fatalf("wrapper event should still advance the clock; now = %v", s.Now())
	}
}

// TestTimerFires checks the positive path after the Stop rework.
func TestTimerFires(t *testing.T) {
	s := New(1)
	fired := false
	s.AfterTimer(5, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
}
