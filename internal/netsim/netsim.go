// Package netsim provides a deterministic discrete-event simulation kernel.
//
// All higher layers of the simulator (BGP message propagation, MRAI timers,
// data-plane probing, DNS resolution) are expressed as timestamped events on
// a single virtual clock. Determinism is guaranteed by (a) a seeded random
// number source and (b) a strict total order on events: time first, then a
// monotonically increasing sequence number so that events scheduled earlier
// fire earlier when timestamps tie.
package netsim

import (
	"fmt"
	"math"
	"math/rand"

	"bestofboth/internal/obs"
)

// Seconds is the unit of virtual time used throughout the simulator.
type Seconds = float64

// Event is a scheduled callback on the simulator's virtual clock. Events
// carry either a plain closure (fn) or a shared function plus argument
// (afn, arg); the latter lets hot model paths recycle their payload structs
// through free-lists instead of allocating a fresh closure per event (see
// Sim.AtCall).
type event struct {
	at  Seconds
	seq uint64
	fn  func()
	afn func(any)
	arg any
}

func (e *event) run() {
	if e.afn != nil {
		e.afn(e.arg)
		return
	}
	e.fn()
}

// Calendar-queue geometry. Near-future events dominate the schedule (MRAI
// pacing, TCP-ordering nudges, probe ticks), so the queue keeps a calendar of
// fixed-width buckets covering calHorizon seconds ahead of the most recent
// rebase and spills everything further out into a small overflow heap. The
// bucket width is a power of two so the slot computation is an exact,
// monotone float scaling: a <= b always lands a in a bucket no later than b,
// which is what keeps execution order identical to a single global heap.
const (
	calSlots    = 1024
	calInvWidth = 16.0                         // buckets per second
	calWidth    = 1.0 / calInvWidth            // seconds per bucket
	calHorizon  = Seconds(calSlots) * calWidth // 64 s
	calSlotCap  = 4                            // pre-carved capacity per slot
	farHeapCap  = 64                           // pre-allocated overflow heap
)

// eventQueue is a two-level calendar queue ordered by (at, seq).
//
// Level one ("near") is a flat array of calSlots buckets; slot i holds
// events with at in [base + i*calWidth, base + (i+1)*calWidth), where base
// is the time of the last rebase. cur is the first slot that may still hold
// events; it only moves forward between rebases, so the array never wraps.
// Level two ("far") is a conventional binary min-heap holding everything at
// or beyond limit = base + calHorizon.
//
// Invariant: every near event is earlier than every far event (near events
// are < limit, far events >= limit, and limit only changes on a rebase,
// which happens when near is empty). pop therefore drains near completely
// before consulting far. Within the active slot the minimum is found by a
// linear scan with the exact (at, seq) comparator, so the execution order is
// bit-identical to the old global binary heap.
type eventQueue struct {
	near  [][]event //cdnlint:nosnapshot snapshots require an empty queue; pending events hold closures over model state
	cur   int       //cdnlint:nosnapshot calendar position; meaningless while the queue is empty
	base  Seconds   //cdnlint:nosnapshot any value is valid: late pushes spill to far and settle rebases
	limit Seconds   //cdnlint:nosnapshot any value is valid: late pushes spill to far and settle rebases
	nearN int
	far   farHeap
}

func newEventQueue() eventQueue {
	// One backing array, re-sliced per slot: slots keep their carved
	// capacity across rebases, so the steady-state event path never
	// allocates (pinned by TestEventPathZeroAllocs).
	backing := make([]event, calSlots*calSlotCap)
	near := make([][]event, calSlots)
	for i := range near {
		near[i] = backing[i*calSlotCap : i*calSlotCap : (i+1)*calSlotCap]
	}
	return eventQueue{
		near:  near,
		base:  0,
		limit: calHorizon,
		far:   make(farHeap, 0, farHeapCap),
	}
}

func (q *eventQueue) len() int { return q.nearN + len(q.far) }

func (q *eventQueue) push(e event) {
	if e.at >= q.limit {
		q.far.push(e)
		return
	}
	idx := int((e.at - q.base) * calInvWidth)
	// Clamp defensively: at can sit below base right after a peek-driven
	// rebase (the clock has not caught up yet), and boundary rounding can
	// land exactly on calSlots. Clamping only ever moves an event to an
	// earlier slot, which the exact in-slot scan handles.
	if idx < q.cur {
		idx = q.cur
	}
	if idx >= calSlots {
		idx = calSlots - 1
	}
	q.near[idx] = append(q.near[idx], e)
	q.nearN++
}

// settle advances cur to the first non-empty slot, rebasing the calendar
// from the overflow heap when the near level is exhausted. Returns false if
// the queue is empty.
func (q *eventQueue) settle() bool {
	if q.nearN == 0 {
		if len(q.far) == 0 {
			return false
		}
		// Rebase: restart the calendar window at the earliest far event and
		// migrate everything inside the new window down into the buckets.
		q.cur = 0
		q.base = q.far[0].at
		q.limit = q.base + calHorizon
		for len(q.far) > 0 && q.far[0].at < q.limit {
			e := q.far.pop()
			idx := int((e.at - q.base) * calInvWidth)
			if idx >= calSlots {
				idx = calSlots - 1
			}
			q.near[idx] = append(q.near[idx], e)
			q.nearN++
		}
		return true
	}
	for len(q.near[q.cur]) == 0 {
		q.cur++
	}
	return true
}

// minIdx returns the index of the earliest event in the active slot.
func (q *eventQueue) minIdx() int {
	slot := q.near[q.cur]
	m := 0
	for i := 1; i < len(slot); i++ {
		if slot[i].at < slot[m].at || (slot[i].at == slot[m].at && slot[i].seq < slot[m].seq) {
			m = i
		}
	}
	return m
}

// peekAt returns the timestamp of the earliest pending event.
func (q *eventQueue) peekAt() (Seconds, bool) {
	if !q.settle() {
		return 0, false
	}
	return q.near[q.cur][q.minIdx()].at, true
}

func (q *eventQueue) pop() event {
	q.settle()
	slot := q.near[q.cur]
	m := q.minIdx()
	e := slot[m]
	last := len(slot) - 1
	slot[m] = slot[last]
	slot[last] = event{} // release callbacks for GC
	q.near[q.cur] = slot[:last]
	q.nearN--
	return e
}

// farHeap is a binary min-heap of events ordered by (at, seq), holding the
// overflow beyond the calendar horizon.
type farHeap []event

func (h farHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *farHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *farHeap) pop() event {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = event{} // release the callback for GC
	q = q[:last]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q) && q.less(l, small) {
			small = l
		}
		if r < len(q) && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return top
}

// countingSource wraps the stdlib random source and counts draws, so that a
// simulator's RNG state can be reproduced exactly by fast-forwarding a fresh
// source seeded identically (see Snapshot/Restore). It delegates without
// altering the draw sequence.
type countingSource struct {
	src   rand.Source64 //cdnlint:nosnapshot reconstructed by reseeding and fast-forwarding draws on restore
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// Sim is a discrete-event simulator with a virtual clock.
//
// Sim is not safe for concurrent use: the simulation model is single
// threaded by design so that runs are reproducible bit-for-bit. Distinct Sim
// instances are fully independent and may run on concurrent goroutines.
type Sim struct {
	now    Seconds
	seq    uint64
	queue  eventQueue
	src    *countingSource
	rng    *rand.Rand //cdnlint:nosnapshot view over src, which restore reseeds and fast-forwards
	nSteps uint64

	// driver, when non-nil, coordinates this simulator as the facade of a
	// multi-simulator group: Run, RunUntil, and Pending delegate to it so
	// existing call sites drive the whole group transparently (see
	// ShardRunner).
	driver Driver //cdnlint:nosnapshot wiring: drivers are re-attached when the world is rebuilt

	// Metrics are nil until Instrument attaches a registry; all of the
	// methods below no-op on nil receivers, so the uninstrumented event
	// path stays allocation-free (pinned by TestEventPathZeroAllocs).
	mSteps     *obs.Counter
	mScheduled *obs.Counter
	mQueueMax  *obs.Gauge
	mClockMax  *obs.Gauge
	mHorizon   *obs.Histogram
}

// New returns a simulator whose random source is seeded with seed.
// Two simulators built with the same seed and fed the same schedule of
// events produce identical executions.
func New(seed int64) *Sim {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Sim{src: src, rng: rand.New(src), queue: newEventQueue()}
}

// Instrument attaches kernel metrics to r: events scheduled and executed,
// the high-water queue depth, the furthest virtual clock reached, and the
// scheduling-horizon distribution (how far ahead of now events are placed).
// Instrumentation never changes execution — it draws no randomness and
// schedules nothing — so instrumented and bare runs are bit-identical.
// A nil registry detaches.
func (s *Sim) Instrument(r *obs.Registry) {
	s.mSteps = r.Counter("netsim_events_executed_total")
	s.mScheduled = r.Counter("netsim_events_scheduled_total")
	s.mQueueMax = r.Gauge("netsim_queue_depth_max")
	s.mClockMax = r.Gauge("netsim_virtual_time_max_seconds")
	s.mHorizon = r.Histogram("netsim_event_horizon_seconds",
		0.001, 0.01, 0.1, 1, 10, 60, 600, 3600)
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() Seconds { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.nSteps }

// Rand exposes the simulator's deterministic random source. Model code must
// draw all randomness from this source to preserve reproducibility.
func (s *Sim) Rand() *rand.Rand { return s.rng }

//cdnlint:allocfree
func (s *Sim) schedule(e event) {
	if e.at < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %.6f before now %.6f", e.at, s.now))
	}
	if math.IsNaN(e.at) || math.IsInf(e.at, 0) {
		panic(fmt.Sprintf("netsim: invalid event time %v", e.at))
	}
	s.seq++
	e.seq = s.seq
	s.queue.push(e)
	// All metric fields are set together by Instrument, so one nil check
	// gates the whole group; Observe and SetMax do not inline, and the
	// disabled path must not pay their call overhead.
	if s.mScheduled != nil {
		s.mScheduled.Inc()
		s.mHorizon.Observe(e.at - s.now)
		s.mQueueMax.SetMax(float64(s.queue.len()))
	}
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a model bug and silently reordering events
// would destroy determinism.
func (s *Sim) At(at Seconds, fn func()) {
	s.schedule(event{at: at, fn: fn})
}

// AtCall schedules fn(arg) at absolute virtual time at. Unlike At, the
// callback and its payload are stored separately, so model code that fires
// the same function with recycled argument structs (free-listed message
// deliveries, pending-export timers) schedules without allocating a closure.
//
//cdnlint:allocfree
func (s *Sim) AtCall(at Seconds, fn func(any), arg any) {
	s.schedule(event{at: at, afn: fn, arg: arg})
}

// After schedules fn to run d seconds from the current virtual time.
func (s *Sim) After(d Seconds, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Jitter returns a uniformly distributed delay in [lo, hi). It is a
// convenience for model code that randomizes processing and propagation
// times.
func (s *Sim) Jitter(lo, hi Seconds) Seconds {
	if hi <= lo {
		return lo
	}
	return lo + s.rng.Float64()*(hi-lo)
}

// SetDriver attaches (or, with nil, detaches) a Driver. While attached, Run,
// RunUntil, and Pending delegate to the driver, which is expected to advance
// this simulator as part of its group. Step stays local: drivers use it (via
// the unexported locals) to advance members without recursing.
func (s *Sim) SetDriver(d Driver) { s.driver = d }

// Pending reports the number of events waiting to run. With a driver
// attached it reports the whole group's pending work.
func (s *Sim) Pending() int {
	if s.driver != nil {
		return s.driver.Pending()
	}
	return s.queue.len()
}

// pendingLocal reports only this simulator's queued events, ignoring any
// attached driver.
func (s *Sim) pendingLocal() int { return s.queue.len() }

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
//
//cdnlint:allocfree
func (s *Sim) Step() bool {
	if s.queue.len() == 0 {
		return false
	}
	e := s.queue.pop()
	s.now = e.at
	s.nSteps++
	if s.mSteps != nil {
		s.mSteps.Inc()
		s.mClockMax.SetMax(e.at)
	}
	e.run()
	return true
}

// Run executes events until the queue is empty. With a driver attached it
// runs the whole group to completion.
func (s *Sim) Run() {
	if s.driver != nil {
		s.driver.Run()
		return
	}
	s.runLocal()
}

func (s *Sim) runLocal() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to deadline. Events scheduled after deadline remain queued. With a
// driver attached it advances the whole group to deadline.
func (s *Sim) RunUntil(deadline Seconds) {
	if s.driver != nil {
		s.driver.RunUntil(deadline)
		return
	}
	s.runUntilLocal(deadline)
}

func (s *Sim) runUntilLocal(deadline Seconds) {
	for {
		at, ok := s.queue.peekAt()
		if !ok || at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for d seconds of virtual time from now.
func (s *Sim) RunFor(d Seconds) { s.RunUntil(s.now + d) }

// Snapshot captures the kernel state of a quiescent simulator: the clock,
// the event sequence counter, and the RNG position. Snapshots are only
// possible when the event queue is empty — pending events hold closures over
// model state that cannot be transplanted — which is exactly the state a
// fully converged network leaves behind.
type Snapshot struct {
	Now   Seconds
	seq   uint64
	steps uint64
	draws uint64
}

// Snapshot captures the current kernel state. It fails if events are
// pending.
func (s *Sim) Snapshot() (Snapshot, error) {
	if s.queue.len() != 0 {
		return Snapshot{}, fmt.Errorf("netsim: cannot snapshot with %d pending events", s.queue.len())
	}
	return Snapshot{Now: s.now, seq: s.seq, steps: s.nSteps, draws: s.src.draws}, nil
}

// Restore brings a simulator to a previously captured kernel state. The
// receiver must be freshly built with the same seed as the snapshotted
// simulator and must not have consumed more randomness than the snapshot
// recorded: the RNG is fast-forwarded, never rewound. After Restore the
// simulator produces the exact event timings and random draws the
// snapshotted one would.
func (s *Sim) Restore(snap Snapshot) error {
	if s.queue.len() != 0 {
		return fmt.Errorf("netsim: cannot restore with %d pending events", s.queue.len())
	}
	if s.src.draws > snap.draws {
		return fmt.Errorf("netsim: restore target has consumed %d draws, snapshot has %d", s.src.draws, snap.draws)
	}
	for s.src.draws < snap.draws {
		s.src.src.Int63()
		s.src.draws++
	}
	s.now = snap.Now
	s.seq = snap.seq
	s.nSteps = snap.steps
	return nil
}

// Timer is a cancellable scheduled event.
type Timer struct {
	fn func()
}

// AfterTimer schedules fn after d seconds and returns a handle that can stop
// it. A stopped timer's callback never runs.
func (s *Sim) AfterTimer(d Seconds, fn func()) *Timer {
	t := &Timer{fn: fn}
	s.After(d, t.fire)
	return t
}

func (t *Timer) fire() {
	if t.fn != nil {
		t.fn()
	}
}

// Stop prevents the timer's callback from running if it has not fired yet.
// The callback reference is dropped immediately, so whatever model state the
// closure captured becomes collectable at stop time rather than being pinned
// until the timer's original deadline.
func (t *Timer) Stop() { t.fn = nil }
