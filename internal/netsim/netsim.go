// Package netsim provides a deterministic discrete-event simulation kernel.
//
// All higher layers of the simulator (BGP message propagation, MRAI timers,
// data-plane probing, DNS resolution) are expressed as timestamped events on
// a single virtual clock. Determinism is guaranteed by (a) a seeded random
// number source and (b) a strict total order on events: time first, then a
// monotonically increasing sequence number so that events scheduled earlier
// fire earlier when timestamps tie.
package netsim

import (
	"fmt"
	"math"
	"math/rand"

	"bestofboth/internal/obs"
)

// Seconds is the unit of virtual time used throughout the simulator.
type Seconds = float64

// Event is a scheduled callback on the simulator's virtual clock.
type event struct {
	at  Seconds
	seq uint64
	fn  func()
}

// eventQueue is a binary min-heap of events ordered by (at, seq). Events are
// stored by value: the heap is the hottest allocation site in the whole
// simulator, and a value-based heap with hand-rolled sift operations avoids
// both the per-event pointer allocation and the interface boxing of
// container/heap.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = event{} // release the callback for GC
	h = h[:last]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h.less(l, small) {
			small = l
		}
		if r < len(h) && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// countingSource wraps the stdlib random source and counts draws, so that a
// simulator's RNG state can be reproduced exactly by fast-forwarding a fresh
// source seeded identically (see Snapshot/Restore). It delegates without
// altering the draw sequence.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// Sim is a discrete-event simulator with a virtual clock.
//
// Sim is not safe for concurrent use: the simulation model is single
// threaded by design so that runs are reproducible bit-for-bit. Distinct Sim
// instances are fully independent and may run on concurrent goroutines.
type Sim struct {
	now    Seconds
	seq    uint64
	queue  eventQueue
	src    *countingSource
	rng    *rand.Rand
	nSteps uint64

	// Metrics are nil until Instrument attaches a registry; all of the
	// methods below no-op on nil receivers, so the uninstrumented event
	// path stays allocation-free (pinned by TestEventPathZeroAllocs).
	mSteps     *obs.Counter
	mScheduled *obs.Counter
	mQueueMax  *obs.Gauge
	mClockMax  *obs.Gauge
	mHorizon   *obs.Histogram
}

// New returns a simulator whose random source is seeded with seed.
// Two simulators built with the same seed and fed the same schedule of
// events produce identical executions.
func New(seed int64) *Sim {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Sim{src: src, rng: rand.New(src)}
}

// Instrument attaches kernel metrics to r: events scheduled and executed,
// the high-water queue depth, the furthest virtual clock reached, and the
// scheduling-horizon distribution (how far ahead of now events are placed).
// Instrumentation never changes execution — it draws no randomness and
// schedules nothing — so instrumented and bare runs are bit-identical.
// A nil registry detaches.
func (s *Sim) Instrument(r *obs.Registry) {
	s.mSteps = r.Counter("netsim_events_executed_total")
	s.mScheduled = r.Counter("netsim_events_scheduled_total")
	s.mQueueMax = r.Gauge("netsim_queue_depth_max")
	s.mClockMax = r.Gauge("netsim_virtual_time_max_seconds")
	s.mHorizon = r.Histogram("netsim_event_horizon_seconds",
		0.001, 0.01, 0.1, 1, 10, 60, 600, 3600)
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() Seconds { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.nSteps }

// Rand exposes the simulator's deterministic random source. Model code must
// draw all randomness from this source to preserve reproducibility.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a model bug and silently reordering events
// would destroy determinism.
func (s *Sim) At(at Seconds, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %.6f before now %.6f", at, s.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("netsim: invalid event time %v", at))
	}
	s.seq++
	s.queue.push(event{at: at, seq: s.seq, fn: fn})
	// All metric fields are set together by Instrument, so one nil check
	// gates the whole group; Observe and SetMax do not inline, and the
	// disabled path must not pay their call overhead.
	if s.mScheduled != nil {
		s.mScheduled.Inc()
		s.mHorizon.Observe(at - s.now)
		s.mQueueMax.SetMax(float64(len(s.queue)))
	}
}

// After schedules fn to run d seconds from the current virtual time.
func (s *Sim) After(d Seconds, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Jitter returns a uniformly distributed delay in [lo, hi). It is a
// convenience for model code that randomizes processing and propagation
// times.
func (s *Sim) Jitter(lo, hi Seconds) Seconds {
	if hi <= lo {
		return lo
	}
	return lo + s.rng.Float64()*(hi-lo)
}

// Pending reports the number of events waiting to run.
func (s *Sim) Pending() int { return len(s.queue) }

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue.pop()
	s.now = e.at
	s.nSteps++
	if s.mSteps != nil {
		s.mSteps.Inc()
		s.mClockMax.SetMax(e.at)
	}
	e.fn()
	return true
}

// Run executes events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to deadline. Events scheduled after deadline remain queued.
func (s *Sim) RunUntil(deadline Seconds) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for d seconds of virtual time from now.
func (s *Sim) RunFor(d Seconds) { s.RunUntil(s.now + d) }

// Snapshot captures the kernel state of a quiescent simulator: the clock,
// the event sequence counter, and the RNG position. Snapshots are only
// possible when the event queue is empty — pending events hold closures over
// model state that cannot be transplanted — which is exactly the state a
// fully converged network leaves behind.
type Snapshot struct {
	Now   Seconds
	seq   uint64
	steps uint64
	draws uint64
}

// Snapshot captures the current kernel state. It fails if events are
// pending.
func (s *Sim) Snapshot() (Snapshot, error) {
	if len(s.queue) != 0 {
		return Snapshot{}, fmt.Errorf("netsim: cannot snapshot with %d pending events", len(s.queue))
	}
	return Snapshot{Now: s.now, seq: s.seq, steps: s.nSteps, draws: s.src.draws}, nil
}

// Restore brings a simulator to a previously captured kernel state. The
// receiver must be freshly built with the same seed as the snapshotted
// simulator and must not have consumed more randomness than the snapshot
// recorded: the RNG is fast-forwarded, never rewound. After Restore the
// simulator produces the exact event timings and random draws the
// snapshotted one would.
func (s *Sim) Restore(snap Snapshot) error {
	if len(s.queue) != 0 {
		return fmt.Errorf("netsim: cannot restore with %d pending events", len(s.queue))
	}
	if s.src.draws > snap.draws {
		return fmt.Errorf("netsim: restore target has consumed %d draws, snapshot has %d", s.src.draws, snap.draws)
	}
	for s.src.draws < snap.draws {
		s.src.src.Int63()
		s.src.draws++
	}
	s.now = snap.Now
	s.seq = snap.seq
	s.nSteps = snap.steps
	return nil
}

// Timer is a cancellable scheduled event.
type Timer struct {
	stopped bool
}

// AfterTimer schedules fn after d seconds and returns a handle that can stop
// it. A stopped timer's callback never runs.
func (s *Sim) AfterTimer(d Seconds, fn func()) *Timer {
	t := &Timer{}
	s.After(d, func() {
		if !t.stopped {
			fn()
		}
	})
	return t
}

// Stop prevents the timer's callback from running if it has not fired yet.
func (t *Timer) Stop() { t.stopped = true }
