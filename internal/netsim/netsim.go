// Package netsim provides a deterministic discrete-event simulation kernel.
//
// All higher layers of the simulator (BGP message propagation, MRAI timers,
// data-plane probing, DNS resolution) are expressed as timestamped events on
// a single virtual clock. Determinism is guaranteed by (a) a seeded random
// number source and (b) a strict total order on events: time first, then a
// monotonically increasing sequence number so that events scheduled earlier
// fire earlier when timestamps tie.
package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Seconds is the unit of virtual time used throughout the simulator.
type Seconds = float64

// Event is a scheduled callback on the simulator's virtual clock.
type event struct {
	at  Seconds
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulator with a virtual clock.
//
// Sim is not safe for concurrent use: the simulation model is single
// threaded by design so that runs are reproducible bit-for-bit.
type Sim struct {
	now    Seconds
	seq    uint64
	queue  eventQueue
	rng    *rand.Rand
	nSteps uint64
}

// New returns a simulator whose random source is seeded with seed.
// Two simulators built with the same seed and fed the same schedule of
// events produce identical executions.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() Seconds { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.nSteps }

// Rand exposes the simulator's deterministic random source. Model code must
// draw all randomness from this source to preserve reproducibility.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a model bug and silently reordering events
// would destroy determinism.
func (s *Sim) At(at Seconds, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %.6f before now %.6f", at, s.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("netsim: invalid event time %v", at))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run d seconds from the current virtual time.
func (s *Sim) After(d Seconds, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("netsim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Jitter returns a uniformly distributed delay in [lo, hi). It is a
// convenience for model code that randomizes processing and propagation
// times.
func (s *Sim) Jitter(lo, hi Seconds) Seconds {
	if hi <= lo {
		return lo
	}
	return lo + s.rng.Float64()*(hi-lo)
}

// Pending reports the number of events waiting to run.
func (s *Sim) Pending() int { return len(s.queue) }

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	s.nSteps++
	e.fn()
	return true
}

// Run executes events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to deadline. Events scheduled after deadline remain queued.
func (s *Sim) RunUntil(deadline Seconds) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor executes events for d seconds of virtual time from now.
func (s *Sim) RunFor(d Seconds) { s.RunUntil(s.now + d) }

// Timer is a cancellable scheduled event.
type Timer struct {
	stopped bool
}

// AfterTimer schedules fn after d seconds and returns a handle that can stop
// it. A stopped timer's callback never runs.
func (s *Sim) AfterTimer(d Seconds, fn func()) *Timer {
	t := &Timer{}
	s.After(d, func() {
		if !t.stopped {
			fn()
		}
	})
	return t
}

// Stop prevents the timer's callback from running if it has not fired yet.
func (t *Timer) Stop() { t.stopped = true }
