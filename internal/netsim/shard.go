package netsim

import (
	"fmt"
	"math"
	"sync"
	"time"

	"bestofboth/internal/obs"
)

// Driver coordinates a group of simulators behind one facade Sim. A Sim
// with a driver attached delegates Run, RunUntil, and Pending to it, so
// code written against a single kernel (scenario timelines, converge
// loops, snapshot gating) drives the whole group without change.
type Driver interface {
	// RunUntil advances the whole group to deadline: every member executes
	// its events with timestamps <= deadline and ends with its clock at
	// deadline.
	RunUntil(deadline Seconds)
	// Run executes the whole group to quiescence.
	Run()
	// Pending reports the group's total queued (and in-transit) events.
	Pending() int
}

// Exchanger is the model-layer half of the barrier protocol: it owns the
// per-(src,dst)-shard mailboxes that buffer cross-shard messages during a
// round. The runner calls it only between rounds, single-threaded.
type Exchanger interface {
	// MailboxPending reports buffered cross-shard messages not yet merged
	// into destination queues.
	MailboxPending() int
	// Merge schedules every buffered message into its destination
	// simulator, in deterministic (source shard, source sequence) order,
	// and empties the mailboxes.
	Merge()
}

// ShardRunner executes one logical simulation spread across n shard
// simulators plus one control simulator, in deterministic phase-barrier
// rounds.
//
// The protocol is conservative time-stepped parallel discrete-event
// simulation: all cross-shard interaction is buffered into mailboxes and
// carries at least `window` seconds of virtual latency (the lookahead —
// minimum cross-shard link delay plus minimum processing delay), so any
// message emitted inside a round arrives strictly after the round's
// horizon T and cannot affect events the other shards are concurrently
// executing. Each round:
//
//  1. merge mailboxes left over from the previous round (or seeded by
//     control-context model calls);
//  2. pick the horizon T = min(next + window, tc), where next is the
//     earliest pending event anywhere (idle periods are skipped, not
//     stepped through) and tc is the control simulator's earliest event —
//     bounding by tc means every control event runs with all shards
//     parked exactly at its timestamp, preserving sequential fault/probe
//     semantics;
//  3. run every shard to T concurrently (shards with no events in the
//     window just advance their clocks);
//  4. merge the mailboxes filled during the round, in sorted (source
//     shard, sequence) order;
//  5. run the control simulator to T.
//
// All clocks advance in lockstep: after every round each member sits
// exactly at T. Worker goroutines live for one Run/RunUntil call; the
// WaitGroup and channel handoffs order every shard access between the
// coordinator and the workers, so runs are race-detector clean.
type ShardRunner struct {
	control *Sim
	shards  []*Sim
	window  Seconds
	exch    Exchanger

	// busy is the per-round scratch list of shard indices with work in the
	// window, reused across rounds.
	busy []int

	// rounds counts barrier rounds executed. Unlike the metrics below it is
	// always maintained: round counts are deterministic for a fixed
	// configuration, and partition tuning reads them to judge how coarse a
	// lookahead window keeps the rounds.
	rounds uint64

	// Metrics (nil until Instrument). Round and event counts are
	// deterministic for a fixed configuration; the barrier-stall histogram
	// is wall-clock and registered volatile.
	mRounds *obs.Counter
	mStall  *obs.Histogram
}

// NewShardRunner builds a runner over control and shards and attaches
// itself as control's driver. window is the lookahead in virtual seconds
// and must be positive: a non-positive window means the partition has a
// cross-shard edge with no latency to hide behind, and the caller must
// refuse to shard.
func NewShardRunner(control *Sim, shards []*Sim, window Seconds, exch Exchanger) (*ShardRunner, error) {
	if window <= 0 || math.IsInf(window, 1) || math.IsNaN(window) {
		return nil, fmt.Errorf("netsim: invalid lookahead window %g", window)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("netsim: shard runner needs at least one shard")
	}
	r := &ShardRunner{control: control, shards: shards, window: window, exch: exch}
	control.SetDriver(r)
	return r, nil
}

// Window returns the lookahead window in virtual seconds.
func (r *ShardRunner) Window() Seconds { return r.window }

// Rounds returns the number of barrier rounds executed so far. Rounds are
// deterministic for a fixed (configuration, shard count, partition):
// fewer rounds for the same workload means a wider effective lookahead and
// less barrier overhead.
func (r *ShardRunner) Rounds() uint64 { return r.rounds }

// ShardSteps returns the number of events each shard simulator has
// executed so far, in shard-index order — the per-shard work profile whose
// max/mean ratio is the event imbalance a partitioner is judged on.
func (r *ShardRunner) ShardSteps() []uint64 {
	steps := make([]uint64, len(r.shards))
	for i, sh := range r.shards {
		steps[i] = sh.Steps()
	}
	return steps
}

// Instrument attaches runner metrics to reg: barrier rounds executed
// (deterministic) and the wall-clock barrier stall distribution (volatile —
// it measures this machine, not the model).
func (r *ShardRunner) Instrument(reg *obs.Registry) {
	r.mRounds = reg.Counter("netsim_shard_rounds_total")
	r.mStall = reg.VolatileHistogram("netsim_shard_barrier_stall_seconds",
		1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1)
}

// Pending reports queued events across the control simulator, all shards,
// and the unmerged mailboxes.
func (r *ShardRunner) Pending() int {
	n := r.control.pendingLocal()
	for _, sh := range r.shards {
		n += sh.pendingLocal()
	}
	return n + r.exch.MailboxPending()
}

// RunUntil advances the whole group to deadline: all events with
// timestamps <= deadline execute, then every clock (shards and control)
// lands exactly on deadline.
func (r *ShardRunner) RunUntil(deadline Seconds) {
	r.runRounds(deadline)
	for _, sh := range r.shards {
		sh.runUntilLocal(deadline)
	}
	r.control.runUntilLocal(deadline)
}

// Run executes the whole group to quiescence. Clocks end at the last
// barrier rather than being pushed to any deadline.
func (r *ShardRunner) Run() {
	r.runRounds(math.Inf(1))
}

// Drain is Run bounded by a virtual-time budget: rounds execute only while
// the earliest pending event lies at or before deadline, and clocks are
// left at the last barrier instead of being advanced to the deadline.
// This is the sharded analogue of the step-until-quiet converge loop.
func (r *ShardRunner) Drain(deadline Seconds) {
	r.runRounds(deadline)
}

// runRounds executes barrier rounds while the earliest pending event in
// the group is at or before limit.
func (r *ShardRunner) runRounds(limit Seconds) {
	var (
		started bool
		wg      sync.WaitGroup
		work    []chan Seconds
	)
	defer func() {
		if started {
			for _, ch := range work {
				close(ch)
			}
		}
	}()

	for {
		r.exch.Merge()

		// Earliest pending event anywhere decides whether another round
		// runs, and where its window starts (idle gaps are skipped).
		next := math.Inf(1)
		tc, okc := r.control.queue.peekAt()
		if okc {
			next = tc
		}
		for _, sh := range r.shards {
			if ts, ok := sh.queue.peekAt(); ok && ts < next {
				next = ts
			}
		}
		if next > limit || math.IsInf(next, 1) {
			// No event at or before the limit — drained, or the rest is the
			// caller's problem. The explicit +Inf check matters when limit is
			// itself +Inf (Run): Inf > Inf is false.
			return
		}

		T := next + r.window
		if okc && tc < T {
			// Never run a window past the next control event: control
			// actions (faults, probes, timeline events) must see every
			// shard parked exactly at their timestamp.
			T = tc
		}
		if T > limit {
			T = limit
		}

		r.busy = r.busy[:0]
		for i, sh := range r.shards {
			if ts, ok := sh.queue.peekAt(); ok && ts <= T {
				r.busy = append(r.busy, i)
			}
		}
		switch {
		case len(r.busy) <= 1:
			// Zero or one shard has work in the window: run inline and
			// skip the goroutine handoff entirely.
			for _, i := range r.busy {
				r.shards[i].runUntilLocal(T)
			}
		default:
			if !started {
				started = true
				work = make([]chan Seconds, len(r.shards))
				for i := range r.shards {
					work[i] = make(chan Seconds)
					go func(sh *Sim, ch chan Seconds) {
						for t := range ch {
							sh.runUntilLocal(t)
							wg.Done()
						}
					}(r.shards[i], work[i])
				}
			}
			wg.Add(len(r.busy))
			for _, i := range r.busy {
				work[i] <- T
			}
			var t0 time.Time
			if r.mStall != nil {
				//lint:ignore cdnlint/detrand the stall histogram is a volatile metric measuring this machine, never the model
				t0 = time.Now()
			}
			wg.Wait()
			if r.mStall != nil {
				//lint:ignore cdnlint/detrand volatile wall-clock metric; excluded from deterministic snapshots
				r.mStall.Observe(time.Since(t0).Seconds())
			}
		}
		// Idle shards still advance to the barrier so all clocks stay in
		// lockstep (their queues have nothing at or before T).
		for _, sh := range r.shards {
			sh.runUntilLocal(T)
		}

		r.exch.Merge()
		r.control.runUntilLocal(T)
		r.rounds++
		if r.mRounds != nil {
			r.mRounds.Inc()
		}
	}
}
