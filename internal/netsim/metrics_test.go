package netsim

import (
	"testing"

	"bestofboth/internal/obs"
)

// TestEventPathZeroAllocs pins the tentpole cost contract: with no registry
// attached, scheduling and executing an event allocates nothing, and with a
// registry attached the metric updates themselves are allocation-free too.
func TestEventPathZeroAllocs(t *testing.T) {
	run := func(t *testing.T, sim *Sim) {
		t.Helper()
		fn := func() {}
		// Warm once so the event queue's backing array is grown.
		sim.After(1, fn)
		sim.Step()
		allocs := testing.AllocsPerRun(1000, func() {
			sim.After(1, fn)
			sim.Step()
		})
		if allocs != 0 {
			t.Fatalf("event path allocated %v times per schedule+step", allocs)
		}
	}
	t.Run("disabled", func(t *testing.T) { run(t, New(1)) })
	t.Run("instrumented", func(t *testing.T) {
		sim := New(1)
		sim.Instrument(obs.NewRegistry())
		run(t, sim)
	})
}

func TestInstrumentCountsKernelActivity(t *testing.T) {
	r := obs.NewRegistry()
	sim := New(7)
	sim.Instrument(r)

	const n = 5
	for i := 0; i < n; i++ {
		sim.After(float64(i+1), func() {})
	}
	sim.Run()

	if got := r.Counter("netsim_events_scheduled_total").Value(); got != n {
		t.Fatalf("scheduled = %d, want %d", got, n)
	}
	if got := r.Counter("netsim_events_executed_total").Value(); got != n {
		t.Fatalf("executed = %d, want %d", got, n)
	}
	if got := r.Gauge("netsim_queue_depth_max").Value(); got != n {
		t.Fatalf("queue depth max = %v, want %d", got, n)
	}
	if got := r.Gauge("netsim_virtual_time_max_seconds").Value(); got != n {
		t.Fatalf("virtual time max = %v, want %d", got, n)
	}
	if got := r.Histogram("netsim_event_horizon_seconds").Count(); got != n {
		t.Fatalf("horizon observations = %d, want %d", got, n)
	}
}

// TestInstrumentDoesNotPerturbExecution pins bit-identity: the same schedule
// with and without metrics produces the same clock, step count, and RNG
// stream.
func TestInstrumentDoesNotPerturbExecution(t *testing.T) {
	trace := func(instrument bool) (float64, uint64, float64) {
		sim := New(99)
		if instrument {
			sim.Instrument(obs.NewRegistry())
		}
		for i := 0; i < 50; i++ {
			sim.After(sim.Jitter(0.1, 2), func() {
				sim.After(sim.Jitter(0, 1), func() {})
			})
		}
		sim.Run()
		return sim.Now(), sim.Steps(), sim.Rand().Float64()
	}
	aNow, aSteps, aDraw := trace(false)
	bNow, bSteps, bDraw := trace(true)
	if aNow != bNow || aSteps != bSteps || aDraw != bDraw {
		t.Fatalf("instrumented run diverged: (%v,%d,%v) vs (%v,%d,%v)",
			aNow, aSteps, aDraw, bNow, bSteps, bDraw)
	}
}
