package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", s.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events ran out of schedule order: %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New(1)
	var at Seconds
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 15 {
		t.Fatalf("nested After fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := New(1)
	ran := map[int]bool{}
	s.At(1, func() { ran[1] = true })
	s.At(2, func() { ran[2] = true })
	s.At(3, func() { ran[3] = true })
	s.RunUntil(2)
	if !ran[1] || !ran[2] || ran[3] {
		t.Fatalf("RunUntil(2) ran wrong set: %v", ran)
	}
	if s.Now() != 2 {
		t.Fatalf("Now() = %v, want 2", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	s.Run()
	if !ran[3] {
		t.Fatal("event after deadline lost")
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := New(1)
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.AfterTimer(5, func() { fired = true })
	s.At(1, func() { tm.Stop() })
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerFiresWhenNotStopped(t *testing.T) {
	s := New(1)
	fired := false
	s.AfterTimer(5, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("timer did not fire")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []float64 {
		s := New(seed)
		var trace []float64
		// A little self-rescheduling process using the sim RNG.
		var tick func()
		n := 0
		tick = func() {
			trace = append(trace, s.Now())
			n++
			if n < 50 {
				s.After(s.Jitter(0.1, 2.0), tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestJitterBounds(t *testing.T) {
	s := New(3)
	f := func(a, b uint16) bool {
		lo, hi := float64(a), float64(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		j := s.Jitter(lo, hi)
		if hi <= lo {
			return j == lo
		}
		return j >= lo && j < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: executing N events scheduled at arbitrary non-negative times
// always yields a non-decreasing clock sequence.
func TestMonotonicClockProperty(t *testing.T) {
	f := func(times []float64) bool {
		s := New(1)
		var seen []float64
		for _, tm := range times {
			if tm < 0 {
				tm = -tm
			}
			if tm > 1e12 {
				tm = 1e12
			}
			s.At(tm, func() { seen = append(seen, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRestoreReproducesRun drives a simulator to a quiescent point,
// snapshots it, and checks that a fresh simulator restored from the snapshot
// continues with the exact same event timings and random draws.
func TestSnapshotRestoreReproducesRun(t *testing.T) {
	const seed = 99
	phase1 := func(s *Sim) {
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 40 {
				s.After(s.Jitter(0.1, 3.0), tick)
			}
		}
		s.After(0, tick)
		s.Run()
	}
	phase2 := func(s *Sim) []float64 {
		var trace []float64
		var tick func()
		n := 0
		tick = func() {
			trace = append(trace, s.Now(), s.Rand().Float64())
			n++
			if n < 30 {
				s.After(s.Jitter(0.2, 1.5), tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return trace
	}

	// Reference: one simulator runs both phases back to back.
	ref := New(seed)
	phase1(ref)
	want := phase2(ref)

	// Snapshot after phase 1 and restore into a fresh simulator.
	src := New(seed)
	phase1(src)
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := New(seed)
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Now() != src.Now() || restored.Steps() != src.Steps() {
		t.Fatalf("restored clock/steps = %v/%d, want %v/%d",
			restored.Now(), restored.Steps(), src.Now(), src.Steps())
	}
	got := phase2(restored)
	if len(got) != len(want) {
		t.Fatalf("trace lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored trace diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestSnapshotRefusesPendingEvents(t *testing.T) {
	s := New(1)
	s.At(5, func() {})
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot with pending events succeeded")
	}
	s.Run()
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("snapshot of quiescent sim failed: %v", err)
	}
}

func TestRestoreRefusesRewindingRNG(t *testing.T) {
	a := New(1)
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(1)
	b.Rand().Float64() // consume a draw the snapshot does not have
	if err := b.Restore(snap); err == nil {
		t.Fatal("restore rewound the RNG")
	}
}

func TestStepsCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 17; i++ {
		s.At(float64(i), func() {})
	}
	s.Run()
	if s.Steps() != 17 {
		t.Fatalf("Steps() = %d, want 17", s.Steps())
	}
}
