package netsim

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// testExchanger is a minimal model layer for runner tests: cross-shard
// messages are closures buffered per destination shard, merged at barriers
// in (source shard, sequence) order like the real BGP exchange.
type testExchanger struct {
	shards []*Sim
	// boxes[src][dst] holds messages buffered by shard src for shard dst.
	boxes [][][]testMsg
}

type testMsg struct {
	at Seconds
	fn func()
}

func newTestExchanger(shards []*Sim) *testExchanger {
	e := &testExchanger{shards: shards, boxes: make([][][]testMsg, len(shards))}
	for i := range e.boxes {
		e.boxes[i] = make([][]testMsg, len(shards))
	}
	return e
}

func (e *testExchanger) send(src, dst int, at Seconds, fn func()) {
	e.boxes[src][dst] = append(e.boxes[src][dst], testMsg{at: at, fn: fn})
}

func (e *testExchanger) MailboxPending() int {
	n := 0
	for _, row := range e.boxes {
		for _, box := range row {
			n += len(box)
		}
	}
	return n
}

func (e *testExchanger) Merge() {
	for src := range e.boxes {
		for dst, box := range e.boxes[src] {
			for _, m := range box {
				e.shards[dst].At(m.at, m.fn)
			}
			e.boxes[src][dst] = e.boxes[src][dst][:0]
		}
	}
}

func shardGroup(t *testing.T, n int, window Seconds) (*Sim, []*Sim, *testExchanger, *ShardRunner) {
	t.Helper()
	control := New(1)
	shards := make([]*Sim, n)
	for i := range shards {
		shards[i] = New(int64(100 + i))
	}
	exch := newTestExchanger(shards)
	r, err := NewShardRunner(control, shards, window, exch)
	if err != nil {
		t.Fatalf("NewShardRunner: %v", err)
	}
	return control, shards, exch, r
}

// TestShardRunnerLockstepAtControlEvents checks the core barrier invariant:
// a control event executes with every shard clock parked exactly at its
// timestamp, and all clocks land on the RunUntil deadline.
func TestShardRunnerLockstepAtControlEvents(t *testing.T) {
	control, shards, _, _ := shardGroup(t, 3, 1.0)

	// Keep the shards busy around the control events so windows would
	// otherwise stride past them.
	for i, sh := range shards {
		sh := sh
		for k := 0; k < 40; k++ {
			at := 0.05 * Seconds(k+i+1)
			sh.At(at, func() {})
		}
	}

	var got [][]Seconds
	for _, tc := range []Seconds{0.42, 0.77, 1.3} {
		tc := tc
		control.At(tc, func() {
			clocks := []Seconds{control.Now()}
			for _, sh := range shards {
				clocks = append(clocks, sh.Now())
			}
			got = append(got, clocks)
		})
	}

	control.RunUntil(5)

	want := [][]Seconds{
		{0.42, 0.42, 0.42, 0.42},
		{0.77, 0.77, 0.77, 0.77},
		{1.3, 1.3, 1.3, 1.3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("control events did not see lockstep clocks:\n got %v\nwant %v", got, want)
	}
	if control.Now() != 5 {
		t.Fatalf("control clock = %v, want 5", control.Now())
	}
	for i, sh := range shards {
		if sh.Now() != 5 {
			t.Fatalf("shard %d clock = %v, want 5", i, sh.Now())
		}
	}
	if control.Pending() != 0 {
		t.Fatalf("Pending = %d after full drain", control.Pending())
	}
}

// TestShardRunnerCrossShardOrdering checks that cross-shard messages with
// tied timestamps are delivered in (source shard, send sequence) order —
// the exchanger merges shard by shard and each destination kernel breaks
// timestamp ties by scheduling sequence.
func TestShardRunnerCrossShardOrdering(t *testing.T) {
	run := func() []string {
		control := New(1)
		shards := []*Sim{New(100), New(101), New(102)}
		exch := newTestExchanger(shards)
		if _, err := NewShardRunner(control, shards, 1.0, exch); err != nil {
			t.Fatalf("NewShardRunner: %v", err)
		}

		var log []string
		// Shards 1 and 2 both message shard 0 with the same arrival time;
		// each sends two messages. Sends happen inside round events so they
		// are buffered concurrently and merged at one barrier.
		for src := 1; src <= 2; src++ {
			src := src
			shards[src].At(0.1, func() {
				for k := 0; k < 2; k++ {
					src, k := src, k
					exch.send(src, 0, 2.5, func() {
						log = append(log, fmt.Sprintf("src%d-msg%d@%g", src, k, shards[0].Now()))
					})
				}
			})
		}
		control.RunUntil(10)
		return log
	}

	got := run()
	want := []string{
		"src1-msg0@2.5", "src1-msg1@2.5",
		"src2-msg0@2.5", "src2-msg1@2.5",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order:\n got %v\nwant %v", got, want)
	}
	// Determinism: an identical run produces the identical log.
	if again := run(); !reflect.DeepEqual(again, got) {
		t.Fatalf("second run diverged:\n got %v\nwant %v", again, got)
	}
}

// TestShardRunnerPendingCountsMailboxes checks that the driver's Pending
// aggregates queued events on every member plus unmerged mailbox traffic,
// all visible through the facade Sim.
func TestShardRunnerPendingCountsMailboxes(t *testing.T) {
	control, shards, exch, _ := shardGroup(t, 2, 1.0)

	control.At(1, func() {})
	shards[0].At(2, func() {})
	shards[1].At(3, func() {})
	exch.send(0, 1, 4, func() {})

	if got := control.Pending(); got != 4 {
		t.Fatalf("Pending = %d, want 4 (1 control + 2 shard + 1 mailbox)", got)
	}
	control.Run()
	if got := control.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
}

// TestShardRunnerDrainStopsAtBarrier checks Drain's converge semantics:
// events at or before the deadline execute, later events stay queued, and
// clocks rest at the last barrier instead of the deadline.
func TestShardRunnerDrainStopsAtBarrier(t *testing.T) {
	control, shards, _, r := shardGroup(t, 2, 1.0)

	ran := 0
	shards[0].At(0.5, func() { ran++ })
	shards[1].At(6.0, func() { ran++ })

	r.Drain(3)
	if ran != 1 {
		t.Fatalf("Drain(3) ran %d events, want 1", ran)
	}
	if control.Pending() != 1 {
		t.Fatalf("Pending = %d, want the t=6 event still queued", control.Pending())
	}
	if now := shards[0].Now(); now > 3 {
		t.Fatalf("shard 0 clock = %v, ran past the drain deadline", now)
	}

	r.Drain(10)
	if ran != 2 || control.Pending() != 0 {
		t.Fatalf("Drain(10): ran=%d pending=%d, want 2 and 0", ran, control.Pending())
	}
}

// TestShardRunnerWindowValidation checks constructor errors.
func TestShardRunnerWindowValidation(t *testing.T) {
	control := New(1)
	if _, err := NewShardRunner(control, []*Sim{New(2)}, 0, newTestExchanger(nil)); err == nil {
		t.Fatal("window 0 accepted")
	}
	if _, err := NewShardRunner(control, nil, 1, newTestExchanger(nil)); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewShardRunner(control, []*Sim{New(2)}, math.Inf(1), newTestExchanger(nil)); err == nil {
		// An infinite window would make T = +Inf and break clock lockstep.
		t.Fatal("infinite window accepted")
	}
}
