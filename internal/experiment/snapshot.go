package experiment

import (
	"fmt"

	"bestofboth/internal/bgp"
	"bestofboth/internal/collector"
	"bestofboth/internal/core"
	"bestofboth/internal/netsim"
)

// WorldSnapshot captures a fully converged world — kernel clock and RNG
// position, every speaker's RIBs and pacing state, the controller and DNS
// zone, and the collector archive — so that the expensive deploy-and-converge
// phase can be paid once per ⟨configuration, technique⟩ and reused by every
// per-site run. A snapshot is immutable and safe to restore from any number
// of goroutines concurrently.
type WorldSnapshot struct {
	cfg WorldConfig
	sim netsim.Snapshot
	net *bgp.NetworkSnapshot
	cdn *core.Snapshot
	col []collector.Record
}

// Snapshot captures the world's state. It fails if simulation events are
// pending: converge first, and if convergence did not finish within its
// deadline the world cannot be snapshotted (callers fall back to fresh
// runs).
func (w *World) Snapshot() (*WorldSnapshot, error) {
	simSnap, err := w.Sim.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("experiment: snapshotting kernel: %w", err)
	}
	netSnap, err := w.Net.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("experiment: snapshotting bgp: %w", err)
	}
	// The registry is process state, not simulation state: a snapshot must
	// not pin whoever built it. Restorers re-instrument with their own
	// registry (see Runner.materialize).
	cfg := w.Cfg
	cfg.Obs = nil
	return &WorldSnapshot{
		cfg: cfg,
		sim: simSnap,
		net: netSnap,
		cdn: w.CDN.Snapshot(),
		col: w.Collector.SnapshotArchive(),
	}, nil
}

// RestoreWorld materializes an independent world from a snapshot: it builds
// a fresh world from the snapshot's configuration (re-wiring all component
// callbacks) and then overwrites the mutable state — clock, RNG position,
// RIBs (replayed into the data plane), controller, zone, and archive — from
// the snapshot's. Protocol state restores copy-on-write: the immutable
// routes and origin policies are shared with the snapshot (and with sibling
// restores) by pointer, and a restored world allocates new ones only where
// it diverges after a fault. Everything mutable is copied, so the result is
// bit-identical to the world the snapshot was taken from and observationally
// isolated from it and from sibling restores.
func RestoreWorld(snap *WorldSnapshot) (*World, error) {
	w, err := NewWorld(snap.cfg)
	if err != nil {
		return nil, err
	}
	if err := w.Sim.Restore(snap.sim); err != nil {
		return nil, fmt.Errorf("experiment: restoring kernel: %w", err)
	}
	if err := w.Net.Restore(snap.net); err != nil {
		return nil, fmt.Errorf("experiment: restoring bgp: %w", err)
	}
	if err := w.CDN.Restore(snap.cdn); err != nil {
		return nil, fmt.Errorf("experiment: restoring cdn: %w", err)
	}
	w.Collector.RestoreArchive(snap.col)
	// The demand model was rebuilt by NewWorld; fold the restored FIBs so
	// the accountant matches the snapshotted world's converged load state.
	w.CDN.RefreshLoad()
	return w, nil
}
