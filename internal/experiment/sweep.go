package experiment

import (
	"fmt"

	"bestofboth/internal/core"
	"bestofboth/internal/stats"
)

// SweepPoint is one prepend depth in the control-vs-failover tradeoff
// curve (generalizing Appendix C.2's two-point comparison).
type SweepPoint struct {
	Depth int `json:"depth"`
	// MeanControl is the mean steerable share over sites' NotAnycast sets.
	MeanControl float64 `json:"meanControl"`
	// Reconnection/Failover distributions pooled across the failed sites.
	ReconP50    float64 `json:"reconP50"`
	FailoverP50 float64 `json:"failoverP50"`
	FailoverP90 float64 `json:"failoverP90"`
	Samples     int     `json:"samples"`
}

// PrependSweep measures traffic control and failover for a range of
// prepend depths — the §4 tradeoff ("if the other sites prepend more
// times, the CDN may get more traffic control... additional prepending
// will also make the backup routes longer, delaying failover") as a full
// curve. It delegates to a default Runner.
func PrependSweep(cfg WorldConfig, sel *Selection, depths []int, sites []string, fc FailoverConfig) ([]SweepPoint, error) {
	return (&Runner{}).PrependSweep(cfg, sel, depths, sites, fc)
}

// PrependSweep is the Runner-backed sweep: the failover matrix treats each
// depth as a technique, and each depth's control measurement runs on a world
// materialized from the same converged snapshot the failover runs reuse.
func (r *Runner) PrependSweep(cfg WorldConfig, sel *Selection, depths []int, sites []string, fc FailoverConfig) ([]SweepPoint, error) {
	techs := make([]core.Technique, 0, len(depths))
	for _, k := range depths {
		if k < 1 {
			return nil, fmt.Errorf("experiment: prepend depth %d", k)
		}
		techs = append(techs, core.ProactivePrepending{Prepends: k})
	}
	matrix, err := r.RunMatrix(cfg, sel, techs, sites, fc)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(depths))
	for di, k := range depths {
		// Control measurement: the steerable share over each site's
		// NotAnycast set on the converged pre-failure world.
		snap, err := r.convergedSnapshot(cfg, techs[di], fc.ConvergeTime)
		if err != nil {
			return nil, err
		}
		w, err := r.materialize(cfg, techs[di], fc.ConvergeTime, snap)
		if err != nil {
			return nil, err
		}
		var control float64
		counted := 0
		for _, st := range sel.Sites {
			if len(st.NotAnycast) == 0 {
				continue
			}
			s := w.CDN.Site(st.Code)
			ok := 0
			for _, id := range st.NotAnycast {
				if w.CDN.CanSteer(id, s) {
					ok++
				}
			}
			control += float64(ok) / float64(len(st.NotAnycast))
			counted++
		}
		if counted > 0 {
			control /= float64(counted)
		}

		// Failover distributions pooled over the requested sites.
		var recon, fail []float64
		for si := range sites {
			res := matrix[di][si]
			recon = append(recon, res.ReconnectionSamples(fc.ProbeDuration)...)
			fail = append(fail, res.FailoverSamples(fc.ProbeDuration)...)
		}
		rc, fc2 := stats.NewCDF(recon), stats.NewCDF(fail)
		out = append(out, SweepPoint{
			Depth:       k,
			MeanControl: control,
			ReconP50:    rc.Median(),
			FailoverP50: fc2.Median(),
			FailoverP90: fc2.Percentile(90),
			Samples:     fc2.N(),
		})
	}
	return out, nil
}

// RenderSweep formats the tradeoff curve.
func RenderSweep(points []SweepPoint) string {
	t := &stats.Table{Header: []string{"prepends", "mean control", "recon p50", "failover p50", "failover p90", "n"}}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Depth),
			stats.Pct(p.MeanControl),
			fmt.Sprintf("%.1fs", p.ReconP50),
			fmt.Sprintf("%.1fs", p.FailoverP50),
			fmt.Sprintf("%.1fs", p.FailoverP90),
			fmt.Sprintf("%d", p.Samples),
		)
	}
	return t.Render()
}
