package experiment

import (
	"fmt"

	"bestofboth/internal/core"
	"bestofboth/internal/stats"
)

// SweepPoint is one prepend depth in the control-vs-failover tradeoff
// curve (generalizing Appendix C.2's two-point comparison).
type SweepPoint struct {
	Depth int `json:"depth"`
	// MeanControl is the mean steerable share over sites' NotAnycast sets.
	MeanControl float64 `json:"meanControl"`
	// Reconnection/Failover distributions pooled across the failed sites.
	ReconP50    float64 `json:"reconP50"`
	FailoverP50 float64 `json:"failoverP50"`
	FailoverP90 float64 `json:"failoverP90"`
	Samples     int     `json:"samples"`
}

// PrependSweep measures traffic control and failover for a range of
// prepend depths — the §4 tradeoff ("if the other sites prepend more
// times, the CDN may get more traffic control... additional prepending
// will also make the backup routes longer, delaying failover") as a full
// curve.
func PrependSweep(cfg WorldConfig, sel *Selection, depths []int, sites []string, fc FailoverConfig) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, k := range depths {
		if k < 1 {
			return nil, fmt.Errorf("experiment: prepend depth %d", k)
		}
		tech := core.ProactivePrepending{Prepends: k}

		// Control measurement on a dedicated world.
		w, err := NewWorld(cfg)
		if err != nil {
			return nil, err
		}
		if err := w.CDN.Deploy(tech); err != nil {
			return nil, err
		}
		w.Converge(3600)
		var control float64
		counted := 0
		for _, st := range sel.Sites {
			if len(st.NotAnycast) == 0 {
				continue
			}
			s := w.CDN.Site(st.Code)
			ok := 0
			for _, id := range st.NotAnycast {
				if w.CDN.CanSteer(id, s) {
					ok++
				}
			}
			control += float64(ok) / float64(len(st.NotAnycast))
			counted++
		}
		if counted > 0 {
			control /= float64(counted)
		}

		// Failover measurement pooled over the requested sites.
		var recon, fail []float64
		for _, site := range sites {
			r, err := RunFailover(cfg, sel, tech, site, fc)
			if err != nil {
				return nil, err
			}
			recon = append(recon, r.ReconnectionSamples(fc.ProbeDuration)...)
			fail = append(fail, r.FailoverSamples(fc.ProbeDuration)...)
		}
		rc, fc2 := stats.NewCDF(recon), stats.NewCDF(fail)
		out = append(out, SweepPoint{
			Depth:       k,
			MeanControl: control,
			ReconP50:    rc.Median(),
			FailoverP50: fc2.Median(),
			FailoverP90: fc2.Percentile(90),
			Samples:     fc2.N(),
		})
	}
	return out, nil
}

// RenderSweep formats the tradeoff curve.
func RenderSweep(points []SweepPoint) string {
	t := &stats.Table{Header: []string{"prepends", "mean control", "recon p50", "failover p50", "failover p90", "n"}}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Depth),
			stats.Pct(p.MeanControl),
			fmt.Sprintf("%.1fs", p.ReconP50),
			fmt.Sprintf("%.1fs", p.FailoverP50),
			fmt.Sprintf("%.1fs", p.FailoverP90),
			fmt.Sprintf("%d", p.Samples),
		)
	}
	return t.Render()
}
