package experiment

import (
	"bestofboth/internal/bgp"
	"bestofboth/internal/obs"
	"bestofboth/internal/topology"
	"bestofboth/internal/traffic"
)

// Option mutates a WorldConfig under construction; see DefaultWorldConfig.
type Option func(*WorldConfig)

// DefaultWorldConfig builds the evaluation's baseline configuration — seed
// 42, generator-default topology (~900 ASes), bgp.DefaultConfig timing —
// with any options applied on top. It replaces hand-assembled WorldConfig
// literals in cmd/cdnsim and tests:
//
//	cfg := experiment.DefaultWorldConfig(
//		experiment.WithSeed(7),
//		experiment.WithWorkers(4),
//	)
func DefaultWorldConfig(opts ...Option) WorldConfig {
	cfg := WorldConfig{Seed: 42}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithSeed sets the simulation seed (identical seeds reproduce runs
// bit-for-bit).
func WithSeed(seed int64) Option {
	return func(c *WorldConfig) { c.Seed = seed }
}

// WithWorkers bounds concurrent runs in Runner instances built from the
// config (WorldConfig.Runner); <= 0 means GOMAXPROCS. Results are identical
// at any worker count.
func WithWorkers(n int) Option {
	return func(c *WorldConfig) { c.Workers = n }
}

// WithDamping enables route-flap damping (RFC 2439) with bgp.DefaultDamping
// parameters, filling the rest of the BGP config with defaults first so the
// override survives fillDefaults.
func WithDamping() Option {
	return func(c *WorldConfig) {
		if c.BGP == (bgp.Config{}) {
			c.BGP = bgp.DefaultConfig()
		}
		c.BGP.Damping = bgp.DefaultDamping()
	}
}

// WithObs attaches an observability registry: every world built from the
// config instruments all layers into r, and Runner instances built via
// WorldConfig.Runner record runner metrics there too.
func WithObs(r *obs.Registry) Option {
	return func(c *WorldConfig) { c.Obs = r }
}

// WithTopology replaces the topology generator configuration wholesale
// (the config's Seed still wins over the one inside).
func WithTopology(gc topology.GenConfig) Option {
	return func(c *WorldConfig) { c.Topology = gc }
}

// WithScale scales the default topology's per-class AS counts by f
// (1.0 ≈ 900 ASes), with floors keeping tiny scales connected. f <= 0 or
// f == 1 leaves the generator defaults untouched.
func WithScale(f float64) Option {
	return func(c *WorldConfig) {
		if f <= 0 || f == 1.0 {
			return
		}
		c.Topology = topology.GenConfig{
			NumTransit:    maxInt(20, int(60*f)),
			NumRegional:   maxInt(8, int(40*f)),
			NumEyeball:    maxInt(20, int(150*f)),
			NumStub:       maxInt(40, int(600*f)),
			NumUniversity: maxInt(8, int(36*f)),
		}
	}
}

// WithShards splits each world's BGP speakers across n shard simulators
// run in deterministic phase-barrier rounds (bgp.NewSharded). n <= 1 keeps
// the classic single-kernel world. Converged route-state and FIB digests
// are bit-identical at any shard count; transient message timing (and so
// timing-derived figures) follows each shard's jitter stream. Every shard
// count is individually deterministic: same seed + same shards ⇒
// bit-identical everything.
func WithShards(n int) Option {
	return func(c *WorldConfig) { c.Shards = n }
}

// WithPartition selects how speakers are placed onto shards:
// PartitionStatic (cost-model estimate from topology shape) or
// PartitionProfiled (measured per-speaker event counts from a seeded
// warm-up converge — one extra unsharded converge per ⟨seed, topology,
// BGP config⟩, memoized). Converged digests are bit-identical across
// modes at any shard count; only event placement, and so wall-clock
// balance, changes. No effect unless Shards > 1.
func WithPartition(mode string) Option {
	return func(c *WorldConfig) { c.Partition = mode }
}

// WithDemand attaches a demand model to every world built from the config:
// each client target gets a seeded heavy-tailed request rate and each site
// a capacity (internal/traffic). The config's zero fields fill with the
// documented defaults; Enabled is forced on.
func WithDemand(d traffic.Config) Option {
	return func(c *WorldConfig) {
		d.Enabled = true
		c.Demand = d
	}
}

// WithDefaultDemand attaches the default demand model: Pareto rates
// (α=1.2), 120K rps aggregate, 1.25× capacity headroom.
func WithDefaultDemand() Option {
	return WithDemand(traffic.Config{})
}

// PaperScale is the topology multiplier of the paper-scale preset: ~4× the
// default world (≈3,500 ASes), the regime where the zero-copy kernel's
// savings dominate and Figure 2 sweeps 50K-target selections end-to-end.
const PaperScale = 4.0

// InternetScale is the topology multiplier of the internet-scale preset:
// ≈81× the default world, ≈72K ASes — the order of today's announced AS
// count. Worlds at this scale hold ~72K speakers' RIBs plus interned
// paths; the recorded reference converge (TestInternetScaleConverge,
// seed 42, shards=8) peaks at ~1.6 GiB resident with ~3.9 GiB total
// allocated — budget ~4 GiB and pair the preset with -shards to keep
// convergence wall-clock tolerable.
const InternetScale = 81.0

// WithInternetScale applies the internet-scale preset topology (see
// InternetScale for the memory budget).
func WithInternetScale() Option {
	return WithScale(InternetScale)
}

// PaperTargetsPerSite is the per-site target-selection cap the paper's
// evaluation uses (§5.1: ~50K /24s per failed site).
const PaperTargetsPerSite = 50000

// WithPaperScale applies the paper-scale preset topology. Callers that
// honor the preset fully should also raise their selection cap to
// PaperTargetsPerSite.
func WithPaperScale() Option {
	return WithScale(PaperScale)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
