package experiment

import (
	"strings"
	"testing"

	"bestofboth/internal/core"
	"bestofboth/internal/stats"
)

func TestStabilityMatchesPaperNarrative(t *testing.T) {
	cfg := tinyConfig(40)
	sel := mustSelect(t, cfg, 25)
	r, err := RunFailover(cfg, sel, core.ReactiveAnycast{}, "slc", quickFailover())
	if err != nil {
		t.Fatal(err)
	}
	st := Stability(r.Outcomes)
	if st.Reconnected == 0 {
		t.Fatal("no reconnected targets")
	}
	// §5.4.1: most targets bounce at most once or twice...
	if st.BounceLE2Share < 0.7 {
		t.Fatalf("only %.0f%% of targets bounced ≤2 times", st.BounceLE2Share*100)
	}
	// ...and most do not experience unreachability after reconnecting.
	if st.NoGapShare < 0.6 {
		t.Fatalf("only %.0f%% of targets had no gaps", st.NoGapShare*100)
	}
	if st.MedianBounces > 2 {
		t.Fatalf("median bounces = %v", st.MedianBounces)
	}
}

func TestStabilityEmpty(t *testing.T) {
	st := Stability(nil)
	if st.Reconnected != 0 || st.NoGapShare != 0 {
		t.Fatalf("empty stability = %+v", st)
	}
}

func TestValidateTargetCriterion(t *testing.T) {
	cfg := tinyConfig(41)
	sel := mustSelect(t, cfg, 20)
	v, err := ValidateTargetCriterion(cfg, sel, core.ReactiveAnycast{}, "atl", quickFailover())
	if err != nil {
		t.Fatal(err)
	}
	if v.Filtered.N() == 0 || v.Unfiltered.N() == 0 {
		t.Fatal("empty validation CDFs")
	}
	// The paper found the two datasets "very similar"; allow a loose
	// factor since the tiny config has few samples.
	fa, fb := v.Filtered.Median(), v.Unfiltered.Median()
	if fa > 5*fb+10 || fb > 5*fa+10 {
		t.Fatalf("criterion changed failover drastically: %.1fs vs %.1fs", fa, fb)
	}
}

func TestRepeatabilityCheck(t *testing.T) {
	cfg := tinyConfig(42)
	a, b, err := RepeatabilityCheck(cfg, core.Anycast{}, "ams", quickFailover(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() == 0 || b.N() == 0 {
		t.Fatal("empty repeatability CDFs")
	}
	// Different target sets, same regime.
	if a.Median() > 5*b.Median()+10 || b.Median() > 5*a.Median()+10 {
		t.Fatalf("non-repeatable: %.1fs vs %.1fs", a.Median(), b.Median())
	}
}

// TestMetricsRobustToProbeLoss injects 2% bidirectional probe loss and
// verifies the reconnection metric stays in the same regime: random loss
// must not masquerade as route failure (§5.3 rate-limit concern).
func TestMetricsRobustToProbeLoss(t *testing.T) {
	cfg := tinyConfig(43)
	sel := mustSelect(t, cfg, 20)
	clean := quickFailover()
	lossy := clean
	lossy.LossRate = 0.02

	a, err := RunFailover(cfg, sel, core.ReactiveAnycast{}, "atl", clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFailover(cfg, sel, core.ReactiveAnycast{}, "atl", lossy)
	if err != nil {
		t.Fatal(err)
	}
	ca := stats.NewCDF(a.ReconnectionSamples(clean.ProbeDuration))
	cb := stats.NewCDF(b.ReconnectionSamples(lossy.ProbeDuration))
	if d := cb.Median() - ca.Median(); d > 10 || d < -10 {
		t.Fatalf("2%% loss shifted reconnection median by %.1fs (%.1f vs %.1f)",
			d, ca.Median(), cb.Median())
	}
}

func TestPrependSweepTradeoff(t *testing.T) {
	cfg := tinyConfig(44)
	sel := mustSelect(t, cfg, 20)
	points, err := PrependSweep(cfg, sel, []int{1, 3, 5}, []string{"atl"}, quickFailover())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// §4: control must not decrease with depth (modulo small noise), and
	// all shares must be valid fractions.
	for i, p := range points {
		if p.MeanControl < 0 || p.MeanControl > 1 {
			t.Fatalf("point %d control %v", i, p.MeanControl)
		}
		if p.Samples == 0 {
			t.Fatalf("point %d has no failover samples", i)
		}
	}
	if points[2].MeanControl < points[0].MeanControl-0.1 {
		t.Fatalf("control fell with depth: %v -> %v", points[0].MeanControl, points[2].MeanControl)
	}
	if _, err := PrependSweep(cfg, sel, []int{0}, []string{"atl"}, quickFailover()); err == nil {
		t.Fatal("depth 0 accepted")
	}
	out := RenderSweep(points)
	if !strings.Contains(out, "prepends") {
		t.Fatalf("render: %s", out)
	}
}

// TestMonitorDrivenFailover runs the §5.2 experiment with emergent
// detection: the site crashes silently and the reaction waits for the
// probing-based monitor. Failover must land in the same regime as with
// the fixed detection delay, shifted by the detection latency.
func TestMonitorDrivenFailover(t *testing.T) {
	cfg := tinyConfig(45)
	sel := mustSelect(t, cfg, 20)

	fixed := quickFailover()
	monitored := fixed
	monitored.UseMonitor = true

	a, err := RunFailover(cfg, sel, core.ReactiveAnycast{}, "atl", fixed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFailover(cfg, sel, core.ReactiveAnycast{}, "atl", monitored)
	if err != nil {
		t.Fatal(err)
	}
	if b.DetectedAt <= 0 || b.DetectedAt > 10 {
		t.Fatalf("emergent detection latency %.2fs out of range", b.DetectedAt)
	}
	if a.DetectedAt != 0 {
		t.Fatalf("fixed-delay run reported detection %.2fs", a.DetectedAt)
	}
	ca := stats.NewCDF(a.ReconnectionSamples(fixed.ProbeDuration))
	cb := stats.NewCDF(b.ReconnectionSamples(monitored.ProbeDuration))
	// The monitored run may be slower by roughly the detection latency,
	// never dramatically faster or slower.
	if d := cb.Median() - ca.Median(); d < -5 || d > b.DetectedAt+15 {
		t.Fatalf("monitored reconnection %.1fs vs fixed %.1fs (detect %.1fs)",
			cb.Median(), ca.Median(), b.DetectedAt)
	}
}
