package experiment

import (
	"fmt"

	"bestofboth/internal/core"
	"bestofboth/internal/stats"
)

// Table1Row is one site column of the paper's Table 1.
type Table1Row struct {
	Site string
	// Proximate is the number of targets within 50 ms of the site.
	Proximate int
	// NotAnycast is the fraction of proximate targets that pure anycast
	// routes to a different site (Table 1, row 2).
	NotAnycast float64
	// Prepend3 / Prepend5 are, of those targets, the fraction that
	// proactive-prepending steers to the site with 3 / 5 prepends
	// (Table 1, rows 3-4).
	Prepend3 float64
	Prepend5 float64
}

// Table1 measures per-site traffic control (§5.4.2): how many nearby
// targets anycast mis-routes, and how many of those proactive-prepending
// recovers at each prepend depth.
func Table1(cfg WorldConfig, sel *Selection) ([]Table1Row, error) {
	steerable := func(prepends int) (map[string]float64, error) {
		w, err := NewWorld(cfg)
		if err != nil {
			return nil, err
		}
		if err := w.CDN.Deploy(core.ProactivePrepending{Prepends: prepends}); err != nil {
			return nil, fmt.Errorf("experiment: deploying prepending-%d: %w", prepends, err)
		}
		w.Converge(3600)
		out := map[string]float64{}
		for _, s := range w.CDN.Sites() {
			st := sel.ForSite(s.Code)
			if st == nil || len(st.NotAnycast) == 0 {
				out[s.Code] = 0
				continue
			}
			n := 0
			for _, id := range st.NotAnycast {
				if w.CDN.CanSteer(id, s) {
					n++
				}
			}
			out[s.Code] = float64(n) / float64(len(st.NotAnycast))
		}
		return out, nil
	}

	p3, err := steerable(3)
	if err != nil {
		return nil, err
	}
	p5, err := steerable(5)
	if err != nil {
		return nil, err
	}

	var rows []Table1Row
	for _, st := range sel.Sites {
		row := Table1Row{Site: st.Code, Proximate: len(st.Proximate)}
		if len(st.Proximate) > 0 {
			row.NotAnycast = float64(len(st.NotAnycast)) / float64(len(st.Proximate))
		}
		row.Prepend3 = p3[st.Code]
		row.Prepend5 = p5[st.Code]
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable1 lays the measurement out like the paper's Table 1: sites as
// columns.
func RenderTable1(rows []Table1Row) string {
	t := &stats.Table{Header: []string{""}}
	notRouted := []string{"Not routed by anycast"}
	pre3 := []string{"prepend 3"}
	pre5 := []string{"prepend 5"}
	prox := []string{"(proximate targets)"}
	for _, r := range rows {
		t.Header = append(t.Header, r.Site)
		notRouted = append(notRouted, stats.Pct(r.NotAnycast))
		pre3 = append(pre3, stats.Pct(r.Prepend3))
		pre5 = append(pre5, stats.Pct(r.Prepend5))
		prox = append(prox, fmt.Sprintf("%d", r.Proximate))
	}
	t.AddRow(notRouted...)
	t.AddRow(pre3...)
	t.AddRow(pre5...)
	t.AddRow(prox...)
	return t.Render()
}
