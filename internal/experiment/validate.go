package experiment

import (
	"bestofboth/internal/core"
	"bestofboth/internal/stats"
)

// StabilityStats summarizes the §5.4.1 bounce/gap narrative: after
// reconnecting, targets bounce between sites at most a couple of times and
// mostly stay reachable until they stabilize.
type StabilityStats struct {
	// MedianBounces is the median number of site switches after first
	// reconnection.
	MedianBounces float64
	// BounceLE2Share is the fraction of reconnected targets with at most
	// two bounces ("most targets bouncing once or twice").
	BounceLE2Share float64
	// NoGapShare is the fraction of reconnected targets with no
	// unreachability period after reconnection ("most targets do not
	// experience periods of unreachability").
	NoGapShare float64
	// Reconnected is the sample size.
	Reconnected int
}

// Stability aggregates bounce/gap statistics over outcomes.
func Stability(outcomes []TargetOutcome) StabilityStats {
	var st StabilityStats
	var bounces []float64
	for _, o := range outcomes {
		if !o.Reconnected {
			continue
		}
		st.Reconnected++
		bounces = append(bounces, float64(o.Bounces))
		if o.Bounces <= 2 {
			st.BounceLE2Share++
		}
		if o.Gaps == 0 {
			st.NoGapShare++
		}
	}
	if st.Reconnected > 0 {
		st.BounceLE2Share /= float64(st.Reconnected)
		st.NoGapShare /= float64(st.Reconnected)
		st.MedianBounces = stats.NewCDF(bounces).Median()
	}
	return st
}

// CriterionValidation compares failover measured on the §5.1-filtered
// target set against an alternate set without the not-routed-by-anycast
// criterion. The paper reports "failover times were very similar for both
// datasets"; this reproduces that robustness check.
type CriterionValidation struct {
	Filtered, Unfiltered *stats.CDF
}

// ValidateTargetCriterion runs one technique × site failover twice: once
// on the standard controllable pool and once on the full proximate pool.
func ValidateTargetCriterion(cfg WorldConfig, sel *Selection, tech core.Technique, site string, fc FailoverConfig) (*CriterionValidation, error) {
	std, err := RunFailover(cfg, sel, tech, site, fc)
	if err != nil {
		return nil, err
	}
	// Alternate selection: drop the criterion by treating all proximate
	// targets as the pool.
	alt := &Selection{AnycastCatchment: sel.AnycastCatchment}
	for _, st := range sel.Sites {
		all := SiteTargets{Code: st.Code, Proximate: st.Proximate}
		all.NotAnycast = st.Proximate // no filter
		alt.Sites = append(alt.Sites, all)
	}
	full, err := RunFailover(cfg, alt, tech, site, fc)
	if err != nil {
		return nil, err
	}
	return &CriterionValidation{
		Filtered:   stats.NewCDF(std.FailoverSamples(fc.ProbeDuration)),
		Unfiltered: stats.NewCDF(full.FailoverSamples(fc.ProbeDuration)),
	}, nil
}

// RepeatabilityCheck reruns a technique × site failover with a different
// target-selection seed (the paper evaluates each technique twice with
// different target sets, §5.4.1) and returns both failover CDFs.
func RepeatabilityCheck(cfg WorldConfig, tech core.Technique, site string, fc FailoverConfig, maxPerSite int) (*stats.CDF, *stats.CDF, error) {
	selA, err := SelectTargets(cfg, maxPerSite)
	if err != nil {
		return nil, nil, err
	}
	cfgB := cfg
	cfgB.Seed = cfg.Seed + 1000003
	selB, err := SelectTargets(cfgB, maxPerSite)
	if err != nil {
		return nil, nil, err
	}
	runA, err := RunFailover(cfg, selA, tech, site, fc)
	if err != nil {
		return nil, nil, err
	}
	runB, err := RunFailover(cfgB, selB, tech, site, fc)
	if err != nil {
		return nil, nil, err
	}
	return stats.NewCDF(runA.FailoverSamples(fc.ProbeDuration)),
		stats.NewCDF(runB.FailoverSamples(fc.ProbeDuration)), nil
}
