package experiment

import (
	"fmt"
	"sync"

	"bestofboth/internal/bgp"
	"bestofboth/internal/core"
	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// Profile-guided shard partitioning.
//
// The static cost model in bgp.StaticSpeakerWeights predicts per-speaker
// work from topology shape alone. The profiled mode replaces the
// prediction with a measurement: a short seeded warm-up converge on an
// UNSHARDED network records how many calendar events each speaker actually
// cost (bgp.Network.SpeakerEventCounts), and those counts become the
// partition weights for every sharded world built from the config.
//
// The warm-up originates the anycast prefix from every CDN site plus each
// site's unicast prefix — the union of the waves every technique's deploy
// sends — and converges up to profileHorizon virtual seconds. It is a pure
// function of (seed, topology, BGP config): deterministic, identical for
// every shard count, and therefore digest-neutral. Profiles are memoized
// per config so restore paths and experiment matrices pay for one warm-up,
// not one per world.

// Partition mode names for WorldConfig.Partition.
const (
	// PartitionStatic partitions speakers with the static cost model
	// (bgp.PlanShards). The default.
	PartitionStatic = "static"
	// PartitionProfiled partitions speakers by measured per-speaker event
	// counts from a seeded warm-up converge.
	PartitionProfiled = "profiled"
)

// profileHorizon bounds the warm-up converge in virtual seconds. The
// deploy wave settles in well under this at every bundled scale; the bound
// exists so a pathological configuration cannot stall world construction.
const profileHorizon = 3600

// profileCap bounds the profile cache, mirroring worldSnapCap: an entry is
// a float64 per topology node, so internet-scale profiles are ~0.6 MiB.
const profileCap = 16

var profiles struct {
	mu sync.Mutex
	m  map[string]*profileEntry
}

type profileEntry struct {
	once    sync.Once
	weights []float64
	err     error
}

// profileKey canonicalizes the warm-up identity: only the fields that can
// change the warm-up's event stream participate.
func profileKey(cfg WorldConfig) string {
	damp := "<nil>"
	if cfg.BGP.Damping != nil {
		damp = fmt.Sprintf("%+v", *cfg.BGP.Damping)
	}
	flat := cfg.BGP
	flat.Damping = nil
	return fmt.Sprintf("seed=%d topo=%+v bgp=%+v damp=%s", cfg.Seed, cfg.Topology, flat, damp)
}

// profiledWeights returns the measured per-speaker work profile for cfg,
// running (or reusing) the warm-up converge. cfg must already have
// defaults filled.
func profiledWeights(cfg WorldConfig) ([]float64, error) {
	key := profileKey(cfg)
	profiles.mu.Lock()
	if profiles.m == nil {
		profiles.m = make(map[string]*profileEntry)
	}
	e, ok := profiles.m[key]
	if !ok && len(profiles.m) < profileCap {
		e = &profileEntry{}
		profiles.m[key] = e
	}
	profiles.mu.Unlock()
	if e == nil {
		// Cache full: profile without memoizing (still deterministic).
		return runProfile(cfg)
	}
	e.once.Do(func() { e.weights, e.err = runProfile(cfg) })
	return e.weights, e.err
}

// runProfile executes one warm-up converge and returns the per-speaker
// event counts as partition weights.
func runProfile(cfg WorldConfig) ([]float64, error) {
	topo, err := topology.Cached(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("experiment: profiling partition: %w", err)
	}
	sim := netsim.New(cfg.Seed)
	net := bgp.New(sim, topo, cfg.BGP)
	sites := topo.NodesOfClass(topology.ClassCDN)
	for i, site := range sites {
		if err := net.Originate(site.ID, core.AnycastPrefix, nil); err != nil {
			return nil, fmt.Errorf("experiment: profiling partition: %w", err)
		}
		if err := net.Originate(site.ID, core.SitePrefix(i), nil); err != nil {
			return nil, fmt.Errorf("experiment: profiling partition: %w", err)
		}
	}
	net.ConvergeSynchronously(profileHorizon)
	counts := net.SpeakerEventCounts()
	weights := make([]float64, len(counts))
	for i, c := range counts {
		weights[i] = 1 + float64(c)
	}
	return weights, nil
}
