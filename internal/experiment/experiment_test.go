package experiment

import (
	"math"
	"strings"
	"testing"

	"bestofboth/internal/core"
	"bestofboth/internal/stats"
	"bestofboth/internal/topology"
)

// tinyConfig returns a reduced world that preserves the convergence regimes
// (default BGP timing, full site set) while keeping tests fast.
func tinyConfig(seed int64) WorldConfig {
	return WorldConfig{
		Seed: seed,
		Topology: topology.GenConfig{
			NumStub:       120,
			NumEyeball:    60,
			NumUniversity: 16,
			NumRegional:   24,
		},
		CollectorPeers: 25,
	}
}

// quickFailover probes fewer targets for less time than the paper's
// schedule.
func quickFailover() FailoverConfig {
	return FailoverConfig{ProbeInterval: 1.5, ProbeDuration: 300, ConvergeTime: 3600, MaxTargets: 12}
}

func mustSelect(t *testing.T, cfg WorldConfig, maxPerSite int) *Selection {
	t.Helper()
	sel, err := SelectTargets(cfg, maxPerSite)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func TestSelectTargetsInvariants(t *testing.T) {
	cfg := tinyConfig(1)
	sel := mustSelect(t, cfg, 40)
	if len(sel.Sites) != 8 {
		t.Fatalf("got %d site selections", len(sel.Sites))
	}
	for _, st := range sel.Sites {
		if len(st.Proximate) == 0 {
			t.Fatalf("site %s has no proximate targets", st.Code)
		}
		if len(st.Proximate) > 40 {
			t.Fatalf("site %s exceeds cap: %d", st.Code, len(st.Proximate))
		}
		if len(st.NotAnycast)+len(st.AnycastHere) != len(st.Proximate) {
			t.Fatalf("site %s: partition broken: %d + %d != %d",
				st.Code, len(st.NotAnycast), len(st.AnycastHere), len(st.Proximate))
		}
		for _, id := range st.AnycastHere {
			if sel.AnycastCatchment[id] != st.Code {
				t.Fatalf("site %s: AnycastHere target %d maps to %q", st.Code, id, sel.AnycastCatchment[id])
			}
		}
		for _, id := range st.NotAnycast {
			if sel.AnycastCatchment[id] == st.Code {
				t.Fatalf("site %s: NotAnycast target %d maps home", st.Code, id)
			}
		}
	}
	if sel.ForSite("nope") != nil {
		t.Fatal("ForSite invented a site")
	}
}

func TestSelectTargetsDeterministic(t *testing.T) {
	cfg := tinyConfig(2)
	a := mustSelect(t, cfg, 30)
	b := mustSelect(t, cfg, 30)
	for i := range a.Sites {
		sa, sb := a.Sites[i], b.Sites[i]
		if sa.Code != sb.Code || len(sa.Proximate) != len(sb.Proximate) {
			t.Fatal("selection differs between identical runs")
		}
		for j := range sa.Proximate {
			if sa.Proximate[j] != sb.Proximate[j] {
				t.Fatal("proximate sets differ")
			}
		}
	}
}

func TestProximityFilterHonorsRTT(t *testing.T) {
	cfg := tinyConfig(3)
	sel := mustSelect(t, cfg, 0)
	// Rebuild the unicast world and verify every selected target is within
	// the RTT bound.
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CDN.Deploy(core.Unicast{}); err != nil {
		t.Fatal(err)
	}
	w.Converge(3600)
	for _, st := range sel.Sites[:2] {
		s := w.CDN.Site(st.Code)
		for _, id := range st.Proximate {
			fwd := w.Plane.StaticDelay(s.Node, id)
			res := w.Plane.Forward(id, s.Addr)
			if !res.Delivered {
				t.Fatalf("selected target %d cannot reach %s", id, st.Code)
			}
			if rtt := fwd + res.Delay; rtt > ProximityRTT+1e-9 {
				t.Fatalf("target %d at %s has RTT %.1fms > 50ms", id, st.Code, rtt*1000)
			}
		}
	}
}

func TestRunFailoverReactiveAnycast(t *testing.T) {
	cfg := tinyConfig(4)
	sel := mustSelect(t, cfg, 30)
	r, err := RunFailover(cfg, sel, core.ReactiveAnycast{}, "atl", quickFailover())
	if err != nil {
		t.Fatal(err)
	}
	if r.Controllable == 0 {
		t.Fatal("no controllable targets")
	}
	if len(r.Outcomes) != r.Controllable {
		t.Fatalf("outcomes %d != controllable %d", len(r.Outcomes), r.Controllable)
	}
	reconnected := 0
	for _, o := range r.Outcomes {
		if !o.Reconnected {
			continue
		}
		reconnected++
		if o.Reconnection < 0 {
			t.Fatalf("negative reconnection %v", o.Reconnection)
		}
		if o.FailedOver {
			if o.Failover < o.Reconnection {
				t.Fatalf("failover %v < reconnection %v", o.Failover, o.Reconnection)
			}
			if o.FinalSite == "atl" || o.FinalSite == "" {
				t.Fatalf("final site = %q after atl failed", o.FinalSite)
			}
		}
	}
	if reconnected < r.Controllable*8/10 {
		t.Fatalf("only %d/%d targets reconnected under reactive-anycast", reconnected, r.Controllable)
	}
}

func TestRunFailoverUnknownSite(t *testing.T) {
	cfg := tinyConfig(4)
	sel := mustSelect(t, cfg, 10)
	if _, err := RunFailover(cfg, sel, core.Anycast{}, "zzz", quickFailover()); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestFigure2Orderings(t *testing.T) {
	cfg := tinyConfig(5)
	sel := mustSelect(t, cfg, 30)
	fc := quickFailover()
	pairs, err := Figure2(cfg, sel, []core.Technique{
		core.ProactiveSuperprefix{},
		core.ReactiveAnycast{},
		core.Anycast{},
	}, []string{"atl", "msn"}, fc)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CDFPair{}
	for _, p := range pairs {
		byName[p.Technique] = p
		if p.Failover.N() == 0 {
			t.Fatalf("%s has no samples", p.Technique)
		}
	}
	superM := byName["proactive-superprefix"].Failover.Median()
	reactM := byName["reactive-anycast"].Failover.Median()
	anyM := byName["anycast"].Failover.Median()
	// The paper's headline ordering: superprefix is much slower than
	// anycast; reactive-anycast is close to anycast.
	if superM < 3*anyM {
		t.Fatalf("superprefix failover (%.1fs) not ≫ anycast (%.1fs)", superM, anyM)
	}
	if reactM > 4*anyM+10 {
		t.Fatalf("reactive-anycast failover (%.1fs) not close to anycast (%.1fs)", reactM, anyM)
	}
	// Reconnection ~10s scale for the fast techniques.
	if m := byName["reactive-anycast"].Reconnection.Median(); m > 30 {
		t.Fatalf("reactive-anycast reconnection median %.1fs too slow", m)
	}
}

func TestTable1ShapesAndRender(t *testing.T) {
	cfg := tinyConfig(6)
	sel := mustSelect(t, cfg, 30)
	rows, err := Table1(cfg, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	var sum3, sum5 float64
	for _, r := range rows {
		for _, v := range []float64{r.NotAnycast, r.Prepend3, r.Prepend5} {
			if v < 0 || v > 1 {
				t.Fatalf("site %s has out-of-range fraction %v", r.Site, v)
			}
		}
		sum3 += r.Prepend3
		sum5 += r.Prepend5
	}
	// Deeper prepending can only help control in aggregate (§5.4.2).
	if sum5 < sum3-0.05 {
		t.Fatalf("prepend-5 aggregate control (%.2f) below prepend-3 (%.2f)", sum5, sum3)
	}
	out := RenderTable1(rows)
	for _, code := range topology.DefaultSiteCodes {
		if !strings.Contains(out, code) {
			t.Fatalf("render missing site %s:\n%s", code, out)
		}
	}
	if !strings.Contains(out, "Not routed by anycast") {
		t.Fatalf("render missing row label:\n%s", out)
	}
}

func TestFigure3WithdrawalsSlow(t *testing.T) {
	cfg := tinyConfig(7)
	f3, err := Figure3(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := Figure4(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Hypergiant.N() == 0 || f3.Testbed.N() == 0 {
		t.Fatal("figure 3 has empty distributions")
	}
	if f4.AnycastCensus.N() == 0 || f4.Testbed.N() == 0 {
		t.Fatal("figure 4 has empty distributions")
	}
	// Appendix A vs B: withdrawal convergence is much slower than
	// announcement propagation.
	if f3.Testbed.Median() < 2*f4.Testbed.Median() {
		t.Fatalf("withdrawal convergence (%.1fs) not ≫ announcement propagation (%.1fs)",
			f3.Testbed.Median(), f4.Testbed.Median())
	}
	// Result generalization: testbed and hypergiant distributions are in
	// the same regime (within a small factor at the median).
	ratio := f3.Testbed.Median() / f3.Hypergiant.Median()
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("testbed (%.1fs) and hypergiant (%.1fs) withdrawal convergence diverge",
			f3.Testbed.Median(), f3.Hypergiant.Median())
	}
	// Announcements propagate in seconds (paper: <10 s median).
	if f4.Testbed.Median() > 15 {
		t.Fatalf("announcement propagation median %.1fs too slow", f4.Testbed.Median())
	}
}

func TestFigure5PrependDepthTradeoff(t *testing.T) {
	cfg := tinyConfig(8)
	sel := mustSelect(t, cfg, 25)
	pairs, err := Figure5(cfg, sel, []string{"atl", "slc"}, quickFailover())
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	p3, p5 := pairs[0], pairs[1]
	if p3.Failover.N() == 0 || p5.Failover.N() == 0 {
		t.Fatal("empty distributions")
	}
	// Appendix C.2: more prepending must not make failover faster.
	if p5.Failover.Median() < p3.Failover.Median()-2 {
		t.Fatalf("prepend-5 failover (%.1fs) faster than prepend-3 (%.1fs)",
			p5.Failover.Median(), p3.Failover.Median())
	}
}

func TestUnicastDNSFailoverDistribution(t *testing.T) {
	cfg := tinyConfig(9)
	ucfg := DefaultUnicastDNSConfig()
	ucfg.Clients = 600
	cdf, err := UnicastDNSFailover(cfg, ucfg)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.N() < 500 {
		t.Fatalf("only %d clients measured", cdf.N())
	}
	med := cdf.Median()
	// Cache expiries are uniform over (0, TTL]: median ≈ TTL/2.
	if med < float64(ucfg.TTL)*0.3 || med > float64(ucfg.TTL)*0.8 {
		t.Fatalf("median %.0fs not near TTL/2 = %d", med, ucfg.TTL/2)
	}
	// TTL violations give a heavy tail beyond the TTL.
	if p99 := cdf.Percentile(99); p99 <= float64(ucfg.TTL) {
		t.Fatalf("p99 %.0fs shows no TTL-violation tail", p99)
	}
}

func TestAppendixC1Consistency(t *testing.T) {
	cfg := tinyConfig(10)
	sel := mustSelect(t, cfg, 40)
	r, err := AppendixC1(cfg, sel, "sea1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Compared == 0 {
		t.Fatal("no comparable targets")
	}
	if r.ToIntended+len(r.Diverged) != r.Compared {
		t.Fatalf("counts inconsistent: %d + %d != %d", r.ToIntended, len(r.Diverged), r.Compared)
	}
	if r.ByRelationship > r.RelationshipComparable {
		t.Fatal("explained > comparable")
	}
	if len(r.Diverged) > 0 && r.RelationshipComparable == 0 {
		t.Fatal("no divergence could be classified")
	}
	out := RenderC1("sea1", r)
	if !strings.Contains(out, "sea1") || !strings.Contains(out, "relationship") {
		t.Fatalf("render broken:\n%s", out)
	}
	if _, err := AppendixC1(cfg, sel, "zzz"); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestTable2Assembly(t *testing.T) {
	fig2 := []CDFPair{
		{Technique: "anycast", Reconnection: cdfOf(5), Failover: cdfOf(6)},
		{Technique: "reactive-anycast", Reconnection: cdfOf(5), Failover: cdfOf(7)},
	}
	t1 := []Table1Row{{Site: "ams", Prepend3: 0.6}, {Site: "ath", Prepend3: 0.9}}
	rows := Table2(fig2, t1)
	if len(rows) != 5 {
		t.Fatalf("got %d table-2 rows", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Technique] = r
	}
	if byName["anycast"].MedianFail != 6 {
		t.Fatalf("anycast median failover = %v", byName["anycast"].MedianFail)
	}
	if math.Abs(byName["proactive-prepending"].ControlShare-0.75) > 1e-9 {
		t.Fatalf("prepending control share = %v", byName["proactive-prepending"].ControlShare)
	}
	if !math.IsNaN(byName["unicast"].MedianFail) {
		t.Fatal("unmeasured technique should have NaN median")
	}
	out := RenderTable2(rows)
	for _, want := range []string{"unicast", "anycast", "reactive-anycast", "high", "low"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func cdfOf(v float64) *stats.CDF { return stats.NewCDF([]float64{v}) }
