package experiment

import (
	"sync"

	"bestofboth/internal/core"
	"bestofboth/internal/scenario"
	"bestofboth/internal/topology"
)

// ScenarioConfig configures scenario-matrix runs: the probing options
// handed to scenario.Run plus the world-preparation parameters shared with
// the failover experiments.
type ScenarioConfig struct {
	scenario.Options
	// ConvergeTime bounds the pre-scenario convergence wait (default 1 h,
	// as in §5.2).
	ConvergeTime float64
	// MaxTargetsPerSite caps the probed targets per site group (default 12).
	MaxTargetsPerSite int
}

// DefaultScenarioConfig mirrors the failover experiments' schedule.
func DefaultScenarioConfig() ScenarioConfig {
	return ScenarioConfig{ConvergeTime: 3600, MaxTargetsPerSite: 12}
}

func (c *ScenarioConfig) fill() {
	if c.ConvergeTime <= 0 {
		c.ConvergeTime = 3600
	}
	if c.MaxTargetsPerSite <= 0 {
		c.MaxTargetsPerSite = 12
	}
}

// ScenarioWorldConfig returns the world configuration a scenario runs
// under: the base config, with route-flap damping (bgp.DefaultDamping)
// enabled when the scenario requests it and a default demand model
// attached when the scenario requests one and the config carries none.
func ScenarioWorldConfig(cfg WorldConfig, sc *scenario.Scenario) WorldConfig {
	if sc.Damping {
		WithDamping()(&cfg)
	}
	if sc.Demand && !cfg.Demand.Enabled {
		WithDefaultDemand()(&cfg)
	}
	return cfg
}

// scenarioGroups builds the probed populations on a converged world: one
// group per site with any controllable targets, probing the targets that
// the deployed technique routes to that site, via the site's steering
// address — the same §5.2 arrangement as failoverOn, but for every site at
// once, since scenarios fail arbitrary subsets.
func scenarioGroups(w *World, sel *Selection, maxPerSite int) []scenario.Group {
	tech := w.CDN.Technique()
	_, isAnycast := tech.(core.Anycast)
	var groups []scenario.Group
	for _, s := range w.CDN.Sites() {
		st := sel.ForSite(s.Code)
		if st == nil {
			continue
		}
		pool := st.NotAnycast
		if isAnycast {
			pool = st.AnycastHere
		}
		steer := tech.SteerAddr(w.CDN, s)
		var targets []topology.NodeID
		for _, id := range pool {
			if got := w.CDN.CatchmentOf(id, steer); got != nil && got.Node == s.Node {
				targets = append(targets, id)
			}
		}
		if maxPerSite > 0 && len(targets) > maxPerSite {
			targets = targets[:maxPerSite]
		}
		if len(targets) == 0 {
			continue
		}
		var prober *core.Site
		for _, o := range w.CDN.Sites() {
			if o.Code != s.Code {
				prober = o
				break
			}
		}
		groups = append(groups, scenario.Group{
			Site: s.Code, Prober: prober.Node, ReplyTo: steer, Targets: targets,
		})
	}
	return groups
}

// RunScenario executes one scenario against one technique on a fresh world
// materialized from the (possibly cached) converged snapshot. Results are
// bit-identical regardless of snapshot reuse or concurrency.
func (r *Runner) RunScenario(cfg WorldConfig, sel *Selection, tech core.Technique, sc *scenario.Scenario, sco ScenarioConfig) (*scenario.Result, error) {
	sco.fill()
	if r != nil && r.Obs != nil {
		cfg.Obs = r.Obs
	}
	eff := ScenarioWorldConfig(cfg, sc)
	snap, err := r.convergedSnapshot(eff, tech, sco.ConvergeTime)
	if err != nil {
		return nil, err
	}
	w, err := r.materialize(eff, tech, sco.ConvergeTime, snap)
	if err != nil {
		return nil, err
	}
	env := &scenario.Env{Sim: w.Sim, Topo: w.Topo, Net: w.Net, Plane: w.Plane, CDN: w.CDN}
	return scenario.Run(env, sc, scenarioGroups(w, sel, sco.MaxTargetsPerSite), sco.Options)
}

// RunScenarioMatrix executes every ⟨technique, scenario⟩ pair across the
// worker pool, returning results indexed [technique][scenario]. Converged
// worlds are snapshotted once per ⟨technique, damping regime⟩ and each run
// materializes its own isolated copy, so any worker count yields identical
// results.
func (r *Runner) RunScenarioMatrix(cfg WorldConfig, sel *Selection, techs []core.Technique, scs []*scenario.Scenario, sco ScenarioConfig) ([][]*scenario.Result, error) {
	sco.fill()
	results := make([][]*scenario.Result, len(techs))
	for i := range results {
		results[i] = make([]*scenario.Result, len(scs))
	}
	total := len(techs) * len(scs)
	done := 0
	sem := make(chan struct{}, r.workers())
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for ti := range techs {
		for si := range scs {
			wg.Add(1)
			go func(ti, si int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				res, err := r.RunScenario(cfg, sel, techs[ti], scs[si], sco)
				if err != nil {
					fail(err)
					return
				}
				mu.Lock()
				results[ti][si] = res
				done++
				if r != nil && r.Progress != nil {
					r.Progress(done, total)
				}
				mu.Unlock()
			}(ti, si)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
