package experiment

import (
	"errors"
	"reflect"
	"testing"

	"bestofboth/internal/bgp"
	"bestofboth/internal/core"
	"bestofboth/internal/obs"
)

// TestMetricsDeterministicAcrossWorkers is the observability determinism
// gate: with the converged-snapshot cache prewarmed (template builds count
// into whichever registry triggers them, so comparable runs must share a
// warm cache), the same seed must produce byte-equal deterministic metric
// snapshots at any worker count — and instrumented results must equal bare
// ones.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	cfg := tinyConfig(31)
	sel := mustSelect(t, cfg, 20)
	fc := quickFailover()
	techs := []core.Technique{core.ReactiveAnycast{}, core.Anycast{}}
	sites := []string{"atl", "msn"}

	bare, err := (&Runner{}).RunMatrix(cfg, sel, techs, sites, fc)
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int) ([][]*RunResult, []obs.MetricSnapshot) {
		reg := obs.NewRegistry()
		r := &Runner{Workers: workers, Obs: reg}
		m, err := r.RunMatrix(cfg, sel, techs, sites, fc)
		if err != nil {
			t.Fatal(err)
		}
		return m, reg.DeterministicSnapshot()
	}
	seqM, seqSnap := run(1)
	parM, parSnap := run(8)

	if len(seqSnap) == 0 {
		t.Fatal("deterministic snapshot is empty: no layer was instrumented")
	}
	if !reflect.DeepEqual(seqSnap, parSnap) {
		for i := range seqSnap {
			if i < len(parSnap) && !reflect.DeepEqual(seqSnap[i], parSnap[i]) {
				t.Errorf("metric %s: workers=1 %+v vs workers=8 %+v",
					seqSnap[i].Name, seqSnap[i], parSnap[i])
			}
		}
		t.Fatal("deterministic metric snapshots differ between workers=1 and workers=8")
	}

	// Instrumentation must not perturb results: instrumented matrices equal
	// the bare one run outcome for outcome.
	for ti := range techs {
		for si := range sites {
			if !reflect.DeepEqual(bare[ti][si].Outcomes, seqM[ti][si].Outcomes) ||
				!reflect.DeepEqual(bare[ti][si].Outcomes, parM[ti][si].Outcomes) {
				t.Fatalf("run [%d][%d]: outcomes differ between bare and instrumented matrices", ti, si)
			}
		}
	}
}

// TestRunnerProgress checks the progress callback: monotone, serialized,
// ending exactly at total.
func TestRunnerProgress(t *testing.T) {
	cfg := tinyConfig(32)
	sel := mustSelect(t, cfg, 15)
	fc := quickFailover()
	sites := []string{"atl", "msn"}

	var calls []int
	r := &Runner{Workers: 4}
	r.Progress = func(done, total int) {
		if total != 2 {
			t.Errorf("total = %d, want 2", total)
		}
		calls = append(calls, done)
	}
	if _, err := r.RunMatrix(cfg, sel, []core.Technique{core.Anycast{}}, sites, fc); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 2 || calls[0] != 1 || calls[1] != 2 {
		t.Fatalf("progress calls = %v, want [1 2]", calls)
	}
}

// TestRunnerRecordsVolatileMetrics checks the runner's own instruments:
// run counts, snapshot restores, and cache hits show up as volatile metrics
// (excluded from the deterministic snapshot).
func TestRunnerRecordsVolatileMetrics(t *testing.T) {
	cfg := tinyConfig(33)
	sel := mustSelect(t, cfg, 15)
	fc := quickFailover()
	sites := []string{"atl", "msn"}

	reg := obs.NewRegistry()
	r := &Runner{Workers: 2, Obs: reg}
	for i := 0; i < 2; i++ {
		if _, err := r.RunMatrix(cfg, sel, []core.Technique{core.Anycast{}}, sites, fc); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("experiment_runs_total").Value(); got != 4 {
		t.Fatalf("experiment_runs_total = %d, want 4", got)
	}
	if got := reg.Counter("experiment_snapshot_restores_total").Value(); got != 4 {
		t.Fatalf("experiment_snapshot_restores_total = %d, want 4", got)
	}
	if got := reg.Counter("experiment_snapshot_cache_hits_total").Value(); got < 1 {
		t.Fatalf("experiment_snapshot_cache_hits_total = %d, want >= 1", got)
	}
	for _, m := range reg.DeterministicSnapshot() {
		if m.Name == "experiment_runs_total" {
			t.Fatal("runner metrics leaked into the deterministic snapshot")
		}
	}
}

// TestSentinelErrors pins the experiment package's typed failures.
func TestSentinelErrors(t *testing.T) {
	cfg := tinyConfig(34)
	sel := mustSelect(t, cfg, 10)
	fc := quickFailover()

	_, err := RunFailover(cfg, sel, core.ReactiveAnycast{}, "zzz", fc)
	if !errors.Is(err, core.ErrUnknownSite) {
		t.Fatalf("unknown site: got %v, want errors.Is ErrUnknownSite", err)
	}
	_, err = RunFailover(cfg, &Selection{}, core.ReactiveAnycast{}, "atl", fc)
	if !errors.Is(err, ErrNoTargets) {
		t.Fatalf("empty selection: got %v, want errors.Is ErrNoTargets", err)
	}
}

// TestWorldConfigOptions pins DefaultWorldConfig and the functional options.
func TestWorldConfigOptions(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultWorldConfig(
		WithSeed(7),
		WithWorkers(3),
		WithDamping(),
		WithObs(reg),
		WithScale(0.1),
	)
	if cfg.Seed != 7 || cfg.Workers != 3 || cfg.Obs != reg {
		t.Fatalf("options not applied: %+v", cfg)
	}
	if cfg.BGP.Damping == nil {
		t.Fatal("WithDamping left damping nil")
	}
	if cfg.BGP.MRAI != bgp.DefaultConfig().MRAI {
		t.Fatal("WithDamping did not fill BGP defaults first")
	}
	// Scale floors keep tiny topologies connected.
	if cfg.Topology.NumTransit != 20 || cfg.Topology.NumStub != 60 {
		t.Fatalf("WithScale(0.1) = %+v", cfg.Topology)
	}
	if got := DefaultWorldConfig(); got.Seed != 42 {
		t.Fatalf("baseline config = %+v", got)
	}
	if got := DefaultWorldConfig(WithScale(1.0)); !reflect.DeepEqual(got.Topology, DefaultWorldConfig().Topology) {
		t.Fatal("WithScale(1) must leave generator defaults untouched")
	}

	r := cfg.Runner()
	if r.Workers != 3 || r.Obs != reg {
		t.Fatalf("WorldConfig.Runner() = %+v", r)
	}
}

// TestManifestDigest pins the config fingerprint: identical simulation
// identity ⇒ identical digest, regardless of Workers/Obs; any identity field
// change ⇒ different digest.
func TestManifestDigest(t *testing.T) {
	a := tinyConfig(35)
	b := tinyConfig(35)
	b.Workers = 9
	b.Obs = obs.NewRegistry()
	if a.Digest() != b.Digest() {
		t.Fatal("Workers/Obs changed the digest")
	}
	c := tinyConfig(36)
	if a.Digest() == c.Digest() {
		t.Fatal("seed change did not change the digest")
	}
	d := tinyConfig(35)
	d.Topology.NumStub++
	if a.Digest() == d.Digest() {
		t.Fatal("topology change did not change the digest")
	}

	man := NewManifest("fig2", a, 4, nil)
	if man.Seed != 35 || man.ConfigDigest != a.Digest() || man.Command != "fig2" || man.Workers != 4 {
		t.Fatalf("manifest = %+v", man)
	}
	if got := ManifestPath("out/results.json"); got != "out/results.manifest.json" {
		t.Fatalf("ManifestPath = %q", got)
	}
	if got := ManifestPath("results"); got != "results.manifest.json" {
		t.Fatalf("ManifestPath = %q", got)
	}
}
