package experiment

import (
	"fmt"
	"math"

	"bestofboth/internal/core"
	"bestofboth/internal/dns"
	"bestofboth/internal/stats"
)

// UnicastDNSConfig parameterizes the unicast-baseline failover model. The
// paper could not measure unicast failover on the real Internet (its
// emulated CDN hosts no popular service, §5), so this experiment quantifies
// it from first principles using the machinery the paper cites: record TTL
// [Moura et al. 2019] and TTL-violating clients [Allman 2020].
type UnicastDNSConfig struct {
	// TTL of the service records in seconds (paper context: popular
	// domains use ~600 s at median; Akamai uses 20 s).
	TTL uint32
	// Clients is the client population size.
	Clients int
	// Violations models clients using records past expiry.
	Violations dns.ViolationModel
	// Horizon caps the measured failover time in seconds (CDF clamp).
	Horizon float64
}

// DefaultUnicastDNSConfig matches the literature's parameters.
func DefaultUnicastDNSConfig() UnicastDNSConfig {
	return UnicastDNSConfig{
		TTL:        600,
		Clients:    2000,
		Violations: dns.DefaultViolationModel(),
		Horizon:    7200,
	}
}

// UnicastDNSFailover simulates a site failure under pure unicast: every
// client cached the failed site's record at a uniformly random time before
// the failure, the CDN repoints DNS after its detection delay, and each
// client recovers when it actually re-resolves — at TTL expiry, or far
// later if it violates TTL. Returns the failover-time CDF across clients.
func UnicastDNSFailover(cfg WorldConfig, ucfg UnicastDNSConfig) (*stats.CDF, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	w.CDN.DNSTTL = ucfg.TTL
	if err := w.CDN.Deploy(core.Unicast{}); err != nil {
		return nil, fmt.Errorf("experiment: deploying unicast: %w", err)
	}
	w.Converge(3600)

	failed := w.CDN.Sites()[0]
	auth := w.CDN.Authoritative()
	name := failed.Code + ".cdn.example."
	rng := w.Sim.Rand()

	// Each client sits behind its own recursive resolver (clients across
	// the Internet use different resolvers) and resolved at a uniform time
	// in the TTL window preceding the failure, so cache expiries are
	// uniform over (t0, t0+TTL].
	type clientState struct {
		c         *dns.Client
		resolver  *dns.Resolver
		fetchedAt float64
	}
	t0 := w.Sim.Now() + float64(ucfg.TTL) // failure instant
	clients := make([]clientState, 0, ucfg.Clients)
	for i := 0; i < ucfg.Clients; i++ {
		resolver := dns.NewResolver(auth)
		c := dns.NewClient(resolver, name, cfg.Seed+int64(i)*7919, ucfg.Violations)
		fetchedAt := w.Sim.Now() + rng.Float64()*float64(ucfg.TTL)
		if _, err := c.Addr(fetchedAt); err != nil {
			return nil, fmt.Errorf("experiment: client resolve: %w", err)
		}
		clients = append(clients, clientState{c: c, resolver: resolver, fetchedAt: fetchedAt})
	}

	// Fail the site at t0; the controller repoints DNS after detection.
	w.Sim.RunUntil(t0)
	if _, err := w.CDN.FailSite(failed.Code); err != nil {
		return nil, err
	}
	w.Sim.RunUntil(t0 + w.CDN.DetectionDelay + 1)
	dnsUpdated := w.Sim.Now()

	var failover []float64
	for _, cs := range clients {
		// Resolver caches expire alongside the client records they fed;
		// flush so post-recovery verification sees the updated zone (the
		// client-side expiry is the binding constraint either way).
		cs.resolver.Flush()
		_, usageExpiry, ok := cs.c.Expiry()
		if !ok {
			continue
		}
		// The client keeps hitting the dead address until it re-resolves
		// (usageExpiry) and the new record is live (dnsUpdated).
		recover := math.Max(usageExpiry, dnsUpdated)
		ft := recover - t0
		if ft < 0 {
			ft = 0
		}
		if ft > ucfg.Horizon {
			ft = ucfg.Horizon
		}
		// Verify through the machinery: after recovery the client must
		// fetch a healthy address.
		if addr, err := cs.c.Addr(recover + 1); err == nil && addr == failed.Addr {
			return nil, fmt.Errorf("experiment: client still on failed address after recovery point")
		}
		failover = append(failover, ft)
	}
	return stats.NewCDF(failover), nil
}
