package experiment

import (
	"fmt"
	"math/rand"
	"sort"

	"bestofboth/internal/core"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/topology"
)

// ProximityRTT is the paper's site-proximity threshold: only targets within
// 50 ms round-trip of a site are evaluated against it (§5.1).
const ProximityRTT = 0.050

// SiteTargets holds the per-site target sets of §5.1.
type SiteTargets struct {
	Code string
	// Proximate are targets within ProximityRTT of the site (measured with
	// a unicast announcement from the site).
	Proximate []topology.NodeID
	// NotAnycast are the Proximate targets that pure anycast routes to a
	// different site — the set on which traffic control is evaluated,
	// since anycast-routed targets are steerable by construction.
	NotAnycast []topology.NodeID
	// AnycastHere are the Proximate targets anycast routes to this site
	// (the controllable set for the anycast baseline).
	AnycastHere []topology.NodeID
}

// Selection is the full §5.1 target selection.
type Selection struct {
	Sites []SiteTargets
	// AnycastCatchment maps every considered target to its anycast site
	// code ("" if unreachable).
	AnycastCatchment map[topology.NodeID]string
}

// ForSite returns the entry for a site code, or nil.
func (s *Selection) ForSite(code string) *SiteTargets {
	for i := range s.Sites {
		if s.Sites[i].Code == code {
			return &s.Sites[i]
		}
	}
	return nil
}

// SelectTargets reproduces §5.1 against the simulated Internet: it builds
// one throwaway world with unicast announcements to measure per-site RTTs,
// and a second with pure anycast to measure catchments, then filters and
// caps targets per site. maxPerSite caps each site's sets (the paper uses
// 50 K; simulations typically use 50-500), spreading selection across
// targets deterministically from cfg.Seed. Zero means no cap.
func SelectTargets(cfg WorldConfig, maxPerSite int) (*Selection, error) {
	// Pass 1: unicast world for proximity.
	wu, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	if err := wu.CDN.Deploy(core.Unicast{}); err != nil {
		return nil, fmt.Errorf("experiment: deploying unicast for proximity: %w", err)
	}
	wu.Converge(3600)

	type siteInfo struct {
		code string
		rtts map[topology.NodeID]float64
	}
	var infos []siteInfo
	targets := wu.Targets()
	for _, s := range wu.CDN.Sites() {
		pr := dataplane.NewProber(wu.Plane, s.Node, s.Addr)
		// Probe from the site itself: RTT = forward static + reverse
		// BGP-routed path back to the site's unicast prefix.
		rtts := make(map[topology.NodeID]float64, len(targets))
		for _, tgt := range targets {
			if rtt, ok := pr.RTT(tgt.ID); ok {
				rtts[tgt.ID] = rtt
			}
		}
		infos = append(infos, siteInfo{code: s.Code, rtts: rtts})
	}

	// Pass 2: anycast world for catchments.
	wa, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	if err := wa.CDN.Deploy(core.Anycast{}); err != nil {
		return nil, fmt.Errorf("experiment: deploying anycast for catchments: %w", err)
	}
	wa.Converge(3600)

	catch := make(map[topology.NodeID]string, len(targets))
	for _, tgt := range targets {
		if s := wa.CDN.CatchmentOf(tgt.ID, core.AnycastServiceAddr); s != nil {
			catch[tgt.ID] = s.Code
		} else {
			catch[tgt.ID] = ""
		}
	}

	sel := &Selection{AnycastCatchment: catch}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for _, info := range infos {
		st := SiteTargets{Code: info.code}
		var prox []topology.NodeID
		for id, rtt := range info.rtts {
			if rtt <= ProximityRTT {
				prox = append(prox, id)
			}
		}
		// Deterministic order before sampling.
		sort.Slice(prox, func(i, j int) bool { return prox[i] < prox[j] })
		st.Proximate = capTargets(rng, prox, maxPerSite)
		for _, id := range st.Proximate {
			if catch[id] == info.code {
				st.AnycastHere = append(st.AnycastHere, id)
			} else {
				st.NotAnycast = append(st.NotAnycast, id)
			}
		}
		sel.Sites = append(sel.Sites, st)
	}
	return sel, nil
}

// capTargets samples up to max elements without replacement, preserving
// determinism. Since the generator allocates one target per AS, sampling
// uniformly already spreads targets across ASes as §5.1 requires.
func capTargets(rng *rand.Rand, ids []topology.NodeID, max int) []topology.NodeID {
	if max <= 0 || len(ids) <= max {
		return ids
	}
	idx := rng.Perm(len(ids))[:max]
	sort.Ints(idx)
	out := make([]topology.NodeID, 0, max)
	for _, i := range idx {
		out = append(out, ids[i])
	}
	return out
}
