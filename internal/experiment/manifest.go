package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"bestofboth/internal/obs"
	"bestofboth/internal/topology"
	"bestofboth/internal/traffic"
)

// Digest is a stable hex fingerprint of the simulation-identity fields of
// the configuration: two configs digest equally exactly when they build
// bit-identical worlds. Workers and Obs take no part (they never affect
// results), mirroring snapKey. Shards is included even though route state
// is shard-count invariant: the manifest should say how a run was executed,
// and world snapshots are only portable within one shard count.
func (c WorldConfig) Digest() string {
	cfg := c
	cfg.fillDefaults()
	damp := "<nil>"
	if cfg.BGP.Damping != nil {
		damp = fmt.Sprintf("%+v", *cfg.BGP.Damping)
	}
	flat := cfg.BGP
	flat.Damping = nil
	canon := fmt.Sprintf("seed=%d topo=%+v bgp=%+v damp=%s cdn=%+v peers=%d shards=%d demand=%+v",
		cfg.Seed, cfg.Topology, flat, damp, cfg.CDN, cfg.CollectorPeers, maxInt(1, cfg.Shards), cfg.Demand)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// Manifest records how one experiment invocation ran: enough to reproduce
// it (seed, config digest, command) and enough to sanity-check it (the
// final metric snapshot). It is written next to JSON experiment output as
// <output>.manifest.json.
type Manifest struct {
	// Command is the cdnsim subcommand (or other caller-chosen label).
	Command string `json:"command"`
	// Seed is the simulation seed shared by every run of the invocation.
	Seed int64 `json:"seed"`
	// ConfigDigest fingerprints the world configuration; equal digests +
	// equal seeds ⇒ bit-identical simulations.
	ConfigDigest string `json:"configDigest"`
	// Workers is the concurrency bound the invocation ran under. It never
	// affects results; recorded for performance forensics only.
	Workers int `json:"workers"`
	// Metrics is the registry snapshot at write time (volatile metrics
	// included — the manifest describes this invocation, not the abstract
	// simulation).
	Metrics []obs.MetricSnapshot `json:"metrics,omitempty"`
	// Mem records the process memory footprint at write time; nil unless
	// the caller asked for it (cdnsim fills it when -metrics is set).
	Mem *MemFootprint `json:"mem,omitempty"`
	// Demand summarizes the demand model (aggregate demand and capacity,
	// Gini coefficient, top-decile share) when the configuration enables
	// it; nil otherwise.
	Demand *traffic.Summary `json:"demand,omitempty"`
}

// DemandSummary rebuilds the config's demand model — a pure function of
// (Demand config, Seed, topology) — and condenses it for the manifest.
// It returns nil when demand is disabled or the model cannot be built.
func DemandSummary(cfg WorldConfig) *traffic.Summary {
	cfg.fillDefaults()
	if !cfg.Demand.Enabled {
		return nil
	}
	topo, err := topology.Cached(cfg.Topology)
	if err != nil {
		return nil
	}
	nodes := topo.NodesOfClass(topology.ClassCDN)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	codes := make([]string, 0, len(nodes))
	for _, n := range nodes {
		codes = append(codes, n.Site)
	}
	model, err := traffic.NewModel(cfg.Demand, cfg.Seed, clientTargets(topo), codes)
	if err != nil {
		return nil
	}
	s := model.Summary()
	return &s
}

// MemFootprint captures the memory cost of one invocation — the numbers
// paper-scale runs need on record to argue the kernel scales.
type MemFootprint struct {
	// PeakRSSBytes is the process's high-water resident set (VmHWM),
	// 0 where the OS does not expose it.
	PeakRSSBytes uint64 `json:"peakRSSBytes"`
	// TotalAllocBytes is the cumulative heap bytes allocated over the
	// process lifetime (runtime.MemStats.TotalAlloc).
	TotalAllocBytes uint64 `json:"totalAllocBytes"`
	// Mallocs is the cumulative count of heap objects allocated.
	Mallocs uint64 `json:"mallocs"`
}

// ReadMemFootprint samples the current process's memory footprint.
func ReadMemFootprint() *MemFootprint {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &MemFootprint{
		PeakRSSBytes:    peakRSSBytes(),
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
	}
}

// peakRSSBytes reads VmHWM from /proc/self/status; 0 on platforms or
// failures where it is unavailable (the footprint is best-effort).
func peakRSSBytes() uint64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// NewManifest assembles a manifest for one invocation. reg may be nil.
func NewManifest(command string, cfg WorldConfig, workers int, reg *obs.Registry) Manifest {
	return Manifest{
		Command:      command,
		Seed:         cfg.Seed,
		ConfigDigest: cfg.Digest(),
		Workers:      workers,
		Metrics:      reg.Snapshot(),
		Demand:       DemandSummary(cfg),
	}
}

// WriteFile writes the manifest as indented JSON.
func (m Manifest) WriteFile(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("experiment: encoding manifest: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ManifestPath derives the manifest location from a JSON output path:
// results.json → results.manifest.json.
func ManifestPath(jsonOut string) string {
	const suffix = ".json"
	if len(jsonOut) > len(suffix) && jsonOut[len(jsonOut)-len(suffix):] == suffix {
		return jsonOut[:len(jsonOut)-len(suffix)] + ".manifest.json"
	}
	return jsonOut + ".manifest.json"
}
