package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"bestofboth/internal/obs"
	"bestofboth/internal/topology"
	"bestofboth/internal/traffic"
	"bestofboth/pkg/bestofboth/api"
)

// Digest is a stable hex fingerprint of the simulation-identity fields of
// the configuration: two configs digest equally exactly when they build
// bit-identical worlds. Workers and Obs take no part (they never affect
// results), mirroring snapKey. Shards is included even though route state
// is shard-count invariant: the manifest should say how a run was executed,
// and world snapshots are only portable within one shard count.
func (c WorldConfig) Digest() string {
	cfg := c
	cfg.fillDefaults()
	damp := "<nil>"
	if cfg.BGP.Damping != nil {
		damp = fmt.Sprintf("%+v", *cfg.BGP.Damping)
	}
	flat := cfg.BGP
	flat.Damping = nil
	canon := fmt.Sprintf("seed=%d topo=%+v bgp=%+v damp=%s cdn=%+v peers=%d shards=%d partition=%s demand=%+v",
		cfg.Seed, cfg.Topology, flat, damp, cfg.CDN, cfg.CollectorPeers, maxInt(1, cfg.Shards), cfg.Partition, cfg.Demand)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// Manifest is the versioned wire document recording how one experiment
// invocation ran — an alias of the public api.Manifest so the manifest,
// the daemon's responses, and -json output share one schema.
type Manifest = api.Manifest

// MemFootprint is the wire form of one invocation's memory cost.
type MemFootprint = api.MemFootprint

// DemandSummary rebuilds the config's demand model — a pure function of
// (Demand config, Seed, topology) — and condenses it for the manifest.
// It returns nil when demand is disabled or the model cannot be built.
func DemandSummary(cfg WorldConfig) *api.DemandSummary {
	cfg.fillDefaults()
	if !cfg.Demand.Enabled {
		return nil
	}
	topo, err := topology.Cached(cfg.Topology)
	if err != nil {
		return nil
	}
	nodes := topo.NodesOfClass(topology.ClassCDN)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	codes := make([]string, 0, len(nodes))
	for _, n := range nodes {
		codes = append(codes, n.Site)
	}
	model, err := traffic.NewModel(cfg.Demand, cfg.Seed, clientTargets(topo), codes)
	if err != nil {
		return nil
	}
	return demandSummaryOf(model.Summary())
}

// demandSummaryOf converts the internal traffic summary to its wire twin.
func demandSummaryOf(s traffic.Summary) *api.DemandSummary {
	return &api.DemandSummary{
		Targets:        s.Targets,
		TotalRPS:       s.TotalRPS,
		CapacityRPS:    s.CapacityRPS,
		Gini:           s.Gini,
		TopDecileShare: s.TopDecileShare,
		Distribution:   s.Distribution,
	}
}

// metricSamples converts a registry snapshot to the wire representation.
// reg may be nil (nil in, nil out).
func metricSamples(reg *obs.Registry) []api.MetricSample {
	snap := reg.Snapshot()
	if snap == nil {
		return nil
	}
	out := make([]api.MetricSample, 0, len(snap))
	for _, m := range snap {
		ms := api.MetricSample{
			Name:     m.Name,
			Kind:     m.Kind,
			Value:    m.Value,
			Count:    m.Count,
			Sum:      m.Sum,
			Volatile: m.Volatile,
		}
		for _, b := range m.Buckets {
			ms.Buckets = append(ms.Buckets, api.HistBucket{LE: b.LE, Count: b.Count})
		}
		out = append(out, ms)
	}
	return out
}

// ReadMemFootprint samples the current process's memory footprint.
func ReadMemFootprint() *MemFootprint {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &MemFootprint{
		PeakRSSBytes:    peakRSSBytes(),
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
	}
}

// peakRSSBytes reads VmHWM from /proc/self/status; 0 on platforms or
// failures where it is unavailable (the footprint is best-effort).
func peakRSSBytes() uint64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// NewManifest assembles a manifest for one invocation. reg may be nil.
func NewManifest(command string, cfg WorldConfig, workers int, reg *obs.Registry) Manifest {
	return Manifest{
		APIVersion:   api.Version,
		Command:      command,
		Seed:         cfg.Seed,
		ConfigDigest: cfg.Digest(),
		Workers:      workers,
		Metrics:      metricSamples(reg),
		Demand:       DemandSummary(cfg),
	}
}

// ManifestPath derives the manifest location from a JSON output path:
// results.json → results.manifest.json.
func ManifestPath(jsonOut string) string {
	const suffix = ".json"
	if len(jsonOut) > len(suffix) && jsonOut[len(jsonOut)-len(suffix):] == suffix {
		return jsonOut[:len(jsonOut)-len(suffix)] + ".manifest.json"
	}
	return jsonOut + ".manifest.json"
}
