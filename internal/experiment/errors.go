package experiment

import "errors"

// ErrNoTargets reports a failover run whose target selection carries no
// entry for the failed site. Wrapped with %w at call sites; test with
// errors.Is.
var ErrNoTargets = errors.New("no target selection")
