package experiment

import (
	"os"
	"reflect"
	"sync"
	"testing"

	"bestofboth/internal/core"
	"bestofboth/internal/topology"
)

// TestInterningDigestEquivalence is the observable-equivalence gate for the
// zero-copy kernel: AS-path interning and copy-on-write restores must not
// change a single byte of protocol or forwarding state. A freshly built
// converged world (the workers=1 code path) and eight worlds restored
// concurrently from one shared snapshot (the workers=8 code path) must all
// produce byte-identical RouteStateDigest and FIBDigest outputs.
// TestPaperScaleDeterminism reruns the -scale paper Figure 2 regime at
// workers=1 and workers=8 and requires deeply equal results. It takes tens
// of seconds at full scale, so it only runs when PAPER_SCALE_TEST is set
// (the committed reference manifest in EXPERIMENTS.md was produced by the
// equivalent cdnsim invocations).
func TestPaperScaleDeterminism(t *testing.T) {
	if os.Getenv("PAPER_SCALE_TEST") == "" {
		t.Skip("set PAPER_SCALE_TEST=1 to run the paper-scale determinism check")
	}
	cfg := DefaultWorldConfig(WithSeed(42), WithPaperScale())
	sel, err := SelectTargets(cfg, PaperTargetsPerSite)
	if err != nil {
		t.Fatal(err)
	}
	fc := DefaultFailoverConfig()
	fc.MaxTargets = 60
	techs := []core.Technique{core.ReactiveAnycast{}, core.Anycast{}}
	sites := topology.DefaultSiteCodes

	seq, err := (&Runner{Workers: 1}).Figure2(cfg, sel, techs, sites, fc)
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Runner{Workers: 8}).Figure2(cfg, sel, techs, sites, fc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("paper-scale Figure 2 differs between workers=1 and workers=8")
	}
}

func TestInterningDigestEquivalence(t *testing.T) {
	cfg := tinyConfig(27)
	tech := core.ReactiveAnycast{}
	const converge = 3600

	fresh, err := newDeployedWorld(cfg, tech, converge)
	if err != nil {
		t.Fatal(err)
	}
	wantRoutes := fresh.Net.RouteStateDigest()
	wantFIB := fresh.Plane.FIBDigest()
	if wantRoutes == "" || wantFIB == "" {
		t.Fatal("fresh world produced empty digests")
	}

	snap, err := buildSnapshot(cfg, tech, converge)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("converged world was not snapshotable")
	}

	const workers = 8
	type digests struct {
		routes, fib string
		err         error
	}
	got := make([]digests, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := RestoreWorld(snap)
			if err != nil {
				got[i].err = err
				return
			}
			got[i].routes = w.Net.RouteStateDigest()
			got[i].fib = w.Plane.FIBDigest()
		}(i)
	}
	wg.Wait()
	for i, d := range got {
		if d.err != nil {
			t.Fatalf("worker %d: restore failed: %v", i, d.err)
		}
		if d.routes != wantRoutes {
			t.Fatalf("worker %d: RouteStateDigest differs from fresh build", i)
		}
		if d.fib != wantFIB {
			t.Fatalf("worker %d: FIBDigest differs from fresh build", i)
		}
	}
}
