package experiment

import (
	"bestofboth/internal/stats"
	"bestofboth/pkg/bestofboth/api"
)

// CDFSummary is the JSON-friendly form of a distribution: headline
// percentiles plus up to 200 curve points for plotting.
type CDFSummary struct {
	N      int          `json:"n"`
	P25    float64      `json:"p25"`
	P50    float64      `json:"p50"`
	P75    float64      `json:"p75"`
	P90    float64      `json:"p90"`
	P99    float64      `json:"p99"`
	Max    float64      `json:"max"`
	Points [][2]float64 `json:"points,omitempty"`
}

// SummarizeCDF extracts a CDFSummary with up to points curve samples.
func SummarizeCDF(c *stats.CDF, points int) CDFSummary {
	return CDFSummary{
		N:      c.N(),
		P25:    c.Percentile(25),
		P50:    c.Median(),
		P75:    c.Percentile(75),
		P90:    c.Percentile(90),
		P99:    c.Percentile(99),
		Max:    c.Max(),
		Points: c.Points(points),
	}
}

// WeightedCDFSummary is the exported form of a demand-weighted
// distribution: the same headline percentiles, weighted by user rps.
type WeightedCDFSummary struct {
	N      int     `json:"n"`
	Weight float64 `json:"weight"` // total demand behind the samples, rps
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
}

// SummarizeWeightedCDF extracts a WeightedCDFSummary; nil in, nil out.
func SummarizeWeightedCDF(c *stats.WeightedCDF) *WeightedCDFSummary {
	if c == nil || c.N() == 0 {
		return nil
	}
	return &WeightedCDFSummary{
		N:      c.N(),
		Weight: c.TotalWeight(),
		P50:    c.Median(),
		P90:    c.Percentile(90),
		P99:    c.Percentile(99),
		Mean:   c.Mean(),
		Max:    c.Max(),
	}
}

// TechniqueSeries is the exported form of one Figure 2/5 curve pair.
type TechniqueSeries struct {
	Technique    string         `json:"technique"`
	Reconnection CDFSummary     `json:"reconnection"`
	Failover     CDFSummary     `json:"failover"`
	Stability    StabilityStats `json:"stability"`
	// UserReconnection/UserFailover are the demand-weighted variants,
	// present when the runs carried a demand model.
	UserReconnection *WeightedCDFSummary `json:"userReconnection,omitempty"`
	UserFailover     *WeightedCDFSummary `json:"userFailover,omitempty"`
}

// ExportPairs converts CDFPairs for JSON output.
func ExportPairs(pairs []CDFPair, points int) []TechniqueSeries {
	out := make([]TechniqueSeries, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, TechniqueSeries{
			Technique:        p.Technique,
			Reconnection:     SummarizeCDF(p.Reconnection, points),
			Failover:         SummarizeCDF(p.Failover, points),
			Stability:        p.Stability,
			UserReconnection: SummarizeWeightedCDF(p.UserReconnection),
			UserFailover:     SummarizeWeightedCDF(p.UserFailover),
		})
	}
	return out
}

// Report accumulates experiment results for machine-readable output — an
// alias of the versioned api.Report wire document.
type Report = api.Report

// NewReport creates an empty report for a seed.
func NewReport(seed int64) *Report { return api.NewReport(seed) }
