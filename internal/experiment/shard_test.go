package experiment

import (
	"os"
	"testing"

	"bestofboth/internal/core"
	"bestofboth/internal/scenario"
)

// shardCounts is the equivalence matrix the sharded runner is gated on:
// the classic single-kernel world, the smallest genuinely parallel split,
// and the paper-scale CI configuration.
var shardCounts = []int{1, 2, 8}

// partitionModes is the partition matrix every shard count is crossed
// with: both placement strategies must hit the same converged fixed point.
var partitionModes = []string{PartitionStatic, PartitionProfiled}

// TestShardedDigestEquivalence is the observable-equivalence gate for the
// sharded convergence runner: for every technique, a world converged at
// shards=N must produce byte-identical RouteStateDigest and FIBDigest
// outputs to the classic shards=1 world. Per-shard RNG streams make the
// message-level timing differ, but the protocol's converged fixed point is
// timing-independent, and the digests hash exactly that fixed point.
func TestShardedDigestEquivalence(t *testing.T) {
	const converge = 3600
	for _, tech := range core.AllTechniques() {
		tech := tech
		t.Run(tech.Name(), func(t *testing.T) {
			t.Parallel()
			var wantRoutes, wantFIB string
			first := true
			for _, shards := range shardCounts {
				for _, mode := range partitionModes {
					cfg := tinyConfig(27)
					cfg.Shards = shards
					cfg.Partition = mode
					w, err := newDeployedWorld(cfg, tech, converge)
					if err != nil {
						t.Fatalf("shards=%d partition=%s: %v", shards, mode, err)
					}
					routes := w.Net.RouteStateDigest()
					fib := w.Plane.FIBDigest()
					if routes == "" || fib == "" {
						t.Fatalf("shards=%d partition=%s: empty digests", shards, mode)
					}
					if first {
						wantRoutes, wantFIB, first = routes, fib, false
						continue
					}
					if routes != wantRoutes {
						t.Fatalf("shards=%d partition=%s: RouteStateDigest differs from shards=%d", shards, mode, shardCounts[0])
					}
					if fib != wantFIB {
						t.Fatalf("shards=%d partition=%s: FIBDigest differs from shards=%d", shards, mode, shardCounts[0])
					}
				}
			}
		})
	}
}

// TestShardedScenarioDigestEquivalence runs every bundled scenario to its
// horizon at each shard count and requires byte-identical route and FIB
// digests after a full post-scenario drain (the drain lets damping reuse
// timers fire so suppression state resolves before hashing).
func TestShardedScenarioDigestEquivalence(t *testing.T) {
	cfg := tinyConfig(31)
	sel, err := SelectTargets(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	tech := core.ReactiveAnycast{}
	for _, sc := range scenario.Library() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			var wantRoutes, wantFIB string
			first := true
			for _, shards := range shardCounts {
				for _, mode := range partitionModes {
					c := ScenarioWorldConfig(cfg, sc)
					c.Shards = shards
					c.Partition = mode
					w, err := newDeployedWorld(c, tech, 3600)
					if err != nil {
						t.Fatalf("shards=%d partition=%s: %v", shards, mode, err)
					}
					env := &scenario.Env{Sim: w.Sim, Topo: w.Topo, Net: w.Net, Plane: w.Plane, CDN: w.CDN}
					if _, err := scenario.Run(env, sc, scenarioGroups(w, sel, 6), scenario.Options{}); err != nil {
						t.Fatalf("shards=%d partition=%s: %v", shards, mode, err)
					}
					// Let damping reuse timers and any residual churn settle so
					// the digest hashes the post-scenario fixed point.
					w.Converge(7200)
					routes := w.Net.RouteStateDigest()
					fib := w.Plane.FIBDigest()
					if first {
						wantRoutes, wantFIB, first = routes, fib, false
						continue
					}
					if routes != wantRoutes {
						t.Fatalf("shards=%d partition=%s: RouteStateDigest differs from shards=%d", shards, mode, shardCounts[0])
					}
					if fib != wantFIB {
						t.Fatalf("shards=%d partition=%s: FIBDigest differs from shards=%d", shards, mode, shardCounts[0])
					}
				}
			}
		})
	}
}

// TestInternetScaleConverge builds the -scale internet world sharded 8 ways,
// converges it, and reports the manifest numbers recorded in EXPERIMENTS.md.
// At ≈72K ASes it needs several GiB and minutes of wall clock, so it only
// runs when INTERNET_SCALE_TEST is set.
func TestInternetScaleConverge(t *testing.T) {
	if os.Getenv("INTERNET_SCALE_TEST") == "" {
		t.Skip("set INTERNET_SCALE_TEST=1 to run the internet-scale convergence check")
	}
	mode := os.Getenv("INTERNET_SCALE_PARTITION")
	if mode == "" {
		mode = PartitionStatic
	}
	cfg := DefaultWorldConfig(WithSeed(42), WithInternetScale(), WithShards(8), WithPartition(mode))
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("internet-scale world: %d ASes, shards=%d, partition=%s, window=%gs",
		w.Topo.Len(), w.Net.Shards(), cfg.Partition, w.Net.ShardRunner().Window())
	if err := w.CDN.Deploy(core.ReactiveAnycast{}); err != nil {
		t.Fatal(err)
	}
	w.Converge(3600)
	if w.Sim.Pending() != 0 {
		t.Fatalf("internet-scale world did not converge: %d pending", w.Sim.Pending())
	}
	counts := w.Net.ShardEventCounts()
	var sum, max uint64
	for _, c := range counts {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum > 0 {
		t.Logf("event imbalance max/mean: %.3f (partition=%s)",
			float64(max)*float64(len(counts))/float64(sum), cfg.Partition)
	}
	mem := ReadMemFootprint()
	t.Logf("config digest: %s", cfg.Digest())
	t.Logf("mem: peakRSS=%d totalAlloc=%d mallocs=%d",
		mem.PeakRSSBytes, mem.TotalAllocBytes, mem.Mallocs)
}
