package experiment

import (
	"fmt"
	"net/netip"
	"strings"

	"bestofboth/internal/bgp"
	"bestofboth/internal/core"
	"bestofboth/internal/stats"
	"bestofboth/internal/topology"
	"bestofboth/internal/trace"
)

// Appendix C.1 experiment prefixes: a unicast prefix u announced only at
// the site under study and an anycast prefix a5 announced from every site
// with the others prepending five times (§C.1.1).
var (
	c1UnicastPrefix = netip.MustParsePrefix("184.164.249.0/24")
	c1AnycastPrefix = netip.MustParsePrefix("184.164.250.0/24")
)

// AppendixC1 reproduces the poor-control analysis for a site (the paper
// studies sea1): why do targets route to prepended sites instead?
func AppendixC1(cfg WorldConfig, sel *Selection, siteCode string) (*trace.Result, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	site := w.CDN.Site(siteCode)
	if site == nil {
		return nil, fmt.Errorf("experiment: unknown site %q", siteCode)
	}
	st := sel.ForSite(siteCode)
	if st == nil {
		return nil, fmt.Errorf("experiment: no selection for site %q", siteCode)
	}

	// Announce u from the site under study and a5 from every site, others
	// prepending five times.
	if err := w.Net.Originate(site.Node, c1UnicastPrefix, nil); err != nil {
		return nil, err
	}
	for _, s := range w.CDN.Sites() {
		pol := &bgp.OriginPolicy{}
		if s.Node != site.Node {
			pol.Prepend = 5
		}
		if err := w.Net.Originate(s.Node, c1AnycastPrefix, pol); err != nil {
			return nil, err
		}
	}
	w.Converge(3600)

	return trace.Analyze(w.Plane, w.Topo, st.Proximate,
		core.ServiceAddr(c1UnicastPrefix), core.ServiceAddr(c1AnycastPrefix), site.Node)
}

// RenderC1 formats the §C.1.3 statistics.
func RenderC1(siteCode string, r *trace.Result) string {
	t := &stats.Table{Header: []string{"metric", "value"}}
	t.AddRow("site under study", siteCode)
	t.AddRow("targets with measurable path pairs", fmt.Sprintf("%d", r.Compared))
	t.AddRow("routed to intended site on a5", fmt.Sprintf("%d (%s)", r.ToIntended, fracOf(r.ToIntended, r.Compared)))
	t.AddRow("diverged to another site", fmt.Sprintf("%d", len(r.Diverged)))
	t.AddRow("diverge via R&E next hop", fmt.Sprintf("%d (%s of diverged)", r.ViaRE, fracOf(r.ViaRE, len(r.Diverged))))
	t.AddRow("explained by relationship preference", fmt.Sprintf("%d (%s of comparable)", r.ByRelationship, fracOf(r.ByRelationship, r.RelationshipComparable)))
	return t.Render()
}

func fracOf(n, d int) string {
	if d == 0 {
		return "-"
	}
	return stats.Pct(float64(n) / float64(d))
}

// NodeClassOf is a small helper for tools printing divergence details.
func NodeClassOf(topo *topology.Topology, id topology.NodeID) string {
	n := topo.Node(id)
	if n == nil {
		return "?"
	}
	return n.Class.String()
}

// RenderC1Examples narrates up to n concrete divergences in the style of
// the paper's Level3/NTT/Pacific-Northwest-Gigapop example (§C.1.3).
func RenderC1Examples(topo *topology.Topology, r *trace.Result, n int) string {
	var b strings.Builder
	count := 0
	for _, d := range r.Diverged {
		if d.NextUnicast == d.NextAnycast || count >= n {
			continue
		}
		count++
		div := topo.Node(d.Diverging)
		nu, na := topo.Node(d.NextUnicast), topo.Node(d.NextAnycast)
		fmt.Fprintf(&b, "  target %s: diverging AS is %s; the unicast path continues via its %s %s (%s), the prepended-anycast path via its %s %s (%s)",
			topo.Node(d.Target).Name, div.Name,
			d.RelUnicast, nu.Name, nu.Class,
			d.RelAnycast, na.Name, na.Class)
		if d.ExplainedByRelationship {
			b.WriteString(" — business preference explains the divergence")
		}
		if d.AnycastViaRE {
			b.WriteString(" (R&E shortcut)")
		}
		b.WriteString(".\n")
	}
	if count == 0 {
		return "  (no divergences with distinct next hops to narrate)\n"
	}
	return b.String()
}
