package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bestofboth/internal/core"
	"bestofboth/internal/obs"
	"bestofboth/internal/stats"
)

// Runner executes failover experiment matrices across a worker pool with
// converged-world reuse.
//
// Every ⟨technique, failed site⟩ run is an independent simulation, so the
// matrix parallelizes perfectly across GOMAXPROCS workers. On top of that,
// all runs of one technique share the identical pre-failure trajectory —
// deploy, then converge — so the Runner pays that phase once per technique
// (on a template world), snapshots it, and materializes each per-site run
// from the snapshot. Restored runs are bit-identical to fresh sequential
// runs, so results do not depend on Workers or reuse in any way.
//
// The zero value is ready to use: Workers <= 0 runs GOMAXPROCS workers, and
// reuse is on. Runner{Workers: 1, DisableReuse: true} reproduces the
// historical strictly sequential behavior (at sequential cost).
type Runner struct {
	// Workers bounds the number of concurrently executing runs. <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// DisableReuse turns off converged-world snapshot reuse: every run
	// deploys and converges its own world from scratch.
	DisableReuse bool
	// Obs, when non-nil, instruments every world the Runner materializes and
	// records runner-side metrics (run timings, snapshot cache traffic,
	// worker utilization). Runner metrics are wall-clock and cache-history
	// dependent, so they register as volatile: excluded from
	// obs.Registry.DeterministicSnapshot.
	Obs *obs.Registry
	// Progress, when non-nil, is invoked after each completed run of a
	// matrix with the number of finished runs and the matrix total. Calls
	// are serialized; done reaches total when the matrix finishes without
	// error.
	Progress func(done, total int)

	busy atomic.Int64 // runs currently holding a worker slot
}

func (r *Runner) workers() int {
	if r == nil || r.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

// runnerMetrics bundles the Runner's volatile instruments. All methods are
// nil-safe: a Runner without a registry resolves every metric to nil and the
// recording calls no-op.
type runnerMetrics struct {
	runs       *obs.Counter
	runSeconds *obs.Histogram
	snapBuilds *obs.Counter
	snapHits   *obs.Counter
	restores   *obs.Counter
	buildSecs  *obs.Histogram
	matSecs    *obs.Histogram
	busyMax    *obs.Gauge
}

func (r *Runner) metrics() runnerMetrics {
	var reg *obs.Registry
	if r != nil {
		reg = r.Obs
	}
	return runnerMetrics{
		runs:       reg.VolatileCounter("experiment_runs_total"),
		runSeconds: reg.VolatileHistogram("experiment_run_seconds", obs.DefaultDurationBuckets...),
		snapBuilds: reg.VolatileCounter("experiment_snapshot_builds_total"),
		snapHits:   reg.VolatileCounter("experiment_snapshot_cache_hits_total"),
		restores:   reg.VolatileCounter("experiment_snapshot_restores_total"),
		buildSecs:  reg.VolatileHistogram("experiment_snapshot_build_seconds", obs.DefaultDurationBuckets...),
		matSecs:    reg.VolatileHistogram("experiment_materialize_seconds", obs.DefaultDurationBuckets...),
		busyMax:    reg.VolatileGauge("experiment_workers_busy_max"),
	}
}

// worldSnaps caches converged-world snapshots per ⟨world configuration,
// technique, converge time⟩ across all Runner instances: repeated
// invocations (benchmark iterations, figure 2 followed by figure 5 in one
// process) reuse each other's converge work. Entries are built at most once;
// concurrent requesters for the same key share one build.
var worldSnaps = struct {
	sync.Mutex
	m map[string]*worldSnapEntry
}{m: map[string]*worldSnapEntry{}}

// worldSnapCap bounds retained snapshots; a figure-2 matrix needs one entry
// per technique. Over-cap requests build without memoizing.
const worldSnapCap = 32

type worldSnapEntry struct {
	once sync.Once
	snap *WorldSnapshot
	err  error
}

// snapKey canonicalizes the full converged-world identity. bgp.Config holds
// a *DampingConfig, which %+v would render as a pointer address, so damping
// is flattened explicitly; techniques are flat value structs, so their type
// and formatted value identify them (including e.g. prepend depth).
func snapKey(cfg WorldConfig, tech core.Technique, convergeTime float64) string {
	cfg.fillDefaults()
	damp := "<nil>"
	if cfg.BGP.Damping != nil {
		damp = fmt.Sprintf("%+v", *cfg.BGP.Damping)
	}
	flat := cfg.BGP
	flat.Damping = nil
	// Shards is part of the key even though results are shard-count
	// invariant: a snapshot's kernel list is sized to the shard count, so a
	// snapshot taken at one count cannot restore into a world at another.
	return fmt.Sprintf("seed=%d topo=%+v bgp=%+v damp=%s cdn=%+v peers=%d shards=%d partition=%s demand=%+v tech=%T%+v conv=%g",
		cfg.Seed, cfg.Topology, flat, damp, cfg.CDN, cfg.CollectorPeers, maxInt(1, cfg.Shards), cfg.Partition, cfg.Demand, tech, tech, convergeTime)
}

// buildSnapshot deploys and converges a template world and snapshots it.
// A (nil, nil) return means the world cannot be snapshotted — convergence
// did not drain the event queue within its deadline — and callers must fall
// back to fresh full runs.
func buildSnapshot(cfg WorldConfig, tech core.Technique, convergeTime float64) (*WorldSnapshot, error) {
	w, err := newDeployedWorld(cfg, tech, convergeTime)
	if err != nil {
		return nil, err
	}
	if w.Sim.Pending() != 0 {
		return nil, nil
	}
	snap, err := w.Snapshot()
	if err != nil {
		return nil, nil
	}
	return snap, nil
}

// convergedSnapshot returns the (possibly cached) converged snapshot for the
// key, or nil when reuse is off or snapshotting is impossible.
func (r *Runner) convergedSnapshot(cfg WorldConfig, tech core.Technique, convergeTime float64) (*WorldSnapshot, error) {
	if r != nil && r.DisableReuse {
		return nil, nil
	}
	m := r.metrics()
	key := snapKey(cfg, tech, convergeTime)
	worldSnaps.Lock()
	e, ok := worldSnaps.m[key]
	if !ok {
		if len(worldSnaps.m) >= worldSnapCap {
			worldSnaps.Unlock()
			m.snapBuilds.Inc()
			defer obs.StartTimer(m.buildSecs).Stop()
			return buildSnapshot(cfg, tech, convergeTime)
		}
		e = &worldSnapEntry{}
		worldSnaps.m[key] = e
	}
	worldSnaps.Unlock()
	if ok {
		m.snapHits.Inc()
	}
	e.once.Do(func() {
		m.snapBuilds.Inc()
		t := obs.StartTimer(m.buildSecs)
		e.snap, e.err = buildSnapshot(cfg, tech, convergeTime)
		t.Stop()
	})
	return e.snap, e.err
}

// materialize produces a deployed, converged world ready for one failover
// run: restored from the snapshot when one exists, built from scratch
// otherwise. Restored worlds are re-instrumented with the caller's registry
// (snapshots strip theirs).
func (r *Runner) materialize(cfg WorldConfig, tech core.Technique, convergeTime float64, snap *WorldSnapshot) (*World, error) {
	m := r.metrics()
	defer obs.StartTimer(m.matSecs).Stop()
	if snap != nil {
		m.restores.Inc()
		w, err := RestoreWorld(snap)
		if err != nil {
			return nil, err
		}
		w.Instrument(cfg.Obs)
		return w, nil
	}
	return newDeployedWorld(cfg, tech, convergeTime)
}

// RunMatrix executes every ⟨technique, failed site⟩ failover experiment and
// returns results indexed [technique][site], matching the argument order.
// Runs execute concurrently up to the worker bound; each run is an
// independent deterministic simulation, so the results are identical for
// any worker count.
func (r *Runner) RunMatrix(cfg WorldConfig, sel *Selection, techs []core.Technique, sites []string, fc FailoverConfig) ([][]*RunResult, error) {
	if r != nil && r.Obs != nil {
		cfg.Obs = r.Obs
	}
	m := r.metrics()
	results := make([][]*RunResult, len(techs))
	for i := range results {
		results[i] = make([]*RunResult, len(sites))
	}
	total := len(techs) * len(sites)
	done := 0
	sem := make(chan struct{}, r.workers())
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	acquire := func() {
		sem <- struct{}{}
		if r != nil {
			m.busyMax.SetMax(float64(r.busy.Add(1)))
		}
	}
	release := func() {
		if r != nil {
			r.busy.Add(-1)
		}
		<-sem
	}
	var wg sync.WaitGroup
	for ti := range techs {
		wg.Add(1)
		go func(ti int, tech core.Technique) {
			defer wg.Done()
			// Build (or fetch) the technique's converged template under a
			// worker slot, then fan the per-site runs out across slots.
			acquire()
			snap, err := r.convergedSnapshot(cfg, tech, fc.ConvergeTime)
			release()
			if err != nil {
				fail(err)
				return
			}
			var swg sync.WaitGroup
			for si := range sites {
				swg.Add(1)
				go func(si int, site string) {
					defer swg.Done()
					acquire()
					defer release()
					start := time.Now()
					w, err := r.materialize(cfg, tech, fc.ConvergeTime, snap)
					if err != nil {
						fail(err)
						return
					}
					res, err := failoverOn(w, sel, tech, site, fc)
					if err != nil {
						fail(err)
						return
					}
					m.runs.Inc()
					m.runSeconds.Observe(time.Since(start).Seconds())
					mu.Lock()
					results[ti][si] = res
					done++
					if r != nil && r.Progress != nil {
						r.Progress(done, total)
					}
					mu.Unlock()
				}(si, sites[si])
			}
			swg.Wait()
		}(ti, techs[ti])
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Figure2 is the Runner-backed §5.2 matrix: it pools the matrix's outcomes
// into per-technique reconnection and failover CDFs in ⟨technique, site⟩
// index order — the exact aggregation order of the sequential
// implementation.
func (r *Runner) Figure2(cfg WorldConfig, sel *Selection, techs []core.Technique, sites []string, fc FailoverConfig) ([]CDFPair, error) {
	matrix, err := r.RunMatrix(cfg, sel, techs, sites, fc)
	if err != nil {
		return nil, err
	}
	out := make([]CDFPair, 0, len(techs))
	for ti, tech := range techs {
		var recon, fail, weights []float64
		var outcomes []TargetOutcome
		for si := range sites {
			res := matrix[ti][si]
			recon = append(recon, res.ReconnectionSamples(fc.ProbeDuration)...)
			fail = append(fail, res.FailoverSamples(fc.ProbeDuration)...)
			outcomes = append(outcomes, res.Outcomes...)
			weights = append(weights, res.Weights...)
		}
		pair := CDFPair{
			Technique:    tech.Name(),
			Reconnection: stats.NewCDF(recon),
			Failover:     stats.NewCDF(fail),
			Stability:    Stability(outcomes),
		}
		// Weights align one-to-one with outcomes whenever the worlds carried
		// a demand model; pooled in the same ⟨technique, site⟩ index order as
		// the samples, the user-weighted CDFs are as worker-count invariant
		// as the unweighted ones.
		if len(weights) == len(recon) && len(recon) > 0 {
			pair.UserReconnection = stats.NewWeightedCDF(recon, weights)
			pair.UserFailover = stats.NewWeightedCDF(fail, weights)
		}
		out = append(out, pair)
	}
	return out, nil
}
