package experiment

import (
	"reflect"
	"testing"

	"bestofboth/internal/core"
)

// demandConfig is tinyConfig with the default heavy-tailed demand model
// attached, so worlds carry a live load accountant.
func demandConfig(seed int64) WorldConfig {
	cfg := tinyConfig(seed)
	WithDefaultDemand()(&cfg)
	return cfg
}

// TestUserWeightedCDFDeterminismAcrossWorkers is the worker-count gate for
// the user-weighted evaluation: for all seven techniques, the Figure-2
// pairs — including the demand-weighted reconnection and failover CDFs —
// must be deeply equal between a strictly sequential run without world
// reuse and an 8-worker run with reuse.
func TestUserWeightedCDFDeterminismAcrossWorkers(t *testing.T) {
	cfg := demandConfig(25)
	sel := mustSelect(t, cfg, 15)
	fc := quickFailover()
	techs := core.SevenTechniques()
	sites := []string{"atl", "msn"}

	seq := &Runner{Workers: 1, DisableReuse: true}
	par := &Runner{Workers: 8}

	seqPairs, err := seq.Figure2(cfg, sel, techs, sites, fc)
	if err != nil {
		t.Fatal(err)
	}
	parPairs, err := par.Figure2(cfg, sel, techs, sites, fc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqPairs, parPairs) {
		t.Fatal("Figure2 pairs (incl. user-weighted CDFs) differ between workers=1 and workers=8")
	}
	for _, p := range seqPairs {
		if p.UserFailover == nil || p.UserReconnection == nil {
			t.Fatalf("technique %s: demand model attached but user-weighted CDFs are nil", p.Technique)
		}
		if p.UserFailover.TotalWeight() <= 0 {
			t.Fatalf("technique %s: user-weighted failover CDF carries no demand weight", p.Technique)
		}
	}
}

// TestLoadStateShardEquivalence is the shard-count gate for the load
// accountant: the converged per-site offered/served/shed state — derived
// from converged FIBs, which the digest gates prove shard-invariant —
// must be bit-identical (exact int64s) across shards {1,2,8}, for both
// load-management techniques and a plain announcement technique.
func TestLoadStateShardEquivalence(t *testing.T) {
	techs := append(core.LoadTechniques(), core.ReactiveAnycast{})
	for _, tech := range techs {
		tech := tech
		t.Run(tech.Name(), func(t *testing.T) {
			t.Parallel()
			type siteState struct {
				offered, served, shed int64
			}
			var want []siteState
			var wantUnserved, wantServedCum, wantShedCum int64
			for _, shards := range shardCounts {
				cfg := demandConfig(29)
				cfg.Shards = shards
				w, err := NewConvergedWorld(cfg, tech, 3600)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				acct := w.CDN.Load()
				if acct == nil {
					t.Fatalf("shards=%d: demand enabled but no accountant attached", shards)
				}
				got := make([]siteState, acct.NumSites())
				for i := range got {
					got[i] = siteState{acct.Offered(i), acct.Served(i), acct.Shed(i)}
				}
				servedCum, shedCum := acct.Cumulative()
				if shards == shardCounts[0] {
					want, wantUnserved = got, acct.Unserved()
					wantServedCum, wantShedCum = servedCum, shedCum
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d: per-site offered/served/shed differ from shards=%d:\n got %+v\nwant %+v",
						shards, shardCounts[0], got, want)
				}
				if acct.Unserved() != wantUnserved || servedCum != wantServedCum || shedCum != wantShedCum {
					t.Fatalf("shards=%d: unserved/cumulative totals differ from shards=%d", shards, shardCounts[0])
				}
			}
		})
	}
}

// checkShedInvariant asserts the accounting identity on every site: shed
// is exactly the over-capacity excess when shedding is on (zero below
// capacity), and offered always splits into served + shed.
func checkShedInvariant(t *testing.T, acct interface {
	NumSites() int
	SiteCode(int) string
	Capacity(int) int64
	Offered(int) int64
	Served(int) int64
	Shed(int) int64
	Shedding() bool
}) {
	t.Helper()
	for i := 0; i < acct.NumSites(); i++ {
		off, srv, shd, cap := acct.Offered(i), acct.Served(i), acct.Shed(i), acct.Capacity(i)
		if srv+shd != off {
			t.Fatalf("site %s: served %d + shed %d != offered %d", acct.SiteCode(i), srv, shd, off)
		}
		wantShed := int64(0)
		if acct.Shedding() && off > cap {
			wantShed = off - cap
		}
		if shd != wantShed {
			t.Fatalf("site %s: shed %d, want %d (offered %d, capacity %d, shedding %v)",
				acct.SiteCode(i), shd, wantShed, off, cap, acct.Shedding())
		}
	}
}

// TestDrainDuringOverloadClearsShed is the satellite regression test for
// the DrainSite/RecoverSite ↔ load-state audit: a site drained while it
// is actively shedding must not report stale non-zero shed (or offered)
// after it recovers — every fold rebuilds the split from live catchments,
// so shed may only be non-zero where offered currently exceeds capacity.
func TestDrainDuringOverloadClearsShed(t *testing.T) {
	cfg := demandConfig(31)
	w, err := NewConvergedWorld(cfg, core.LoadShed{}, 3600)
	if err != nil {
		t.Fatal(err)
	}
	acct := w.CDN.Load()
	if !acct.Shedding() {
		t.Fatal("load-shed deployed but shedding policy is off")
	}
	total := w.CDN.Demand().TotalRate()

	// Concentrate all demand on one survivor so it is overloaded and
	// actively shedding: drain every other site.
	survivor := acct.SiteCode(0)
	for i := 1; i < acct.NumSites(); i++ {
		if _, err := w.CDN.DrainSite(acct.SiteCode(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Converge(3600)
	w.CDN.RefreshLoad()
	if acct.Offered(0) != total {
		t.Fatalf("survivor %s offered %d, want all demand %d", survivor, acct.Offered(0), total)
	}
	if acct.Shed(0) <= 0 {
		t.Fatalf("survivor %s is over capacity (offered %d, capacity %d) but sheds nothing",
			survivor, acct.Offered(0), acct.Capacity(0))
	}

	// Drain the overloaded site mid-shed: no healthy announcer remains,
	// so all demand is unserved and the survivor's counters must zero.
	if _, err := w.CDN.DrainSite(survivor); err != nil {
		t.Fatal(err)
	}
	w.Converge(3600)
	w.CDN.RefreshLoad()
	if acct.Offered(0) != 0 || acct.Shed(0) != 0 {
		t.Fatalf("drained site %s retains offered %d / shed %d", survivor, acct.Offered(0), acct.Shed(0))
	}
	if acct.Unserved() != total {
		t.Fatalf("all sites drained but unserved is %d, want %d", acct.Unserved(), total)
	}

	// Recover everything: counters must reflect the live post-recovery
	// catchments only — no residue from the overload episode.
	for i := 0; i < acct.NumSites(); i++ {
		if _, err := w.CDN.RecoverSite(acct.SiteCode(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Converge(3600)
	w.CDN.RefreshLoad()
	if acct.Unserved() != 0 {
		t.Fatalf("post-recovery unserved %d, want 0", acct.Unserved())
	}
	off, srv, shd := acct.Totals()
	if off != total || srv+shd != total {
		t.Fatalf("post-recovery totals offered %d served %d shed %d, want offered == served+shed == %d",
			off, srv, shd, total)
	}
	checkShedInvariant(t, acct)

	// Technique switch mid-accounting: SwitchTechnique must itself re-fold
	// load under the new technique and its shedding policy — before any
	// explicit Converge/RefreshLoad — so the accountant never carries shed
	// counters from the load-shed era into a non-shedding technique.
	if err := w.CDN.SwitchTechnique(core.Unicast{}); err != nil {
		t.Fatal(err)
	}
	if acct.Shedding() {
		t.Fatal("switched to unicast but shedding policy is still on")
	}
	if _, _, shd := acct.Totals(); shd != 0 {
		t.Fatalf("switched to unicast (no shedding) but total shed is %d, want 0", shd)
	}
	checkShedInvariant(t, acct)
	w.Converge(3600)
	w.CDN.RefreshLoad()
	checkShedInvariant(t, acct)

	// Switching back with an open failure episode must replay the failure
	// under the new technique and refresh again: the drained site's
	// counters are zero immediately after the switch.
	if _, err := w.CDN.DrainSite(acct.SiteCode(0)); err != nil {
		t.Fatal(err)
	}
	w.Converge(3600)
	if err := w.CDN.SwitchTechnique(core.LoadShed{}); err != nil {
		t.Fatal(err)
	}
	if !acct.Shedding() {
		t.Fatal("switched back to load-shed but shedding policy is off")
	}
	if acct.Offered(0) != 0 || acct.Shed(0) != 0 {
		t.Fatalf("drained site %s retains offered %d / shed %d across a technique switch",
			acct.SiteCode(0), acct.Offered(0), acct.Shed(0))
	}
	w.Converge(3600)
	w.CDN.RefreshLoad()
	if acct.Offered(0) != 0 {
		t.Fatalf("drained site %s attracts offered %d under the switched technique, want 0",
			acct.SiteCode(0), acct.Offered(0))
	}
	if acct.Unserved() != 0 {
		t.Fatalf("healthy sites announce anycast but unserved is %d, want 0", acct.Unserved())
	}
	checkShedInvariant(t, acct)
}

// TestPaperScaleLoadShiftFixedPoint is the acceptance gate for the
// Sinha et al. shifting algorithm at paper scale: with aggregate demand
// under aggregate capacity, the converged deployment must reach a stable
// fixed point with no site above capacity, and one further Rebalance must
// be a no-op (oscillation-free stability).
func TestPaperScaleLoadShiftFixedPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale world; skipped in -short")
	}
	cfg := DefaultWorldConfig(WithSeed(42), WithPaperScale(), WithDefaultDemand())
	tech := core.LoadShift{}
	w, err := NewConvergedWorld(cfg, tech, 3600)
	if err != nil {
		t.Fatal(err)
	}
	acct := w.CDN.Load()
	for i := 0; i < acct.NumSites(); i++ {
		if acct.Offered(i) > acct.Capacity(i) {
			t.Errorf("site %s above capacity at the fixed point: offered %d, capacity %d (util %.2f)",
				acct.SiteCode(i), acct.Offered(i), acct.Capacity(i), acct.Utilization(i))
		}
	}
	changed, err := tech.Rebalance(w.CDN)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("rebalance found a further move after the deployment loop reported convergence")
	}
}
