package experiment

import (
	"reflect"
	"testing"

	"bestofboth/internal/core"
	"bestofboth/internal/scenario"
)

// quickScenario shortens the pre-scenario convergence wait for tests.
func quickScenario() ScenarioConfig {
	return ScenarioConfig{ConvergeTime: 3600, MaxTargetsPerSite: 6}
}

// shortScenarios returns fast library-flavored scenarios for matrix tests:
// a short flap (with and without damping) and a brief regional outage.
func shortScenarios() []*scenario.Scenario {
	return []*scenario.Scenario{
		{
			Name:   "quick-flap",
			Events: []scenario.Event{{At: 10, Kind: scenario.KindFlap, Site: "sea1", Period: 60, Count: 2}},
		},
		{
			Name:    "quick-flap-damped",
			Damping: true,
			Events:  []scenario.Event{{At: 10, Kind: scenario.KindFlap, Site: "sea1", Period: 60, Count: 2}},
		},
		{
			Name:    "quick-regional",
			Horizon: 160,
			Events: []scenario.Event{
				{At: 10, Kind: scenario.KindRegionalFail, Site: "slc", Radius: 12},
				{At: 90, Kind: scenario.KindRegionalRecover, Site: "slc", Radius: 12},
			},
		},
	}
}

// TestScenarioDeterminismAcrossWorkers extends the PR-1 determinism gate to
// scenario runs: the full ⟨technique, scenario⟩ matrix — including the
// damping-enabled flap, which builds a different world — must be deeply
// equal between a strictly sequential runner without snapshot reuse and an
// 8-worker runner with reuse.
func TestScenarioDeterminismAcrossWorkers(t *testing.T) {
	cfg := tinyConfig(31)
	sel := mustSelect(t, cfg, 20)
	sco := quickScenario()
	techs := []core.Technique{core.ReactiveAnycast{}, core.Anycast{}}
	scs := shortScenarios()

	seq := &Runner{Workers: 1, DisableReuse: true}
	par := &Runner{Workers: 8}

	seqM, err := seq.RunScenarioMatrix(cfg, sel, techs, scs, sco)
	if err != nil {
		t.Fatal(err)
	}
	parM, err := par.RunScenarioMatrix(cfg, sel, techs, scs, sco)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range techs {
		for si := range scs {
			a, b := seqM[ti][si], parM[ti][si]
			if !reflect.DeepEqual(a, b) {
				t.Errorf("scenario run [%s][%s] differs between workers=1 and workers=8:\n%+v\nvs\n%+v",
					techs[ti].Name(), scs[si].Name, a, b)
			}
		}
	}
}

// TestRunScenarioShapes sanity-checks one scenario run end to end through
// the runner: groups cover multiple sites, probing happened, and the
// damping request actually reaches the world config.
func TestRunScenarioShapes(t *testing.T) {
	cfg := tinyConfig(32)
	sel := mustSelect(t, cfg, 20)
	r := &Runner{Workers: 2}
	sc := shortScenarios()[2] // quick-regional
	res, err := r.RunScenario(cfg, sel, core.ReactiveAnycast{}, sc, quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "quick-regional" || res.Technique != (core.ReactiveAnycast{}).Name() {
		t.Errorf("result identity %q/%q", res.Scenario, res.Technique)
	}
	if res.Groups < 2 || res.Targets == 0 {
		t.Errorf("groups=%d targets=%d, want a multi-site population", res.Groups, res.Targets)
	}
	if res.Sent == 0 || res.Answered == 0 {
		t.Errorf("no probing: sent=%d answered=%d", res.Sent, res.Answered)
	}
	if len(res.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(res.Events))
	}
	// The regional failure takes out three sites at once.
	if res.Events[0].SitesDown != 3 {
		t.Errorf("regional failure left %d sites down, want 3", res.Events[0].SitesDown)
	}
	if res.Events[1].SitesDown != 0 {
		t.Errorf("regional recovery left %d sites down, want 0", res.Events[1].SitesDown)
	}
	if res.Events[0].AffectedTargets == 0 {
		t.Error("regional failure affected no targets")
	}
}

func TestScenarioWorldConfigDamping(t *testing.T) {
	base := tinyConfig(33)
	plain := ScenarioWorldConfig(base, &scenario.Scenario{Name: "x"})
	if plain.BGP.Damping != nil {
		t.Error("non-damping scenario enabled damping")
	}
	damped := ScenarioWorldConfig(base, &scenario.Scenario{Name: "x", Damping: true})
	if damped.BGP.Damping == nil {
		t.Error("damping scenario did not enable damping")
	}
	if base.BGP.Damping != nil {
		t.Error("ScenarioWorldConfig mutated its input")
	}
}
