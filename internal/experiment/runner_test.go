package experiment

import (
	"reflect"
	"testing"

	"bestofboth/internal/bgp"
	"bestofboth/internal/core"
)

// TestRunnerDeterminismAcrossWorkers is the regression gate for the
// parallel runner: the same seed must produce deeply equal CDFs and
// per-target outcomes whether the matrix runs strictly sequentially without
// reuse or on 8 workers with converged-world reuse.
func TestRunnerDeterminismAcrossWorkers(t *testing.T) {
	cfg := tinyConfig(21)
	sel := mustSelect(t, cfg, 20)
	fc := quickFailover()
	techs := []core.Technique{core.ReactiveAnycast{}, core.Anycast{}}
	sites := []string{"atl", "msn"}

	seq := &Runner{Workers: 1, DisableReuse: true}
	par := &Runner{Workers: 8}

	seqM, err := seq.RunMatrix(cfg, sel, techs, sites, fc)
	if err != nil {
		t.Fatal(err)
	}
	parM, err := par.RunMatrix(cfg, sel, techs, sites, fc)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range techs {
		for si := range sites {
			a, b := seqM[ti][si], parM[ti][si]
			if a.Technique != b.Technique || a.FailedSite != b.FailedSite ||
				a.PoolSize != b.PoolSize || a.Controllable != b.Controllable {
				t.Fatalf("run [%d][%d] headers differ: %+v vs %+v", ti, si, a, b)
			}
			if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
				t.Fatalf("run [%d][%d] (%s/%s): outcomes differ between workers=1 and workers=8",
					ti, si, a.Technique, a.FailedSite)
			}
		}
	}

	seqPairs, err := seq.Figure2(cfg, sel, techs, sites, fc)
	if err != nil {
		t.Fatal(err)
	}
	parPairs, err := par.Figure2(cfg, sel, techs, sites, fc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqPairs, parPairs) {
		t.Fatal("Figure2 CDF pairs differ between workers=1 and workers=8")
	}
}

// TestWorldSnapshotIsolation materializes sibling worlds from one converged
// snapshot and checks that failing a site in one leaves the others (and the
// snapshot) untouched.
func TestWorldSnapshotIsolation(t *testing.T) {
	cfg := tinyConfig(22)
	snap, err := buildSnapshot(cfg, core.ReactiveAnycast{}, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("converged world was not snapshotable")
	}
	a, err := RestoreWorld(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RestoreWorld(snap)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := a.CDN.FailSite("atl"); err != nil {
		t.Fatal(err)
	}
	a.Sim.RunFor(120)

	if b.CDN.Failed("atl") {
		t.Fatal("site failure leaked into a sibling restored world")
	}
	if b.Sim.Pending() != 0 {
		t.Fatalf("sibling world has %d pending events it never scheduled", b.Sim.Pending())
	}
	atl := b.CDN.Site("atl")
	if atl == nil {
		t.Fatal("restored world lost its sites")
	}
	if got := b.CDN.CatchmentOf(b.Targets()[0].ID, atl.Addr); got == nil {
		// The first target may legitimately be uncontrollable; what must
		// hold is that atl's own prefix is still routed somewhere.
		res := b.Plane.Forward(b.Targets()[0].ID, atl.Addr)
		if !res.Delivered {
			t.Fatal("sibling world lost routes to the failed-in-a site")
		}
	}

	c, err := RestoreWorld(snap)
	if err != nil {
		t.Fatal(err)
	}
	if c.CDN.Failed("atl") {
		t.Fatal("site failure leaked back into the snapshot")
	}
}

// TestSnapKeyDistinguishesConfigs pins the converged-snapshot cache key:
// changed topology or protocol parameters must miss, equal-valued configs
// must hit even across distinct damping pointers, and techniques of the
// same type but different parameters must miss.
func TestSnapKeyDistinguishesConfigs(t *testing.T) {
	base := tinyConfig(23)
	k := func(cfg WorldConfig, tech core.Technique) string {
		return snapKey(cfg, tech, 3600)
	}

	cfg2 := base
	cfg2.Topology.NumStub++
	if k(base, core.Anycast{}) == k(cfg2, core.Anycast{}) {
		t.Fatal("changed GenConfig did not change the key")
	}

	cfg3 := base
	cfg3.BGP = bgp.DefaultConfig()
	cfg3.BGP.MRAI = 5
	if k(base, core.Anycast{}) == k(cfg3, core.Anycast{}) {
		t.Fatal("changed bgp.Config did not change the key")
	}

	cfg4, cfg5 := base, base
	cfg4.BGP = bgp.DefaultConfig()
	cfg4.BGP.Damping = &bgp.DampingConfig{Penalty: 1000, SuppressAt: 2000, ReuseAt: 750, HalfLife: 900}
	cfg5.BGP = bgp.DefaultConfig()
	cfg5.BGP.Damping = &bgp.DampingConfig{Penalty: 1000, SuppressAt: 2000, ReuseAt: 750, HalfLife: 900}
	if k(cfg4, core.Anycast{}) != k(cfg5, core.Anycast{}) {
		t.Fatal("equal damping configs behind distinct pointers changed the key")
	}
	cfg5.BGP.Damping.HalfLife = 300
	if k(cfg4, core.Anycast{}) == k(cfg5, core.Anycast{}) {
		t.Fatal("changed damping parameters did not change the key")
	}

	if k(base, core.ProactivePrepending{Prepends: 3}) == k(base, core.ProactivePrepending{Prepends: 5}) {
		t.Fatal("prepend depth did not change the key")
	}
	if k(base, core.Anycast{}) == k(base, core.ReactiveAnycast{}) {
		t.Fatal("technique type did not change the key")
	}
	if snapKey(base, core.Anycast{}, 3600) == snapKey(base, core.Anycast{}, 600) {
		t.Fatal("converge time did not change the key")
	}
}

// TestRunFailoverMatchesRunnerReuse pins the core reuse guarantee: one run
// materialized from a converged snapshot is outcome-identical to the same
// run performed from scratch.
func TestRunFailoverMatchesRunnerReuse(t *testing.T) {
	cfg := tinyConfig(24)
	sel := mustSelect(t, cfg, 15)
	fc := quickFailover()
	tech := core.ReactiveAnycast{}

	fresh, err := RunFailover(cfg, sel, tech, "msn", fc)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := buildSnapshot(cfg, tech, fc.ConvergeTime)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("converged world was not snapshotable")
	}
	w, err := RestoreWorld(snap)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := failoverOn(w, sel, tech, "msn", fc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Outcomes, reused.Outcomes) {
		t.Fatal("reused-world outcomes differ from a fresh run")
	}
	if fresh.Controllable != reused.Controllable || fresh.PoolSize != reused.PoolSize {
		t.Fatal("reused-world target sets differ from a fresh run")
	}
}
