package experiment

import (
	"cmp"
	"fmt"
	"net/netip"
	"slices"

	"bestofboth/internal/core"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/stats"
	"bestofboth/internal/topology"
	"bestofboth/internal/traffic"
)

// FailoverConfig sets the probing schedule of §5.2.
type FailoverConfig struct {
	// ProbeInterval is the per-target ping cadence (paper: ~1.5 s).
	ProbeInterval float64
	// ProbeDuration is how long probing continues after failure (paper:
	// ~600 s).
	ProbeDuration float64
	// ConvergeTime bounds the pre-failure convergence wait (paper: 1 h).
	ConvergeTime float64
	// MaxTargets caps controllable targets probed per run (0 = no cap).
	MaxTargets int
	// LossRate injects independent request/reply loss into probing (the
	// §5.3 ICMP-rate-limit concern); metrics must remain in regime under
	// a few percent of loss.
	LossRate float64
	// UseMonitor replaces the fixed DetectionDelay with the CDN's
	// probing-based health monitor: the site crashes silently and the
	// controller reacts only when the monitor declares it down, so
	// detection latency is emergent (§4: "CDNs need to make new
	// announcements quickly after the detection of an outage").
	UseMonitor bool
	// MonitorInterval/MonitorMisses configure the monitor when UseMonitor
	// is set (defaults 0.5 s × 3).
	MonitorInterval float64
	MonitorMisses   int
	// RetainWorld keeps the run's World on the RunResult for post-hoc
	// inspection (collector archives, catchments). Off by default: a world
	// pins an entire simulated Internet in memory, which matters once many
	// runs are aggregated or in flight.
	RetainWorld bool
}

// DefaultFailoverConfig returns the paper's schedule.
func DefaultFailoverConfig() FailoverConfig {
	return FailoverConfig{ProbeInterval: 1.5, ProbeDuration: 600, ConvergeTime: 3600}
}

// TargetOutcome is the per-⟨failed site, target⟩ measurement of §5.4.1.
type TargetOutcome struct {
	Target topology.NodeID
	// Reconnected reports whether any reply arrived after the failure.
	Reconnected bool
	// Reconnection is the delay from withdrawal to the first reply at any
	// site (valid when Reconnected).
	Reconnection float64
	// FailedOver reports whether the target reached a stable state: a
	// reply after which it neither switched sites nor lost a reply again.
	FailedOver bool
	// Failover is the delay from withdrawal to that first stable reply.
	Failover float64
	// Bounces counts site switches observed after the first reconnection.
	Bounces int
	// Gaps counts periods of unreachability (runs of lost replies) after
	// the first reconnection — §5.4.1 reports that most targets have none
	// between reconnection and failover.
	Gaps int
	// FinalSite is the site code serving the target at the end ("" if
	// none).
	FinalSite string
}

// RunResult is one ⟨technique, failed site⟩ failover experiment.
type RunResult struct {
	Technique  string
	FailedSite string
	// PoolSize is the number of candidate targets considered.
	PoolSize int
	// Controllable is how many of them the technique could route to the
	// site before failure (the probed set).
	Controllable int
	Outcomes     []TargetOutcome
	// Weights holds each outcome's user demand in rps when the world
	// carries a demand model (aligned with Outcomes; nil otherwise). The
	// user-weighted CDFs reweight the paper's headline metric by it.
	Weights []float64
	// DetectedAt is the emergent detection latency when the run used the
	// health monitor (seconds after the crash; zero otherwise).
	DetectedAt float64
	// World is the run's simulation instance, retained only when
	// FailoverConfig.RetainWorld is set.
	World *World
}

// ReconnectionSamples returns reconnection times with unreconnected
// targets clamped to the probe duration (conservative, as in truncating
// the paper's CDFs at the measurement horizon).
func (r *RunResult) ReconnectionSamples(clamp float64) []float64 {
	out := make([]float64, 0, len(r.Outcomes))
	for _, o := range r.Outcomes {
		if o.Reconnected {
			out = append(out, o.Reconnection)
		} else {
			out = append(out, clamp)
		}
	}
	return out
}

// FailoverSamples returns failover times with unstable targets clamped.
func (r *RunResult) FailoverSamples(clamp float64) []float64 {
	out := make([]float64, 0, len(r.Outcomes))
	for _, o := range r.Outcomes {
		if o.FailedOver {
			out = append(out, o.Failover)
		} else {
			out = append(out, clamp)
		}
	}
	return out
}

// RunFailover performs one §5.2 experiment: deploy the technique, wait for
// convergence, find the controllable targets for the site, fail it, probe
// every ~1.5 s for ~600 s, and compute reconnection/failover per target.
func RunFailover(cfg WorldConfig, sel *Selection, tech core.Technique, failCode string, fc FailoverConfig) (*RunResult, error) {
	w, err := newDeployedWorld(cfg, tech, fc.ConvergeTime)
	if err != nil {
		return nil, err
	}
	return failoverOn(w, sel, tech, failCode, fc)
}

// newDeployedWorld builds a world, deploys the technique, and waits for
// convergence — the shared pre-failure trajectory of every failover run of
// one technique (and what a WorldSnapshot captures). Techniques with a
// post-convergence control loop (core.Rebalancer, i.e. the Sinha et al.
// load shifting) then alternate rebalance steps with reconvergence until
// the fixed point: every step only withdraws announcements, so the loop
// terminates within core.MaxRebalanceRounds and cannot oscillate. Each
// converge drains the event queue, so the resulting world remains
// snapshottable.
func newDeployedWorld(cfg WorldConfig, tech core.Technique, convergeTime float64) (*World, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	if err := w.CDN.Deploy(tech); err != nil {
		return nil, fmt.Errorf("experiment: deploying %s: %w", tech.Name(), err)
	}
	w.Converge(convergeTime)
	if w.CDN.Demand() != nil {
		if reb, ok := tech.(core.Rebalancer); ok {
			for i := 0; i < core.MaxRebalanceRounds; i++ {
				changed, err := reb.Rebalance(w.CDN)
				if err != nil {
					return nil, fmt.Errorf("experiment: rebalancing %s: %w", tech.Name(), err)
				}
				if !changed {
					break
				}
				w.Converge(convergeTime)
			}
		}
		w.CDN.RefreshLoad()
	}
	return w, nil
}

// NewConvergedWorld builds a world, deploys the technique, and converges it,
// including the rebalance-to-fixed-point loop for load-shifting techniques —
// the exported form of the shared pre-failure trajectory, for callers that
// inspect the converged state itself (e.g. the cdnsim load command) rather
// than running a failover on it.
func NewConvergedWorld(cfg WorldConfig, tech core.Technique, convergeTime float64) (*World, error) {
	return newDeployedWorld(cfg, tech, convergeTime)
}

// failoverOn runs the post-convergence part of the experiment on an already
// deployed, converged world: fail the site, probe, analyze.
func failoverOn(w *World, sel *Selection, tech core.Technique, failCode string, fc FailoverConfig) (*RunResult, error) {
	failed := w.CDN.Site(failCode)
	if failed == nil {
		return nil, fmt.Errorf("experiment: %w %q", core.ErrUnknownSite, failCode)
	}
	st := sel.ForSite(failCode)
	if st == nil {
		return nil, fmt.Errorf("experiment: %w for site %q", ErrNoTargets, failCode)
	}

	// Controllable targets (§5.2): targets the technique routes to the
	// site when DNS steers them there. For the anycast baseline the
	// relevant set is the site's natural catchment.
	//
	// The address a target's traffic actually uses is technique-dependent:
	// DNS-steered techniques use the failed site's steering address, pure
	// anycast semantics (anycast, load-shed) use the shared /24, and the
	// pure bucket overlay (load-shift) addresses each target at its demand
	// bucket's /27 — so both controllability and the probe reply-to must
	// follow the per-target address there, or the bucket withdrawals the
	// rebalance performed would make the steer-address catchment claim the
	// site serves nobody it is in fact serving.
	pool := st.NotAnycast
	steer := tech.SteerAddr(w.CDN, failed)
	addrOf := func(topology.NodeID) netip.Addr { return steer }
	da, isDA := tech.(core.DemandAddresser)
	switch {
	case isDA && w.CDN.Demand() != nil && steer == core.AnycastServiceAddr:
		pool = st.Proximate
		addrOf = func(id topology.NodeID) netip.Addr { return da.DemandAddr(w.CDN, id) }
	case steer == core.AnycastServiceAddr:
		pool = st.AnycastHere
	}
	var controllable []topology.NodeID
	for _, id := range pool {
		if got := w.CDN.CatchmentOf(id, addrOf(id)); got != nil && got.Node == failed.Node {
			controllable = append(controllable, id)
		}
	}
	if fc.MaxTargets > 0 && len(controllable) > fc.MaxTargets {
		controllable = controllable[:fc.MaxTargets]
	}

	res := &RunResult{
		Technique:  tech.Name(),
		FailedSite: failCode,
		PoolSize:   len(pool),
	}
	if fc.RetainWorld {
		res.World = w
	}
	res.Controllable = len(controllable)
	if m := w.CDN.Demand(); m != nil {
		res.Weights = make([]float64, len(controllable))
		for i, id := range controllable {
			res.Weights[i] = float64(m.Rate(id)) / traffic.Micro
		}
	}
	if len(controllable) == 0 {
		return res, nil
	}

	// Probe from a healthy site with the failed site's steering address as
	// reply-to (§5.2 uses source 184.164.244.10 from another PEERING site).
	var proberSite *core.Site
	for _, s := range w.CDN.Sites() {
		if s.Code != failCode {
			proberSite = s
			break
		}
	}
	// One prober per distinct reply-to address (first-seen order over the
	// controllable set): DNS-steered techniques use a single prober at the
	// steer address; the bucket overlay gets one per live bucket /27.
	var addrs []netip.Addr
	proberAt := make(map[netip.Addr]*dataplane.Prober)
	targetsAt := make(map[netip.Addr]int)
	for _, id := range controllable {
		a := addrOf(id)
		if _, ok := proberAt[a]; !ok {
			p := dataplane.NewProber(w.Plane, proberSite.Node, a)
			p.LossRate = fc.LossRate
			proberAt[a] = p
			addrs = append(addrs, a)
		}
		targetsAt[a]++
	}

	t0 := w.Sim.Now()
	var monitor *core.Monitor
	if fc.UseMonitor {
		interval, misses := fc.MonitorInterval, fc.MonitorMisses
		if interval <= 0 {
			interval = 0.5
		}
		if misses <= 0 {
			misses = 3
		}
		m, err := w.CDN.StartMonitor(interval, misses)
		if err != nil {
			return nil, err
		}
		monitor = m
		m.OnDetect = func(code string, at float64) {
			res.DetectedAt = at - t0
		}
		if _, err := w.CDN.CrashSite(failCode); err != nil {
			return nil, err
		}
	} else if _, err := w.CDN.FailSite(failCode); err != nil {
		return nil, err
	}
	// The campaign's emission count is known exactly — every controllable
	// target is pinged once per interval until the duration elapses — so
	// presize the probe logs instead of growing them ping by ping.
	if fc.ProbeInterval > 0 {
		pings := int(fc.ProbeDuration / fc.ProbeInterval)
		if float64(pings)*fc.ProbeInterval < fc.ProbeDuration {
			pings++
		}
		for a, p := range proberAt {
			p.Reserve(pings * targetsAt[a])
		}
	}
	for _, id := range controllable {
		proberAt[addrOf(id)].PingEvery(id, fc.ProbeInterval, fc.ProbeDuration)
	}
	// Let the final replies land (replies take well under 30 s).
	w.Sim.RunUntil(t0 + fc.ProbeDuration + 30)
	if monitor != nil {
		monitor.Stop()
	}

	// Per-target sent sequences, in emission order. Each target belongs to
	// exactly one prober, so merging the per-prober logs never interleaves
	// sequence spaces within a target.
	sentByTarget := make(map[topology.NodeID][]uint64, len(controllable))
	byTarget := make(map[topology.NodeID][]dataplane.CaptureEntry, len(controllable))
	for _, a := range addrs {
		p := proberAt[a]
		for _, s := range p.Sent {
			sentByTarget[s.Target] = append(sentByTarget[s.Target], s.Seq)
		}
		for id, caps := range p.Capture.ByTarget() {
			byTarget[id] = caps
		}
	}
	res.Outcomes = make([]TargetOutcome, 0, len(controllable))
	var scratch []dataplane.CaptureEntry // reused per-target seq index
	for _, id := range controllable {
		var o TargetOutcome
		o, scratch = analyzeTarget(w, id, sentByTarget[id], byTarget[id], t0, scratch)
		res.Outcomes = append(res.Outcomes, o)
	}
	return res, nil
}

// analyzeTarget derives the §5.4.1 metrics for one target by matching its
// capture trace against the pings actually sent to it. The scratch buffer
// holds the target's captures re-sorted by sequence number; callers pass it
// back in across targets so one run allocates the index once instead of
// building a map per target.
func analyzeTarget(w *World, id topology.NodeID, sent []uint64, caps []dataplane.CaptureEntry, t0 float64, scratch []dataplane.CaptureEntry) (TargetOutcome, []dataplane.CaptureEntry) {
	o := TargetOutcome{Target: id}
	if len(caps) == 0 {
		return o, scratch
	}
	o.Reconnected = true
	o.Reconnection = caps[0].Time - t0

	// Bounces: site changes across the captured replies.
	for i := 1; i < len(caps); i++ {
		if caps[i].Site != caps[i-1].Site {
			o.Bounces++
		}
	}
	if s := siteCode(w, caps[len(caps)-1].Site); s != "" {
		o.FinalSite = s
	}

	// Index captures by sequence number: a seq-sorted slice searched in
	// order, since sent sequences are emitted in ascending order.
	scratch = append(scratch[:0], caps...)
	slices.SortFunc(scratch, func(a, b dataplane.CaptureEntry) int {
		return cmp.Compare(a.Seq, b.Seq)
	})
	find := func(seq uint64) (dataplane.CaptureEntry, bool) {
		i, ok := slices.BinarySearchFunc(scratch, seq, func(e dataplane.CaptureEntry, s uint64) int {
			return cmp.Compare(e.Seq, s)
		})
		if !ok {
			return dataplane.CaptureEntry{}, false
		}
		return scratch[i], true
	}

	// Gaps: runs of missing replies after the first captured reply. One
	// merge walk over the ascending send schedule and the seq-sorted
	// captures.
	inGap := false
	seenFirst := false
	j := 0
	for _, seq := range sent {
		for j < len(scratch) && scratch[j].Seq < seq {
			j++
		}
		got := j < len(scratch) && scratch[j].Seq == seq
		if !seenFirst {
			if got {
				seenFirst = true
			}
			continue
		}
		if !got && !inGap {
			o.Gaps++
			inGap = true
		} else if got {
			inGap = false
		}
	}

	// Failover: the first reply after which the target neither loses a
	// reply nor switches sites (§5.4.1) — the start of the maximal suffix of
	// the send schedule with no loss and a constant site. The suffix must
	// extend through the final ping sent, otherwise the target ended the
	// experiment disconnected.
	lastCap, ok := find(sent[len(sent)-1])
	if !ok {
		return o, scratch // final ping lost: no stable suffix
	}
	start := lastCap
	for i := len(sent) - 2; i >= 0; i-- {
		c, ok := find(sent[i])
		if !ok || c.Site != lastCap.Site {
			break
		}
		start = c
	}
	o.FailedOver = true
	o.Failover = start.Time - t0
	return o, scratch
}

func siteCode(w *World, node topology.NodeID) string {
	n := w.Topo.Node(node)
	if n == nil {
		return ""
	}
	return n.Site
}

// CDFPair bundles the two §5.4.1 distributions for one technique, plus
// the bounce/gap stability summary.
type CDFPair struct {
	Technique    string
	Reconnection *stats.CDF
	Failover     *stats.CDF
	Stability    StabilityStats
	// UserReconnection/UserFailover reweight the same samples by each
	// target's user demand (rps), answering "how much user traffic had
	// failed over by time t" instead of "how many targets". Nil when the
	// runs carried no demand model.
	UserReconnection *stats.WeightedCDF
	UserFailover     *stats.WeightedCDF
}

// Figure2Single converts one run into a CDFPair (convenience for single
// ⟨technique, site⟩ analyses).
func Figure2Single(r *RunResult, fc FailoverConfig) CDFPair {
	p := CDFPair{
		Technique:    r.Technique,
		Reconnection: stats.NewCDF(r.ReconnectionSamples(fc.ProbeDuration)),
		Failover:     stats.NewCDF(r.FailoverSamples(fc.ProbeDuration)),
		Stability:    Stability(r.Outcomes),
	}
	if len(r.Weights) == len(r.Outcomes) && len(r.Outcomes) > 0 {
		p.UserReconnection = stats.NewWeightedCDF(r.ReconnectionSamples(fc.ProbeDuration), r.Weights)
		p.UserFailover = stats.NewWeightedCDF(r.FailoverSamples(fc.ProbeDuration), r.Weights)
	}
	return p
}

// Figure2 runs the full §5.2 matrix — every technique × every failed site —
// and pools outcomes into per-technique reconnection and failover CDFs
// across ⟨failed site, target⟩ pairs, reproducing Figure 2. It delegates to
// a default Runner: runs execute across GOMAXPROCS workers with
// converged-world reuse, with results identical to the sequential
// implementation.
func Figure2(cfg WorldConfig, sel *Selection, techs []core.Technique, sites []string, fc FailoverConfig) ([]CDFPair, error) {
	return (&Runner{}).Figure2(cfg, sel, techs, sites, fc)
}

// Figure5 compares proactive-prepending at 3 and 5 prepends (Appendix C.2).
func Figure5(cfg WorldConfig, sel *Selection, sites []string, fc FailoverConfig) ([]CDFPair, error) {
	return (&Runner{}).Figure5(cfg, sel, sites, fc)
}

// Figure5 is the Runner-backed variant of the free Figure5 function.
func (r *Runner) Figure5(cfg WorldConfig, sel *Selection, sites []string, fc FailoverConfig) ([]CDFPair, error) {
	return r.Figure2(cfg, sel, []core.Technique{
		core.ProactivePrepending{Prepends: 3},
		core.ProactivePrepending{Prepends: 5},
	}, sites, fc)
}
