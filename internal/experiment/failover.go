package experiment

import (
	"fmt"

	"bestofboth/internal/core"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/stats"
	"bestofboth/internal/topology"
)

// FailoverConfig sets the probing schedule of §5.2.
type FailoverConfig struct {
	// ProbeInterval is the per-target ping cadence (paper: ~1.5 s).
	ProbeInterval float64
	// ProbeDuration is how long probing continues after failure (paper:
	// ~600 s).
	ProbeDuration float64
	// ConvergeTime bounds the pre-failure convergence wait (paper: 1 h).
	ConvergeTime float64
	// MaxTargets caps controllable targets probed per run (0 = no cap).
	MaxTargets int
	// LossRate injects independent request/reply loss into probing (the
	// §5.3 ICMP-rate-limit concern); metrics must remain in regime under
	// a few percent of loss.
	LossRate float64
	// UseMonitor replaces the fixed DetectionDelay with the CDN's
	// probing-based health monitor: the site crashes silently and the
	// controller reacts only when the monitor declares it down, so
	// detection latency is emergent (§4: "CDNs need to make new
	// announcements quickly after the detection of an outage").
	UseMonitor bool
	// MonitorInterval/MonitorMisses configure the monitor when UseMonitor
	// is set (defaults 0.5 s × 3).
	MonitorInterval float64
	MonitorMisses   int
}

// DefaultFailoverConfig returns the paper's schedule.
func DefaultFailoverConfig() FailoverConfig {
	return FailoverConfig{ProbeInterval: 1.5, ProbeDuration: 600, ConvergeTime: 3600}
}

// TargetOutcome is the per-⟨failed site, target⟩ measurement of §5.4.1.
type TargetOutcome struct {
	Target topology.NodeID
	// Reconnected reports whether any reply arrived after the failure.
	Reconnected bool
	// Reconnection is the delay from withdrawal to the first reply at any
	// site (valid when Reconnected).
	Reconnection float64
	// FailedOver reports whether the target reached a stable state: a
	// reply after which it neither switched sites nor lost a reply again.
	FailedOver bool
	// Failover is the delay from withdrawal to that first stable reply.
	Failover float64
	// Bounces counts site switches observed after the first reconnection.
	Bounces int
	// Gaps counts periods of unreachability (runs of lost replies) after
	// the first reconnection — §5.4.1 reports that most targets have none
	// between reconnection and failover.
	Gaps int
	// FinalSite is the site code serving the target at the end ("" if
	// none).
	FinalSite string
}

// RunResult is one ⟨technique, failed site⟩ failover experiment.
type RunResult struct {
	Technique  string
	FailedSite string
	// PoolSize is the number of candidate targets considered.
	PoolSize int
	// Controllable is how many of them the technique could route to the
	// site before failure (the probed set).
	Controllable int
	Outcomes     []TargetOutcome
	// DetectedAt is the emergent detection latency when the run used the
	// health monitor (seconds after the crash; zero otherwise).
	DetectedAt float64
	// World is retained for collector-side inspection.
	World *World
}

// ReconnectionSamples returns reconnection times with unreconnected
// targets clamped to the probe duration (conservative, as in truncating
// the paper's CDFs at the measurement horizon).
func (r *RunResult) ReconnectionSamples(clamp float64) []float64 {
	out := make([]float64, 0, len(r.Outcomes))
	for _, o := range r.Outcomes {
		if o.Reconnected {
			out = append(out, o.Reconnection)
		} else {
			out = append(out, clamp)
		}
	}
	return out
}

// FailoverSamples returns failover times with unstable targets clamped.
func (r *RunResult) FailoverSamples(clamp float64) []float64 {
	out := make([]float64, 0, len(r.Outcomes))
	for _, o := range r.Outcomes {
		if o.FailedOver {
			out = append(out, o.Failover)
		} else {
			out = append(out, clamp)
		}
	}
	return out
}

// RunFailover performs one §5.2 experiment: deploy the technique, wait for
// convergence, find the controllable targets for the site, fail it, probe
// every ~1.5 s for ~600 s, and compute reconnection/failover per target.
func RunFailover(cfg WorldConfig, sel *Selection, tech core.Technique, failCode string, fc FailoverConfig) (*RunResult, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	if err := w.CDN.Deploy(tech); err != nil {
		return nil, fmt.Errorf("experiment: deploying %s: %w", tech.Name(), err)
	}
	w.Converge(fc.ConvergeTime)

	failed := w.CDN.Site(failCode)
	if failed == nil {
		return nil, fmt.Errorf("experiment: unknown site %q", failCode)
	}
	st := sel.ForSite(failCode)
	if st == nil {
		return nil, fmt.Errorf("experiment: no target selection for site %q", failCode)
	}

	// Controllable targets (§5.2): targets the technique routes to the
	// site when DNS steers them there. For the anycast baseline the
	// relevant set is the site's natural catchment.
	pool := st.NotAnycast
	if _, isAnycast := tech.(core.Anycast); isAnycast {
		pool = st.AnycastHere
	}
	steer := tech.SteerAddr(w.CDN, failed)
	var controllable []topology.NodeID
	for _, id := range pool {
		if got := w.CDN.CatchmentOf(id, steer); got != nil && got.Node == failed.Node {
			controllable = append(controllable, id)
		}
	}
	if fc.MaxTargets > 0 && len(controllable) > fc.MaxTargets {
		controllable = controllable[:fc.MaxTargets]
	}

	res := &RunResult{
		Technique:  tech.Name(),
		FailedSite: failCode,
		PoolSize:   len(pool),
		World:      w,
	}
	res.Controllable = len(controllable)
	if len(controllable) == 0 {
		return res, nil
	}

	// Probe from a healthy site with the failed site's steering address as
	// reply-to (§5.2 uses source 184.164.244.10 from another PEERING site).
	var proberSite *core.Site
	for _, s := range w.CDN.Sites() {
		if s.Code != failCode {
			proberSite = s
			break
		}
	}
	prober := dataplane.NewProber(w.Plane, proberSite.Node, steer)
	prober.LossRate = fc.LossRate

	t0 := w.Sim.Now()
	var monitor *core.Monitor
	if fc.UseMonitor {
		interval, misses := fc.MonitorInterval, fc.MonitorMisses
		if interval <= 0 {
			interval = 0.5
		}
		if misses <= 0 {
			misses = 3
		}
		m, err := w.CDN.StartMonitor(interval, misses)
		if err != nil {
			return nil, err
		}
		monitor = m
		m.OnDetect = func(code string, at float64) {
			res.DetectedAt = at - t0
		}
		if err := w.CDN.CrashSite(failCode); err != nil {
			return nil, err
		}
	} else if err := w.CDN.FailSite(failCode); err != nil {
		return nil, err
	}
	for _, id := range controllable {
		prober.PingEvery(id, fc.ProbeInterval, fc.ProbeDuration)
	}
	// Let the final replies land (replies take well under 30 s).
	w.Sim.RunUntil(t0 + fc.ProbeDuration + 30)
	if monitor != nil {
		monitor.Stop()
	}

	// Per-target sent sequences, in emission order.
	sentByTarget := map[topology.NodeID][]uint64{}
	for _, s := range prober.Sent {
		sentByTarget[s.Target] = append(sentByTarget[s.Target], s.Seq)
	}
	byTarget := prober.Capture.ByTarget()
	for _, id := range controllable {
		res.Outcomes = append(res.Outcomes, analyzeTarget(w, id, sentByTarget[id], byTarget[id], t0))
	}
	return res, nil
}

// analyzeTarget derives the §5.4.1 metrics for one target by matching its
// capture trace against the pings actually sent to it.
func analyzeTarget(w *World, id topology.NodeID, sent []uint64, caps []dataplane.CaptureEntry, t0 float64) TargetOutcome {
	o := TargetOutcome{Target: id}
	if len(caps) == 0 {
		return o
	}
	o.Reconnected = true
	o.Reconnection = caps[0].Time - t0

	// Bounces: site changes across the captured replies.
	for i := 1; i < len(caps); i++ {
		if caps[i].Site != caps[i-1].Site {
			o.Bounces++
		}
	}
	if s := siteCode(w, caps[len(caps)-1].Site); s != "" {
		o.FinalSite = s
	}

	// Failover: the first reply after which the target neither loses a
	// reply nor switches sites (§5.4.1). Index captures by sequence number
	// and scan the per-target send schedule backward to find the start of
	// the maximal suffix with no loss and a constant site. The suffix must
	// extend through the final ping sent, otherwise the target ended the
	// experiment disconnected.
	bySeq := make(map[uint64]dataplane.CaptureEntry, len(caps))
	for _, c := range caps {
		bySeq[c.Seq] = c
	}

	// Gaps: runs of missing replies after the first captured reply.
	inGap := false
	seenFirst := false
	for _, seq := range sent {
		_, got := bySeq[seq]
		if !seenFirst {
			if got {
				seenFirst = true
			}
			continue
		}
		if !got && !inGap {
			o.Gaps++
			inGap = true
		} else if got {
			inGap = false
		}
	}

	lastCap, ok := bySeq[sent[len(sent)-1]]
	if !ok {
		return o // final ping lost: no stable suffix
	}
	start := lastCap
	for i := len(sent) - 2; i >= 0; i-- {
		c, ok := bySeq[sent[i]]
		if !ok || c.Site != lastCap.Site {
			break
		}
		start = c
	}
	o.FailedOver = true
	o.Failover = start.Time - t0
	return o
}

func siteCode(w *World, node topology.NodeID) string {
	n := w.Topo.Node(node)
	if n == nil {
		return ""
	}
	return n.Site
}

// CDFPair bundles the two §5.4.1 distributions for one technique, plus
// the bounce/gap stability summary.
type CDFPair struct {
	Technique    string
	Reconnection *stats.CDF
	Failover     *stats.CDF
	Stability    StabilityStats
}

// Figure2Single converts one run into a CDFPair (convenience for single
// ⟨technique, site⟩ analyses).
func Figure2Single(r *RunResult, fc FailoverConfig) CDFPair {
	return CDFPair{
		Technique:    r.Technique,
		Reconnection: stats.NewCDF(r.ReconnectionSamples(fc.ProbeDuration)),
		Failover:     stats.NewCDF(r.FailoverSamples(fc.ProbeDuration)),
		Stability:    Stability(r.Outcomes),
	}
}

// Figure2 runs the full §5.2 matrix — every technique × every failed site —
// and pools outcomes into per-technique reconnection and failover CDFs
// across ⟨failed site, target⟩ pairs, reproducing Figure 2.
func Figure2(cfg WorldConfig, sel *Selection, techs []core.Technique, sites []string, fc FailoverConfig) ([]CDFPair, error) {
	var out []CDFPair
	for _, tech := range techs {
		var recon, fail []float64
		var outcomes []TargetOutcome
		for _, site := range sites {
			r, err := RunFailover(cfg, sel, tech, site, fc)
			if err != nil {
				return nil, err
			}
			recon = append(recon, r.ReconnectionSamples(fc.ProbeDuration)...)
			fail = append(fail, r.FailoverSamples(fc.ProbeDuration)...)
			outcomes = append(outcomes, r.Outcomes...)
		}
		out = append(out, CDFPair{
			Technique:    tech.Name(),
			Reconnection: stats.NewCDF(recon),
			Failover:     stats.NewCDF(fail),
			Stability:    Stability(outcomes),
		})
	}
	return out, nil
}

// Figure5 compares proactive-prepending at 3 and 5 prepends (Appendix C.2).
func Figure5(cfg WorldConfig, sel *Selection, sites []string, fc FailoverConfig) ([]CDFPair, error) {
	return Figure2(cfg, sel, []core.Technique{
		core.ProactivePrepending{Prepends: 3},
		core.ProactivePrepending{Prepends: 5},
	}, sites, fc)
}
