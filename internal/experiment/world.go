// Package experiment implements the paper's evaluation (§5 and the
// appendices): target selection, failover runs with Verfploeter-style
// probing, reconnection/failover metrics, traffic-control measurement,
// collector-side convergence studies, and the renderers that regenerate
// every figure and table.
package experiment

import (
	"fmt"

	"bestofboth/internal/bgp"
	"bestofboth/internal/collector"
	"bestofboth/internal/core"
	"bestofboth/internal/dataplane"
	"bestofboth/internal/netsim"
	"bestofboth/internal/obs"
	"bestofboth/internal/topology"
	"bestofboth/internal/traffic"
)

// WorldConfig parameterizes one simulated Internet + CDN instance.
type WorldConfig struct {
	// Seed drives both topology generation and event timing. Runs with
	// equal seeds are bit-identical.
	Seed int64
	// Topology overrides the topology generator configuration. The Seed
	// field inside is ignored in favor of Seed above.
	Topology topology.GenConfig
	// BGP overrides protocol timing; zero value uses bgp.DefaultConfig.
	BGP bgp.Config
	// CDN overrides controller parameters.
	CDN core.Config
	// CollectorPeers is the number of route-collector peer sessions
	// (default 40, emulating the RIS/RouteViews full-feed peers used in
	// Appendices A and B).
	CollectorPeers int
	// Workers bounds concurrent runs in Runner instances built from this
	// config (see Runner()); <= 0 means GOMAXPROCS.
	Workers int
	// Shards splits the BGP speakers of each world across this many shard
	// simulators run in deterministic phase-barrier rounds (see bgp.NewSharded).
	// <= 1 means the classic single-kernel world. Converged digests are
	// bit-identical at any shard count, but transient message timing follows
	// shard-local jitter streams, so Shards is a simulation-identity field
	// and participates in the config digest.
	Shards int
	// Partition selects how speakers are placed onto shards:
	// PartitionStatic (the default; empty means static) weighs speakers
	// with bgp.StaticSpeakerWeights' cost model, PartitionProfiled with
	// measured event counts from a seeded warm-up converge (see
	// profile.go). Converged digests are bit-identical across modes, but
	// like Shards the placement steers transient event timing, so
	// Partition is a simulation-identity field and participates in the
	// config digest.
	Partition string
	// Demand, when Enabled, attaches a seeded heavy-tailed demand model and
	// load accountant to the CDN (internal/traffic): every client target
	// gets a request rate drawn from Seed, every site a capacity. Demand is
	// simulation identity — it changes load-management behavior — so it
	// participates in snapKey and the config digest.
	Demand traffic.Config
	// Obs, when non-nil, instruments every layer of worlds built from this
	// config. It takes no part in simulation identity: snapKey ignores it,
	// and snapshots strip it.
	Obs *obs.Registry
}

func (c *WorldConfig) fillDefaults() {
	if c.BGP == (bgp.Config{}) {
		c.BGP = bgp.DefaultConfig()
	}
	if c.CollectorPeers == 0 {
		c.CollectorPeers = 40
	}
	if c.Demand.Enabled {
		c.Demand = c.Demand.Normalized()
	}
	if c.Partition == "" {
		c.Partition = PartitionStatic
	}
	c.Topology.Seed = c.Seed
}

// World bundles one fully wired simulation: topology, BGP, data plane,
// CDN controller, and a route collector.
type World struct {
	Cfg       WorldConfig
	Sim       *netsim.Sim
	Topo      *topology.Topology //cdnlint:nosnapshot immutable after Build; identical worlds regenerate it from Cfg
	Net       *bgp.Network
	Plane     *dataplane.Plane //cdnlint:nosnapshot FIBs are rebuilt by the BGP restore's OnBestChange replay
	CDN       *core.CDN
	Collector *collector.Collector
}

// NewWorld builds a world from cfg. The CDN is constructed but no
// technique is deployed yet.
func NewWorld(cfg WorldConfig) (*World, error) {
	cfg.fillDefaults()
	// Cached memoizes generation per GenConfig and hands back an isolated
	// deep copy: experiment matrices rebuild the identical topology for
	// every ⟨technique, failed site⟩ run.
	topo, err := topology.Cached(cfg.Topology)
	if err != nil {
		return nil, fmt.Errorf("experiment: generating topology: %w", err)
	}
	switch cfg.Partition {
	case PartitionStatic, PartitionProfiled:
	default:
		return nil, fmt.Errorf("experiment: unknown partition mode %q (want %q or %q)",
			cfg.Partition, PartitionStatic, PartitionProfiled)
	}
	sim := netsim.New(cfg.Seed)
	var net *bgp.Network
	if cfg.Shards > 1 {
		var weights []float64
		if cfg.Partition == PartitionProfiled {
			weights, err = profiledWeights(cfg)
			if err != nil {
				return nil, err
			}
		}
		net, err = bgp.NewShardedWeighted(sim, topo, cfg.BGP, cfg.Shards, cfg.Seed, weights)
		if err != nil {
			return nil, fmt.Errorf("experiment: sharding BGP: %w", err)
		}
	} else {
		net = bgp.New(sim, topo, cfg.BGP)
	}
	plane := dataplane.New(net)
	cdn, err := core.New(net, plane, cfg.CDN)
	if err != nil {
		return nil, fmt.Errorf("experiment: building CDN: %w", err)
	}
	col := collector.New("rrc00")
	if err := col.Attach(net, collector.SelectPeers(topo, cfg.CollectorPeers, cfg.Seed)...); err != nil {
		return nil, fmt.Errorf("experiment: attaching collector: %w", err)
	}
	if cfg.Demand.Enabled {
		// The demand model is a pure function of (Demand config, Seed,
		// topology, site roster): restored worlds rebuild it here instead of
		// carrying it in snapshots.
		codes := make([]string, 0, len(cdn.Sites()))
		for _, s := range cdn.Sites() {
			codes = append(codes, s.Code)
		}
		model, err := traffic.NewModel(cfg.Demand, cfg.Seed, clientTargets(topo), codes)
		if err != nil {
			return nil, fmt.Errorf("experiment: building demand model: %w", err)
		}
		cdn.AttachLoad(model, traffic.NewAccountant(model))
	}
	w := &World{
		Cfg: cfg, Sim: sim, Topo: topo, Net: net,
		Plane: plane, CDN: cdn, Collector: col,
	}
	w.Instrument(cfg.Obs)
	return w, nil
}

// Instrument attaches (or, with nil, detaches) an observability registry
// across every layer of the world: kernel, BGP, data plane, and the CDN
// (including its authoritative DNS). Instrumentation is pure counting and
// never perturbs the simulation, so instrumented runs stay bit-identical
// to bare ones.
func (w *World) Instrument(r *obs.Registry) {
	w.Cfg.Obs = r
	w.Sim.Instrument(r)
	w.Net.Instrument(r)
	w.Plane.Instrument(r)
	w.CDN.Instrument(r)
}

// Runner builds a Runner honoring the config's Workers bound and sharing
// its observability registry.
func (c WorldConfig) Runner() *Runner {
	return &Runner{Workers: c.Workers, Obs: c.Obs}
}

// Converge drains control-plane events up to maxVirtual seconds, the
// harness analogue of the paper's "wait one hour to ensure convergence"
// (§5.2).
func (w *World) Converge(maxVirtual float64) {
	w.Net.ConvergeSynchronously(maxVirtual)
}

// Targets returns every prefix-bearing client node (eyeballs, stubs,
// universities), the simulation's stand-in for the ISI hitlist filtered to
// web-client networks (§5.1). Hypergiants are excluded: they host servers,
// not CDN clients.
func (w *World) Targets() []*topology.Node {
	return clientTargets(w.Topo)
}

// clientTargets is the target filter shared by World.Targets and the
// demand model: prefix-bearing non-hypergiant client nodes.
func clientTargets(topo *topology.Topology) []*topology.Node {
	var out []*topology.Node
	for _, n := range topo.Nodes {
		if !n.Prefix.IsValid() {
			continue
		}
		if n.Class == topology.ClassHypergiant {
			continue
		}
		out = append(out, n)
	}
	return out
}
