package experiment

import (
	"fmt"
	"math"
	"net/netip"

	"bestofboth/internal/bgp"
	"bestofboth/internal/core"
	"bestofboth/internal/stats"
	"bestofboth/internal/topology"
)

// The Appendix A/B estimator parameters: an event is dated at the first
// burst of 5 same-type updates within 20 s, and convergence is measured in
// a 1000 s window after it.
const (
	burstCount  = 5
	burstWindow = 20
	convWindow  = 1000
)

// scratchPrefix returns a unique /24 for convergence trials, outside both
// the CDN plan and target space.
func scratchPrefix(i int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{23, byte(i >> 8), byte(i), 0}), 24)
}

// Figure3Result holds the Appendix A reproduction: withdrawal convergence
// per ⟨collector peer, withdrawal⟩ for hypergiant-announced prefixes and
// for the emulated testbed's prefixes, plus the validation error of the
// withdrawal-time estimator.
type Figure3Result struct {
	Hypergiant *stats.CDF
	Testbed    *stats.CDF
	// EstimatorError is |estimated − actual| withdrawal time (the paper
	// validates the estimator to within ~10 s at median).
	EstimatorError *stats.CDF
}

// Figure3 reproduces Appendix A: unicast prefixes are announced from
// hypergiants and from CDN sites, withdrawn, and per-peer convergence time
// measured from the collector archive using the burst estimator.
func Figure3(cfg WorldConfig, trialsPerOrigin int) (*Figure3Result, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	var hyperSamples, testbedSamples, estErr []float64
	prefixIdx := 0

	runTrial := func(origin topology.NodeID, samples *[]float64) error {
		p := scratchPrefix(prefixIdx)
		prefixIdx++
		if err := w.Net.Originate(origin, p, nil); err != nil {
			return err
		}
		w.Converge(1200)
		actual := w.Sim.Now()
		w.Net.Withdraw(origin, p)
		w.Sim.RunUntil(actual + convWindow + 100)

		est, ok := w.Collector.EstimateEventTime(p, bgp.Withdraw, burstCount, burstWindow)
		if !ok {
			// Too few peers saw a withdrawal burst; fall back to actual.
			est = actual
		}
		estErr = append(estErr, math.Abs(est-actual))
		for _, d := range w.Collector.ConvergenceTimes(p, est, convWindow) {
			*samples = append(*samples, d)
		}
		return nil
	}

	hypers := w.Topo.NodesOfClass(topology.ClassHypergiant)
	if len(hypers) == 0 {
		return nil, fmt.Errorf("experiment: topology has no hypergiants")
	}
	for _, h := range hypers {
		for t := 0; t < trialsPerOrigin; t++ {
			if err := runTrial(h.ID, &hyperSamples); err != nil {
				return nil, err
			}
		}
	}
	for _, s := range w.Topo.NodesOfClass(topology.ClassCDN) {
		for t := 0; t < trialsPerOrigin; t++ {
			if err := runTrial(s.ID, &testbedSamples); err != nil {
				return nil, err
			}
		}
	}
	return &Figure3Result{
		Hypergiant:     stats.NewCDF(hyperSamples),
		Testbed:        stats.NewCDF(testbedSamples),
		EstimatorError: stats.NewCDF(estErr),
	}, nil
}

// Figure4Result holds the Appendix B reproduction: anycast announcement
// propagation per ⟨collector peer, announcement⟩, for anycast networks at
// large (the MAnycast2-census analogue) and for the emulated testbed.
type Figure4Result struct {
	AnycastCensus *stats.CDF
	Testbed       *stats.CDF
}

// Figure4 reproduces Appendix B. Census-analogue trials announce a prefix
// simultaneously from several randomly drawn well-connected origins
// (emulating the diverse anycast operators in the MAnycast2 dataset);
// testbed trials announce from all CDN sites.
func Figure4(cfg WorldConfig, censusTrials, testbedTrials int) (*Figure4Result, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	prefixIdx := 4096 // disjoint from Figure3's scratch space

	runTrial := func(origins []topology.NodeID, samples *[]float64) error {
		p := scratchPrefix(prefixIdx)
		prefixIdx++
		actual := w.Sim.Now()
		for _, o := range origins {
			if err := w.Net.Originate(o, p, nil); err != nil {
				return err
			}
		}
		w.Sim.RunUntil(actual + 300)
		est, ok := w.Collector.EstimateEventTime(p, bgp.Announce, burstCount, burstWindow)
		if !ok {
			est = actual
		}
		for _, d := range w.Collector.PropagationTimes(p, est) {
			*samples = append(*samples, d)
		}
		// Clean up so trials stay independent.
		for _, o := range origins {
			w.Net.Withdraw(o, p)
		}
		w.Sim.RunUntil(w.Sim.Now() + convWindow + 100)
		return nil
	}

	// Candidate origins for census trials: hypergiants and transits.
	var candidates []topology.NodeID
	for _, n := range w.Topo.Nodes {
		if n.Class == topology.ClassHypergiant || n.Class == topology.ClassTransit {
			candidates = append(candidates, n.ID)
		}
	}
	if len(candidates) < 4 {
		return nil, fmt.Errorf("experiment: too few candidate anycast origins")
	}
	rng := w.Sim.Rand()

	var census, testbed []float64
	for t := 0; t < censusTrials; t++ {
		k := 3 + rng.Intn(3)
		perm := rng.Perm(len(candidates))
		origins := make([]topology.NodeID, 0, k)
		for _, i := range perm[:k] {
			origins = append(origins, candidates[i])
		}
		if err := runTrial(origins, &census); err != nil {
			return nil, err
		}
	}
	var sites []topology.NodeID
	for _, n := range w.Topo.NodesOfClass(topology.ClassCDN) {
		sites = append(sites, n.ID)
	}
	for t := 0; t < testbedTrials; t++ {
		if err := runTrial(sites, &testbed); err != nil {
			return nil, err
		}
	}
	return &Figure4Result{
		AnycastCensus: stats.NewCDF(census),
		Testbed:       stats.NewCDF(testbed),
	}, nil
}

// Table2Row pairs a technique's qualitative ratings (Table 2) with the
// measured medians backing them.
type Table2Row struct {
	Technique    string
	Tradeoffs    core.Tradeoffs
	MedianRecon  float64 // NaN when not measured
	MedianFail   float64 // NaN when not measured
	ControlShare float64 // NaN when not measured
}

// Table2 assembles the paper's tradeoff matrix, annotating each technique
// with measured Figure 2 medians where available.
func Table2(fig2 []CDFPair, table1 []Table1Row) []Table2Row {
	byName := map[string]CDFPair{}
	for _, p := range fig2 {
		byName[p.Technique] = p
	}
	var meanP3 float64
	if len(table1) > 0 {
		for _, r := range table1 {
			meanP3 += r.Prepend3
		}
		meanP3 /= float64(len(table1))
	} else {
		meanP3 = math.NaN()
	}

	var rows []Table2Row
	for _, tech := range core.AllTechniques() {
		switch tech.Name() {
		case "combined", "proactive-prepending-scoped":
			continue // not in the paper's Table 2
		}
		row := Table2Row{
			Technique:    tech.Name(),
			Tradeoffs:    tech.Tradeoffs(),
			MedianRecon:  math.NaN(),
			MedianFail:   math.NaN(),
			ControlShare: math.NaN(),
		}
		if p, ok := byName[tech.Name()]; ok {
			row.MedianRecon = p.Reconnection.Median()
			row.MedianFail = p.Failover.Median()
		}
		switch tech.Name() {
		case "unicast", "reactive-anycast", "proactive-superprefix":
			row.ControlShare = 1.0
		case "proactive-prepending":
			row.ControlShare = meanP3
		case "anycast":
			row.ControlShare = 0.0
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable2 formats the tradeoff matrix.
func RenderTable2(rows []Table2Row) string {
	t := &stats.Table{Header: []string{
		"Technique", "Control", "Availability", "Risk",
		"median recon (s)", "median failover (s)", "steerable",
	}}
	fm := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmt.Sprintf("%.1f", v)
	}
	fp := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return stats.Pct(v)
	}
	for _, r := range rows {
		t.AddRow(r.Technique, string(r.Tradeoffs.Control), string(r.Tradeoffs.Availability),
			string(r.Tradeoffs.Risk), fm(r.MedianRecon), fm(r.MedianFail), fp(r.ControlShare))
	}
	return t.Render()
}
