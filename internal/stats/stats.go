// Package stats provides the small statistical toolkit used by the
// evaluation harness: empirical CDFs, percentiles, and fixed-width table
// rendering for reproducing the paper's figures and tables as text.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples. The input slice is not modified.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// Min returns the smallest sample, or NaN if empty.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample, or NaN if empty.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// At returns the fraction of samples <= x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Percentile returns the p-th percentile (p in [0,100]) using nearest-rank
// on the sorted samples. It returns NaN if the CDF is empty.
func (c *CDF) Percentile(p float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 100 {
		return c.sorted[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return c.sorted[rank-1]
}

// Median returns the 50th percentile.
func (c *CDF) Median() float64 { return c.Percentile(50) }

// Mean returns the arithmetic mean, or NaN if empty.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Points returns up to n evenly spaced (value, cumulative fraction) points
// suitable for plotting the CDF curve.
func (c *CDF) Points(n int) [][2]float64 {
	m := len(c.sorted)
	if m == 0 || n <= 0 {
		return nil
	}
	if n > m {
		n = m
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * m / n
		if idx < 1 {
			idx = 1
		}
		v := c.sorted[idx-1]
		out = append(out, [2]float64{v, float64(idx) / float64(m)})
	}
	return out
}

// Render draws the CDF as a fixed-width ASCII curve with a log-scaled x
// axis (matching the paper's figures, which plot seconds on log scale).
// Samples <= 0 are clamped to xmin.
func (c *CDF) Render(label string, xmin, xmax float64, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d, median=%.1f, p90=%.1f)\n", label, c.N(), c.Median(), c.Percentile(90))
	if c.N() == 0 {
		return b.String()
	}
	if xmin <= 0 {
		xmin = 0.1
	}
	logMin, logMax := math.Log10(xmin), math.Log10(xmax)
	for _, frac := range []float64{0.25, 0.50, 0.75, 0.90, 0.99} {
		v := c.Percentile(frac * 100)
		pos := 0
		if v > xmin {
			pos = int(float64(width) * (math.Log10(v) - logMin) / (logMax - logMin))
		}
		if pos > width {
			pos = width
		}
		if pos < 0 {
			pos = 0
		}
		fmt.Fprintf(&b, "  p%02.0f |%s* %8.1fs\n", frac*100, strings.Repeat("-", pos), v)
	}
	return b.String()
}

// Summary is a compact one-line description used in experiment logs.
func (c *CDF) Summary() string {
	return fmt.Sprintf("n=%d min=%.2f p25=%.2f p50=%.2f p75=%.2f p90=%.2f p99=%.2f max=%.2f",
		c.N(), c.Min(), c.Percentile(25), c.Median(), c.Percentile(75),
		c.Percentile(90), c.Percentile(99), c.Max())
}

// Table renders rows of cells as a fixed-width text table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table with columns padded to their widest cell.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a fraction in [0,1] as a percentage string like "57%".
func Pct(f float64) string {
	return fmt.Sprintf("%.0f%%", f*100)
}
