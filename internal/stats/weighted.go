package stats

import (
	"fmt"
	"math"
	"sort"
)

// WeightedCDF is an empirical distribution over weighted samples: each
// sample carries a non-negative weight (the load-management evaluation
// weights a target's failover time by its demand). Percentiles are
// weighted nearest-rank: the p-th percentile is the smallest sample value
// at which the cumulative weight reaches p% of the total.
type WeightedCDF struct {
	values []float64 // ascending
	cum    []float64 // cumulative weight, aligned with values
	total  float64
}

// NewWeightedCDF builds a weighted CDF from parallel samples and weights
// (len(weights) must equal len(samples); neither input is modified).
// Samples are sorted stably by value, so equal inputs — regardless of
// worker or shard count upstream — produce bit-identical distributions.
func NewWeightedCDF(samples, weights []float64) *WeightedCDF {
	n := len(samples)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return samples[idx[a]] < samples[idx[b]] })
	c := &WeightedCDF{values: make([]float64, n), cum: make([]float64, n)}
	for i, j := range idx {
		w := weights[j]
		if w < 0 {
			w = 0
		}
		c.values[i] = samples[j]
		c.total += w
		c.cum[i] = c.total
	}
	return c
}

// N returns the sample count.
func (c *WeightedCDF) N() int { return len(c.values) }

// TotalWeight returns the sum of all weights.
func (c *WeightedCDF) TotalWeight() float64 { return c.total }

// Min returns the smallest sample, or NaN if empty.
func (c *WeightedCDF) Min() float64 {
	if len(c.values) == 0 {
		return math.NaN()
	}
	return c.values[0]
}

// Max returns the largest sample, or NaN if empty.
func (c *WeightedCDF) Max() float64 {
	if len(c.values) == 0 {
		return math.NaN()
	}
	return c.values[len(c.values)-1]
}

// At returns the weight fraction of samples <= x.
func (c *WeightedCDF) At(x float64) float64 {
	if len(c.values) == 0 || c.total == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.values, x)
	for i < len(c.values) && c.values[i] == x {
		i++
	}
	if i == 0 {
		return 0
	}
	return c.cum[i-1] / c.total
}

// Percentile returns the weighted p-th percentile (p in [0,100]), or NaN
// if the CDF is empty or all weights are zero.
func (c *WeightedCDF) Percentile(p float64) float64 {
	n := len(c.values)
	if n == 0 || c.total == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.values[0]
	}
	if p >= 100 {
		return c.values[n-1]
	}
	need := p / 100 * c.total
	i := sort.SearchFloat64s(c.cum, need)
	if i >= n {
		i = n - 1
	}
	return c.values[i]
}

// Median returns the weighted 50th percentile.
func (c *WeightedCDF) Median() float64 { return c.Percentile(50) }

// Mean returns the weighted mean, or NaN if empty or weightless.
func (c *WeightedCDF) Mean() float64 {
	if len(c.values) == 0 || c.total == 0 {
		return math.NaN()
	}
	var sum, prev float64
	for i, v := range c.values {
		w := c.cum[i] - prev
		prev = c.cum[i]
		sum += v * w
	}
	return sum / c.total
}

// Summary is a compact one-line description matching CDF.Summary.
func (c *WeightedCDF) Summary() string {
	return fmt.Sprintf("n=%d w=%.0f min=%.2f p25=%.2f p50=%.2f p75=%.2f p90=%.2f p99=%.2f max=%.2f",
		c.N(), c.total, c.Min(), c.Percentile(25), c.Median(), c.Percentile(75),
		c.Percentile(90), c.Percentile(99), c.Max())
}
