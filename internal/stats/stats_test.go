package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := c.Median(); got != 5 {
		t.Fatalf("median = %v, want 5", got)
	}
	if got := c.Percentile(90); got != 9 {
		t.Fatalf("p90 = %v, want 9", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := c.Percentile(100); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.Median()) || !math.IsNaN(c.Mean()) || !math.IsNaN(c.Min()) {
		t.Fatal("empty CDF should return NaN for summary stats")
	}
	if c.N() != 0 {
		t.Fatalf("N = %d", c.N())
	}
	if pts := c.Points(10); pts != nil {
		t.Fatalf("Points on empty = %v", pts)
	}
}

func TestAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestNewCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	NewCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestMean(t *testing.T) {
	c := NewCDF([]float64{2, 4, 6})
	if got := c.Mean(); got != 4 {
		t.Fatalf("mean = %v, want 4", got)
	}
}

func TestPointsMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = r.ExpFloat64() * 100
	}
	c := NewCDF(samples)
	pts := c.Points(50)
	if len(pts) != 50 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] <= pts[i-1][1] {
			t.Fatalf("points not monotone at %d: %v %v", i, pts[i-1], pts[i])
		}
	}
	if last := pts[len(pts)-1][1]; last != 1 {
		t.Fatalf("last cumulative fraction = %v, want 1", last)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				raw[i] = 0
			}
		}
		c := NewCDF(raw)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := c.Percentile(p)
			if v < prev {
				return false
			}
			if v < c.Min() || v > c.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// Property: At() agrees with a direct count of samples <= x.
func TestAtAgainstNaiveProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(raw []float64, probes []float64) bool {
		clean := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		sorted := append([]float64(nil), clean...)
		sort.Float64s(sorted)
		for _, x := range probes {
			if math.IsNaN(x) {
				continue
			}
			count := 0
			for _, v := range sorted {
				if v <= x {
					count++
				}
			}
			want := float64(count) / float64(len(sorted))
			if math.Abs(c.At(x)-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Header: []string{"site", "control"}}
	tb.AddRow("ams", "55%")
	tb.AddRow("sea1", "6%")
	out := tb.Render()
	if !strings.Contains(out, "site") || !strings.Contains(out, "sea1") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestRenderCDFDoesNotPanic(t *testing.T) {
	c := NewCDF([]float64{1, 5, 10, 50, 100, 600})
	out := c.Render("failover", 1, 600, 40)
	if !strings.Contains(out, "median") {
		t.Fatalf("render output: %s", out)
	}
	// Empty CDF renders header only.
	e := NewCDF(nil)
	if out := e.Render("empty", 1, 10, 10); !strings.Contains(out, "n=0") {
		t.Fatalf("empty render: %s", out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.566); got != "57%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(0); got != "0%" {
		t.Fatalf("Pct = %q", got)
	}
}
