package collector

import (
	"bytes"
	"net/netip"
	"testing"

	"bestofboth/internal/bgp"
)

func TestSnapshotRIBReplaysArchive(t *testing.T) {
	sim, net, topo := testNet(t)
	c := New("rrc10")
	c.Attach(net, SelectPeers(topo, 10, 11)...)
	site := topo.NodeByName("cdn-ams")
	net.Originate(site.ID, prefix, nil)
	sim.Run()
	tAnnounced := sim.Now()
	net.Withdraw(site.ID, prefix)
	sim.Run()

	// Snapshot while announced: most peers hold a route.
	during := c.SnapshotRIB(tAnnounced)
	if len(during) < 8 {
		t.Fatalf("snapshot during announcement has %d entries", len(during))
	}
	for _, e := range during {
		if e.Prefix != prefix || len(e.Path) == 0 {
			t.Fatalf("bad entry %+v", e)
		}
	}
	// Snapshot after withdrawal: empty.
	if after := c.SnapshotRIB(sim.Now()); len(after) != 0 {
		t.Fatalf("snapshot after withdrawal has %d entries", len(after))
	}
	// Snapshot before anything: empty.
	if before := c.SnapshotRIB(0); len(before) != 0 {
		t.Fatalf("snapshot at t=0 has %d entries", len(before))
	}
}

func TestRIBDumpRoundTrip(t *testing.T) {
	sim, net, topo := testNet(t)
	c := New("rrc11")
	c.Attach(net, SelectPeers(topo, 12, 12)...)
	site := topo.NodeByName("cdn-slc")
	p2 := netip.MustParsePrefix("184.164.246.0/24")
	net.Originate(site.ID, prefix, nil)
	net.Originate(site.ID, p2, nil)
	sim.Run()

	at := sim.Now()
	want := c.SnapshotRIB(at)
	var buf bytes.Buffer
	if err := c.WriteRIBDump(&buf, topo, at); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRIBDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Peer != g.Peer || w.Prefix != g.Prefix {
			t.Fatalf("entry %d: %+v vs %+v", i, w, g)
		}
		if len(w.Path) != len(g.Path) {
			t.Fatalf("entry %d path: %v vs %v", i, w.Path, g.Path)
		}
		for j := range w.Path {
			if w.Path[j] != g.Path[j] {
				t.Fatalf("entry %d path: %v vs %v", i, w.Path, g.Path)
			}
		}
		if g.PeerAS != topo.Node(w.Peer).ASN {
			t.Fatalf("entry %d peer AS %d, want %d", i, g.PeerAS, topo.Node(w.Peer).ASN)
		}
	}
	// Both prefixes present.
	seen := map[netip.Prefix]bool{}
	for _, e := range got {
		seen[e.Prefix] = true
	}
	if !seen[prefix] || !seen[p2] {
		t.Fatalf("dump lost prefixes: %v", seen)
	}
}

func TestRIBDumpVisibilityAgreement(t *testing.T) {
	// The visibility metric computed from the snapshot must agree with the
	// archive-replay Visibility() — the Appendix A methodology over RIB
	// dumps vs. update streams.
	sim, net, topo := testNet(t)
	c := New("rrc12")
	peers := SelectPeers(topo, 15, 13)
	c.Attach(net, peers...)
	site := topo.NodeByName("cdn-atl")
	net.Originate(site.ID, prefix, nil)
	sim.Run()
	at := sim.Now()

	snap := c.SnapshotRIB(at)
	withRoute := map[bool]int{}
	for _, e := range snap {
		if e.Prefix == prefix {
			withRoute[true]++
		}
	}
	snapVis := float64(withRoute[true]) / float64(len(peers))
	if v := c.Visibility(prefix, at); v != snapVis {
		t.Fatalf("visibility mismatch: replay %v vs snapshot %v", v, snapVis)
	}
}

func TestReadRIBDumpRejectsGarbage(t *testing.T) {
	if _, err := ReadRIBDump(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated header accepted")
	}
	// RIB record referencing a peer index with no index table.
	var buf bytes.Buffer
	body := []byte{0, 0, 0, 1, 24, 184, 164, 244, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0}
	writeMRTHeader(&buf, 1, mrtTypeTableDumpV2, mrtSubtypeRIBIPv4Uni, body)
	if _, err := ReadRIBDump(&buf); err == nil {
		t.Fatal("out-of-range peer index accepted")
	}
}

func TestSnapshotPathsSurviveWire(t *testing.T) {
	// Attribute codec reuse: a snapshot path with prepending must survive
	// the TABLE_DUMP_V2 encode/decode.
	sim, net, topo := testNet(t)
	c := New("rrc13")
	c.Attach(net, SelectPeers(topo, 6, 14)...)
	site := topo.NodeByName("cdn-msn")
	net.Originate(site.ID, prefix, &bgp.OriginPolicy{Prepend: 4})
	sim.Run()
	var buf bytes.Buffer
	if err := c.WriteRIBDump(&buf, topo, sim.Now()); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadRIBDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	foundPrepended := false
	for _, e := range entries {
		count := 0
		for _, a := range e.Path {
			if a == 47065 {
				count++
			}
		}
		if count == 5 {
			foundPrepended = true
		}
	}
	if !foundPrepended {
		t.Fatal("prepended path (5×47065) not found in dump")
	}
}
