package collector

// MRT TABLE_DUMP_V2 RIB snapshots (RFC 6396 §4.3): a PEER_INDEX_TABLE
// record followed by one RIB_IPV4_UNICAST record per prefix, each entry
// carrying real RFC 4271 path attributes. This is the format RIS and
// RouteViews publish RIB dumps in; the Appendix A visibility methodology
// conceptually runs over such snapshots.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"

	"bestofboth/internal/bgp"
	"bestofboth/internal/topology"
)

const (
	mrtTypeTableDumpV2   = 13
	mrtSubtypePeerIndex  = 1
	mrtSubtypeRIBIPv4Uni = 2
	peerTypeIPv4AS4      = 0x02 // 4-octet AS, IPv4 address
)

// RIBEntry is one (peer, route) pair of a snapshot.
type RIBEntry struct {
	Peer   topology.NodeID
	PeerAS topology.ASN
	Prefix netip.Prefix
	Path   []topology.ASN
}

// SnapshotRIB reconstructs each peer's routes at virtual time at by
// replaying the archive, like building a RIB dump from an update stream.
func (c *Collector) SnapshotRIB(at float64) []RIBEntry {
	type key struct {
		peer   topology.NodeID
		prefix netip.Prefix
	}
	state := map[key][]topology.ASN{}
	for _, r := range c.archive {
		if r.Time > at {
			break
		}
		k := key{r.Peer, r.Prefix}
		if r.Type == bgp.Announce {
			state[k] = r.Path
		} else {
			delete(state, k)
		}
	}
	out := make([]RIBEntry, 0, len(state))
	for k, path := range state {
		out = append(out, RIBEntry{Peer: k.peer, Prefix: k.prefix, Path: path})
	}
	sort.Slice(out, func(i, j int) bool {
		if ci := out[i].Prefix.Addr().Compare(out[j].Prefix.Addr()); ci != 0 {
			return ci < 0
		}
		if out[i].Prefix.Bits() != out[j].Prefix.Bits() {
			return out[i].Prefix.Bits() < out[j].Prefix.Bits()
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// WriteRIBDump serializes the collector's RIB state at virtual time at as
// a TABLE_DUMP_V2 MRT stream.
func (c *Collector) WriteRIBDump(w io.Writer, topo *topology.Topology, at float64) error {
	bw := bufio.NewWriter(w)
	entries := c.SnapshotRIB(at)

	// Peer index: the collector's attached peers in stable order.
	peerIdx := map[topology.NodeID]uint16{}
	var body []byte
	body = binary.BigEndian.AppendUint32(body, 0xC0000201) // collector BGP ID
	body = binary.BigEndian.AppendUint16(body, 0)          // empty view name
	body = binary.BigEndian.AppendUint16(body, uint16(len(c.peers)))
	for i, p := range c.peers {
		peerIdx[p] = uint16(i)
		node := topo.Node(p)
		if node == nil {
			return fmt.Errorf("collector: unknown peer %d in index", p)
		}
		body = append(body, peerTypeIPv4AS4)
		body = binary.BigEndian.AppendUint32(body, uint32(p)+1) // BGP ID
		a := PeerAddr(p).As4()
		body = append(body, a[:]...)
		body = binary.BigEndian.AppendUint32(body, uint32(node.ASN))
	}
	if err := writeMRTHeader(bw, at, mrtTypeTableDumpV2, mrtSubtypePeerIndex, body); err != nil {
		return err
	}

	// Group entries per prefix.
	byPrefix := map[netip.Prefix][]RIBEntry{}
	var order []netip.Prefix
	for _, e := range entries {
		if _, seen := byPrefix[e.Prefix]; !seen {
			order = append(order, e.Prefix)
		}
		byPrefix[e.Prefix] = append(byPrefix[e.Prefix], e)
	}
	seq := uint32(0)
	for _, p := range order {
		es := byPrefix[p]
		var rec []byte
		rec = binary.BigEndian.AppendUint32(rec, seq)
		seq++
		var err error
		rec, err = bgp.AppendNLRIPrefix(rec, p)
		if err != nil {
			return err
		}
		rec = binary.BigEndian.AppendUint16(rec, uint16(len(es)))
		for _, e := range es {
			idx, ok := peerIdx[e.Peer]
			if !ok {
				return fmt.Errorf("collector: RIB entry for non-indexed peer %d", e.Peer)
			}
			rec = binary.BigEndian.AppendUint16(rec, idx)
			rec = binary.BigEndian.AppendUint32(rec, uint32(at)) // originated time
			attrs := bgp.AppendPathAttributes(nil, &bgp.WireUpdate{
				ASPath:  e.Path,
				NextHop: PeerAddr(e.Peer),
			})
			rec = binary.BigEndian.AppendUint16(rec, uint16(len(attrs)))
			rec = append(rec, attrs...)
		}
		if err := writeMRTHeader(bw, at, mrtTypeTableDumpV2, mrtSubtypeRIBIPv4Uni, rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeMRTHeader writes a plain (non-ET) MRT record.
func writeMRTHeader(w io.Writer, t float64, typ, sub uint16, body []byte) error {
	hdr := make([]byte, 0, 12)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(t))
	hdr = binary.BigEndian.AppendUint16(hdr, typ)
	hdr = binary.BigEndian.AppendUint16(hdr, sub)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(body)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadRIBDump parses a TABLE_DUMP_V2 stream written by WriteRIBDump.
func ReadRIBDump(r io.Reader) ([]RIBEntry, error) {
	br := bufio.NewReader(r)
	type peerInfo struct {
		ip netip.Addr
		as topology.ASN
	}
	var peers []peerInfo
	var out []RIBEntry
	for {
		hdr := make([]byte, 12)
		if _, err := io.ReadFull(br, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("%w: truncated header: %v", ErrBadMRT, err)
		}
		typ := binary.BigEndian.Uint16(hdr[4:])
		sub := binary.BigEndian.Uint16(hdr[6:])
		length := binary.BigEndian.Uint32(hdr[8:])
		if length > 1<<22 {
			return nil, fmt.Errorf("%w: record length %d", ErrBadMRT, length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("%w: truncated body: %v", ErrBadMRT, err)
		}
		if typ != mrtTypeTableDumpV2 {
			continue
		}
		switch sub {
		case mrtSubtypePeerIndex:
			if len(body) < 8 {
				return nil, fmt.Errorf("%w: short peer index", ErrBadMRT)
			}
			viewLen := int(binary.BigEndian.Uint16(body[4:]))
			pos := 6 + viewLen
			if len(body) < pos+2 {
				return nil, fmt.Errorf("%w: short peer index", ErrBadMRT)
			}
			n := int(binary.BigEndian.Uint16(body[pos:]))
			pos += 2
			peers = peers[:0]
			for i := 0; i < n; i++ {
				if len(body) < pos+13 {
					return nil, fmt.Errorf("%w: short peer entry", ErrBadMRT)
				}
				pt := body[pos]
				if pt != peerTypeIPv4AS4 {
					return nil, fmt.Errorf("%w: unsupported peer type %#x", ErrBadMRT, pt)
				}
				ip := netip.AddrFrom4([4]byte(body[pos+5 : pos+9]))
				as := topology.ASN(binary.BigEndian.Uint32(body[pos+9:]))
				peers = append(peers, peerInfo{ip: ip, as: as})
				pos += 13
			}
		case mrtSubtypeRIBIPv4Uni:
			if len(body) < 4 {
				return nil, fmt.Errorf("%w: short RIB record", ErrBadMRT)
			}
			pos := 4
			prefix, n, err := bgp.ParseNLRIPrefix(body[pos:])
			if err != nil {
				return nil, fmt.Errorf("%w: RIB prefix: %v", ErrBadMRT, err)
			}
			pos += n
			if len(body) < pos+2 {
				return nil, fmt.Errorf("%w: short RIB record", ErrBadMRT)
			}
			count := int(binary.BigEndian.Uint16(body[pos:]))
			pos += 2
			for i := 0; i < count; i++ {
				if len(body) < pos+8 {
					return nil, fmt.Errorf("%w: short RIB entry", ErrBadMRT)
				}
				idx := int(binary.BigEndian.Uint16(body[pos:]))
				attrLen := int(binary.BigEndian.Uint16(body[pos+6:]))
				pos += 8
				if len(body) < pos+attrLen {
					return nil, fmt.Errorf("%w: short RIB attributes", ErrBadMRT)
				}
				var wu bgp.WireUpdate
				if err := bgp.ParsePathAttributes(body[pos:pos+attrLen], &wu); err != nil {
					return nil, fmt.Errorf("%w: RIB attributes: %v", ErrBadMRT, err)
				}
				pos += attrLen
				if idx >= len(peers) {
					return nil, fmt.Errorf("%w: peer index %d out of range", ErrBadMRT, idx)
				}
				e := RIBEntry{PeerAS: peers[idx].as, Prefix: prefix, Path: wu.ASPath}
				if id, ok := peerID(peers[idx].ip); ok {
					e.Peer = id
				}
				out = append(out, e)
			}
		}
	}
}
