package collector

import (
	"net/netip"
	"testing"

	"bestofboth/internal/bgp"
	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

var prefix = netip.MustParsePrefix("184.164.244.0/24")

func testNet(t *testing.T) (*netsim.Sim, *bgp.Network, *topology.Topology) {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{Seed: 3, NumStub: 60, NumEyeball: 40, NumUniversity: 8})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(4)
	net := bgp.New(sim, topo, bgp.Config{MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.05, ProcMax: 0.5})
	return sim, net, topo
}

func TestAttachAndArchive(t *testing.T) {
	sim, net, topo := testNet(t)
	c := New("rrc00")
	peers := SelectPeers(topo, 10, 1)
	if len(peers) != 10 {
		t.Fatalf("selected %d peers", len(peers))
	}
	if err := c.Attach(net, peers...); err != nil {
		t.Fatal(err)
	}
	site := topo.NodeByName("cdn-ams")
	net.Originate(site.ID, prefix, nil)
	sim.Run()

	recs := c.RecordsFor(prefix)
	if len(recs) == 0 {
		t.Fatal("no records archived")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Fatal("archive not time ordered")
		}
	}
	seen := map[topology.NodeID]bool{}
	for _, r := range recs {
		if r.Type != bgp.Announce {
			t.Fatalf("unexpected %v before any withdrawal", r.Type)
		}
		if len(r.Path) == 0 {
			t.Fatal("announce without path")
		}
		seen[r.Peer] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d/10 peers saw the announcement", len(seen))
	}
}

func TestVisibilityTimeline(t *testing.T) {
	sim, net, topo := testNet(t)
	c := New("rrc01")
	c.Attach(net, SelectPeers(topo, 12, 2)...)
	site := topo.NodeByName("cdn-atl")

	if v := c.Visibility(prefix, 0); v != 0 {
		t.Fatalf("initial visibility = %v", v)
	}
	net.Originate(site.ID, prefix, nil)
	sim.Run()
	tAnnounced := sim.Now()
	if v := c.Visibility(prefix, tAnnounced); v < 0.9 {
		t.Fatalf("visibility after announce = %v, want ≥0.9", v)
	}
	net.Withdraw(site.ID, prefix)
	sim.Run()
	if v := c.Visibility(prefix, sim.Now()); v != 0 {
		t.Fatalf("visibility after withdrawal = %v, want 0", v)
	}
	// Historical query still sees the announced period.
	if v := c.Visibility(prefix, tAnnounced); v < 0.9 {
		t.Fatalf("historical visibility = %v", v)
	}
}

func TestEstimateEventTime(t *testing.T) {
	sim, net, topo := testNet(t)
	c := New("rrc02")
	c.Attach(net, SelectPeers(topo, 15, 3)...)
	site := topo.NodeByName("cdn-bos")

	t0 := sim.Now()
	net.Originate(site.ID, prefix, nil)
	sim.Run()
	est, ok := c.EstimateEventTime(prefix, bgp.Announce, 5, 20)
	if !ok {
		t.Fatal("no announcement burst found")
	}
	if est < t0 || est > t0+30 {
		t.Fatalf("estimated announce time %v far from actual %v", est, t0)
	}

	t1 := sim.Now()
	net.Withdraw(site.ID, prefix)
	sim.Run()
	est, ok = c.EstimateEventTime(prefix, bgp.Withdraw, 5, 20)
	if !ok {
		t.Fatal("no withdrawal burst found")
	}
	// Paper validation: estimate within ~10s of the actual withdrawal.
	if est < t1 || est > t1+30 {
		t.Fatalf("estimated withdrawal time %v far from actual %v", est, t1)
	}
}

func TestEstimateEventTimeNoBurst(t *testing.T) {
	c := New("x")
	if _, ok := c.EstimateEventTime(prefix, bgp.Withdraw, 5, 20); ok {
		t.Fatal("burst found in empty archive")
	}
}

func TestConvergenceAndPropagationTimes(t *testing.T) {
	sim, net, topo := testNet(t)
	c := New("rrc03")
	peers := SelectPeers(topo, 15, 4)
	c.Attach(net, peers...)
	site := topo.NodeByName("cdn-slc")

	t0 := sim.Now()
	net.Originate(site.ID, prefix, nil)
	sim.Run()

	prop := c.PropagationTimes(prefix, t0)
	if len(prop) < 10 {
		t.Fatalf("propagation observed at only %d peers", len(prop))
	}
	for p, d := range prop {
		if d < 0 {
			t.Fatalf("negative propagation delay at peer %d", p)
		}
		if d > 60 {
			t.Fatalf("announcement took %vs to reach peer %d", d, p)
		}
	}

	t1 := sim.Now()
	net.Withdraw(site.ID, prefix)
	sim.Run()
	conv := c.ConvergenceTimes(prefix, t1, 1000)
	if len(conv) == 0 {
		t.Fatal("no convergence samples")
	}
	// Withdrawal convergence (with path exploration) must be slower on
	// average than initial propagation.
	var avgProp, avgConv float64
	for _, d := range prop {
		avgProp += d
	}
	avgProp /= float64(len(prop))
	for _, d := range conv {
		avgConv += d
	}
	avgConv /= float64(len(conv))
	if avgConv <= avgProp {
		t.Fatalf("withdrawal convergence (%.1fs) not slower than propagation (%.1fs)", avgConv, avgProp)
	}
}

func TestFullyWithdrawn(t *testing.T) {
	sim, net, topo := testNet(t)
	c := New("rrc04")
	c.Attach(net, SelectPeers(topo, 10, 5)...)
	site := topo.NodeByName("cdn-msn")
	net.Originate(site.ID, prefix, nil)
	sim.Run()
	if c.FullyWithdrawn(prefix, 0.9) {
		t.Fatal("prefix flagged withdrawn while announced")
	}
	net.Withdraw(site.ID, prefix)
	sim.Run()
	if !c.FullyWithdrawn(prefix, 0.9) {
		t.Fatal("full withdrawal not detected")
	}
	// Unknown prefix: never withdrawn.
	if c.FullyWithdrawn(netip.MustParsePrefix("9.9.9.0/24"), 0.9) {
		t.Fatal("unknown prefix flagged withdrawn")
	}
}

func TestClearKeepsPeers(t *testing.T) {
	sim, net, topo := testNet(t)
	c := New("rrc05")
	c.Attach(net, SelectPeers(topo, 5, 6)...)
	site := topo.NodeByName("cdn-ams")
	net.Originate(site.ID, prefix, nil)
	sim.Run()
	if len(c.Records()) == 0 {
		t.Fatal("no records before clear")
	}
	c.Clear()
	if len(c.Records()) != 0 {
		t.Fatal("clear did not drop archive")
	}
	if len(c.Peers()) != 5 {
		t.Fatal("clear dropped peers")
	}
	net.Withdraw(site.ID, prefix)
	sim.Run()
	if len(c.Records()) == 0 {
		t.Fatal("collector stopped archiving after clear")
	}
}

func TestSelectPeersDeterministic(t *testing.T) {
	_, _, topo := testNet(t)
	a := SelectPeers(topo, 20, 9)
	b := SelectPeers(topo, 20, 9)
	if len(a) != 20 {
		t.Fatalf("got %d peers", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SelectPeers not deterministic")
		}
	}
	// Mostly core networks.
	core := 0
	for _, id := range a {
		switch topo.Node(id).Class {
		case topology.ClassTier1, topology.ClassTransit, topology.ClassREN:
			core++
		}
	}
	if core < 10 {
		t.Fatalf("only %d/20 peers are core networks", core)
	}
}

func TestAttachUnknownPeer(t *testing.T) {
	_, net, _ := testNet(t)
	c := New("bad")
	if err := c.Attach(net, topology.NodeID(99999)); err == nil {
		t.Fatal("attach to unknown node succeeded")
	}
}
