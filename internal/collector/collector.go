// Package collector emulates public BGP route collectors (RIS, RouteViews):
// receive-only sessions with a set of peer ASes, a timestamped update
// archive, and the estimators the paper's Appendices A and B apply to
// archived feeds — visibility time series, withdrawal/announcement onset
// estimation from update bursts, per-peer convergence time, and per-peer
// propagation delay.
package collector

import (
	"fmt"
	"math/rand"
	"net/netip"
	"slices"
	"sort"

	"bestofboth/internal/bgp"
	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// Record is one archived update as seen from one collector peer.
type Record struct {
	Time   float64
	Peer   topology.NodeID
	Prefix netip.Prefix
	Type   bgp.UpdateType
	Path   []topology.ASN
}

// Collector archives the update feeds of its peers.
type Collector struct {
	name    string            //cdnlint:nosnapshot construction-time identity, not archived state
	peers   []topology.NodeID //cdnlint:nosnapshot session wiring; restore targets a collector attached to the same peers
	archive []Record
}

// New creates a collector with the given name (e.g. "rrc00").
func New(name string) *Collector { return &Collector{name: name} }

// Name returns the collector name.
func (c *Collector) Name() string { return c.name }

// Peers returns the attached peer nodes in attachment order.
func (c *Collector) Peers() []topology.NodeID { return slices.Clone(c.peers) }

// Attach opens receive-only sessions with the given peers on net.
func (c *Collector) Attach(net *bgp.Network, peers ...topology.NodeID) error {
	for _, p := range peers {
		p := p
		if err := net.AttachFeed(p, func(now netsim.Seconds, peer topology.NodeID, u bgp.Update) {
			rec := Record{Time: now, Peer: peer, Prefix: u.Prefix, Type: u.Type}
			if u.Route != nil {
				rec.Path = u.Route.Path
			}
			c.archive = append(c.archive, rec)
		}); err != nil {
			return fmt.Errorf("collector %s: attaching peer %d: %w", c.name, p, err)
		}
		c.peers = append(c.peers, p)
	}
	return nil
}

// Records returns the full archive in arrival order.
func (c *Collector) Records() []Record { return c.archive }

// RecordsFor filters the archive to one prefix, in time order.
func (c *Collector) RecordsFor(prefix netip.Prefix) []Record {
	var out []Record
	for _, r := range c.archive {
		if r.Prefix == prefix {
			out = append(out, r)
		}
	}
	return out
}

// Clear drops the archive (peers stay attached), so one collector can serve
// multiple sequential experiments.
func (c *Collector) Clear() { c.archive = nil }

// SnapshotArchive deep-copies the archive (including AS paths) so the copy
// can outlive, and be restored into, other collectors without sharing.
func (c *Collector) SnapshotArchive() []Record {
	out := make([]Record, len(c.archive))
	for i, r := range c.archive {
		r.Path = slices.Clone(r.Path)
		out[i] = r
	}
	return out
}

// RestoreArchive replaces the archive with a deep copy of recs, so a
// snapshot taken from a converged world can seed a freshly built collector.
func (c *Collector) RestoreArchive(recs []Record) {
	c.archive = make([]Record, len(recs))
	for i, r := range recs {
		r.Path = slices.Clone(r.Path)
		c.archive[i] = r
	}
}

// Visibility returns the fraction of peers that have a route to prefix at
// time t, replaying the archive. This mirrors the RIPE Routing History
// visibility metric the paper uses to flag withdrawals (Appendix A).
func (c *Collector) Visibility(prefix netip.Prefix, t float64) float64 {
	if len(c.peers) == 0 {
		return 0
	}
	state := make(map[topology.NodeID]bool, len(c.peers))
	for _, r := range c.RecordsFor(prefix) {
		if r.Time > t {
			break
		}
		state[r.Peer] = r.Type == bgp.Announce
	}
	n := 0
	for _, has := range state {
		if has {
			n++
		}
	}
	return float64(n) / float64(len(c.peers))
}

// EstimateEventTime implements the paper's onset estimator: the event
// (withdrawal or announcement) is estimated to have occurred at the first
// time when at least minBurst updates of the given type are observed within
// a window of windowSec seconds (the paper uses 5 updates in 20 s). It
// returns ok=false if no such burst exists.
func (c *Collector) EstimateEventTime(prefix netip.Prefix, typ bgp.UpdateType, minBurst int, windowSec float64) (float64, bool) {
	var times []float64
	for _, r := range c.RecordsFor(prefix) {
		if r.Type == typ {
			times = append(times, r.Time)
		}
	}
	if len(times) < minBurst {
		return 0, false
	}
	sort.Float64s(times)
	for i := 0; i+minBurst-1 < len(times); i++ {
		if times[i+minBurst-1]-times[i] <= windowSec {
			return times[i], true
		}
	}
	return 0, false
}

// ConvergenceTimes computes, per collector peer, the delay between
// eventTime and the last update from that peer for the prefix within
// [eventTime, eventTime+window] (the Appendix A per-⟨peer, withdrawal⟩
// convergence metric; the paper uses a 1000 s window). Peers with no
// updates in the window are omitted.
func (c *Collector) ConvergenceTimes(prefix netip.Prefix, eventTime, window float64) map[topology.NodeID]float64 {
	last := map[topology.NodeID]float64{}
	for _, r := range c.RecordsFor(prefix) {
		if r.Time < eventTime || r.Time > eventTime+window {
			continue
		}
		if cur, ok := last[r.Peer]; !ok || r.Time > cur {
			last[r.Peer] = r.Time
		}
	}
	out := make(map[topology.NodeID]float64, len(last))
	for p, t := range last {
		out[p] = t - eventTime
	}
	return out
}

// PropagationTimes computes, per collector peer, the delay between
// eventTime and the first announcement of the prefix seen from that peer
// (the Appendix B per-⟨peer, announcement⟩ propagation metric). Peers that
// never announce are omitted.
func (c *Collector) PropagationTimes(prefix netip.Prefix, eventTime float64) map[topology.NodeID]float64 {
	first := map[topology.NodeID]float64{}
	for _, r := range c.RecordsFor(prefix) {
		if r.Type != bgp.Announce || r.Time < eventTime {
			continue
		}
		if cur, ok := first[r.Peer]; !ok || r.Time < cur {
			first[r.Peer] = r.Time
		}
	}
	out := make(map[topology.NodeID]float64, len(first))
	for p, t := range first {
		out[p] = t - eventTime
	}
	return out
}

// FullyWithdrawn reports whether at least frac of the peers that ever had a
// route to prefix eventually withdrew it — the paper's check that a flagged
// visibility drop is an actual withdrawal (Appendix A uses 90%).
func (c *Collector) FullyWithdrawn(prefix netip.Prefix, frac float64) bool {
	state := map[topology.NodeID]bool{}
	ever := map[topology.NodeID]bool{}
	for _, r := range c.RecordsFor(prefix) {
		has := r.Type == bgp.Announce
		state[r.Peer] = has
		if has {
			ever[r.Peer] = true
		}
	}
	if len(ever) == 0 {
		return false
	}
	withdrawn := 0
	for p := range ever {
		if !state[p] {
			withdrawn++
		}
	}
	return float64(withdrawn) >= frac*float64(len(ever))
}

// SelectPeers picks n collector peers from the topology, weighted toward
// the well-connected networks that actually feed RIS and RouteViews:
// tier-1s and transits first, then eyeballs. Selection is deterministic in
// seed.
func SelectPeers(topo *topology.Topology, n int, seed int64) []topology.NodeID {
	r := rand.New(rand.NewSource(seed))
	var core, edge []topology.NodeID
	for _, node := range topo.Nodes {
		switch node.Class {
		case topology.ClassTier1, topology.ClassTransit, topology.ClassREN:
			core = append(core, node.ID)
		case topology.ClassEyeball:
			edge = append(edge, node.ID)
		}
	}
	r.Shuffle(len(core), func(i, j int) { core[i], core[j] = core[j], core[i] })
	r.Shuffle(len(edge), func(i, j int) { edge[i], edge[j] = edge[j], edge[i] })
	out := make([]topology.NodeID, 0, n)
	// Roughly 3:1 core-to-edge mix.
	wantCore := n * 3 / 4
	for len(out) < wantCore && len(core) > 0 {
		out = append(out, core[0])
		core = core[1:]
	}
	for len(out) < n && len(edge) > 0 {
		out = append(out, edge[0])
		edge = edge[1:]
	}
	for len(out) < n && len(core) > 0 {
		out = append(out, core[0])
		core = core[1:]
	}
	return out
}
