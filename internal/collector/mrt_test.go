package collector

import (
	"bytes"
	"math"
	"net/netip"
	"testing"

	"bestofboth/internal/bgp"
	"bestofboth/internal/topology"
)

func TestMRTRoundTrip(t *testing.T) {
	sim, net, topo := testNet(t)
	c := New("rrc06")
	c.Attach(net, SelectPeers(topo, 8, 7)...)
	site := topo.NodeByName("cdn-ams")
	net.Originate(site.ID, prefix, nil)
	sim.Run()
	net.Withdraw(site.ID, prefix)
	sim.Run()

	orig := c.RecordsFor(prefix)
	if len(orig) == 0 {
		t.Fatal("no records to dump")
	}

	var buf bytes.Buffer
	if err := c.WriteMRT(&buf, topo, prefix); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := EntriesToRecords(entries)
	if len(got) != len(orig) {
		t.Fatalf("round trip %d records, want %d", len(got), len(orig))
	}
	for i := range orig {
		o, g := orig[i], got[i]
		if o.Peer != g.Peer || o.Prefix != g.Prefix || o.Type != g.Type {
			t.Fatalf("record %d differs: %+v vs %+v", i, o, g)
		}
		if math.Abs(o.Time-g.Time) > 1e-5 {
			t.Fatalf("record %d time %v vs %v", i, o.Time, g.Time)
		}
		if o.Type == bgp.Announce {
			if len(o.Path) != len(g.Path) {
				t.Fatalf("record %d path %v vs %v", i, o.Path, g.Path)
			}
			for j := range o.Path {
				if o.Path[j] != g.Path[j] {
					t.Fatalf("record %d path %v vs %v", i, o.Path, g.Path)
				}
			}
		}
		// Peer AS survives too.
		if entries[i].PeerAS != topo.Node(o.Peer).ASN {
			t.Fatalf("record %d peer AS %d, want %d", i, entries[i].PeerAS, topo.Node(o.Peer).ASN)
		}
	}
}

func TestMRTFullArchiveDump(t *testing.T) {
	sim, net, topo := testNet(t)
	c := New("rrc07")
	c.Attach(net, SelectPeers(topo, 5, 8)...)
	site := topo.NodeByName("cdn-bos")
	p2 := netip.MustParsePrefix("184.164.245.0/24")
	net.Originate(site.ID, prefix, nil)
	net.Originate(site.ID, p2, nil)
	sim.Run()

	var buf bytes.Buffer
	// Zero prefix: dump everything.
	if err := c.WriteMRT(&buf, topo, netip.Prefix{}); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(c.Records()) {
		t.Fatalf("dumped %d entries, archive has %d", len(entries), len(c.Records()))
	}
	seen := map[netip.Prefix]bool{}
	for _, e := range entries {
		for _, p := range e.Update.NLRI {
			seen[p] = true
		}
	}
	if !seen[prefix] || !seen[p2] {
		t.Fatalf("dump missing prefixes: %v", seen)
	}
}

func TestReadMRTRejectsGarbage(t *testing.T) {
	if _, err := ReadMRT(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Valid header claiming a huge record.
	hdr := make([]byte, 12)
	hdr[8] = 0xFF
	hdr[9] = 0xFF
	hdr[10] = 0xFF
	if _, err := ReadMRT(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestReadMRTSkipsUnknownTypes(t *testing.T) {
	// A record with an unmodeled type must be skipped, not fail.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 1, 0, 13 /* TABLE_DUMP_V2 */, 0, 1, 0, 0, 0, 2, 0xAA, 0xBB})
	entries, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("unknown type produced entries: %v", entries)
	}
}

func TestPeerAddrRoundTrip(t *testing.T) {
	for _, id := range []topology.NodeID{0, 1, 255, 256, 4095} {
		got, ok := peerID(PeerAddr(id))
		if !ok || got != id {
			t.Fatalf("PeerAddr round trip failed for %d: %d, %v", id, got, ok)
		}
	}
	if _, ok := peerID(netip.MustParseAddr("192.0.2.1")); ok {
		t.Fatal("non-peer address resolved")
	}
}
