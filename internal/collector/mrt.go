package collector

// MRT export/import (RFC 6396 subset) for collector archives. Records are
// written as BGP4MP_ET / BGP4MP_MESSAGE_AS4 entries carrying real RFC 4271
// UPDATE messages, so archives round-trip through the standard container
// used by RIS and RouteViews dumps and can be inspected with cmd/bgpdump.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net/netip"

	"bestofboth/internal/bgp"
	"bestofboth/internal/topology"
)

// MRT constants (RFC 6396).
const (
	mrtTypeBGP4MPET  = 17 // BGP4MP with microsecond timestamps
	mrtSubtypeMsgAS4 = 4  // BGP4MP_MESSAGE_AS4
	mrtAFIIPv4       = 1
	// CollectorASN is the AS number stamped as the local AS in dumps
	// (12654 is the RIPE RIS routing beacon ASN).
	CollectorASN = 12654
)

// collectorAddr is the local address stamped in dumps.
var collectorAddr = netip.MustParseAddr("192.0.2.1")

// PeerAddr synthesizes the stable dump address of a peer node.
func PeerAddr(id topology.NodeID) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(uint32(id) >> 8), byte(uint32(id)), 1})
}

// peerID inverts PeerAddr.
func peerID(a netip.Addr) (topology.NodeID, bool) {
	b := a.As4()
	if b[0] != 10 || b[3] != 1 {
		return 0, false
	}
	return topology.NodeID(uint32(b[1])<<8 | uint32(b[2])), true
}

// MRTEntry is one parsed dump record.
type MRTEntry struct {
	Time   float64 // seconds (with microsecond resolution)
	PeerAS topology.ASN
	PeerIP netip.Addr
	Update *bgp.WireUpdate
}

// ErrBadMRT reports a malformed MRT stream.
var ErrBadMRT = errors.New("collector: malformed MRT")

// WriteMRT serializes the archive of prefix-filtered records (all records
// when prefix is the zero value) as an MRT dump. The topology resolves
// peer ASNs.
func (c *Collector) WriteMRT(w io.Writer, topo *topology.Topology, prefix netip.Prefix) error {
	bw := bufio.NewWriter(w)
	recs := c.archive
	if prefix.IsValid() {
		recs = c.RecordsFor(prefix)
	}
	for _, r := range recs {
		peer := topo.Node(r.Peer)
		if peer == nil {
			return fmt.Errorf("collector: record references unknown peer %d", r.Peer)
		}
		u := bgp.Update{Type: r.Type, Prefix: r.Prefix}
		if r.Type == bgp.Announce {
			u.Route = &bgp.Route{Prefix: r.Prefix, Path: r.Path}
		}
		wu, err := u.ToWire(0)
		if err != nil {
			return err
		}
		msg, err := bgp.EncodeUpdate(wu)
		if err != nil {
			return err
		}
		if err := writeMRTRecord(bw, r.Time, peer.ASN, PeerAddr(r.Peer), msg); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeMRTRecord(w io.Writer, t float64, peerAS topology.ASN, peerIP netip.Addr, msg []byte) error {
	sec := uint32(t)
	usec := uint32(math.Round((t - float64(sec)) * 1e6))
	if usec >= 1e6 {
		sec++
		usec = 0
	}
	// BGP4MP_MESSAGE_AS4 body.
	body := make([]byte, 0, 20+len(msg))
	body = binary.BigEndian.AppendUint32(body, uint32(peerAS))
	body = binary.BigEndian.AppendUint32(body, CollectorASN)
	body = binary.BigEndian.AppendUint16(body, 0) // interface index
	body = binary.BigEndian.AppendUint16(body, mrtAFIIPv4)
	p4 := peerIP.As4()
	body = append(body, p4[:]...)
	l4 := collectorAddr.As4()
	body = append(body, l4[:]...)
	body = append(body, msg...)

	hdr := make([]byte, 0, 16)
	hdr = binary.BigEndian.AppendUint32(hdr, sec)
	hdr = binary.BigEndian.AppendUint16(hdr, mrtTypeBGP4MPET)
	hdr = binary.BigEndian.AppendUint16(hdr, mrtSubtypeMsgAS4)
	// BGP4MP_ET: the length covers the microsecond field plus the body.
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(4+len(body)))
	hdr = binary.BigEndian.AppendUint32(hdr, usec)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadMRT parses an MRT dump produced by WriteMRT (or any BGP4MP_ET /
// BGP4MP_MESSAGE_AS4 IPv4 stream).
func ReadMRT(r io.Reader) ([]MRTEntry, error) {
	br := bufio.NewReader(r)
	var out []MRTEntry
	for {
		hdr := make([]byte, 12)
		if _, err := io.ReadFull(br, hdr); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("%w: truncated header: %v", ErrBadMRT, err)
		}
		sec := binary.BigEndian.Uint32(hdr)
		typ := binary.BigEndian.Uint16(hdr[4:])
		sub := binary.BigEndian.Uint16(hdr[6:])
		length := binary.BigEndian.Uint32(hdr[8:])
		if length > 1<<20 {
			return nil, fmt.Errorf("%w: record length %d", ErrBadMRT, length)
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("%w: truncated body: %v", ErrBadMRT, err)
		}
		if typ != mrtTypeBGP4MPET || sub != mrtSubtypeMsgAS4 {
			continue // skip record types we do not model
		}
		if len(body) < 4+20 {
			return nil, fmt.Errorf("%w: BGP4MP_ET body too short", ErrBadMRT)
		}
		usec := binary.BigEndian.Uint32(body)
		body = body[4:]
		peerAS := binary.BigEndian.Uint32(body)
		afi := binary.BigEndian.Uint16(body[10:])
		if afi != mrtAFIIPv4 {
			continue
		}
		peerIP := netip.AddrFrom4([4]byte(body[12:16]))
		msg := body[20:]
		wu, err := bgp.DecodeUpdate(msg)
		if err != nil {
			return nil, fmt.Errorf("%w: embedded BGP message: %v", ErrBadMRT, err)
		}
		out = append(out, MRTEntry{
			Time:   float64(sec) + float64(usec)/1e6,
			PeerAS: topology.ASN(peerAS),
			PeerIP: peerIP,
			Update: wu,
		})
	}
}

// EntriesToRecords converts parsed MRT entries back into archive records,
// resolving peers via the synthesized dump addresses. Entries whose peer
// cannot be resolved are skipped.
func EntriesToRecords(entries []MRTEntry) []Record {
	var out []Record
	for _, e := range entries {
		id, ok := peerID(e.PeerIP)
		if !ok {
			continue
		}
		for _, p := range e.Update.Withdrawn {
			out = append(out, Record{Time: e.Time, Peer: id, Prefix: p, Type: bgp.Withdraw})
		}
		for _, p := range e.Update.NLRI {
			out = append(out, Record{Time: e.Time, Peer: id, Prefix: p, Type: bgp.Announce, Path: e.Update.ASPath})
		}
	}
	return out
}
