// Package bgp implements an AS-level BGP-4 simulator: UPDATE propagation,
// per-neighbor adj-RIB-in, the standard decision process, Gao-Rexford
// import preferences and export filtering, AS-path prepending, per-neighbor
// origination policies, and MRAI-paced advertisement with unpaced
// withdrawals.
//
// The model reproduces the two convergence regimes the paper's techniques
// depend on:
//
//   - Withdrawal of a prefix with no valid alternative origin triggers BGP
//     path exploration: routers fall back to progressively longer stale
//     routes, each re-advertisement paced by the neighbor's MRAI timer, so
//     convergence takes on the order of MRAI × exploration depth (the ~100 s
//     median / minutes tail of Appendix A, after Labovitz et al.).
//   - A new announcement (or a withdrawal when valid alternative origins
//     already exist, as in anycast) propagates in a single wave limited only
//     by per-hop processing and link delay (the ~10 s of Appendix B).
//
// Speakers correspond one-to-one with topology nodes. The CDN's sites are
// distinct speakers sharing one origin ASN, exactly like PEERING sites.
package bgp

import (
	"fmt"
	"net/netip"
	"slices"

	"bestofboth/internal/netsim"
	"bestofboth/internal/obs"
	"bestofboth/internal/topology"
)

// LOCAL_PREF values implementing Gao-Rexford import preferences: prefer
// customer routes over peer routes over provider routes.
const (
	PrefCustomer = 300
	PrefPeer     = 200
	PrefProvider = 100
)

// Well-known communities (RFC 1997).
const (
	// CommunityNoExport: routes carrying it are not propagated beyond the
	// receiving AS.
	CommunityNoExport uint32 = 0xFFFFFF01
	// CommunityNoAdvertise: routes carrying it are not advertised to any
	// peer at all.
	CommunityNoAdvertise uint32 = 0xFFFFFF02
)

// Route is a BGP path for one prefix as stored in a RIB.
//
// Immutability invariant: a Route is frozen the moment it is published —
// stored into an adj-RIB slot, handed to send, or passed to any callback.
// Only the speaker code that constructs a Route may set its fields, and only
// before publishing it. Everything downstream relies on this: send shares
// the sender's adj-RIB-out pointer into the Update instead of cloning,
// receive makes a shallow struct copy (sharing Path and Communities) to hold
// its receiver-local LocalPref/learnedFrom, feeds and OnBestChange callbacks
// see live RIB pointers, AS paths are interned per Network, and snapshots
// share Route pointers copy-on-write across restored worlds. Mutating a
// published Route corrupts all of those at once — change state by building a
// new Route and swapping the pointer.
type Route struct {
	Prefix netip.Prefix
	// Path is the AS path. Path[0] is the ASN of the speaker that sent the
	// route (after its prepending); Path[len-1] is the origin ASN.
	Path []topology.ASN
	// Communities carried with the route (RFC 1997). Transitive: copied on
	// export unless a policy strips them.
	Communities []uint32
	// LocalPref is assigned by the receiver's import policy and is not
	// transmitted (eBGP semantics).
	LocalPref int
	// MED is transmitted and compared between routes from the same
	// neighbor AS.
	MED int
	// OriginNode is simulator-side bookkeeping identifying the speaker that
	// originated the route. It is carried for catchment accounting and
	// debugging and takes no part in the decision process.
	OriginNode topology.NodeID
	// learnedFrom is the receiver-local session index, or -1 if originated.
	learnedFrom int
}

// LearnedFrom returns the receiver-local session index the route was
// learned on, or -1 for locally originated routes. The index refers to the
// owning node's adjacency list.
func (r *Route) LearnedFrom() int { return r.learnedFrom }

// Clone returns a deep copy of r. The protocol hot paths no longer clone —
// published routes are immutable and shared — but Clone remains for code
// that wants a detached copy to build a modified route from.
//
//cdnlint:mutates-route the copy under construction is unpublished until returned
func (r *Route) Clone() *Route {
	c := *r
	c.Path = slices.Clone(r.Path)
	c.Communities = slices.Clone(r.Communities)
	return &c
}

// HasCommunity reports whether the route carries community c.
func (r *Route) HasCommunity(c uint32) bool {
	return slices.Contains(r.Communities, c)
}

// ContainsASN reports whether asn appears in the AS path.
func (r *Route) ContainsASN(asn topology.ASN) bool {
	return slices.Contains(r.Path, asn)
}

// sameWire reports whether two routes are identical as transmitted on the
// wire (prefix, path, MED). LocalPref is receiver-local and not compared.
func sameWire(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Prefix == b.Prefix && a.MED == b.MED && slices.Equal(a.Path, b.Path) &&
		slices.Equal(a.Communities, b.Communities)
}

// UpdateType distinguishes announcements from withdrawals.
type UpdateType int8

const (
	// Announce advertises a (new or replacement) path.
	Announce UpdateType = iota
	// Withdraw removes any previously advertised path for the prefix.
	Withdraw
)

// String returns "A" or "W", matching common BGP dump notation.
func (u UpdateType) String() string {
	if u == Withdraw {
		return "W"
	}
	return "A"
}

// Update is a single-prefix BGP UPDATE message.
type Update struct {
	Type   UpdateType
	Prefix netip.Prefix
	Route  *Route // nil for withdrawals
}

// NeighborPolicy configures origination toward one specific neighbor.
type NeighborPolicy struct {
	// Export enables advertising the originated prefix to this neighbor.
	Export bool
	// Prepend adds this many extra copies of the origin ASN for this
	// neighbor (on top of the one mandatory copy).
	Prepend int
}

// OriginPolicy configures how a speaker originates a prefix.
//
// Like Route, an OriginPolicy is immutable once passed to Originate: the
// speaker stores the pointer, exports share its Communities slice directly,
// and snapshots share the policy across restored worlds. To change a
// policy, build a new one and re-originate.
type OriginPolicy struct {
	// Prepend adds extra copies of the origin ASN on all exports.
	Prepend int
	// MED is the multi-exit discriminator attached to the announcement.
	MED int
	// Communities attached to the announcement (RFC 1997). The well-known
	// CommunityNoExport confines the route to the receiving AS.
	Communities []uint32
	// PerNeighbor overrides Prepend/export for specific neighbors. A
	// neighbor present with Export=false is excluded entirely — used by the
	// scoped variant of proactive-prepending that announces backup routes
	// only to neighbors that also connect to the primary site.
	PerNeighbor map[topology.NodeID]NeighborPolicy
}

// FeedFunc receives a timestamped copy of every best-route change at a
// speaker, emulating a route collector session (RIS/RouteViews peer).
type FeedFunc func(now netsim.Seconds, peer topology.NodeID, u Update)

// BestChangeFunc is invoked when a speaker's best route for a prefix
// changes. route is nil when the prefix became unreachable. Used by the
// data plane to maintain FIBs.
type BestChangeFunc func(node topology.NodeID, prefix netip.Prefix, route *Route)

// Config holds the timing constants of the protocol model.
type Config struct {
	// MRAI is the minimum route advertisement interval per (session,
	// prefix). RFC 4271 suggests 30 s for eBGP; withdrawals are not paced
	// (WRATE off), which is what makes path exploration slow relative to
	// announcement propagation.
	MRAI netsim.Seconds
	// MRAIJitter scales each speaker's MRAI by 1±jitter to avoid phase lock.
	MRAIJitter float64
	// ProcMin/ProcMax bound the per-update processing delay applied on
	// delivery, modeling router update processing and batching.
	ProcMin, ProcMax netsim.Seconds
	// Damping enables route-flap damping (RFC 2439) when non-nil. Off by
	// default: the paper's measurement-era collectors largely post-date
	// widespread damping deployment, and the evaluation does not assume
	// it; BenchmarkAblationDamping quantifies its effect.
	Damping *DampingConfig
	// PaceWithdrawals applies the MRAI timer to withdrawals as well as
	// advertisements. RFC 4271 exempts withdrawals, but deployed routers of
	// the era behind the measured ~100 s withdrawal convergence (Labovitz
	// et al., and this paper's Appendix A) paced all updates per peer;
	// without this, the invalidation cascade squelches path exploration in
	// seconds. The first update after a quiet period is never delayed, so
	// anycast failover (one withdrawal, pre-existing alternatives) stays
	// fast either way. Disabled in the zero value; enabled by
	// DefaultConfig.
	PaceWithdrawals bool
}

// DefaultConfig returns timing constants calibrated so that anycast
// announcement propagation lands near the paper's ~10 s median (Appendix B)
// and unicast withdrawal convergence near ~100 s median (Appendix A).
func DefaultConfig() Config {
	return Config{
		MRAI:            45,
		MRAIJitter:      0.3,
		ProcMin:         0.6,
		ProcMax:         4.5,
		PaceWithdrawals: true,
	}
}

// Network is the collection of all BGP speakers bound to a topology and a
// simulation kernel.
type Network struct {
	sim      *netsim.Sim        // the control simulator (== shards[0].sim when unsharded)
	topo     *topology.Topology //cdnlint:nosnapshot immutable wiring; restore targets a network built over the same topology
	cfg      Config             //cdnlint:nosnapshot immutable wiring; restore targets a network built with the same config
	speakers []*Speaker
	onBest   []BestChangeFunc //cdnlint:nosnapshot subscriber wiring belongs to the target network, not the captured one

	// shards hold the per-shard kernels, intern tables, payload pools, and
	// mailboxes; see shard.go. Unsharded networks have exactly one shard
	// wrapping the control simulator.
	shards []*shard
	// runner coordinates barrier rounds across shards; nil when unsharded.
	runner *netsim.ShardRunner //cdnlint:nosnapshot wiring: rebuilt with the network it drives

	// Metrics are nil until Instrument attaches a registry; every update
	// method is nil-receiver safe, so the uninstrumented hot path pays
	// only the nil checks.
	m struct {
		sent         *obs.Counter
		sentAnn      *obs.Counter
		sentWdr      *obs.Counter
		received     *obs.Counter
		dampFlaps    *obs.Counter
		dampSupp     *obs.Counter
		prefixStates *obs.Counter
		adjIn        *obs.Gauge
		xshard       *obs.Counter
		xfeed        *obs.Counter
	}
}

// New builds a Network with one speaker per topology node, running entirely
// on sim.
func New(sim *netsim.Sim, topo *topology.Topology, cfg Config) *Network {
	sh := &shard{idx: 0, sim: sim, intern: newPathIntern(), out: make([][]xmsg, 1)}
	return build(sim, topo, cfg, []*shard{sh}, nil)
}

// build wires speakers to their shards. assign maps node ID to shard index;
// nil assigns everything to shard 0.
func build(sim *netsim.Sim, topo *topology.Topology, cfg Config, shards []*shard, assign []int) *Network {
	n := &Network{sim: sim, topo: topo, cfg: cfg, shards: shards}
	n.speakers = make([]*Speaker, topo.Len())
	for _, node := range topo.Nodes {
		sh := shards[0]
		if assign != nil {
			sh = shards[assign[node.ID]]
		}
		n.speakers[node.ID] = newSpeaker(n, sh, node)
	}
	for _, sp := range n.speakers {
		sp.resolveReverse()
	}
	return n
}

// Instrument attaches protocol metrics to r: UPDATEs sent (split into
// announcements and withdrawals) and received, damping flaps and
// suppressions, per-prefix RIB state allocations, and the aggregate
// adj-RIB-in occupancy across all speakers. Instrumentation is pure
// counting — no randomness, no scheduling — so instrumented runs stay
// bit-identical to bare ones. A nil registry detaches.
func (n *Network) Instrument(r *obs.Registry) {
	n.m.sent = r.Counter("bgp_updates_sent_total")
	n.m.sentAnn = r.Counter("bgp_announcements_sent_total")
	n.m.sentWdr = r.Counter("bgp_withdrawals_sent_total")
	n.m.received = r.Counter("bgp_updates_received_total")
	n.m.dampFlaps = r.Counter("bgp_damping_flaps_total")
	n.m.dampSupp = r.Counter("bgp_damping_suppressions_total")
	n.m.prefixStates = r.Counter("bgp_prefix_states_total")
	n.m.adjIn = r.Gauge("bgp_adj_rib_in_entries")
	if len(n.shards) > 1 {
		// Inter-shard traffic volume, plus each shard kernel's own event
		// metrics (shards share the registry, so the netsim_* counters
		// aggregate across control and all shards).
		n.m.xshard = r.Counter("bgp_intershard_updates_total")
		n.m.xfeed = r.Counter("bgp_intershard_feed_updates_total")
		for _, sh := range n.shards {
			//lint:ignore cdnlint/shardsafe instrumentation attaches at construction, before any shard goroutine exists
			sh.sim.Instrument(r)
		}
		n.runner.Instrument(r)
	}
}

// MessageCount tallies UPDATE messages delivered across all speakers, for
// ablation studies. Each speaker counts its own deliveries (so shards never
// contend on a shared counter); this sums them.
func (n *Network) MessageCount() uint64 {
	var total uint64
	for _, sp := range n.speakers {
		total += sp.msgCount
	}
	return total
}

// SpeakerEventCounts returns per-speaker calendar event counts indexed by
// node ID — deliveries addressed to the speaker plus its MRAI pacing
// timers, the speaker's share of netsim.Sim.Steps. This is the observed
// work profile of one run: profile-guided partitioning feeds it back into
// PlanShardsWeighted so the next run's shards balance measured load
// instead of the static estimate.
func (n *Network) SpeakerEventCounts() []uint64 {
	counts := make([]uint64, len(n.speakers))
	for i, sp := range n.speakers {
		counts[i] = sp.evCount
	}
	return counts
}

// Sim returns the simulation kernel the network runs on.
func (n *Network) Sim() *netsim.Sim { return n.sim }

// Topology returns the underlying AS graph.
func (n *Network) Topology() *topology.Topology { return n.topo }

// Speaker returns the speaker for a node.
func (n *Network) Speaker(id topology.NodeID) *Speaker {
	if int(id) < 0 || int(id) >= len(n.speakers) {
		return nil
	}
	return n.speakers[id]
}

// OnBestChange registers a callback fired on every loc-RIB best change at
// any speaker. Registration must happen before routes start flowing.
func (n *Network) OnBestChange(fn BestChangeFunc) {
	n.onBest = append(n.onBest, fn)
}

// Originate makes node announce prefix with the given policy. Passing a nil
// policy uses defaults (no prepending, export to all neighbors).
func (n *Network) Originate(node topology.NodeID, prefix netip.Prefix, pol *OriginPolicy) error {
	sp := n.Speaker(node)
	if sp == nil {
		return fmt.Errorf("bgp: no speaker for node %d", node)
	}
	if pol == nil {
		pol = &OriginPolicy{}
	}
	sp.originate(prefix, pol)
	return nil
}

// Withdraw removes node's origination of prefix. It is a no-op if the node
// does not originate the prefix.
func (n *Network) Withdraw(node topology.NodeID, prefix netip.Prefix) {
	if sp := n.Speaker(node); sp != nil {
		sp.withdrawOrigin(prefix)
	}
}

// AttachFeed registers a route-collector session at peer: every best-route
// change the peer would export is also delivered to fn (full feed, no
// export policy), after the usual processing delay.
func (n *Network) AttachFeed(peer topology.NodeID, fn FeedFunc) error {
	sp := n.Speaker(peer)
	if sp == nil {
		return fmt.Errorf("bgp: no speaker for node %d", peer)
	}
	sp.feeds = append(sp.feeds, fn)
	return nil
}

// ConvergeSynchronously runs the simulation until no BGP events remain or
// maxVirtual seconds elapse, returning the virtual time consumed. On a
// sharded network the drain runs barrier rounds across all shards.
func (n *Network) ConvergeSynchronously(maxVirtual netsim.Seconds) netsim.Seconds {
	start := n.sim.Now()
	deadline := start + maxVirtual
	if n.runner != nil {
		n.runner.Drain(deadline)
		return n.sim.Now() - start
	}
	for n.sim.Pending() > 0 && n.sim.Now() < deadline {
		n.sim.Step()
	}
	return n.sim.Now() - start
}
