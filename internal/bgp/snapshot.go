package bgp

import (
	"fmt"
	"maps"
	"net/netip"
	"slices"

	"bestofboth/internal/netsim"
)

// NetworkSnapshot is a deep copy of all per-speaker protocol state at a
// quiescent moment: adj-RIBs-in/out, loc-RIB best routes, origination
// policies, MRAI pacing deadlines, damping penalties, and the TCP in-order
// delivery clocks. Together with a netsim.Snapshot of the kernel it is the
// complete converged-world state of the control plane.
//
// Snapshots can only be taken when no simulation events are pending (in
// flight updates hold closures that cannot be transplanted), which is
// exactly the state a fully converged network leaves behind. A snapshot is
// immutable after capture and may be restored into any number of freshly
// built networks, concurrently.
type NetworkSnapshot struct {
	messageCount uint64
	speakers     []speakerSnapshot
}

type speakerSnapshot struct {
	lastDeliver     []netsim.Seconds
	lastFeedDeliver netsim.Seconds
	downSess        []bool
	sessEpoch       []uint64
	prefixes        []prefixSnapshot
}

type prefixSnapshot struct {
	prefix      netip.Prefix
	in          []*Route
	out         []*Route
	nextAllowed []netsim.Seconds
	best        *Route
	origin      *OriginPolicy
	damp        []dampState
}

func cloneRoutes(rs []*Route) []*Route {
	out := make([]*Route, len(rs))
	for i, r := range rs {
		if r != nil {
			out[i] = r.Clone()
		}
	}
	return out
}

func cloneRoute(r *Route) *Route {
	if r == nil {
		return nil
	}
	return r.Clone()
}

func cloneOrigin(p *OriginPolicy) *OriginPolicy {
	if p == nil {
		return nil
	}
	c := *p
	c.Communities = slices.Clone(p.Communities)
	if p.PerNeighbor != nil {
		c.PerNeighbor = maps.Clone(p.PerNeighbor)
	}
	return &c
}

// Snapshot deep-copies the network's protocol state. It fails if simulation
// events are pending: snapshot only a converged network.
func (n *Network) Snapshot() (*NetworkSnapshot, error) {
	if pending := n.sim.Pending(); pending != 0 {
		return nil, fmt.Errorf("bgp: cannot snapshot with %d pending events", pending)
	}
	snap := &NetworkSnapshot{
		messageCount: n.MessageCount,
		speakers:     make([]speakerSnapshot, len(n.speakers)),
	}
	for i, sp := range n.speakers {
		ss := speakerSnapshot{
			lastDeliver:     slices.Clone(sp.lastDeliver),
			lastFeedDeliver: sp.lastFeedDeliver,
			downSess:        slices.Clone(sp.downSess),
			sessEpoch:       slices.Clone(sp.sessEpoch),
			prefixes:        make([]prefixSnapshot, 0, len(sp.prefixes)),
		}
		for _, p := range sp.KnownPrefixes() { // sorted: deterministic restore order
			st := sp.prefixes[p]
			ss.prefixes = append(ss.prefixes, prefixSnapshot{
				prefix:      p,
				in:          cloneRoutes(st.in),
				out:         cloneRoutes(st.out),
				nextAllowed: slices.Clone(st.nextAllowed),
				best:        cloneRoute(st.best),
				origin:      cloneOrigin(st.origin),
				damp:        slices.Clone(st.damp),
			})
		}
		snap.speakers[i] = ss
	}
	return snap, nil
}

// Restore installs a snapshot into a freshly built network over an
// identically shaped topology (same node count and adjacency layout, e.g.
// regenerated from the same GenConfig). All routes and policies are
// deep-copied out of the snapshot, so concurrent restores from one snapshot
// are safe and restored networks never share mutable state.
//
// Loc-RIB best routes are replayed to OnBestChange subscribers (rebuilding
// data-plane FIBs) but NOT to collector feeds: feed deliveries are
// simulation events, and the archive a collector accumulated up to the
// snapshot point is restored separately.
func (n *Network) Restore(snap *NetworkSnapshot) error {
	if pending := n.sim.Pending(); pending != 0 {
		return fmt.Errorf("bgp: cannot restore with %d pending events", pending)
	}
	if len(snap.speakers) != len(n.speakers) {
		return fmt.Errorf("bgp: snapshot has %d speakers, network has %d", len(snap.speakers), len(n.speakers))
	}
	for i, sp := range n.speakers {
		if len(sp.prefixes) != 0 {
			return fmt.Errorf("bgp: speaker %d already has prefix state; restore requires a fresh network", i)
		}
		if len(snap.speakers[i].lastDeliver) != len(sp.node.Adj) {
			return fmt.Errorf("bgp: speaker %d adjacency count mismatch", i)
		}
	}
	n.MessageCount = snap.messageCount
	for i, ss := range snap.speakers {
		sp := n.speakers[i]
		copy(sp.lastDeliver, ss.lastDeliver)
		sp.lastFeedDeliver = ss.lastFeedDeliver
		copy(sp.downSess, ss.downSess)
		copy(sp.sessEpoch, ss.sessEpoch)
		for _, ps := range ss.prefixes {
			st := &prefixState{
				prefix:      ps.prefix,
				in:          cloneRoutes(ps.in),
				out:         cloneRoutes(ps.out),
				nextAllowed: slices.Clone(ps.nextAllowed),
				pending:     make([]bool, len(ps.in)),
				best:        cloneRoute(ps.best),
				origin:      cloneOrigin(ps.origin),
				damp:        slices.Clone(ps.damp),
			}
			sp.prefixes[ps.prefix] = st
			if st.best != nil {
				for _, fn := range n.onBest {
					fn(sp.node.ID, ps.prefix, st.best)
				}
			}
		}
	}
	return nil
}
