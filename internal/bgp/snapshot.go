package bgp

import (
	"fmt"
	"net/netip"
	"slices"

	"bestofboth/internal/netsim"
)

// NetworkSnapshot is a copy-on-write capture of all per-speaker protocol
// state at a quiescent moment: adj-RIBs-in/out, loc-RIB best routes,
// origination policies, MRAI pacing deadlines, damping penalties, and the
// TCP in-order delivery clocks. Together with a netsim.Snapshot of the
// kernel it is the complete converged-world state of the control plane.
//
// Routes and origin policies are immutable after publish (see the Route
// doc), so the snapshot shares their pointers with the live network instead
// of deep-copying: only the pointer slices and the mutable value slices
// (pacing deadlines, damping state) are cloned. Restored worlds likewise
// share the snapshot's routes and allocate only when a speaker actually
// diverges after a fault — a diverging speaker builds new Routes and swaps
// pointers, never touching the shared ones.
//
// Snapshots can only be taken when no simulation events are pending (in
// flight updates hold state that cannot be transplanted), which is exactly
// the state a fully converged network leaves behind. A snapshot is immutable
// after capture and may be restored into any number of freshly built
// networks, concurrently: restores only read the shared routes.
type NetworkSnapshot struct {
	// kernels capture each shard simulator's clock, sequence counter, and
	// RNG position (one entry per shard; the unsharded single shard wraps
	// the control simulator, whose kernel the world snapshot also carries —
	// restoring it twice is idempotent).
	kernels  []netsim.Snapshot
	speakers []speakerSnapshot
}

type speakerSnapshot struct {
	msgCount        uint64
	evCount         uint64
	lastDeliver     []netsim.Seconds
	lastFeedDeliver netsim.Seconds
	downSess        []bool
	sessEpoch       []uint64
	prefixes        []prefixSnapshot
}

type prefixSnapshot struct {
	prefix      netip.Prefix
	in          []*Route
	out         []*Route
	nextAllowed []netsim.Seconds
	best        *Route
	origin      *OriginPolicy
	damp        []dampState
}

// Snapshot captures the network's protocol state copy-on-write. It fails if
// simulation events are pending: snapshot only a converged network.
func (n *Network) Snapshot() (*NetworkSnapshot, error) {
	if pending := n.sim.Pending(); pending != 0 {
		return nil, fmt.Errorf("bgp: cannot snapshot with %d pending events", pending)
	}
	snap := &NetworkSnapshot{
		kernels:  make([]netsim.Snapshot, len(n.shards)),
		speakers: make([]speakerSnapshot, len(n.speakers)),
	}
	for i, sh := range n.shards {
		ks, err := sh.sim.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("bgp: shard %d kernel: %w", i, err)
		}
		snap.kernels[i] = ks
	}
	for i, sp := range n.speakers {
		ss := speakerSnapshot{
			msgCount:        sp.msgCount,
			evCount:         sp.evCount,
			lastDeliver:     slices.Clone(sp.lastDeliver),
			lastFeedDeliver: sp.lastFeedDeliver,
			downSess:        slices.Clone(sp.downSess),
			sessEpoch:       slices.Clone(sp.sessEpoch),
			prefixes:        make([]prefixSnapshot, 0, len(sp.prefixes)),
		}
		for _, p := range sp.KnownPrefixes() { // sorted: deterministic restore order
			st := sp.prefixes[p]
			// Route and OriginPolicy pointers are shared, not cloned: both
			// are immutable once published. The live network moves on by
			// swapping pointers in its own (cloned-here) slices.
			ss.prefixes = append(ss.prefixes, prefixSnapshot{
				prefix:      p,
				in:          slices.Clone(st.in),
				out:         slices.Clone(st.out),
				nextAllowed: slices.Clone(st.nextAllowed),
				best:        st.best,
				origin:      st.origin,
				damp:        slices.Clone(st.damp),
			})
		}
		snap.speakers[i] = ss
	}
	return snap, nil
}

// Restore installs a snapshot into a freshly built network over an
// identically shaped topology (same node count and adjacency layout, e.g.
// regenerated from the same GenConfig). The restored network shares the
// snapshot's immutable routes and policies copy-on-write: a no-divergence
// restore allocates only per-prefix bookkeeping (pointer-slice headers and
// pacing arrays), never route contents, and post-restore state changes swap
// pointers without ever writing through shared ones. Concurrent restores
// from one snapshot are safe.
//
// The snapshot's adj-RIB-out paths are seeded into the network's AS-path
// intern table, so exports computed after the restore resolve to the exact
// shared slices and unchanged routes are recognized by pointer equality.
//
// Loc-RIB best routes are replayed to OnBestChange subscribers (rebuilding
// data-plane FIBs) but NOT to collector feeds: feed deliveries are
// simulation events, and the archive a collector accumulated up to the
// snapshot point is restored separately.
func (n *Network) Restore(snap *NetworkSnapshot) error {
	if pending := n.sim.Pending(); pending != 0 {
		return fmt.Errorf("bgp: cannot restore with %d pending events", pending)
	}
	if len(snap.speakers) != len(n.speakers) {
		return fmt.Errorf("bgp: snapshot has %d speakers, network has %d", len(snap.speakers), len(n.speakers))
	}
	for i, sp := range n.speakers {
		if len(sp.prefixes) != 0 {
			return fmt.Errorf("bgp: speaker %d already has prefix state; restore requires a fresh network", i)
		}
		if len(snap.speakers[i].lastDeliver) != len(sp.node.Adj) {
			return fmt.Errorf("bgp: speaker %d adjacency count mismatch", i)
		}
	}
	if len(snap.kernels) != len(n.shards) {
		return fmt.Errorf("bgp: snapshot has %d shard kernels, network has %d shards", len(snap.kernels), len(n.shards))
	}
	for i, sh := range n.shards {
		if err := sh.sim.Restore(snap.kernels[i]); err != nil {
			return fmt.Errorf("bgp: shard %d kernel: %w", i, err)
		}
	}
	for i, ss := range snap.speakers {
		sp := n.speakers[i]
		sp.msgCount = ss.msgCount
		sp.evCount = ss.evCount
		copy(sp.lastDeliver, ss.lastDeliver)
		sp.lastFeedDeliver = ss.lastFeedDeliver
		copy(sp.downSess, ss.downSess)
		copy(sp.sessEpoch, ss.sessEpoch)
		// Carve this speaker's per-prefix RIB slots out of three backing
		// arrays (one per element type) instead of allocating per prefix:
		// restores dominate the experiment runner's allocation profile, and
		// every prefix needs exactly len(Adj) slots per slice.
		nAdj := len(sp.node.Adj)
		routeBacking := make([]*Route, 2*nAdj*len(ss.prefixes))
		timeBacking := make([]netsim.Seconds, nAdj*len(ss.prefixes))
		pendBacking := make([]bool, nAdj*len(ss.prefixes))
		for k, ps := range ss.prefixes {
			rib := routeBacking[2*nAdj*k : 2*nAdj*(k+1) : 2*nAdj*(k+1)]
			st := &prefixState{
				prefix:      ps.prefix,
				in:          rib[:nAdj:nAdj],
				out:         rib[nAdj:],
				nextAllowed: timeBacking[nAdj*k : nAdj*(k+1) : nAdj*(k+1)],
				pending:     pendBacking[nAdj*k : nAdj*(k+1) : nAdj*(k+1)],
				best:        ps.best,
				origin:      ps.origin,
				damp:        slices.Clone(ps.damp),
			}
			copy(st.in, ps.in)
			copy(st.out, ps.out)
			copy(st.nextAllowed, ps.nextAllowed)
			if ps.origin != nil {
				// The origin route's maximal LocalPref means it is the best
				// route whenever an origination exists, so the snapshot's
				// best IS the origin loc-RIB entry; rebuild defensively if a
				// snapshot ever violates that.
				if ps.best != nil && ps.best.learnedFrom == -1 {
					st.originRoute = ps.best
				} else {
					st.originRoute = &Route{
						Prefix:      ps.prefix,
						LocalPref:   1 << 20,
						MED:         ps.origin.MED,
						OriginNode:  sp.node.ID,
						learnedFrom: -1,
					}
				}
			}
			sp.prefixes[ps.prefix] = st
			sp.sortedDirty = true
			for _, r := range st.out {
				if r != nil {
					sp.sh.intern.seed(r.Path)
				}
			}
			if st.best != nil {
				for _, fn := range n.onBest {
					fn(sp.node.ID, ps.prefix, st.best)
				}
			}
		}
	}
	return nil
}
