package bgp

import (
	"math"
	"math/rand"

	"bestofboth/internal/topology"
)

// Cost-model-driven shard partitioning.
//
// PlanShards originally cut the BFS node order into equal-COUNT spans.
// Event load per speaker is nowhere near uniform: a transit hub with
// hundreds of sessions processes orders of magnitude more deliveries and
// MRAI timers than a stub, so equal-count spans leave a ~1.4x max/mean
// event imbalance at 8 shards — and under phase-barrier rounds the slowest
// shard gates every round, capping parallel speedup well below N.
//
// The partitioner here keeps the BFS layout (locality keeps cut edges few)
// but balances WORK, not node count:
//
//  1. weigh each speaker with a static cost model (degree-proportional,
//     with an origination fan-out bonus for CDN site nodes and their
//     first-hop providers), or with measured per-speaker event counts when
//     the caller supplies a profile (see PlanShardsWeighted);
//  2. cut the BFS order into weighted-balanced spans;
//  3. run a bounded deterministic KL/FM-style refinement: single-node
//     moves across shard boundaries that first reduce the max shard
//     weight, then reduce the delay-weighted cut size without breaking
//     balance. Cutting a low-delay edge shrinks the barrier lookahead
//     window (see lookahead), so cut costs are delay-weighted: the cheaper
//     the edge's latency, the more expensive it is to cut.
//
// Every step is a pure function of (topology, n, seed, weights): iteration
// is in node-ID/shard-index order and exact ties break on a seeded hash,
// so equal inputs always yield the same assignment.

const (
	// degreeScale scales the sqrt-degree term of the static cost model (see
	// StaticSpeakerWeights); only its ratio to the +1 floor matters.
	degreeScale = 8.0
	// hypergiantScale damps hypergiant weights: valley-free export policy
	// makes them route sinks, so their enormous session fan-in translates
	// into very little churn (measured ~0.12 events/session at paper scale
	// versus ~2.4–13.6 for every other class).
	hypergiantScale = 0.15
	// relayBonus is the flat extra weight of a CDN site's first-hop
	// neighbors, which relay every origination and failover wave into the
	// core.
	relayBonus = 4.0
	// balanceSlack bounds how far above the ideal mean a shard's weight may
	// grow during cut refinement: moves may trade balance for cut size only
	// within this factor. Kept tight — the slowest shard gates every barrier
	// round, so predicted imbalance conceded here is lost speedup, and the
	// cost model's residual error stacks on top of it.
	balanceSlack = 1.03
	// balanceMovesPerShard bounds the balance phase: at most this many
	// single-node moves per shard. Balance converges in far fewer moves on
	// real topologies; the cap keeps the worst case O(moves * nodes).
	balanceMovesPerShard = 64
	// cutPasses bounds the cut-reduction phase to this many full sweeps
	// over the nodes in ID order.
	cutPasses = 2
	// cutDelayPenalty scales how much more expensive the minimum-delay edge
	// is to cut than the maximum-delay edge. Penalizing low-delay cut edges
	// keeps the lookahead window — min cut-edge delay + ProcMin — wide, so
	// barrier rounds stay coarse.
	cutDelayPenalty = 3.0
)

// StaticSpeakerWeights estimates per-speaker work from topology alone. The
// estimate only needs to be proportionally right — PlanShardsWeighted
// balances ratios, not absolute costs.
//
// The model is w = 1 + degreeScale·√degree, not linear in degree:
// valley-free export policy makes per-speaker event counts strongly
// sublinear in session count. Measured against the paper-scale reference
// converge, events-per-√session is nearly constant (~12–23) across every
// class except hypergiants (route sinks, damped by hypergiantScale), while
// events-per-session spans two orders of magnitude. CDN site nodes'
// first-hop neighbors get a flat relay bonus: every origination and
// failover wave funnels through them.
func StaticSpeakerWeights(topo *topology.Topology) []float64 {
	w := make([]float64, topo.Len())
	for _, n := range topo.Nodes {
		scale := degreeScale
		if n.Class == topology.ClassHypergiant {
			scale = hypergiantScale
		}
		w[n.ID] = 1 + scale*math.Sqrt(float64(len(n.Adj)))
	}
	for _, n := range topo.Nodes {
		if n.Class == topology.ClassCDN {
			for _, adj := range n.Adj {
				w[adj.To] += relayBonus
			}
		}
	}
	return w
}

// PlanShards deterministically partitions the topology's speakers into n
// shards under the static cost model: BFS layout from a seeded start node,
// weighted-balanced span cut, bounded refinement (see the package comment
// above). Equal (topo, n, seed) always yields the same assignment.
func PlanShards(topo *topology.Topology, n int, seed int64) []int {
	return PlanShardsWeighted(topo, n, seed, nil)
}

// PlanShardsWeighted is PlanShards with an explicit per-speaker work
// profile, indexed by node ID — typically measured event counts from a
// warm-up converge (profile-guided partitioning). A nil or mis-sized
// profile falls back to the static cost model; non-finite or non-positive
// entries clamp to 1 so a partially idle profile can never zero out a
// span. The assignment is a pure function of (topo, n, seed, weights).
func PlanShardsWeighted(topo *topology.Topology, n int, seed int64, weights []float64) []int {
	assign := make([]int, topo.Len())
	if n <= 1 || topo.Len() == 0 {
		return assign
	}
	w := sanitizeWeights(topo, weights)
	order := bfsOrder(topo, seed)
	if len(order) <= n {
		// Fewer nodes than shards: one node per shard, trailing shards stay
		// empty. Refinement has nothing to balance.
		for i, id := range order {
			assign[id] = i
		}
		return assign
	}
	cutSpans(order, w, n, assign)
	refine(topo, w, assign, n, seed)
	return assign
}

// bfsOrder lays the nodes out breadth-first from a seeded start node,
// restarting from the lowest unvisited ID for each disconnected component.
func bfsOrder(topo *topology.Topology, seed int64) []topology.NodeID {
	order := make([]topology.NodeID, 0, topo.Len())
	visited := make([]bool, topo.Len())
	queue := make([]topology.NodeID, 0, topo.Len())
	rng := rand.New(rand.NewSource(seed))
	start := topology.NodeID(rng.Intn(topo.Len()))
	for len(order) < topo.Len() {
		if !visited[start] {
			visited[start] = true
			queue = append(queue, start)
		}
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			order = append(order, id)
			for _, adj := range topo.Node(id).Adj {
				if !visited[adj.To] {
					visited[adj.To] = true
					queue = append(queue, adj.To)
				}
			}
		}
		// Disconnected remainder: restart from the lowest unvisited ID.
		for i := range visited {
			if !visited[i] {
				start = topology.NodeID(i)
				break
			}
		}
	}
	return order
}

// sanitizeWeights returns a defensive per-node weight vector: the static
// model when weights is nil or mis-sized, and every entry clamped to at
// least 1 (a zero-weight span would let the cut collapse shards).
func sanitizeWeights(topo *topology.Topology, weights []float64) []float64 {
	if weights == nil || len(weights) != topo.Len() {
		return StaticSpeakerWeights(topo)
	}
	w := make([]float64, len(weights))
	for i, v := range weights {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 1 {
			v = 1
		}
		w[i] = v
	}
	return w
}

// cutSpans cuts the BFS order into n contiguous spans of near-equal total
// weight: shard k closes once its cumulative weight reaches k+1 ideal
// shares, or once only enough nodes remain to give each later shard one.
func cutSpans(order []topology.NodeID, w []float64, n int, assign []int) {
	var total float64
	for _, id := range order {
		total += w[id]
	}
	k := 0
	var cum float64
	for i, id := range order {
		assign[id] = k
		cum += w[id]
		if k < n-1 {
			remNodes := len(order) - i - 1
			remShards := n - 1 - k
			if remNodes <= remShards || cum >= total*float64(k+1)/float64(n) {
				k++
			}
		}
	}
}

// refine runs the bounded deterministic improvement phases over an initial
// assignment: balance (shrink the heaviest shard), cut reduction (shrink
// the delay-weighted cut without breaking balance), then a final balance
// pass to claw back the slack the cut phase was allowed to spend.
func refine(topo *topology.Topology, w []float64, assign []int, n int, seed int64) {
	r := newRefiner(topo, w, assign, n, seed)
	r.balance()
	r.reduceCut()
	r.balance()
}

// refiner carries the incremental state of the refinement phases.
type refiner struct {
	topo   *topology.Topology
	w      []float64
	assign []int
	n      int
	seed   int64
	shardW []float64 // total weight per shard
	shardN []int     // node count per shard
	total  float64

	// Delay normalization for cut costs, over every edge in the topology.
	dMin, dMax float64
}

func newRefiner(topo *topology.Topology, w []float64, assign []int, n int, seed int64) *refiner {
	r := &refiner{
		topo: topo, w: w, assign: assign, n: n, seed: seed,
		shardW: make([]float64, n), shardN: make([]int, n),
		dMin: math.Inf(1), dMax: math.Inf(-1),
	}
	for _, node := range topo.Nodes {
		r.shardW[assign[node.ID]] += w[node.ID]
		r.shardN[assign[node.ID]]++
		r.total += w[node.ID]
		for _, adj := range node.Adj {
			if adj.Delay < r.dMin {
				r.dMin = adj.Delay
			}
			if adj.Delay > r.dMax {
				r.dMax = adj.Delay
			}
		}
	}
	return r
}

// edgeCost is the price of having an edge of the given delay in the cut:
// 1 for the slowest edge in the topology, 1+cutDelayPenalty for the
// fastest. Low-delay cut edges narrow the lookahead window, so they cost
// more.
func (r *refiner) edgeCost(delay float64) float64 {
	if r.dMax <= r.dMin {
		return 1
	}
	return 1 + cutDelayPenalty*(r.dMax-delay)/(r.dMax-r.dMin)
}

// cutDelta is the change in delay-weighted cut size if node v moves from
// its shard to shard d: edges into the old shard join the cut, edges into
// d leave it, edges into third shards are cut either way.
func (r *refiner) cutDelta(v topology.NodeID, d int) float64 {
	from := r.assign[v]
	var delta float64
	for _, adj := range r.topo.Node(v).Adj {
		switch r.assign[adj.To] {
		case from:
			delta += r.edgeCost(adj.Delay)
		case d:
			delta -= r.edgeCost(adj.Delay)
		}
	}
	return delta
}

func (r *refiner) move(v topology.NodeID, d int) {
	from := r.assign[v]
	r.assign[v] = d
	r.shardW[from] -= r.w[v]
	r.shardW[d] += r.w[v]
	r.shardN[from]--
	r.shardN[d]++
}

// tiebreak is a seeded deterministic hash used to order otherwise-equal
// candidate moves (splitmix64 finalizer over seed XOR node ID).
func tiebreak(seed int64, v topology.NodeID) uint64 {
	x := uint64(seed) ^ (uint64(v) + 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// balance repeatedly moves one boundary node out of the heaviest shard
// into an adjacent shard, as long as the move strictly shrinks the pair's
// max weight (so the sorted shard-weight vector strictly decreases and the
// loop terminates). Candidates are scanned in node-ID order; ties prefer
// the smaller cut increase, then the seeded hash.
func (r *refiner) balance() {
	maxMoves := balanceMovesPerShard * r.n
	for m := 0; m < maxMoves; m++ {
		h := 0
		for s := 1; s < r.n; s++ {
			if r.shardW[s] > r.shardW[h] {
				h = s
			}
		}
		if r.shardN[h] <= 1 {
			return // nothing movable out of a single-node heaviest shard
		}
		var (
			bestV    topology.NodeID
			bestD    int
			bestGain float64
			bestCut  float64
			found    bool
		)
		for _, node := range r.topo.Nodes {
			v := node.ID
			if r.assign[v] != h {
				continue
			}
			for _, d := range r.neighborShards(v) {
				newMax := math.Max(r.shardW[h]-r.w[v], r.shardW[d]+r.w[v])
				gain := r.shardW[h] - newMax
				if gain <= 0 {
					continue
				}
				cut := r.cutDelta(v, d)
				better := gain > bestGain ||
					(gain == bestGain && cut < bestCut) ||
					(gain == bestGain && cut == bestCut && found &&
						tiebreak(r.seed, v) < tiebreak(r.seed, bestV))
				if !found || better {
					bestV, bestD, bestGain, bestCut, found = v, d, gain, cut, true
				}
			}
		}
		if !found {
			return
		}
		r.move(bestV, bestD)
	}
}

// reduceCut sweeps the nodes in ID order a bounded number of times,
// greedily applying any move that shrinks the delay-weighted cut, keeps
// the destination shard within balanceSlack of the ideal mean, and never
// empties a shard.
func (r *refiner) reduceCut() {
	maxW := balanceSlack * r.total / float64(r.n)
	for pass := 0; pass < cutPasses; pass++ {
		improved := false
		for _, node := range r.topo.Nodes {
			v := node.ID
			from := r.assign[v]
			if r.shardN[from] <= 1 {
				continue
			}
			bestD, bestCut := -1, 0.0
			for _, d := range r.neighborShards(v) {
				if r.shardW[d]+r.w[v] > maxW {
					continue
				}
				if cut := r.cutDelta(v, d); cut < bestCut {
					bestD, bestCut = d, cut
				}
			}
			if bestD >= 0 {
				r.move(v, bestD)
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}

// neighborShards lists the distinct shards (other than v's own) that v has
// a session into, in ascending shard order. Moves are only ever to
// adjacent shards: moving elsewhere could not reduce the cut and would
// strand v without local sessions.
func (r *refiner) neighborShards(v topology.NodeID) []int {
	var out []int
	from := r.assign[v]
	for _, adj := range r.topo.Node(v).Adj {
		d := r.assign[adj.To]
		if d == from {
			continue
		}
		dup := false
		for _, e := range out {
			if e == d {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, d)
		}
	}
	// Insertion sort: the list is tiny (bounded by v's degree).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
