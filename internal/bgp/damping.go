package bgp

import (
	"math"

	"bestofboth/internal/netsim"
)

// DampingConfig enables route-flap damping (RFC 2439): a per-(prefix,
// session) penalty accrues on each flap and decays exponentially; routes
// whose penalty exceeds the suppress threshold are withheld from the
// decision process until the penalty decays below the reuse threshold.
//
// Damping is how deployed networks protect themselves from churn, and it
// interacts with the paper's techniques: reactive announcements arriving
// during the withdrawal churn of a failure can be penalized at routers
// that already saw the prefix flap, lengthening failover tails (one
// candidate explanation for the combined technique's poor tail, §4).
type DampingConfig struct {
	// Penalty added per flap (default 1000).
	Penalty float64
	// SuppressAt is the cutoff penalty above which a route is suppressed
	// (default 2000).
	SuppressAt float64
	// ReuseAt is the penalty below which a suppressed route is restored
	// (default 750).
	ReuseAt float64
	// HalfLife of the exponential decay in seconds (default 900).
	HalfLife netsim.Seconds
}

// DefaultDamping returns RFC 2439's example parameters.
func DefaultDamping() *DampingConfig {
	return &DampingConfig{Penalty: 1000, SuppressAt: 2000, ReuseAt: 750, HalfLife: 900}
}

func (d *DampingConfig) fill() {
	if d.Penalty == 0 {
		d.Penalty = 1000
	}
	if d.SuppressAt == 0 {
		d.SuppressAt = 2000
	}
	if d.ReuseAt == 0 {
		d.ReuseAt = 750
	}
	if d.HalfLife == 0 {
		d.HalfLife = 900
	}
}

// dampState tracks the flap penalty of one (prefix, session).
type dampState struct {
	penalty    float64
	lastUpdate netsim.Seconds
	suppressed bool
}

// decayTo brings the penalty forward to time now.
func (d *dampState) decayTo(now netsim.Seconds, halfLife float64) {
	if d.penalty > 0 && now > d.lastUpdate {
		d.penalty *= math.Exp2(-(now - d.lastUpdate) / halfLife)
		if d.penalty < 1 {
			d.penalty = 0
		}
	}
	d.lastUpdate = now
}

// flap records one flap at time now and returns whether the route is now
// suppressed.
func (s *Speaker) flap(p *prefixState, sess int, cfg *DampingConfig) bool {
	if p.damp == nil {
		p.damp = make([]dampState, len(s.node.Adj))
	}
	d := &p.damp[sess]
	now := s.sh.sim.Now()
	d.decayTo(now, cfg.HalfLife)
	d.penalty += cfg.Penalty
	s.net.m.dampFlaps.Inc()
	if !d.suppressed && d.penalty >= cfg.SuppressAt {
		d.suppressed = true
		s.net.m.dampSupp.Inc()
		s.scheduleReuse(p, sess, cfg)
	}
	return d.suppressed
}

// suppressed reports whether the session's route for this prefix is
// currently withheld, unsuppressing lazily when the penalty has decayed.
func (s *Speaker) dampSuppressed(p *prefixState, sess int, cfg *DampingConfig) bool {
	if cfg == nil || p.damp == nil {
		return false
	}
	d := &p.damp[sess]
	if !d.suppressed {
		return false
	}
	d.decayTo(s.sh.sim.Now(), cfg.HalfLife)
	if d.penalty <= cfg.ReuseAt {
		d.suppressed = false
	}
	return d.suppressed
}

// scheduleReuse arranges a recompute when the penalty will have decayed to
// the reuse threshold.
func (s *Speaker) scheduleReuse(p *prefixState, sess int, cfg *DampingConfig) {
	d := &p.damp[sess]
	if d.penalty <= cfg.ReuseAt {
		return
	}
	wait := cfg.HalfLife * math.Log2(d.penalty/cfg.ReuseAt)
	prefix := p.prefix
	s.sh.sim.After(wait+0.001, func() {
		if !s.dampSuppressed(p, sess, cfg) {
			// The route re-enters the decision process.
			s.recompute(prefix, p)
			s.exportAll(prefix, p)
		} else if p.damp[sess].suppressed {
			s.scheduleReuse(p, sess, cfg)
		}
	})
}
