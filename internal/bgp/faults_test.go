package bgp

import (
	"testing"

	"bestofboth/internal/netsim"
)

// convergedDiamond builds the diamond topology with O originating the test
// prefix and runs to convergence.
func convergedDiamond(t *testing.T) (*netsim.Sim, *Network) {
	t.Helper()
	topo := diamond(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	if err := net.Originate(3, testPrefix, nil); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	return sim, net
}

func TestLinkDownWithdrawsRoutesLearnedOverLink(t *testing.T) {
	sim, net := convergedDiamond(t)
	// T initially prefers its customer route via C (lowest neighbor ASN).
	if p := net.Speaker(0).Best(testPrefix).Path; len(p) != 2 || p[0] != 20 {
		t.Fatalf("T best path = %v, want via C [20 40]", p)
	}

	// Fail the O—C link: C loses its direct customer route; everything
	// must re-select paths avoiding the link.
	if err := net.SetLinkDown(3, 1); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if down, _ := net.LinkIsDown(3, 1); !down {
		t.Fatal("link O-C not reported down")
	}
	// T re-selects the customer route via D.
	p := net.Speaker(0).Best(testPrefix).Path
	if len(p) != 2 || p[0] != 30 || p[1] != 40 {
		t.Fatalf("after link down, T path = %v, want [30 40]", p)
	}
	// C still reaches the prefix — via its peer D (O is its customer's
	// prefix, learned from D's announcement O -> D -> peer C).
	cBest := net.Speaker(1).Best(testPrefix)
	if cBest == nil {
		t.Fatal("C lost all routes after O-C link failure")
	}
	if cBest.Path[0] == 40 && len(cBest.Path) == 1 {
		t.Fatalf("C still uses the failed direct link: path %v", cBest.Path)
	}
	// O must not retain any adj-RIB-in/out state on the dead session.
	for sess, r := range net.Speaker(3).AdjIn(testPrefix) {
		if r != nil && net.Speaker(3).Node().Adj[sess].To == 1 {
			t.Fatal("O retains adj-RIB-in from C over a down link")
		}
	}
}

func TestLinkRestoreReconvergesToPreFaultState(t *testing.T) {
	sim, net := convergedDiamond(t)
	before := net.RouteStateDigest()

	if err := net.SetLinkDown(3, 1); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if net.RouteStateDigest() == before {
		t.Fatal("link failure left routing state unchanged")
	}
	if err := net.SetLinkUp(3, 1); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if got := net.RouteStateDigest(); got != before {
		t.Errorf("state after link restore differs from pre-fault state:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
}

func TestSessionResetReconvergesToSameState(t *testing.T) {
	sim, net := convergedDiamond(t)
	before := net.RouteStateDigest()
	msgs := net.MessageCount()

	if err := net.ResetSession(3, 1); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if net.MessageCount() == msgs {
		t.Fatal("session reset produced no update churn")
	}
	if got := net.RouteStateDigest(); got != before {
		t.Errorf("state after session reset differs:\n--- before ---\n%s--- after ---\n%s", before, got)
	}
}

func TestLinkFaultsAreIdempotentAndValidated(t *testing.T) {
	sim, net := convergedDiamond(t)
	if err := net.SetLinkDown(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkDown(3, 1); err != nil {
		t.Fatalf("second SetLinkDown: %v", err)
	}
	// Resetting a down session is an error; restoring twice is not.
	if err := net.ResetSession(3, 1); err == nil {
		t.Fatal("ResetSession on a down link should fail")
	}
	if err := net.SetLinkUp(3, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkUp(3, 1); err != nil {
		t.Fatalf("second SetLinkUp: %v", err)
	}
	sim.Run()
	// Nonexistent links are rejected.
	if err := net.SetLinkDown(0, 3); err == nil {
		t.Fatal("SetLinkDown on nonexistent T-O link should fail")
	}
}

func TestInFlightUpdatesDroppedOnLinkFailure(t *testing.T) {
	topo := diamond(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	if err := net.Originate(3, testPrefix, nil); err != nil {
		t.Fatal(err)
	}
	// O's announcements toward C and D are now in flight. Kill the O—C
	// link before they deliver: the O->C update must be dropped, so C can
	// only learn the prefix via D.
	if err := net.SetLinkDown(3, 1); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	for sess, r := range net.Speaker(1).AdjIn(testPrefix) {
		if r != nil && net.Speaker(1).Node().Adj[sess].To == 3 {
			t.Fatal("C received an update over a link that failed while it was in flight")
		}
	}
	best := net.Speaker(1).Best(testPrefix)
	if best == nil {
		t.Fatal("C has no route at all")
	}
	if len(best.Path) == 1 {
		t.Fatalf("C best %v can only exist via the dead link", best.Path)
	}
}

func TestSnapshotCarriesSessionState(t *testing.T) {
	sim, net := convergedDiamond(t)
	if err := net.SetLinkDown(3, 1); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	digest := net.RouteStateDigest()

	snap, err := net.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sim2 := netsim.New(1)
	net2 := New(sim2, diamond(t), quickCfg())
	if err := net2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if down, _ := net2.LinkIsDown(3, 1); !down {
		t.Fatal("restored network lost the link-down flag")
	}
	if got := net2.RouteStateDigest(); got != digest {
		t.Errorf("restored digest differs:\n--- want ---\n%s--- got ---\n%s", digest, got)
	}
	// The restored world must behave like the original: restoring the link
	// re-converges to a state where T prefers C again.
	if err := net2.SetLinkUp(3, 1); err != nil {
		t.Fatal(err)
	}
	sim2.Run()
	if p := net2.Speaker(0).Best(testPrefix).Path; len(p) != 2 || p[0] != 20 {
		t.Fatalf("restored+healed T path = %v, want [20 40]", p)
	}
}
