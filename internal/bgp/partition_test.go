package bgp

import (
	"math"
	"testing"

	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// ringTopo builds a connected ring of n stub nodes with uniform link delay.
func ringTopo(t *testing.T, n int, delay float64) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	ids := make([]topology.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.AddNode(topology.ASN(100+i), nodeName(i), topology.ClassStub, topology.Point{})
	}
	for i := 0; i < n; i++ {
		b.Link(ids[i], ids[(i+1)%n], topology.RelPeer, delay)
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func nodeName(i int) string {
	return string([]byte{'n', byte('0' + i/10), byte('0' + i%10)})
}

// cutLinks disconnects a built topology in place by clearing the given
// nodes' adjacency lists and every reverse edge pointing at them. Builder
// validation (correctly) rejects disconnected graphs, but PlanShards must
// still partition one: fault studies tear topologies apart at runtime.
func cutLinks(topo *topology.Topology, isolate ...topology.NodeID) {
	iso := map[topology.NodeID]bool{}
	for _, id := range isolate {
		iso[id] = true
		topo.Node(id).Adj = nil
	}
	for _, n := range topo.Nodes {
		if iso[n.ID] {
			continue
		}
		kept := n.Adj[:0]
		for _, adj := range n.Adj {
			if !iso[adj.To] {
				kept = append(kept, adj)
			}
		}
		n.Adj = kept
	}
}

func shardStats(assign []int, n int) (counts []int, populated int) {
	counts = make([]int, n)
	for _, s := range assign {
		counts[s]++
	}
	for _, c := range counts {
		if c > 0 {
			populated++
		}
	}
	return counts, populated
}

func TestPlanShardsDisconnected(t *testing.T) {
	topo := ringTopo(t, 12, 0.01)
	cutLinks(topo, 3, 9) // two isolated nodes + the surviving chain pieces
	for _, n := range []int{2, 3, 4} {
		assign := PlanShards(topo, n, 7)
		if len(assign) != topo.Len() {
			t.Fatalf("n=%d: assignment length %d, want %d", n, len(assign), topo.Len())
		}
		for id, s := range assign {
			if s < 0 || s >= n {
				t.Fatalf("n=%d: node %d assigned out-of-range shard %d", n, id, s)
			}
		}
		counts, populated := shardStats(assign, n)
		if populated != n {
			t.Fatalf("n=%d: only %d shards populated: %v", n, populated, counts)
		}
	}
}

func TestPlanShardsMoreShardsThanNodes(t *testing.T) {
	topo := ringTopo(t, 3, 0.01)
	assign := PlanShards(topo, 8, 3)
	counts, populated := shardStats(assign, 8)
	if populated != 3 {
		t.Fatalf("want exactly 3 populated shards, got %d: %v", populated, counts)
	}
	for s, c := range counts {
		if c > 1 {
			t.Fatalf("shard %d has %d nodes; with more shards than nodes every shard holds at most one: %v", s, c, counts)
		}
	}
}

func TestPlanShardsSingleNodeShards(t *testing.T) {
	// Exactly as many shards as nodes: every shard holds exactly one node.
	topo := ringTopo(t, 5, 0.01)
	assign := PlanShards(topo, 5, 11)
	counts, populated := shardStats(assign, 5)
	if populated != 5 {
		t.Fatalf("want 5 populated shards, got %d: %v", populated, counts)
	}
}

func TestPlanShardsNoShardEmptied(t *testing.T) {
	// A pathological profile — one node carries almost all weight — must
	// not let the cut or the refinement empty any shard.
	topo := ringTopo(t, 16, 0.01)
	w := make([]float64, topo.Len())
	for i := range w {
		w[i] = 1
	}
	w[5] = 1e6
	assign := PlanShardsWeighted(topo, 4, 3, w)
	counts, populated := shardStats(assign, 4)
	if populated != 4 {
		t.Fatalf("pathological profile emptied a shard: %v", counts)
	}
}

func TestPlanShardsWeightSanitizing(t *testing.T) {
	topo := ringTopo(t, 8, 0.01)
	bad := make([]float64, topo.Len())
	for i := range bad {
		bad[i] = math.NaN()
	}
	bad[0], bad[1] = math.Inf(1), -4
	assign := PlanShardsWeighted(topo, 2, 1, bad)
	if _, populated := shardStats(assign, 2); populated != 2 {
		t.Fatal("NaN/Inf/negative profile broke the partition")
	}
	// Mis-sized profiles fall back to the static model.
	if _, populated := shardStats(PlanShardsWeighted(topo, 2, 1, []float64{1}), 2); populated != 2 {
		t.Fatal("mis-sized profile broke the partition")
	}
}

func TestPlanShardsDeterministic(t *testing.T) {
	topo := ringTopo(t, 20, 0.01)
	a := PlanShards(topo, 4, 99)
	b := PlanShards(topo, 4, 99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d: equal inputs gave different shards %d vs %d", i, a[i], b[i])
		}
	}
}

// TestPlanShardsPinnedAssignment pins the exact partition of a small fixed
// topology. The assignment is free to change when the partitioner changes
// ON PURPOSE — re-pin the literal below and say why in the commit — but an
// accidental change to the cost model, cut, refinement order, or tie-break
// hashing must not silently ship a digest-compatible-but-slower partition.
func TestPlanShardsPinnedAssignment(t *testing.T) {
	topo := ringTopo(t, 12, 0.01)
	got := PlanShards(topo, 3, 42)
	want := []int{2, 1, 1, 0, 0, 0, 0, 0, 1, 1, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("assignment length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignment drifted: got %v, want %v", got, want)
		}
	}
}

// TestStaticWeightsShape pins the cost model's ordering properties rather
// than its exact values: weights are positive, sublinear in degree, and a
// hypergiant weighs far less than a transit of equal degree.
func TestStaticWeightsShape(t *testing.T) {
	b := topology.NewBuilder()
	hub := b.AddNode(1, "hub", topology.ClassTransit, topology.Point{})
	hg := b.AddNode(2, "hg", topology.ClassHypergiant, topology.Point{})
	var leaves []topology.NodeID
	for i := 0; i < 6; i++ {
		leaves = append(leaves, b.AddNode(topology.ASN(10+i), nodeName(i), topology.ClassStub, topology.Point{}))
	}
	for _, l := range leaves {
		b.Link(l, hub, topology.RelProvider, 0.002)
		b.Link(l, hg, topology.RelPeer, 0.002)
	}
	b.Link(hub, hg, topology.RelPeer, 0.005)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := StaticSpeakerWeights(topo)
	for id, v := range w {
		if v <= 0 {
			t.Fatalf("node %d: non-positive weight %g", id, v)
		}
	}
	if w[hg] >= w[hub] {
		t.Fatalf("hypergiant (route sink) weight %g should be below transit weight %g at equal degree", w[hg], w[hub])
	}
	if w[hub] >= float64(7)*w[leaves[0]] {
		t.Fatalf("weight should be sublinear in degree: hub(deg 7)=%g vs stub(deg 2)=%g", w[hub], w[leaves[0]])
	}
}

// TestNewShardedNoCutWindow exercises the degenerate no-cut-edge fallback:
// when whole components land on single shards the lookahead is +Inf, and
// the runner must fall back to the documented noCutWindow choice — the
// minimum link delay anywhere plus ProcMin.
func TestNewShardedNoCutWindow(t *testing.T) {
	topo := ringTopo(t, 8, 0.020)
	// Split the ring into two 4-node chains, each of which the weighted cut
	// places wholly on one shard: no cut edges remain.
	cutLinks(topo, 0, 4)
	cfg := DefaultConfig()
	sim := netsim.New(1)
	net, err := NewSharded(sim, topo, cfg, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	assign := PlanShards(topo, 2, 1)
	if la := lookahead(topo, cfg, assign); !math.IsInf(la, 1) {
		t.Skipf("partition has cut edges (lookahead %g); fallback not exercised", la)
	}
	want := 0.020 + cfg.ProcMin
	if got := net.ShardRunner().Window(); got != want {
		t.Fatalf("no-cut window = %g, want min link delay + ProcMin = %g", got, want)
	}
}

// TestNoCutWindowEdgeCases pins the documented fallback ladder directly:
// min link delay + ProcMin, then bare ProcMin for a linkless topology,
// then one virtual second when ProcMin is zero too.
func TestNoCutWindowEdgeCases(t *testing.T) {
	topo := ringTopo(t, 4, 0.015)
	cfg := DefaultConfig()
	if got, want := noCutWindow(topo, cfg), 0.015+cfg.ProcMin; got != want {
		t.Fatalf("linked topology: window %g, want %g", got, want)
	}
	bare := ringTopo(t, 4, 0.015)
	cutLinks(bare, 0, 1, 2, 3)
	if got, want := noCutWindow(bare, cfg), cfg.ProcMin; got != want {
		t.Fatalf("linkless topology: window %g, want bare ProcMin %g", got, want)
	}
	if got := noCutWindow(bare, Config{}); got != 1 {
		t.Fatalf("linkless topology with zero ProcMin: window %g, want 1", got)
	}
}
