package bgp

import (
	"fmt"
	"sort"
	"strings"

	"bestofboth/internal/topology"
)

// RouteStateDigest renders the semantic routing state of the whole network
// as canonical text: per speaker, per prefix, the origination policy, the
// loc-RIB best route, and the non-empty adj-RIB-in/out slots. Pacing
// deadlines, damping penalties, delivery clocks, and message counters are
// deliberately excluded — two networks with equal digests make identical
// forwarding and export decisions even if they took different paced paths
// to get there. Regression tests use it to check that fail→recover cycles
// re-converge to exactly the never-failed state.
func (n *Network) RouteStateDigest() string {
	var b strings.Builder
	for _, sp := range n.speakers {
		var lines []string
		for _, p := range sp.KnownPrefixes() {
			st := sp.prefixes[p]
			var sb strings.Builder
			if st.origin != nil {
				fmt.Fprintf(&sb, "  origin %s\n", originWire(st.origin))
			}
			if st.best != nil {
				fmt.Fprintf(&sb, "  best sess=%d %s\n", st.best.learnedFrom, routeWire(st.best))
			}
			for sess, r := range st.in {
				if r != nil {
					fmt.Fprintf(&sb, "  in[%d] lp=%d %s\n", sess, r.LocalPref, routeWire(r))
				}
			}
			for sess, r := range st.out {
				if r != nil {
					fmt.Fprintf(&sb, "  out[%d] %s\n", sess, routeWire(r))
				}
			}
			if sb.Len() == 0 {
				continue // empty husk left by a full withdraw cycle
			}
			lines = append(lines, fmt.Sprintf("%s %s\n%s", sp.node.Name, p, sb.String()))
		}
		for _, l := range lines {
			b.WriteString(l)
		}
	}
	return b.String()
}

// routeWire renders the attributes a route carries on the wire. OriginNode
// is deliberately omitted: it is simulator bookkeeping outside the decision
// process, and under anycast wire-identical routes from different
// originating sites leave different OriginNode breadcrumbs depending on
// arrival order.
func routeWire(r *Route) string {
	return fmt.Sprintf("path=%v med=%d comm=%v", r.Path, r.MED, r.Communities)
}

func originWire(pol *OriginPolicy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "prepend=%d med=%d comm=%v", pol.Prepend, pol.MED, pol.Communities)
	if len(pol.PerNeighbor) > 0 {
		ids := make([]topology.NodeID, 0, len(pol.PerNeighbor))
		for id := range pol.PerNeighbor {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			np := pol.PerNeighbor[id]
			fmt.Fprintf(&b, " nbr[%d]={export=%t prepend=%d}", id, np.Export, np.Prepend)
		}
	}
	return b.String()
}
