package bgp

import (
	"fmt"

	"bestofboth/internal/topology"
)

// Session/link fault injection.
//
// A BGP session in this model is the pair of directed adjacency slots
// between two speakers. Faults operate on both directions at once:
//
//   - SetLinkDown tears the session down: both sides flush the routes
//     learned over it, re-select from remaining sessions, and propagate the
//     resulting withdrawals/replacements. In-flight updates on the session
//     are dropped (the TCP connection died with the link).
//   - SetLinkUp re-establishes the session: both sides replay their full
//     tables, as in the initial Adj-RIB-Out exchange of RFC 4271 §9.4.
//   - ResetSession models a session bounce (e.g. a NOTIFICATION or hold
//     timer expiry) with the link itself staying up: state is flushed and
//     the full tables are exchanged again immediately.
//
// All three iterate RIBs in sorted prefix order, so fault injection
// preserves the simulator's bit-exact determinism.

// sessionBetween finds the session index at a pointing to b.
func (n *Network) sessionBetween(a, b topology.NodeID) (int, error) {
	sa := n.Speaker(a)
	if sa == nil {
		return 0, fmt.Errorf("bgp: no speaker for node %d", a)
	}
	for i, adj := range sa.node.Adj {
		if adj.To == b {
			return i, nil
		}
	}
	return 0, fmt.Errorf("bgp: no session between %q and node %d", sa.node.Name, b)
}

func (n *Network) sessionPair(a, b topology.NodeID) (sa, sb *Speaker, ia, ib int, err error) {
	if ia, err = n.sessionBetween(a, b); err != nil {
		return nil, nil, 0, 0, err
	}
	if ib, err = n.sessionBetween(b, a); err != nil {
		return nil, nil, 0, 0, err
	}
	return n.Speaker(a), n.Speaker(b), ia, ib, nil
}

// SetLinkDown fails the link (and therefore the BGP session) between nodes
// a and b. Routes learned over the session are withdrawn on both sides and
// alternatives re-selected; updates already in flight on the session are
// lost. Idempotent: failing an already-down link is a no-op.
func (n *Network) SetLinkDown(a, b topology.NodeID) error {
	sa, sb, ia, ib, err := n.sessionPair(a, b)
	if err != nil {
		return err
	}
	if sa.downSess[ia] {
		return nil
	}
	sa.downSess[ia] = true
	sb.downSess[ib] = true
	sa.sessEpoch[ia]++
	sb.sessEpoch[ib]++
	sa.flushSession(ia)
	sb.flushSession(ib)
	return nil
}

// SetLinkUp restores a previously failed link. Both speakers re-establish
// the session and replay their full tables toward each other. Idempotent:
// restoring an up link is a no-op.
func (n *Network) SetLinkUp(a, b topology.NodeID) error {
	sa, sb, ia, ib, err := n.sessionPair(a, b)
	if err != nil {
		return err
	}
	if !sa.downSess[ia] {
		return nil
	}
	sa.downSess[ia] = false
	sb.downSess[ib] = false
	sa.readvertiseSession(ia)
	sb.readvertiseSession(ib)
	return nil
}

// ResetSession bounces the BGP session between a and b without taking the
// link down: both sides drop all session state (and any in-flight updates),
// then immediately re-establish and exchange full tables. The transient
// withdraw/re-announce churn is what route-flap damping at downstream
// speakers reacts to.
func (n *Network) ResetSession(a, b topology.NodeID) error {
	sa, sb, ia, ib, err := n.sessionPair(a, b)
	if err != nil {
		return err
	}
	if sa.downSess[ia] {
		return fmt.Errorf("bgp: cannot reset session %q<->%q: link is down", sa.node.Name, sb.node.Name)
	}
	sa.sessEpoch[ia]++
	sb.sessEpoch[ib]++
	sa.flushSession(ia)
	sb.flushSession(ib)
	sa.readvertiseSession(ia)
	sb.readvertiseSession(ib)
	return nil
}

// LinkIsDown reports whether the link between a and b is currently failed.
func (n *Network) LinkIsDown(a, b topology.NodeID) (bool, error) {
	sa, _, ia, _, err := n.sessionPair(a, b)
	if err != nil {
		return false, err
	}
	return sa.downSess[ia], nil
}
