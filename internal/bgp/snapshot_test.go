package bgp

import (
	"net/netip"
	"testing"

	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// converge originates testPrefix with the given policy and drains the queue.
func convergeLine(t *testing.T, seed int64, pol *OriginPolicy) (*netsim.Sim, *Network) {
	t.Helper()
	sim := netsim.New(seed)
	net := New(sim, lineTopo(t), quickCfg())
	if err := net.Originate(0, testPrefix, pol); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	return sim, net
}

// TestNetworkSnapshotRestoreEquivalence converges a network, snapshots it,
// restores into a fresh network, and checks that post-snapshot work (a
// withdrawal) plays out identically on the original and the restored copy.
func TestNetworkSnapshotRestoreEquivalence(t *testing.T) {
	const seed = 11
	pol := &OriginPolicy{Prepend: 2, Communities: []uint32{64512}}
	sim1, net1 := convergeLine(t, seed, pol)
	simSnap, err := sim1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	netSnap, err := net1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	sim2 := netsim.New(seed)
	net2 := New(sim2, lineTopo(t), quickCfg())
	bestReplays := 0
	net2.OnBestChange(func(topology.NodeID, netip.Prefix, *Route) { bestReplays++ })
	if err := sim2.Restore(simSnap); err != nil {
		t.Fatal(err)
	}
	if err := net2.Restore(netSnap); err != nil {
		t.Fatal(err)
	}

	if net2.MessageCount() != net1.MessageCount() {
		t.Fatalf("restored MessageCount = %d, want %d", net2.MessageCount(), net1.MessageCount())
	}
	if bestReplays != 3 {
		t.Fatalf("restore replayed %d best routes to OnBestChange, want 3", bestReplays)
	}
	for id := topology.NodeID(0); id < 3; id++ {
		b1, b2 := net1.Speaker(id).Best(testPrefix), net2.Speaker(id).Best(testPrefix)
		if (b1 == nil) != (b2 == nil) {
			t.Fatalf("node %d best-route presence differs after restore", id)
		}
		if b1 == nil {
			continue
		}
		if len(b1.Path) != len(b2.Path) {
			t.Fatalf("node %d path length differs: %v vs %v", id, b1.Path, b2.Path)
		}
		for i := range b1.Path {
			if b1.Path[i] != b2.Path[i] {
				t.Fatalf("node %d path differs: %v vs %v", id, b1.Path, b2.Path)
			}
		}
	}

	// Identical post-snapshot work must play out identically.
	net1.Withdraw(0, testPrefix)
	sim1.Run()
	net2.Withdraw(0, testPrefix)
	sim2.Run()
	if sim1.Now() != sim2.Now() || sim1.Steps() != sim2.Steps() {
		t.Fatalf("post-restore trajectories diverge: now %v/%v steps %d/%d",
			sim1.Now(), sim2.Now(), sim1.Steps(), sim2.Steps())
	}
	if net1.MessageCount() != net2.MessageCount() {
		t.Fatalf("post-restore MessageCount diverges: %d vs %d", net1.MessageCount(), net2.MessageCount())
	}
	for id := topology.NodeID(0); id < 3; id++ {
		if net2.Speaker(id).Best(testPrefix) != nil {
			t.Fatalf("node %d still has a route after withdrawal on restored network", id)
		}
	}
}

// TestNetworkSnapshotIsolation restores the same snapshot into two networks
// and checks the copy-on-write contract: restored worlds share the
// snapshot's immutable routes by pointer, and a world that diverges after
// restore swaps pointers in its own slices without leaking into its
// siblings or the snapshot.
func TestNetworkSnapshotIsolation(t *testing.T) {
	sim1, net1 := convergeLine(t, 5, nil)
	if _, err := sim1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snap, err := net1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restore := func() *Network {
		sim := netsim.New(5)
		net := New(sim, lineTopo(t), quickCfg())
		if err := net.Restore(snap); err != nil {
			t.Fatal(err)
		}
		return net
	}
	a, b := restore(), restore()

	ra := a.Speaker(2).Best(testPrefix)
	rb := b.Speaker(2).Best(testPrefix)
	if ra != rb {
		t.Fatal("restored networks should share the snapshot's immutable *Route")
	}
	wantPath := append([]topology.ASN(nil), ra.Path...)

	// Diverge world a: withdraw the origination and run it to quiescence.
	// World b and any later restore must be unaffected.
	a.Withdraw(0, testPrefix)
	a.Sim().Run()
	if a.Speaker(2).Best(testPrefix) != nil {
		t.Fatal("world a still has a route after withdrawal")
	}
	if got := b.Speaker(2).Best(testPrefix); got != rb {
		t.Fatal("divergence in world a replaced world b's best route")
	}
	for i, asn := range b.Speaker(2).Best(testPrefix).Path {
		if asn != wantPath[i] {
			t.Fatalf("divergence in world a mutated the shared path: %v", b.Speaker(2).Best(testPrefix).Path)
		}
	}
	c := restore()
	if got := c.Speaker(2).Best(testPrefix); got != rb {
		t.Fatal("divergence in world a leaked into the snapshot")
	}
}

func TestNetworkSnapshotRefusals(t *testing.T) {
	sim := netsim.New(1)
	net := New(sim, lineTopo(t), quickCfg())
	if err := net.Originate(0, testPrefix, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Snapshot(); err == nil {
		t.Fatal("snapshot with pending events accepted")
	}
	sim.Run()
	snap, err := net.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Restoring over a network that already has prefix state must fail.
	if err := net.Restore(snap); err == nil {
		t.Fatal("restore over a non-fresh network accepted")
	}
}
