package bgp

import (
	"fmt"
	"net/netip"
	"runtime"
	"testing"

	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// TestSendPathZeroAllocs pins the zero-copy send→receive path: once the
// network has converged (intern table and event free-lists warm), a
// re-advertisement of an unchanged route must flow sender → wire → receiver
// without a single heap allocation. Any reintroduced per-message Route
// clone, path copy, or scheduling closure fails this test.
func TestSendPathZeroAllocs(t *testing.T) {
	topo := lineTopo(t)
	sim := netsim.New(7)
	net := New(sim, topo, quickCfg())
	if err := net.Originate(0, testPrefix, nil); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	sp := net.Speaker(0)
	st := sp.prefixes[testPrefix]
	sess := -1
	for i, r := range st.out {
		if r != nil {
			sess = i
			break
		}
	}
	if sess < 0 {
		t.Fatal("origin speaker has no adj-RIB-out entry")
	}
	r := st.out[sess]

	avg := testing.AllocsPerRun(100, func() {
		sp.send(sess, Update{Type: Announce, Prefix: testPrefix, Route: r})
		for sim.Step() {
		}
	})
	if avg != 0 {
		t.Fatalf("duplicate re-advertisement allocated %.1f times per send; want 0", avg)
	}
}

// TestExportPathAllocBudget bounds the allocation cost of a real route
// change rippling through a small network. The budget covers the genuinely
// new state — one origin route, one materialized Route per changed
// adj-RIB-out entry, one shallow copy per import — and nothing per message:
// the pre-interning kernel cloned the route and its AS path on every hop
// and blows well past it.
func TestExportPathAllocBudget(t *testing.T) {
	topo := diamond(t)
	sim := netsim.New(9)
	net := New(sim, topo, quickCfg())

	pols := [2]*OriginPolicy{{}, {Prepend: 1}}
	if err := net.Originate(3, testPrefix, pols[0]); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	// Warm the intern table for both policies before measuring.
	net.Originate(3, testPrefix, pols[1])
	sim.Run()
	net.Originate(3, testPrefix, pols[0])
	sim.Run()

	i := 0
	avg := testing.AllocsPerRun(16, func() {
		i++
		net.Originate(3, testPrefix, pols[i%2])
		sim.Run()
	})
	// One full flap across 4 nodes currently costs ~20 allocations; 64
	// leaves slack for decision-process changes while still failing fast if
	// per-message cloning returns (that regime costs hundreds per flap).
	const budget = 64
	if avg > budget {
		t.Fatalf("route change allocated %.1f times per flap; budget %d", avg, budget)
	}
}

// TestRestoreAllocBudget verifies the copy-on-write acceptance criterion: a
// no-divergence Restore must share the snapshot's routes rather than deep-
// copying them. With N shared route slots in the snapshot, a deep copy
// costs at least one allocation per route before any bookkeeping; COW
// restore must stay under that line, and every restored loc-RIB best must
// be pointer-identical to the live network's.
func TestRestoreAllocBudget(t *testing.T) {
	topo := diamond(t)
	simA := netsim.New(5)
	netA := New(simA, topo, quickCfg())
	var prefixes []netip.Prefix
	for i := 0; i < 16; i++ {
		p := netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/24", i))
		prefixes = append(prefixes, p)
		if err := netA.Originate(topology.NodeID(i%4), p, nil); err != nil {
			t.Fatal(err)
		}
	}
	simA.Run()
	snap, err := netA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	routes := 0
	for _, ss := range snap.speakers {
		for _, ps := range ss.prefixes {
			for _, r := range ps.in {
				if r != nil {
					routes++
				}
			}
			for _, r := range ps.out {
				if r != nil {
					routes++
				}
			}
		}
	}
	if routes < 100 {
		t.Fatalf("snapshot too small to be meaningful: %d route slots", routes)
	}

	simB := netsim.New(5)
	netB := New(simB, topo, quickCfg())
	var m1, m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m1)
	if err := netB.Restore(snap); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m2)
	mallocs := m2.Mallocs - m1.Mallocs
	if mallocs >= uint64(routes) {
		t.Fatalf("no-divergence Restore made %d allocations for %d shared route slots — deep-copying?",
			mallocs, routes)
	}

	for id := topology.NodeID(0); id < 4; id++ {
		for _, p := range prefixes {
			if a, b := netA.Speaker(id).Best(p), netB.Speaker(id).Best(p); a != b {
				t.Fatalf("node %d prefix %s: restored best %p is not the shared snapshot route %p", id, p, b, a)
			}
		}
	}
}
