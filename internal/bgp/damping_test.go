package bgp

import (
	"testing"

	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

func dampCfg() Config {
	return Config{
		MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.01, ProcMax: 0.05,
		Damping: DefaultDamping(),
	}
}

func TestDampingSuppressesFlappingRoute(t *testing.T) {
	topo := lineTopo(t) // O -- A -- B
	sim := netsim.New(1)
	net := New(sim, topo, dampCfg())

	// Flap the prefix from O repeatedly: announce/withdraw cycles spaced
	// past the MRAI so every transition actually reaches A (flaps hidden
	// inside one MRAI window are absorbed by pacing and must not count).
	for i := 0; i < 3; i++ {
		net.Originate(0, testPrefix, nil)
		sim.RunFor(40)
		net.Withdraw(0, testPrefix)
		sim.RunFor(40)
	}
	// After three flaps (penalty ≈ 2800 > 2000 cutoff), A has suppressed
	// the route from O: a fresh announcement is withheld.
	net.Originate(0, testPrefix, nil)
	sim.RunFor(40)
	if best := net.Speaker(1).Best(testPrefix); best != nil {
		t.Fatalf("A still selects the flapping route: %+v", best)
	}

	// After the penalty decays below reuse (half-life 900 s), the route is
	// reinstated without any new announcement.
	sim.RunFor(3 * 900)
	if best := net.Speaker(1).Best(testPrefix); best == nil {
		t.Fatal("suppressed route never reinstated after decay")
	}
	if best := net.Speaker(2).Best(testPrefix); best == nil {
		t.Fatal("B never recovered the route after A's reuse")
	}
}

func TestDampingDoesNotAffectFirstAnnouncement(t *testing.T) {
	topo := lineTopo(t)
	sim := netsim.New(2)
	net := New(sim, topo, dampCfg())
	net.Originate(0, testPrefix, nil)
	sim.RunFor(30)
	for id := topology.NodeID(0); id < 3; id++ {
		if net.Speaker(id).Best(testPrefix) == nil {
			t.Fatalf("node %d lacks route; damping penalized a non-flap", id)
		}
	}
}

func TestDampingSingleWithdrawalNotSuppressed(t *testing.T) {
	topo := lineTopo(t)
	sim := netsim.New(3)
	net := New(sim, topo, dampCfg())
	net.Originate(0, testPrefix, nil)
	sim.RunFor(30)
	net.Withdraw(0, testPrefix)
	sim.RunFor(30)
	// One withdrawal is one flap: penalty 1000 < 2000 cutoff. A fresh
	// announcement must go through.
	net.Originate(0, testPrefix, nil)
	sim.RunFor(30)
	if best := net.Speaker(2).Best(testPrefix); best == nil {
		t.Fatal("single withdrawal triggered suppression")
	}
}

func TestDampingDisabledByDefault(t *testing.T) {
	topo := lineTopo(t)
	sim := netsim.New(4)
	net := New(sim, topo, quickCfg()) // no Damping
	for i := 0; i < 10; i++ {
		net.Originate(0, testPrefix, nil)
		sim.RunFor(5)
		net.Withdraw(0, testPrefix)
		sim.RunFor(5)
	}
	net.Originate(0, testPrefix, nil)
	sim.RunFor(30)
	if net.Speaker(2).Best(testPrefix) == nil {
		t.Fatal("route suppressed with damping disabled")
	}
}

func TestDampStateDecay(t *testing.T) {
	d := dampState{penalty: 2000, lastUpdate: 0}
	d.decayTo(900, 900)
	if d.penalty < 999 || d.penalty > 1001 {
		t.Fatalf("penalty after one half-life = %v, want ≈1000", d.penalty)
	}
	d.decayTo(900+9000, 900) // ten more half-lives: negligible
	if d.penalty != 0 {
		t.Fatalf("penalty should floor to 0, got %v", d.penalty)
	}
}
