package bgp

import (
	"fmt"
	"math"

	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// Sharded convergence.
//
// A Network can run its speakers across several shard simulators under a
// netsim.ShardRunner. Every speaker belongs to exactly one shard and all of
// its events (deliveries, MRAI timers, damping reuse timers) live on that
// shard's calendar. Same-shard updates take the usual pooled-delivery path;
// cross-shard updates are buffered as plain values into per-(src,dst)
// mailboxes and merged into the destination calendars at each barrier, in
// (source shard, source sequence) order. The lookahead window — the minimum
// cross-shard link delay plus the minimum processing delay — guarantees a
// message emitted during a round arrives after the round's horizon, so
// shards never see each other mid-round.
//
// The unsharded Network is the one-shard special case: shard 0 wraps the
// control simulator itself, so every code path is shared and shards=1 is
// bit-identical to the pre-sharding simulator.

// shard holds the per-shard simulator and all single-threaded state that
// used to live on the Network: the AS-path intern table and the payload
// free-lists are touched from the owning shard's goroutine only, and the
// outgoing mailboxes are written by the owning shard and drained by the
// barrier (which runs with all shards parked). cdnlint/shardsafe enforces
// the discipline: fields are reachable only from owner-rooted receivers,
// the drain path, or barrier-side code.
//
//cdnlint:shardowned
type shard struct {
	idx int         //cdnlint:nosnapshot immutable wiring: position in Network.shards
	sim *netsim.Sim // kernel state snapshots via NetworkSnapshot.kernels

	// intern deduplicates AS-path slices across this shard's speakers.
	intern pathIntern //cdnlint:nosnapshot cache: restore reseeds it from the snapshot's adj-RIB-out paths
	// freeDeliv and freePend recycle the payload structs of the two hottest
	// event kinds, exactly as the unsharded Network did.
	freeDeliv []*delivery      //cdnlint:nosnapshot free-list pool; contents are semantically empty
	freePend  []*pendingExport //cdnlint:nosnapshot free-list pool; contents are semantically empty

	// out[d] buffers updates for speakers on shard d; drained at barriers.
	out [][]xmsg //cdnlint:nosnapshot snapshots require quiescence, where all mailboxes are empty
	// feedOut buffers collector-feed deliveries bound for the control
	// simulator.
	feedOut []feedMsg //cdnlint:nosnapshot snapshots require quiescence, where all mailboxes are empty
	// outSeq numbers cross-shard sends so the barrier merge order is
	// explicit and testable.
	outSeq uint64 //cdnlint:nosnapshot only relative order within a round matters, and mailboxes are empty at quiescence
}

// xmsg is one cross-shard UPDATE in flight: the same payload a pooled
// delivery carries, held by value in the mailbox until the barrier.
type xmsg struct {
	at    netsim.Seconds
	peer  *Speaker
	rev   int
	epoch uint64
	u     Update
	seq   uint64
}

// feedMsg is one collector-feed delivery bound for the control simulator.
type feedMsg struct {
	at   netsim.Seconds
	sp   *Speaker
	peer topology.NodeID
	u    Update
}

// sendCross buffers an update for a speaker on another shard. Runs on the
// sending shard's goroutine; only sender-owned state is written.
//
//cdnlint:allocfree cross-shard sends append one value into the mailbox; no per-message heap traffic
func (sh *shard) sendCross(at netsim.Seconds, peer *Speaker, rev int, u Update) {
	sh.outSeq++
	//lint:ignore cdnlint/shardsafe idx is immutable wiring; addressing the destination mailbox reads no mutable peer-shard state
	dst := peer.sh.idx
	sh.out[dst] = append(sh.out[dst], xmsg{at: at, peer: peer, rev: rev, epoch: peer.sessEpoch[rev], u: u, seq: sh.outSeq})
}

//cdnlint:allocfree pool hit path; the miss allocates once per steady-state depth
func (sh *shard) newDelivery() *delivery {
	if k := len(sh.freeDeliv); k > 0 {
		d := sh.freeDeliv[k-1]
		sh.freeDeliv = sh.freeDeliv[:k-1]
		return d
	}
	return &delivery{}
}

//cdnlint:allocfree pool hit path; the miss allocates once per steady-state depth
func (sh *shard) newPendingExport() *pendingExport {
	if k := len(sh.freePend); k > 0 {
		pe := sh.freePend[k-1]
		sh.freePend = sh.freePend[:k-1]
		return pe
	}
	return &pendingExport{}
}

// exchange adapts the Network's mailboxes to netsim.Exchanger. The runner
// calls it only between rounds, with every shard goroutine parked.
type exchange struct{ n *Network }

// MailboxPending reports buffered cross-shard messages awaiting merge.
//
//cdnlint:barrieronly
func (e exchange) MailboxPending() int {
	total := 0
	for _, sh := range e.n.shards {
		for _, buf := range sh.out {
			total += len(buf)
		}
		total += len(sh.feedOut)
	}
	return total
}

// Merge drains every mailbox into the destination calendars. Source shards
// are visited in index order and each buffer in append (sequence) order, so
// deliveries tied on timestamps execute in (source shard, source sequence)
// order — deterministic regardless of which shard finished its round first.
//
//cdnlint:barrieronly
func (e exchange) Merge() {
	for _, src := range e.n.shards {
		e.n.mergeUpdates(src)
		e.n.mergeFeeds(src)
	}
}

// mergeUpdates re-schedules one source shard's buffered updates as pooled
// deliveries on their destination shards.
//
//cdnlint:allocfree deliveries come from the destination shard's pool; mailbox slots are cleared in place
func (n *Network) mergeUpdates(src *shard) {
	for di := range src.out {
		buf := src.out[di]
		if len(buf) == 0 {
			continue
		}
		dst := n.shards[di]
		n.m.xshard.Add(uint64(len(buf)))
		for i := range buf {
			m := &buf[i]
			d := dst.newDelivery()
			d.peer, d.rev, d.epoch, d.u = m.peer, m.rev, m.epoch, m.u
			dst.sim.AtCall(m.at, runDelivery, d)
			buf[i] = xmsg{}
		}
		src.out[di] = buf[:0]
	}
}

// mergeFeeds re-schedules buffered collector-feed deliveries on the control
// simulator, where all feed consumers (collectors) live.
func (n *Network) mergeFeeds(src *shard) {
	if len(src.feedOut) == 0 {
		return
	}
	n.m.xfeed.Add(uint64(len(src.feedOut)))
	for i := range src.feedOut {
		m := src.feedOut[i]
		n.sim.At(m.at, func() {
			for _, fn := range m.sp.feeds {
				fn(n.sim.Now(), m.peer, m.u)
			}
		})
		src.feedOut[i] = feedMsg{}
	}
	src.feedOut = src.feedOut[:0]
}

// lookahead computes the barrier window for an assignment: the minimum
// virtual latency any cross-shard message can carry, i.e. the smallest
// cut-edge link delay plus the minimum processing delay. Returns +Inf when
// the assignment has no cut edges.
func lookahead(topo *topology.Topology, cfg Config, assign []int) netsim.Seconds {
	minCut := math.Inf(1)
	for _, node := range topo.Nodes {
		for _, adj := range node.Adj {
			if assign[node.ID] != assign[adj.To] && adj.Delay < minCut {
				minCut = adj.Delay
			}
		}
	}
	return minCut + cfg.ProcMin
}

// shardSeed derives the deterministic RNG seed of shard i from the world
// seed.
func shardSeed(seed int64, i int) int64 {
	return seed + int64(i+1)*1_000_003
}

// noCutWindow picks the barrier window for an assignment with no cut edges
// (every speaker landed on one shard — degenerate tiny topology, or n far
// above the node count). With nothing ever crossing shards, any positive
// window is conservative — it only sets round granularity — so we use the
// window the assignment WOULD have if the topology's lowest-latency link
// were cut: min link delay anywhere + ProcMin. A topology with no links at
// all falls back to ProcMin alone, and if that is also zero, to one virtual
// second.
func noCutWindow(topo *topology.Topology, cfg Config) netsim.Seconds {
	minDelay := math.Inf(1)
	for _, node := range topo.Nodes {
		for _, adj := range node.Adj {
			if adj.Delay < minDelay {
				minDelay = adj.Delay
			}
		}
	}
	window := cfg.ProcMin
	if !math.IsInf(minDelay, 1) {
		window += minDelay
	}
	if window <= 0 {
		window = 1
	}
	return window
}

// NewSharded builds a Network whose speakers are partitioned across nShards
// shard simulators coordinated by a netsim.ShardRunner attached to sim (the
// control simulator). All world-level actors — fault injection, probers,
// monitors, collector feeds, scenario timelines — stay on sim and execute
// at barriers with every shard parked, so control actions keep their exact
// sequential semantics. nShards <= 1 degrades to New. Speakers are
// partitioned by PlanShards' static cost model; NewShardedWeighted accepts
// a measured work profile instead.
func NewSharded(sim *netsim.Sim, topo *topology.Topology, cfg Config, nShards int, seed int64) (*Network, error) {
	return NewShardedWeighted(sim, topo, cfg, nShards, seed, nil)
}

// NewShardedWeighted is NewSharded with an explicit per-speaker work
// profile for the partitioner (see PlanShardsWeighted); nil means the
// static cost model. Weights steer only the placement of speakers onto
// shards — converged route state and FIB digests are bit-identical for any
// profile at any shard count.
func NewShardedWeighted(sim *netsim.Sim, topo *topology.Topology, cfg Config, nShards int, seed int64, weights []float64) (*Network, error) {
	if nShards <= 1 {
		return New(sim, topo, cfg), nil
	}
	assign := PlanShardsWeighted(topo, nShards, seed, weights)
	window := lookahead(topo, cfg, assign)
	if math.IsInf(window, 1) {
		window = noCutWindow(topo, cfg)
	}
	if window <= 0 {
		return nil, fmt.Errorf("bgp: cannot shard: lookahead %g <= 0 (zero-delay cut edge with ProcMin=0)", window)
	}

	shards := make([]*shard, nShards)
	sims := make([]*netsim.Sim, nShards)
	for i := range shards {
		sims[i] = netsim.New(shardSeed(seed, i))
		shards[i] = &shard{idx: i, sim: sims[i], intern: newPathIntern(), out: make([][]xmsg, nShards)}
	}
	n := build(sim, topo, cfg, shards, assign)
	runner, err := netsim.NewShardRunner(sim, sims, window, exchange{n})
	if err != nil {
		return nil, err
	}
	n.runner = runner
	return n, nil
}

// ShardRunner returns the barrier runner coordinating this network's
// shards, or nil when the network is unsharded.
func (n *Network) ShardRunner() *netsim.ShardRunner { return n.runner }

// Shards returns the number of shards the network runs across (1 when
// unsharded).
func (n *Network) Shards() int { return len(n.shards) }

// ShardEventCounts returns the number of kernel events each shard has
// executed so far, in shard-index order. The max/mean ratio of these is
// the event-imbalance the seeded BFS-chunk partitioner leaves on the
// table — the tracked baseline for a future load-aware partitioner.
// Callers read it between rounds (or after the run), with shards parked.
//
//cdnlint:barrieronly
func (n *Network) ShardEventCounts() []uint64 {
	counts := make([]uint64, len(n.shards))
	for i, s := range n.shards {
		counts[i] = s.sim.Steps()
	}
	return counts
}
