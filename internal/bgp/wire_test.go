package bgp

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"bestofboth/internal/topology"
)

func TestEncodeDecodeUpdateAnnounce(t *testing.T) {
	u := &WireUpdate{
		NLRI:      []netip.Prefix{netip.MustParsePrefix("184.164.244.0/24")},
		ASPath:    []topology.ASN{47065, 47065, 47065, 47065},
		NextHop:   netip.MustParseAddr("10.0.1.1"),
		MED:       20,
		HasMED:    true,
		LocalPref: 200,
		HasLP:     true,
		Origin:    0,
		Community: []uint32{47065<<16 | 100},
	}
	wire, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, u) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, u)
	}
}

func TestEncodeDecodeUpdateWithdraw(t *testing.T) {
	u := &WireUpdate{
		Withdrawn: []netip.Prefix{
			netip.MustParsePrefix("184.164.244.0/24"),
			netip.MustParsePrefix("184.164.240.0/21"),
		},
	}
	wire, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Withdrawn) != 2 || got.Withdrawn[0] != u.Withdrawn[0] || got.Withdrawn[1] != u.Withdrawn[1] {
		t.Fatalf("withdrawn = %v", got.Withdrawn)
	}
	if len(got.NLRI) != 0 {
		t.Fatalf("unexpected NLRI %v", got.NLRI)
	}
}

func TestPrefixEncodingIsMinimal(t *testing.T) {
	// A /8 prefix must take 2 bytes (length + 1 octet), a /32 five.
	u8 := &WireUpdate{Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}}
	u32 := &WireUpdate{Withdrawn: []netip.Prefix{netip.MustParsePrefix("10.1.2.3/32")}}
	w8, _ := EncodeUpdate(u8)
	w32, _ := EncodeUpdate(u32)
	if len(w32)-len(w8) != 3 {
		t.Fatalf("prefix encoding not minimal: /8=%dB /32=%dB", len(w8), len(w32))
	}
	// Default route: zero address octets.
	u0 := &WireUpdate{Withdrawn: []netip.Prefix{netip.MustParsePrefix("0.0.0.0/0")}}
	w0, _ := EncodeUpdate(u0)
	if len(w8)-len(w0) != 1 {
		t.Fatalf("default route not minimal: /0=%dB /8=%dB", len(w0), len(w8))
	}
	got, err := DecodeUpdate(w0)
	if err != nil || got.Withdrawn[0] != netip.MustParsePrefix("0.0.0.0/0") {
		t.Fatalf("default route decode = %v, %v", got, err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	u := &WireUpdate{
		NLRI:    []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")},
		ASPath:  []topology.ASN{1, 2, 3},
		NextHop: netip.MustParseAddr("10.0.0.1"),
	}
	wire, err := EncodeUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations.
	for cut := 1; cut < len(wire); cut++ {
		if _, err := DecodeUpdate(wire[:cut]); err == nil {
			// Only acceptable if the truncated message happens to be
			// internally consistent — never true here since the header
			// length field must match the byte count.
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bad marker.
	bad := append([]byte(nil), wire...)
	bad[0] = 0
	if _, err := DecodeUpdate(bad); err == nil {
		t.Fatal("bad marker accepted")
	}
	// Wrong type.
	ka := EncodeKeepalive()
	if _, err := DecodeUpdate(ka); err == nil {
		t.Fatal("keepalive decoded as update")
	}
}

func TestMessageType(t *testing.T) {
	ka := EncodeKeepalive()
	typ, err := MessageType(ka)
	if err != nil || typ != MsgKeepalive {
		t.Fatalf("type = %d, %v", typ, err)
	}
	if _, err := MessageType([]byte{1, 2}); err == nil {
		t.Fatal("short message accepted")
	}
}

func TestUpdateToWire(t *testing.T) {
	p := netip.MustParsePrefix("184.164.245.0/24")
	a := Update{Type: Announce, Prefix: p, Route: &Route{
		Prefix: p, Path: []topology.ASN{100, 200}, MED: 5,
	}}
	w, err := a.ToWire(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.NLRI) != 1 || w.NLRI[0] != p || len(w.ASPath) != 2 || !w.HasMED || !w.HasLP {
		t.Fatalf("wire = %+v", w)
	}
	wd, err := Update{Type: Withdraw, Prefix: p}.ToWire(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(wd.Withdrawn) != 1 || len(wd.NLRI) != 0 {
		t.Fatalf("wire withdraw = %+v", wd)
	}
	if _, err := (Update{Type: Announce, Prefix: p}).ToWire(0); err == nil {
		t.Fatal("announce without route accepted")
	}
}

func randWirePrefix(r *rand.Rand) netip.Prefix {
	v := r.Uint32()
	bits := r.Intn(33)
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{
		byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v),
	}), bits).Masked()
}

// Property: encode→decode is the identity for well-formed updates.
func TestWireRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	f := func() bool {
		u := &WireUpdate{}
		for i := r.Intn(4); i > 0; i-- {
			u.Withdrawn = append(u.Withdrawn, randWirePrefix(r))
		}
		if r.Intn(2) == 0 {
			for i := 1 + r.Intn(3); i > 0; i-- {
				u.NLRI = append(u.NLRI, randWirePrefix(r))
			}
			for i := 1 + r.Intn(6); i > 0; i-- {
				u.ASPath = append(u.ASPath, topology.ASN(r.Uint32()))
			}
			u.NextHop = netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
			if r.Intn(2) == 0 {
				u.MED, u.HasMED = r.Uint32(), true
			}
			if r.Intn(2) == 0 {
				u.LocalPref, u.HasLP = r.Uint32(), true
			}
		}
		wire, err := EncodeUpdate(u)
		if err != nil {
			return false
		}
		got, err := DecodeUpdate(wire)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary input.
func TestWireDecodeFuzzSafety(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	f := func(data []byte) bool {
		DecodeUpdate(data)
		MessageType(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: r}); err != nil {
		t.Fatal(err)
	}
}
