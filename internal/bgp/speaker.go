package bgp

import (
	"net/netip"
	"slices"

	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// Speaker is the BGP process of one topology node.
type Speaker struct {
	net *Network
	// sh is the shard this speaker runs on: all of its events live on
	// sh.sim, and its interned paths and pooled payloads come from sh.
	// Unsharded networks have one shard wrapping the control simulator.
	sh    *shard
	node  *topology.Node
	feeds []FeedFunc

	// msgCount tallies UPDATE messages delivered to this speaker. Kept
	// per-speaker so shards never contend; Network.MessageCount sums.
	msgCount uint64

	// evCount tallies calendar events this speaker cost its shard:
	// deliveries addressed to it (even ones dropped by an epoch check —
	// the event still executed) plus its MRAI pacing timers. This is the
	// per-speaker share of netsim.Sim.Steps, the work profile that
	// profile-guided partitioning feeds back into PlanShardsWeighted.
	evCount uint64

	// reverse[i] is the session index by which node.Adj[i].To refers back
	// to this speaker.
	reverse []int

	// lastDeliver[i] is the latest delivery time scheduled on session i.
	// BGP runs over TCP, so updates on one session must arrive in the
	// order they were sent even though per-update processing jitter
	// varies; without this, a withdrawal could overtake an in-flight
	// announcement and strand a stale route at the neighbor forever.
	lastDeliver []netsim.Seconds
	// lastFeedDeliver orders collector-feed deliveries the same way: the
	// collector session is TCP too.
	lastFeedDeliver netsim.Seconds

	// downSess[i] is true while session i is administratively or physically
	// down (link failure, maintenance). No updates are sent or accepted on a
	// down session.
	downSess []bool
	// sessEpoch[i] counts session establishments. Deliveries scheduled under
	// an older epoch are dropped: a session reset tears down the TCP
	// connection, so in-flight updates never arrive.
	sessEpoch []uint64

	prefixes map[netip.Prefix]*prefixState

	// sorted caches KnownPrefixes' sorted output; sortedDirty is set on
	// every prefix-state insertion. Fault injection iterates the full table
	// per session flush, which re-sorted the map keys every time before the
	// cache existed.
	sorted      []netip.Prefix
	sortedDirty bool
}

// prefixState holds all per-prefix RIB and pacing state of one speaker.
type prefixState struct {
	prefix      netip.Prefix
	in          []*Route // adj-RIB-in, one slot per session
	out         []*Route // adj-RIB-out as last transmitted, per session
	nextAllowed []netsim.Seconds
	pending     []bool
	best        *Route
	origin      *OriginPolicy
	// originRoute is the loc-RIB entry representing the local origination,
	// built once per Originate call instead of on every recompute. Non-nil
	// exactly when origin is non-nil; its maximal LocalPref means it is
	// always the best route while present.
	originRoute *Route
	damp        []dampState // allocated on first flap when damping is on
}

func newSpeaker(net *Network, sh *shard, node *topology.Node) *Speaker {
	return &Speaker{
		net:         net,
		sh:          sh,
		node:        node,
		reverse:     make([]int, len(node.Adj)),
		lastDeliver: make([]netsim.Seconds, len(node.Adj)),
		downSess:    make([]bool, len(node.Adj)),
		sessEpoch:   make([]uint64, len(node.Adj)),
		prefixes:    make(map[netip.Prefix]*prefixState),
	}
}

// Node returns the topology node this speaker runs on.
func (s *Speaker) Node() *topology.Node { return s.node }

// resolveReverse computes the session index mapping into each neighbor.
// Called once by the Network after all speakers exist.
func (s *Speaker) resolveReverse() {
	for i, adj := range s.node.Adj {
		peer := s.net.topo.Node(adj.To)
		s.reverse[i] = -1
		for j, back := range peer.Adj {
			if back.To == s.node.ID {
				s.reverse[i] = j
				break
			}
		}
	}
}

func (s *Speaker) state(p netip.Prefix) *prefixState {
	st, ok := s.prefixes[p]
	if !ok {
		n := len(s.node.Adj)
		rib := make([]*Route, 2*n) // adj-RIBs-in and -out share one backing array
		st = &prefixState{
			prefix:      p,
			in:          rib[:n:n],
			out:         rib[n:],
			nextAllowed: make([]netsim.Seconds, n),
			pending:     make([]bool, n),
		}
		s.prefixes[p] = st
		s.sortedDirty = true
		s.net.m.prefixStates.Inc()
	}
	return st
}

// Best returns the current best route for p, or nil.
func (s *Speaker) Best(p netip.Prefix) *Route {
	if st, ok := s.prefixes[p]; ok {
		return st.best
	}
	return nil
}

// Originates reports whether this speaker currently originates p.
func (s *Speaker) Originates(p netip.Prefix) bool {
	st, ok := s.prefixes[p]
	return ok && st.origin != nil
}

// AdjIn returns the adj-RIB-in routes for p (nil slots for sessions with no
// route). The returned slice must not be modified.
func (s *Speaker) AdjIn(p netip.Prefix) []*Route {
	if st, ok := s.prefixes[p]; ok {
		return st.in
	}
	return nil
}

// KnownPrefixes returns every prefix with any state at this speaker, in
// sorted order. The sorted list is cached and invalidated when a new prefix
// appears, so repeated calls (session flushes walk the whole table) don't
// re-sort. The returned slice is shared: callers must not modify it or hold
// it across prefix insertions.
func (s *Speaker) KnownPrefixes() []netip.Prefix {
	if !s.sortedDirty {
		return s.sorted
	}
	s.sorted = s.sorted[:0]
	for p := range s.prefixes {
		s.sorted = append(s.sorted, p)
	}
	slices.SortFunc(s.sorted, func(a, b netip.Prefix) int {
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c
		}
		return a.Bits() - b.Bits()
	})
	s.sortedDirty = false
	return s.sorted
}

func (s *Speaker) originate(p netip.Prefix, pol *OriginPolicy) {
	st := s.state(p)
	st.origin = pol
	// Build the loc-RIB origin entry once per origination. A fresh Route is
	// mandatory even on re-origination: the previous one may be published
	// (st.best, FIBs, feeds) and published routes are immutable.
	st.originRoute = &Route{
		Prefix:      p,
		LocalPref:   1 << 20,
		MED:         pol.MED,
		OriginNode:  s.node.ID,
		learnedFrom: -1,
	}
	s.recompute(p, st)
	// A policy change (e.g. new prepend depth) may alter exports even when
	// the best route is unchanged, so always reconsider every session.
	s.exportAll(p, st)
}

func (s *Speaker) withdrawOrigin(p netip.Prefix) {
	st, ok := s.prefixes[p]
	if !ok || st.origin == nil {
		return
	}
	st.origin = nil
	st.originRoute = nil
	s.recompute(p, st)
	s.exportAll(p, st)
}

// importPref maps the session relationship to LOCAL_PREF (Gao-Rexford).
func importPref(rel topology.Rel) int {
	switch rel {
	case topology.RelCustomer:
		return PrefCustomer
	case topology.RelPeer:
		return PrefPeer
	default:
		return PrefProvider
	}
}

// receive processes an UPDATE delivered on session sess.
func (s *Speaker) receive(sess int, u Update) {
	s.msgCount++
	s.net.m.received.Inc()
	st := s.state(u.Prefix)
	hadIn := st.in[sess] != nil
	damping := s.net.cfg.Damping
	switch u.Type {
	case Announce:
		// Route-flap damping counts re-advertisements that change an
		// existing route as flaps (RFC 2439 §4.4.2).
		if damping != nil && st.in[sess] != nil && !sameWire(u.Route, st.in[sess]) {
			s.flap(st, sess, damping)
		}
		r := u.Route
		if r.ContainsASN(s.node.ASN) {
			// Receiver-side loop detection: the NLRI replaces whatever this
			// neighbor previously advertised, but the looping path is not
			// usable, so the net effect is a withdrawal of the old route.
			st.in[sess] = nil
		} else if cur := st.in[sess]; cur != nil && sameWire(r, cur) {
			// Duplicate re-advertisement: the adj-RIB-in entry would come
			// out identical (LocalPref and learnedFrom depend only on the
			// session), so keep the existing one.
		} else {
			st.in[sess] = importCopy(r, importPref(s.node.Adj[sess].Rel), sess)
		}
	case Withdraw:
		if st.in[sess] == nil {
			return
		}
		if damping != nil {
			s.flap(st, sess, damping)
		}
		st.in[sess] = nil
	}
	if hasIn := st.in[sess] != nil; hasIn != hadIn {
		if hasIn {
			s.net.m.adjIn.Add(1)
		} else {
			s.net.m.adjIn.Add(-1)
		}
	}
	s.recompute(u.Prefix, st)
	s.exportAll(u.Prefix, st)
}

// importCopy builds the adj-RIB-in entry for a received route. The route is
// shared with the sender's adj-RIB-out and immutable; the shallow struct
// copy holds the receiver-local LocalPref and learnedFrom while Path and
// Communities stay shared.
//
//cdnlint:mutates-route the copy is unpublished until returned
func importCopy(r *Route, localPref, sess int) *Route {
	c := *r
	c.LocalPref = localPref
	c.learnedFrom = sess
	return &c
}

// better reports whether a should be preferred over b under the standard
// BGP decision process. Both must be non-nil.
func (s *Speaker) better(a, b *Route) bool {
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	// MED, compared only between routes from the same neighbor AS.
	aAS, bAS := s.neighborAS(a), s.neighborAS(b)
	if aAS == bAS && a.MED != b.MED {
		return a.MED < b.MED
	}
	// Deterministic tiebreaks: lowest neighbor ASN, then lowest session.
	if aAS != bAS {
		return aAS < bAS
	}
	return a.learnedFrom < b.learnedFrom
}

func (s *Speaker) neighborAS(r *Route) topology.ASN {
	if r.learnedFrom < 0 {
		return s.node.ASN
	}
	return s.net.topo.Node(s.node.Adj[r.learnedFrom].To).ASN
}

// recompute reselects the best route for p and fires FIB/feed callbacks on
// change.
func (s *Speaker) recompute(p netip.Prefix, st *prefixState) {
	var best *Route
	if st.origin != nil {
		// Locally originated routes always win (empty AS path, maximal
		// preference — the analogue of administrative weight).
		best = st.originRoute
	}
	damping := s.net.cfg.Damping
	for sess, r := range st.in {
		if r == nil {
			continue
		}
		if damping != nil && s.dampSuppressed(st, sess, damping) {
			continue
		}
		if best == nil || s.better(r, best) {
			best = r
		}
	}
	if routesEquivalent(best, st.best) {
		return
	}
	st.best = best
	for _, fn := range s.net.onBest {
		fn(s.node.ID, p, best)
	}
	s.notifyFeeds(p, best)
}

// routesEquivalent compares loc-RIB entries including the next hop.
func routesEquivalent(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.learnedFrom == b.learnedFrom && a.LocalPref == b.LocalPref && sameWire(a, b)
}

func (s *Speaker) notifyFeeds(p netip.Prefix, best *Route) {
	if len(s.feeds) == 0 {
		return
	}
	var u Update
	if best == nil {
		u = Update{Type: Withdraw, Prefix: p}
	} else {
		// best is published and therefore immutable; the feed shares it.
		u = Update{Type: Announce, Prefix: p, Route: best}
	}
	// Collector sessions see the update after a processing delay, like any
	// other neighbor, but in sending order (the session is TCP).
	at := s.sh.sim.Now() + s.sh.sim.Jitter(s.net.cfg.ProcMin, s.net.cfg.ProcMax)
	if at <= s.lastFeedDeliver {
		at = s.lastFeedDeliver + 1e-6
	}
	s.lastFeedDeliver = at
	peer := s.node.ID
	if s.net.runner != nil {
		// Feed consumers live on the control simulator; buffer the delivery
		// for the barrier merge. Its timestamp is at least one processing
		// delay past the send, which is never before the control clock.
		s.sh.feedOut = append(s.sh.feedOut, feedMsg{at: at, sp: s, peer: peer, u: u})
		return
	}
	feeds := s.feeds
	s.net.sim.At(at, func() {
		for _, fn := range feeds {
			fn(s.net.sim.Now(), peer, u)
		}
	})
}

// exportAll reconsiders what should be advertised to every session.
func (s *Speaker) exportAll(p netip.Prefix, st *prefixState) {
	for sess := range s.node.Adj {
		s.export(p, st, sess)
	}
}

// exportIntent describes what should be on the wire toward one session:
// an interned path, a shared (immutable) communities slice, and the scalar
// attributes. Computing an intent never allocates — a Route is materialized
// only when the wire state actually changes.
type exportIntent struct {
	path       []topology.ASN
	comm       []uint32
	med        int
	originNode topology.NodeID
}

// desiredExport computes the export intent toward session sess, or ok=false
// if nothing should be advertised.
func (s *Speaker) desiredExport(st *prefixState, sess int) (it exportIntent, ok bool) {
	best := st.best
	if best == nil {
		return exportIntent{}, false
	}
	adj := s.node.Adj[sess]

	if best.learnedFrom == -1 {
		// Locally originated: apply the origination policy.
		pol := st.origin
		prepend := pol.Prepend
		if np, ok := pol.PerNeighbor[adj.To]; ok {
			if !np.Export {
				return exportIntent{}, false
			}
			prepend = np.Prepend
		}
		return exportIntent{
			path:       s.sh.intern.repeat(s.node.ASN, 1+prepend),
			comm:       pol.Communities,
			med:        pol.MED,
			originNode: s.node.ID,
		}, true
	}

	// Transit route. Split horizon: never send a route back over the
	// session it was learned from.
	if best.learnedFrom == sess {
		return exportIntent{}, false
	}
	// Well-known communities (RFC 1997): NO_ADVERTISE stops the route
	// here; NO_EXPORT confines it to the AS that received it (every
	// speaker is its own AS at this granularity, so both stop export).
	if best.HasCommunity(CommunityNoAdvertise) || best.HasCommunity(CommunityNoExport) {
		return exportIntent{}, false
	}
	// Gao-Rexford export: routes learned from peers or providers are only
	// exported to customers.
	learnedRel := s.node.Adj[best.learnedFrom].Rel
	if learnedRel != topology.RelCustomer && adj.Rel != topology.RelCustomer {
		return exportIntent{}, false
	}
	// Sender-side loop avoidance: the neighbor would reject a path
	// containing its own ASN.
	if best.ContainsASN(s.net.topo.Node(adj.To).ASN) {
		return exportIntent{}, false
	}
	return exportIntent{
		path:       s.sh.intern.extend(s.node.ASN, best.Path),
		comm:       best.Communities,
		med:        0,
		originNode: best.OriginNode,
	}, true
}

// samePath compares AS paths with a pointer-equality fast path: interned
// paths with equal content are the same slice, so the content comparison
// only runs for slices that predate the intern table (e.g. out of an old
// snapshot).
func samePath(a, b []topology.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	return slices.Equal(a, b)
}

func sameComm(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	return slices.Equal(a, b)
}

// intentMatches reports whether out (the last transmitted route on the
// session) already carries the intent on the wire. The prefix is implied:
// out routes are built for the prefix of the state they live in.
func intentMatches(it exportIntent, out *Route) bool {
	return out != nil && out.MED == it.med && samePath(out.Path, it.path) &&
		sameComm(out.Communities, it.comm)
}

// export transmits the desired state toward session sess, honoring MRAI for
// advertisements. Withdrawals are sent immediately.
func (s *Speaker) export(p netip.Prefix, st *prefixState, sess int) {
	if s.downSess[sess] {
		// Nothing can be sent on a down session; the full re-advertisement
		// at session establishment brings the neighbor up to date.
		return
	}
	it, want := s.desiredExport(st, sess)
	if want {
		if intentMatches(it, st.out[sess]) {
			return
		}
	} else if st.out[sess] == nil {
		return
	}
	now := s.sh.sim.Now()
	if !want && !s.net.cfg.PaceWithdrawals {
		st.out[sess] = nil
		s.send(sess, Update{Type: Withdraw, Prefix: p})
		return
	}
	if now >= st.nextAllowed[sess] {
		st.nextAllowed[sess] = now + s.mraiInterval()
		if !want {
			st.out[sess] = nil
			s.send(sess, Update{Type: Withdraw, Prefix: p})
		} else {
			r := &Route{
				Prefix: p, Path: it.path, MED: it.med,
				OriginNode: it.originNode, Communities: it.comm,
			}
			st.out[sess] = r
			s.send(sess, Update{Type: Announce, Prefix: p, Route: r})
		}
		return
	}
	if !st.pending[sess] {
		st.pending[sess] = true
		pe := s.sh.newPendingExport()
		pe.s, pe.st, pe.sess = s, st, sess
		s.sh.sim.AtCall(st.nextAllowed[sess], runPendingExport, pe)
	}
}

func (s *Speaker) mraiInterval() netsim.Seconds {
	cfg := s.net.cfg
	if cfg.MRAI <= 0 {
		return 0
	}
	j := cfg.MRAIJitter
	return cfg.MRAI * (1 + s.sh.sim.Jitter(-j, j))
}

// send delivers an update to the neighbor on session sess after link and
// processing delay.
//
//cdnlint:allocfree pinned by TestSendPathZeroAllocs
func (s *Speaker) send(sess int, u Update) {
	adj := s.node.Adj[sess]
	peer := s.net.speakers[adj.To]
	rev := s.reverse[sess]
	if rev < 0 {
		return // asymmetric link; Validate prevents this
	}
	s.net.m.sent.Inc()
	if u.Type == Withdraw {
		s.net.m.sentWdr.Inc()
	} else {
		s.net.m.sentAnn.Inc()
	}
	// The route rides the wire as-is: it is published (stored in this
	// speaker's adj-RIB-out) and therefore immutable, so the receiver can
	// share it. No clone.
	delay := adj.Delay + s.sh.sim.Jitter(s.net.cfg.ProcMin, s.net.cfg.ProcMax)
	at := s.sh.sim.Now() + delay
	// Preserve TCP's in-order delivery on the session.
	if at <= s.lastDeliver[sess] {
		at = s.lastDeliver[sess] + 1e-6
	}
	s.lastDeliver[sess] = at
	if peer.sh != s.sh {
		// Cross-shard: buffer by value for the barrier merge. The delivery
		// time carries at least the lookahead window of latency, so it lands
		// strictly inside a later round on the destination shard.
		s.sh.sendCross(at, peer, rev, u)
		return
	}
	// The delivery payload captures the receiver-side session epoch: if the
	// session is reset (or the link fails) while this update is in flight,
	// the TCP connection it rode on is gone and the update must never be
	// delivered (checked by runDelivery).
	d := s.sh.newDelivery()
	d.peer, d.rev, d.epoch, d.u = peer, rev, peer.sessEpoch[rev], u
	s.sh.sim.AtCall(at, runDelivery, d)
}

// flushSession clears all per-session RIB state for sess — adj-RIB-in,
// adj-RIB-out, and MRAI pacing — as a session teardown does, then
// re-selects and re-exports every prefix whose best route was lost.
// Iteration is over sorted prefixes so fault injection stays deterministic.
func (s *Speaker) flushSession(sess int) {
	for _, p := range s.KnownPrefixes() {
		st := s.prefixes[p]
		st.out[sess] = nil
		st.nextAllowed[sess] = 0
		if st.in[sess] == nil {
			continue
		}
		st.in[sess] = nil
		s.net.m.adjIn.Add(-1)
		s.recompute(p, st)
		s.exportAll(p, st)
	}
}

// readvertiseSession replays the full table toward sess, as a speaker does
// after session establishment (RFC 4271 §9.4: initial exchange of the
// entire Adj-RIB-Out). adj-RIB-out for the session is empty after the
// flush, so export sends everything the policy allows.
func (s *Speaker) readvertiseSession(sess int) {
	for _, p := range s.KnownPrefixes() {
		s.export(p, s.prefixes[p], sess)
	}
}
