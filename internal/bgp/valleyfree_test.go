package bgp

import (
	"math/rand"
	"net/netip"
	"testing"

	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

// randomHierarchy builds a random valley-free-wirable topology: a small
// tier-1 clique, mid ASes multihomed to tier-1s with random peering, and
// leaf ASes multihomed to mids.
func randomHierarchy(t *testing.T, r *rand.Rand) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	nTier, nMid, nLeaf := 2+r.Intn(3), 4+r.Intn(6), 6+r.Intn(10)
	var tiers, mids, leaves []topology.NodeID
	asn := topology.ASN(100)
	add := func(name string, class topology.Class) topology.NodeID {
		asn++
		return b.AddNode(asn, name, class, topology.Point{X: r.Float64() * 10, Y: r.Float64() * 10})
	}
	for i := 0; i < nTier; i++ {
		tiers = append(tiers, add(name("t", i), topology.ClassTier1))
	}
	for i := 0; i < len(tiers); i++ {
		for j := i + 1; j < len(tiers); j++ {
			b.Link(tiers[i], tiers[j], topology.RelPeer, 0.002)
		}
	}
	for i := 0; i < nMid; i++ {
		id := add(name("m", i), topology.ClassTransit)
		mids = append(mids, id)
		b.Link(id, tiers[r.Intn(len(tiers))], topology.RelProvider, 0.002)
		if r.Intn(2) == 0 {
			p := tiers[r.Intn(len(tiers))]
			if !b.Linked(id, p) {
				b.Link(id, p, topology.RelProvider, 0.002)
			}
		}
	}
	for i := 0; i < nMid; i++ {
		for j := i + 1; j < nMid; j++ {
			if r.Intn(4) == 0 {
				b.Link(mids[i], mids[j], topology.RelPeer, 0.002)
			}
		}
	}
	for i := 0; i < nLeaf; i++ {
		id := add(name("l", i), topology.ClassStub)
		leaves = append(leaves, id)
		b.Link(id, mids[r.Intn(len(mids))], topology.RelProvider, 0.002)
		if r.Intn(2) == 0 {
			p := mids[r.Intn(len(mids))]
			if !b.Linked(id, p) {
				b.Link(id, p, topology.RelProvider, 0.002)
			}
		}
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func name(prefix string, i int) string {
	return prefix + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// valleyFree verifies a best path seen from the perspective of the node
// holding it: walking from the holder toward the origin, link directions
// must follow the valley-free pattern — zero or more "down or lateral
// transitions are constrained": formally, after traversing a
// customer-direction (down) link, only down links may follow, and at most
// one peer link may appear, only before any down link... walking
// origin→holder: up*(peer?)down*.
func valleyFree(t *testing.T, topo *topology.Topology, holder topology.NodeID, path []topology.NodeID) bool {
	t.Helper()
	// path: holder, next, ..., origin. Walk origin → holder so the
	// canonical up*(peer?)down* pattern applies to export direction.
	rev := make([]topology.NodeID, len(path))
	for i := range path {
		rev[i] = path[len(path)-1-i]
	}
	phase := 0 // 0 = ascending (customer→provider), 1 = after peer, 2 = descending
	for i := 0; i+1 < len(rev); i++ {
		rel, ok := topo.Adjacent(rev[i], rev[i+1])
		if !ok {
			t.Fatalf("path hops %d-%d not adjacent", rev[i], rev[i+1])
		}
		switch rel {
		case topology.RelProvider: // moving up
			if phase != 0 {
				return false
			}
		case topology.RelPeer:
			if phase != 0 {
				return false
			}
			phase = 1
		case topology.RelCustomer: // moving down
			phase = 2
		}
	}
	return true
}

// TestValleyFreeProperty checks that after convergence on random
// hierarchies, every node's best-path walk to the origin is valley-free:
// the Gao-Rexford export rules must never produce a path that transits a
// customer or peer improperly.
func TestValleyFreeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	prefix := netip.MustParsePrefix("192.0.2.0/24")
	for trial := 0; trial < 25; trial++ {
		topo := randomHierarchy(t, r)
		sim := netsim.New(int64(trial))
		net := New(sim, topo, Config{MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.01, ProcMax: 0.05})
		origin := topology.NodeID(r.Intn(topo.Len()))
		net.Originate(origin, prefix, nil)
		sim.Run()

		for _, n := range topo.Nodes {
			// Reconstruct the forwarding walk from n to the origin.
			var walk []topology.NodeID
			cur := n.ID
			for {
				walk = append(walk, cur)
				sp := net.Speaker(cur)
				best := sp.Best(prefix)
				if best == nil {
					walk = nil
					break
				}
				if best.LearnedFrom() < 0 {
					break
				}
				cur = sp.Node().Adj[best.LearnedFrom()].To
				if len(walk) > topo.Len() {
					t.Fatalf("trial %d: forwarding loop from %s", trial, n.Name)
				}
			}
			if walk == nil {
				continue
			}
			if !valleyFree(t, topo, n.ID, walk) {
				t.Fatalf("trial %d: valley in best path from %s: %v", trial, n.Name, walk)
			}
		}
	}
}
