package bgp

import (
	"bestofboth/internal/topology"
)

// pathIntern deduplicates AS-path slices within one Network. Routes are
// immutable after publish (see the Route doc), so every speaker that exports
// the same path content can share one slice: prepend runs at an origin and
// the head+tail extension a transit speaker produces both collapse to a
// single allocation per distinct path in the network's lifetime.
//
// Keys are the byte encoding of the path (4 bytes per ASN, little-endian),
// built in a reusable scratch buffer; the map lookup via m[string(key)] is
// recognized by the compiler and does not allocate, so interning an
// already-known path is allocation-free. The table is per-shard and each
// shard runs single-threaded (one Sim), so no locking is needed.
type pathIntern struct {
	m   map[string][]topology.ASN
	key []byte
}

func newPathIntern() pathIntern {
	return pathIntern{m: make(map[string][]topology.ASN), key: make([]byte, 0, 256)}
}

//cdnlint:allocfree
func (pi *pathIntern) appendASN(a topology.ASN) {
	pi.key = append(pi.key, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
}

// repeat returns the interned path consisting of n copies of asn — the shape
// every origination produces (one mandatory copy plus prepending).
//
//cdnlint:allocfree known paths are returned from the table without allocating
func (pi *pathIntern) repeat(asn topology.ASN, n int) []topology.ASN {
	pi.key = pi.key[:0]
	for i := 0; i < n; i++ {
		pi.appendASN(asn)
	}
	if p, ok := pi.m[string(pi.key)]; ok {
		return p
	}
	p := make([]topology.ASN, n)
	for i := range p {
		p[i] = asn
	}
	pi.m[string(pi.key)] = p
	return p
}

// extend returns the interned path head·tail — the shape every transit
// export produces (own ASN prepended to the best route's path).
//
//cdnlint:allocfree known paths are returned from the table without allocating
func (pi *pathIntern) extend(head topology.ASN, tail []topology.ASN) []topology.ASN {
	pi.key = pi.key[:0]
	pi.appendASN(head)
	for _, a := range tail {
		pi.appendASN(a)
	}
	if p, ok := pi.m[string(pi.key)]; ok {
		return p
	}
	p := make([]topology.ASN, 1+len(tail))
	p[0] = head
	copy(p[1:], tail)
	pi.m[string(pi.key)] = p
	return p
}

// seed registers an existing immutable path under its content so later
// interning of the same content returns this exact slice. Restore seeds the
// table with the snapshot's adj-RIB-out paths: post-restore exports of
// unchanged routes then hit the pointer-equality fast path in samePath.
func (pi *pathIntern) seed(p []topology.ASN) {
	if len(p) == 0 {
		return
	}
	pi.key = pi.key[:0]
	for _, a := range p {
		pi.appendASN(a)
	}
	if _, ok := pi.m[string(pi.key)]; !ok {
		pi.m[string(pi.key)] = p
	}
}

// delivery is the recycled payload of a send→receive event: the scheduled
// arrival of one UPDATE at a neighbor. Pooling these (plus netsim.AtCall)
// removes the per-message closure allocation on the hottest path in the
// simulator.
type delivery struct {
	peer  *Speaker
	rev   int
	epoch uint64
	u     Update
}

// runDelivery is the shared event callback for all pooled deliveries. The
// payload is returned to the free-list before the receive runs, so sends
// triggered by this very receive can already reuse it.
//
//cdnlint:allocfree
func runDelivery(a any) {
	d := a.(*delivery)
	peer, rev, epoch, u := d.peer, d.rev, d.epoch, d.u
	sh := peer.sh
	*d = delivery{}
	sh.freeDeliv = append(sh.freeDeliv, d)
	peer.evCount++
	// A session reset or link failure while the update was in flight tears
	// down the TCP connection it rode on; the update must never arrive.
	if peer.sessEpoch[rev] != epoch {
		return
	}
	peer.receive(rev, u)
}

// pendingExport is the recycled payload of an MRAI-pacing timer: re-run
// export for one (prefix, session) when its advertisement interval expires.
type pendingExport struct {
	s    *Speaker
	st   *prefixState
	sess int
}

//cdnlint:allocfree
func runPendingExport(a any) {
	pe := a.(*pendingExport)
	s, st, sess := pe.s, pe.st, pe.sess
	sh := s.sh
	*pe = pendingExport{}
	sh.freePend = append(sh.freePend, pe)
	s.evCount++
	st.pending[sess] = false
	s.export(st.prefix, st, sess)
}
