package bgp

import (
	"math/rand"
	"net/netip"
	"testing"

	"bestofboth/internal/netsim"
	"bestofboth/internal/topology"
)

var testPrefix = netip.MustParsePrefix("184.164.244.0/24")

// quickCfg keeps unit tests fast while preserving MRAI >> processing delay.
func quickCfg() Config {
	return Config{MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.01, ProcMax: 0.05}
}

// lineTopo builds O -- A -- B (O customer of A, A customer of B).
func lineTopo(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	o := b.AddNode(100, "O", topology.ClassStub, topology.Point{})
	a := b.AddNode(200, "A", topology.ClassTransit, topology.Point{X: 1})
	bb := b.AddNode(300, "B", topology.ClassTier1, topology.Point{X: 2})
	b.Link(o, a, topology.RelProvider, 0.001)
	b.Link(a, bb, topology.RelProvider, 0.001)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestAnnouncePropagatesUpstream(t *testing.T) {
	topo := lineTopo(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	if err := net.Originate(0, testPrefix, nil); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	for id := topology.NodeID(0); id < 3; id++ {
		best := net.Speaker(id).Best(testPrefix)
		if best == nil {
			t.Fatalf("node %d has no route", id)
		}
	}
	// B's path should be A then O.
	bPath := net.Speaker(2).Best(testPrefix).Path
	want := []topology.ASN{200, 100}
	if len(bPath) != 2 || bPath[0] != want[0] || bPath[1] != want[1] {
		t.Fatalf("B path = %v, want %v", bPath, want)
	}
	if net.Speaker(2).Best(testPrefix).OriginNode != 0 {
		t.Fatal("origin node not carried")
	}
}

func TestWithdrawRemovesRoutes(t *testing.T) {
	topo := lineTopo(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	net.Originate(0, testPrefix, nil)
	sim.Run()
	net.Withdraw(0, testPrefix)
	sim.Run()
	for id := topology.NodeID(0); id < 3; id++ {
		if best := net.Speaker(id).Best(testPrefix); best != nil {
			t.Fatalf("node %d still has route %v after withdrawal", id, best.Path)
		}
	}
}

// diamond builds the relationship diamond used by preference tests:
//
//	  T (tier1)
//	 /  \   (C and D are customers of T)
//	C    D
//	 \  /   (O is customer of C and D)
//	  O
//
// plus a peer link C -- D.
func diamond(t *testing.T) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder()
	tt := b.AddNode(10, "T", topology.ClassTier1, topology.Point{})
	c := b.AddNode(20, "C", topology.ClassTransit, topology.Point{X: 1})
	d := b.AddNode(30, "D", topology.ClassTransit, topology.Point{X: 2})
	o := b.AddNode(40, "O", topology.ClassStub, topology.Point{X: 3})
	b.Link(c, tt, topology.RelProvider, 0.001)
	b.Link(d, tt, topology.RelProvider, 0.001)
	b.Link(c, d, topology.RelPeer, 0.001)
	b.Link(o, c, topology.RelProvider, 0.001)
	b.Link(o, d, topology.RelProvider, 0.001)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestCustomerRoutePreferredOverPeer(t *testing.T) {
	topo := diamond(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	net.Originate(3, testPrefix, nil) // O originates
	sim.Run()

	// C hears [O] from its customer O and [D O] from its peer D. It must
	// choose the customer route.
	best := net.Speaker(1).Best(testPrefix)
	if best == nil || len(best.Path) != 1 || best.Path[0] != 40 {
		t.Fatalf("C best = %+v, want direct customer path [40]", best)
	}
	if best.LocalPref != PrefCustomer {
		t.Fatalf("C localpref = %d, want %d", best.LocalPref, PrefCustomer)
	}
}

func TestPeerRouteNotExportedToPeerOrProvider(t *testing.T) {
	// Valley-free: D's route via its peer C must not be exported to D's
	// provider T. We engineer this by having only C originate.
	topo := diamond(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	net.Originate(1, testPrefix, nil) // C originates
	sim.Run()

	// D learns from peer C; T must have learned only from C (its customer),
	// never a path through D.
	tBest := net.Speaker(0).Best(testPrefix)
	if tBest == nil {
		t.Fatal("T has no route")
	}
	if len(tBest.Path) != 1 || tBest.Path[0] != 20 {
		t.Fatalf("T path = %v, want [20]", tBest.Path)
	}
	for _, r := range net.Speaker(0).AdjIn(testPrefix) {
		if r == nil {
			continue
		}
		if r.Path[0] == 30 {
			t.Fatalf("T received peer-learned route from D: %v (valley)", r.Path)
		}
	}
}

func TestPrependingMakesRouteLessPreferred(t *testing.T) {
	// O originates to C without prepending and to D with prepending 3.
	// T hears [C O] and [D O O O O] and must pick the C path.
	topo := diamond(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	pol := &OriginPolicy{PerNeighbor: map[topology.NodeID]NeighborPolicy{
		1: {Export: true, Prepend: 0},
		2: {Export: true, Prepend: 3},
	}}
	net.Originate(3, testPrefix, pol)
	sim.Run()

	tBest := net.Speaker(0).Best(testPrefix)
	if tBest == nil {
		t.Fatal("T has no route")
	}
	if tBest.Path[0] != 20 {
		t.Fatalf("T chose %v, want path via C (20)", tBest.Path)
	}
	// Verify the prepended path exists in T's adj-RIB-in via D.
	var viaD *Route
	for _, r := range net.Speaker(0).AdjIn(testPrefix) {
		if r != nil && r.Path[0] == 30 {
			viaD = r
		}
	}
	if viaD == nil {
		t.Fatal("T lacks the backup path via D")
	}
	if len(viaD.Path) != 5 { // D + O×4
		t.Fatalf("backup path = %v, want len 5", viaD.Path)
	}
}

func TestScopedExportExcludesNeighbor(t *testing.T) {
	topo := diamond(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	pol := &OriginPolicy{PerNeighbor: map[topology.NodeID]NeighborPolicy{
		2: {Export: false},
	}}
	net.Originate(3, testPrefix, pol) // O announces to C only
	sim.Run()

	for _, r := range net.Speaker(2).AdjIn(testPrefix) {
		if r != nil && len(r.Path) == 1 {
			t.Fatalf("D received direct route %v despite Export=false", r.Path)
		}
	}
	// D should still reach the prefix via its peer C.
	if net.Speaker(2).Best(testPrefix) == nil {
		t.Fatal("D unreachable; expected route via peer C")
	}
}

func TestLoopPrevention(t *testing.T) {
	topo := diamond(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	net.Originate(3, testPrefix, nil)
	sim.Run()
	// No node's best path may contain a repeated ASN.
	for id := topology.NodeID(0); id < 4; id++ {
		best := net.Speaker(id).Best(testPrefix)
		if best == nil {
			continue
		}
		seen := map[topology.ASN]bool{}
		for _, asn := range best.Path {
			if asn != best.Path[0] && seen[asn] {
				t.Fatalf("node %d best path %v revisits %d", id, best.Path, asn)
			}
			seen[asn] = true
		}
		if best.ContainsASN(net.Speaker(id).Node().ASN) {
			t.Fatalf("node %d accepted a path with its own ASN: %v", id, best.Path)
		}
	}
}

func TestAnycastFailoverShiftsOrigin(t *testing.T) {
	// Two origins for the same prefix; withdrawing one must leave all
	// nodes routed to the other.
	topo := diamond(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	net.Originate(3, testPrefix, nil) // O
	net.Originate(0, testPrefix, nil) // T also originates (anycast)
	sim.Run()

	cBest := net.Speaker(1).Best(testPrefix)
	if cBest == nil || cBest.OriginNode != 3 {
		t.Fatalf("C should prefer customer origin O, got %+v", cBest)
	}
	// Track when each node's best route settles on the surviving origin.
	settled := map[topology.NodeID]float64{}
	net.OnBestChange(func(node topology.NodeID, p netip.Prefix, r *Route) {
		if r != nil && r.OriginNode == 0 {
			settled[node] = sim.Now()
		}
	})
	start := sim.Now()
	net.Withdraw(3, testPrefix)
	sim.Run()

	for id := topology.NodeID(1); id < 4; id++ {
		best := net.Speaker(id).Best(testPrefix)
		if best == nil {
			t.Fatalf("node %d unreachable after anycast failover", id)
		}
		if best.OriginNode != 0 {
			t.Fatalf("node %d routed to origin %d, want 0", id, best.OriginNode)
		}
	}
	// Transit nodes C and D must regain a valid route quickly: withdrawals
	// are unpaced and the alternative origin already exists in their RIBs.
	for _, id := range []topology.NodeID{1, 2} {
		at, ok := settled[id]
		if !ok {
			t.Fatalf("node %d never settled on surviving origin", id)
		}
		if at-start > 5 {
			t.Fatalf("node %d took %.1fs to reselect; anycast failover should be fast", id, at-start)
		}
	}
}

func TestWithdrawalConvergenceSlowerThanAnnouncement(t *testing.T) {
	// Multihomed redundancy creates stale alternatives, so full withdrawal
	// requires path exploration paced by MRAI.
	b := topology.NewBuilder()
	t1 := b.AddNode(10, "T1", topology.ClassTier1, topology.Point{})
	t2 := b.AddNode(11, "T2", topology.ClassTier1, topology.Point{X: 1})
	a := b.AddNode(20, "A", topology.ClassTransit, topology.Point{Y: 1})
	c := b.AddNode(21, "C", topology.ClassTransit, topology.Point{Y: 2})
	o := b.AddNode(30, "O", topology.ClassStub, topology.Point{Y: 3})
	b.Link(t1, t2, topology.RelPeer, 0.001)
	b.Link(a, t1, topology.RelProvider, 0.001)
	b.Link(a, t2, topology.RelProvider, 0.001)
	b.Link(c, t1, topology.RelProvider, 0.001)
	b.Link(c, t2, topology.RelProvider, 0.001)
	b.Link(o, a, topology.RelProvider, 0.001)
	b.Link(o, c, topology.RelProvider, 0.001)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	sim := netsim.New(3)
	net := New(sim, topo, quickCfg())
	start := sim.Now()
	net.Originate(4, testPrefix, nil)
	sim.Run()
	announceTime := sim.Now() - start

	start = sim.Now()
	net.Withdraw(4, testPrefix)
	sim.Run()
	withdrawTime := sim.Now() - start

	for id := topology.NodeID(0); id < 5; id++ {
		if net.Speaker(id).Best(testPrefix) != nil {
			t.Fatalf("node %d retains route after full withdrawal", id)
		}
	}
	if withdrawTime < 3*announceTime {
		t.Fatalf("withdrawal convergence (%.2fs) not slower than announcement (%.2fs); path exploration missing",
			withdrawTime, announceTime)
	}
}

func TestFeedReceivesUpdates(t *testing.T) {
	topo := lineTopo(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	var events []Update
	var times []float64
	if err := net.AttachFeed(2, func(now netsim.Seconds, peer topology.NodeID, u Update) {
		events = append(events, u)
		times = append(times, now)
	}); err != nil {
		t.Fatal(err)
	}
	net.Originate(0, testPrefix, nil)
	sim.Run()
	net.Withdraw(0, testPrefix)
	sim.Run()

	if len(events) != 2 {
		t.Fatalf("feed got %d events, want announce+withdraw", len(events))
	}
	if events[0].Type != Announce || events[1].Type != Withdraw {
		t.Fatalf("feed order wrong: %v %v", events[0].Type, events[1].Type)
	}
	if times[1] <= times[0] {
		t.Fatal("feed timestamps not increasing")
	}
}

func TestBestChangeCallback(t *testing.T) {
	topo := lineTopo(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	changes := map[topology.NodeID]int{}
	net.OnBestChange(func(node topology.NodeID, p netip.Prefix, r *Route) {
		changes[node]++
	})
	net.Originate(0, testPrefix, nil)
	sim.Run()
	if changes[0] == 0 || changes[1] == 0 || changes[2] == 0 {
		t.Fatalf("best-change callbacks missing: %v", changes)
	}
}

func TestMEDComparedSameNeighborAS(t *testing.T) {
	// O connects twice to provider A? Not supported (one session per pair),
	// so exercise MED via the decision function directly.
	topo := diamond(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	s := net.Speaker(0)
	a := &Route{Prefix: testPrefix, Path: []topology.ASN{20, 40}, LocalPref: 300, MED: 10, learnedFrom: 0}
	b := &Route{Prefix: testPrefix, Path: []topology.ASN{20, 40}, LocalPref: 300, MED: 5, learnedFrom: 0}
	if s.better(a, b) {
		t.Fatal("higher MED preferred")
	}
	if !s.better(b, a) {
		t.Fatal("lower MED not preferred")
	}
}

func TestDeterministicConvergence(t *testing.T) {
	run := func() (uint64, string) {
		topo, err := topology.Generate(topology.GenConfig{Seed: 5, NumStub: 60, NumEyeball: 40, NumUniversity: 8})
		if err != nil {
			t.Fatal(err)
		}
		sim := netsim.New(9)
		net := New(sim, topo, quickCfg())
		site := topo.NodeByName("cdn-ams")
		net.Originate(site.ID, testPrefix, nil)
		sim.Run()
		// Fingerprint: concatenate every node's best path.
		var fp string
		for _, n := range topo.Nodes {
			if best := net.Speaker(n.ID).Best(testPrefix); best != nil {
				for _, a := range best.Path {
					fp += string(rune(a % 1000))
				}
				fp += "|"
			} else {
				fp += "-|"
			}
		}
		return net.MessageCount(), fp
	}
	m1, f1 := run()
	m2, f2 := run()
	if m1 != m2 || f1 != f2 {
		t.Fatalf("non-deterministic convergence: msgs %d vs %d, fingerprints equal=%v", m1, m2, f1 == f2)
	}
}

// TestSteadyStateForwardingConsistency verifies that after convergence, for
// every node with a best route, following next-hops reaches the originator
// without loops — the property that makes catchment measurement meaningful.
func TestSteadyStateForwardingConsistency(t *testing.T) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 11, NumStub: 100, NumEyeball: 60, NumUniversity: 12})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(2)
	net := New(sim, topo, quickCfg())
	site := topo.NodeByName("cdn-sea2")
	net.Originate(site.ID, testPrefix, nil)
	sim.Run()

	reached := 0
	for _, n := range topo.Nodes {
		cur := n.ID
		visited := map[topology.NodeID]bool{}
		for {
			if visited[cur] {
				t.Fatalf("forwarding loop starting at %s", n.Name)
			}
			visited[cur] = true
			sp := net.Speaker(cur)
			best := sp.Best(testPrefix)
			if best == nil {
				break
			}
			if best.learnedFrom == -1 {
				if cur != site.ID {
					t.Fatalf("unexpected originator %d", cur)
				}
				reached++
				break
			}
			cur = sp.Node().Adj[best.learnedFrom].To
		}
	}
	if reached < topo.Len()*9/10 {
		t.Fatalf("only %d/%d nodes reach the origin at steady state", reached, topo.Len())
	}
}

// TestNoStaleRoutesAfterFullWithdrawal is a regression test for a FIFO
// violation: without per-session in-order delivery, a withdrawal could
// overtake an in-flight announcement and strand stale routes forever.
func TestNoStaleRoutesAfterFullWithdrawal(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		topo, err := topology.Generate(topology.GenConfig{Seed: 3, NumStub: 60, NumEyeball: 40, NumUniversity: 8})
		if err != nil {
			t.Fatal(err)
		}
		sim := netsim.New(seed)
		// Wide processing jitter maximizes reordering opportunities.
		net := New(sim, topo, Config{MRAI: 30, MRAIJitter: 0.2, ProcMin: 0.05, ProcMax: 0.5})
		site := topo.NodeByName("cdn-atl")
		net.Originate(site.ID, testPrefix, nil)
		sim.Run()
		net.Withdraw(site.ID, testPrefix)
		sim.Run()
		for _, n := range topo.Nodes {
			if best := net.Speaker(n.ID).Best(testPrefix); best != nil {
				t.Fatalf("seed %d: node %s retains stale route %v after full withdrawal",
					seed, n.Name, best.Path)
			}
		}
	}
}

func TestOriginateUnknownNode(t *testing.T) {
	topo := lineTopo(t)
	net := New(netsim.New(1), topo, quickCfg())
	if err := net.Originate(99, testPrefix, nil); err == nil {
		t.Fatal("originate on unknown node did not error")
	}
	if err := net.AttachFeed(99, nil); err == nil {
		t.Fatal("attach feed on unknown node did not error")
	}
}

func TestWithdrawNonOriginatedIsNoop(t *testing.T) {
	topo := lineTopo(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	net.Withdraw(1, testPrefix) // never originated
	sim.Run()
	if net.MessageCount() != 0 {
		t.Fatalf("no-op withdraw generated %d messages", net.MessageCount())
	}
}

func TestKnownPrefixesSorted(t *testing.T) {
	topo := lineTopo(t)
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	p2 := netip.MustParsePrefix("10.0.0.0/8")
	net.Originate(0, testPrefix, nil)
	net.Originate(0, p2, nil)
	sim.Run()
	ps := net.Speaker(0).KnownPrefixes()
	if len(ps) != 2 || ps[0] != p2 || ps[1] != testPrefix {
		t.Fatalf("KnownPrefixes = %v", ps)
	}
}

func TestRouteClone(t *testing.T) {
	r := &Route{Prefix: testPrefix, Path: []topology.ASN{1, 2, 3}}
	c := r.Clone()
	c.Path[0] = 99
	if r.Path[0] == 99 {
		t.Fatal("Clone shares path storage")
	}
}

func TestCommunitiesPropagateTransitively(t *testing.T) {
	topo := lineTopo(t) // O -- A -- B
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	net.Originate(0, testPrefix, &OriginPolicy{Communities: []uint32{47065<<16 | 7}})
	sim.Run()
	best := net.Speaker(2).Best(testPrefix)
	if best == nil || !best.HasCommunity(47065<<16|7) {
		t.Fatalf("community lost in transit: %+v", best)
	}
}

func TestNoExportConfinesRoute(t *testing.T) {
	topo := lineTopo(t) // O -- A -- B
	sim := netsim.New(1)
	net := New(sim, topo, quickCfg())
	net.Originate(0, testPrefix, &OriginPolicy{Communities: []uint32{CommunityNoExport}})
	sim.Run()
	// A (O's provider) receives the route; B must never hear it.
	if net.Speaker(1).Best(testPrefix) == nil {
		t.Fatal("direct neighbor did not receive NO_EXPORT route")
	}
	if best := net.Speaker(2).Best(testPrefix); best != nil {
		t.Fatalf("NO_EXPORT route leaked to B: %v", best.Path)
	}
}

func TestNoExportWireRoundTrip(t *testing.T) {
	u := Update{Type: Announce, Prefix: testPrefix, Route: &Route{
		Prefix: testPrefix, Path: []topology.ASN{47065},
		Communities: []uint32{CommunityNoExport, 47065<<16 | 3},
	}}
	w, err := u.ToWire(0)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := EncodeUpdate(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Community) != 2 || got.Community[0] != CommunityNoExport {
		t.Fatalf("communities = %v", got.Community)
	}
}

// TestDecisionProcessStrictOrder verifies better() behaves as a strict
// order on random route sets: irreflexive, asymmetric, and with a unique
// maximum under repeated selection — the properties recompute() relies on
// to make deterministic, stable choices.
func TestDecisionProcessStrictOrder(t *testing.T) {
	topo := diamond(t)
	net := New(netsim.New(1), topo, quickCfg())
	s := net.Speaker(0) // T, sessions to C and D
	r := rand.New(rand.NewSource(55))

	randRoute := func() *Route {
		n := 1 + r.Intn(5)
		path := make([]topology.ASN, n)
		for i := range path {
			path[i] = topology.ASN(10 + r.Intn(5)*10)
		}
		return &Route{
			Prefix:      testPrefix,
			Path:        path,
			LocalPref:   []int{PrefCustomer, PrefPeer, PrefProvider}[r.Intn(3)],
			MED:         r.Intn(3),
			learnedFrom: r.Intn(2),
		}
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := randRoute(), randRoute()
		if s.better(a, a) {
			t.Fatalf("better is not irreflexive: %+v", a)
		}
		if s.better(a, b) && s.better(b, a) {
			t.Fatalf("better is not asymmetric:\n a=%+v\n b=%+v", a, b)
		}
	}
	// Transitivity over random triples.
	for trial := 0; trial < 2000; trial++ {
		a, b, c := randRoute(), randRoute(), randRoute()
		if s.better(a, b) && s.better(b, c) && !s.better(a, c) && !routesEquivalent(a, c) {
			t.Fatalf("better is not transitive:\n a=%+v\n b=%+v\n c=%+v", a, b, c)
		}
	}
}
