package bgp

// BGP-4 wire format (RFC 4271, with RFC 6793 four-octet AS numbers in
// AS_PATH). The simulator exchanges in-memory Update values for speed; the
// wire codec exists so route-collector archives can be persisted in the
// standard MRT container (see mrt.go) and inspected with familiar tooling
// conventions (cmd/bgpdump).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"bestofboth/internal/topology"
)

// Message types (RFC 4271 §4.1).
const (
	MsgOpen         = 1
	MsgUpdate       = 2
	MsgNotification = 3
	MsgKeepalive    = 4
)

// Path attribute type codes (RFC 4271 §5).
const (
	AttrOrigin    = 1
	AttrASPath    = 2
	AttrNextHop   = 3
	AttrMED       = 4
	AttrLocalPref = 5
	AttrCommunity = 8 // RFC 1997
)

// AS_PATH segment types.
const (
	asSet      = 1
	asSequence = 2
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// ErrBadMessage reports a malformed BGP message.
var ErrBadMessage = errors.New("bgp: malformed message")

// markerLen is the length of the all-ones marker preceding every message.
const markerLen = 16

// maxMessage is the largest BGP message (RFC 4271 §4.1).
const maxMessage = 4096

// WireUpdate is the decoded form of a BGP UPDATE message as used by the
// archive: one announced or withdrawn prefix with its path attributes.
// (The simulator emits single-prefix updates; the decoder also accepts
// multi-prefix messages and returns each prefix separately via
// DecodeUpdateAll.)
type WireUpdate struct {
	Withdrawn []netip.Prefix
	NLRI      []netip.Prefix
	ASPath    []topology.ASN
	NextHop   netip.Addr
	MED       uint32
	LocalPref uint32
	HasMED    bool
	HasLP     bool
	Origin    uint8
	Community []uint32
}

// appendHeader appends the 19-byte BGP message header with the length
// patched afterwards by finishMessage.
func appendHeader(buf []byte, msgType byte) []byte {
	for i := 0; i < markerLen; i++ {
		buf = append(buf, 0xFF)
	}
	buf = append(buf, 0, 0, msgType) // length placeholder
	return buf
}

func finishMessage(buf []byte) ([]byte, error) {
	if len(buf) > maxMessage {
		return nil, fmt.Errorf("%w: message length %d exceeds %d", ErrBadMessage, len(buf), maxMessage)
	}
	binary.BigEndian.PutUint16(buf[markerLen:], uint16(len(buf)))
	return buf, nil
}

// appendPrefix appends an NLRI-encoded prefix (length byte + minimal
// octets).
func appendPrefix(buf []byte, p netip.Prefix) ([]byte, error) {
	if !p.Addr().Is4() {
		return nil, fmt.Errorf("%w: non-IPv4 prefix %v", ErrBadMessage, p)
	}
	bits := p.Bits()
	buf = append(buf, byte(bits))
	a := p.Masked().Addr().As4()
	buf = append(buf, a[:(bits+7)/8]...)
	return buf, nil
}

func parsePrefix(buf []byte) (netip.Prefix, int, error) {
	if len(buf) < 1 {
		return netip.Prefix{}, 0, ErrBadMessage
	}
	bits := int(buf[0])
	if bits > 32 {
		return netip.Prefix{}, 0, fmt.Errorf("%w: prefix length %d", ErrBadMessage, bits)
	}
	n := (bits + 7) / 8
	if len(buf) < 1+n {
		return netip.Prefix{}, 0, ErrBadMessage
	}
	var a [4]byte
	copy(a[:], buf[1:1+n])
	return netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked(), 1 + n, nil
}

// EncodeUpdate serializes a WireUpdate into a BGP UPDATE message.
func EncodeUpdate(u *WireUpdate) ([]byte, error) {
	buf := appendHeader(nil, MsgUpdate)

	// Withdrawn routes.
	wStart := len(buf)
	buf = append(buf, 0, 0)
	for _, p := range u.Withdrawn {
		var err error
		if buf, err = appendPrefix(buf, p); err != nil {
			return nil, err
		}
	}
	binary.BigEndian.PutUint16(buf[wStart:], uint16(len(buf)-wStart-2))

	// Path attributes (only present when announcing).
	aStart := len(buf)
	buf = append(buf, 0, 0)
	if len(u.NLRI) > 0 {
		buf = AppendPathAttributes(buf, u)
	}
	binary.BigEndian.PutUint16(buf[aStart:], uint16(len(buf)-aStart-2))

	for _, p := range u.NLRI {
		var err error
		if buf, err = appendPrefix(buf, p); err != nil {
			return nil, err
		}
	}
	return finishMessage(buf)
}

func appendAttr(buf []byte, flags, code byte, val []byte) []byte {
	if len(val) > 255 {
		flags |= flagExtLen
		buf = append(buf, flags, code)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(val)))
	} else {
		buf = append(buf, flags, code, byte(len(val)))
	}
	return append(buf, val...)
}

// AppendPathAttributes appends the RFC 4271 path attributes of u to buf
// (shared by UPDATE encoding and MRT TABLE_DUMP_V2 RIB entries).
func AppendPathAttributes(buf []byte, u *WireUpdate) []byte {
	buf = appendAttr(buf, flagTransitive, AttrOrigin, []byte{u.Origin})

	// AS_PATH: one AS_SEQUENCE segment of 4-octet ASNs.
	seg := make([]byte, 0, 2+4*len(u.ASPath))
	seg = append(seg, asSequence, byte(len(u.ASPath)))
	for _, a := range u.ASPath {
		seg = binary.BigEndian.AppendUint32(seg, uint32(a))
	}
	buf = appendAttr(buf, flagTransitive, AttrASPath, seg)

	nh := u.NextHop
	if !nh.Is4() {
		nh = netip.AddrFrom4([4]byte{0, 0, 0, 0})
	}
	a4 := nh.As4()
	buf = appendAttr(buf, flagTransitive, AttrNextHop, a4[:])

	if u.HasMED {
		buf = appendAttr(buf, flagOptional, AttrMED, binary.BigEndian.AppendUint32(nil, u.MED))
	}
	if u.HasLP {
		buf = appendAttr(buf, flagTransitive, AttrLocalPref, binary.BigEndian.AppendUint32(nil, u.LocalPref))
	}
	if len(u.Community) > 0 {
		cs := make([]byte, 0, 4*len(u.Community))
		for _, c := range u.Community {
			cs = binary.BigEndian.AppendUint32(cs, c)
		}
		buf = appendAttr(buf, flagOptional|flagTransitive, AttrCommunity, cs)
	}
	return buf
}

// ParsePathAttributes decodes a path-attribute block into u.
func ParsePathAttributes(attrs []byte, u *WireUpdate) error {
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return ErrBadMessage
		}
		flags, code := attrs[0], attrs[1]
		var vLen, hdr int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return ErrBadMessage
			}
			vLen = int(binary.BigEndian.Uint16(attrs[2:]))
			hdr = 4
		} else {
			vLen = int(attrs[2])
			hdr = 3
		}
		if len(attrs) < hdr+vLen {
			return ErrBadMessage
		}
		val := attrs[hdr : hdr+vLen]
		attrs = attrs[hdr+vLen:]
		if err := applyAttr(u, code, val); err != nil {
			return err
		}
	}
	return nil
}

// applyAttr interprets one decoded attribute.
func applyAttr(u *WireUpdate, code byte, val []byte) error {
	vLen := len(val)
	switch code {
	case AttrOrigin:
		if vLen != 1 {
			return fmt.Errorf("%w: ORIGIN length %d", ErrBadMessage, vLen)
		}
		u.Origin = val[0]
	case AttrASPath:
		for len(val) > 0 {
			if len(val) < 2 {
				return ErrBadMessage
			}
			segType, n := val[0], int(val[1])
			if len(val) < 2+4*n {
				return ErrBadMessage
			}
			if segType != asSequence && segType != asSet {
				return fmt.Errorf("%w: AS_PATH segment type %d", ErrBadMessage, segType)
			}
			for i := 0; i < n; i++ {
				u.ASPath = append(u.ASPath, topology.ASN(binary.BigEndian.Uint32(val[2+4*i:])))
			}
			val = val[2+4*n:]
		}
	case AttrNextHop:
		if vLen != 4 {
			return fmt.Errorf("%w: NEXT_HOP length %d", ErrBadMessage, vLen)
		}
		u.NextHop = netip.AddrFrom4([4]byte(val))
	case AttrMED:
		if vLen != 4 {
			return fmt.Errorf("%w: MED length %d", ErrBadMessage, vLen)
		}
		u.MED = binary.BigEndian.Uint32(val)
		u.HasMED = true
	case AttrLocalPref:
		if vLen != 4 {
			return fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadMessage, vLen)
		}
		u.LocalPref = binary.BigEndian.Uint32(val)
		u.HasLP = true
	case AttrCommunity:
		if vLen%4 != 0 {
			return fmt.Errorf("%w: COMMUNITY length %d", ErrBadMessage, vLen)
		}
		for i := 0; i < vLen; i += 4 {
			u.Community = append(u.Community, binary.BigEndian.Uint32(val[i:]))
		}
	default:
		// Unknown attributes are skipped (transit behavior).
	}
	return nil
}

// DecodeUpdate parses a BGP UPDATE message.
func DecodeUpdate(msg []byte) (*WireUpdate, error) {
	typ, body, err := checkHeader(msg)
	if err != nil {
		return nil, err
	}
	if typ != MsgUpdate {
		return nil, fmt.Errorf("%w: type %d is not UPDATE", ErrBadMessage, typ)
	}
	u := &WireUpdate{}

	if len(body) < 2 {
		return nil, ErrBadMessage
	}
	wLen := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if len(body) < wLen {
		return nil, ErrBadMessage
	}
	wr := body[:wLen]
	body = body[wLen:]
	for len(wr) > 0 {
		p, n, err := parsePrefix(wr)
		if err != nil {
			return nil, err
		}
		u.Withdrawn = append(u.Withdrawn, p)
		wr = wr[n:]
	}

	if len(body) < 2 {
		return nil, ErrBadMessage
	}
	aLen := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if len(body) < aLen {
		return nil, ErrBadMessage
	}
	attrs := body[:aLen]
	body = body[aLen:]
	if err := ParsePathAttributes(attrs, u); err != nil {
		return nil, err
	}

	for len(body) > 0 {
		p, n, err := parsePrefix(body)
		if err != nil {
			return nil, err
		}
		u.NLRI = append(u.NLRI, p)
		body = body[n:]
	}
	return u, nil
}

// checkHeader validates marker/length and returns the type and body.
func checkHeader(msg []byte) (byte, []byte, error) {
	if len(msg) < markerLen+3 {
		return 0, nil, ErrBadMessage
	}
	for i := 0; i < markerLen; i++ {
		if msg[i] != 0xFF {
			return 0, nil, fmt.Errorf("%w: bad marker", ErrBadMessage)
		}
	}
	length := int(binary.BigEndian.Uint16(msg[markerLen:]))
	if length != len(msg) || length > maxMessage {
		return 0, nil, fmt.Errorf("%w: header length %d, message %d", ErrBadMessage, length, len(msg))
	}
	return msg[markerLen+2], msg[markerLen+3:], nil
}

// EncodeKeepalive serializes a KEEPALIVE message.
func EncodeKeepalive() []byte {
	buf := appendHeader(nil, MsgKeepalive)
	out, _ := finishMessage(buf)
	return out
}

// MessageType returns the type of a wire message after header validation.
func MessageType(msg []byte) (byte, error) {
	typ, _, err := checkHeader(msg)
	return typ, err
}

// ToWire converts a simulator Update into its wire form. localPref is
// included for iBGP-style archive consumers; collectors record the peer's
// post-decision view.
func (u Update) ToWire(localPref int) (*WireUpdate, error) {
	w := &WireUpdate{}
	switch u.Type {
	case Withdraw:
		w.Withdrawn = []netip.Prefix{u.Prefix}
	case Announce:
		if u.Route == nil {
			return nil, fmt.Errorf("%w: announce without route", ErrBadMessage)
		}
		w.NLRI = []netip.Prefix{u.Prefix}
		w.ASPath = u.Route.Path
		w.Community = u.Route.Communities
		w.MED = uint32(u.Route.MED)
		w.HasMED = u.Route.MED != 0
		if localPref > 0 {
			w.LocalPref = uint32(localPref)
			w.HasLP = true
		}
	default:
		return nil, fmt.Errorf("%w: update type %d", ErrBadMessage, u.Type)
	}
	return w, nil
}

// AppendNLRIPrefix appends the NLRI encoding of p (length byte + minimal
// octets). Exported for the MRT TABLE_DUMP_V2 writer.
func AppendNLRIPrefix(buf []byte, p netip.Prefix) ([]byte, error) {
	return appendPrefix(buf, p)
}

// ParseNLRIPrefix decodes one NLRI-encoded prefix, returning it and the
// bytes consumed.
func ParseNLRIPrefix(buf []byte) (netip.Prefix, int, error) {
	return parsePrefix(buf)
}
