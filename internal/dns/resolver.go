package dns

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/netip"

	"bestofboth/internal/obs"
)

// Resolver is a caching recursive resolver. It answers from cache while the
// TTL holds and otherwise performs a full wire-format query/response
// exchange against the authoritative server. Time is supplied by the caller
// as virtual seconds so the resolver composes with the simulation kernel.
type Resolver struct {
	auth     *Authoritative
	cache    map[string]cacheEntry
	ecsCache map[string][]ecsEntry
	// nextID numbers outgoing queries.
	nextID uint16
	// UpstreamQueries counts cache misses that reached the authoritative.
	UpstreamQueries uint64

	// Metrics are nil until Instrument attaches a registry (nil-safe).
	mUpstream *obs.Counter
	mExpired  *obs.Counter
}

type cacheEntry struct {
	addrs     []netip.Addr
	ttl       uint32
	fetchedAt float64
	// negative marks an RFC 2308 negative-cache entry (NXDOMAIN/NODATA).
	negative bool
}

// NewResolver builds a resolver forwarding to auth.
func NewResolver(auth *Authoritative) *Resolver {
	return &Resolver{auth: auth, cache: map[string]cacheEntry{}}
}

// ErrNoSuchName is returned for NXDOMAIN and empty answers.
var ErrNoSuchName = errors.New("dns: no such name")

// Instrument attaches resolver metrics to r: upstream queries (cache
// misses that reached the authoritative) and cache-entry expirations — the
// TTL expiries that gate unicast failover. A nil registry detaches.
func (r *Resolver) Instrument(reg *obs.Registry) {
	r.mUpstream = reg.Counter("dns_resolver_upstream_queries_total")
	r.mExpired = reg.Counter("dns_resolver_cache_expirations_total")
}

// Resolve returns the A records for name at virtual time now, consulting
// the cache first. The returned remaining TTL is how long the caller may
// cache the answer. Negative answers are cached per RFC 2308 using the
// zone SOA's minimum TTL.
func (r *Resolver) Resolve(now float64, name string) ([]netip.Addr, float64, error) {
	fq := CanonicalName(name)
	if e, ok := r.cache[fq]; ok {
		expire := e.fetchedAt + float64(e.ttl)
		if now < expire {
			if e.negative {
				return nil, 0, ErrNoSuchName
			}
			return e.addrs, expire - now, nil
		}
		delete(r.cache, fq)
		r.mExpired.Inc()
	}
	r.nextID++
	r.UpstreamQueries++
	r.mUpstream.Inc()
	query := &Message{
		Header:   Header{ID: r.nextID, RecursionDesired: true},
		Question: []Question{{Name: fq, Type: TypeA}},
	}
	wire, err := query.Encode()
	if err != nil {
		return nil, 0, fmt.Errorf("dns: encoding query: %w", err)
	}
	respWire, err := r.auth.HandleQuery(wire)
	if err != nil {
		return nil, 0, fmt.Errorf("dns: authoritative failed: %w", err)
	}
	resp, err := Decode(respWire)
	if err != nil {
		return nil, 0, fmt.Errorf("dns: decoding response: %w", err)
	}
	if resp.Header.ID != query.Header.ID {
		return nil, 0, fmt.Errorf("dns: response ID %d does not match query %d", resp.Header.ID, query.Header.ID)
	}
	if resp.Header.RCode != RCodeNoError || len(resp.Answer) == 0 {
		// Negative caching (RFC 2308): remember the miss for the SOA
		// minimum so repeated lookups of dead names do not hammer the
		// authoritative.
		if negTTL, ok := negativeTTL(resp); ok {
			r.cache[fq] = cacheEntry{ttl: negTTL, fetchedAt: now, negative: true}
		}
		return nil, 0, ErrNoSuchName
	}
	var addrs []netip.Addr
	ttl := uint32(math.MaxUint32)
	for _, rr := range resp.Answer {
		if rr.Type == TypeA && CanonicalName(rr.Name) == fq {
			addrs = append(addrs, rr.A)
			if rr.TTL < ttl {
				ttl = rr.TTL
			}
		}
	}
	if len(addrs) == 0 {
		return nil, 0, ErrNoSuchName
	}
	r.cache[fq] = cacheEntry{addrs: addrs, ttl: ttl, fetchedAt: now}
	return addrs, float64(ttl), nil
}

// negativeTTL extracts the RFC 2308 negative-cache TTL: the minimum of the
// SOA record's TTL and its MINIMUM field, when the authority section
// carries one.
func negativeTTL(resp *Message) (uint32, bool) {
	for _, rr := range resp.Authority {
		if rr.Type == TypeSOA && rr.SOA != nil {
			ttl := rr.TTL
			if rr.SOA.Minimum < ttl {
				ttl = rr.SOA.Minimum
			}
			return ttl, true
		}
	}
	return 0, false
}

// Flush drops the entire cache.
func (r *Resolver) Flush() {
	r.cache = map[string]cacheEntry{}
	r.ecsCache = map[string][]ecsEntry{}
}

// ecsEntry is a per-scope cache entry (RFC 7871 §7.3.1: answers are cached
// against the scope the authoritative declared).
type ecsEntry struct {
	scope     netip.Prefix
	addrs     []netip.Addr
	ttl       uint32
	fetchedAt float64
}

// ResolveFor is Resolve with an EDNS Client Subnet: the resolver forwards
// the client's /24 and caches the answer per the scope the authoritative
// returns, so differently-located clients can receive different answers
// through the same resolver ("end-user mapping").
func (r *Resolver) ResolveFor(now float64, name string, client netip.Addr) ([]netip.Addr, float64, error) {
	if !client.Is4() {
		return r.Resolve(now, name)
	}
	fq := CanonicalName(name)
	if r.ecsCache == nil {
		r.ecsCache = map[string][]ecsEntry{}
	}
	// Scope-aware cache lookup.
	entries := r.ecsCache[fq]
	live := entries[:0]
	var hit *ecsEntry
	for i := range entries {
		e := entries[i]
		if now >= e.fetchedAt+float64(e.ttl) {
			r.mExpired.Inc()
			continue // expired
		}
		live = append(live, e)
		if e.scope.Contains(client) && hit == nil {
			hit = &live[len(live)-1]
		}
	}
	r.ecsCache[fq] = live
	if hit != nil {
		return hit.addrs, hit.fetchedAt + float64(hit.ttl) - now, nil
	}

	subnet := netip.PrefixFrom(client, 24).Masked()
	r.nextID++
	r.UpstreamQueries++
	r.mUpstream.Inc()
	query := &Message{
		Header:   Header{ID: r.nextID, RecursionDesired: true},
		Question: []Question{{Name: fq, Type: TypeA}},
		Edns:     &EDNS{ECS: &ClientSubnet{Subnet: subnet}},
	}
	wire, err := query.Encode()
	if err != nil {
		return nil, 0, fmt.Errorf("dns: encoding ECS query: %w", err)
	}
	respWire, err := r.auth.HandleQuery(wire)
	if err != nil {
		return nil, 0, fmt.Errorf("dns: authoritative failed: %w", err)
	}
	resp, err := Decode(respWire)
	if err != nil {
		return nil, 0, fmt.Errorf("dns: decoding ECS response: %w", err)
	}
	if resp.Header.RCode != RCodeNoError || len(resp.Answer) == 0 {
		return nil, 0, ErrNoSuchName
	}
	var addrs []netip.Addr
	ttl := uint32(math.MaxUint32)
	for _, rr := range resp.Answer {
		if rr.Type == TypeA && CanonicalName(rr.Name) == fq {
			addrs = append(addrs, rr.A)
			if rr.TTL < ttl {
				ttl = rr.TTL
			}
		}
	}
	if len(addrs) == 0 {
		return nil, 0, ErrNoSuchName
	}
	scope := subnet
	if resp.Edns != nil && resp.Edns.ECS != nil {
		scope = netip.PrefixFrom(client, int(resp.Edns.ECS.Scope)).Masked()
	}
	r.ecsCache[fq] = append(r.ecsCache[fq], ecsEntry{
		scope: scope, addrs: addrs, ttl: ttl, fetchedAt: now,
	})
	return addrs, float64(ttl), nil
}

// ViolationModel captures empirical TTL-violation behavior: a fraction of
// clients keep using a DNS record after its TTL expires. Allman [IMC 2020]
// measured connections initiated a median of 890 s after record expiry; we
// model the extra usage time as lognormal with that median.
type ViolationModel struct {
	// Prob is the probability that a given fetch will be used past expiry.
	Prob float64
	// MedianExtra is the median extra usage time in seconds.
	MedianExtra float64
	// Sigma is the lognormal shape parameter.
	Sigma float64
}

// DefaultViolationModel returns parameters matching the literature: ~11% of
// connections violate TTL with 890 s median overrun.
func DefaultViolationModel() ViolationModel {
	return ViolationModel{Prob: 0.11, MedianExtra: 890, Sigma: 1.2}
}

// SampleExtra draws the extra usage time past TTL expiry for one fetch
// (zero for non-violating fetches).
func (v ViolationModel) SampleExtra(rng *rand.Rand) float64 {
	if v.Prob <= 0 || rng.Float64() >= v.Prob {
		return 0
	}
	if v.MedianExtra <= 0 {
		return 0
	}
	// Lognormal with median MedianExtra: exp(ln(median) + sigma*N(0,1)).
	return math.Exp(math.Log(v.MedianExtra) + v.Sigma*rng.NormFloat64())
}

// Client is an end host using DNS redirection: it resolves the service name
// through a recursive resolver, caches the answer itself, and — per the
// violation model — may keep using a stale address long after the TTL
// expired, which is exactly what breaks unicast failover.
type Client struct {
	resolver  *Resolver
	name      string
	rng       *rand.Rand
	violation ViolationModel

	addrs      []netip.Addr
	fetchedAt  float64
	expiresAt  float64
	staleUntil float64
	haveCache  bool
	// Resolutions counts lookups that went to the resolver.
	Resolutions int
}

// NewClient builds a client for the given service name.
func NewClient(resolver *Resolver, name string, seed int64, violation ViolationModel) *Client {
	return &Client{
		resolver:  resolver,
		name:      CanonicalName(name),
		rng:       rand.New(rand.NewSource(seed)),
		violation: violation,
	}
}

// Addr returns the address the client would connect to at virtual time now.
func (c *Client) Addr(now float64) (netip.Addr, error) {
	if c.haveCache {
		if now < c.expiresAt || now < c.staleUntil {
			return c.pick(), nil
		}
	}
	addrs, ttl, err := c.resolver.Resolve(now, c.name)
	if err != nil {
		// Per RFC-agnostic client behavior: on failure, keep using what we
		// have rather than failing hard.
		if c.haveCache {
			return c.pick(), nil
		}
		return netip.Addr{}, err
	}
	c.Resolutions++
	c.addrs = addrs
	c.fetchedAt = now
	c.expiresAt = now + ttl
	c.staleUntil = c.expiresAt + c.violation.SampleExtra(c.rng)
	c.haveCache = true
	return c.pick(), nil
}

// Expiry returns when the client's cached record expires (TTL) and when the
// client will actually stop using it (including any violation overrun).
func (c *Client) Expiry() (ttlExpiry, usageExpiry float64, ok bool) {
	if !c.haveCache {
		return 0, 0, false
	}
	usage := c.staleUntil
	if c.expiresAt > usage {
		usage = c.expiresAt
	}
	return c.expiresAt, usage, true
}

func (c *Client) pick() netip.Addr {
	if len(c.addrs) == 1 {
		return c.addrs[0]
	}
	return c.addrs[c.rng.Intn(len(c.addrs))]
}
