package dns

import (
	"math/rand"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripBasic(t *testing.T) {
	m := &Message{
		Header: Header{ID: 0xBEEF, Response: true, Authoritative: true, RCode: RCodeNoError},
		Question: []Question{
			{Name: "www.cdn.example.", Type: TypeA},
		},
		Answer: []RR{
			{Name: "www.cdn.example.", Type: TypeA, TTL: 600, A: netip.MustParseAddr("184.164.244.10")},
			{Name: "www.cdn.example.", Type: TypeA, TTL: 600, A: netip.MustParseAddr("184.164.245.10")},
		},
		Authority: []RR{
			{Name: "cdn.example.", Type: TypeNS, TTL: 86400, Target: "ns1.cdn.example."},
		},
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != m.Header {
		t.Fatalf("header = %+v, want %+v", got.Header, m.Header)
	}
	if !reflect.DeepEqual(got.Question, m.Question) {
		t.Fatalf("question = %+v", got.Question)
	}
	if !reflect.DeepEqual(got.Answer, m.Answer) {
		t.Fatalf("answer = %+v, want %+v", got.Answer, m.Answer)
	}
	if !reflect.DeepEqual(got.Authority, m.Authority) {
		t.Fatalf("authority = %+v", got.Authority)
	}
}

func TestCompressionShrinksRepeatedNames(t *testing.T) {
	m := &Message{
		Question: []Question{{Name: "a.very.long.subdomain.cdn.example.", Type: TypeA}},
	}
	for i := 0; i < 5; i++ {
		m.Answer = append(m.Answer, RR{
			Name: "a.very.long.subdomain.cdn.example.", Type: TypeA, TTL: 60,
			A: netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}),
		})
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Uncompressed, each answer name alone is 35 bytes; with compression
	// each repeat is a 2-byte pointer. 5 answers * (2+10) + header+question
	// must stay well under the uncompressed size.
	uncompressed := 12 + 39 + 5*(35+14)
	if len(wire) >= uncompressed-100 {
		t.Fatalf("wire = %d bytes; compression ineffective (uncompressed ~%d)", len(wire), uncompressed)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answer) != 5 || got.Answer[4].Name != "a.very.long.subdomain.cdn.example." {
		t.Fatalf("round trip lost answers: %+v", got.Answer)
	}
}

func TestSOARoundTrip(t *testing.T) {
	m := &Message{
		Answer: []RR{{
			Name: "cdn.example.", Type: TypeSOA, TTL: 3600,
			SOA: &SOA{MName: "ns1.cdn.example.", RName: "hostmaster.cdn.example.",
				Serial: 42, Refresh: 3600, Retry: 600, Expire: 86400, Minimum: 60},
		}},
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Answer[0].SOA, m.Answer[0].SOA) {
		t.Fatalf("SOA = %+v", got.Answer[0].SOA)
	}
}

func TestRootNameRoundTrip(t *testing.T) {
	m := &Message{Question: []Question{{Name: ".", Type: TypeNS}}}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Question[0].Name != "." {
		t.Fatalf("root name decoded as %q", got.Question[0].Name)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	m := &Message{
		Question: []Question{{Name: "www.cdn.example.", Type: TypeA}},
		Answer: []RR{{Name: "www.cdn.example.", Type: TypeA, TTL: 60,
			A: netip.MustParseAddr("10.0.0.1")}},
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(wire); cut++ {
		if _, err := Decode(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsPointerLoops(t *testing.T) {
	// Header + a name that is a pointer to itself.
	buf := make([]byte, 12, 16)
	buf[5] = 1 // QDCOUNT = 1
	buf = append(buf, 0xC0, 12)
	if _, err := Decode(buf); err == nil {
		t.Fatal("self-pointer accepted")
	}
	// Forward pointer (points beyond itself) must also be rejected.
	buf2 := make([]byte, 12, 20)
	buf2[5] = 1
	buf2 = append(buf2, 0xC0, 14, 0, 0, 1, 0, 1)
	if _, err := Decode(buf2); err == nil {
		t.Fatal("forward pointer accepted")
	}
}

func TestEncodeRejectsBadNames(t *testing.T) {
	long := strings.Repeat("a", 64) + ".example."
	m := &Message{Question: []Question{{Name: long, Type: TypeA}}}
	if _, err := m.Encode(); err == nil {
		t.Fatal("63+ byte label accepted")
	}
	huge := strings.Repeat("abcdefg.", 40)
	m2 := &Message{Question: []Question{{Name: huge, Type: TypeA}}}
	if _, err := m2.Encode(); err == nil {
		t.Fatal("255+ byte name accepted")
	}
}

func TestEncodeRejectsNonIPv4A(t *testing.T) {
	m := &Message{Answer: []RR{{Name: "x.example.", Type: TypeA, A: netip.MustParseAddr("2001:db8::1")}}}
	if _, err := m.Encode(); err == nil {
		t.Fatal("IPv6 in A record accepted")
	}
}

func TestCanonicalName(t *testing.T) {
	if CanonicalName("WWW.CDN.Example") != "www.cdn.example." {
		t.Fatal("CanonicalName broken")
	}
	if CanonicalName("x.") != "x." {
		t.Fatal("CanonicalName double-dots")
	}
}

func randomName(r *rand.Rand) string {
	labels := 1 + r.Intn(4)
	parts := make([]string, labels)
	for i := range parts {
		n := 1 + r.Intn(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + r.Intn(26))
		}
		parts[i] = string(b)
	}
	return strings.Join(parts, ".") + "."
}

// Property: encode→decode is the identity on well-formed messages.
func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	f := func() bool {
		m := &Message{Header: Header{
			ID:       uint16(r.Uint32()),
			Response: r.Intn(2) == 0, RecursionDesired: r.Intn(2) == 0,
			RCode: RCode(r.Intn(6)),
		}}
		m.Question = append(m.Question, Question{Name: randomName(r), Type: TypeA})
		nans := r.Intn(6)
		for i := 0; i < nans; i++ {
			v := r.Uint32()
			m.Answer = append(m.Answer, RR{
				Name: randomName(r), Type: TypeA, TTL: r.Uint32() % 1e6,
				A: netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}),
			})
		}
		if r.Intn(2) == 0 {
			m.Answer = append(m.Answer, RR{Name: randomName(r), Type: TypeCNAME, TTL: 300, Target: randomName(r)})
		}
		wire, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		return got.Header == m.Header &&
			reflect.DeepEqual(got.Question, m.Question) &&
			reflect.DeepEqual(got.Answer, m.Answer)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary bytes.
func TestDecodeFuzzSafety(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	f := func(data []byte) bool {
		Decode(data) // must not panic; errors are fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestAAAARoundTrip(t *testing.T) {
	m := &Message{
		Answer: []RR{{
			Name: "www.cdn.example.", Type: TypeAAAA, TTL: 300,
			A: netip.MustParseAddr("2001:db8:244::10"),
		}},
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answer[0].A != m.Answer[0].A || got.Answer[0].Type != TypeAAAA {
		t.Fatalf("AAAA round trip = %+v", got.Answer[0])
	}
}

func TestAAAARejectsIPv4(t *testing.T) {
	m := &Message{Answer: []RR{{Name: "x.example.", Type: TypeAAAA, A: netip.MustParseAddr("10.0.0.1")}}}
	if _, err := m.Encode(); err == nil {
		t.Fatal("IPv4 in AAAA accepted")
	}
}
