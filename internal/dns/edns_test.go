package dns

import (
	"net/netip"
	"testing"
)

func TestEDNSRoundTrip(t *testing.T) {
	m := &Message{
		Header:   Header{ID: 9, RecursionDesired: true},
		Question: []Question{{Name: "www.cdn.example.", Type: TypeA}},
		Edns: &EDNS{UDPSize: 4096, ECS: &ClientSubnet{
			Subnet: netip.MustParsePrefix("20.1.2.0/24"),
		}},
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Edns == nil || got.Edns.ECS == nil {
		t.Fatalf("EDNS lost: %+v", got)
	}
	if got.Edns.UDPSize != 4096 {
		t.Fatalf("udp size = %d", got.Edns.UDPSize)
	}
	if got.Edns.ECS.Subnet != m.Edns.ECS.Subnet || got.Edns.ECS.Scope != 0 {
		t.Fatalf("ECS = %+v", got.Edns.ECS)
	}
	if len(got.Additional) != 0 {
		t.Fatalf("OPT leaked into additional: %+v", got.Additional)
	}
}

func TestEDNSScopeRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{Response: true},
		Edns: &EDNS{ECS: &ClientSubnet{
			Subnet: netip.MustParsePrefix("20.1.0.0/16"),
			Scope:  12,
		}},
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Edns.ECS.Scope != 12 || got.Edns.ECS.Subnet.Bits() != 16 {
		t.Fatalf("ECS = %+v", got.Edns.ECS)
	}
}

func TestEDNSRejectsIPv6Subnet(t *testing.T) {
	m := &Message{Edns: &EDNS{ECS: &ClientSubnet{
		Subnet: netip.MustParsePrefix("2001:db8::/32"),
	}}}
	if _, err := m.Encode(); err == nil {
		t.Fatal("IPv6 ECS accepted")
	}
}

func TestMapperAnswersPerSubnet(t *testing.T) {
	auth := NewAuthoritative("cdn.example.")
	auth.SetA("www", 600, netip.MustParseAddr("184.164.240.10")) // static fallback
	west := netip.MustParseAddr("184.164.244.10")
	east := netip.MustParseAddr("184.164.245.10")
	auth.SetMapper(func(name string, client netip.Prefix) ([]netip.Addr, uint32, uint8, bool) {
		if name != "www.cdn.example." {
			return nil, 0, 0, false
		}
		if client.Addr().As4()[1] < 128 {
			return []netip.Addr{west}, 60, 16, true
		}
		return []netip.Addr{east}, 60, 16, true
	})

	query := func(subnet string) *Message {
		q := &Message{
			Header:   Header{ID: 1},
			Question: []Question{{Name: "www.cdn.example.", Type: TypeA}},
			Edns:     &EDNS{ECS: &ClientSubnet{Subnet: netip.MustParsePrefix(subnet)}},
		}
		wire, err := q.Encode()
		if err != nil {
			t.Fatal(err)
		}
		out, err := auth.HandleQuery(wire)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := Decode(out)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	r1 := query("20.1.0.0/24")
	if len(r1.Answer) != 1 || r1.Answer[0].A != west {
		t.Fatalf("west answer = %+v", r1.Answer)
	}
	if r1.Edns == nil || r1.Edns.ECS == nil || r1.Edns.ECS.Scope != 16 {
		t.Fatalf("scope missing: %+v", r1.Edns)
	}
	r2 := query("20.200.0.0/24")
	if len(r2.Answer) != 1 || r2.Answer[0].A != east {
		t.Fatalf("east answer = %+v", r2.Answer)
	}
	// Without ECS, the static record answers.
	q := &Message{Header: Header{ID: 2}, Question: []Question{{Name: "www.cdn.example.", Type: TypeA}}}
	resp := auth.Answer(q)
	if resp.Answer[0].A != netip.MustParseAddr("184.164.240.10") {
		t.Fatalf("static fallback = %+v", resp.Answer)
	}
	if auth.ECSAnswered != 2 {
		t.Fatalf("ECSAnswered = %d", auth.ECSAnswered)
	}
}

func TestResolverECSCachesPerScope(t *testing.T) {
	auth := NewAuthoritative("cdn.example.")
	west := netip.MustParseAddr("184.164.244.10")
	east := netip.MustParseAddr("184.164.245.10")
	auth.SetMapper(func(name string, client netip.Prefix) ([]netip.Addr, uint32, uint8, bool) {
		// Scope /16: clients in 20.1/16 go west, others east.
		if netip.MustParsePrefix("20.1.0.0/16").Contains(client.Addr()) {
			return []netip.Addr{west}, 600, 16, true
		}
		return []netip.Addr{east}, 600, 16, true
	})
	r := NewResolver(auth)

	a1, _, err := r.ResolveFor(0, "www.cdn.example", netip.MustParseAddr("20.1.2.3"))
	if err != nil || a1[0] != west {
		t.Fatalf("west = %v, %v", a1, err)
	}
	// A client in the same /16 hits the scope cache: no new upstream query.
	q0 := r.UpstreamQueries
	a2, _, err := r.ResolveFor(1, "www.cdn.example", netip.MustParseAddr("20.1.99.1"))
	if err != nil || a2[0] != west {
		t.Fatalf("west cached = %v, %v", a2, err)
	}
	if r.UpstreamQueries != q0 {
		t.Fatalf("cache miss for same-scope client: %d vs %d", r.UpstreamQueries, q0)
	}
	// A client outside the scope triggers a new query and a different
	// answer.
	a3, _, err := r.ResolveFor(2, "www.cdn.example", netip.MustParseAddr("20.50.1.1"))
	if err != nil || a3[0] != east {
		t.Fatalf("east = %v, %v", a3, err)
	}
	if r.UpstreamQueries != q0+1 {
		t.Fatalf("expected one more upstream query")
	}
	// Expiry evicts scoped entries.
	q1 := r.UpstreamQueries
	if _, _, err := r.ResolveFor(601, "www.cdn.example", netip.MustParseAddr("20.1.2.3")); err != nil {
		t.Fatal(err)
	}
	if r.UpstreamQueries != q1+1 {
		t.Fatal("expired ECS entry still served")
	}
	// Flush clears the ECS cache too.
	r.Flush()
	if _, _, err := r.ResolveFor(602, "www.cdn.example", netip.MustParseAddr("20.1.2.3")); err != nil {
		t.Fatal(err)
	}
	if r.UpstreamQueries != q1+2 {
		t.Fatal("flush did not clear ECS cache")
	}
}

func TestResolveForIPv6FallsBack(t *testing.T) {
	auth := NewAuthoritative("cdn.example.")
	auth.SetA("www", 600, netip.MustParseAddr("184.164.240.10"))
	r := NewResolver(auth)
	addrs, _, err := r.ResolveFor(0, "www.cdn.example", netip.MustParseAddr("2001:db8::1"))
	if err != nil || len(addrs) != 1 {
		t.Fatalf("fallback = %v, %v", addrs, err)
	}
}

func TestSetAAAAValidation(t *testing.T) {
	auth := NewAuthoritative("cdn.example.")
	if err := auth.SetAAAA("www", 60, netip.MustParseAddr("10.0.0.1")); err == nil {
		t.Fatal("IPv4 accepted in SetAAAA")
	}
	if err := auth.SetAAAA("www.other.example.", 60, netip.MustParseAddr("2001:db8::1")); err == nil {
		t.Fatal("out-of-zone SetAAAA accepted")
	}
	if err := auth.SetAAAA("www", 60, netip.MustParseAddr("2001:db8::1")); err != nil {
		t.Fatal(err)
	}
	q := &Message{Question: []Question{{Name: "www.cdn.example.", Type: TypeAAAA}}}
	resp := auth.Answer(q)
	if len(resp.Answer) != 1 || resp.Answer[0].A != netip.MustParseAddr("2001:db8::1") {
		t.Fatalf("AAAA answer = %+v", resp.Answer)
	}
	// NODATA: A exists but no AAAA.
	auth.SetA("v4only", 60, netip.MustParseAddr("10.0.0.1"))
	q2 := &Message{Question: []Question{{Name: "v4only.cdn.example.", Type: TypeAAAA}}}
	resp2 := auth.Answer(q2)
	if resp2.Header.RCode != RCodeNoError || len(resp2.Answer) != 0 {
		t.Fatalf("NODATA response = %+v", resp2)
	}
	// NXDOMAIN: neither record type.
	q3 := &Message{Question: []Question{{Name: "none.cdn.example.", Type: TypeAAAA}}}
	if resp3 := auth.Answer(q3); resp3.Header.RCode != RCodeNXDomain {
		t.Fatalf("rcode = %v", resp3.Header.RCode)
	}
	auth.RemoveAAAA("www")
	if resp := auth.Answer(q); len(resp.Answer) != 0 {
		t.Fatal("RemoveAAAA did not remove")
	}
}
