package dns

import "net/netip"

// ZoneSnapshot is a deep copy of the mutable zone contents of an
// Authoritative server: A/AAAA record sets, the zone serial, and the query
// counters. The mapper function is intentionally excluded — it is a closure
// over live model state and must be re-installed by whoever owns it.
type ZoneSnapshot struct {
	a           map[string]aSet
	aaaa        map[string]aSet
	serial      uint32
	queryCount  uint64
	ecsAnswered uint64
}

func cloneRecords(m map[string]aSet) map[string]aSet {
	out := make(map[string]aSet, len(m))
	for name, set := range m {
		out[name] = aSet{addrs: append([]netip.Addr(nil), set.addrs...), ttl: set.ttl}
	}
	return out
}

// SnapshotZone deep-copies the zone state. The snapshot is immutable and may
// be restored into any number of servers.
func (s *Authoritative) SnapshotZone() ZoneSnapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return ZoneSnapshot{
		a:           cloneRecords(s.a),
		aaaa:        cloneRecords(s.aaaa),
		serial:      s.serial,
		queryCount:  s.QueryCount,
		ecsAnswered: s.ECSAnswered,
	}
}

// RestoreZone replaces the server's zone contents with a deep copy of the
// snapshot. The origin, SOA identity fields, and NS set are part of the
// server's construction and are left untouched.
func (s *Authoritative) RestoreZone(snap ZoneSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.a = cloneRecords(snap.a)
	s.aaaa = cloneRecords(snap.aaaa)
	s.serial = snap.serial
	s.soa.Serial = snap.serial
	s.QueryCount = snap.queryCount
	s.ECSAnswered = snap.ecsAnswered
}
