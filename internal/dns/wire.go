// Package dns implements the subset of the DNS protocol a CDN redirection
// system depends on: an RFC 1035 wire codec with name compression, an
// authoritative server for the CDN zone, and a caching recursive resolver
// with an empirical TTL-violation model.
//
// The paper's unicast baseline fails over only as fast as DNS lets it:
// records are cached by resolvers and clients, TTLs of popular domains are
// ~10 minutes at the median [Moura et al. 2019], and clients keep using
// records long after expiry (median 890 s past expiration [Allman 2020]).
// This package provides the machinery to quantify that baseline, which the
// paper argues cannot be measured on the real Internet without operating a
// popular service (§5).
package dns

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Type is a DNS RR type.
type Type uint16

// Supported RR types.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeAAAA  Type = 28
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeAAAA:
		return "AAAA"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// ClassIN is the Internet class, the only one supported.
const ClassIN uint16 = 1

// RCode is a DNS response code.
type RCode uint8

// Supported response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeRefused  RCode = 5
)

// Header is the fixed 12-byte DNS message header (flags unpacked).
type Header struct {
	ID                 uint16
	Response           bool
	Authoritative      bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is one entry of the question section.
type Question struct {
	Name string
	Type Type
}

// SOA holds the fields of an SOA record.
type SOA struct {
	MName, RName                            string
	Serial, Refresh, Retry, Expire, Minimum uint32
}

// RR is a resource record. Exactly one of A / Target / SOA is meaningful
// depending on Type. The paper's techniques apply equally to IPv6 (per-site
// /48s instead of /24s, §4); AAAA records are supported at the codec level.
type RR struct {
	Name   string
	Type   Type
	TTL    uint32
	A      netip.Addr // TypeA (IPv4) and TypeAAAA (IPv6)
	Target string     // TypeNS, TypeCNAME
	SOA    *SOA       // TypeSOA
}

// Message is a DNS message.
type Message struct {
	Header     Header
	Question   []Question
	Answer     []RR
	Authority  []RR
	Additional []RR
	// Edns is the OPT pseudo-record (RFC 6891), carried in the additional
	// section on the wire but surfaced separately here.
	Edns *EDNS
}

// CanonicalName lowercases and ensures a trailing dot.
func CanonicalName(name string) string {
	name = strings.ToLower(name)
	if !strings.HasSuffix(name, ".") {
		name += "."
	}
	return name
}

var (
	// ErrTruncated indicates the buffer ended mid-field.
	ErrTruncated = errors.New("dns: message truncated")
	// ErrBadPointer indicates an invalid or looping compression pointer.
	ErrBadPointer = errors.New("dns: bad compression pointer")
	// ErrNameTooLong indicates a name exceeding RFC 1035 limits.
	ErrNameTooLong = errors.New("dns: name too long")
)

// encoder builds a wire-format message with name compression.
type encoder struct {
	buf     []byte
	offsets map[string]int // suffix -> offset for compression pointers
}

func (e *encoder) u16(v uint16) { e.buf = append(e.buf, byte(v>>8), byte(v)) }
func (e *encoder) u32(v uint32) {
	e.buf = append(e.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// name encodes a domain name, emitting a compression pointer when a suffix
// has been written before.
func (e *encoder) name(n string) error {
	n = CanonicalName(n)
	if len(n) > 255 {
		return ErrNameTooLong
	}
	labels := strings.Split(strings.TrimSuffix(n, "."), ".")
	if n == "." {
		labels = nil
	}
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if off, ok := e.offsets[suffix]; ok && off < 0x4000 {
			e.u16(uint16(0xC000 | off))
			return nil
		}
		if len(e.buf) < 0x4000 {
			e.offsets[suffix] = len(e.buf)
		}
		label := labels[i]
		if len(label) == 0 || len(label) > 63 {
			return fmt.Errorf("dns: bad label %q in %q", label, n)
		}
		e.buf = append(e.buf, byte(len(label)))
		e.buf = append(e.buf, label...)
	}
	e.buf = append(e.buf, 0)
	return nil
}

func (e *encoder) rr(r RR) error {
	if err := e.name(r.Name); err != nil {
		return err
	}
	e.u16(uint16(r.Type))
	e.u16(ClassIN)
	e.u32(r.TTL)
	lenAt := len(e.buf)
	e.u16(0) // RDLENGTH placeholder
	start := len(e.buf)
	switch r.Type {
	case TypeA:
		if !r.A.Is4() {
			return fmt.Errorf("dns: A record %q without IPv4 address", r.Name)
		}
		a := r.A.As4()
		e.buf = append(e.buf, a[:]...)
	case TypeAAAA:
		if !r.A.Is6() || r.A.Is4In6() {
			return fmt.Errorf("dns: AAAA record %q without IPv6 address", r.Name)
		}
		a := r.A.As16()
		e.buf = append(e.buf, a[:]...)
	case TypeNS, TypeCNAME:
		if err := e.name(r.Target); err != nil {
			return err
		}
	case TypeSOA:
		if r.SOA == nil {
			return fmt.Errorf("dns: SOA record %q without SOA data", r.Name)
		}
		if err := e.name(r.SOA.MName); err != nil {
			return err
		}
		if err := e.name(r.SOA.RName); err != nil {
			return err
		}
		e.u32(r.SOA.Serial)
		e.u32(r.SOA.Refresh)
		e.u32(r.SOA.Retry)
		e.u32(r.SOA.Expire)
		e.u32(r.SOA.Minimum)
	default:
		return fmt.Errorf("dns: cannot encode type %v", r.Type)
	}
	rdlen := len(e.buf) - start
	e.buf[lenAt] = byte(rdlen >> 8)
	e.buf[lenAt+1] = byte(rdlen)
	return nil
}

// Encode serializes m to wire format.
func (m *Message) Encode() ([]byte, error) {
	e := &encoder{offsets: map[string]int{}}
	e.u16(m.Header.ID)
	var flags uint16
	if m.Header.Response {
		flags |= 1 << 15
	}
	if m.Header.Authoritative {
		flags |= 1 << 10
	}
	if m.Header.RecursionDesired {
		flags |= 1 << 8
	}
	if m.Header.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.Header.RCode) & 0xF
	e.u16(flags)
	e.u16(uint16(len(m.Question)))
	e.u16(uint16(len(m.Answer)))
	e.u16(uint16(len(m.Authority)))
	arcount := len(m.Additional)
	if m.Edns != nil {
		arcount++
	}
	e.u16(uint16(arcount))
	for _, q := range m.Question {
		if err := e.name(q.Name); err != nil {
			return nil, err
		}
		e.u16(uint16(q.Type))
		e.u16(ClassIN)
	}
	for _, sec := range [][]RR{m.Answer, m.Authority, m.Additional} {
		for _, r := range sec {
			if err := e.rr(r); err != nil {
				return nil, err
			}
		}
	}
	if m.Edns != nil {
		if err := e.opt(m.Edns); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

// decoder parses wire format.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) u16() (uint16, error) {
	if d.pos+2 > len(d.buf) {
		return 0, ErrTruncated
	}
	v := uint16(d.buf[d.pos])<<8 | uint16(d.buf[d.pos+1])
	d.pos += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, ErrTruncated
	}
	v := uint32(d.buf[d.pos])<<24 | uint32(d.buf[d.pos+1])<<16 |
		uint32(d.buf[d.pos+2])<<8 | uint32(d.buf[d.pos+3])
	d.pos += 4
	return v, nil
}

// name decodes a possibly compressed name starting at d.pos.
func (d *decoder) name() (string, error) {
	var sb strings.Builder
	pos := d.pos
	jumped := false
	jumps := 0
	for {
		if pos >= len(d.buf) {
			return "", ErrTruncated
		}
		b := d.buf[pos]
		switch {
		case b == 0:
			if !jumped {
				d.pos = pos + 1
			}
			if sb.Len() == 0 {
				return ".", nil
			}
			return sb.String(), nil
		case b&0xC0 == 0xC0:
			if pos+1 >= len(d.buf) {
				return "", ErrTruncated
			}
			target := int(b&0x3F)<<8 | int(d.buf[pos+1])
			if !jumped {
				d.pos = pos + 2
			}
			if target >= pos {
				return "", ErrBadPointer // pointers must point backward
			}
			jumps++
			if jumps > 32 {
				return "", ErrBadPointer
			}
			pos = target
			jumped = true
		case b&0xC0 != 0:
			return "", fmt.Errorf("dns: reserved label type %#x", b&0xC0)
		default:
			n := int(b)
			if pos+1+n > len(d.buf) {
				return "", ErrTruncated
			}
			sb.Write(d.buf[pos+1 : pos+1+n])
			sb.WriteByte('.')
			if sb.Len() > 255 {
				return "", ErrNameTooLong
			}
			pos += 1 + n
		}
	}
}

func (d *decoder) rr() (RR, uint16, []byte, error) {
	var r RR
	name, err := d.name()
	if err != nil {
		return r, 0, nil, err
	}
	r.Name = name
	typ, err := d.u16()
	if err != nil {
		return r, 0, nil, err
	}
	r.Type = Type(typ)
	class, err := d.u16()
	if err != nil {
		return r, 0, nil, err
	}
	ttl, err := d.u32()
	if err != nil {
		return r, 0, nil, err
	}
	r.TTL = ttl
	rdlen, err := d.u16()
	if err != nil {
		return r, 0, nil, err
	}
	if d.pos+int(rdlen) > len(d.buf) {
		return r, 0, nil, ErrTruncated
	}
	end := d.pos + int(rdlen)
	rdata := d.buf[d.pos:end]
	switch r.Type {
	case TypeA:
		if rdlen != 4 {
			return r, 0, nil, fmt.Errorf("dns: A record with rdlength %d", rdlen)
		}
		r.A = netip.AddrFrom4([4]byte(d.buf[d.pos : d.pos+4]))
		d.pos = end
	case TypeAAAA:
		if rdlen != 16 {
			return r, 0, nil, fmt.Errorf("dns: AAAA record with rdlength %d", rdlen)
		}
		r.A = netip.AddrFrom16([16]byte(d.buf[d.pos : d.pos+16]))
		d.pos = end
	case TypeNS, TypeCNAME:
		t, err := d.name()
		if err != nil {
			return r, 0, nil, err
		}
		r.Target = t
		d.pos = end
	case TypeSOA:
		var soa SOA
		if soa.MName, err = d.name(); err != nil {
			return r, 0, nil, err
		}
		if soa.RName, err = d.name(); err != nil {
			return r, 0, nil, err
		}
		for _, f := range []*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum} {
			if *f, err = d.u32(); err != nil {
				return r, 0, nil, err
			}
		}
		r.SOA = &soa
		d.pos = end
	default:
		// Unknown types (including OPT): skip RDATA, keep the envelope.
		d.pos = end
	}
	return r, class, rdata, nil
}

// Decode parses a wire-format message.
func Decode(buf []byte) (*Message, error) {
	d := &decoder{buf: buf}
	var m Message
	id, err := d.u16()
	if err != nil {
		return nil, err
	}
	m.Header.ID = id
	flags, err := d.u16()
	if err != nil {
		return nil, err
	}
	m.Header.Response = flags&(1<<15) != 0
	m.Header.Authoritative = flags&(1<<10) != 0
	m.Header.RecursionDesired = flags&(1<<8) != 0
	m.Header.RecursionAvailable = flags&(1<<7) != 0
	m.Header.RCode = RCode(flags & 0xF)
	counts := make([]uint16, 4)
	for i := range counts {
		if counts[i], err = d.u16(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < int(counts[0]); i++ {
		name, err := d.name()
		if err != nil {
			return nil, err
		}
		typ, err := d.u16()
		if err != nil {
			return nil, err
		}
		if _, err := d.u16(); err != nil {
			return nil, err
		}
		m.Question = append(m.Question, Question{Name: name, Type: Type(typ)})
	}
	for i, sec := range []*[]RR{&m.Answer, &m.Authority, &m.Additional} {
		for j := 0; j < int(counts[i+1]); j++ {
			r, class, rdata, err := d.rr()
			if err != nil {
				return nil, err
			}
			if r.Type == TypeOPT {
				ed, err := decodeOPT(class, rdata)
				if err != nil {
					return nil, err
				}
				m.Edns = ed
				continue
			}
			*sec = append(*sec, r)
		}
	}
	return &m, nil
}
