package dns

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"bestofboth/internal/obs"
)

// Authoritative is the CDN's authoritative DNS server. The CDN controller
// updates A records to steer clients to sites (DNS-based redirection, §2);
// the server answers queries over the wire codec.
//
// Authoritative is safe for concurrent use: examples and tools may query it
// from multiple goroutines even though the simulator itself is single
// threaded.
type Authoritative struct {
	mu     sync.RWMutex
	origin string   //cdnlint:nosnapshot construction-time zone identity, untouched by RestoreZone
	soa    SOA      //cdnlint:nosnapshot identity fields are construction-time; RestoreZone reinstates only Serial
	ns     []string //cdnlint:nosnapshot construction-time zone identity, untouched by RestoreZone
	a      map[string]aSet
	aaaa   map[string]aSet
	serial uint32
	mapper MapFunc //cdnlint:nosnapshot wiring: the steering policy is re-registered, not snapshotted
	// QueryCount tallies answered queries for reporting.
	QueryCount uint64
	// ECSAnswered counts queries answered via the client-subnet mapper.
	ECSAnswered uint64

	// Metrics are nil until Instrument attaches a registry (nil-safe).
	mQueries     *obs.Counter
	mECS         *obs.Counter
	mZoneUpdates *obs.Counter
}

// MapFunc computes a per-client answer for an A query ("end-user mapping").
// It returns the addresses, record TTL, and the ECS scope prefix length the
// answer is valid for. Returning ok=false falls back to the static records.
type MapFunc func(name string, client netip.Prefix) (addrs []netip.Addr, ttl uint32, scope uint8, ok bool)

type aSet struct {
	addrs []netip.Addr
	ttl   uint32
}

// NewAuthoritative builds a server authoritative for origin (e.g.
// "cdn.example.").
func NewAuthoritative(origin string) *Authoritative {
	origin = CanonicalName(origin)
	return &Authoritative{
		origin: origin,
		soa: SOA{
			MName:   "ns1." + origin,
			RName:   "hostmaster." + origin,
			Serial:  1,
			Refresh: 3600,
			Retry:   600,
			Expire:  86400,
			Minimum: 60,
		},
		ns:     []string{"ns1." + origin, "ns2." + origin},
		a:      map[string]aSet{},
		aaaa:   map[string]aSet{},
		serial: 1,
	}
}

// Origin returns the zone origin.
func (s *Authoritative) Origin() string { return s.origin }

// Instrument attaches DNS metrics to r: queries answered, ECS-mapped
// answers, and zone updates (every record change — the controller's
// failover "repoints" land here). A nil registry detaches.
func (s *Authoritative) Instrument(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mQueries = r.Counter("dns_queries_total")
	s.mECS = r.Counter("dns_ecs_answered_total")
	s.mZoneUpdates = r.Counter("dns_zone_updates_total")
}

// SetMapper installs the per-client answer function used for queries that
// carry an EDNS Client Subnet option.
func (s *Authoritative) SetMapper(m MapFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mapper = m
}

// Serial returns the current zone serial, bumped on every record change.
func (s *Authoritative) Serial() uint32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.serial
}

// SetA replaces the A records for name with addrs at the given TTL.
// The name may be relative to the origin or fully qualified.
func (s *Authoritative) SetA(name string, ttl uint32, addrs ...netip.Addr) error {
	fq := s.qualify(name)
	if !strings.HasSuffix(fq, s.origin) {
		return fmt.Errorf("dns: name %q outside zone %q", fq, s.origin)
	}
	for _, a := range addrs {
		if !a.Is4() {
			return fmt.Errorf("dns: non-IPv4 address %v for %q", a, fq)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.a[fq] = aSet{addrs: append([]netip.Addr(nil), addrs...), ttl: ttl}
	s.serial++
	s.soa.Serial = s.serial
	s.mZoneUpdates.Inc()
	return nil
}

// SetAAAA replaces the AAAA records for name with addrs at the given TTL.
func (s *Authoritative) SetAAAA(name string, ttl uint32, addrs ...netip.Addr) error {
	fq := s.qualify(name)
	if !strings.HasSuffix(fq, s.origin) {
		return fmt.Errorf("dns: name %q outside zone %q", fq, s.origin)
	}
	for _, a := range addrs {
		if !a.Is6() || a.Is4In6() {
			return fmt.Errorf("dns: non-IPv6 address %v for %q", a, fq)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aaaa[fq] = aSet{addrs: append([]netip.Addr(nil), addrs...), ttl: ttl}
	s.serial++
	s.soa.Serial = s.serial
	s.mZoneUpdates.Inc()
	return nil
}

// RemoveAAAA deletes the AAAA records for name.
func (s *Authoritative) RemoveAAAA(name string) {
	fq := s.qualify(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.aaaa[fq]; ok {
		delete(s.aaaa, fq)
		s.serial++
		s.soa.Serial = s.serial
		s.mZoneUpdates.Inc()
	}
}

// RemoveA deletes the A records for name.
func (s *Authoritative) RemoveA(name string) {
	fq := s.qualify(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.a[fq]; ok {
		delete(s.a, fq)
		s.serial++
		s.soa.Serial = s.serial
		s.mZoneUpdates.Inc()
	}
}

// Record is one exported record set of the zone, as returned by DumpZone.
type Record struct {
	Name  string
	Type  string // "A" or "AAAA"
	TTL   uint32
	Addrs []netip.Addr
}

// DumpZone returns every A and AAAA record set, sorted by name then type —
// the deterministic zone dump the control-plane API serves and fingerprints.
func (s *Authoritative) DumpZone() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, 0, len(s.a)+len(s.aaaa))
	for name, set := range s.a {
		out = append(out, Record{Name: name, Type: "A", TTL: set.ttl, Addrs: append([]netip.Addr(nil), set.addrs...)})
	}
	for name, set := range s.aaaa {
		out = append(out, Record{Name: name, Type: "AAAA", TTL: set.ttl, Addrs: append([]netip.Addr(nil), set.addrs...)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// Names returns all names with A records, sorted.
func (s *Authoritative) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.a))
	for n := range s.a {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s *Authoritative) qualify(name string) string {
	name = strings.ToLower(name)
	if strings.HasSuffix(name, ".") {
		return name
	}
	return name + "." + s.origin
}

// HandleQuery answers a wire-format query and returns a wire-format
// response, exercising the full codec round trip.
func (s *Authoritative) HandleQuery(query []byte) ([]byte, error) {
	q, err := Decode(query)
	if err != nil {
		resp := &Message{Header: Header{Response: true, Authoritative: true, RCode: RCodeFormErr}}
		return resp.Encode()
	}
	resp := s.Answer(q)
	return resp.Encode()
}

// Answer builds the response message for a parsed query.
func (s *Authoritative) Answer(q *Message) *Message {
	s.mu.Lock()
	s.QueryCount++
	s.mQueries.Inc()
	isECS := s.mapper != nil && q.Edns != nil && q.Edns.ECS != nil
	if isECS && len(q.Question) == 1 && q.Question[0].Type == TypeA {
		s.ECSAnswered++
		s.mECS.Inc()
	}
	s.mu.Unlock()

	resp := &Message{Header: Header{
		ID:               q.Header.ID,
		Response:         true,
		Authoritative:    true,
		RecursionDesired: q.Header.RecursionDesired,
	}}
	if len(q.Question) != 1 {
		resp.Header.RCode = RCodeFormErr
		return resp
	}
	question := q.Question[0]
	resp.Question = q.Question
	name := CanonicalName(question.Name)
	if !strings.HasSuffix(name, s.origin) {
		resp.Header.RCode = RCodeRefused
		return resp
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	switch question.Type {
	case TypeA:
		// End-user mapping: tailor the answer to the client subnet when
		// the resolver supplied one and a mapper is installed (RFC 7871).
		if s.mapper != nil && q.Edns != nil && q.Edns.ECS != nil {
			ecs := q.Edns.ECS
			if addrs, ttl, scope, ok := s.mapper(name, ecs.Subnet); ok {
				for _, a := range addrs {
					resp.Answer = append(resp.Answer, RR{Name: name, Type: TypeA, TTL: ttl, A: a})
				}
				resp.Edns = &EDNS{ECS: &ClientSubnet{Subnet: ecs.Subnet, Scope: scope}}
				return resp
			}
		}
		set, ok := s.a[name]
		if !ok {
			resp.Header.RCode = RCodeNXDomain
			resp.Authority = append(resp.Authority, s.soaRR())
			return resp
		}
		for _, a := range set.addrs {
			resp.Answer = append(resp.Answer, RR{Name: name, Type: TypeA, TTL: set.ttl, A: a})
		}
	case TypeAAAA:
		set, ok := s.aaaa[name]
		if !ok {
			// NOERROR/NODATA when the name has A records, NXDOMAIN
			// otherwise.
			if _, hasA := s.a[name]; !hasA {
				resp.Header.RCode = RCodeNXDomain
			}
			resp.Authority = append(resp.Authority, s.soaRR())
			return resp
		}
		for _, a := range set.addrs {
			resp.Answer = append(resp.Answer, RR{Name: name, Type: TypeAAAA, TTL: set.ttl, A: a})
		}
	case TypeNS:
		if name != s.origin {
			resp.Header.RCode = RCodeNXDomain
			resp.Authority = append(resp.Authority, s.soaRR())
			return resp
		}
		for _, ns := range s.ns {
			resp.Answer = append(resp.Answer, RR{Name: name, Type: TypeNS, TTL: 86400, Target: ns})
		}
	case TypeSOA:
		if name != s.origin {
			resp.Header.RCode = RCodeNXDomain
		}
		resp.Answer = append(resp.Answer, s.soaRR())
	default:
		// Name exists (or not) but type unsupported: NOERROR/NODATA or
		// NXDOMAIN accordingly.
		if _, ok := s.a[name]; !ok && name != s.origin {
			resp.Header.RCode = RCodeNXDomain
		}
		resp.Authority = append(resp.Authority, s.soaRR())
	}
	return resp
}

func (s *Authoritative) soaRR() RR {
	soa := s.soa
	return RR{Name: s.origin, Type: TypeSOA, TTL: 3600, SOA: &soa}
}
