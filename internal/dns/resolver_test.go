package dns

import (
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"testing"
)

var (
	siteA = netip.MustParseAddr("184.164.240.10")
	siteB = netip.MustParseAddr("184.164.241.10")
)

func newAuthWithRecord(t *testing.T) *Authoritative {
	t.Helper()
	auth := NewAuthoritative("cdn.example.")
	if err := auth.SetA("www", 600, siteA); err != nil {
		t.Fatal(err)
	}
	return auth
}

func TestAuthoritativeAnswersA(t *testing.T) {
	auth := newAuthWithRecord(t)
	q := &Message{Header: Header{ID: 7}, Question: []Question{{Name: "www.cdn.example.", Type: TypeA}}}
	resp := auth.Answer(q)
	if resp.Header.RCode != RCodeNoError || !resp.Header.Authoritative || !resp.Header.Response {
		t.Fatalf("header = %+v", resp.Header)
	}
	if len(resp.Answer) != 1 || resp.Answer[0].A != siteA {
		t.Fatalf("answer = %+v", resp.Answer)
	}
	if resp.Header.ID != 7 {
		t.Fatal("response ID mismatch")
	}
}

func TestAuthoritativeNXDomain(t *testing.T) {
	auth := newAuthWithRecord(t)
	q := &Message{Question: []Question{{Name: "missing.cdn.example.", Type: TypeA}}}
	resp := auth.Answer(q)
	if resp.Header.RCode != RCodeNXDomain {
		t.Fatalf("rcode = %v, want NXDOMAIN", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type != TypeSOA {
		t.Fatal("NXDOMAIN lacks SOA in authority")
	}
}

func TestAuthoritativeRefusesOutOfZone(t *testing.T) {
	auth := newAuthWithRecord(t)
	q := &Message{Question: []Question{{Name: "www.other.example.", Type: TypeA}}}
	if resp := auth.Answer(q); resp.Header.RCode != RCodeRefused {
		t.Fatalf("rcode = %v, want REFUSED", resp.Header.RCode)
	}
}

func TestAuthoritativeRejectsOutOfZoneSet(t *testing.T) {
	auth := NewAuthoritative("cdn.example.")
	if err := auth.SetA("www.other.example.", 60, siteA); err == nil {
		t.Fatal("out-of-zone SetA accepted")
	}
	if err := auth.SetA("www", 60, netip.MustParseAddr("2001:db8::1")); err == nil {
		t.Fatal("IPv6 SetA accepted")
	}
}

func TestSetARemoveABumpSerial(t *testing.T) {
	auth := newAuthWithRecord(t)
	s0 := auth.Serial()
	auth.SetA("www", 600, siteB)
	if auth.Serial() <= s0 {
		t.Fatal("SetA did not bump serial")
	}
	s1 := auth.Serial()
	auth.RemoveA("www")
	if auth.Serial() <= s1 {
		t.Fatal("RemoveA did not bump serial")
	}
	auth.RemoveA("www") // absent: no bump
	if auth.Serial() != s1+1 {
		t.Fatal("RemoveA of absent name bumped serial")
	}
	if names := auth.Names(); len(names) != 0 {
		t.Fatalf("Names = %v", names)
	}
}

func TestNSAndSOAQueries(t *testing.T) {
	auth := newAuthWithRecord(t)
	q := &Message{Question: []Question{{Name: "cdn.example.", Type: TypeNS}}}
	resp := auth.Answer(q)
	if len(resp.Answer) != 2 {
		t.Fatalf("NS answer = %+v", resp.Answer)
	}
	q = &Message{Question: []Question{{Name: "cdn.example.", Type: TypeSOA}}}
	resp = auth.Answer(q)
	if len(resp.Answer) != 1 || resp.Answer[0].SOA == nil {
		t.Fatalf("SOA answer = %+v", resp.Answer)
	}
}

func TestHandleQueryMalformed(t *testing.T) {
	auth := newAuthWithRecord(t)
	out, err := auth.HandleQuery([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Decode(out)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != RCodeFormErr {
		t.Fatalf("rcode = %v, want FORMERR", resp.Header.RCode)
	}
}

func TestResolverCachesWithinTTL(t *testing.T) {
	auth := newAuthWithRecord(t)
	r := NewResolver(auth)
	addrs, ttl, err := r.Resolve(0, "www.cdn.example")
	if err != nil || len(addrs) != 1 || addrs[0] != siteA {
		t.Fatalf("resolve = %v %v %v", addrs, ttl, err)
	}
	if ttl != 600 {
		t.Fatalf("ttl = %v", ttl)
	}
	// Record changes at the authoritative, but the cache still serves the
	// old answer until expiry.
	auth.SetA("www", 600, siteB)
	addrs, rem, err := r.Resolve(300, "www.cdn.example")
	if err != nil || addrs[0] != siteA {
		t.Fatalf("cached resolve = %v, %v", addrs, err)
	}
	if math.Abs(rem-300) > 1e-9 {
		t.Fatalf("remaining ttl = %v, want 300", rem)
	}
	if r.UpstreamQueries != 1 {
		t.Fatalf("upstream queries = %d, want 1", r.UpstreamQueries)
	}
	// Past expiry, the resolver refetches and sees the new record.
	addrs, _, err = r.Resolve(601, "www.cdn.example")
	if err != nil || addrs[0] != siteB {
		t.Fatalf("post-expiry resolve = %v, %v", addrs, err)
	}
	if r.UpstreamQueries != 2 {
		t.Fatalf("upstream queries = %d, want 2", r.UpstreamQueries)
	}
}

func TestResolverFlush(t *testing.T) {
	auth := newAuthWithRecord(t)
	r := NewResolver(auth)
	r.Resolve(0, "www.cdn.example")
	auth.SetA("www", 600, siteB)
	r.Flush()
	addrs, _, _ := r.Resolve(1, "www.cdn.example")
	if addrs[0] != siteB {
		t.Fatal("flush did not clear cache")
	}
}

func TestResolverNXDomain(t *testing.T) {
	auth := newAuthWithRecord(t)
	r := NewResolver(auth)
	if _, _, err := r.Resolve(0, "nope.cdn.example"); err != ErrNoSuchName {
		t.Fatalf("err = %v, want ErrNoSuchName", err)
	}
}

func TestClientHonorsTTL(t *testing.T) {
	auth := newAuthWithRecord(t)
	r := NewResolver(auth)
	c := NewClient(r, "www.cdn.example", 1, ViolationModel{}) // never violates
	a, err := c.Addr(0)
	if err != nil || a != siteA {
		t.Fatalf("addr = %v, %v", a, err)
	}
	auth.SetA("www", 600, siteB)
	r.Flush() // resolver sees the update; client cache still valid
	if a, _ := c.Addr(599); a != siteA {
		t.Fatal("client refetched before TTL expiry")
	}
	if a, _ := c.Addr(600); a != siteB {
		t.Fatal("client did not refetch after TTL expiry")
	}
	if c.Resolutions != 2 {
		t.Fatalf("resolutions = %d, want 2", c.Resolutions)
	}
}

func TestClientViolationKeepsStaleRecord(t *testing.T) {
	auth := newAuthWithRecord(t)
	r := NewResolver(auth)
	// Always violate with ~fixed overrun.
	c := NewClient(r, "www.cdn.example", 2, ViolationModel{Prob: 1, MedianExtra: 890, Sigma: 0.0001})
	c.Addr(0)
	auth.SetA("www", 600, siteB)
	r.Flush()
	// At 700 s (past 600 s TTL) the violating client still uses the stale
	// record.
	if a, _ := c.Addr(700); a != siteA {
		t.Fatal("violating client refetched at TTL expiry")
	}
	ttlExp, useExp, ok := c.Expiry()
	if !ok || ttlExp != 600 {
		t.Fatalf("Expiry = %v %v %v", ttlExp, useExp, ok)
	}
	if useExp < 1400 || useExp > 1600 {
		t.Fatalf("usage expiry = %v, want ≈1490", useExp)
	}
	if a, _ := c.Addr(useExp + 1); a != siteB {
		t.Fatal("client never dropped the stale record")
	}
}

func TestViolationModelDistribution(t *testing.T) {
	v := DefaultViolationModel()
	rng := rand.New(rand.NewSource(3))
	n := 20000
	var extras []float64
	violations := 0
	for i := 0; i < n; i++ {
		e := v.SampleExtra(rng)
		if e > 0 {
			violations++
			extras = append(extras, e)
		}
	}
	frac := float64(violations) / float64(n)
	if frac < 0.09 || frac > 0.13 {
		t.Fatalf("violation fraction = %v, want ≈0.11", frac)
	}
	sort.Float64s(extras)
	median := extras[len(extras)/2]
	if median < 700 || median > 1100 {
		t.Fatalf("median extra = %v, want ≈890", median)
	}
}

func TestViolationModelZeroProb(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := ViolationModel{Prob: 0, MedianExtra: 890, Sigma: 1}
	for i := 0; i < 100; i++ {
		if v.SampleExtra(rng) != 0 {
			t.Fatal("zero-probability model produced a violation")
		}
	}
}

func TestClientSurvivesResolverFailure(t *testing.T) {
	auth := newAuthWithRecord(t)
	r := NewResolver(auth)
	c := NewClient(r, "www.cdn.example", 4, ViolationModel{})
	c.Addr(0)
	auth.RemoveA("www")
	// After expiry the refetch fails; client keeps the stale answer rather
	// than erroring.
	if a, err := c.Addr(700); err != nil || a != siteA {
		t.Fatalf("addr after upstream loss = %v, %v", a, err)
	}
	// A fresh client with no cache must error.
	c2 := NewClient(r, "www.cdn.example", 5, ViolationModel{})
	if _, err := c2.Addr(0); err == nil {
		t.Fatal("fresh client resolved a removed name")
	}
}

func TestClientPicksAmongMultipleRecords(t *testing.T) {
	auth := NewAuthoritative("cdn.example.")
	auth.SetA("www", 600, siteA, siteB)
	r := NewResolver(auth)
	c := NewClient(r, "www.cdn.example", 6, ViolationModel{})
	seen := map[netip.Addr]bool{}
	for i := 0; i < 50; i++ {
		a, err := c.Addr(float64(i))
		if err != nil {
			t.Fatal(err)
		}
		seen[a] = true
	}
	if len(seen) != 2 {
		t.Fatalf("client used %d of 2 records", len(seen))
	}
}

func TestNegativeCaching(t *testing.T) {
	auth := newAuthWithRecord(t)
	r := NewResolver(auth)
	if _, _, err := r.Resolve(0, "missing.cdn.example"); err != ErrNoSuchName {
		t.Fatalf("err = %v", err)
	}
	q0 := r.UpstreamQueries
	// Within the SOA minimum (60 s), the miss is served from cache.
	if _, _, err := r.Resolve(30, "missing.cdn.example"); err != ErrNoSuchName {
		t.Fatalf("err = %v", err)
	}
	if r.UpstreamQueries != q0 {
		t.Fatal("negative answer not cached")
	}
	// The name appearing later is visible after the negative TTL.
	auth.SetA("missing", 600, siteA)
	if _, _, err := r.Resolve(45, "missing.cdn.example"); err != ErrNoSuchName {
		t.Fatal("negative cache expired early")
	}
	addrs, _, err := r.Resolve(61, "missing.cdn.example")
	if err != nil || addrs[0] != siteA {
		t.Fatalf("post-negative-TTL resolve = %v, %v", addrs, err)
	}
}
