package dns

// EDNS(0) (RFC 6891) with the Client Subnet option (RFC 7871).
//
// CDN redirection answers differently per client location ("end-user
// mapping", Chen et al., SIGCOMM 2015 — the paper's reference [9] for
// DNS-based site selection). Resolvers attach the client's subnet to the
// query; the authoritative tailors the answer and declares the scope for
// which it is valid, and resolvers cache per scope.

import (
	"fmt"
	"net/netip"
)

// TypeOPT is the EDNS(0) pseudo-RR type.
const TypeOPT Type = 41

// optionClientSubnet is the ECS option code (RFC 7871).
const optionClientSubnet = 8

// ecsFamilyIPv4 is the IANA address family for IPv4.
const ecsFamilyIPv4 = 1

// ClientSubnet is the EDNS Client Subnet option.
type ClientSubnet struct {
	// Subnet is the client's (truncated) prefix as sent by the resolver.
	Subnet netip.Prefix
	// Scope is the prefix length the answer is valid for. Zero in
	// queries; set by the authoritative in responses.
	Scope uint8
}

// EDNS is the decoded OPT pseudo-record.
type EDNS struct {
	UDPSize uint16
	ECS     *ClientSubnet
}

// encodeOPT appends the OPT pseudo-RR to the encoder.
func (e *encoder) opt(ed *EDNS) error {
	// Root name.
	e.buf = append(e.buf, 0)
	e.u16(uint16(TypeOPT))
	size := ed.UDPSize
	if size == 0 {
		size = 1232
	}
	e.u16(size) // CLASS carries the UDP payload size
	e.u32(0)    // TTL carries extended RCODE/flags (unused here)
	lenAt := len(e.buf)
	e.u16(0) // RDLENGTH placeholder
	start := len(e.buf)
	if ecs := ed.ECS; ecs != nil {
		if !ecs.Subnet.Addr().Is4() {
			return fmt.Errorf("dns: ECS subnet %v is not IPv4", ecs.Subnet)
		}
		bits := ecs.Subnet.Bits()
		addrLen := (bits + 7) / 8
		e.u16(optionClientSubnet)
		e.u16(uint16(4 + addrLen))
		e.u16(ecsFamilyIPv4)
		e.buf = append(e.buf, byte(bits), ecs.Scope)
		a := ecs.Subnet.Masked().Addr().As4()
		e.buf = append(e.buf, a[:addrLen]...)
	}
	rdlen := len(e.buf) - start
	e.buf[lenAt] = byte(rdlen >> 8)
	e.buf[lenAt+1] = byte(rdlen)
	return nil
}

// decodeOPT parses the RDATA of an OPT record.
func decodeOPT(classField uint16, rdata []byte) (*EDNS, error) {
	ed := &EDNS{UDPSize: classField}
	for len(rdata) > 0 {
		if len(rdata) < 4 {
			return nil, ErrTruncated
		}
		code := uint16(rdata[0])<<8 | uint16(rdata[1])
		olen := int(uint16(rdata[2])<<8 | uint16(rdata[3]))
		rdata = rdata[4:]
		if len(rdata) < olen {
			return nil, ErrTruncated
		}
		opt := rdata[:olen]
		rdata = rdata[olen:]
		if code != optionClientSubnet {
			continue // unknown options are ignored
		}
		if olen < 4 {
			return nil, fmt.Errorf("dns: ECS option too short (%d)", olen)
		}
		family := uint16(opt[0])<<8 | uint16(opt[1])
		srcBits := int(opt[2])
		scope := opt[3]
		if family != ecsFamilyIPv4 {
			continue // only IPv4 modeled
		}
		if srcBits > 32 {
			return nil, fmt.Errorf("dns: ECS source prefix %d", srcBits)
		}
		addrLen := (srcBits + 7) / 8
		if len(opt) < 4+addrLen {
			return nil, ErrTruncated
		}
		var a [4]byte
		copy(a[:], opt[4:4+addrLen])
		ed.ECS = &ClientSubnet{
			Subnet: netip.PrefixFrom(netip.AddrFrom4(a), srcBits).Masked(),
			Scope:  scope,
		}
	}
	return ed, nil
}
