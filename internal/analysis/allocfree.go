package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerAllocfree (cdnlint/allocfree) guards the allocation discipline
// of hot paths annotated with a //cdnlint:allocfree doc comment (the
// send/export/restore paths pinned by TestSendPathZeroAllocs,
// TestExportPathAllocBudget, and TestRestoreAllocBudget). Inside an
// annotated function it flags the allocation classes those tests exist to
// catch creeping back in:
//
//   - function literals (every closure is a heap allocation once it
//     escapes into the event queue);
//   - fmt package calls (formatting allocates; calls whose result feeds
//     directly into a return statement or panic are allowed — cold exit
//     paths never run in the measured regime);
//   - map and slice composite literals;
//   - interface boxing: passing, assigning, or returning a non-pointer
//     concrete value where an interface is expected.
//
// The annotation deliberately does not forbid make() or struct literals:
// the gated paths allocate bounded bookkeeping by design (alloc tests
// budget it); the analyzer targets the per-message allocation classes.
var AnalyzerAllocfree = &Analyzer{
	Name: "allocfree",
	Doc: "flag closures, fmt calls, map/slice literals, and interface boxing inside functions " +
		"annotated //cdnlint:allocfree (the alloc-test-gated hot paths)",
	Run: runAllocfree,
}

func runAllocfree(pass *Pass) {
	for _, fd := range funcDecls(pass.Files) {
		if fd.Body == nil || !funcHasMarker(fd.Doc, "allocfree") {
			continue
		}
		coldCalls := coldPathCalls(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				pass.Reportf(e.Pos(), "closure in //cdnlint:allocfree function %s allocates; "+
					"use a shared func plus a pooled payload (netsim.Sim.AtCall pattern)", fd.Name.Name)
				return false // the literal's body is not on the annotated path
			case *ast.CompositeLit:
				if tv, ok := pass.Info.Types[e]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Map:
						pass.Reportf(e.Pos(), "map literal in //cdnlint:allocfree function %s allocates", fd.Name.Name)
					case *types.Slice:
						pass.Reportf(e.Pos(), "slice literal in //cdnlint:allocfree function %s allocates", fd.Name.Name)
					}
				}
			case *ast.CallExpr:
				pass.checkAllocCall(fd, e, coldCalls)
			case *ast.AssignStmt:
				for i, rhs := range e.Rhs {
					if len(e.Lhs) == len(e.Rhs) {
						if lt, ok := pass.Info.Types[e.Lhs[i]]; ok {
							pass.checkBoxing(fd, lt.Type, rhs)
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range e.Values {
					if i < len(e.Names) {
						if obj := pass.Info.Defs[e.Names[i]]; obj != nil {
							pass.checkBoxing(fd, obj.Type(), v)
						}
					}
				}
			case *ast.ReturnStmt:
				sig, ok := pass.Info.Defs[fd.Name].Type().(*types.Signature)
				if !ok {
					return true
				}
				if sig.Results().Len() == len(e.Results) {
					for i, res := range e.Results {
						pass.checkBoxing(fd, sig.Results().At(i).Type(), res)
					}
				}
			}
			return true
		})
	}
}

// coldPathCalls collects fmt calls whose result feeds directly into a
// return statement or a panic: those only execute on failure exits, which
// by construction are off the measured hot path.
func coldPathCalls(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	cold := map[*ast.CallExpr]bool{}
	mark := func(e ast.Expr) {
		if call, ok := e.(*ast.CallExpr); ok {
			cold[call] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				mark(r)
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "panic" {
				for _, a := range e.Args {
					mark(a)
				}
			}
		}
		return true
	})
	return cold
}

// checkAllocCall flags fmt package calls and interface-boxing arguments.
func (p *Pass) checkAllocCall(fd *ast.FuncDecl, call *ast.CallExpr, cold map[*ast.CallExpr]bool) {
	// Type conversions: T(x) where T is an interface boxes x.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			p.checkBoxing(fd, tv.Type, call.Args[0])
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			return // panicking is cold by definition; its boxing is free
		}
	}
	callee := calleeFunc(p.Info, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		if !cold[call] {
			p.Reportf(call.Pos(), "fmt.%s in //cdnlint:allocfree function %s allocates on the hot path "+
				"(only returns and panics may format)", callee.Name(), fd.Name.Name)
		}
		return
	}
	// Boxing through parameters.
	sig, ok := typeOf(p.Info, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...) passes the slice through unboxed
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		p.checkBoxing(fd, pt, arg)
	}
}

// checkBoxing flags storing a non-pointer-shaped concrete value into an
// interface-typed destination: the conversion heap-allocates the boxed
// copy on every occurrence.
func (p *Pass) checkBoxing(fd *ast.FuncDecl, dst types.Type, src ast.Expr) {
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	st := typeOf(p.Info, src)
	if st == nil {
		return
	}
	if isUntypedNil(st) {
		return
	}
	switch st.Underlying().(type) {
	case *types.Interface:
		return // interface-to-interface carries the existing box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: stored inline in the interface word
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return
	}
	p.Reportf(src.Pos(), "interface boxing of %s in //cdnlint:allocfree function %s allocates; "+
		"pass a pointer or restructure the call", st.String(), fd.Name.Name)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// calleeFunc resolves the called function object, or nil for builtins,
// conversions, and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
