package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerErrcmp (cdnlint/errcmp) flags sentinel errors (package-level
// error variables: core.Err*, io.EOF, cmd-local sentinels) compared with
// == or != instead of errors.Is. Direct comparison silently stops
// matching the moment any layer wraps the error with %w — which the
// repo's fmt.Errorf-based error paths do liberally — so the comparison
// becomes a latent never-true branch. Comparisons against nil are the
// idiom and stay allowed; switch statements over an error value are the
// same trap in case-clause clothing and are flagged too.
var AnalyzerErrcmp = &Analyzer{
	Name: "errcmp",
	Doc: "flag ==/!= (and switch cases) against package-level sentinel errors; " +
		"use errors.Is so wrapped errors still match",
	Run: runErrcmp,
}

var errcmpErrorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func runErrcmp(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if isNilExpr(pass, x.X) || isNilExpr(pass, x.Y) {
					return true
				}
				s := sentinelErr(pass, x.X)
				if s == nil {
					s = sentinelErr(pass, x.Y)
				}
				if s != nil {
					pass.Reportf(x.OpPos, "sentinel error %s compared with %s; use errors.Is so the "+
						"comparison survives %%w wrapping", s.Name(), x.Op)
				}
			case *ast.SwitchStmt:
				if x.Tag == nil {
					return true
				}
				t := typeOf(pass.Info, x.Tag)
				if t == nil || !types.Implements(t, errcmpErrorIface) {
					return true
				}
				for _, stmt := range x.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := sentinelErr(pass, e); s != nil {
							pass.Reportf(e.Pos(), "switch case compares sentinel error %s with ==; use "+
								"errors.Is in an if/else chain so the comparison survives %%w wrapping", s.Name())
						}
					}
				}
			}
			return true
		})
	}
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}

// sentinelErr resolves e to a package-level error variable, or nil.
func sentinelErr(pass *Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Implements(v.Type(), errcmpErrorIface) {
		return nil
	}
	return v
}
