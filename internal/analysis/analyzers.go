package analysis

import (
	"fmt"
	"strings"
)

// All returns every registered analyzer, in stable order: the five
// syntactic PR 5 checks, then the five deeper PR 10 passes.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerDetrand,
		AnalyzerMaporder,
		AnalyzerRoutefreeze,
		AnalyzerAllocfree,
		AnalyzerSnapshotfields,
		AnalyzerShardsafe,
		AnalyzerDetflow,
		AnalyzerWirestable,
		AnalyzerErrcmp,
		AnalyzerObsnames,
	}
}

// Select resolves a comma-separated list of check names (with or without
// the cdnlint/ prefix) to analyzers. The empty string selects all.
func Select(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimPrefix(strings.TrimSpace(name), "cdnlint/")
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown check %q (have %s)", name, checkNames())
		}
	}
	if len(out) == 0 {
		return All(), nil
	}
	return out, nil
}

func checkNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
