package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerShardsafe (cdnlint/shardsafe) enforces the PR 6 sharding
// discipline as an ownership analysis. A struct type annotated
//
//	//cdnlint:shardowned
//
// holds per-shard state (a shard's kernel, calendar, intern table, pools,
// mailboxes): its fields may only be touched from the owning shard's
// context. An access is in the owner's context when it is rooted at
//
//   - the receiver of a method, when the receiver is (a pointer to) a
//     shard-owned type — the shard operating on itself;
//   - an owner link: a field of the method's receiver that is itself
//     shard-owned (a Speaker's `sh` field — the speaker runs on that
//     shard, so `s.sh.*` is the owning shard's own state);
//   - a parameter of shard-owned type — by contract the caller hands a
//     shard it owns, and the call sites are themselves checked;
//
// or when the whole function is one of
//
//   - a drain function: scheduled as an event callback on a netsim.Sim
//     (passed by name to At/AtCall/After/AfterTimer) — event callbacks
//     execute on the owning shard's simulator;
//   - barrier-side: annotated //cdnlint:barrieronly, named Snapshot*/
//     Restore* (quiescent whole-world operations), or an unexported
//     function all of whose callers are already barrier-side. Between
//     rounds the runner is single-threaded, so barrier code may touch any
//     shard.
//
// Everything else — reading or writing a shard-owned field, or calling a
// method on a shard-owned value, through an arbitrary expression — is a
// potential cross-shard race and is reported. Cross-shard communication
// must go through the value-typed mailbox/Exchanger path instead.
var AnalyzerShardsafe = &Analyzer{
	Name: "shardsafe",
	Doc: "restrict access to //cdnlint:shardowned struct fields to the owning shard's drain path, " +
		"//cdnlint:barrieronly functions, and owner-rooted method receivers; " +
		"cross-shard data must ride the mailbox Exchanger",
	Run: runShardsafe,
}

func runShardsafe(pass *Pass) {
	owned := shardownedTypes(pass)
	if len(owned) == 0 {
		return
	}
	cg := buildCallGraph(pass)
	barrier := barrierFuncs(cg)
	drain := drainFuncs(pass, cg)
	for _, fi := range cg.funcs {
		if fi.decl.Body == nil || barrier[fi] || drain[fi] {
			continue
		}
		checkShardAccess(pass, fi, owned)
	}
}

// shardownedTypes collects the named types annotated //cdnlint:shardowned
// (on the type spec or its enclosing type declaration).
func shardownedTypes(pass *Pass) map[*types.TypeName]bool {
	owned := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !funcHasMarker(ts.Doc, "shardowned") && !funcHasMarker(gd.Doc, "shardowned") {
					continue
				}
				if tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
					owned[tn] = true
				}
			}
		}
	}
	return owned
}

// ownedTypeName returns the shard-owned type name behind t (through one
// pointer), or nil.
func ownedTypeName(t types.Type, owned map[*types.TypeName]bool) *types.TypeName {
	named, ok := derefNamed(t)
	if !ok || !owned[named.Obj()] {
		return nil
	}
	return named.Obj()
}

// barrierFuncs computes the barrier-side set: functions annotated
// //cdnlint:barrieronly or named Snapshot*/Restore*, closed under "every
// caller of this unexported function is barrier-side". The export
// restriction keeps the closure honest: an exported function can be called
// from other packages the graph cannot see.
func barrierFuncs(cg *callGraph) map[*funcInfo]bool {
	set := map[*funcInfo]bool{}
	for _, fi := range cg.funcs {
		lower := strings.ToLower(fi.decl.Name.Name)
		if funcHasMarker(fi.decl.Doc, "barrieronly") ||
			strings.HasPrefix(lower, "snapshot") || strings.HasPrefix(lower, "restore") {
			set[fi] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range cg.funcs {
			if set[fi] || ast.IsExported(fi.decl.Name.Name) {
				continue
			}
			all, anyIn := true, false
			for _, c := range fi.callers {
				if c == fi {
					continue // self-recursion doesn't vouch for itself
				}
				if set[c] {
					anyIn = true
				} else {
					all = false
				}
			}
			if all && anyIn {
				set[fi] = true
				changed = true
			}
		}
	}
	return set
}

// drainFuncs computes the drain set: package functions passed by name as
// arguments to netsim.Sim scheduling calls (At/AtCall/After/AfterTimer).
// Those run as event callbacks on the owning shard's simulator, which is
// exactly the shard's drain path.
func drainFuncs(pass *Pass, cg *callGraph) map[*funcInfo]bool {
	set := map[*funcInfo]bool{}
	for _, fi := range cg.funcs {
		if fi.decl.Body == nil {
			continue
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || !netsimScheduling[fn.Name()] ||
				!pkgPathHasSuffix(fn.Pkg().Path(), "netsim") {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if named, ok := derefNamed(sig.Recv().Type()); !ok || named.Obj().Name() != "Sim" {
				return true
			}
			for _, a := range call.Args {
				if id, ok := ast.Unparen(a).(*ast.Ident); ok {
					if target := cg.funcFor(pass.Info.Uses[id]); target != nil {
						set[target] = true
					}
				}
			}
			return true
		})
	}
	return set
}

// checkShardAccess reports shard-owned field/method accesses in fi that are
// not rooted at an owner handle.
func checkShardAccess(pass *Pass, fi *funcInfo, owned map[*types.TypeName]bool) {
	handles := map[*types.Var]bool{} // receiver/params of shard-owned type
	var recvVar *types.Var
	if fi.decl.Recv != nil && len(fi.decl.Recv.List) == 1 && len(fi.decl.Recv.List[0].Names) == 1 {
		if v, ok := pass.Info.Defs[fi.decl.Recv.List[0].Names[0]].(*types.Var); ok {
			recvVar = v
			if ownedTypeName(v.Type(), owned) != nil {
				handles[v] = true
			}
		}
	}
	for _, field := range fi.decl.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.Info.Defs[name].(*types.Var); ok && ownedTypeName(v.Type(), owned) != nil {
				handles[v] = true
			}
		}
	}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.Info.Selections[sel]
		if s == nil {
			return true
		}
		tn := ownedTypeName(s.Recv(), owned)
		if tn == nil {
			return true
		}
		if allowedOwnedBase(pass, sel.X, handles, recvVar, owned) {
			return true
		}
		kind := "field"
		if s.Kind() == types.MethodVal {
			kind = "method"
		}
		pass.Reportf(sel.Sel.Pos(), "%s %s of shard-owned type %s accessed outside the owning shard's "+
			"drain path or the single-threaded barrier; route cross-shard data through the mailbox "+
			"Exchanger, or annotate the function //cdnlint:barrieronly if it only runs between rounds",
			kind, sel.Sel.Name, tn.Name())
		return true
	})
}

// allowedOwnedBase reports whether x, the base expression of a shard-owned
// access, is an owner handle: the receiver/a shard-owned parameter, or an
// owner link (a field selected directly off the method's receiver).
func allowedOwnedBase(pass *Pass, x ast.Expr, handles map[*types.Var]bool, recvVar *types.Var, owned map[*types.TypeName]bool) bool {
	switch base := ast.Unparen(x).(type) {
	case *ast.Ident:
		v, ok := pass.Info.Uses[base].(*types.Var)
		return ok && handles[v]
	case *ast.SelectorExpr:
		// Owner link: recv.f where recv is the method receiver. The access
		// that brought us here already established that recv.f is
		// shard-owned, and a struct holding a shard reference as a field
		// (Speaker.sh) runs on that shard.
		if recvVar == nil {
			return false
		}
		s := pass.Info.Selections[base]
		if s == nil || s.Kind() != types.FieldVal {
			return false
		}
		id, ok := ast.Unparen(base.X).(*ast.Ident)
		return ok && pass.Info.Uses[id] == recvVar
	}
	return false
}
