package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerSnapshotfields (cdnlint/snapshotfields) enforces snapshot
// completeness: every field of a struct handled by a Snapshot/Restore
// pair must be captured on the snapshot side AND reinstated on the
// restore side. The converged-world reuse machinery depends on this —
// a field silently skipped by Restore makes post-restore runs diverge
// from fresh runs, the exact bug class TestSnapshotRestoreBitIdentical
// exists to catch, except at compile time and per-field.
//
// Mechanics: the snapshot side is the set of functions whose name starts
// with Snapshot/snapshot plus everything they call in-package; the
// restore side likewise for Restore/restore. A struct type is checked
// when both sides reference at least one of its fields. A field counts
// as handled on a side if the side selects it by name, names it in a
// composite literal, or copies the whole struct value (assignment,
// argument, return, or ranging over a slice of it — `c := *r` handles
// every field at once).
//
// Exemptions: fields whose type comes from the obs package (metrics are
// re-registered, not restored), and fields annotated with a trailing
//
//	//cdnlint:nosnapshot <reason>
//
// comment for state that is deliberately outside the snapshot boundary
// (immutable topology, wiring pointers, pools). The reason is mandatory.
var AnalyzerSnapshotfields = &Analyzer{
	Name: "snapshotfields",
	Doc: "every field of a struct with a Snapshot/Restore pair must be handled by both sides, " +
		"be obs-typed, or carry a //cdnlint:nosnapshot <reason> annotation",
	Run: runSnapshotfields,
}

func runSnapshotfields(pass *Pass) {
	decls := funcDecls(pass.Files)
	declOf := map[types.Object]*ast.FuncDecl{}
	for _, fd := range decls {
		if obj := pass.Info.Defs[fd.Name]; obj != nil {
			declOf[obj] = fd
		}
	}
	snap := sideClosure(pass, decls, declOf, "snapshot")
	rest := sideClosure(pass, decls, declOf, "restore")
	if len(snap) == 0 || len(rest) == 0 {
		return // no Snapshot/Restore pair in this package
	}
	snapRefs := collectSideRefs(pass, snap)
	restRefs := collectSideRefs(pass, rest)

	for _, name := range pass.Pkg.Scope().Names() {
		tn, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.TypeParams().Len() > 0 {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		sf, rf := snapRefs[tn], restRefs[tn]
		if sf == nil || rf == nil {
			continue // not a snapshotted struct: at most one side touches it
		}
		astFields := structASTFields(pass.Files, name)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isObsExempt(f.Type()) {
				continue
			}
			af := astFields[f.Name()]
			if af != nil {
				if reason, annotated := fieldNosnapshot(af); annotated {
					if reason == "" {
						pass.Reportf(af.Pos(), "//cdnlint:nosnapshot on %s.%s is missing a reason: "+
							"state excluded from snapshots must say why", name, f.Name())
					}
					continue
				}
			}
			pos := tn.Pos()
			if af != nil {
				pos = af.Pos()
			}
			if !sf[f.Name()] {
				pass.Reportf(pos, "field %s.%s is not captured by any snapshot-side function; "+
					"snapshot it or annotate //cdnlint:nosnapshot with a reason", name, f.Name())
			}
			if !rf[f.Name()] {
				pass.Reportf(pos, "field %s.%s is not reinstated by any restore-side function; "+
					"restore it or annotate //cdnlint:nosnapshot with a reason", name, f.Name())
			}
		}
	}
}

// sideClosure returns the functions whose lowercased name starts with
// side, plus every in-package function reachable from them by direct
// calls.
func sideClosure(pass *Pass, decls []*ast.FuncDecl, declOf map[types.Object]*ast.FuncDecl, side string) []*ast.FuncDecl {
	in := map[*ast.FuncDecl]bool{}
	var queue []*ast.FuncDecl
	for _, fd := range decls {
		if strings.HasPrefix(strings.ToLower(fd.Name.Name), side) {
			in[fd] = true
			queue = append(queue, fd)
		}
	}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			if callee, ok := declOf[fn]; ok && !in[callee] {
				in[callee] = true
				queue = append(queue, callee)
			}
			return true
		})
	}
	out := make([]*ast.FuncDecl, 0, len(in))
	for _, fd := range decls { // decls order keeps traversal deterministic
		if in[fd] {
			out = append(out, fd)
		}
	}
	return out
}

// collectSideRefs maps each in-package struct type to the set of its
// field names the side handles, via selectors, composite literal keys,
// and whole-value copies.
func collectSideRefs(pass *Pass, fns []*ast.FuncDecl) map[*types.TypeName]map[string]bool {
	refs := map[*types.TypeName]map[string]bool{}
	markField := func(tn *types.TypeName, field string) {
		if refs[tn] == nil {
			refs[tn] = map[string]bool{}
		}
		refs[tn][field] = true
	}
	markAll := func(tn *types.TypeName) {
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return
		}
		if refs[tn] == nil {
			refs[tn] = map[string]bool{}
		}
		for i := 0; i < st.NumFields(); i++ {
			refs[tn][st.Field(i).Name()] = true
		}
	}
	// wholeCopy marks all fields when e is a struct value (or a slice or
	// array of struct values) of this package being copied.
	wholeCopy := func(e ast.Expr) {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.IsType() || tv.Type == nil {
			return // type expressions (make's first argument) copy nothing
		}
		t := tv.Type
		switch u := t.Underlying().(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		}
		if tn := localStructName(pass.Pkg, t); tn != nil {
			markAll(tn)
		}
	}

	for _, fd := range fns {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.Info.Selections[e]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if tn := localStructName(pass.Pkg, typeOf(pass.Info, e.X)); tn != nil {
					markField(tn, e.Sel.Name)
				}
			case *ast.CompositeLit:
				tn := localStructName(pass.Pkg, typeOf(pass.Info, e))
				if tn == nil {
					return true
				}
				keyed := false
				for _, el := range e.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						keyed = true
						if id, ok := kv.Key.(*ast.Ident); ok {
							markField(tn, id.Name)
						}
					}
				}
				if !keyed && len(e.Elts) > 0 {
					markAll(tn) // positional literals must be exhaustive
				}
			case *ast.AssignStmt:
				for _, rhs := range e.Rhs {
					wholeCopy(rhs)
				}
			case *ast.ValueSpec:
				for _, v := range e.Values {
					wholeCopy(v)
				}
			case *ast.CallExpr:
				for _, a := range e.Args {
					wholeCopy(a)
				}
			case *ast.ReturnStmt:
				for _, r := range e.Results {
					wholeCopy(r)
				}
			case *ast.RangeStmt:
				if e.Value != nil {
					wholeCopy(e.Value) // ranging copies each element
				}
			}
			return true
		})
	}
	return refs
}

// localStructName resolves t (behind at most one pointer) to the type
// name of a struct declared at package scope in pkg, or nil.
func localStructName(pkg *types.Package, t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := n.Obj()
	if obj.Pkg() != pkg || obj.Parent() != pkg.Scope() {
		return nil
	}
	if _, ok := obj.Type().Underlying().(*types.Struct); !ok {
		return nil
	}
	return obj
}

// isObsExempt reports whether a field type belongs to the obs metrics
// layer: a named type from an obs package, or an inline struct whose
// fields all are. Metrics are instrumentation registered at wiring time;
// snapshots deliberately exclude them.
func isObsExempt(t types.Type) bool {
	switch u := t.(type) {
	case *types.Pointer:
		t = u.Elem()
	case *types.Array:
		return isObsExempt(u.Elem())
	case *types.Slice:
		return isObsExempt(u.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		return obj.Pkg() != nil && pkgPathHasSuffix(obj.Pkg().Path(), "obs")
	}
	if st, ok := t.(*types.Struct); ok && st.NumFields() > 0 {
		for i := 0; i < st.NumFields(); i++ {
			if !isObsExempt(st.Field(i).Type()) {
				return false
			}
		}
		return true
	}
	return false
}

// structASTFields finds the struct type declaration named typeName and
// maps each field name (and embedded type name) to its *ast.Field, so
// diagnostics land on the declaration and annotations can be read.
func structASTFields(files []*ast.File, typeName string) map[string]*ast.Field {
	out := map[string]*ast.Field{}
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != typeName {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, fld := range st.Fields.List {
					if len(fld.Names) == 0 {
						if name := embeddedFieldName(fld.Type); name != "" {
							out[name] = fld
						}
						continue
					}
					for _, id := range fld.Names {
						out[id.Name] = fld
					}
				}
			}
		}
	}
	return out
}

// embeddedFieldName returns the implicit field name of an embedded type
// expression.
func embeddedFieldName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedFieldName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return ""
}

// fieldNosnapshot reports whether the field carries a
// //cdnlint:nosnapshot annotation (in its doc or trailing comment) and
// returns the stated reason.
func fieldNosnapshot(f *ast.Field) (reason string, ok bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if text, found := markerText(c.Text, "nosnapshot"); found {
				return text, true
			}
		}
	}
	return "", false
}
