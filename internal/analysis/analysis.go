// Package analysis implements cdnlint: a suite of static analyzers that
// enforce the simulator's cross-cutting invariants at compile time —
// determinism (no global randomness or wall clock in simulation packages,
// no unordered map iteration feeding ordered state), immutability
// (bgp.Route frozen after publish), allocation discipline (annotated hot
// paths stay free of closures, formatting, boxing, and map/slice
// literals), and snapshot completeness (every field of a snapshotted
// struct handled by both Snapshot and Restore).
//
// The analyzers are built on the stdlib go/ast + go/types only (no
// golang.org/x/tools dependency) and run over fully type-checked
// packages. cmd/cdnlint provides two drivers: a standalone one that loads
// packages via `go list -export` and a `go vet -vettool=` compatible one.
//
// Diagnostics can be suppressed with a staticcheck-style comment on the
// offending line or the line directly above it:
//
//	//lint:ignore cdnlint/<check> <reason>
//
// A missing reason is itself a diagnostic, and an ignore that no longer
// matches any finding is reported as stale (see ignore.go). Analyzers also
// honor purpose-built marker comments (//cdnlint:mutates-route,
// //cdnlint:allocfree, //cdnlint:nosnapshot) described in their docs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named, individually toggleable check.
type Analyzer struct {
	// Name is the short check name; diagnostics are reported as
	// "cdnlint/<name>".
	Name string
	// Doc is a one-paragraph description of the invariant the check
	// guards.
	Doc string
	// Run inspects one type-checked package and reports findings through
	// the pass.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its position fully resolved.
type Diagnostic struct {
	// Check is the analyzer name ("detrand", ...) or "ignore" for
	// diagnostics produced by the suppression machinery itself.
	Check   string
	Pos     token.Position
	Message string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [cdnlint/%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Package bundles everything an analyzer needs about one loaded package.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Options controls a Run invocation.
type Options struct {
	// StaleCheck enables reporting of //lint:ignore comments that matched
	// no diagnostic. Drivers disable it when running a subset of checks,
	// where an ignore for a disabled check would be reported stale
	// spuriously.
	StaleCheck bool
}

// Suppressed is a diagnostic silenced by a //lint:ignore directive,
// retained (with the directive's reason) for machine-readable reports.
type Suppressed struct {
	Diagnostic
	Reason string
}

// Result is the full outcome of a RunDetailed invocation.
type Result struct {
	// Diagnostics are the surviving findings (including the suppression
	// machinery's own), sorted by position.
	Diagnostics []Diagnostic
	// Suppressed are the findings //lint:ignore silenced, sorted by
	// position. They never affect exit codes; reports carry them so a
	// reviewer can audit every active suppression in one place.
	Suppressed []Suppressed
}

// Run executes the analyzers over pkg, applies //lint:ignore suppression,
// and returns the surviving diagnostics (including the suppression
// machinery's own findings) sorted by position.
func Run(pkg *Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	return RunDetailed(pkg, analyzers, opts).Diagnostics
}

// RunDetailed is Run, but it also keeps the diagnostics that //lint:ignore
// directives suppressed, paired with the directives' reasons.
func RunDetailed(pkg *Package, analyzers []*Analyzer, opts Options) Result {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}

	igns, ignDiags := collectIgnores(pkg.Fset, pkg.Files)
	diags, suppressed := applyIgnores(diags, igns)
	diags = append(diags, ignDiags...)
	if opts.StaleCheck {
		diags = append(diags, staleIgnores(igns)...)
	}

	sortDiags(diags)
	sort.Slice(suppressed, func(i, j int) bool {
		return diagLess(suppressed[i].Diagnostic, suppressed[j].Diagnostic)
	})
	return Result{Diagnostics: diags, Suppressed: suppressed}
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool { return diagLess(diags[i], diags[j]) })
}

func diagLess(a, b Diagnostic) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	if a.Check != b.Check {
		return a.Check < b.Check
	}
	return a.Message < b.Message
}

// pkgPathHasSuffix reports whether path equals suffix or ends with
// "/"+suffix, i.e. suffix matches on package-path segment boundaries. It
// is how analyzers recognize repo packages both under their full module
// path and under the fixture loader's short paths.
func pkgPathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// funcHasMarker reports whether the function's doc comment contains the
// given //cdnlint:<marker> annotation.
func funcHasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if _, ok := markerText(c.Text, marker); ok {
			return true
		}
	}
	return false
}

// markerText matches a "//cdnlint:<marker>" comment and returns the text
// following the marker (trimmed), which annotations may use as a reason.
func markerText(comment, marker string) (string, bool) {
	const prefix = "//cdnlint:"
	if !strings.HasPrefix(comment, prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(comment, prefix)
	if rest == marker {
		return "", true
	}
	if strings.HasPrefix(rest, marker+" ") {
		return strings.TrimSpace(strings.TrimPrefix(rest, marker)), true
	}
	return "", false
}

// enclosingFuncs builds a map from every FuncDecl in the files to its
// body range, used by analyzers that scope rules to annotated functions.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}
