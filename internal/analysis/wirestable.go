package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

// AnalyzerWirestable (cdnlint/wirestable) guards the pkg/bestofboth/api
// wire schema's stability contract:
//
//   - every exported field of every wire struct carries an explicit json
//     tag, so a rename can never silently change the wire format;
//   - no map-typed field is marshaled raw: Go writes map keys in hash
//     order under json.Marshal only because encoding/json sorts them —
//     but any hand-rolled encoder, digest, or diff over the struct won't;
//     map fields must use a named type with a sorted MarshalJSON wrapper;
//   - every top-level wire type (a struct no other wire struct embeds as
//     a field) declares an apiVersion field, so every artifact that hits
//     disk or HTTP is versioned;
//   - the ctlplane differ covers the schema: in a package that declares
//     diffStates(pred, act api.WorldState), every leaf field of the
//     WorldState tree must be selected somewhere in diffStates or its
//     in-package callees, unless listed in the package-level diffExempt
//     map with a reason. This is the static complement of
//     TestDiffStatesCoversEverySchemaField: the test catches a schema
//     field the differ forgot at test time, the analyzer at lint time.
var AnalyzerWirestable = &Analyzer{
	Name: "wirestable",
	Doc: "require explicit json tags, sorted-marshal wrappers on map fields, and apiVersion on " +
		"top-level wire types in pkg/bestofboth/api; require ctlplane's diffStates to cover every " +
		"schema leaf not exempted in diffExempt",
	Run: runWirestable,
}

func runWirestable(pass *Pass) {
	if pkgPathHasSuffix(pass.Pkg.Path(), "bestofboth/api") {
		checkWireSchema(pass)
	}
	checkDifferCoverage(pass)
}

// wireStruct is one top-level struct type declaration of the api package.
type wireStruct struct {
	name *ast.Ident
	st   *ast.StructType
	obj  *types.TypeName
}

func wireStructs(pass *Pass) []wireStruct {
	var out []wireStruct
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				out = append(out, wireStruct{name: ts.Name, st: st, obj: tn})
			}
		}
	}
	return out
}

// jsonTagName extracts the json key from a field's tag literal, reporting
// whether a json tag exists at all.
func jsonTagName(tag *ast.BasicLit) (string, bool) {
	if tag == nil {
		return "", false
	}
	raw, err := strconv.Unquote(tag.Value)
	if err != nil {
		return "", false
	}
	val, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return "", false
	}
	name, _, _ := strings.Cut(val, ",")
	return name, true
}

func checkWireSchema(pass *Pass) {
	structs := wireStructs(pass)

	// Field-level rules: explicit json tags, sorted-marshal map wrappers.
	for _, ws := range structs {
		for _, field := range ws.st.Fields.List {
			names := field.Names
			if len(names) == 0 { // embedded field: its type name is the field name
				if id := embeddedFieldIdent(field.Type); id != nil {
					names = []*ast.Ident{id}
				}
			}
			for _, name := range names {
				if !name.IsExported() {
					continue
				}
				if _, ok := jsonTagName(field.Tag); !ok {
					pass.Reportf(name.Pos(), "exported wire field %s.%s has no explicit json tag; "+
						"the wire format must never depend on Go identifier spelling", ws.name.Name, name.Name)
				}
				ft := typeOf(pass.Info, field.Type)
				if ft == nil {
					continue
				}
				if p, ok := ft.(*types.Pointer); ok {
					ft = p.Elem()
				}
				if _, isMap := ft.Underlying().(*types.Map); isMap && !hasSortedMarshal(ft) {
					pass.Reportf(name.Pos(), "map-typed wire field %s.%s marshals in unspecified order for "+
						"non-encoding/json consumers (digests, diffs); use a named map type with a sorted "+
						"MarshalJSON wrapper (api.SortedMap)", ws.name.Name, name.Name)
				}
			}
		}
	}

	// apiVersion coverage: structs no other struct references are the
	// top-level artifacts and must carry the schema version.
	referenced := map[*types.TypeName]bool{}
	for _, ws := range structs {
		st, ok := ws.obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			for _, tn := range namedStructRefs(st.Field(i).Type(), pass.Pkg) {
				if tn != ws.obj {
					referenced[tn] = true
				}
			}
		}
	}
	for _, ws := range structs {
		if !ws.name.IsExported() || referenced[ws.obj] {
			continue
		}
		hasVersion := false
		for _, field := range ws.st.Fields.List {
			if name, ok := jsonTagName(field.Tag); ok && name == "apiVersion" {
				hasVersion = true
			}
		}
		if !hasVersion {
			pass.Reportf(ws.name.Pos(), "top-level wire type %s has no apiVersion field; every artifact "+
				"that reaches disk or HTTP must carry the schema version", ws.name.Name)
		}
	}
}

// embeddedFieldIdent digs the name identifier out of an embedded field's
// type expression.
func embeddedFieldIdent(t ast.Expr) *ast.Ident {
	switch x := t.(type) {
	case *ast.Ident:
		return x
	case *ast.StarExpr:
		return embeddedFieldIdent(x.X)
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}

// hasSortedMarshal reports whether t's method set includes MarshalJSON.
func hasSortedMarshal(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "MarshalJSON")
	_, ok := obj.(*types.Func)
	return ok
}

// namedStructRefs collects the named struct types of pkg reachable from t
// through pointers, slices, arrays, map keys/values, and the underlying
// types of named non-structs (a SortedMap[Reduction] field references
// Reduction).
func namedStructRefs(t types.Type, pkg *types.Package) []*types.TypeName {
	return namedStructRefsRec(t, pkg, map[types.Type]bool{})
}

func namedStructRefsRec(t types.Type, pkg *types.Package, seen map[types.Type]bool) []*types.TypeName {
	if seen[t] {
		return nil
	}
	seen[t] = true
	switch x := t.(type) {
	case *types.Named:
		if _, ok := x.Underlying().(*types.Struct); ok {
			if x.Obj().Pkg() == pkg {
				return []*types.TypeName{x.Obj()}
			}
			return nil
		}
		return namedStructRefsRec(x.Underlying(), pkg, seen)
	case *types.Pointer:
		return namedStructRefsRec(x.Elem(), pkg, seen)
	case *types.Slice:
		return namedStructRefsRec(x.Elem(), pkg, seen)
	case *types.Array:
		return namedStructRefsRec(x.Elem(), pkg, seen)
	case *types.Map:
		return append(namedStructRefsRec(x.Key(), pkg, seen), namedStructRefsRec(x.Elem(), pkg, seen)...)
	}
	return nil
}

// --- differ coverage ---

// checkDifferCoverage applies the diffStates rule in any package that
// declares one.
func checkDifferCoverage(pass *Pass) {
	var differ *ast.FuncDecl
	var root *types.Named
	for _, fd := range funcDecls(pass.Files) {
		if fd.Name.Name != "diffStates" || fd.Recv != nil || fd.Body == nil {
			continue
		}
		params := fd.Type.Params
		if params == nil || params.NumFields() == 0 {
			continue
		}
		t := typeOf(pass.Info, params.List[0].Type)
		if t == nil {
			continue
		}
		named, ok := derefNamed(t)
		if !ok || named.Obj().Pkg() == nil || !pkgPathHasSuffix(named.Obj().Pkg().Path(), "bestofboth/api") {
			continue
		}
		differ, root = fd, named
		break
	}
	if differ == nil {
		return
	}
	apiPkg := root.Obj().Pkg()

	// Leaves of the schema tree ("Type.Field"), in declaration order.
	var leaves []string
	visited := map[*types.TypeName]bool{}
	var walk func(n *types.Named)
	walk = func(n *types.Named) {
		if visited[n.Obj()] {
			return
		}
		visited[n.Obj()] = true
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			subs := namedStructRefs(f.Type(), apiPkg)
			if len(subs) == 0 {
				leaves = append(leaves, n.Obj().Name()+"."+f.Name())
				continue
			}
			for _, sub := range subs {
				if sn, ok := sub.Type().(*types.Named); ok {
					walk(sn)
				}
			}
		}
	}
	walk(root)

	// Fields the differ (or an in-package function it calls, transitively)
	// selects.
	cg := buildCallGraph(pass)
	start := cg.funcFor(pass.Info.Defs[differ.Name])
	covered := map[string]bool{}
	seen := map[*funcInfo]bool{}
	var visit func(fi *funcInfo)
	visit = func(fi *funcInfo) {
		if fi == nil || seen[fi] || fi.decl.Body == nil {
			return
		}
		seen[fi] = true
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.Info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			if named, ok := derefNamed(s.Recv()); ok && named.Obj().Pkg() == apiPkg {
				covered[named.Obj().Name()+"."+sel.Sel.Name] = true
			}
			return true
		})
		for _, callee := range fi.callees {
			visit(callee)
		}
	}
	visit(start)

	leafSet := map[string]bool{}
	for _, l := range leaves {
		leafSet[l] = true
	}
	exempt := differExempt(pass, leafSet)
	for _, l := range leaves {
		if covered[l] || exempt[l] {
			continue
		}
		pass.Reportf(differ.Name.Pos(), "schema leaf %s is never compared by diffStates; a ChangeSet "+
			"receipt can't verify a field the differ skips — compare it, or add it to diffExempt with a reason",
			l)
	}
}

// differExempt parses the package-level `diffExempt` map literal
// ("Type.Field" → reason) and returns the exempted paths, reporting keys
// that name no schema leaf.
func differExempt(pass *Pass, leaves map[string]bool) map[string]bool {
	exempt := map[string]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "diffExempt" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.BasicLit)
					if !ok || key.Kind != token.STRING {
						continue
					}
					path, err := strconv.Unquote(key.Value)
					if err != nil {
						continue
					}
					if !leaves[path] {
						pass.Reportf(key.Pos(), "diffExempt names %q, which is not a leaf of the schema "+
							"diffStates covers; fix the path or drop the stale exemption", path)
						continue
					}
					exempt[path] = true
				}
			}
		}
	}
	return exempt
}
