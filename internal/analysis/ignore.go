package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment naming at least one
// cdnlint check.
type ignoreDirective struct {
	pos    token.Position // position of the comment
	checks []string       // check names without the cdnlint/ prefix
	reason string
	used   bool // set when the directive suppressed at least one finding
}

// collectIgnores parses every //lint:ignore comment that targets cdnlint
// checks. Malformed directives (missing reason, unknown check name) are
// returned as diagnostics immediately; well-formed ones are returned for
// suppression matching. Directives that only name other tools' checks
// (e.g. staticcheck's) are left entirely alone.
func collectIgnores(fset *token.FileSet, files []*ast.File) ([]*ignoreDirective, []Diagnostic) {
	var igns []*ignoreDirective
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					continue // bare //lint:ignore with no checks; not ours to judge
				}
				var checks []string
				ours := false
				for _, name := range strings.Split(fields[0], ",") {
					if short, ok := strings.CutPrefix(name, "cdnlint/"); ok {
						ours = true
						checks = append(checks, short)
					}
				}
				if !ours {
					continue
				}
				ign := &ignoreDirective{pos: pos, checks: checks}
				for _, short := range checks {
					if !knownCheck(short) {
						diags = append(diags, Diagnostic{
							Check: "ignore", Pos: pos,
							Message: "//lint:ignore names unknown check cdnlint/" + short,
						})
					}
				}
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Check: "ignore", Pos: pos,
						Message: "//lint:ignore " + fields[0] + " is missing a reason: every suppression must justify itself",
					})
					// Still honor the suppression so the missing-reason
					// finding is the only new noise on the line.
				} else {
					ign.reason = strings.Join(fields[1:], " ")
				}
				igns = append(igns, ign)
			}
		}
	}
	return igns, diags
}

// knownCheck reports whether short names a registered analyzer.
func knownCheck(short string) bool {
	for _, a := range All() {
		if a.Name == short {
			return true
		}
	}
	return false
}

// applyIgnores splits the diagnostics into survivors and suppressed. A
// directive matches findings of its named checks located in the same file
// on the directive's own line (trailing comment) or the line directly
// below it (comment on its own line above the offending code); suppressed
// findings keep the directive's reason for machine-readable reports.
func applyIgnores(diags []Diagnostic, igns []*ignoreDirective) ([]Diagnostic, []Suppressed) {
	if len(igns) == 0 {
		return diags, nil
	}
	var out []Diagnostic
	var silenced []Suppressed
	for _, d := range diags {
		suppressed := false
		for _, ign := range igns {
			if ign.pos.Filename != d.Pos.Filename {
				continue
			}
			if d.Pos.Line != ign.pos.Line && d.Pos.Line != ign.pos.Line+1 {
				continue
			}
			for _, c := range ign.checks {
				if c == d.Check {
					ign.used = true
					suppressed = true
					silenced = append(silenced, Suppressed{Diagnostic: d, Reason: ign.reason})
					break
				}
			}
			if suppressed {
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out, silenced
}

// staleIgnores reports directives that suppressed nothing: the finding
// they were written for is gone and the comment should be removed.
func staleIgnores(igns []*ignoreDirective) []Diagnostic {
	var out []Diagnostic
	for _, ign := range igns {
		if ign.used {
			continue
		}
		// Unknown-check directives are already reported; a stale report on
		// top would be double noise for one mistake.
		allKnown := true
		for _, c := range ign.checks {
			if !knownCheck(c) {
				allKnown = false
				break
			}
		}
		if !allKnown {
			continue
		}
		out = append(out, Diagnostic{
			Check: "ignore", Pos: ign.pos,
			Message: "stale //lint:ignore cdnlint/" + strings.Join(ign.checks, ",cdnlint/") +
				": no matching finding on this or the next line; remove the suppression",
		})
	}
	return out
}
