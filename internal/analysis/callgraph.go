package analysis

import (
	"go/ast"
	"go/types"
)

// Package-local call graph shared by the interprocedural passes (shardsafe
// ownership propagation, detflow taint summaries). It is deliberately
// simple: nodes are the package's own FuncDecls, edges are direct calls
// resolved through go/types. Calls through function values, interfaces, or
// other packages have no edge — the passes that use the graph are written
// to stay sound (or at worst quiet) under that approximation.

// funcInfo is one package function (or method) in the call graph.
type funcInfo struct {
	decl *ast.FuncDecl
	obj  *types.Func

	// callees/callers are deduplicated direct in-package call edges, in
	// source order (the order edges were discovered walking the files).
	callees []*funcInfo
	callers []*funcInfo
}

// callGraph holds every FuncDecl of one package with its call edges.
type callGraph struct {
	funcs []*funcInfo // declaration order across the package's files
	byObj map[*types.Func]*funcInfo
}

// buildCallGraph constructs the package-local call graph for the pass's
// package.
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{byObj: map[*types.Func]*funcInfo{}}
	for _, fd := range funcDecls(pass.Files) {
		obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			continue
		}
		fi := &funcInfo{decl: fd, obj: obj}
		g.funcs = append(g.funcs, fi)
		g.byObj[obj] = fi
	}
	for _, fi := range g.funcs {
		if fi.decl.Body == nil {
			continue
		}
		seen := map[*funcInfo]bool{}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			callee, ok := g.byObj[fn]
			if !ok || seen[callee] {
				return true
			}
			seen[callee] = true
			fi.callees = append(fi.callees, callee)
			callee.callers = append(callee.callers, fi)
			return true
		})
	}
	return g
}

// funcFor resolves an object (typically from Info.Uses on an ident passed
// as a callback) to its call-graph node, or nil.
func (g *callGraph) funcFor(obj types.Object) *funcInfo {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return g.byObj[fn]
}
