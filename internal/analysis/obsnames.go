package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
)

// AnalyzerObsnames (cdnlint/obsnames) keeps the obs metric namespace
// statically known: every name passed to Registry.Counter / Gauge /
// Histogram (and the Volatile variants) must be a compile-time constant
// and a valid Prometheus metric name, and within a package each name must
// be registered from exactly one call site. Dynamic names fragment the
// metric namespace per run (cardinality no dashboard can predict), invalid
// names fail only when a scraper finally parses the exposition, and
// duplicate registrations either alias one time series from two owners or
// — name reused across kinds — panic the registry. The obs package itself
// is exempt: its Volatile* wrappers forward the caller's name by design.
var AnalyzerObsnames = &Analyzer{
	Name: "obsnames",
	Doc: "require obs metric names to be compile-time constants, valid Prometheus names, " +
		"registered from exactly one call site per package",
	Run: runObsnames,
}

var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// obsRegKinds maps Registry method names to the registered kind.
var obsRegKinds = map[string]string{
	"Counter": "counter", "Gauge": "gauge", "Histogram": "histogram",
	"VolatileCounter": "volatile counter", "VolatileGauge": "volatile gauge",
	"VolatileHistogram": "volatile histogram",
}

func runObsnames(pass *Pass) {
	if pkgPathHasSuffix(pass.Pkg.Path(), "internal/obs") {
		return // the registry's own accessors forward name parameters
	}
	type registration struct {
		kind string
		pos  token.Pos
	}
	seen := map[string][]registration{}
	var order []string // first-seen order, for deterministic reports
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || !pkgPathHasSuffix(fn.Pkg().Path(), "internal/obs") {
				return true
			}
			kind, ok := obsRegKinds[fn.Name()]
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if named, ok := derefNamed(sig.Recv().Type()); !ok || named.Obj().Name() != "Registry" {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "obs metric name must be a compile-time constant so the metric "+
					"namespace is statically known; dynamic families have unbounded cardinality — "+
					"enumerate the names, or suppress with the reason the family is bounded")
				return true
			}
			name := constant.StringVal(tv.Value)
			if !promNameRE.MatchString(name) {
				pass.Reportf(arg.Pos(), "obs metric name %q is not a valid Prometheus metric name "+
					"(must match %s)", name, promNameRE.String())
				return true
			}
			if len(seen[name]) == 0 {
				order = append(order, name)
			}
			seen[name] = append(seen[name], registration{kind: kind, pos: arg.Pos()})
			return true
		})
	}
	for _, name := range order {
		regs := seen[name]
		if len(regs) < 2 {
			continue
		}
		for _, r := range regs[1:] {
			if r.kind != regs[0].kind {
				pass.Reportf(r.pos, "obs metric %q registered as both %s and %s; one name owns one kind",
					name, regs[0].kind, r.kind)
			} else {
				pass.Reportf(r.pos, "obs metric %q registered from %d call sites in this package; "+
					"register once and share the handle", name, len(regs))
			}
		}
	}
}
