package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// AnalyzerDetflow (cdnlint/detflow) is the flow-sensitive upgrade of
// detrand: instead of flagging nondeterminism sources at the call site, it
// tracks their values through a package-local taint analysis and reports
// only the flows that reach a determinism-critical sink. detrand keeps the
// simulation packages clean wholesale; detflow covers everything else —
// control plane, experiment runner, wire encoding — where wall-clock reads
// are legitimate for logging but must never leak into artifacts that two
// bit-identical worlds are compared by.
//
// Sources: wall-clock time (any call returning time.Time, which catches
// clock reads hiding behind func-typed fields; time.Since/Until), the
// global math/rand generators, crypto/rand, environment reads (os.Getenv
// and friends), and pointer formatting ("%p").
//
// Propagation: through assignments, composite literals, arithmetic,
// method calls on tainted receivers, and — package-locally — through
// calls: a function whose return is tainted taints its callers, and a
// function that forwards a parameter into a sink turns its call sites into
// sinks (the "deterministic until three stack frames deep" class).
//
// Sinks: digest computations (callees with digest/fingerprint in the
// name, anything in crypto/* or hash, fmt.Fprint* into a hash), snapshot
// entry points, JSON wire encoding, and writes into pkg/bestofboth/api
// wire structs.
//
// Map iteration order is a source too, but only direct uses of the range
// variables in a sink inside the loop are flagged; the sanctioned
// collect-sort-iterate pattern launders the order legitimately (and
// maporder covers the append-without-sort class in simulation packages).
var AnalyzerDetflow = &Analyzer{
	Name: "detflow",
	Doc: "taint-track nondeterminism sources (wall clock, global rand, env, map order, %p) through " +
		"package-local flows and flag any value reaching a digest, snapshot, or wire-encoding sink",
	Run: runDetflow,
}

func runDetflow(pass *Pass) {
	if pkgPathHasSuffix(pass.Pkg.Path(), "internal/obs") {
		return // instrumentation is wall-clock by design (volatile metrics)
	}
	cg := buildCallGraph(pass)
	fa := &flowAnalysis{
		pass:      pass,
		cg:        cg,
		summaries: map[*funcInfo]*flowSummary{},
		reported:  map[string]bool{},
	}
	for _, fi := range cg.funcs {
		fa.summaries[fi] = &flowSummary{}
	}
	// Interprocedural fixpoint: function summaries grow monotonically until
	// stable, then one reporting pass collects diagnostics.
	for changed := true; changed; {
		changed = false
		for _, fi := range cg.funcs {
			if fi.decl.Body == nil {
				continue
			}
			if fa.analyzeFunc(fi, false) {
				changed = true
			}
		}
	}
	for _, fi := range cg.funcs {
		if fi.decl.Body == nil {
			continue
		}
		fa.analyzeFunc(fi, true)
	}
	sort.Slice(fa.finds, func(i, j int) bool {
		a, b := fa.finds[i], fa.finds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Offset != b.Pos.Offset {
			return a.Pos.Offset < b.Pos.Offset
		}
		return a.Message < b.Message
	})
	*pass.diags = append(*pass.diags, fa.finds...)
}

// tagSet is a set of taint tags: human-readable source descriptions, plus
// internal parameter markers ("«param:N»", receiver = -1) used to build
// function summaries.
type tagSet map[string]bool

func paramTag(i int) string { return "«param:" + strconv.Itoa(i) + "»" }

func isParamTag(tag string) bool { return strings.HasPrefix(tag, "«param:") }

func (t tagSet) add(tags tagSet) bool {
	changed := false
	for tag := range tags {
		if !t[tag] {
			t[tag] = true
			changed = true
		}
	}
	return changed
}

func union(a, b tagSet) tagSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := tagSet{}
	out.add(a)
	out.add(b)
	return out
}

// flowSummary is the interprocedural abstract of one function.
type flowSummary struct {
	// retTags are source tags (never param markers) reaching a return.
	retTags tagSet
	// retParams are parameter indices whose value reaches a return.
	retParams map[int]bool
	// sinkParams maps parameter indices forwarded into a sink to the sink's
	// description.
	sinkParams map[int]string
}

type flowAnalysis struct {
	pass      *Pass
	cg        *callGraph
	summaries map[*funcInfo]*flowSummary
	finds     []Diagnostic
	reported  map[string]bool
}

// analyzeFunc runs the intra-function taint fixpoint for fi, updating its
// summary; it returns whether the summary grew. When report is set it also
// records diagnostics for source tags reaching sinks.
func (fa *flowAnalysis) analyzeFunc(fi *funcInfo, report bool) bool {
	env := &flowEnv{
		fa:     fa,
		fi:     fi,
		taint:  map[*types.Var]tagSet{},
		params: map[*types.Var]int{},
		report: report,
	}
	// Seed parameters (and the receiver, index -1) with their markers so
	// flows from them show up in the summary.
	if fi.decl.Recv != nil && len(fi.decl.Recv.List) == 1 && len(fi.decl.Recv.List[0].Names) == 1 {
		if v, ok := fa.pass.Info.Defs[fi.decl.Recv.List[0].Names[0]].(*types.Var); ok {
			env.params[v] = -1
			env.taint[v] = tagSet{paramTag(-1): true}
		}
	}
	i := 0
	for _, field := range fi.decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if v, ok := fa.pass.Info.Defs[name].(*types.Var); ok {
				env.params[v] = i
				env.taint[v] = tagSet{paramTag(i): true}
			}
			i++
		}
	}
	// Intra-function fixpoint over assignments; the taint lattice is
	// finite, but cap defensively.
	for round := 0; round < 32; round++ {
		if !env.propagate(fi.decl.Body) {
			break
		}
	}
	env.checking = true
	env.propagate(fi.decl.Body) // final walk: sinks, returns, summaries
	return env.grew
}

// flowEnv is the per-function taint state.
type flowEnv struct {
	fa           *flowAnalysis
	fi           *funcInfo
	taint        map[*types.Var]tagSet
	params       map[*types.Var]int
	checking     bool // final walk: evaluate sinks/returns
	report       bool // record diagnostics (last interprocedural round only)
	grew         bool // summary grew this run
	cachedRanges *[]mapRange
}

// propagate walks the body once, merging taint through assignments. It
// returns whether any variable's tag set grew.
func (e *flowEnv) propagate(body *ast.BlockStmt) bool {
	changed := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			tupleTags := tagSet{}
			if len(st.Lhs) != len(st.Rhs) && len(st.Rhs) == 1 {
				tupleTags = e.exprTags(st.Rhs[0]) // v, ok := f() — taint both
			}
			for i, lhs := range st.Lhs {
				var tags tagSet
				var rhs ast.Expr
				if len(st.Lhs) == len(st.Rhs) {
					rhs = st.Rhs[i]
					tags = e.exprTags(rhs)
				} else {
					if len(st.Rhs) == 1 {
						rhs = st.Rhs[0]
					}
					tags = tupleTags
				}
				if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
					// x += y: old taint persists, new taint merges.
					tags = union(tags, e.exprTags(lhs))
				}
				if e.assignTo(lhs, tags) {
					changed = true
				}
				if e.checking {
					e.checkWireWrite(lhs, rhs, tags)
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) {
					if e.assignTo(name, e.exprTags(st.Values[i])) {
						changed = true
					}
				}
			}
		case *ast.RangeStmt:
			tags := e.exprTags(st.X)
			for _, kv := range []ast.Expr{st.Key, st.Value} {
				if kv != nil {
					if e.assignTo(kv, tags) {
						changed = true
					}
				}
			}
		case *ast.CallExpr:
			if e.checking {
				e.checkSinkCall(st)
			}
		case *ast.CompositeLit:
			if e.checking {
				e.checkWireComposite(st)
			}
		case *ast.ReturnStmt:
			if e.checking {
				for _, r := range st.Results {
					e.recordReturn(e.exprTags(r))
				}
			}
		}
		return true
	})
	return changed
}

// assignTo merges tags into the variable behind lhs: a plain ident, or the
// root of an index/deref expression (a container accumulating tainted
// elements). Field writes don't taint the whole struct — the wire-write
// sink check handles the case that matters.
func (e *flowEnv) assignTo(lhs ast.Expr, tags tagSet) bool {
	if len(tags) == 0 {
		return false
	}
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := e.fa.pass.Info.Defs[x]
		if obj == nil {
			obj = e.fa.pass.Info.Uses[x]
		}
		if v, ok := obj.(*types.Var); ok {
			if e.taint[v] == nil {
				e.taint[v] = tagSet{}
			}
			return e.taint[v].add(tags)
		}
	case *ast.IndexExpr:
		return e.assignTo(x.X, tags)
	case *ast.StarExpr:
		return e.assignTo(x.X, tags)
	}
	return false
}

// exprTags computes the taint tags of an expression.
func (e *flowEnv) exprTags(x ast.Expr) tagSet {
	switch v := x.(type) {
	case *ast.Ident:
		obj := e.fa.pass.Info.Uses[v]
		if obj == nil {
			obj = e.fa.pass.Info.Defs[v]
		}
		if vr, ok := obj.(*types.Var); ok {
			return e.taint[vr]
		}
	case *ast.SelectorExpr:
		// Fields/methods of a tainted value are tainted. Package-qualified
		// selectors have no tainted base.
		if sel := e.fa.pass.Info.Selections[v]; sel != nil {
			return e.exprTags(v.X)
		}
	case *ast.CallExpr:
		return e.callTags(v)
	case *ast.ParenExpr:
		return e.exprTags(v.X)
	case *ast.StarExpr:
		return e.exprTags(v.X)
	case *ast.UnaryExpr:
		return e.exprTags(v.X)
	case *ast.BinaryExpr:
		return union(e.exprTags(v.X), e.exprTags(v.Y))
	case *ast.IndexExpr:
		return e.exprTags(v.X)
	case *ast.SliceExpr:
		return e.exprTags(v.X)
	case *ast.TypeAssertExpr:
		return e.exprTags(v.X)
	case *ast.CompositeLit:
		// Struct literals stay consistent with field-insensitive
		// assignment: a tainted field doesn't taint the whole value (the
		// wire-composite check still inspects the elements). Container
		// literals (slices, arrays, maps) do absorb their elements.
		if t := typeOf(e.fa.pass.Info, v); t != nil {
			if _, isStruct := t.Underlying().(*types.Struct); isStruct {
				return nil
			}
			if p, ok := t.Underlying().(*types.Pointer); ok {
				if _, isStruct := p.Elem().Underlying().(*types.Struct); isStruct {
					return nil
				}
			}
		}
		tags := tagSet{}
		for _, elt := range v.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				tags.add(e.exprTags(kv.Value))
			} else {
				tags.add(e.exprTags(elt))
			}
		}
		return tags
	}
	return nil
}

// callTags computes the taint of a call's result: source rules, summary
// rules for in-package callees, and conservative arg/receiver propagation
// for everything else.
func (e *flowEnv) callTags(call *ast.CallExpr) tagSet {
	info := e.fa.pass.Info
	// Conversions propagate their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return e.exprTags(call.Args[0])
	}
	argTags := func() tagSet {
		tags := tagSet{}
		for _, a := range call.Args {
			tags.add(e.exprTags(a))
		}
		return tags
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		// Builtins and calls through function values: propagate args; a
		// func-typed field returning time.Time is caught by the result-type
		// rule.
		tags := tagSet{}
		tags.add(argTags())
		tags.add(e.resultTimeTags(call))
		return tags
	}
	if fn.Pkg() != nil && fn.Pkg() != e.fa.pass.Pkg {
		tags := tagSet{}
		if src := sourceCallTag(e.fa.pass, fn, call); src != "" {
			tags[src] = true
		}
		// External call: conservatively propagate args and receiver.
		tags.add(argTags())
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && info.Selections[sel] != nil {
			tags.add(e.exprTags(sel.X))
		}
		tags.add(e.resultTimeTags(call))
		return tags
	}
	// In-package call: apply the callee's summary.
	tags := tagSet{}
	if fi := e.fa.cg.byObj[fn]; fi != nil {
		sum := e.fa.summaries[fi]
		tags.add(sum.retTags)
		for i := range sum.retParams {
			tags.add(e.argumentTags(call, i))
		}
	} else {
		tags.add(argTags())
	}
	tags.add(e.resultTimeTags(call))
	return tags
}

// argumentTags returns the tags of call's i'th parameter value (receiver =
// -1), accounting for method calls.
func (e *flowEnv) argumentTags(call *ast.CallExpr, i int) tagSet {
	if i == -1 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && e.fa.pass.Info.Selections[sel] != nil {
			return e.exprTags(sel.X)
		}
		return nil
	}
	if i < len(call.Args) {
		return e.exprTags(call.Args[i])
	}
	return nil
}

// resultTimeTags tags any call whose result includes a time.Time: the
// clock read may hide behind a func-typed field or an interface, where
// name-based source rules can't see it.
func (e *flowEnv) resultTimeTags(call *ast.CallExpr) tagSet {
	tv, ok := e.fa.pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	isTime := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "Time" && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "time"
	}
	hit := false
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isTime(tup.At(i).Type()) {
				hit = true
			}
		}
	} else if isTime(tv.Type) {
		hit = true
	}
	if hit {
		return tagSet{"wall-clock time (a time.Time-returning call)": true}
	}
	return nil
}

// sourceCallTag recognizes out-of-package nondeterminism sources and
// returns the tag describing them, or "".
func sourceCallTag(pass *Pass, fn *types.Func, call *ast.CallExpr) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "" // methods: a seeded *rand.Rand draw is deterministic
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch path {
	case "time":
		switch name {
		case "Now":
			return "wall-clock time (time.Now)"
		case "Since", "Until":
			return "wall-clock duration (time." + name + ")"
		}
	case "math/rand", "math/rand/v2":
		if !detrandAllowed[name] {
			return "global " + path + " draw (" + name + ")"
		}
	case "crypto/rand":
		return "crypto/rand randomness"
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ", "Hostname", "Getpid", "Getppid", "Getwd", "TempDir":
			return "environment read (os." + name + ")"
		}
	case "fmt":
		if strings.HasPrefix(name, "Sprint") || strings.HasPrefix(name, "Append") {
			for _, a := range call.Args {
				if tv, ok := pass.Info.Types[a]; ok && tv.Value != nil &&
					strings.Contains(tv.Value.String(), "%p") {
					return "pointer formatting (%p)"
				}
			}
		}
	}
	return ""
}

// recordReturn folds return-expression tags into the function summary.
func (e *flowEnv) recordReturn(tags tagSet) {
	sum := e.fa.summaries[e.fi]
	for tag := range tags {
		if isParamTag(tag) {
			for _, i := range e.params {
				if tag == paramTag(i) {
					if sum.retParams == nil {
						sum.retParams = map[int]bool{}
					}
					if !sum.retParams[i] {
						sum.retParams[i] = true
						e.grew = true
					}
				}
			}
			continue
		}
		if sum.retTags == nil {
			sum.retTags = tagSet{}
		}
		if !sum.retTags[tag] {
			sum.retTags[tag] = true
			e.grew = true
		}
	}
}

// checkSinkCall evaluates one call as a potential sink: the external sink
// classes, plus in-package callees whose summary forwards a parameter into
// a sink.
func (e *flowEnv) checkSinkCall(call *ast.CallExpr) {
	info := e.fa.pass.Info
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if desc, args := sinkCallDesc(e.fa.pass, fn, call); desc != "" {
		for _, a := range args {
			e.consumeSink(a.Pos(), desc, e.exprTags(a))
			e.checkMapOrderUse(a, desc)
		}
		return
	}
	if fn.Pkg() != e.fa.pass.Pkg {
		return
	}
	fi := e.fa.cg.byObj[fn]
	if fi == nil {
		return
	}
	sum := e.fa.summaries[fi]
	// Deterministic order over the small param index space.
	for i := -1; i < len(call.Args); i++ {
		desc, ok := sum.sinkParams[i]
		if !ok {
			continue
		}
		arg := call.Fun
		if i >= 0 {
			arg = call.Args[i]
		}
		tags := e.argumentTags(call, i)
		e.consumeSink(arg.Pos(), desc+" (via "+fn.Name()+")", tags)
		if i >= 0 {
			e.checkMapOrderUse(call.Args[i], desc+" (via "+fn.Name()+")")
		}
	}
}

// sinkCallDesc classifies a call as a direct determinism-critical sink,
// returning a description and the arguments whose taint matters.
func sinkCallDesc(pass *Pass, fn *types.Func, call *ast.CallExpr) (string, []ast.Expr) {
	info := pass.Info
	name := fn.Name()
	lower := strings.ToLower(name)
	// fmt.Fprintf(h, ...) where h is a hash: writing into a digest.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		if t := typeOf(info, call.Args[0]); t != nil {
			if named, ok := derefNamed(t); ok && named.Obj().Pkg() != nil {
				p := named.Obj().Pkg().Path()
				if p == "hash" || strings.HasPrefix(p, "crypto/") || strings.HasPrefix(p, "hash/") {
					return "a hash being written (" + named.Obj().Name() + ")", call.Args[1:]
				}
			}
		}
		return "", nil
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		p := fn.Pkg().Path()
		if p == "hash" || strings.HasPrefix(p, "crypto/") || strings.HasPrefix(p, "hash/") {
			return "the " + p + "." + name + " hash", call.Args
		}
		if pkgPathHasSuffix(p, "encoding/json") && (name == "Marshal" || name == "MarshalIndent" || name == "Encode") {
			return "JSON wire encoding (json." + name + ")", call.Args
		}
	}
	if strings.Contains(lower, "digest") || strings.Contains(lower, "fingerprint") {
		return "digest computation (" + name + ")", call.Args
	}
	if strings.HasPrefix(lower, "snapshot") && len(call.Args) > 0 {
		return "snapshot state (" + name + ")", call.Args
	}
	return "", nil
}

// checkWireWrite flags assignments into pkg/bestofboth/api struct fields.
func (e *flowEnv) checkWireWrite(lhs, rhs ast.Expr, tags tagSet) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := e.fa.pass.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	named, ok := derefNamed(s.Recv())
	if !ok || named.Obj().Pkg() == nil || !pkgPathHasSuffix(named.Obj().Pkg().Path(), "bestofboth/api") {
		return
	}
	desc := "wire field api." + named.Obj().Name() + "." + sel.Sel.Name
	e.consumeSink(sel.Sel.Pos(), desc, tags)
	if rhs != nil {
		e.checkMapOrderUse(rhs, desc)
	}
}

// checkWireComposite flags tainted elements in pkg/bestofboth/api struct
// literals.
func (e *flowEnv) checkWireComposite(lit *ast.CompositeLit) {
	t := typeOf(e.fa.pass.Info, lit)
	if t == nil {
		return
	}
	named, ok := derefNamed(t)
	if !ok || named.Obj().Pkg() == nil || !pkgPathHasSuffix(named.Obj().Pkg().Path(), "bestofboth/api") {
		return
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return
	}
	for _, elt := range lit.Elts {
		value := elt
		field := ""
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			value = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				field = "." + id.Name
			}
		}
		desc := "wire literal api." + named.Obj().Name() + field
		e.consumeSink(value.Pos(), desc, e.exprTags(value))
		e.checkMapOrderUse(value, desc)
	}
}

// consumeSink reports source tags reaching a sink and folds param markers
// into the function's sink summary.
func (e *flowEnv) consumeSink(pos token.Pos, desc string, tags tagSet) {
	sum := e.fa.summaries[e.fi]
	var srcs []string
	for tag := range tags {
		if isParamTag(tag) {
			for _, i := range e.params {
				if tag == paramTag(i) {
					if sum.sinkParams == nil {
						sum.sinkParams = map[int]string{}
					}
					if _, ok := sum.sinkParams[i]; !ok {
						sum.sinkParams[i] = desc
						e.grew = true
					}
				}
			}
			continue
		}
		srcs = append(srcs, tag)
	}
	if !e.report || len(srcs) == 0 {
		return
	}
	sort.Strings(srcs)
	e.reportFlow(pos, srcs[0], desc)
}

// checkMapOrderUse flags direct uses of a map-range variable in a sink
// argument inside its own loop body.
func (e *flowEnv) checkMapOrderUse(arg ast.Expr, desc string) {
	if !e.report {
		return
	}
	info := e.fa.pass.Info
	ast.Inspect(arg, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		for _, mr := range e.mapRanges() {
			if mr.vars[v] && id.Pos() >= mr.body.Pos() && id.Pos() < mr.body.End() {
				e.reportFlow(id.Pos(), "map iteration order (range variable "+v.Name()+")", desc)
			}
		}
		return true
	})
}

type mapRange struct {
	body *ast.BlockStmt
	vars map[*types.Var]bool
}

// mapRanges lazily collects the function's map-range statements and their
// key/value variables.
func (e *flowEnv) mapRanges() []mapRange {
	if e.cachedRanges != nil {
		return *e.cachedRanges
	}
	out := []mapRange{}
	info := e.fa.pass.Info
	ast.Inspect(e.fi.decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := typeOf(info, rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		vars := map[*types.Var]bool{}
		for _, kv := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := kv.(*ast.Ident); ok {
				if v, ok := info.Defs[id].(*types.Var); ok {
					vars[v] = true
				}
			}
		}
		if len(vars) > 0 {
			out = append(out, mapRange{body: rs.Body, vars: vars})
		}
		return true
	})
	e.cachedRanges = &out
	return out
}

// reportFlow records one deduplicated diagnostic.
func (e *flowEnv) reportFlow(pos token.Pos, src, sink string) {
	fa := e.fa
	p := fa.pass.Fset.Position(pos)
	msg := "nondeterministic " + src + " flows into " + sink +
		"; deterministic artifacts must derive only from seeded/virtual state"
	key := p.String() + "|" + msg
	if fa.reported[key] {
		return
	}
	fa.reported[key] = true
	fa.finds = append(fa.finds, Diagnostic{Check: fa.pass.Analyzer.Name, Pos: p, Message: msg})
}
