package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerMaporder (cdnlint/maporder) flags `for ... range m` over a map
// inside the deterministic packages when the loop body feeds the
// iteration order into ordered state. Go randomizes map iteration per
// run, so any such flow breaks the bit-identical-runs invariant. Three
// flows are recognized:
//
//   - appending to a slice declared outside the loop, with no later
//     sort of that slice in the same function (collect-then-sort is the
//     sanctioned pattern and is not flagged);
//   - calling an order-sensitive sink: a netsim scheduling method
//     (At/AtCall/After/AfterTimer — events tie-break by sequence number,
//     so insertion order is observable) or a pointer-receiver mutator
//     whose name starts with Add or contains Digest (builders,
//     accumulators, hashes), excluding the obs package whose counters
//     are commutative;
//   - threading a loop-carried scalar: an outer variable both written
//     and read in the body (the `idx++` pattern), which gives each
//     element a value dependent on its position in the random order.
//
// The fix is always the same: pull the keys into a slice, sort, and
// range over the slice.
var AnalyzerMaporder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration feeding appends (without a later sort), order-sensitive sinks, or " +
		"loop-carried accumulators in deterministic packages; sort keys first",
	Run: runMaporder,
}

func runMaporder(pass *Pass) {
	if !isDeterministicPkg(pass.Pkg.Path()) && !pkgPathHasSuffix(pass.Pkg.Path(), "internal/experiment") {
		return
	}
	for _, fd := range funcDecls(pass.Files) {
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if tv, ok := pass.Info.Types[rs.X]; !ok || tv.Type == nil {
				return true
			} else if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.checkMapRange(fd, rs)
			return true
		})
	}
}

func (p *Pass) checkMapRange(fd *ast.FuncDecl, rs *ast.RangeStmt) {
	type span struct{ lo, hi token.Pos }
	writes := map[*types.Var][]token.Pos{} // outer scalars written in the body
	selfOK := map[*types.Var][]span{}      // RHS spans where self-reads are commutative
	reads := map[*types.Var]bool{}         // outer scalars read outside their own update

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v := p.outerVar(id, rs)
				if v == nil {
					continue
				}
				if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
					// Compound update (x += y, x |= y, ...): commutative for
					// integers and booleans, order-dependent for floats
					// (rounding) and strings (concatenation).
					if !commutativeAccum(v.Type()) {
						p.Reportf(st.Pos(), "compound accumulation into %s %s across map iterations is "+
							"order-dependent; map order is randomized per run — iterate sorted keys instead",
							v.Type().String(), v.Name())
					} else {
						writes[v] = append(writes[v], id.Pos())
					}
					continue
				}
				if i < len(st.Rhs) && len(st.Lhs) == len(st.Rhs) {
					if call, ok := st.Rhs[i].(*ast.CallExpr); ok && p.isAppendTo(call, v) {
						if !p.sortedLater(fd, rs, v) {
							p.Reportf(st.Pos(), "append to %s inside map iteration with no later sort; "+
								"map order is randomized per run — sort the keys (or the result) first", v.Name())
						}
						continue // self-append is not a loop-carried scalar
					}
					// x = x + y with integer x is the spelled-out compound
					// form; reads of x inside this RHS stay commutative.
					if commutativeAccum(v.Type()) {
						selfOK[v] = append(selfOK[v], span{st.Rhs[i].Pos(), st.Rhs[i].End()})
					}
				}
				writes[v] = append(writes[v], id.Pos())
			}
		case *ast.IncDecStmt:
			if id, ok := st.X.(*ast.Ident); ok {
				if v := p.outerVar(id, rs); v != nil {
					writes[v] = append(writes[v], id.Pos())
				}
			}
		case *ast.CallExpr:
			p.checkMapRangeSink(st)
		}
		return true
	})

	// Second pass: reads of the written outer scalars, excluding the ident
	// occurrences that are themselves the write target (x++ alone is a
	// commutative counter; x++ plus use(x) threads the iteration order).
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || writes[v] == nil {
			return true
		}
		for _, wp := range writes[v] {
			if id.Pos() == wp {
				return true
			}
		}
		for _, sp := range selfOK[v] {
			if id.Pos() >= sp.lo && id.Pos() < sp.hi {
				return true
			}
		}
		reads[v] = true
		return true
	})
	// Report deterministically: writes in source order.
	var flagged []*types.Var
	for v := range writes {
		if reads[v] {
			flagged = append(flagged, v)
		}
	}
	for i := 0; i < len(flagged); i++ {
		for j := i + 1; j < len(flagged); j++ {
			if writes[flagged[j]][0] < writes[flagged[i]][0] {
				flagged[i], flagged[j] = flagged[j], flagged[i]
			}
		}
	}
	for _, v := range flagged {
		p.Reportf(writes[v][0], "loop-carried variable %s is written and read across map iterations; "+
			"its per-element value depends on randomized map order — iterate sorted keys instead", v.Name())
	}
}

// commutativeAccum reports whether repeated compound accumulation into a
// value of type t is order-independent: integer arithmetic and boolean
// or/and are; float addition (rounding) and string concatenation are not.
func commutativeAccum(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// outerVar resolves id to a variable declared outside the range statement,
// or nil. Variables born inside the loop can't leak iteration order out.
func (p *Pass) outerVar(id *ast.Ident, rs *ast.RangeStmt) *types.Var {
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pos() == token.NoPos {
		return nil
	}
	if v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
		return nil
	}
	return v
}

// isAppendTo reports whether call is append(v, ...) for the given slice
// variable.
func (p *Pass) isAppendTo(call *ast.CallExpr, v *types.Var) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && p.Info.Uses[arg] == v
}

// sortedLater reports whether, after the range statement, the enclosing
// function sorts the slice variable: a call into package sort, or a
// slices.Sort* call, taking v as an argument.
func (p *Pass) sortedLater(fd *ast.FuncDecl, rs *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sorts := fn.Pkg().Path() == "sort" ||
			(fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if !sorts {
			return true
		}
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok && p.Info.Uses[id] == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// netsimScheduling lists the Sim methods that insert into the event
// queue; insertion order decides tie-breaks between same-time events.
var netsimScheduling = map[string]bool{
	"At": true, "AtCall": true, "After": true, "AfterTimer": true,
}

// checkMapRangeSink flags calls that consume values in iteration order:
// netsim event scheduling and pointer-receiver accumulator methods.
func (p *Pass) checkMapRangeSink(call *ast.CallExpr) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	recv := sig.Recv().Type()
	_, isPtr := recv.(*types.Pointer)
	if pkgPathHasSuffix(fn.Pkg().Path(), "netsim") && netsimScheduling[fn.Name()] {
		if named, ok := derefNamed(recv); ok && named.Obj().Name() == "Sim" {
			p.Reportf(call.Pos(), "%s schedules an event inside map iteration; same-time events tie-break "+
				"by insertion order, which map order randomizes — iterate sorted keys instead", fn.Name())
		}
		return
	}
	if pkgPathHasSuffix(fn.Pkg().Path(), "obs") {
		return // obs counters are commutative by contract
	}
	if !isPtr {
		return // value receivers can't accumulate; t.Add(d) style is pure
	}
	if strings.HasPrefix(fn.Name(), "Add") || strings.Contains(fn.Name(), "Digest") {
		p.Reportf(call.Pos(), "%s called inside map iteration feeds an order-sensitive accumulator; "+
			"map order is randomized per run — iterate sorted keys instead", fn.Name())
	}
}

// derefNamed unwraps one pointer level and returns the named type, if any.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}
