package analysis

import (
	"strings"
	"testing"
)

func TestDetrand(t *testing.T) {
	runFixture(t, "detrand/internal/bgp", []*Analyzer{AnalyzerDetrand}, Options{StaleCheck: true})
}

func TestDetrandOutsideDeterministicPackages(t *testing.T) {
	diags := runFixture(t, "detrand/plain", []*Analyzer{AnalyzerDetrand}, Options{StaleCheck: true})
	if len(diags) != 0 {
		t.Errorf("non-deterministic package should be exempt, got %v", diags)
	}
}

func TestMaporder(t *testing.T) {
	runFixture(t, "maporder/internal/topology", []*Analyzer{AnalyzerMaporder}, Options{StaleCheck: true})
}

func TestRoutefreeze(t *testing.T) {
	runFixture(t, "routefreeze/internal/bgp", []*Analyzer{AnalyzerRoutefreeze}, Options{StaleCheck: true})
}

func TestRoutefreezeCrossPackage(t *testing.T) {
	runFixture(t, "routefreeze/consumer", []*Analyzer{AnalyzerRoutefreeze}, Options{StaleCheck: true})
}

func TestAllocfree(t *testing.T) {
	runFixture(t, "allocfree/hot", []*Analyzer{AnalyzerAllocfree}, Options{StaleCheck: true})
}

func TestSnapshotfields(t *testing.T) {
	runFixture(t, "snapshotfields/snap", []*Analyzer{AnalyzerSnapshotfields}, Options{StaleCheck: true})
}

func TestShardsafe(t *testing.T) {
	runFixture(t, "shardsafe/internal/bgp", []*Analyzer{AnalyzerShardsafe}, Options{StaleCheck: true})
}

func TestDetflow(t *testing.T) {
	runFixture(t, "detflow/internal/ctlplane", []*Analyzer{AnalyzerDetflow}, Options{StaleCheck: true})
}

func TestWirestableSchema(t *testing.T) {
	runFixture(t, "wirestable/bestofboth/api", []*Analyzer{AnalyzerWirestable}, Options{StaleCheck: true})
}

func TestWirestableDifferCoverage(t *testing.T) {
	runFixture(t, "wirestable/internal/ctlplane", []*Analyzer{AnalyzerWirestable}, Options{StaleCheck: true})
}

func TestErrcmp(t *testing.T) {
	runFixture(t, "errcmp/cmd/collector", []*Analyzer{AnalyzerErrcmp}, Options{StaleCheck: true})
}

func TestObsnames(t *testing.T) {
	runFixture(t, "obsnames/metrics", []*Analyzer{AnalyzerObsnames}, Options{StaleCheck: true})
}

// TestSuppression covers the full //lint:ignore lifecycle: own-line and
// trailing suppression, mandatory reasons, unknown check names, stale
// directives, other tools' directives, and multi-check directives.
func TestSuppression(t *testing.T) {
	runFixture(t, "suppress/internal/core", All(), Options{StaleCheck: true})
}

// TestSuppressionSubsetRunSkipsStale checks the subset-run mode: with
// stale checking off, an unused directive for a check that is not being
// run must stay silent.
func TestSuppressionSubsetRunSkipsStale(t *testing.T) {
	analyzers, err := Select("detrand")
	if err != nil {
		t.Fatal(err)
	}
	diags := runFixture(t, "suppress/nostale", analyzers, Options{StaleCheck: false})
	if len(diags) != 0 {
		t.Errorf("subset run must not report stale ignores, got %v", diags)
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\") = %v, %v; want all analyzers", all, err)
	}
	sub, err := Select("detrand, cdnlint/maporder")
	if err != nil || len(sub) != 2 || sub[0].Name != "detrand" || sub[1].Name != "maporder" {
		t.Fatalf("Select subset = %v, %v", sub, err)
	}
	if _, err := Select("nope"); err == nil || !strings.Contains(err.Error(), "unknown check") {
		t.Fatalf("Select(nope) err = %v; want unknown check", err)
	}
}

func TestMarkerText(t *testing.T) {
	if text, ok := markerText("//cdnlint:nosnapshot rebuilt on wiring", "nosnapshot"); !ok || text != "rebuilt on wiring" {
		t.Errorf("markerText reason = %q, %v", text, ok)
	}
	if _, ok := markerText("//cdnlint:nosnapshotx", "nosnapshot"); ok {
		t.Error("markerText must not match prefix-extended markers")
	}
	if text, ok := markerText("//cdnlint:allocfree", "allocfree"); !ok || text != "" {
		t.Errorf("bare marker = %q, %v", text, ok)
	}
}
