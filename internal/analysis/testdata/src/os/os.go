// Package os is a skeletal stand-in for os, covering detflow's
// environment-read sources.
package os

func Getenv(key string) string            { return "" }
func LookupEnv(key string) (string, bool) { return "", false }
func Environ() []string                   { return nil }
func Hostname() (string, error)           { return "", nil }
func Getpid() int                         { return 0 }
func Getwd() (string, error)              { return "", nil }
