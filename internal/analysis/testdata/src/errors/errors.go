// Package errors is a skeletal stand-in for errors.
package errors

func New(text string) error { return &errorString{text} }

func Is(err, target error) bool { return err == target }

type errorString struct{ s string }

func (e *errorString) Error() string { return e.s }
