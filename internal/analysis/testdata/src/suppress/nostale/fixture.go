// Package nostale carries an unused suppression; with stale checking
// disabled (the subset-run mode) it must produce no diagnostics at all.
package nostale

func quiet() int {
	//lint:ignore cdnlint/detrand nothing here draws randomness anymore
	x := 2
	return x
}
