// Package core exercises the //lint:ignore machinery against detrand
// findings in a deterministic package path.
package core

import "time"

func ownLine() {
	//lint:ignore cdnlint/detrand startup banner, display only
	_ = time.Now()
}

func trailing() {
	_ = time.Now() //lint:ignore cdnlint/detrand same-line suppression works too
}

func missingReason() {
	// want+1 `missing a reason`
	//lint:ignore cdnlint/detrand
	_ = time.Now()
}

func unknownCheck() {
	// want+1 `unknown check cdnlint/nosuchcheck`
	//lint:ignore cdnlint/nosuchcheck misspelled directive
	_ = time.Now() // want `time\.Now reads the wall clock`
}

func stale() {
	// want+1 `stale //lint:ignore cdnlint/detrand`
	//lint:ignore cdnlint/detrand the finding this excused is long gone
	x := 1
	_ = x
}

func otherTool() {
	// Directives for other linters are none of cdnlint's business — and
	// they do not suppress cdnlint findings either.
	//lint:ignore SA1019 staticcheck suppression
	_ = time.Now() // want `time\.Now reads the wall clock`
}

func multiCheck(m map[string]int) []string {
	var keys []string
	//lint:ignore cdnlint/detrand,cdnlint/maporder seeding aside, order is rehashed downstream
	_ = time.Now()
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration`
	}
	return keys
}
