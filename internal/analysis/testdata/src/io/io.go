// Package io is a skeletal stand-in for io: just the EOF sentinel errcmp
// fixtures compare against.
package io

import "errors"

var EOF = errors.New("EOF")
