// Package bgp exercises cdnlint/routefreeze: Route is recognized by
// name within any package path ending in bgp, matching the real
// internal/bgp.
package bgp

type Route struct {
	Prefix    string
	Path      []uint32
	LocalPref int
}

// build constructs unpublished routes; mutation is its whole job.
//
//cdnlint:mutates-route
func build(pfx string) *Route {
	r := &Route{Prefix: pfx}
	r.LocalPref = 100 // annotated function: allowed
	r.Path = append(r.Path, 64500)
	return r
}

func tamper(r *Route) {
	r.LocalPref = 200         // want `write to field LocalPref of bgp\.Route`
	r.LocalPref++             // want `write to field LocalPref of bgp\.Route`
	r.Path[0] = 1             // want `element write into bgp\.Route\.Path`
	*r = Route{}              // want `write through \*bgp\.Route`
	copy(r.Path, []uint32{1}) // want `copy on bgp\.Route\.Path`
	_ = append(r.Path, 64501) // want `append on bgp\.Route\.Path`
}

func tamperValue(r Route) {
	r.Path[0] = 9     // want `element write into bgp\.Route\.Path`
	r.LocalPref = 300 // want `write to field LocalPref of bgp\.Route`
}

func reads(r *Route) int {
	if len(r.Path) > 0 {
		return int(r.Path[0]) // reads are always fine
	}
	return r.LocalPref
}

func freshCopy(r *Route) *Route {
	c := *r // copying the value is fine; writing it elsewhere is not
	return &c
}
