// Package consumer exercises routefreeze across package boundaries: a
// published *bgp.Route handed to another package is just as frozen.
package consumer

import "routefreeze/internal/bgp"

func tamper(r *bgp.Route) {
	r.LocalPref = 1 // want `write to field LocalPref of bgp\.Route`
}

func read(r *bgp.Route) int {
	return r.LocalPref
}
