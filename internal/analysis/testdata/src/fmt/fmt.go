// Package fmt is a skeletal stand-in for fmt.
package fmt

func Sprintf(format string, a ...any) string              { return "" }
func Sprint(a ...any) string                              { return "" }
func Errorf(format string, a ...any) error                { return nil }
func Printf(format string, a ...any) (int, error)         { return 0, nil }
func Println(a ...any) (int, error)                       { return 0, nil }
func Fprintf(w any, format string, a ...any) (int, error) { return 0, nil }
