// Package sort is a skeletal stand-in for sort.
package sort

func Strings(x []string)                    {}
func Ints(x []int)                          {}
func Slice(x any, less func(i, j int) bool) {}
