// Package hot exercises cdnlint/allocfree: checks apply only inside
// functions annotated //cdnlint:allocfree.
package hot

import "fmt"

type msg struct{ id int }

func sink(v any)        {}
func sinkAll(vs ...any) {}

// hotPath is a stand-in for the send/export fast path.
//
//cdnlint:allocfree
func hotPath(m *msg, buf []int) []int {
	f := func() {} // want `closure in //cdnlint:allocfree function hotPath`
	f()
	s := fmt.Sprintf("x%d", m.id) // want `fmt\.Sprintf in //cdnlint:allocfree function hotPath`
	_ = s
	mm := map[int]int{} // want `map literal in //cdnlint:allocfree function hotPath`
	_ = mm
	sl := []int{1, 2} // want `slice literal in //cdnlint:allocfree function hotPath`
	_ = sl
	var x any = *m // want `interface boxing of .*\.msg`
	_ = x
	sink(m)                 // pointers are interface-word-sized: no box
	sink(*m)                // want `interface boxing of .*\.msg`
	sinkAll(*m, m, nil)     // want `interface boxing of .*\.msg`
	buf = append(buf, m.id) // append into an existing slice is budgeted, not banned
	return buf
}

// coldExit shows the cold-path carve-out: formatting that feeds straight
// into a return or panic never runs in the measured regime.
//
//cdnlint:allocfree
func coldExit(id int) error {
	if id < 0 {
		panic(fmt.Sprintf("bad id %d", id)) // panic argument: allowed
	}
	if id > 1<<20 {
		return fmt.Errorf("id %d out of range", id) // direct return: allowed
	}
	return nil
}

func unannotated(m *msg) {
	_ = fmt.Sprintf("free %d", m.id) // no annotation, no checks
	_ = func() {}
	_ = map[int]int{}
	var x any = *m
	_ = x
}
