// Package rand is a skeletal stand-in for crypto/rand.
package rand

var Reader any

func Read(b []byte) (int, error) { return 0, nil }
