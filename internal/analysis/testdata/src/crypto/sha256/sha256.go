// Package sha256 is a skeletal stand-in for crypto/sha256. Digest stands
// in for the unexported real digest so fixtures can write into a live
// hash value.
package sha256

const Size = 32

type Digest struct{}

func (d *Digest) Write(p []byte) (int, error) { return len(p), nil }
func (d *Digest) Sum(b []byte) []byte         { return nil }

func New() *Digest { return &Digest{} }

func Sum256(data []byte) [Size]byte { return [Size]byte{} }
