// Package ctlplane exercises cdnlint/wirestable's diffStates coverage
// rule: every leaf of the api.WorldState schema must be compared by
// diffStates or one of its in-package callees, or exempted with a reason.
package ctlplane

import "bestofboth/api"

var diffExempt = map[string]string{
	"SiteState.Node":  "node identity is rotation-dependent by design",
	"SiteState.Bogus": "stale entry", // want `diffExempt names "SiteState\.Bogus", which is not a leaf`
}

// want+1 `schema leaf SiteState\.Addr is never compared by diffStates`
func diffStates(pred, act api.WorldState) []string {
	var out []string
	if pred.VirtualTime != act.VirtualTime {
		out = append(out, "virtualTime")
	}
	if pred.Technique != act.Technique {
		out = append(out, "technique")
	}
	for code, p := range pred.Sites {
		out = append(out, diffSite(p, act.Sites[code])...)
	}
	return out
}

func diffSite(p, a api.SiteState) []string {
	var out []string
	if p.Code != a.Code {
		out = append(out, "code")
	}
	if p.Prefix != a.Prefix {
		out = append(out, "prefix")
	}
	return out
}
