// Package api exercises cdnlint/wirestable's schema rules: explicit json
// tags, sorted-marshal wrappers on map fields, and apiVersion on
// top-level wire types.
package api

// Manifest is a top-level artifact and carries apiVersion.
type Manifest struct {
	APIVersion string            `json:"apiVersion"`
	Seed       int64             `json:"seed"`
	Notes      string            // want `exported wire field Manifest\.Notes has no explicit json tag`
	unexported int               // unexported fields are not wire format
	Meta       map[string]string `json:"meta"` // want `map-typed wire field Manifest\.Meta marshals in unspecified order`
	Tags       SortedTags        `json:"tags"`
	Inner      Inner             `json:"inner"`
}

// Inner is referenced by Manifest, so it needs no apiVersion of its own.
type Inner struct {
	Value int `json:"value"`
}

// SortedTags is the sanctioned shape for map-valued wire data: a named
// map type whose MarshalJSON emits keys in sorted order.
type SortedTags map[string]string

func (t SortedTags) MarshalJSON() ([]byte, error) { return nil, nil }

// Envelope embeds a struct; the embedded field is wire format too.
type Envelope struct {
	APIVersion string `json:"apiVersion"`
	Inner             // want `exported wire field Envelope\.Inner has no explicit json tag`
}

type Orphan struct { // want `top-level wire type Orphan has no apiVersion field`
	Name string `json:"name"`
}
