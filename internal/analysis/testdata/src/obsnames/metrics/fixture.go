// Package metrics exercises cdnlint/obsnames: metric names must be
// compile-time constants, valid Prometheus names, and registered from
// exactly one call site per package.
package metrics

import "internal/obs"

const reqName = "cdn_requests_total"

func register(r *obs.Registry, site string) {
	_ = r.Counter(reqName)
	_ = r.Gauge("cdn_queue_depth")
	_ = r.Histogram("cdn_rtt_seconds")
	_ = r.VolatileCounter("cdn_volatile_rounds_total")

	_ = r.Counter("cdn_site_" + site + "_total") // want `obs metric name must be a compile-time constant`
	_ = r.Gauge("9starts-with-digit")            // want `not a valid Prometheus metric name`
}

func registerAgain(r *obs.Registry) {
	_ = r.Counter(reqName)         // want `registered from 2 call sites`
	_ = r.Gauge("cdn_rtt_seconds") // want `registered as both histogram and gauge`
}
