// Package json is a skeletal stand-in for encoding/json.
package json

func Marshal(v any) ([]byte, error)                    { return nil, nil }
func MarshalIndent(v any, p, i string) ([]byte, error) { return nil, nil }
func Unmarshal(data []byte, v any) error               { return nil }
