// Package plain is outside the deterministic package list: wall-clock
// reads and global rand are allowed here (runner progress reporting,
// tooling).
package plain

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()
	_ = rand.Intn(10)
	return time.Since(start)
}
