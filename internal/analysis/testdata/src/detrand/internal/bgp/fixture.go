// Package bgp exercises cdnlint/detrand inside a deterministic package
// path (the import path ends in internal/bgp, so the analyzer is armed).
package bgp

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func globals() {
	_ = rand.Intn(10)                  // want `global math/rand\.Intn`
	_ = rand.Float64()                 // want `global math/rand\.Float64`
	_ = rand.Perm(4)                   // want `global math/rand\.Perm`
	rand.Shuffle(2, func(i, j int) {}) // want `global math/rand\.Shuffle`

	var b []byte
	_, _ = crand.Read(b) // want `crypto/rand\.Read is non-deterministic`
	_ = crand.Reader     // want `crypto/rand\.Reader is non-deterministic`

	_ = time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Second) // want `time\.Sleep reads the wall clock`
	var t0 time.Time
	_ = time.Since(t0) // want `time\.Since reads the wall clock`
}

func seeded() {
	r := rand.New(rand.NewSource(42)) // seeded constructors are the sanctioned path
	_ = r.Intn(10)                    // methods on a seeded *Rand are fine
	_ = r.Float64()
	r.Shuffle(2, func(i, j int) {})

	var t time.Time
	_ = t.Add(time.Second) // pure value arithmetic, no clock read
	var d time.Duration
	_ = d
}
