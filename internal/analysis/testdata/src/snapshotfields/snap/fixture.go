// Package snap exercises cdnlint/snapshotfields: structs touched by both
// a Snapshot- and a Restore-side function must have every field handled
// on both sides, exempted as obs instrumentation, or annotated
// //cdnlint:nosnapshot with a reason.
package snap

import "internal/obs"

type engine struct {
	cur  int
	acc  float64
	seed int64 // want `engine\.seed is not captured` `engine\.seed is not reinstated`

	wired *engine //cdnlint:nosnapshot wiring pointer, rebuilt by the caller
	// want+1 `missing a reason`
	noReason int //cdnlint:nosnapshot

	m obs.Counter // obs instrumentation is exempt
}

type engineSnap struct {
	cur int
	acc float64
}

func (e *engine) Snapshot() engineSnap {
	return engineSnap{cur: e.cur, acc: e.acc}
}

func (e *engine) Restore(s engineSnap) {
	e.cur = s.cur
	e.acc = restoreAcc(s)
}

// restoreAcc is reached transitively from Restore, so its field reads
// count for the restore side.
func restoreAcc(s engineSnap) float64 {
	return s.acc
}

// blob and wrap demonstrate whole-value-copy marking: copying the struct
// (directly or through a slice) handles every field at once.
type blob struct {
	a int
	b int
}

type wrap struct {
	items []blob
	note  string
}

type wrapSnap struct {
	items []blob
	note  string
}

func (w *wrap) Snapshot() wrapSnap {
	out := make([]blob, len(w.items))
	copy(out, w.items)
	return wrapSnap{items: out, note: w.note}
}

func (w *wrap) Restore(s wrapSnap) {
	w.items = append(w.items[:0], s.items...)
	w.note = s.note
}

// unrelated is never touched by either side: not a snapshotted struct.
type unrelated struct {
	x int
}

func use(u unrelated) int { return u.x }
