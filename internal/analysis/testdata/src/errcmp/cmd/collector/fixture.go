// Package collector exercises cdnlint/errcmp: sentinel errors compared
// with ==/!= (or switch cases) instead of errors.Is.
package collector

import (
	"errors"
	"io"
)

var errDrained = errors.New("collector drained")

func read(next func() error) int {
	n := 0
	for {
		err := next()
		if err == nil { // nil comparisons are the idiom and stay allowed
			n++
			continue
		}
		if err == io.EOF { // want `sentinel error EOF compared with ==`
			return n
		}
		if err != errDrained { // want `sentinel error errDrained compared with !=`
			return -1
		}
		if errors.Is(err, io.EOF) { // the fix: no finding
			return n
		}
	}
}

func classify(err error) string {
	switch err {
	case nil:
		return "ok"
	case io.EOF: // want `switch case compares sentinel error EOF with ==`
		return "eof"
	default:
		return "other"
	}
}

// localCompare compares locally constructed errors: not sentinels.
func localCompare() bool {
	a := errors.New("a")
	b := errors.New("b")
	return a == b
}
