// Package bgp exercises cdnlint/shardsafe: fields of //cdnlint:shardowned
// structs may only be touched from the owning shard's context (receiver,
// owner link, shard-typed parameter), the drain path (functions scheduled
// by name on a netsim.Sim), or barrier-side code.
package bgp

import "internal/netsim"

// kernel is one shard's private routing state.
//
//cdnlint:shardowned
type kernel struct {
	idx   int
	queue []int
	seq   uint64
}

func (k *kernel) size() int { return len(k.queue) }

// emit runs on the owning shard: receiver access is fine.
func (k *kernel) emit(v int) {
	k.queue = append(k.queue, v)
	k.seq++
}

type speaker struct {
	k   *kernel
	sim *netsim.Sim
}

// deliver touches its own shard through the owner link s.k: allowed.
func (s *speaker) deliver(v int) {
	s.k.emit(v)
	s.k.seq++
}

// crossPeek reads another speaker's kernel: a cross-shard race.
func (s *speaker) crossPeek(peer *speaker) uint64 {
	return peer.k.seq // want `field seq of shard-owned type kernel accessed outside`
}

// steal calls a method on another shard's kernel: same race, method form.
func (s *speaker) steal(peer *speaker) int {
	return peer.k.size() // want `method size of shard-owned type kernel accessed outside`
}

type network struct {
	kernels []*kernel
	sim     *netsim.Sim
}

// poll sweeps every shard's state outside any sanctioned context.
func (n *network) poll() int {
	total := 0
	for _, k := range n.kernels {
		total += k.size() // want `method size of shard-owned type kernel accessed outside`
	}
	return total
}

// runDrain is scheduled by name on the simulator (see schedule), so it
// executes as an event callback on the owning shard: allowed.
func runDrain(arg any) {
	n := arg.(*network)
	for _, k := range n.kernels {
		k.seq++
	}
}

func (n *network) schedule() {
	n.sim.AtCall(1, runDrain, n)
}

// mergeAll runs between rounds while the world is single-threaded.
//
//cdnlint:barrieronly
func (n *network) mergeAll() {
	for _, k := range n.kernels {
		k.queue = k.queue[:0]
	}
	_ = n.collectSeqs()
}

// collectSeqs is unexported and called only from barrier-side functions,
// so the closure admits it.
func (n *network) collectSeqs() []uint64 {
	var out []uint64
	for _, k := range n.kernels {
		out = append(out, k.seq)
	}
	return out
}

// snapshotKernels is barrier-side by name (Snapshot*/Restore* run on the
// quiesced world).
func (n *network) snapshotKernels() []uint64 {
	return n.collectSeqs()
}

// rebalance takes the shard as a parameter: by contract the caller hands
// over a shard it owns, and the call sites are themselves checked.
func rebalance(k *kernel, budget int) {
	for len(k.queue) > budget {
		k.queue = k.queue[:len(k.queue)-1]
	}
}
