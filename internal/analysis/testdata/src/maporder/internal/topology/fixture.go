// Package topology exercises cdnlint/maporder inside a deterministic
// package path.
package topology

import (
	"internal/netsim"
	"internal/obs"
	"slices"
	"sort"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration with no later sort`
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // collect-then-sort is the sanctioned pattern
	}
	sort.Strings(keys)
	return keys
}

func appendThenSortFunc(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b string) int { return len(a) - len(b) })
	return keys
}

func loopCarried(m map[string]int) map[string]int {
	out := map[string]int{}
	idx := 0
	for k := range m {
		out[k] = idx
		idx++ // want `loop-carried variable idx`
	}
	return out
}

func commutativeCounter(m map[string]int) int {
	n := 0
	for range m {
		n++ // counter never read in the body: commutative
	}
	return n
}

func commutativeSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v // integer accumulation is order-independent
	}
	return sum
}

func spelledOutSum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum = sum + v // same as +=, still commutative
	}
	return sum
}

func floatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `compound accumulation into float64 total`
	}
	return total
}

func stringDigest(m map[string]string) string {
	s := ""
	for k := range m {
		s += k // want `compound accumulation into string s`
	}
	return s
}

func scheduleInRange(sim *netsim.Sim, m map[string]float64) {
	for _, at := range m {
		sim.At(at, nil) // want `At schedules an event inside map iteration`
	}
}

type builder struct{ n int }

func (b *builder) AddItem(k string) {}

func sinkAdd(b *builder, m map[string]int) {
	for k := range m {
		b.AddItem(k) // want `AddItem called inside map iteration`
	}
}

type point struct{ x int }

func (p point) Add(q point) point { return point{p.x + q.x} }

func pureValueAdd(m map[string]point) {
	var p point
	for _, v := range m {
		_ = p.Add(v) // value receiver: pure, not an accumulator
	}
}

func obsInRange(c *obs.Counter, m map[string]int) {
	for range m {
		c.Add(1) // obs counters are commutative by contract
	}
}

func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // slice iteration is ordered; nothing to flag
	}
	return out
}
