// Package rand is a skeletal stand-in for math/rand, just enough surface
// for fixtures to type-check without export data.
package rand

type Source interface{ Int63() int64 }

func NewSource(seed int64) Source { return nil }

func New(src Source) *Rand { return &Rand{} }

type Rand struct{}

func (r *Rand) Intn(n int) int                     { return 0 }
func (r *Rand) Int63() int64                       { return 0 }
func (r *Rand) Float64() float64                   { return 0 }
func (r *Rand) Shuffle(n int, swap func(i, j int)) {}

func Int() int                           { return 0 }
func Intn(n int) int                     { return 0 }
func Float64() float64                   { return 0 }
func Shuffle(n int, swap func(i, j int)) {}
func Perm(n int) []int                   { return nil }
