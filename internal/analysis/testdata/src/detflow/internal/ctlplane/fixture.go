// Package ctlplane exercises cdnlint/detflow: nondeterminism sources must
// not flow into digests, snapshots, or wire encodes, however many
// assignments or call frames launder them on the way.
package ctlplane

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"bestofboth/api"
)

// digestNow hashes a wall-clock read through a local variable.
func digestNow() [32]byte {
	t := time.Now()
	return sha256.Sum256([]byte(t.String())) // want `wall-clock time .* flows into the crypto/sha256\.Sum256 hash`
}

// stamp, label, digestDeep: the source is two frames up; function
// summaries carry it down into the digest.
func stamp() time.Time { return time.Now() }

func label() string { return "run-" + stamp().String() }

func digestDeep() [32]byte {
	return sha256.Sum256([]byte(label())) // want `wall-clock time .* flows into the crypto/sha256\.Sum256 hash`
}

type server struct {
	now func() time.Time
}

// record shows the clock hiding behind a func-typed field: the result-type
// rule still catches it at the wire-field write.
func (s *server) record(w *api.WorldState) {
	w.Technique = s.now().String() // want `wall-clock time .* flows into wire field api\.WorldState\.Technique`
}

// sinkParam forwards its parameter into a hash, which turns every call
// site into a sink.
func sinkParam(name string) [32]byte {
	return sha256.Sum256([]byte(name))
}

func hashHost() [32]byte {
	return sinkParam(os.Getenv("CDN_HOST")) // want `environment read \(os\.Getenv\) flows into the crypto/sha256\.Sum256 hash \(via sinkParam\)`
}

// writeEnv marshals an environment read straight onto the wire.
func writeEnv() ([]byte, error) {
	host := os.Getenv("CDN_HOST")
	return json.Marshal(host) // want `environment read \(os\.Getenv\) flows into JSON wire encoding \(json\.Marshal\)`
}

// hashPointer folds a pointer identity into a digest.
func hashPointer(s *server) [32]byte {
	id := fmt.Sprintf("%p", s)
	return sha256.Sum256([]byte(id)) // want `pointer formatting \(%p\) flows into the crypto/sha256\.Sum256 hash`
}

// stampHash writes a wall-clock duration into a live hash.
func stampHash(start time.Time) []byte {
	h := sha256.New()
	fmt.Fprintf(h, "%d", time.Since(start)) // want `wall-clock duration \(time\.Since\) flows into a hash being written \(Digest\)`
	return h.Sum(nil)
}

// hashKeys consumes map iteration order directly inside the loop.
func hashKeys(m map[string]int) [][32]byte {
	var out [][32]byte
	for k := range m {
		out = append(out, sha256.Sum256([]byte(k))) // want `map iteration order \(range variable k\) flows into the crypto/sha256\.Sum256 hash`
	}
	return out
}

// digestSorted launders map order through collect-sort-iterate: clean.
func digestSorted(m map[string]int) [][32]byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out [][32]byte
	for _, k := range keys {
		out = append(out, sha256.Sum256([]byte(k)))
	}
	return out
}

// logTechnique stamps an operator-facing field on purpose; the suppression
// carries the reason.
func logTechnique(w *api.WorldState) {
	//lint:ignore cdnlint/detflow operator-facing timestamp, never diffed or digested
	w.Technique = time.Now().String()
}
