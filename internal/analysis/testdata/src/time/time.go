// Package time is a skeletal stand-in for time.
package time

type Time struct{}

type Duration int64

const Second Duration = 1e9

func (t Time) Add(d Duration) Time         { return t }
func (t Time) Sub(u Time) Duration         { return 0 }
func (t Time) String() string              { return "" }
func (t Time) Format(layout string) string { return "" }

func Now() Time             { return Time{} }
func Since(t Time) Duration { return 0 }
func Until(t Time) Duration { return 0 }
func Sleep(d Duration)      {}
func After(d Duration) any  { return nil }
