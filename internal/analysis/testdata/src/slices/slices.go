// Package slices is a skeletal stand-in for slices. Constraints are
// loosened to any: fixtures only need calls to resolve, not to enforce
// ordering semantics.
package slices

func Sort[S ~[]E, E any](x S)                           {}
func SortFunc[S ~[]E, E any](x S, cmp func(a, b E) int) {}
func Clone[S ~[]E, E any](s S) S                        { return s }
