// Package api is a skeletal, schema-clean stand-in for pkg/bestofboth/api,
// shared by the detflow (wire-write sinks) and wirestable (diffStates
// coverage) fixtures.
package api

type WorldState struct {
	VirtualTime float64              `json:"virtualTime"`
	Technique   string               `json:"technique"`
	Sites       map[string]SiteState `json:"sites"`
}

type SiteState struct {
	Code   string `json:"code"`
	Node   string `json:"node"`
	Prefix string `json:"prefix"`
	Addr   string `json:"addr"`
}
