// Package netsim is a skeletal stand-in for the simulator's event queue,
// mirroring the scheduling method set maporder treats as order-sensitive
// sinks.
package netsim

type Seconds = float64

type Sim struct{}

func (s *Sim) Now() Seconds                             { return 0 }
func (s *Sim) At(at Seconds, fn func())                 {}
func (s *Sim) AtCall(at Seconds, fn func(any), arg any) {}
func (s *Sim) After(d Seconds, fn func())               {}
