// Package obs is a skeletal stand-in for the metrics layer: commutative
// counters that maporder must not flag and snapshotfields must exempt.
package obs

type Counter struct{ v int64 }

func (c *Counter) Add(n int64) {}

type Gauge struct{ v int64 }

func (g *Gauge) Set(n int64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

// Registry mirrors the real registration surface obsnames checks.
type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name string) *Counter                        { return &Counter{} }
func (r *Registry) Gauge(name string) *Gauge                            { return &Gauge{} }
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram { return &Histogram{} }
func (r *Registry) VolatileCounter(name string) *Counter                { return &Counter{} }
func (r *Registry) VolatileGauge(name string) *Gauge                    { return &Gauge{} }
func (r *Registry) VolatileHistogram(name string, bounds ...float64) *Histogram {
	return &Histogram{}
}
