// Package obs is a skeletal stand-in for the metrics layer: commutative
// counters that maporder must not flag and snapshotfields must exempt.
package obs

type Counter struct{ v int64 }

func (c *Counter) Add(n int64) {}

type Gauge struct{ v int64 }

func (g *Gauge) Set(n int64) {}
