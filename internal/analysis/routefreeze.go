package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerRoutefreeze (cdnlint/routefreeze) enforces the immutability
// invariant on bgp.Route (see the Route doc comment): a Route is frozen
// the moment it is published — stored into an adj-RIB slot, handed to
// send, or passed to a callback — because the zero-copy kernel shares
// route pointers across adj-RIBs, feeds, FIBs, and copy-on-write
// snapshots. The analyzer flags every write to a Route field, every
// element write into a Route slice field (Path, Communities share backing
// arrays even across value copies), and copy/append targeting those
// fields, unless the enclosing function is annotated with a
// //cdnlint:mutates-route doc comment marking it as a construction or
// import site that only touches unpublished routes.
var AnalyzerRoutefreeze = &Analyzer{
	Name: "routefreeze",
	Doc: "flag writes to bgp.Route fields or its slice elements outside functions annotated " +
		"//cdnlint:mutates-route; published routes are shared and must be replaced, never mutated",
	Run: runRoutefreeze,
}

// isRouteType reports whether t (possibly behind pointers) is the Route
// type of a bgp package.
func isRouteType(t types.Type) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Route" && obj.Pkg() != nil && pkgPathHasSuffix(obj.Pkg().Path(), "bgp")
}

func runRoutefreeze(pass *Pass) {
	for _, fd := range funcDecls(pass.Files) {
		if fd.Body == nil || funcHasMarker(fd.Doc, "mutates-route") {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					pass.checkRouteWriteTarget(lhs)
				}
			case *ast.IncDecStmt:
				pass.checkRouteWriteTarget(st.X)
			case *ast.CallExpr:
				pass.checkRouteBuiltinMutation(st)
			}
			return true
		})
	}
}

// checkRouteWriteTarget flags lhs when it writes a Route field or an
// element of a Route slice field.
func (p *Pass) checkRouteWriteTarget(lhs ast.Expr) {
	switch e := lhs.(type) {
	case *ast.SelectorExpr:
		// r.Field = ... where r is a Route (or *Route, possibly nested).
		if tv, ok := p.Info.Types[e.X]; ok && isRouteType(tv.Type) {
			p.Reportf(e.Sel.Pos(), "write to field %s of bgp.Route outside a //cdnlint:mutates-route function; "+
				"published routes are immutable — build a new Route and swap the pointer", e.Sel.Name)
		}
	case *ast.IndexExpr:
		// r.Path[i] = ... writes the shared backing array, even via a
		// value copy of the Route.
		if sel, ok := e.X.(*ast.SelectorExpr); ok {
			if tv, ok := p.Info.Types[sel.X]; ok && isRouteType(tv.Type) {
				p.Reportf(e.Pos(), "element write into bgp.Route.%s mutates the shared backing array outside a "+
					"//cdnlint:mutates-route function", sel.Sel.Name)
			}
		}
	case *ast.StarExpr:
		// (*r).Field handled via SelectorExpr above; *r = Route{...}
		// replaces the whole published struct through the pointer.
		if tv, ok := p.Info.Types[e.X]; ok && isRouteType(tv.Type) {
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				p.Reportf(e.Pos(), "write through *bgp.Route outside a //cdnlint:mutates-route function; "+
					"published routes are immutable — build a new Route and swap the pointer")
			}
		}
	}
}

// checkRouteBuiltinMutation flags copy(r.Path, ...) and append(r.Path,
// ...): both can write into the shared backing array of a published
// route's slice field.
func (p *Pass) checkRouteBuiltinMutation(call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if id.Name != "copy" && id.Name != "append" {
		return
	}
	sel, ok := call.Args[0].(*ast.SelectorExpr)
	if !ok {
		return
	}
	if tv, ok := p.Info.Types[sel.X]; ok && isRouteType(tv.Type) {
		p.Reportf(call.Pos(), "%s on bgp.Route.%s may write the shared backing array outside a "+
			"//cdnlint:mutates-route function; clone the slice instead", id.Name, sel.Sel.Name)
	}
}
