package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseIgnores parses src as a single file named f.go and runs
// collectIgnores over it.
func parseIgnores(t *testing.T, src string) ([]*ignoreDirective, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return collectIgnores(fset, []*ast.File{f})
}

// diag fabricates a finding at f.go:line for suppression-matching tests.
func diag(check string, line int) Diagnostic {
	return Diagnostic{Check: check, Pos: token.Position{Filename: "f.go", Line: line, Column: 1}, Message: "m"}
}

func TestIgnoreMissingReason(t *testing.T) {
	igns, diags := parseIgnores(t, `package p

//lint:ignore cdnlint/detrand
var x = 1
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "missing a reason") {
		t.Fatalf("want one missing-reason diagnostic, got %v", diags)
	}
	// The reason-less directive still suppresses, so the missing-reason
	// finding is the only new noise on the line.
	if len(igns) != 1 {
		t.Fatalf("want the directive honored despite the missing reason, got %d directives", len(igns))
	}
	kept, silenced := applyIgnores([]Diagnostic{diag("detrand", 4)}, igns)
	if len(kept) != 0 || len(silenced) != 1 {
		t.Fatalf("want the finding suppressed, kept=%v silenced=%v", kept, silenced)
	}
	if silenced[0].Reason != "" {
		t.Fatalf("reason-less directive should carry an empty reason, got %q", silenced[0].Reason)
	}
}

func TestIgnoreUnknownCheck(t *testing.T) {
	igns, diags := parseIgnores(t, `package p

//lint:ignore cdnlint/nosuchcheck fat-fingered the name
var x = 1
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown check cdnlint/nosuchcheck") {
		t.Fatalf("want one unknown-check diagnostic, got %v", diags)
	}
	// An unknown-check directive necessarily matches nothing, but piling a
	// stale report on top of the unknown-check one would be double noise.
	if stale := staleIgnores(igns); len(stale) != 0 {
		t.Fatalf("unknown-check directive must not also be reported stale, got %v", stale)
	}
}

func TestIgnoreStale(t *testing.T) {
	igns, diags := parseIgnores(t, `package p

//lint:ignore cdnlint/detrand the finding this guarded is long gone
var x = 1
`)
	if len(diags) != 0 {
		t.Fatalf("well-formed directive should parse clean, got %v", diags)
	}
	kept, silenced := applyIgnores([]Diagnostic{diag("maporder", 4)}, igns)
	if len(kept) != 1 || len(silenced) != 0 {
		t.Fatalf("directive for another check must not suppress, kept=%v silenced=%v", kept, silenced)
	}
	stale := staleIgnores(igns)
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "stale //lint:ignore cdnlint/detrand") {
		t.Fatalf("want one stale diagnostic, got %v", stale)
	}
	if stale[0].Pos.Line != 3 {
		t.Fatalf("stale diagnostic should point at the directive (line 3), got line %d", stale[0].Pos.Line)
	}
}

func TestIgnoreMatchWindow(t *testing.T) {
	// A directive matches its own line (trailing comment) and the line
	// directly below (comment above the code) — nothing further away.
	igns, _ := parseIgnores(t, `package p

//lint:ignore cdnlint/detrand guards lines 3 and 4 only
var x = 1
var y = 2
`)
	kept, silenced := applyIgnores([]Diagnostic{diag("detrand", 3), diag("detrand", 4), diag("detrand", 5)}, igns)
	if len(silenced) != 2 {
		t.Fatalf("want lines 3 and 4 suppressed, silenced=%v", silenced)
	}
	if len(kept) != 1 || kept[0].Pos.Line != 5 {
		t.Fatalf("line 5 must survive, kept=%v", kept)
	}
	if silenced[0].Reason != "guards lines 3 and 4 only" {
		t.Fatalf("suppressed finding should carry the directive's reason, got %q", silenced[0].Reason)
	}
}

func TestIgnoreMultiCheckDirective(t *testing.T) {
	igns, diags := parseIgnores(t, `package p

//lint:ignore cdnlint/detrand,cdnlint/maporder one line trips both checks
var x = 1
`)
	if len(diags) != 0 {
		t.Fatalf("comma-list directive should parse clean, got %v", diags)
	}
	kept, silenced := applyIgnores([]Diagnostic{diag("detrand", 4), diag("maporder", 4), diag("errcmp", 4)}, igns)
	if len(silenced) != 2 || len(kept) != 1 || kept[0].Check != "errcmp" {
		t.Fatalf("want detrand+maporder suppressed and errcmp kept, kept=%v silenced=%v", kept, silenced)
	}
	if stale := staleIgnores(igns); len(stale) != 0 {
		t.Fatalf("a directive that suppressed anything is not stale, got %v", stale)
	}
}

func TestIgnoreOtherToolsLeftAlone(t *testing.T) {
	// Directives naming only other tools' checks (staticcheck etc.) are
	// none of cdnlint's business: no directive, no diagnostics, no stale
	// report.
	igns, diags := parseIgnores(t, `package p

//lint:ignore ST1000 staticcheck's package-comment check
var x = 1

//lint:ignore
var y = 2
`)
	if len(igns) != 0 || len(diags) != 0 {
		t.Fatalf("foreign and bare directives must be skipped, igns=%v diags=%v", igns, diags)
	}
}
